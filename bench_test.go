// Benchmarks regenerating the paper's tables and figures, one target per
// exhibit. These run scaled-down circuits so that `go test -bench=.`
// terminates quickly; the full-scale tables come from cmd/hidap-bench.
// Metrics are attached via b.ReportMetric, so each bench both measures the
// runtime of its pipeline and reports the paper-facing quantities
// (wirelength, GRC%, WNS%, ...).
package repro

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/circuits"
	"repro/hidap"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/flows"
	"repro/internal/geom"
	"repro/internal/hier"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/render"
	"repro/internal/seqgraph"
	"repro/internal/slicing"
)

// benchScale divides the paper's cell counts for benchmark-speed circuits.
const benchScale = 500

func benchSpec(b *testing.B, name string) circuits.Spec {
	b.Helper()
	spec, err := circuits.SuiteSpec(name)
	if err != nil {
		b.Fatal(err)
	}
	spec.Scale = benchScale
	return spec
}

func fastFlowOpts() flows.Options {
	o := flows.DefaultOptions()
	o.Effort = layout.EffortLow
	o.Lambdas = []float64{0.5}
	return o
}

// BenchmarkTableI builds every circuit abstraction of Table I (HT, Gnet,
// Gseq, Gdf) for a c4-class design and reports their sizes.
func BenchmarkTableI(b *testing.B) {
	g := circuits.Generate(benchSpec(b, "c4"))
	b.ResetTimer()
	var sizes [4]int
	for i := 0; i < b.N; i++ {
		d := g.Design
		tr := hier.New(d)
		sg := seqgraph.Build(d, seqgraph.DefaultParams())
		decl := tr.Decluster(d.Root(), hier.DefaultParams())
		gdf := dataflow.Build(sg, decl)
		sizes = [4]int{len(d.Hier), d.NumCells(), len(sg.Nodes), len(gdf.Nodes)}
	}
	b.ReportMetric(float64(sizes[0]), "HT_nodes")
	b.ReportMetric(float64(sizes[1]), "Gnet_cells")
	b.ReportMetric(float64(sizes[2]), "Gseq_nodes")
	b.ReportMetric(float64(sizes[3]), "Gdf_nodes")
}

// BenchmarkTableII runs the three flows over a two-circuit mini-suite and
// reports the Table II aggregates (WL geomean vs handFP, mean WNS%).
func BenchmarkTableII(b *testing.B) {
	gens := []*circuits.Generated{
		circuits.Generate(benchSpec(b, "c1")),
		circuits.Generate(benchSpec(b, "c8")),
	}
	opt := fastFlowOpts()
	b.ResetTimer()
	var sums []flows.Summary
	for i := 0; i < b.N; i++ {
		var rows []*flows.Metrics
		for _, g := range gens {
			for _, f := range []flows.Flow{flows.FlowIndEDA, flows.FlowHiDaP, flows.FlowHandFP} {
				m, _, err := flows.Run(context.Background(), g, f, opt)
				if err != nil {
					b.Fatal(err)
				}
				rows = append(rows, m)
			}
		}
		flows.Normalize(rows)
		sums = flows.Summarize(rows)
	}
	for _, s := range sums {
		b.ReportMetric(s.WLGeoMean, "wlnorm_"+strings.ToLower(string(s.Flow)))
	}
}

// BenchmarkTableIII runs one flow on one circuit per sub-benchmark and
// reports the Table III row metrics.
func BenchmarkTableIII(b *testing.B) {
	for _, name := range []string{"c1", "c3", "c5", "c8"} {
		g := circuits.Generate(benchSpec(b, name))
		for _, f := range []flows.Flow{flows.FlowIndEDA, flows.FlowHiDaP, flows.FlowHandFP} {
			b.Run(fmt.Sprintf("%s/%s", name, f), func(b *testing.B) {
				opt := fastFlowOpts()
				var m *flows.Metrics
				for i := 0; i < b.N; i++ {
					var err error
					m, _, err = flows.Run(context.Background(), g, f, opt)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(m.WirelengthM, "wl_m")
				b.ReportMetric(m.CongestionPct, "grc_pct")
				b.ReportMetric(-m.WNSPct, "neg_wns_pct")
				b.ReportMetric(-m.TNSns, "neg_tns_ns")
			})
		}
	}
}

// BenchmarkFig1 runs the multi-level floorplan of the 16-macro running
// example and reports the level count of the evolution.
func BenchmarkFig1(b *testing.B) {
	g := circuits.Fig1Design()
	opt := core.DefaultOptions()
	opt.Trace = true
	var res *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.Place(context.Background(), g.Design, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Trace)), "levels")
	b.ReportMetric(float64(res.Flips), "flips")
}

// BenchmarkFig2 infers the ABCDX dataflow graph and reports the block-flow
// and macro-flow edge counts of Fig. 2.
func BenchmarkFig2(b *testing.B) {
	g := circuits.ABCDX()
	var bf, mf int
	for i := 0; i < b.N; i++ {
		blockFlow, macroFlow := hidap.DataflowEdges(g.Design, 2)
		bf, mf = len(blockFlow), len(macroFlow)
	}
	b.ReportMetric(float64(bf), "blockflow_edges")
	b.ReportMetric(float64(mf), "macroflow_edges")
}

// BenchmarkFig3 lays out ABCDX under the three lenses and reports the
// macro-chain span for each λ — the quantity Fig. 3 illustrates.
func BenchmarkFig3(b *testing.B) {
	g := circuits.ABCDX()
	d := g.Design
	chainIDs := []string{"A/ram0/mem", "B/ram0/mem", "C/ram0/mem", "D/ram0/mem"}
	for _, lambda := range []float64{1.0, 0.0, 0.5} {
		b.Run(fmt.Sprintf("lambda=%.1f", lambda), func(b *testing.B) {
			var span int64
			for i := 0; i < b.N; i++ {
				opt := core.DefaultOptions()
				opt.Lambda = lambda
				opt.Seed = 7
				res, err := core.Place(context.Background(), d, opt)
				if err != nil {
					b.Fatal(err)
				}
				span = 0
				for j := 1; j < len(chainIDs); j++ {
					a := res.Placement.Center(d.CellByName(chainIDs[j-1]))
					c := res.Placement.Center(d.CellByName(chainIDs[j]))
					span += a.ManhattanDist(c)
				}
			}
			b.ReportMetric(float64(span)/1000, "chain_um")
		})
	}
}

// BenchmarkFig4 generates the shape curves of the Fig. 1 design (the block
// area model of Fig. 4) and reports the corner count of one group curve.
func BenchmarkFig4(b *testing.B) {
	g := circuits.Fig1Design()
	tr := hier.New(g.Design)
	grp := g.Design.NodeByPath("left/grp0")
	var corners int
	for i := 0; i < b.N; i++ {
		sc := core.GenerateShapeCurves(context.Background(), tr, 1)
		corners = sc.ByNode[grp].Len()
	}
	b.ReportMetric(float64(corners), "pareto_corners")
}

// BenchmarkFig7 builds Gseq and Gdf for a suite circuit — the inference
// pipeline of Fig. 7 — and reports histogram mass.
func BenchmarkFig7(b *testing.B) {
	g := circuits.Generate(benchSpec(b, "c1"))
	d := g.Design
	tr := hier.New(d)
	decl := tr.Decluster(d.Root(), hier.DefaultParams())
	b.ResetTimer()
	var bits int64
	for i := 0; i < b.N; i++ {
		sg := seqgraph.Build(d, seqgraph.DefaultParams())
		gdf := dataflow.Build(sg, decl)
		bits = 0
		for _, h := range gdf.BlockFlow {
			bits += h.TotalBits()
		}
	}
	b.ReportMetric(float64(bits), "blockflow_bits")
}

// BenchmarkFig8 evaluates the top-down area-budgeting layout generation on
// the Fig. 8 three-leaf example.
func BenchmarkFig8(b *testing.B) {
	blocks := []slicing.Block{
		{TargetArea: 3, MinArea: 3},
		{TargetArea: 3, MinArea: 3},
		{TargetArea: 3, MinArea: 3},
	}
	e := slicing.NewChain(3)
	budget := geom.RectXYWH(0, 0, 300, 300)
	var tiled int64
	for i := 0; i < b.N; i++ {
		ev := slicing.Evaluate(&e, blocks, budget, slicing.DefaultEvalParams())
		tiled = 0
		for _, r := range ev.Rects {
			tiled += r.Area()
		}
	}
	b.ReportMetric(float64(tiled), "tiled_area")
}

// BenchmarkFig9 produces the density map of a c3-class circuit under HiDaP
// and reports the peak standard-cell density near macros (the quantity
// Fig. 9 compares across flows).
func BenchmarkFig9(b *testing.B) {
	g := circuits.Generate(benchSpec(b, "c3"))
	opt := fastFlowOpts()
	var peak float64
	for i := 0; i < b.N; i++ {
		_, pl, err := flows.Run(context.Background(), g, flows.FlowHiDaP, opt)
		if err != nil {
			b.Fatal(err)
		}
		dm := metrics.Density(pl, 32)
		peak = dm.Peak()
		if len(render.DensityASCII(dm)) == 0 {
			b.Fatal("empty density map")
		}
	}
	b.ReportMetric(peak, "peak_density")
}

// BenchmarkAblationLambda sweeps the block/macro flow blend on a c8-class
// circuit: the design choice behind the paper's best-of-three policy.
func BenchmarkAblationLambda(b *testing.B) {
	g := circuits.Generate(benchSpec(b, "c8"))
	for _, lambda := range []float64{0.0, 0.2, 0.5, 0.8, 1.0} {
		b.Run(fmt.Sprintf("lambda=%.1f", lambda), func(b *testing.B) {
			opt := fastFlowOpts()
			opt.Lambdas = []float64{lambda}
			var wl float64
			for i := 0; i < b.N; i++ {
				m, _, err := flows.Run(context.Background(), g, flows.FlowHiDaP, opt)
				if err != nil {
					b.Fatal(err)
				}
				wl = m.WirelengthM
			}
			b.ReportMetric(wl, "wl_m")
		})
	}
}

// BenchmarkAblationK sweeps the latency decay exponent of score(h, k).
func BenchmarkAblationK(b *testing.B) {
	g := circuits.Generate(benchSpec(b, "c1"))
	for _, k := range []float64{0, 1, 2, 3} {
		b.Run(fmt.Sprintf("k=%.0f", k), func(b *testing.B) {
			var wl float64
			for i := 0; i < b.N; i++ {
				opt := core.DefaultOptions()
				opt.K = k
				opt.Effort = layout.EffortLow
				res, err := core.Place(context.Background(), g.Design, opt)
				if err != nil {
					b.Fatal(err)
				}
				pl := res.Placement
				if err := hidap.PlaceCells(pl); err != nil {
					b.Fatal(err)
				}
				wl = metrics.WirelengthMeters(pl)
			}
			b.ReportMetric(wl, "wl_m")
		})
	}
}

// BenchmarkAblationEffort compares the annealing budgets.
func BenchmarkAblationEffort(b *testing.B) {
	g := circuits.Generate(benchSpec(b, "c1"))
	for _, eff := range []struct {
		name string
		e    layout.Effort
	}{{"low", layout.EffortLow}, {"medium", layout.EffortMedium}, {"high", layout.EffortHigh}} {
		b.Run(eff.name, func(b *testing.B) {
			var wl float64
			for i := 0; i < b.N; i++ {
				opt := core.DefaultOptions()
				opt.Effort = eff.e
				res, err := core.Place(context.Background(), g.Design, opt)
				if err != nil {
					b.Fatal(err)
				}
				pl := res.Placement
				if err := hidap.PlaceCells(pl); err != nil {
					b.Fatal(err)
				}
				wl = metrics.WirelengthMeters(pl)
			}
			b.ReportMetric(wl, "wl_m")
		})
	}
}

// BenchmarkAblationMinBits sweeps the Gseq array-width filter (step 4 of
// the paper's §IV-D) and reports graph size against placement quality.
func BenchmarkAblationMinBits(b *testing.B) {
	g := circuits.Generate(benchSpec(b, "c1"))
	for _, mb := range []int32{0, 2, 8, 16} {
		b.Run(fmt.Sprintf("minbits=%d", mb), func(b *testing.B) {
			var wl float64
			var nodes int
			for i := 0; i < b.N; i++ {
				opt := core.DefaultOptions()
				opt.Seq = seqgraph.Params{MinBits: mb}
				opt.Effort = layout.EffortLow
				res, err := core.Place(context.Background(), g.Design, opt)
				if err != nil {
					b.Fatal(err)
				}
				nodes = res.SeqStats.Nodes
				pl := res.Placement
				if err := hidap.PlaceCells(pl); err != nil {
					b.Fatal(err)
				}
				wl = metrics.WirelengthMeters(pl)
			}
			b.ReportMetric(wl, "wl_m")
			b.ReportMetric(float64(nodes), "gseq_nodes")
		})
	}
}

// BenchmarkAblationFlat compares multi-level placement against the flat
// single-level ablation (the paper's first contribution isolated).
func BenchmarkAblationFlat(b *testing.B) {
	g := circuits.Generate(benchSpec(b, "c1"))
	for _, mode := range []struct {
		name string
		flat bool
	}{{"multilevel", false}, {"flat", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var wl float64
			for i := 0; i < b.N; i++ {
				opt := core.DefaultOptions()
				opt.Flat = mode.flat
				opt.Effort = layout.EffortLow
				res, err := core.Place(context.Background(), g.Design, opt)
				if err != nil {
					b.Fatal(err)
				}
				pl := res.Placement
				if err := hidap.PlaceCells(pl); err != nil {
					b.Fatal(err)
				}
				wl = metrics.WirelengthMeters(pl)
			}
			b.ReportMetric(wl, "wl_m")
		})
	}
}
