package circuits

import (
	"strings"
	"testing"

	"repro/internal/autocluster"
	"repro/internal/dataflow"
	"repro/internal/hier"
	"repro/internal/netlist"
	"repro/internal/seqgraph"
)

func testSpec() Spec {
	return Spec{Name: "t1", Cells: 400_000, Macros: 12, Subsystems: 3,
		BusWidth: 32, PipelineDepth: 2, Scale: 200, Seed: 9}
}

func TestGenerateBasics(t *testing.T) {
	g := Generate(testSpec())
	d := g.Design
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	st := d.Stats()
	if st.MacroCells != 12 {
		t.Errorf("macros = %d, want 12", st.MacroCells)
	}
	want := testSpec().ScaledCells()
	if st.Cells < want {
		t.Errorf("cells = %d, want >= %d", st.Cells, want)
	}
	if st.Cells > want*3 {
		t.Errorf("cells = %d, way over budget %d", st.Cells, want)
	}
	if d.Die.Empty() {
		t.Error("die not set")
	}
	// Utilization sanity: cell area below die area.
	if st.CellArea >= d.Die.Area() {
		t.Errorf("overfull die: cells %d, die %d", st.CellArea, d.Die.Area())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(testSpec())
	b := Generate(testSpec())
	if a.Design.NumCells() != b.Design.NumCells() {
		t.Fatal("cell count differs between runs")
	}
	for i := range a.Design.Cells {
		if a.Design.Cells[i].Name != b.Design.Cells[i].Name {
			t.Fatalf("cell %d name differs", i)
		}
	}
	for name, r := range a.Intent {
		if b.Intent[name] != r {
			t.Fatalf("intent differs for %s", name)
		}
	}
}

func TestGenerateIntentCoversAllMacros(t *testing.T) {
	g := Generate(testSpec())
	for _, m := range g.Design.Macros() {
		name := g.Design.Cell(m).Name
		r, ok := g.Intent[name]
		if !ok {
			t.Fatalf("no intent for %s", name)
		}
		if !g.Design.Die.ContainsRect(r) {
			t.Errorf("intent for %s escapes die: %v", name, r)
		}
		c := g.Design.Cell(m)
		if r.Area() != c.Area() {
			t.Errorf("intent area mismatch for %s: %d vs %d", name, r.Area(), c.Area())
		}
	}
}

func TestGenerateHierarchyShape(t *testing.T) {
	g := Generate(testSpec())
	d := g.Design
	tr := hier.New(d)
	// Top declustering should find the subsystems as blocks.
	res := tr.Decluster(d.Root(), hier.DefaultParams())
	subBlocks := 0
	for _, b := range res.Blocks {
		if strings.HasPrefix(b.Name, "sub") {
			subBlocks++
		}
	}
	if subBlocks != 3 {
		names := []string{}
		for _, b := range res.Blocks {
			names = append(names, b.Name)
		}
		t.Errorf("top blocks = %v, want the 3 subsystems", names)
	}
}

func TestGenerateDataflowVisible(t *testing.T) {
	g := Generate(testSpec())
	sg := seqgraph.Build(g.Design, seqgraph.DefaultParams())
	st := sg.Stats()
	if st.Macros != 12 {
		t.Errorf("Gseq macros = %d", st.Macros)
	}
	if st.Registers < 30 {
		t.Errorf("Gseq registers = %d, want a rich sequential structure", st.Registers)
	}
	if st.Edges < st.Registers {
		t.Errorf("Gseq edges = %d, want at least one per register", st.Edges)
	}
	if st.Ports != 2 { // din and dout clusters
		t.Errorf("Gseq ports = %d, want 2", st.Ports)
	}
}

func TestSuiteMacroCountsMatchPaper(t *testing.T) {
	want := map[string]int{
		"c1": 32, "c2": 100, "c3": 94, "c4": 122,
		"c5": 133, "c6": 90, "c7": 108, "c8": 37,
	}
	suite := Suite()
	if len(suite) != 8 {
		t.Fatalf("suite size = %d", len(suite))
	}
	for _, s := range suite {
		if want[s.Name] != s.Macros {
			t.Errorf("%s macros = %d, want %d", s.Name, s.Macros, want[s.Name])
		}
	}
}

func TestSuiteSpecLookup(t *testing.T) {
	s, err := SuiteSpec("c3")
	if err != nil || s.Macros != 94 {
		t.Errorf("SuiteSpec(c3) = %+v, %v", s, err)
	}
	if _, err := SuiteSpec("nope"); err == nil {
		t.Error("expected error for unknown circuit")
	}
}

func TestSuiteGeneratesAllAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("suite generation in -short mode")
	}
	for _, s := range Suite() {
		s.Scale = 2000 // tiny for test speed
		g := Generate(s)
		if err := g.Design.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if got := g.Design.Stats().MacroCells; got != s.Macros {
			t.Errorf("%s: macros = %d, want %d", s.Name, got, s.Macros)
		}
	}
}

func TestFig1Design(t *testing.T) {
	g := Fig1Design()
	d := g.Design
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Macros()); got != 16 {
		t.Fatalf("macros = %d, want 16", got)
	}
	// Top-level structure: left, right, x.
	tr := hier.New(d)
	res := tr.Decluster(d.Root(), hier.DefaultParams())
	names := map[string]bool{}
	for _, b := range res.Blocks {
		names[b.Name] = true
	}
	for _, wantName := range []string{"left", "right", "x"} {
		if !names[wantName] {
			t.Errorf("top blocks missing %q: %v", wantName, names)
		}
	}
	// Second level: two 4-macro groups per side.
	left := d.NodeByPath("left")
	res2 := tr.Decluster(left, hier.DefaultParams())
	if len(res2.Blocks) != 2 {
		t.Errorf("left declusters into %d blocks, want 2 groups", len(res2.Blocks))
	}
	for _, b := range res2.Blocks {
		if b.MacroCount() != 4 {
			t.Errorf("group %s has %d macros, want 4", b.Name, b.MacroCount())
		}
	}
	if len(g.Intent) != 16 {
		t.Errorf("intent covers %d macros", len(g.Intent))
	}
}

func TestABCDX(t *testing.T) {
	g := ABCDX()
	d := g.Design
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Macros()); got != 8 {
		t.Fatalf("macros = %d, want 8", got)
	}
	tr := hier.New(d)
	res := tr.Decluster(d.Root(), hier.DefaultParams())
	names := map[string]int{}
	for _, b := range res.Blocks {
		names[b.Name] = b.MacroCount()
	}
	for _, blk := range []string{"A", "B", "C", "D"} {
		if names[blk] != 2 {
			t.Errorf("block %s macro count = %d, want 2 (%v)", blk, names[blk], names)
		}
	}
	if _, ok := names["x"]; !ok {
		t.Errorf("X block missing: %v", names)
	}
}

func TestABCDXFlows(t *testing.T) {
	// The point of the example: block flow connects every block to X;
	// macro flow chains A -> B -> C -> D.
	g := ABCDX()
	d := g.Design
	tr := hier.New(d)
	decl := tr.Decluster(d.Root(), hier.DefaultParams())
	sg := seqgraph.Build(d, seqgraph.DefaultParams())

	gdf := dataflowBuild(sg, decl)
	idx := map[string]int32{}
	for i := range decl.Blocks {
		idx[decl.Blocks[i].Name] = int32(i)
	}
	for _, blk := range []string{"A", "B", "C", "D"} {
		if !gdf.hasBlockFlow(idx[blk], idx["x"]) {
			t.Errorf("block flow %s->x missing", blk)
		}
	}
	for _, pair := range [][2]string{{"A", "B"}, {"B", "C"}, {"C", "D"}} {
		if !gdf.hasMacroFlow(idx[pair[0]], idx[pair[1]]) {
			t.Errorf("macro flow %s->%s missing", pair[0], pair[1])
		}
	}
	if gdf.hasMacroFlow(idx["A"], idx["D"]) {
		t.Error("unexpected direct macro flow A->D")
	}
}

// gdfWrap exposes edge existence checks over the dataflow graph.
type gdfWrap struct {
	bf, mf map[[2]int32]bool
}

func dataflowBuild(sg *seqgraph.Graph, decl *hier.Result) *gdfWrap {
	g := dataflow.Build(sg, decl)
	w := &gdfWrap{bf: map[[2]int32]bool{}, mf: map[[2]int32]bool{}}
	for k := range g.BlockFlow {
		w.bf[[2]int32{k.From, k.To}] = true
	}
	for k := range g.MacroFlow {
		w.mf[[2]int32{k.From, k.To}] = true
	}
	return w
}

func (g *gdfWrap) hasBlockFlow(a, b int32) bool { return g.bf[[2]int32{a, b}] }
func (g *gdfWrap) hasMacroFlow(a, b int32) bool { return g.mf[[2]int32{a, b}] }

func TestGenerateArrayNamesCluster(t *testing.T) {
	g := Generate(testSpec())
	count := 0
	for i := range g.Design.Cells {
		c := &g.Design.Cells[i]
		if c.Kind == netlist.KindFlop {
			if _, _, ok := netlist.ArrayBase(c.Name); !ok {
				t.Fatalf("flop %s has no array index", c.Name)
			}
			count++
		}
	}
	if count == 0 {
		t.Fatal("no flops generated")
	}
}

func TestStarTopology(t *testing.T) {
	spec := testSpec()
	spec.Topology = "star"
	g := Generate(spec)
	if err := g.Design.Validate(); err != nil {
		t.Fatal(err)
	}
	// The crossbar hub register exists and every subsystem reaches it.
	sg := seqgraph.Build(g.Design, seqgraph.DefaultParams())
	hub := sg.NodeByName("xbar/hub")
	if hub < 0 {
		t.Fatal("crossbar hub register missing")
	}
	// Hub has fanin from every subsystem's uplink pipeline.
	fanin := 0
	for u := range sg.Out {
		for _, e := range sg.Out[u] {
			if e.To == hub {
				fanin++
			}
		}
	}
	if fanin < spec.Subsystems {
		t.Errorf("hub fanin = %d, want >= %d", fanin, spec.Subsystems)
	}
}

func TestStarTopologyPlaces(t *testing.T) {
	spec := testSpec()
	spec.Topology = "star"
	g := Generate(spec)
	// The full flow must handle the star interconnect.
	tr := hier.New(g.Design)
	res := tr.Decluster(g.Design.Root(), hier.DefaultParams())
	if len(res.Blocks) < spec.Subsystems {
		t.Errorf("blocks = %d, want >= %d subsystems", len(res.Blocks), spec.Subsystems)
	}
}

func TestGenFlat(t *testing.T) {
	h := Generate(testSpec())
	f := GenFlat(testSpec())
	if len(f.Design.Hier) != 1 {
		t.Fatalf("flat design has %d hier nodes, want 1", len(f.Design.Hier))
	}
	hs, fs := h.Design.Stats(), f.Design.Stats()
	hs.HierNodes, fs.HierNodes = 0, 0
	if hs != fs {
		t.Fatalf("flat stats diverge: %+v vs %+v", fs, hs)
	}
	for i := range h.Design.Cells {
		if h.Design.Cells[i].Name != f.Design.Cells[i].Name {
			t.Fatalf("cell %d renamed by flattening", i)
		}
	}
	if len(f.Intent) != len(h.Intent) {
		t.Fatalf("intent changed: %d vs %d places", len(f.Intent), len(h.Intent))
	}
	// Spec.Flat is the same knob.
	s := testSpec()
	s.Flat = true
	if got := len(Generate(s).Design.Hier); got != 1 {
		t.Fatalf("Spec.Flat design has %d hier nodes, want 1", got)
	}
}

func TestGeneratedAutoclusterCache(t *testing.T) {
	g := GenFlat(testSpec())
	p := autocluster.Params{MaxNumInst: 300, MaxNumMacro: 4}
	r1, fresh1, err := g.Autocluster(p)
	if err != nil {
		t.Fatalf("Autocluster: %v", err)
	}
	r2, fresh2, err := g.Autocluster(p)
	if err != nil {
		t.Fatalf("Autocluster (cached): %v", err)
	}
	if !fresh1 || fresh2 {
		t.Fatalf("fresh flags = %v, %v; want true, false", fresh1, fresh2)
	}
	if r1 != r2 {
		t.Fatal("cache returned a different result pointer")
	}
	if r1.Stats.NoOp {
		t.Fatal("flat design should not be a no-op")
	}
	if err := autocluster.CheckTree(r1.Design, p); err != nil {
		t.Fatalf("CheckTree: %v", err)
	}
}
