package circuits

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/autocluster"
	"repro/internal/geom"
	"repro/internal/handfp"
	"repro/internal/netlist"
	"repro/internal/seqgraph"
)

// Generated bundles a synthetic design with its planted floorplan intent.
type Generated struct {
	Design *netlist.Design
	// Intent is the designer's intended macro floorplan, consumed by the
	// handFP oracle flow.
	Intent handfp.Intent
	Spec   Spec

	seqOnce sync.Once
	seq     *seqgraph.Graph

	acMu sync.Mutex
	ac   map[autocluster.Params]*autocluster.Result
}

// Autocluster returns the hierarchy-synthesis result for the design under
// the given params, cached per param set on the Generated (like SeqGraph),
// so engines replaying many jobs against the same circuit share one
// synthesized hierarchy. fresh reports whether this call built the result
// rather than hitting the cache.
func (g *Generated) Autocluster(p autocluster.Params) (res *autocluster.Result, fresh bool, err error) {
	g.acMu.Lock()
	defer g.acMu.Unlock()
	if r, ok := g.ac[p]; ok {
		return r, false, nil
	}
	r, err := autocluster.ClusterUsing(g.Design, p, g.SeqGraph())
	if err != nil {
		return nil, false, err
	}
	if g.ac == nil {
		g.ac = make(map[autocluster.Params]*autocluster.Result)
	}
	g.ac[p] = r
	return r, true, nil
}

// SeqGraph returns Gseq for the design under the default parameters, built
// on first use and cached on the Generated itself. Tying the cache to the
// circuit's lifetime lets the flow harness reuse one graph across flows
// without a process-global map that would retain every design ever served.
func (g *Generated) SeqGraph() *seqgraph.Graph {
	g.seqOnce.Do(func() {
		g.seq = seqgraph.Build(g.Design, seqgraph.DefaultParams())
	})
	return g.seq
}

// rowHeight is the synthetic library's standard cell row height in DBU
// (1 DBU = 1 nm).
const rowHeight = 1400

// macroClass is one memory size class.
type macroClass struct {
	w, h int64
	bits int // data width
}

var macroClasses = []macroClass{
	{36_000, 24_000, 32},
	{48_000, 30_000, 64},
	{64_000, 40_000, 128},
}

// Generate builds the design and intent for a spec. Equal specs generate
// identical designs.
func Generate(spec Spec) *Generated {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	b := netlist.NewBuilder(spec.Name)
	b.SetRowHeight(rowHeight)

	// --- Plan the subsystems -------------------------------------------
	subs := planSubsystems(spec, rng)
	var macroArea int64
	for _, s := range subs {
		macroArea += int64(s.macros) * s.class.w * s.class.h
	}
	// Estimate total area to size the die before placing ports.
	cellBudget := spec.ScaledCells()
	approxCellArea := int64(cellBudget) * avgCellArea()
	total := float64(macroArea + approxCellArea)
	side := int64(math.Sqrt(total/spec.Utilization))/1000*1000 + 1000
	die := geom.RectXYWH(0, 0, side, side)
	b.SetDie(die)

	// Regions are decided before the netlist so port placement can follow
	// the architecture (pads are assigned with the floorplan in mind).
	regions := planRegions(len(subs), die)

	// --- Structural netlist --------------------------------------------
	g := &genState{b: b, rng: rng, spec: spec, die: die, regions: regions}
	for k := range subs {
		g.buildSubsystem(k, &subs[k])
	}
	g.buildInterconnect(subs)
	g.buildPorts(subs)
	g.buildFiller(subs, cellBudget)

	d := b.MustBuild()
	if spec.Flat {
		fd, err := netlist.FlattenHier(d)
		if err != nil {
			panic(err) // generator-produced designs always flatten
		}
		d = fd
	}

	// --- Planted intent -------------------------------------------------
	intent := plantIntent(d, subs, regions, die)

	return &Generated{Design: d, Intent: intent, Spec: spec}
}

// GenFlat builds the same logical design as Generate but with the
// hierarchy stripped to a single root, exercising the autocluster
// front-end on an otherwise identical workload.
func GenFlat(spec Spec) *Generated {
	spec.Flat = true
	return Generate(spec)
}

// planRegions assigns serpentine grid regions in dataflow order, so that
// consecutive subsystems are adjacent.
func planRegions(S int, die geom.Rect) []geom.Rect {
	cols := int(math.Ceil(math.Sqrt(float64(S))))
	rows := (S + cols - 1) / cols
	out := make([]geom.Rect, S)
	for k := 0; k < S; k++ {
		row := k / cols
		col := k % cols
		if row%2 == 1 {
			col = cols - 1 - col
		}
		out[k] = geom.RectXYWH(
			die.X+die.W*int64(col)/int64(cols),
			die.Y+die.H*int64(row)/int64(rows),
			die.W/int64(cols),
			die.H/int64(rows),
		)
	}
	return out
}

// subPlan is the per-subsystem structural plan.
type subPlan struct {
	name   string
	macros int
	class  macroClass
	groups int // ram group nodes (extra hierarchy level when macro-rich)
	// filled in during building:
	dinRegs  [][]netlist.CellID // per ram, din register bits
	doutRegs [][]netlist.CellID
	inReg    []netlist.CellID // subsystem input register bits
	outReg   []netlist.CellID
	macroIDs []netlist.CellID
}

func planSubsystems(spec Spec, rng *rand.Rand) []subPlan {
	subs := make([]subPlan, spec.Subsystems)
	base := spec.Macros / spec.Subsystems
	extra := spec.Macros % spec.Subsystems
	for k := range subs {
		m := base
		if k < extra {
			m++
		}
		cls := macroClasses[rng.Intn(len(macroClasses))]
		groups := 0
		if m > 6 {
			groups = (m + 3) / 4
		}
		subs[k] = subPlan{
			name:   fmt.Sprintf("sub%d", k),
			macros: m,
			class:  cls,
			groups: groups,
		}
	}
	return subs
}

func avgCellArea() int64 {
	// Mix of comb footprints (the filler uses ~2*rowHeight wide cells) and
	// 4-row-wide flops.
	return 3 * rowHeight * rowHeight
}

type genState struct {
	b       *netlist.Builder
	rng     *rand.Rand
	spec    Spec
	die     geom.Rect
	regions []geom.Rect
}

// reg adds a register array of the given width under path, named
// path/<name>[i].
func (g *genState) reg(path, name string, width int) []netlist.CellID {
	ids := make([]netlist.CellID, width)
	for i := 0; i < width; i++ {
		ids[i] = g.b.AddFlop(fmt.Sprintf("%s/%s[%d]", path, name, i), path)
	}
	return ids
}

// pipe wires src -> comb -> dst bitwise, creating one comb cell per bit.
func (g *genState) pipe(tag string, src, dst []netlist.CellID, hier string) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		c := g.b.AddComb(fmt.Sprintf("%s_c%dx", tag, i), 2*rowHeight*rowHeight, hier)
		g.b.WireFanout(fmt.Sprintf("%s_a%d", tag, i), src[i], c)
		g.b.Wire(fmt.Sprintf("%s_b%d", tag, i), c, dst[i])
	}
	// Fan extra destination bits from the low source bits.
	for i := n; i < len(dst); i++ {
		c := g.b.AddComb(fmt.Sprintf("%s_c%dx", tag, i), 2*rowHeight*rowHeight, hier)
		g.b.WireFanout(fmt.Sprintf("%s_a%d", tag, i), src[i%n], c)
		g.b.Wire(fmt.Sprintf("%s_b%d", tag, i), c, dst[i])
	}
}

// buildSubsystem creates one macro-bearing unit: ram wrappers (optionally
// grouped), a local dataflow chain through the rams, and the subsystem
// boundary registers.
func (g *genState) buildSubsystem(k int, s *subPlan) {
	b := g.b
	W := g.spec.BusWidth
	s.inReg = g.reg(s.name, "in_r", W)
	s.outReg = g.reg(s.name, "out_r", W)

	w := s.class.bits
	for i := 0; i < s.macros; i++ {
		path := fmt.Sprintf("%s/ram%d", s.name, i)
		if s.groups > 0 {
			path = fmt.Sprintf("%s/grp%d/ram%d", s.name, i/4, i)
		}
		m := b.AddMacro(path+"/mem", s.class.w, s.class.h, path)
		s.macroIDs = append(s.macroIDs, m)
		din := g.reg(path, "din", w)
		dout := g.reg(path, "dout", w)
		s.dinRegs = append(s.dinRegs, din)
		s.doutRegs = append(s.doutRegs, dout)
		// Register-to-macro nets with pins on the west (din) and east
		// (dout) edges of the macro.
		for bit := 0; bit < w; bit++ {
			y := int64(bit+1) * s.class.h / int64(w+2)
			nd := b.Wire(fmt.Sprintf("%s_d%d", path, bit), din[bit])
			b.ConnectAt(m, nd, netlist.DirIn, geom.Pt(0, y))
			nq := b.Net(fmt.Sprintf("%s_q%d", path, bit))
			b.ConnectAt(m, nq, netlist.DirOut, geom.Pt(s.class.w, y))
			b.Connect(dout[bit], nq, netlist.DirIn)
		}
		// Wrapper control logic.
		for c := 0; c < 4; c++ {
			ctl := b.AddComb(fmt.Sprintf("%s/ctl%dx", path, c), 2*rowHeight*rowHeight, path)
			b.WireFanout(fmt.Sprintf("%s_ctl%d", path, c), din[c%w], ctl)
		}
	}

	// Local dataflow chain: in_r -> ram0 -> ram1 -> ... -> out_r.
	g.pipe(s.name+"_head", s.inReg, s.dinRegs[0], s.name)
	for i := 1; i < s.macros; i++ {
		g.pipe(fmt.Sprintf("%s_ch%d", s.name, i), s.doutRegs[i-1], s.dinRegs[i], s.name)
	}
	g.pipe(s.name+"_tail", s.doutRegs[s.macros-1], s.outReg, s.name)
}

// buildInterconnect wires the subsystems through pipelined buses living in
// top-level xfer nodes (glue). Chain topology pipelines consecutive
// subsystems; star topology bounces every subsystem's output through a
// central crossbar register bank back into the next subsystem's input.
func (g *genState) buildInterconnect(subs []subPlan) {
	W := g.spec.BusWidth
	if g.spec.Topology == "star" {
		hub := g.reg("xbar", "hub", W)
		for k := range subs {
			up := fmt.Sprintf("xbar/up%d", k)
			prev := subs[k].outReg
			for st := 0; st < g.spec.PipelineDepth; st++ {
				stage := g.reg(up, fmt.Sprintf("st%d", st), W)
				g.pipe(fmt.Sprintf("%s_s%d", up, st), prev, stage, up)
				prev = stage
			}
			g.pipe(up+"_in", prev, hub, up)
			if k+1 < len(subs) {
				down := fmt.Sprintf("xbar/dn%d", k+1)
				g.pipe(down+"_out", hub, subs[k+1].inReg, down)
			}
		}
		return
	}
	for k := 0; k+1 < len(subs); k++ {
		prev := subs[k].outReg
		path := fmt.Sprintf("xfer%d", k)
		for st := 0; st < g.spec.PipelineDepth; st++ {
			stage := g.reg(path, fmt.Sprintf("st%d", st), W)
			g.pipe(fmt.Sprintf("%s_s%d", path, st), prev, stage, path)
			prev = stage
		}
		g.pipe(path+"_out", prev, subs[k+1].inReg, path)
	}
}

// buildPorts adds the bus ports, clustered on the die edge nearest the
// first (din) and last (dout) subsystem regions — pad assignment follows
// the floorplan architecture, as it does in practice.
func (g *genState) buildPorts(subs []subPlan) {
	b := g.b
	W := g.spec.BusWidth
	din := edgeSpread(g.die, g.regions[0], W)
	for bit := 0; bit < W; bit++ {
		p := b.AddPort(fmt.Sprintf("din[%d]", bit))
		b.SetPortPos(p, din[bit])
		c := b.AddComb(fmt.Sprintf("pin_c%dx", bit), 2*rowHeight*rowHeight, "")
		b.Wire(fmt.Sprintf("pin_a%d", bit), p, c)
		b.Wire(fmt.Sprintf("pin_b%d", bit), c, subs[0].inReg[bit])
	}
	last := subs[len(subs)-1]
	dout := edgeSpread(g.die, g.regions[len(subs)-1], W)
	for bit := 0; bit < W; bit++ {
		p := b.AddPort(fmt.Sprintf("dout[%d]", bit))
		b.SetPortPos(p, dout[bit])
		c := b.AddComb(fmt.Sprintf("pout_c%dx", bit), 2*rowHeight*rowHeight, "")
		b.Wire(fmt.Sprintf("pout_a%d", bit), last.outReg[bit], c)
		n := b.Net(fmt.Sprintf("pout_b%d", bit))
		b.Connect(c, n, netlist.DirOut)
		b.Connect(p, n, netlist.DirIn)
	}
}

// edgeSpread returns n port positions spread along the stretch of the die
// boundary nearest to a region.
func edgeSpread(die, region geom.Rect, n int) []geom.Point {
	c := region.Center()
	dl := c.X - die.X
	dr := die.X2() - c.X
	db := c.Y - die.Y
	dt := die.Y2() - c.Y
	out := make([]geom.Point, n)
	min := dl
	if dr < min {
		min = dr
	}
	if db < min {
		min = db
	}
	if dt < min {
		min = dt
	}
	for i := 0; i < n; i++ {
		t := region.Y + int64(i+1)*region.H/int64(n+2)
		tx := region.X + int64(i+1)*region.W/int64(n+2)
		switch min {
		case dl:
			out[i] = geom.Pt(die.X, t)
		case dr:
			out[i] = geom.Pt(die.X2(), t)
		case db:
			out[i] = geom.Pt(tx, die.Y)
		default:
			out[i] = geom.Pt(tx, die.Y2())
		}
	}
	return out
}

// buildFiller adds chains of logic until the cell budget is met. Chains
// live in per-subsystem logic groups, rooted at subsystem registers so the
// glue-assignment BFS can reach them.
func (g *genState) buildFiller(subs []subPlan, budget int) {
	b := g.b
	const groupsPerSub = 4
	chain := 0
	for b.NumCells() < budget {
		k := chain % len(subs)
		s := &subs[k]
		grp := (chain / len(subs)) % groupsPerSub
		path := fmt.Sprintf("%s/logic%d", s.name, grp)
		id := fmt.Sprintf("%s/ch%d", path, chain)

		// Head register driven from a subsystem source.
		head := make([]netlist.CellID, 4)
		for i := range head {
			head[i] = b.AddFlop(fmt.Sprintf("%s_h[%d]", id, i), path)
		}
		src := s.inReg[(chain*7)%len(s.inReg)]
		if len(s.doutRegs) > 0 && chain%3 == 0 {
			dr := s.doutRegs[chain%len(s.doutRegs)]
			src = dr[(chain*5)%len(dr)]
		}
		c0 := b.AddComb(id+"_root", 2*rowHeight*rowHeight, path)
		b.WireFanout(id+"_rn", src, c0)
		b.Wire(id+"_hn", c0, head...)

		// Chain body: head -> comb x6 -> tail, with a second structural
		// anchor in the middle — glue logic genuinely sits between the
		// registers of its unit, it does not hang off a single bit.
		prevDrv := head[0]
		for j := 0; j < 6; j++ {
			c := b.AddComb(fmt.Sprintf("%s_b%dx", id, j), 2*rowHeight*rowHeight, path)
			b.Wire(fmt.Sprintf("%s_w%d", id, j), prevDrv, c)
			if j == 3 && len(s.doutRegs) > 0 {
				dr := s.doutRegs[(chain+1+chain/3)%len(s.doutRegs)]
				b.WireFanout(fmt.Sprintf("%s_x%d", id, j), dr[(chain*11)%len(dr)], c)
			}
			prevDrv = c
		}
		tail := make([]netlist.CellID, 4)
		for i := range tail {
			tail[i] = b.AddFlop(fmt.Sprintf("%s_t[%d]", id, i), path)
		}
		b.Wire(id+"_tn", prevDrv, tail...)
		chain++
	}
}

// plantIntent records where the architect meant every macro to go: each
// subsystem's macros shelf-pack in chain order against the side of its
// region that faces the nearest die wall, leaving the region core open for
// standard cells (the layout style expert backend engineers produce).
func plantIntent(d *netlist.Design, subs []subPlan, regions []geom.Rect, die geom.Rect) handfp.Intent {
	intent := handfp.Intent{}
	for k := range subs {
		shelfPack(d, &subs[k], regions[k], die, intent)
	}
	return intent
}

// shelfPack lays a subsystem's macros in rows in chain order, starting from
// the region edge nearest a die wall (rotating macros that do not fit the
// region width), clamped to the die.
func shelfPack(d *netlist.Design, s *subPlan, region, die geom.Rect, intent handfp.Intent) {
	const gap = 2_000 // DBU channel between macros for routing
	fromTop := region.Center().Y > die.Center().Y
	x := region.X
	var cursor int64 // distance consumed from the packing edge
	var shelfH int64
	for _, m := range s.macroIDs {
		c := d.Cell(m)
		w, h := c.Width, c.Height
		if w > region.W && h <= region.W {
			w, h = h, w // rotate to fit the region width
		}
		if x+w > region.X2() {
			x = region.X
			cursor += shelfH + gap
			shelfH = 0
		}
		y := region.Y + cursor
		if fromTop {
			y = region.Y2() - cursor - h
		}
		r := geom.RectXYWH(x, y, w, h).ClampInside(die)
		intent[c.Name] = r
		x += w + gap
		if h > shelfH {
			shelfH = h
		}
	}
}
