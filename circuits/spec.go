// Package circuits generates the synthetic industrial designs used by the
// benchmark harness. The paper evaluates on eight proprietary eSilicon
// circuits (c1–c8) whose RTL hierarchy and array information cannot be
// published; this package builds hierarchical netlists with the same
// structural signature — memory-dominated subsystems, multi-bit register
// pipelines, wide inter-subsystem buses, boundary ports — plus a *planted
// floorplan intent* that stands in for the expert backend engineers'
// handcrafted solution.
//
// Macro counts match the paper exactly; standard-cell counts are divided by
// Spec.Scale (default 50) so the whole suite runs on a laptop. Cell count
// only affects substrate runtime, not which flow wins: the floorplanning
// difficulty lives in the macros and the dataflow structure.
package circuits

import "fmt"

// Spec parameterizes one synthetic design.
type Spec struct {
	// Name identifies the circuit (c1..c8 for the paper suite).
	Name string
	// Cells is the paper's standard-cell count; the generator creates
	// Cells/Scale cells.
	Cells int
	// Macros is the total macro count (matches the paper exactly).
	Macros int
	// Subsystems is the number of macro-bearing functional units.
	Subsystems int
	// BusWidth is the inter-subsystem bus width in bits.
	BusWidth int
	// PipelineDepth is the register stage count on inter-subsystem buses.
	PipelineDepth int
	// Topology selects the inter-subsystem dataflow: "chain" (default)
	// pipelines sub0 → sub1 → …; "star" exchanges every subsystem with a
	// central crossbar hub (the bus/crossbar pattern of real SoCs).
	Topology string
	// Scale divides Cells (default 50).
	Scale int
	// Utilization sets the die area: total cell area / Utilization.
	Utilization float64
	// Seed drives all randomized structure decisions.
	Seed int64
	// Flat strips the RTL hierarchy from the generated design (every cell
	// moves to the root), turning any spec into an autocluster regression
	// workload. Connectivity, names and the planted intent are unchanged.
	Flat bool
}

func (s Spec) withDefaults() Spec {
	if s.Scale <= 0 {
		s.Scale = 50
	}
	if s.Utilization <= 0 {
		s.Utilization = 0.70
	}
	if s.Subsystems <= 0 {
		s.Subsystems = 4
	}
	if s.BusWidth <= 0 {
		s.BusWidth = 64
	}
	if s.PipelineDepth <= 0 {
		s.PipelineDepth = 2
	}
	if s.Topology == "" {
		s.Topology = "chain"
	}
	return s
}

// Canonical returns the spec with every defaulted field made explicit, so
// two specs that generate the same design compare (and fingerprint) equal.
// Generate(s) and Generate(s.Canonical()) build identical designs.
func (s Spec) Canonical() Spec { return s.withDefaults() }

// ScaledCells returns the number of standard cells the generator targets.
func (s Spec) ScaledCells() int {
	sc := s.withDefaults()
	n := sc.Cells / sc.Scale
	if n < 200 {
		n = 200
	}
	return n
}

// Suite returns the paper's eight circuits (Table III row parameters:
// cells and macro counts match exactly; the remaining structure follows
// each circuit's character — e.g. c5 is macro-dense and small, c6 is
// cell-heavy with big macros).
func Suite() []Spec {
	return []Spec{
		{Name: "c1", Cells: 520_000, Macros: 32, Subsystems: 3, BusWidth: 64, PipelineDepth: 2, Seed: 101},
		{Name: "c2", Cells: 3_950_000, Macros: 100, Subsystems: 8, BusWidth: 128, PipelineDepth: 2, Seed: 102},
		{Name: "c3", Cells: 3_780_000, Macros: 94, Subsystems: 8, BusWidth: 128, PipelineDepth: 3, Seed: 103},
		{Name: "c4", Cells: 4_810_000, Macros: 122, Subsystems: 10, BusWidth: 128, PipelineDepth: 2, Seed: 104},
		{Name: "c5", Cells: 1_390_000, Macros: 133, Subsystems: 10, BusWidth: 64, PipelineDepth: 2, Seed: 105},
		{Name: "c6", Cells: 2_870_000, Macros: 90, Subsystems: 6, BusWidth: 128, PipelineDepth: 3, Seed: 106},
		{Name: "c7", Cells: 1_670_000, Macros: 108, Subsystems: 9, BusWidth: 64, PipelineDepth: 2, Seed: 107},
		{Name: "c8", Cells: 2_200_000, Macros: 37, Subsystems: 4, BusWidth: 64, PipelineDepth: 2, Seed: 108},
	}
}

// SuiteSpec returns the named suite circuit.
func SuiteSpec(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("circuits: unknown suite circuit %q", name)
}
