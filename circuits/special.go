package circuits

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/handfp"
	"repro/internal/netlist"
)

// Fig1Design reproduces the running example of the paper's Fig. 1: a
// 16-macro design whose first partition yields two 8-macro components and a
// standard-cell block between them; each side splits again into two 4-macro
// groups. Ports enter on the west, leave on the east.
func Fig1Design() *Generated {
	b := netlist.NewBuilder("fig1")
	b.SetRowHeight(rowHeight)
	die := geom.RectXYWH(0, 0, 400_000, 400_000)
	b.SetDie(die)

	const W = 32
	mw, mh := int64(36_000), int64(24_000)

	reg := func(path, name string, width int) []netlist.CellID {
		ids := make([]netlist.CellID, width)
		for i := 0; i < width; i++ {
			ids[i] = b.AddFlop(fmt.Sprintf("%s/%s[%d]", path, name, i), path)
		}
		return ids
	}
	pipe := func(tag, hier string, src, dst []netlist.CellID) {
		for i := range dst {
			c := b.AddComb(fmt.Sprintf("%s_c%dx", tag, i), 2*rowHeight*rowHeight, hier)
			b.WireFanout(fmt.Sprintf("%s_a%d", tag, i), src[i%len(src)], c)
			b.Wire(fmt.Sprintf("%s_b%d", tag, i), c, dst[i])
		}
	}

	// side builds 8 macros in two groups of 4, chained internally.
	side := func(name string) (in, out []netlist.CellID, macros []netlist.CellID) {
		var prev []netlist.CellID
		for i := 0; i < 8; i++ {
			path := fmt.Sprintf("%s/grp%d/ram%d", name, i/4, i)
			m := b.AddMacro(path+"/mem", mw, mh, path)
			macros = append(macros, m)
			din := reg(path, "din", W)
			dout := reg(path, "dout", W)
			for bit := 0; bit < W; bit++ {
				y := int64(bit+1) * mh / (W + 2)
				b.ConnectAt(m, b.Wire(fmt.Sprintf("%s_d%d", path, bit), din[bit]), netlist.DirIn, geom.Pt(0, y))
				nq := b.Net(fmt.Sprintf("%s_q%d", path, bit))
				b.ConnectAt(m, nq, netlist.DirOut, geom.Pt(mw, y))
				b.Connect(dout[bit], nq, netlist.DirIn)
			}
			if i == 0 {
				in = din
			} else {
				pipe(fmt.Sprintf("%s_ch%d", name, i), name, prev, din)
			}
			prev = dout
		}
		return in, prev, macros
	}

	lin, lout, _ := side("left")
	rin, rout, _ := side("right")

	// X: the central standard-cell block (big enough to pass min_area).
	xRegIn := reg("x", "xin", W)
	xRegOut := reg("x", "xout", W)
	pipe("x_through", "x", xRegIn, xRegOut)
	// X's bulk logic exceeds min_area (40% of the design) so declustering
	// keeps it as a standard-cell block, as in the paper's figure.
	for i := 0; i < 60; i++ {
		b.AddComb(fmt.Sprintf("x/bulk%dx", i), 350_000_000, "x")
	}
	pipe("l2x", "x", lout, xRegIn)
	pipe("x2r", "x", xRegOut, rin)

	for bit := 0; bit < W; bit++ {
		p := b.AddPort(fmt.Sprintf("din[%d]", bit))
		b.SetPortPos(p, geom.Pt(0, int64(bit+1)*die.H/(W+2)))
		c := b.AddComb(fmt.Sprintf("pin%dx", bit), 2*rowHeight*rowHeight, "")
		b.Wire(fmt.Sprintf("pin_a%d", bit), p, c)
		b.Wire(fmt.Sprintf("pin_b%d", bit), c, lin[bit])

		q := b.AddPort(fmt.Sprintf("dout[%d]", bit))
		b.SetPortPos(q, geom.Pt(die.X2(), int64(bit+1)*die.H/(W+2)))
		c2 := b.AddComb(fmt.Sprintf("pout%dx", bit), 2*rowHeight*rowHeight, "")
		b.Wire(fmt.Sprintf("pout_a%d", bit), rout[bit], c2)
		n := b.Net(fmt.Sprintf("pout_b%d", bit))
		b.Connect(c2, n, netlist.DirOut)
		b.Connect(q, n, netlist.DirIn)
	}

	d := b.MustBuild()

	// Intent: left third / right third, macros shelf-packed; X center.
	intent := handfp.Intent{}
	third := die.W / 3
	packSide := func(prefix string, x0 int64) {
		i := 0
		for _, m := range d.Macros() {
			name := d.Cell(m).Name
			if len(name) < len(prefix) || name[:len(prefix)] != prefix {
				continue
			}
			col := int64(i % 2)
			row := int64(i / 2)
			intent[name] = geom.RectXYWH(x0+col*(mw+4_000), die.Y+row*(mh+4_000)+8_000, mw, mh)
			i++
		}
	}
	packSide("left", die.X+4_000)
	packSide("right", die.X2()-third+4_000)
	return &Generated{Design: d, Intent: intent, Spec: Spec{Name: "fig1", Macros: 16}}
}

// ABCDX reproduces the 4-blocks-plus-X system of the paper's Figs. 2 and 3:
// blocks A–D each hold two macros; X is a pure standard-cell block. Every
// block exchanges data with X directly (block flow, Fig. 2a) while the
// macro dataflow chains A → B → C → D through X's registers (macro flow,
// Fig. 2b). Laying it out with different λ reproduces Fig. 3.
func ABCDX() *Generated {
	b := netlist.NewBuilder("abcdx")
	b.SetRowHeight(rowHeight)
	die := geom.RectXYWH(0, 0, 500_000, 500_000)
	b.SetDie(die)

	const W = 32
	mw, mh := int64(40_000), int64(25_000)

	reg := func(path, name string, width int) []netlist.CellID {
		ids := make([]netlist.CellID, width)
		for i := 0; i < width; i++ {
			ids[i] = b.AddFlop(fmt.Sprintf("%s/%s[%d]", path, name, i), path)
		}
		return ids
	}
	pipe := func(tag, hier string, src, dst []netlist.CellID) {
		for i := range dst {
			c := b.AddComb(fmt.Sprintf("%s_c%dx", tag, i), 2*rowHeight*rowHeight, hier)
			b.WireFanout(fmt.Sprintf("%s_a%d", tag, i), src[i%len(src)], c)
			b.Wire(fmt.Sprintf("%s_b%d", tag, i), c, dst[i])
		}
	}

	type blk struct {
		din, dout []netlist.CellID
	}
	mkBlock := func(name string) blk {
		var first, last []netlist.CellID
		for i := 0; i < 2; i++ {
			path := fmt.Sprintf("%s/ram%d", name, i)
			m := b.AddMacro(path+"/mem", mw, mh, path)
			din := reg(path, "din", W)
			dout := reg(path, "dout", W)
			for bit := 0; bit < W; bit++ {
				y := int64(bit+1) * mh / (W + 2)
				b.ConnectAt(m, b.Wire(fmt.Sprintf("%s_d%d", path, bit), din[bit]), netlist.DirIn, geom.Pt(0, y))
				nq := b.Net(fmt.Sprintf("%s_q%d", path, bit))
				b.ConnectAt(m, nq, netlist.DirOut, geom.Pt(mw, y))
				b.Connect(dout[bit], nq, netlist.DirIn)
			}
			if i == 0 {
				first = din
			} else {
				pipe(name+"_int", name, last, din)
			}
			last = dout
		}
		return blk{din: first, dout: last}
	}

	A := mkBlock("A")
	B := mkBlock("B")
	C := mkBlock("C")
	D := mkBlock("D")

	// X: standard-cell hub with per-block exchange registers.
	// X's bulk clears the 40% min_area bar so it becomes a soft block.
	for i := 0; i < 60; i++ {
		b.AddComb(fmt.Sprintf("x/bulk%dx", i), 150_000_000, "x")
	}
	hub := map[string]blk{}
	for _, name := range []string{"a", "b", "c", "d"} {
		hub[name] = blk{
			din:  reg("x", name+"_rx", W),
			dout: reg("x", name+"_tx", W),
		}
	}
	// Block flow: every block talks to X bidirectionally (latency 1).
	for name, bl := range map[string]blk{"a": A, "b": B, "c": C, "d": D} {
		pipe("bf_"+name+"_up", "x", bl.dout, hub[name].din)
		pipe("bf_"+name+"_dn", "x", hub[name].dout, bl.din)
	}
	// Macro flow: the chain A -> B -> C -> D rides through X's registers
	// (rx of one block feeds tx of the next).
	pipe("mf_ab", "x", hub["a"].din, hub["b"].dout)
	pipe("mf_bc", "x", hub["b"].din, hub["c"].dout)
	pipe("mf_cd", "x", hub["c"].din, hub["d"].dout)

	d := b.MustBuild()

	intent := handfp.Intent{}
	// Intended layout (Fig. 3c): the chain wraps around a central X:
	// A and B on the west, C and D on the east.
	spots := map[string]geom.Point{
		"A/ram0/mem": geom.Pt(10_000, 60_000), "A/ram1/mem": geom.Pt(60_000, 60_000),
		"B/ram0/mem": geom.Pt(10_000, 300_000), "B/ram1/mem": geom.Pt(60_000, 300_000),
		"C/ram0/mem": geom.Pt(390_000, 300_000), "C/ram1/mem": geom.Pt(440_000, 300_000),
		"D/ram0/mem": geom.Pt(390_000, 60_000), "D/ram1/mem": geom.Pt(440_000, 60_000),
	}
	for name, p := range spots {
		intent[name] = geom.RectXYWH(p.X, p.Y, mw, mh)
	}
	return &Generated{Design: d, Intent: intent, Spec: Spec{Name: "abcdx", Macros: 8}}
}
