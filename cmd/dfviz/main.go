// Command dfviz renders the dataflow graph Gdf of a circuit as SVG — the
// static counterpart of the paper's interactive dataflow visualization
// (Fig. 9d). It declusters the requested hierarchy level, infers block and
// macro flow, and draws blocks at their HiDaP positions with
// affinity-weighted edges.
//
// Usage:
//
//	dfviz -circuit c3 -out c3_gdf.svg
//	dfviz -circuit c5 -node sub2 -lambda 0.8 -out sub2.svg
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/circuits"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/geom"
	"repro/internal/hier"
	"repro/internal/render"
	"repro/internal/seqgraph"
)

func main() {
	var (
		ckt    = flag.String("circuit", "c3", "suite circuit name")
		scale  = flag.Int("scale", 50, "cell-count divisor")
		node   = flag.String("node", "", "hierarchy path to visualize (default: top)")
		lambda = flag.Float64("lambda", 0.5, "affinity blend λ")
		k      = flag.Float64("k", 2, "latency decay exponent")
		out    = flag.String("out", "gdf.svg", "output SVG path")
		seed   = flag.Int64("seed", 1, "seed for the block layout")
	)
	flag.Parse()

	spec, err := circuits.SuiteSpec(*ckt)
	if err != nil {
		fatal(err)
	}
	spec.Scale = *scale
	g := circuits.Generate(spec)
	d := g.Design

	nh := d.Root()
	if *node != "" {
		if nh = d.NodeByPath(*node); nh == -1 {
			fatal(fmt.Errorf("hierarchy node %q not found", *node))
		}
	}

	tr := hier.New(d)
	decl := tr.Decluster(nh, hier.DefaultParams())
	sg := seqgraph.Build(d, seqgraph.DefaultParams())
	gdf := dataflow.Build(sg, decl)
	aff := gdf.Affinity(dataflow.Params{Lambda: *lambda, K: *k})

	// Block positions from a traced HiDaP run (the floorplan of Fig. 9d).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opt := core.DefaultOptions()
	opt.Lambda = *lambda
	opt.K = *k
	opt.Seed = *seed
	opt.Trace = true
	res, err := core.Place(ctx, d, opt)
	if err != nil {
		fatal(err)
	}
	var rects []geom.Rect
	region := d.Die
	for _, lv := range res.Trace {
		if (lv.Path == "" && *node == "") || lv.Path == *node {
			region = lv.Region
			for _, b := range lv.Blocks {
				rects = append(rects, b.Rect)
			}
			break
		}
	}
	if rects == nil {
		// Level was not floorplanned (single block): tile uniformly.
		for i := range decl.Blocks {
			w := region.W / int64(len(decl.Blocks))
			rects = append(rects, geom.RectXYWH(region.X+int64(i)*w, region.Y, w, region.H))
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	render.Dataflow(f, region, gdf, aff, rects, nil, 800)

	st := gdf.Stats()
	fmt.Printf("dfviz: %s level %q: %d blocks, %d ports, %d ext macros, %d block-flow + %d macro-flow edges -> %s\n",
		spec.Name, *node, st.Blocks, st.Ports, st.ExtMacros, st.BlockEdges, st.MacroEdges, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfviz:", err)
	os.Exit(1)
}
