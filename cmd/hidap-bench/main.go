// Command hidap-bench regenerates the paper's experimental evaluation:
// Table I (graph sizes), Table II (flow summary), Table III (per-circuit
// metrics) and the Fig. 9 artifacts (density maps and the top-level
// dataflow floorplan).
//
// Usage:
//
//	hidap-bench -table1                 # abstraction sizes for one circuit
//	hidap-bench -table2 -table3         # the headline comparison
//	hidap-bench -fig9 -outdir artifacts # density maps + Gdf SVG for c3
//	hidap-bench -circuits c1,c3 -scale 100 -effort low
//	hidap-bench -cluster-smoke -smoke-insts 50000 -json BENCH_smoke.json
//	hidap-bench -emit flat.json -smoke-insts 100000   # flat netlist for cmd/hidap
//	hidap-bench -sched-bench -json BENCH_PR7.json     # scheduler scaling record
//	hidap-bench -batch-bench -json BENCH_PR10.json    # speculative batching record
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/circuits"
	"repro/internal/anneal"
	"repro/internal/autocluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/flows"
	"repro/internal/geom"
	"repro/internal/hier"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/render"
	"repro/internal/sched"
	"repro/internal/seqgraph"
	"repro/internal/shape"
	"repro/internal/slicing"
)

func main() {
	var (
		table1  = flag.Bool("table1", false, "print Table I (circuit abstraction sizes)")
		table2  = flag.Bool("table2", false, "print Table II (summary of the three flows)")
		table3  = flag.Bool("table3", false, "print Table III (per-circuit metrics)")
		fig9    = flag.Bool("fig9", false, "emit Fig. 9 artifacts (density maps, dataflow SVG) for -fig9ckt")
		fig9ckt = flag.String("fig9ckt", "c3", "circuit for -fig9")
		ckts    = flag.String("circuits", "all", "comma-separated circuit names or 'all'")
		scale   = flag.Int("scale", 50, "cell-count divisor vs the paper's sizes")
		effort  = flag.String("effort", "medium", "HiDaP annealing effort: low|medium|high")
		seed    = flag.Int64("seed", 1, "base random seed")
		outdir  = flag.String("outdir", "artifacts", "output directory for SVG/asciimap artifacts")
		csvOut  = flag.String("csv", "", "also write per-circuit rows as CSV to this path")
		jsonOut = flag.String("json", "", "also write rows + summary as JSON to this path ('-' for stdout), for BENCH_*.json trajectory tracking")

		smoke      = flag.Bool("cluster-smoke", false, "run the autoclustering smoke: cluster a flat netlist and solve it e2e, flat vs born-hierarchical")
		smokeInsts = flag.Int("smoke-insts", 50_000, "instance count of the smoke/-emit netlist")
		emit       = flag.String("emit", "", "write the flat smoke netlist as design JSON to this path (for cmd/hidap -cluster) and exit")

		schedBench  = flag.Bool("sched-bench", false, "time one multi-start level solve across GOMAXPROCS/parallelism settings and verify identical results")
		schedBlocks = flag.Int("sched-blocks", 24, "block count of the -sched-bench level")
		schedChains = flag.Int("sched-chains", 8, "restart chains of the -sched-bench solve")
		minSpeedup  = flag.Float64("min-speedup", 0, "with -sched-bench: fail unless speedup_vs_serial at parallelism 4 reaches this (gate skipped, with a note, when the machine has < 4 cores)")

		batchBench = flag.Bool("batch-bench", false, "time the annealing hot loop across speculative batch sizes and verify identical results")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this path")
	)
	flag.Parse()
	if !*table1 && !*table2 && !*table3 && !*fig9 {
		*table2, *table3 = true, true
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle the heap so the profile shows retained objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}()
	}

	if *emit != "" {
		if err := emitFlat(*emit, *smokeInsts); err != nil {
			fatal(err)
		}
		return
	}
	if *smoke {
		if err := runClusterSmoke(ctx, *jsonOut, *smokeInsts, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if *schedBench {
		if err := runSchedBench(ctx, *jsonOut, *schedBlocks, *schedChains, *seed, *minSpeedup); err != nil {
			fatal(err)
		}
		return
	}
	if *batchBench {
		if err := runBatchBench(ctx, *jsonOut, *seed); err != nil {
			fatal(err)
		}
		return
	}

	specs, err := selectSpecs(*ckts, *scale)
	if err != nil {
		fatal(err)
	}
	opt := flows.DefaultOptions()
	opt.Seed = *seed
	switch *effort {
	case "low":
		opt.Effort = layout.EffortLow
	case "high":
		opt.Effort = layout.EffortHigh
	}

	if *table1 {
		printTable1(specs[0])
	}

	if *table2 || *table3 {
		rows := runSuite(ctx, specs, opt)
		flows.Normalize(rows)
		if *table3 {
			printTable3(rows)
		}
		if *table2 {
			printTable2(rows)
		}
		if *csvOut != "" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fatal(err)
			}
			if err := flows.WriteCSV(f, rows); err != nil {
				fatal(err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "# wrote %s\n", *csvOut)
		}
		if *jsonOut != "" {
			if err := writeBenchJSON(*jsonOut, rows, *scale, *effort, *seed); err != nil {
				fatal(err)
			}
		}
	}

	if *fig9 {
		if err := emitFig9(ctx, *fig9ckt, *scale, opt, *outdir); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hidap-bench:", err)
	os.Exit(1)
}

// benchJSON is the machine-readable benchmark record: the run parameters,
// every Table III row and the Table II summary. Committing one of these per
// milestone (BENCH_<date>.json) tracks the perf/quality trajectory.
type benchJSON struct {
	Scale   int              `json:"scale"`
	Effort  string           `json:"effort"`
	Seed    int64            `json:"seed"`
	Rows    []*flows.Metrics `json:"rows"`
	Summary []flows.Summary  `json:"summary"`
}

func writeBenchJSON(path string, rows []*flows.Metrics, scale int, effort string, seed int64) error {
	var out io.Writer = os.Stdout
	var f *os.File
	if path != "-" {
		var err error
		if f, err = os.Create(path); err != nil {
			return err
		}
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	err := enc.Encode(benchJSON{
		Scale: scale, Effort: effort, Seed: seed,
		Rows: rows, Summary: flows.Summarize(rows),
	})
	if f != nil {
		// Close errors surface buffered-writeback failures (disk full): a
		// truncated trajectory record must not be reported as written.
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if path != "-" {
		fmt.Fprintf(os.Stderr, "# wrote %s\n", path)
	}
	return nil
}

func selectSpecs(names string, scale int) ([]circuits.Spec, error) {
	var specs []circuits.Spec
	if names == "all" {
		specs = circuits.Suite()
	} else {
		for _, n := range strings.Split(names, ",") {
			s, err := circuits.SuiteSpec(strings.TrimSpace(n))
			if err != nil {
				return nil, err
			}
			specs = append(specs, s)
		}
	}
	for i := range specs {
		specs[i].Scale = scale
	}
	return specs, nil
}

func runSuite(ctx context.Context, specs []circuits.Spec, opt flows.Options) []*flows.Metrics {
	var rows []*flows.Metrics
	for _, spec := range specs {
		g := circuits.Generate(spec)
		st := g.Design.Stats()
		fmt.Fprintf(os.Stderr, "# %s: %d cells, %d macros, die %.1fx%.1f mm\n",
			spec.Name, st.Cells, st.MacroCells,
			float64(g.Design.Die.W)/1e6, float64(g.Design.Die.H)/1e6)
		for _, f := range []flows.Flow{flows.FlowIndEDA, flows.FlowHiDaP, flows.FlowHandFP} {
			m, _, err := flows.Run(ctx, g, f, opt)
			if err != nil {
				fatal(fmt.Errorf("%s/%s: %w", spec.Name, f, err))
			}
			rows = append(rows, m)
		}
	}
	return rows
}

// printTable1 mirrors the paper's Table I: sizes of the circuit
// abstractions (HT, Gnet, Gseq, Gdf) for one suite circuit.
func printTable1(spec circuits.Spec) {
	g := circuits.Generate(spec)
	d := g.Design
	st := d.Stats()
	tr := hier.New(d)
	sg := seqgraph.Build(d, seqgraph.DefaultParams())
	sgst := sg.Stats()
	decl := tr.Decluster(d.Root(), hier.DefaultParams())
	gdf := dataflow.Build(sg, decl)
	gst := gdf.Stats()

	fmt.Printf("TABLE I: circuit abstractions for %s (scale 1/%d)\n", spec.Name, spec.Scale)
	fmt.Printf("%-6s %-10s %s\n", "Graph", "Size", "Vertices")
	fmt.Printf("%-6s %-10d hierarchy nodes\n", "HT", st.HierNodes)
	fmt.Printf("%-6s %-10d macros, ports, sequential and combinational cells (%d nets)\n",
		"Gnet", st.Cells, st.Nets)
	fmt.Printf("%-6s %-10d macros, multi-bit ports and registers (%d edges)\n",
		"Gseq", sgst.Nodes, sgst.Edges)
	fmt.Printf("%-6s %-10d blocks and multi-bit ports (%d block-flow + %d macro-flow edges)\n",
		"Gdf", gst.Nodes, gst.BlockEdges, gst.MacroEdges)
	fmt.Println()
}

// printTable3 mirrors the paper's Table III.
func printTable3(rows []*flows.Metrics) {
	fmt.Println("TABLE III: metrics after placement using the three flows")
	fmt.Printf("%-4s %-8s %10s %8s %8s %9s %10s %8s\n",
		"ckt", "flow", "WL(m)", "norm", "GRC%", "WNS%", "TNS(ns)", "time(s)")
	var last string
	for _, r := range rows {
		if r.Circuit != last {
			fmt.Println(strings.Repeat("-", 72))
			last = r.Circuit
		}
		lam := ""
		if r.Flow == flows.FlowHiDaP {
			lam = fmt.Sprintf(" λ=%.1f", r.Lambda)
		}
		fmt.Printf("%-4s %-8s %10.3f %8.3f %8.2f %9.1f %10.1f %8.1f%s\n",
			r.Circuit, r.Flow, r.WirelengthM, r.WLnorm, r.CongestionPct, r.WNSPct, r.TNSns, r.MacroSeconds, lam)
	}
	fmt.Println()
}

// printTable2 mirrors the paper's Table II.
func printTable2(rows []*flows.Metrics) {
	fmt.Println("TABLE II: average WL, WNS and effort for the three flows")
	fmt.Printf("%-8s %12s %10s   %s\n", "flow", "WL(geomean)", "WNS(mean)", "effort")
	for _, s := range flows.Summarize(rows) {
		fmt.Printf("%-8s %12.3f %9.1f%%   %s\n", s.Flow, s.WLGeoMean, s.WNSMean, s.Effort)
	}
	fmt.Println()
}

// emitFig9 renders the density maps of one circuit under the three flows
// plus the top-level Gdf block floorplan (Fig. 9a-d).
func emitFig9(ctx context.Context, name string, scale int, opt flows.Options, outdir string) error {
	spec, err := circuits.SuiteSpec(name)
	if err != nil {
		return err
	}
	spec.Scale = scale
	g := circuits.Generate(spec)
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}

	for _, f := range []flows.Flow{flows.FlowIndEDA, flows.FlowHiDaP, flows.FlowHandFP} {
		m, pl, err := flows.Run(ctx, g, f, opt)
		if err != nil {
			return err
		}
		dm := metrics.Density(pl, 32)
		path := filepath.Join(outdir, fmt.Sprintf("fig9_%s_%s_density.svg", name, f))
		fd, err := os.Create(path)
		if err != nil {
			return err
		}
		render.DensityMap(fd, pl, dm, 640)
		fd.Close()
		fmt.Printf("Fig9 %-7s WL=%.3fm peak-density=%.2f -> %s\n", f, m.WirelengthM, dm.Peak(), path)
		fmt.Println(render.DensityASCII(metrics.Density(pl, 24)))
	}

	// Fig 9d: top-level Gdf floorplan from the HiDaP trace.
	coreOpt := core.DefaultOptions()
	coreOpt.Seed = opt.Seed
	coreOpt.Trace = true
	res, err := core.Place(ctx, g.Design, coreOpt)
	if err != nil {
		return err
	}
	d := g.Design
	tr := hier.New(d)
	decl := tr.Decluster(d.Root(), hier.DefaultParams())
	sg := seqgraph.Build(d, seqgraph.DefaultParams())
	gdf := dataflow.Build(sg, decl)
	aff := gdf.Affinity(dataflow.DefaultParams())
	if len(res.Trace) > 0 {
		top := res.Trace[0]
		rs := make([]geom.Rect, 0, len(top.Blocks))
		for _, b := range top.Blocks {
			rs = append(rs, b.Rect)
		}
		path := filepath.Join(outdir, fmt.Sprintf("fig9d_%s_gdf.svg", name))
		fd, err := os.Create(path)
		if err != nil {
			return err
		}
		render.Dataflow(fd, d.Die, gdf, aff, rs, nil, 640)
		fd.Close()
		fmt.Printf("Fig9d dataflow floorplan -> %s\n", path)
	}
	return nil
}

// smokeSpec is the synthetic flat netlist of the clustering smoke: Scale 1,
// so -smoke-insts is the actual instance count.
func smokeSpec(insts int, seed int64) circuits.Spec {
	return circuits.Spec{
		Name: fmt.Sprintf("smoke%dk", insts/1000), Cells: insts, Macros: 12,
		Subsystems: 3, BusWidth: 32, PipelineDepth: 2, Scale: 1, Seed: seed,
		Flat: true,
	}
}

// emitFlat writes the flat smoke netlist in the design JSON interchange form,
// ready for `hidap -in flat.json -cluster`.
func emitFlat(path string, insts int) error {
	g := circuits.Generate(smokeSpec(insts, 7))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = netlist.WriteJSON(f, g.Design)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	st := g.Design.Stats()
	fmt.Fprintf(os.Stderr, "# wrote %s: %d cells, %d macros, flat\n", path, st.Cells, st.MacroCells)
	return nil
}

// clusterSmokeJSON is the machine-readable record of one clustering smoke:
// synthesis cost and tree shape, plus the end-to-end HiDaP solve time on the
// clustered flat netlist vs the same netlist born hierarchical.
type clusterSmokeJSON struct {
	Insts          int     `json:"insts"`
	ClusterSeconds float64 `json:"cluster_seconds"`
	Levels         int     `json:"levels"`
	Clusters       int     `json:"clusters"`
	TreeNodes      int     `json:"tree_nodes"`
	E2EFlatSeconds float64 `json:"e2e_flat_seconds"`
	E2EHierSeconds float64 `json:"e2e_hier_seconds"`
	FlatWL         float64 `json:"flat_wl_m"`
	HierWL         float64 `json:"hier_wl_m"`
}

func runClusterSmoke(ctx context.Context, jsonPath string, insts int, seed int64) error {
	spec := smokeSpec(insts, seed)
	gFlat := circuits.Generate(spec)
	st := gFlat.Design.Stats()
	fmt.Fprintf(os.Stderr, "# smoke: %d cells, %d macros, %d nets, flat\n",
		st.Cells, st.MacroCells, st.Nets)

	p := autocluster.DefaultParams()
	gFlat.SeqGraph() // prebuild so the timing below is the synthesis alone
	t0 := time.Now()
	res, fresh, err := gFlat.Autocluster(p)
	if err != nil {
		return err
	}
	clusterSecs := time.Since(t0).Seconds()
	if !fresh || res.Stats.NoOp {
		return fmt.Errorf("smoke expected a fresh synthesis, got fresh=%v stats=%+v", fresh, res.Stats)
	}
	if err := autocluster.CheckTree(res.Design, p); err != nil {
		return fmt.Errorf("smoke tree violates bounds: %w", err)
	}
	fmt.Printf("cluster: %.3fs for %d insts -> %d clusters, %d grouping levels, %d tree nodes\n",
		clusterSecs, res.Stats.Instances, res.Stats.Clusters, res.Stats.Levels, res.Stats.TreeNodes)

	// End-to-end solve, autoclustered flat netlist vs the same netlist with
	// its native hierarchy. Low effort and a pinned λ keep this CI-sized.
	opt := flows.DefaultOptions()
	opt.Seed = seed
	opt.Effort = layout.EffortLow
	opt.Lambdas = []float64{0.5}
	opt.Autocluster = &p
	t0 = time.Now()
	mFlat, _, err := flows.Run(ctx, gFlat, flows.FlowHiDaP, opt)
	if err != nil {
		return fmt.Errorf("smoke flat solve: %w", err)
	}
	flatSecs := time.Since(t0).Seconds()

	spec.Flat = false
	gHier := circuits.Generate(spec)
	opt.Autocluster = nil
	t0 = time.Now()
	mHier, _, err := flows.Run(ctx, gHier, flows.FlowHiDaP, opt)
	if err != nil {
		return fmt.Errorf("smoke hierarchical solve: %w", err)
	}
	hierSecs := time.Since(t0).Seconds()
	fmt.Printf("e2e: flat+autocluster %.1fs (WL %.3fm), born-hierarchical %.1fs (WL %.3fm)\n",
		flatSecs, mFlat.WirelengthM, hierSecs, mHier.WirelengthM)

	if jsonPath == "" {
		return nil
	}
	rec := clusterSmokeJSON{
		Insts: res.Stats.Instances, ClusterSeconds: clusterSecs,
		Levels: res.Stats.Levels, Clusters: res.Stats.Clusters,
		TreeNodes:      res.Stats.TreeNodes,
		E2EFlatSeconds: flatSecs, E2EHierSeconds: hierSecs,
		FlatWL: mFlat.WirelengthM, HierWL: mHier.WirelengthM,
	}
	var out io.Writer = os.Stdout
	var f *os.File
	if jsonPath != "-" {
		if f, err = os.Create(jsonPath); err != nil {
			return err
		}
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	err = enc.Encode(rec)
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err == nil && jsonPath != "-" {
		fmt.Fprintf(os.Stderr, "# wrote %s\n", jsonPath)
	}
	return err
}

// schedLevelProblem builds the scheduler benchmark level: n mixed
// macro/soft blocks with a sparse affinity ring plus two corner
// terminals — the same shape as a real HiDaP level (and as the layout
// package's Go benchmarks, so the numbers line up).
func schedLevelProblem(n int) *layout.Problem {
	rng := rand.New(rand.NewSource(99))
	blocks := make([]layout.BlockSpec, n)
	for i := range blocks {
		at := int64(40_000 + rng.Intn(60_000))
		b := slicing.Block{TargetArea: at, MinArea: at / 2}
		if i%3 == 0 {
			w := int64(100 + rng.Intn(150))
			h := int64(80 + rng.Intn(120))
			b.Curve = shape.FromBoxRotatable(w, h)
			b.MinArea = w * h
			b.TargetArea = w * h * 3 / 2
		}
		blocks[i] = layout.BlockSpec{Block: b}
	}
	aff := make([][]float64, n+2)
	for i := range aff {
		aff[i] = make([]float64, n+2)
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		aff[i][j], aff[j][i] = float64(1+rng.Intn(20)), float64(1+rng.Intn(20))
	}
	aff[0][n], aff[n][0] = 30, 30
	aff[n-1][n+1], aff[n+1][n-1] = 30, 30
	return &layout.Problem{
		Region: geom.RectXYWH(0, 0, 1500, 1200),
		Blocks: blocks,
		Terminals: []layout.Terminal{
			{Name: "sw", Pos: geom.Pt(0, 0)},
			{Name: "ne", Pos: geom.Pt(1500, 1200)},
		},
		Affinity: aff,
	}
}

// schedRunJSON is one timed setting of the scheduler benchmark.
type schedRunJSON struct {
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Parallelism int     `json:"parallelism"`
	Seconds     float64 `json:"seconds"`
	Speedup     float64 `json:"speedup_vs_serial"`
}

// schedBenchJSON is the machine-readable scheduler scaling record
// (BENCH_PR7.json). Cores records the physical budget of the machine
// that produced the numbers: speedups beyond it are not expected, and
// a 1-core box legitimately reports ~1.0 across the board while still
// proving the identical-result property.
type schedBenchJSON struct {
	Bench    string         `json:"bench"`
	Blocks   int            `json:"blocks"`
	Chains   int            `json:"chains"`
	Seed     int64          `json:"seed"`
	Cores    int            `json:"cores"`
	Runs     []schedRunJSON `json:"runs"`
	SameCost bool           `json:"identical_results"`
}

// runSchedBench times one multi-start level solve (the scheduler's hot
// path) at GOMAXPROCS/parallelism 1, 4 and 16, checks the results are
// identical, and reports wall-clock seconds per setting (best of 3).
func runSchedBench(ctx context.Context, jsonPath string, blocks, chains int, seed int64, minSpeedup float64) error {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	p := schedLevelProblem(blocks)
	rec := schedBenchJSON{
		Bench: "sched", Blocks: blocks, Chains: chains, Seed: seed,
		Cores: runtime.NumCPU(), SameCost: true,
	}
	fmt.Printf("sched-bench: %d blocks, %d chains, %d cores\n", blocks, chains, rec.Cores)

	var refExpr string
	var refCost float64
	for _, par := range []int{1, 4, 16} {
		runtime.GOMAXPROCS(par)
		opt := layout.DefaultOptions()
		opt.Effort = layout.EffortHigh // long chains: scheduling overhead amortizes, stealing matters
		opt.Seed = seed
		opt.Restarts = chains
		opt.Pool = &slicing.EvaluatorPool{}
		var pool *sched.Pool
		if par > 1 {
			pool = sched.NewPool(par)
			opt.Sched = pool
		}
		best := 0.0
		var r *layout.Result
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			r = layout.Solve(ctx, p, opt)
			if s := time.Since(t0).Seconds(); rep == 0 || s < best {
				best = s
			}
			if err := ctx.Err(); err != nil {
				if pool != nil {
					pool.Close()
				}
				return err
			}
		}
		if pool != nil {
			pool.Close()
		}
		if refExpr == "" {
			refExpr, refCost = r.Expr.String(), r.Cost
		} else if r.Expr.String() != refExpr || r.Cost != refCost {
			rec.SameCost = false
		}
		rec.Runs = append(rec.Runs, schedRunJSON{GOMAXPROCS: par, Parallelism: par, Seconds: best})
		fmt.Printf("  gomaxprocs=%-2d parallelism=%-2d  %.3fs  cost=%.4g legal=%v\n",
			par, par, best, r.Cost, r.Legal)
	}
	serial := rec.Runs[0].Seconds
	for i := range rec.Runs {
		rec.Runs[i].Speedup = serial / rec.Runs[i].Seconds
	}
	if !rec.SameCost {
		return fmt.Errorf("sched-bench: results differ across parallelism settings")
	}
	fmt.Printf("  identical results across settings: %v\n", rec.SameCost)
	if minSpeedup > 0 {
		if rec.Cores < 4 {
			fmt.Printf("  speedup gate skipped: %d cores cannot demonstrate multi-core scaling\n", rec.Cores)
		} else if s := rec.Runs[1].Speedup; s < minSpeedup {
			return fmt.Errorf("sched-bench: speedup %.2fx at parallelism 4 below the %.2fx gate", s, minSpeedup)
		} else {
			fmt.Printf("  speedup gate passed: %.2fx >= %.2fx at parallelism 4\n", s, minSpeedup)
		}
	}

	if jsonPath == "" {
		return nil
	}
	var out io.Writer = os.Stdout
	var f *os.File
	if jsonPath != "-" {
		var err error
		if f, err = os.Create(jsonPath); err != nil {
			return err
		}
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	err := enc.Encode(rec)
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err == nil && jsonPath != "-" {
		fmt.Fprintf(os.Stderr, "# wrote %s\n", jsonPath)
	}
	return err
}

// batchRunJSON is one timed setting of the speculative-batching benchmark.
type batchRunJSON struct {
	Blocks            int     `json:"blocks"`
	Batch             int     `json:"batch"`
	NsPerProposal     float64 `json:"ns_per_proposal"`
	AllocsPerProposal float64 `json:"allocs_per_proposal"`
	SpeedupVsSerial   float64 `json:"speedup_vs_serial"`
	Cost              float64 `json:"cost"`
}

// batchBenchJSON is the machine-readable speculative-batching record
// (BENCH_PR10.json): per-proposal cost of the annealing hot loop across
// batch sizes, on a pinned near-zero temperature so the loop sits in the
// reject-dense converged phase that dominates a real solve — the regime
// speculative batching targets. Cores records the physical budget of the
// machine that produced the numbers: the batched engine's scoring fan-out
// needs cores to win wall-clock, so a 1-core box legitimately reports
// ~1.0x across the board while still proving the identical-result
// property (the same caveat as the committed scheduler record).
type batchBenchJSON struct {
	Bench     string         `json:"bench"`
	Seed      int64          `json:"seed"`
	Cores     int            `json:"cores"`
	Moves     int            `json:"moves_per_setting"`
	Runs      []batchRunJSON `json:"runs"`
	Identical bool           `json:"identical_results"`
}

// runBatchBench times single-chain level solves across speculative batch
// sizes at 24 and 48 blocks, pinning per-proposal nanoseconds and
// allocations, and asserts the serial and batched engines return identical
// layouts. The schedule is pinned to a near-zero temperature: per-proposal
// numbers then measure the reject-dense hot loop rather than the brief
// accept-dense warm-up.
func runBatchBench(ctx context.Context, jsonPath string, seed int64) error {
	const movesPerRound, rounds = 256, 100
	moves := movesPerRound * rounds
	rec := batchBenchJSON{
		Bench: "batch", Seed: seed, Cores: runtime.NumCPU(),
		Moves: moves, Identical: true,
	}
	fmt.Printf("batch-bench: %d moves per setting, %d cores\n", moves, rec.Cores)

	// Scoring fan-out lanes, capped at the physical budget: lanes beyond
	// the core count would only timeslice the dispatch overhead onto the
	// hot loop (the batched engine's wall-clock win needs real cores).
	lanes := runtime.NumCPU()
	if lanes > 4 {
		lanes = 4
	}
	pool := sched.NewPool(lanes)
	defer pool.Close()
	for _, blocks := range []int{24, 48} {
		p := schedLevelProblem(blocks)
		var refExpr string
		var refCost, serialNs float64
		for _, batch := range []int{1, 4, 8, 16} {
			opt := layout.DefaultOptions()
			opt.Seed = seed
			opt.Batch = batch
			opt.Sched = pool
			opt.Pool = &slicing.EvaluatorPool{}
			opt.Schedule = &anneal.Options{
				InitialTemp:   1e-6, // effectively greedy at this cost scale: the converged phase
				MovesPerRound: movesPerRound,
				MaxRounds:     rounds,
			}
			layout.Solve(ctx, p, opt) // warm the pooled scratch
			best := 0.0
			var r *layout.Result
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			for rep := 0; rep < 3; rep++ {
				t0 := time.Now()
				r = layout.Solve(ctx, p, opt)
				if s := time.Since(t0).Seconds(); rep == 0 || s < best {
					best = s
				}
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			runtime.ReadMemStats(&ms1)
			allocs := float64(ms1.Mallocs-ms0.Mallocs) / float64(3*moves)
			ns := best / float64(moves) * 1e9
			if refExpr == "" {
				refExpr, refCost, serialNs = r.Expr.String(), r.Cost, ns
			} else if r.Expr.String() != refExpr || r.Cost != refCost {
				rec.Identical = false
			}
			rec.Runs = append(rec.Runs, batchRunJSON{
				Blocks: blocks, Batch: batch, NsPerProposal: ns,
				AllocsPerProposal: allocs, SpeedupVsSerial: serialNs / ns,
				Cost: r.Cost,
			})
			fmt.Printf("  blocks=%-3d batch=%-3d %8.0f ns/proposal  %6.3f allocs/proposal  %.2fx  cost=%.4g\n",
				blocks, batch, ns, allocs, serialNs/ns, r.Cost)
		}
	}
	if !rec.Identical {
		return fmt.Errorf("batch-bench: results differ across batch sizes")
	}
	fmt.Printf("  identical results across batch sizes: %v\n", rec.Identical)

	if jsonPath == "" {
		return nil
	}
	var out io.Writer = os.Stdout
	var f *os.File
	if jsonPath != "-" {
		var err error
		if f, err = os.Create(jsonPath); err != nil {
			return err
		}
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	err := enc.Encode(rec)
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err == nil && jsonPath != "-" {
		fmt.Fprintf(os.Stderr, "# wrote %s\n", jsonPath)
	}
	return err
}
