// Command hidap-serve exposes a long-lived placement Engine over HTTP/JSON:
// jobs are submitted asynchronously, tracked by id, cancellable, and share
// the engine's design cache and warm annealing scratch across requests.
//
//	hidap-serve -addr :8080 -concurrency 8 -max-pending 256
//
//	POST   /v1/jobs            submit a job, returns {"id": "j1", ...}
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result measurement report (409 until finished)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /healthz             liveness + engine stats + job counts
//	GET    /metrics             Prometheus text exposition of the same
//
// A job names either a synthetic suite circuit (generated and cached
// server-side) or ships a full design in the netlist JSON interchange form:
//
//	{"label":"t1", "flow":"HiDaP", "seed":1, "effort":"low",
//	 "circuit":{"name":"c1", "scale":200}}
//
//	{"label":"t2", "placer":"hidap", "evaluate":true,
//	 "design":{"name":"soc", "die":[0,0,500000,500000], ...}}
//
// On SIGINT/SIGTERM the server stops accepting work, drains every accepted
// job, and only aborts in-flight placements if the -grace budget expires.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/circuits"
	"repro/hidap"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("concurrency", 0, "max concurrently running jobs (0 = GOMAXPROCS)")
		maxPending = flag.Int("max-pending", 256, "max queued jobs before 503 (0 = unbounded)")
		cacheSize  = flag.Int("cache", 64, "design/circuit cache entries (LRU)")
		maxJobs    = flag.Int("max-jobs", 4096, "finished-job records kept before eviction")
		grace      = flag.Duration("grace", 60*time.Second, "shutdown drain budget before in-flight jobs are cancelled")
	)
	flag.Parse()

	base, cancelJobs := context.WithCancel(context.Background())
	eng := hidap.NewEngine(nil, hidap.EngineOptions{
		Workers:    *workers,
		MaxPending: *maxPending,
		CacheSize:  *cacheSize,
	})
	s := newServer(eng, base, *maxJobs)

	httpSrv := &http.Server{Addr: *addr, Handler: s.handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("hidap-serve listening on %s (%d workers)", *addr, eng.Workers())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errCh:
		log.Fatalf("hidap-serve: %v", err)
	}

	log.Printf("shutting down: draining jobs (grace %s)", *grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	drained := make(chan struct{})
	go func() { eng.Close(); close(drained) }()
	select {
	case <-drained:
		log.Printf("all jobs drained")
	case <-shutCtx.Done():
		log.Printf("grace expired: cancelling in-flight jobs")
		cancelJobs()
		<-drained
	}
}

// server maps HTTP ids to engine tickets.
type server struct {
	eng     *hidap.Engine
	base    context.Context // parents every job; outlives requests
	maxJobs int

	accepted atomic.Uint64 // jobs accepted by POST /v1/jobs

	mu    sync.Mutex
	jobs  map[string]*hidap.Ticket
	order []string // submission order, for bounded retention
}

func newServer(eng *hidap.Engine, base context.Context, maxJobs int) *server {
	if maxJobs <= 0 {
		maxJobs = 4096
	}
	return &server{eng: eng, base: base, maxJobs: maxJobs, jobs: map[string]*hidap.Ticket{}}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.result)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /metrics", s.metrics)
	return mux
}

// jobRequest is the submission body. Exactly one of circuit/design.
type jobRequest struct {
	Label    string          `json:"label"`
	Flow     string          `json:"flow"`    // circuit jobs: IndEDA | HiDaP | handFP
	Circuit  *circuits.Spec  `json:"circuit"` // synthetic suite circuit
	Placer   string          `json:"placer"`  // design jobs: registered placer name
	Design   json.RawMessage `json:"design"`  // netlist JSON interchange form
	Evaluate *bool           `json:"evaluate"`
	Seed     int64           `json:"seed"`
	Lambda   *float64        `json:"lambda"`
	Effort   string          `json:"effort"`   // low | medium | high
	Restarts int             `json:"restarts"` // annealing chains per level (best wins)
	// Parallelism sizes the job's internal work-stealing scheduler; 0
	// defers to the engine (serial inside a worker slot on multi-worker
	// engines). Placements never depend on it.
	Parallelism int `json:"parallelism"`
	// Batch sizes the speculative proposal groups of the annealing hot
	// loop; 0 and 1 keep the serial engine. Placements never depend on it.
	Batch int `json:"batch"`
	// Autocluster enables the hierarchy-synthesis front-end for flat
	// netlists. {} uses the default knobs; fields override individually
	// (max_num_inst, min_num_inst, max_num_macro, min_num_macro,
	// coarsening_ratio, max_levels, tolerance).
	Autocluster *hidap.AutoclusterParams `json:"autocluster"`
}

type jobStatus struct {
	ID    string         `json:"id"`
	Label string         `json:"label,omitempty"`
	State hidap.JobState `json:"state"`
	Error string         `json:"error,omitempty"`
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	job, err := req.toJob()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Jobs are parented on the server's base context, not the request's:
	// submission is asynchronous and the job outlives this request.
	t, err := s.eng.Submit(s.base, job)
	switch {
	case errors.Is(err, hidap.ErrQueueFull), errors.Is(err, hidap.ErrEngineClosed):
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.accepted.Add(1)
	id := fmt.Sprintf("j%d", t.ID())
	s.remember(id, t)
	w.Header().Set("Location", "/v1/jobs/"+id)
	writeJSON(w, http.StatusAccepted, jobStatus{ID: id, Label: t.Label(), State: t.State()})
}

func (req *jobRequest) toJob() (hidap.Job, error) {
	var opts []hidap.Option
	opts = append(opts, hidap.WithSeed(req.Seed))
	if req.Lambda != nil {
		opts = append(opts, hidap.WithLambda(*req.Lambda))
	}
	if req.Restarts < 0 {
		return hidap.Job{}, fmt.Errorf("negative restarts %d", req.Restarts)
	}
	if req.Restarts > 0 {
		opts = append(opts, hidap.WithRestarts(req.Restarts))
	}
	if req.Parallelism < 0 {
		return hidap.Job{}, fmt.Errorf("negative parallelism %d", req.Parallelism)
	}
	if req.Parallelism > 0 {
		opts = append(opts, hidap.WithParallelism(req.Parallelism))
	}
	if req.Batch < 0 {
		return hidap.Job{}, fmt.Errorf("negative batch %d", req.Batch)
	}
	if req.Batch > 1 {
		opts = append(opts, hidap.WithBatch(req.Batch))
	}
	switch strings.ToLower(req.Effort) {
	case "", "medium":
	case "low":
		opts = append(opts, hidap.WithEffort(hidap.EffortLow))
	case "high":
		opts = append(opts, hidap.WithEffort(hidap.EffortHigh))
	default:
		return hidap.Job{}, fmt.Errorf("unknown effort %q", req.Effort)
	}
	if req.Autocluster != nil {
		opts = append(opts, hidap.WithAutocluster(*req.Autocluster))
	}
	job := hidap.Job{Label: req.Label, Config: hidap.NewConfig(opts...)}
	switch {
	case req.Circuit != nil && req.Design != nil:
		return hidap.Job{}, errors.New("request sets both circuit and design")
	case req.Circuit != nil:
		spec, err := resolveSpec(*req.Circuit)
		if err != nil {
			return hidap.Job{}, err
		}
		job.Circuit = &spec
		flow, err := parseFlow(req.Flow)
		if err != nil {
			return hidap.Job{}, err
		}
		job.Flow = flow
		if req.Lambda != nil {
			// Pin λ instead of the pipeline's best-of-three sweep.
			job.Lambdas = []float64{*req.Lambda}
		}
	case req.Design != nil:
		d, err := hidap.ReadJSON(bytes.NewReader(req.Design))
		if err != nil {
			return hidap.Job{}, fmt.Errorf("bad design: %w", err)
		}
		job.Design = d
		job.Placer = req.Placer
		// Job.Key is deliberately not exposed over HTTP: the key asserts
		// content identity, and one client's assertion must not be able to
		// poison the cache entry another client's job resolves to. The
		// engine's content hash provides the same dedup, trustlessly.
		job.Evaluate = req.Evaluate == nil || *req.Evaluate
	default:
		return hidap.Job{}, errors.New("request needs a circuit or a design")
	}
	return job, nil
}

// resolveSpec fills a suite-circuit reference ({"name":"c1"}) from the
// paper's suite table, with every field the request did set overriding the
// suite value; fully specified custom circuits (macros > 0) pass through
// untouched. A spec that names no suite circuit and declares no macros is
// rejected here, before it reaches a worker.
func resolveSpec(spec circuits.Spec) (circuits.Spec, error) {
	if spec.Macros > 0 {
		return spec, nil
	}
	base, err := circuits.SuiteSpec(spec.Name)
	if err != nil {
		return circuits.Spec{}, fmt.Errorf("circuit %q: set macros/cells explicitly or name a suite circuit: %w", spec.Name, err)
	}
	if spec.Cells != 0 {
		base.Cells = spec.Cells
	}
	if spec.Subsystems != 0 {
		base.Subsystems = spec.Subsystems
	}
	if spec.BusWidth != 0 {
		base.BusWidth = spec.BusWidth
	}
	if spec.PipelineDepth != 0 {
		base.PipelineDepth = spec.PipelineDepth
	}
	if spec.Topology != "" {
		base.Topology = spec.Topology
	}
	if spec.Scale != 0 {
		base.Scale = spec.Scale
	}
	if spec.Utilization != 0 {
		base.Utilization = spec.Utilization
	}
	if spec.Seed != 0 {
		base.Seed = spec.Seed
	}
	return base, nil
}

func parseFlow(name string) (hidap.Flow, error) {
	switch {
	case name == "":
		return hidap.FlowHiDaP, nil
	case strings.EqualFold(name, string(hidap.FlowHiDaP)):
		return hidap.FlowHiDaP, nil
	case strings.EqualFold(name, string(hidap.FlowIndEDA)):
		return hidap.FlowIndEDA, nil
	case strings.EqualFold(name, string(hidap.FlowHandFP)):
		return hidap.FlowHandFP, nil
	}
	return "", fmt.Errorf("unknown flow %q", name)
}

// remember indexes a ticket, evicting the oldest finished records beyond
// the retention bound so a long-lived server does not accumulate job state
// without limit. Live (queued/running) jobs are never evicted; finished
// records behind a long-running head are, so one slow job cannot pin an
// unbounded tail of fast ones.
func (s *server) remember(id string, t *hidap.Ticket) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[id] = t
	s.order = append(s.order, id)
	excess := len(s.order) - s.maxJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, old := range s.order {
		if excess > 0 {
			if tk := s.jobs[old]; tk == nil {
				excess--
				continue
			} else if _, err := tk.Result(); !errors.Is(err, hidap.ErrNotFinished) {
				delete(s.jobs, old)
				excess--
				continue
			}
		}
		kept = append(kept, old)
	}
	s.order = kept
}

func (s *server) lookup(w http.ResponseWriter, r *http.Request) (*hidap.Ticket, string, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	t := s.jobs[id]
	s.mu.Unlock()
	if t == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return nil, id, false
	}
	return t, id, true
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	t, id, ok := s.lookup(w, r)
	if !ok {
		return
	}
	st := jobStatus{ID: id, Label: t.Label(), State: t.State()}
	if _, err := t.Result(); err != nil && !errors.Is(err, hidap.ErrNotFinished) {
		st.Error = err.Error()
	}
	writeJSON(w, http.StatusOK, st)
}

// jobResult is the terminal payload of a successful job.
type jobResult struct {
	jobStatus
	Report  *hidap.Report      `json:"report,omitempty"`
	Metrics *hidap.FlowMetrics `json:"metrics,omitempty"`
}

func (s *server) result(w http.ResponseWriter, r *http.Request) {
	t, id, ok := s.lookup(w, r)
	if !ok {
		return
	}
	res, err := t.Result()
	switch {
	case errors.Is(err, hidap.ErrNotFinished):
		writeJSON(w, http.StatusConflict, jobStatus{ID: id, Label: t.Label(), State: t.State()})
		return
	case err != nil:
		// Terminal-but-unsuccessful states keep a non-2xx code so scripted
		// clients branching on status never mistake them for a result:
		// cancelled jobs are Gone, failed jobs are a server error.
		code := http.StatusInternalServerError
		if t.State() == hidap.JobCanceled {
			code = http.StatusGone
		}
		writeJSON(w, code, jobStatus{ID: id, Label: t.Label(), State: t.State(), Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, jobResult{
		jobStatus: jobStatus{ID: id, Label: t.Label(), State: t.State()},
		Report:    res.Report,
		Metrics:   res.Metrics,
	})
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	t, id, ok := s.lookup(w, r)
	if !ok {
		return
	}
	t.Cancel()
	writeJSON(w, http.StatusAccepted, jobStatus{ID: id, Label: t.Label(), State: t.State()})
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status   string            `json:"status"`
		Accepted uint64            `json:"accepted"`
		Engine   hidap.EngineStats `json:"engine"`
	}{"ok", s.accepted.Load(), s.eng.Stats()})
}

// metrics exposes the job and cache counters in the Prometheus text
// exposition format, so a scraper needs no JSON mapping.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	util := 0.0
	if st.Workers > 0 {
		util = float64(st.Running) / float64(st.Workers)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("hidap_jobs_accepted_total", "Jobs accepted by POST /v1/jobs.", s.accepted.Load())
	counter("hidap_jobs_completed_total", "Jobs reaching a terminal state.", st.Completed)
	counter("hidap_jobs_failed_total", "Jobs that finished with a non-cancellation error.", st.Failed)
	counter("hidap_jobs_canceled_total", "Jobs canceled before finishing.", st.Canceled)
	gauge("hidap_queue_depth", "Jobs queued but not yet running.", float64(st.Queued))
	gauge("hidap_jobs_running", "Jobs currently executing.", float64(st.Running))
	gauge("hidap_workers", "Worker pool size.", float64(st.Workers))
	gauge("hidap_worker_utilization", "Running jobs over pool size.", util)
	gauge("hidap_design_cache_entries", "Designs retained in the LRU cache.", float64(st.CachedDesigns))
	counter("hidap_design_cache_hits_total", "Design cache hits at submit.", st.DesignCacheHits)
	counter("hidap_design_cache_misses_total", "Design cache misses at submit.", st.DesignCacheMisses)
	gauge("hidap_circuit_cache_entries", "Circuits retained in the LRU cache.", float64(st.CachedCircuits))
	counter("hidap_circuit_cache_hits_total", "Circuit cache hits at submit.", st.CircuitCacheHits)
	counter("hidap_circuit_cache_misses_total", "Circuit cache misses at submit.", st.CircuitCacheMisses)
	counter("hidap_autocluster_designs_total", "Designs given a synthesized hierarchy.", st.DesignsClustered)
	counter("hidap_autocluster_noop_total", "Autocluster pass-throughs on well-shaped hierarchies.", st.AutoclusterNoop)
	counter("hidap_autocluster_clusters_total", "Leaf clusters emitted by autoclustering.", st.ClustersEmitted)
	counter("hidap_autocluster_levels_total", "Coarsening levels run by autoclustering.", st.CoarseningLevels)
	counter("hidap_autocluster_cache_hits_total", "Jobs served a cached clustered design.", st.ClusterCacheHits)
	if _, err := w.Write([]byte(b.String())); err != nil {
		log.Printf("hidap-serve: write metrics: %v", err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("hidap-serve: encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
