package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/circuits"
	"repro/hidap"
)

func newTestServer(t *testing.T, workers int) (*server, *httptest.Server, *hidap.Engine) {
	t.Helper()
	eng := hidap.NewEngine(
		hidap.NewConfig(hidap.WithEffort(hidap.EffortLow)),
		hidap.EngineOptions{Workers: workers},
	)
	s := newServer(eng, context.Background(), 64)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts, eng
}

func postJob(t *testing.T, ts *httptest.Server, body string) (jobStatus, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func getStatus(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, ts *httptest.Server, id string, want hidap.JobState) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		if st := getStatus(t, ts, id); st.State == want {
			return
		} else if st.State == hidap.JobFailed {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, want)
}

// TestServeJobRoundTrip drives a circuit job through the full HTTP surface:
// submit, poll, fetch the measurement result, and check /healthz.
func TestServeJobRoundTrip(t *testing.T) {
	_, ts, eng := newTestServer(t, 2)
	defer eng.Close()

	st, code := postJob(t, ts, `{
		"label": "rt1", "flow": "HiDaP", "seed": 1, "effort": "low",
		"circuit": {"name": "t", "cells": 300000, "macros": 8, "subsystems": 2,
		            "buswidth": 32, "pipelinedepth": 2, "scale": 300, "seed": 5}
	}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	if st.ID == "" || (st.State != hidap.JobQueued && st.State != hidap.JobRunning) {
		t.Fatalf("submit response = %+v", st)
	}
	waitState(t, ts, st.ID, hidap.JobDone)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", resp.StatusCode)
	}
	var res jobResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || res.Report.WirelengthM <= 0 {
		t.Fatalf("result report = %+v", res.Report)
	}
	if res.Metrics == nil || res.Metrics.Circuit != "t" || res.Report.Label != "rt1" {
		t.Errorf("metrics/label wrong: %+v", res.Metrics)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var health struct {
		Status string            `json:"status"`
		Engine hidap.EngineStats `json:"engine"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Engine.Completed == 0 {
		t.Errorf("healthz = %+v", health)
	}
}

// TestServeDesignJobAndCancel ships a design in the netlist JSON form to a
// deliberately blocking placer, then cancels it over HTTP.
func TestServeDesignJobAndCancel(t *testing.T) {
	started := make(chan struct{}, 4)
	hidap.MustRegister(hidap.PlacerFunc("test-serve-block",
		func(ctx context.Context, d *hidap.Design, cfg *hidap.Config) (*hidap.Placement, hidap.Stats, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done()
			return nil, hidap.Stats{}, ctx.Err()
		}))
	_, ts, eng := newTestServer(t, 1)
	defer eng.Close()

	var sb strings.Builder
	if err := hidap.WriteJSON(&sb, circuits.ABCDX().Design); err != nil {
		t.Fatal(err)
	}
	st, code := postJob(t, ts, fmt.Sprintf(
		`{"label": "blk", "placer": "test-serve-block", "design": %s}`, sb.String()))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("job never started")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	waitState(t, ts, st.ID, hidap.JobCanceled)
	rr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusGone {
		t.Errorf("cancelled result status = %d, want 410", rr.StatusCode)
	}
}

// TestServeShutdownDrains submits a real job and closes the engine: the
// accepted job must finish (drain), and later submissions must be refused.
func TestServeShutdownDrains(t *testing.T) {
	_, ts, eng := newTestServer(t, 2)

	var sb strings.Builder
	if err := hidap.WriteJSON(&sb, circuits.ABCDX().Design); err != nil {
		t.Fatal(err)
	}
	st, code := postJob(t, ts, fmt.Sprintf(
		`{"label": "drain", "placer": "indeda", "evaluate": false, "design": %s}`, sb.String()))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}

	eng.Close() // graceful shutdown path: must block until the job is done

	if got := getStatus(t, ts, st.ID); got.State != hidap.JobDone {
		t.Errorf("job after drain = %+v, want done", got)
	}
	if _, code := postJob(t, ts, fmt.Sprintf(`{"placer": "indeda", "design": %s}`, sb.String())); code != http.StatusServiceUnavailable {
		t.Errorf("submit after close status = %d, want 503", code)
	}
}

// TestServeValidation covers the 400/404 surface.
func TestServeValidation(t *testing.T) {
	_, ts, eng := newTestServer(t, 1)
	defer eng.Close()

	for name, body := range map[string]string{
		"empty":       `{}`,
		"bad json":    `{not json`,
		"bad effort":  `{"effort": "turbo", "circuit": {"name": "x"}}`,
		"bad flow":    `{"flow": "nope", "circuit": {"name": "x"}}`,
		"bad design":  `{"design": {"die": "not-a-rect"}}`,
		"no macros":   `{"circuit": {"name": "not-a-suite-circuit"}}`,
		"both inputs": `{"circuit": {"name": "x"}, "design": {"name": "y"}}`,
	} {
		if _, code := postJob(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, code)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

// TestServeMetricsEndpoint runs one job to completion and checks that
// /metrics exposes the job and cache counters in Prometheus text form, and
// that /healthz carries the same counts in JSON.
func TestServeMetricsEndpoint(t *testing.T) {
	_, ts, eng := newTestServer(t, 2)
	defer eng.Close()

	st, code := postJob(t, ts, `{"label":"m1","circuit":{"name":"c1","scale":400},"effort":"low","restarts":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitState(t, ts, st.ID, hidap.JobDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	buf := new(strings.Builder)
	if _, err := io.Copy(buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"hidap_jobs_accepted_total 1",
		"hidap_jobs_completed_total 1",
		"hidap_jobs_failed_total 0",
		"hidap_queue_depth 0",
		"hidap_jobs_running 0",
		"hidap_workers 2",
		"hidap_circuit_cache_misses_total 1",
		"# TYPE hidap_worker_utilization gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var health struct {
		Status   string            `json:"status"`
		Accepted uint64            `json:"accepted"`
		Engine   hidap.EngineStats `json:"engine"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Accepted != 1 {
		t.Errorf("healthz = %+v, want ok with 1 accepted", health)
	}
	if health.Engine.Completed != 1 || health.Engine.Workers != 2 {
		t.Errorf("healthz engine counts = %+v", health.Engine)
	}
}

// TestServeAutoclusterJob submits a flat circuit job with the autocluster
// field set, twice, and checks that the front-end counters land on /metrics:
// one synthesis, one clustered-design cache hit.
func TestServeAutoclusterJob(t *testing.T) {
	_, ts, eng := newTestServer(t, 2)
	defer eng.Close()

	body := `{"label":"ac1","flow":"HiDaP","effort":"low","seed":1,
		"circuit":{"name":"acflat","cells":300000,"macros":8,"subsystems":2,
		           "buswidth":32,"pipelinedepth":2,"scale":300,"seed":5,"flat":true},
		"autocluster":{"max_num_inst":300,"max_num_macro":3,"min_num_macro":1}}`
	st, code := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	waitState(t, ts, st.ID, hidap.JobDone)
	st2, code := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit status = %d", code)
	}
	waitState(t, ts, st2.ID, hidap.JobDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := io.Copy(buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"hidap_autocluster_designs_total 1",
		"hidap_autocluster_cache_hits_total 1",
		"hidap_autocluster_noop_total 0",
		"# TYPE hidap_autocluster_clusters_total counter",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, got)
		}
	}
	// Invalid knobs are rejected when the job runs, not accepted silently.
	stBad, code := postJob(t, ts, `{"flow":"HiDaP","effort":"low",
		"circuit":{"name":"c1","scale":400},
		"autocluster":{"max_num_inst":10,"min_num_inst":20}}`)
	if code != http.StatusAccepted {
		t.Fatalf("bad-knob submit status = %d", code)
	}
	waitFailed(t, ts, stBad.ID)
}

// waitFailed polls until the job reaches the failed state.
func waitFailed(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if st := getStatus(t, ts, id); st.State == hidap.JobFailed {
			return
		} else if st.State == hidap.JobDone {
			t.Fatal("job with invalid autocluster knobs succeeded")
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never failed", id)
}
