// Command hidap-vet is the multichecker for the repository's determinism and
// concurrency invariants (see internal/lint). Run it directly over package
// patterns:
//
//	go build -o hidap-vet ./cmd/hidap-vet && ./hidap-vet ./...
//
// or as a vet tool, which is what CI does:
//
//	go vet -vettool=/path/to/hidap-vet ./...
//
// Findings are suppressed only by the //hidapvet: directive family, each of
// which requires a written justification; see README "Static analysis".
package main

import (
	"repro/internal/lint"
	"repro/internal/lint/unitchecker"
)

func main() {
	unitchecker.Main(lint.Analyzers()...)
}
