// Command hidap-vet is the multichecker for the repository's determinism and
// concurrency invariants (see internal/lint). Run it directly over package
// patterns:
//
//	go build -o hidap-vet ./cmd/hidap-vet && ./hidap-vet ./...
//
// or as a vet tool, which is what CI does:
//
//	go vet -vettool=/path/to/hidap-vet ./...
//
// Both modes accept -json, which emits machine-readable diagnostics (one
// JSON object per package unit, keyed by package path then analyzer) and
// exits 0 so consumers gate on the parsed payload:
//
//	./hidap-vet -json ./...
//	go vet -vettool=/path/to/hidap-vet -json ./...
//
// The suite propagates facts across package boundaries through the vet
// .vetx protocol: seed purity (seedpure) and allocation freedom (allocfree)
// are checked whole-program, one compilation unit at a time.
//
// Findings are suppressed only by the //hidapvet: directive family, each of
// which requires a written justification; see README "Static analysis".
package main

import (
	"repro/internal/lint"
	"repro/internal/lint/unitchecker"
)

func main() {
	unitchecker.Main(lint.Analyzers()...)
}
