// Command hidap places the macros of a structural Verilog netlist with the
// HiDaP flow and writes the placement plus an SVG floorplan.
//
// Usage:
//
//	hidap -in design.v -top chip -out placement.txt -svg floorplan.svg
//	hidap -in design.v -top chip -lambda 0.2 -effort high -seed 7
//
// Macro cell types are declared inline with -macro name=WxHxBITS (repeat
// as needed); the DFF/gate library is built in.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/hidap"
)

type macroFlags []string

func (m *macroFlags) String() string     { return strings.Join(*m, ",") }
func (m *macroFlags) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		in     = flag.String("in", "", "input structural Verilog file (required)")
		top    = flag.String("top", "top", "top module name")
		out    = flag.String("out", "", "placement output file (default stdout)")
		svg    = flag.String("svg", "", "optional SVG floorplan output")
		def_   = flag.String("def", "", "optional DEF placement output")
		lef    = flag.String("lef", "", "optional LEF file defining the macro library")
		lambda = flag.Float64("lambda", 0.5, "block-flow vs macro-flow blend λ")
		k      = flag.Float64("k", 2, "latency decay exponent")
		effort = flag.String("effort", "medium", "annealing effort: low|medium|high")
		seed   = flag.Int64("seed", 1, "random seed")
		cells  = flag.Bool("cells", false, "also run standard-cell placement and report metrics")
	)
	var macros macroFlags
	flag.Var(&macros, "macro", "macro declaration name=WxHxBITS (DBU), repeatable")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}

	lib := hidap.DefaultLibrary()
	if *lef != "" {
		f, err := os.Open(*lef)
		if err != nil {
			fatal(err)
		}
		if _, err := hidap.ReadLEF(f, lib); err != nil {
			fatal(err)
		}
		f.Close()
	}
	for _, m := range macros {
		name, w, h, bits, err := parseMacro(m)
		if err != nil {
			fatal(err)
		}
		lib.AddMacro(name, w, h, bits)
	}

	var d *hidap.Design
	if strings.HasSuffix(*in, ".json") {
		d, err = hidap.ReadJSON(strings.NewReader(string(src)))
	} else {
		d, err = hidap.ParseVerilog(string(src), *top, lib)
	}
	if err != nil {
		fatal(err)
	}

	opt := hidap.DefaultOptions()
	opt.Lambda = *lambda
	opt.K = *k
	opt.Seed = *seed
	switch *effort {
	case "low":
		opt.Effort = hidap.EffortLow
	case "high":
		opt.Effort = hidap.EffortHigh
	}
	res, err := hidap.Place(d, opt)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(w, "# design %s: die %dx%d DBU, %d macros, %d levels\n",
		d.Name, d.Die.W, d.Die.H, len(d.Macros()), res.Levels)
	for _, m := range d.Macros() {
		r := res.Placement.Rect(m)
		fmt.Fprintf(w, "macro %s %d %d %s\n", d.Cell(m).Name, r.X, r.Y, res.Placement.Orient[m])
	}

	if *cells {
		if err := hidap.PlaceCells(res.Placement); err != nil {
			fatal(err)
		}
		wns, tns := hidap.Timing(d, res.Placement)
		fmt.Fprintf(w, "# WL %.6f m, GRC %.2f%%, WNS %.1f%%, TNS %.1f ns\n",
			hidap.Wirelength(res.Placement), hidap.Congestion(res.Placement), wns, tns)
	}

	if *svg != "" {
		f, err := os.Create(*svg)
		if err != nil {
			fatal(err)
		}
		hidap.WriteFloorplanSVG(f, res.Placement)
		f.Close()
	}

	if *def_ != "" {
		f, err := os.Create(*def_)
		if err != nil {
			fatal(err)
		}
		if err := hidap.WriteDEF(f, res.Placement); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

func parseMacro(s string) (name string, w, h int64, bits int, err error) {
	eq := strings.IndexByte(s, '=')
	if eq < 1 {
		return "", 0, 0, 0, fmt.Errorf("bad -macro %q: want name=WxHxBITS", s)
	}
	name = s[:eq]
	parts := strings.Split(s[eq+1:], "x")
	if len(parts) != 3 {
		return "", 0, 0, 0, fmt.Errorf("bad -macro %q: want name=WxHxBITS", s)
	}
	w, err = strconv.ParseInt(parts[0], 10, 64)
	if err == nil {
		h, err = strconv.ParseInt(parts[1], 10, 64)
	}
	if err == nil {
		bits, err = strconv.Atoi(parts[2])
	}
	if err != nil {
		return "", 0, 0, 0, fmt.Errorf("bad -macro %q: %v", s, err)
	}
	return name, w, h, bits, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hidap:", err)
	os.Exit(1)
}
