// Command hidap places the macros of a structural Verilog netlist with any
// registered placement flow and writes the placement plus an SVG floorplan.
//
// Usage:
//
//	hidap -in design.v -top chip -out placement.txt -svg floorplan.svg
//	hidap -in design.v -top chip -flow indeda -seed 7
//	hidap -in design.v -top chip -lambda 0.2 -effort high -cells -json
//
// Flows come from the hidap placer registry (-flow hidap|indeda|...).
// Macro cell types are declared inline with -macro name=WxHxBITS (repeat
// as needed) or via -lef; the DFF/gate library is built in. With -json the
// evaluation report is the only stdout payload (the placement listing goes
// to -out or stderr), so the output pipes straight into jq. Interrupting
// the run (Ctrl-C) cancels the placement promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/hidap"
)

type macroFlags []string

func (m *macroFlags) String() string     { return strings.Join(*m, ",") }
func (m *macroFlags) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		in       = flag.String("in", "", "input structural Verilog file (required)")
		top      = flag.String("top", "top", "top module name")
		out      = flag.String("out", "", "placement output file (default stdout)")
		svg      = flag.String("svg", "", "optional SVG floorplan output")
		def_     = flag.String("def", "", "optional DEF placement output")
		lef      = flag.String("lef", "", "optional LEF file defining the macro library")
		flow     = flag.String("flow", "hidap", "placement flow: "+strings.Join(hidap.Placers(), "|"))
		lambda   = flag.Float64("lambda", 0.5, "block-flow vs macro-flow blend λ")
		k        = flag.Float64("k", 2, "latency decay exponent")
		effort   = flag.String("effort", "medium", "annealing effort: low|medium|high")
		restarts = flag.Int("restarts", 1, "independent annealing chains per level (best layout wins)")
		par      = flag.Int("parallelism", 0, "work-stealing scheduler lanes: 1 = serial, 0 = all cores; never changes the placement")
		batch    = flag.Int("batch", 1, "speculative proposal group size in the anneal hot loop: 1 = serial engine; never changes the placement")
		seed     = flag.Int64("seed", 1, "random seed")
		cells    = flag.Bool("cells", false, "also run standard-cell placement and report metrics")
		jsonOut  = flag.Bool("json", false, "with -cells: print the evaluation report as JSON")
		progress = flag.Bool("progress", false, "stream per-level progress to stderr")

		cluster      = flag.Bool("cluster", false, "autocluster flat netlists into a synthesized hierarchy before placement")
		clusterInst  = flag.Int("cluster-max-inst", 0, "with -cluster: max instances per leaf cluster (0 = default)")
		clusterMacro = flag.Int("cluster-max-macro", 0, "with -cluster: max macros per leaf cluster (0 = default)")
	)
	var macros macroFlags
	flag.Var(&macros, "macro", "macro declaration name=WxHxBITS (DBU), repeatable")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	src, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}

	lib := hidap.DefaultLibrary()
	if *lef != "" {
		if err := readLEF(*lef, lib); err != nil {
			fatal(err)
		}
	}
	for _, m := range macros {
		name, w, h, bits, err := parseMacro(m)
		if err != nil {
			fatal(err)
		}
		lib.AddMacro(name, w, h, bits)
	}

	var d *hidap.Design
	if strings.HasSuffix(*in, ".json") {
		d, err = hidap.ReadJSON(strings.NewReader(string(src)))
	} else {
		d, err = hidap.ParseVerilog(string(src), *top, lib)
	}
	if err != nil {
		fatal(fmt.Errorf("parse %s: %w", *in, err))
	}

	placer, err := hidap.Lookup(*flow)
	if err != nil {
		fatal(err)
	}
	opts := []hidap.Option{
		hidap.WithLambda(*lambda),
		hidap.WithK(*k),
		hidap.WithSeed(*seed),
		hidap.WithRestarts(*restarts),
		hidap.WithParallelism(*par),
		hidap.WithBatch(*batch),
	}
	switch *effort {
	case "low":
		opts = append(opts, hidap.WithEffort(hidap.EffortLow))
	case "high":
		opts = append(opts, hidap.WithEffort(hidap.EffortHigh))
	}
	if *progress {
		opts = append(opts, hidap.WithProgress(func(ev hidap.Progress) {
			switch ev.Stage {
			case hidap.StageLevel:
				fmt.Fprintf(os.Stderr, "# level %d: %q depth %d, %d blocks\n",
					ev.Level, ev.Path, ev.Depth, ev.Blocks)
			case hidap.StageFlips:
				fmt.Fprintf(os.Stderr, "# flipped %d macros\n", ev.Flips)
			}
		}))
	}
	if *cluster {
		p := hidap.DefaultAutocluster()
		if *clusterInst > 0 {
			p.MaxNumInst = *clusterInst
		}
		if *clusterMacro > 0 {
			p.MaxNumMacro = *clusterMacro
		}
		opts = append(opts, hidap.WithAutocluster(p))
	}
	cfg := hidap.NewConfig(opts...)

	pl, stats, err := placer.Place(ctx, d, cfg)
	if err != nil {
		fatal(err)
	}

	// With -json, stdout is reserved for the machine-readable report; the
	// placement listing moves to -out (or stderr) so `hidap ... -json | jq`
	// always reads a pure JSON stream.
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	} else if *jsonOut && *cells {
		w = os.Stderr
	}
	fmt.Fprintf(w, "# design %s: die %dx%d DBU, %d macros, flow %s, %d levels\n",
		d.Name, d.Die.W, d.Die.H, len(d.Macros()), placer.Name(), stats.Levels)
	for _, m := range d.Macros() {
		r := pl.Rect(m)
		fmt.Fprintf(w, "macro %s %d %d %s\n", d.Cell(m).Name, r.X, r.Y, pl.Orient[m])
	}

	if *cells {
		if err := hidap.PlaceStdCells(ctx, pl); err != nil {
			fatal(err)
		}
		rep, err := hidap.Evaluate(ctx, d, pl)
		if err != nil {
			fatal(err)
		}
		stats.Annotate(rep)
		if *jsonOut {
			if err := rep.WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			fmt.Fprintf(w, "# WL %.6f m, GRC %.2f%%, WNS %.1f%%, TNS %.1f ns\n",
				rep.WirelengthM, rep.CongestionPct, rep.WNSPct, rep.TNSns)
		}
	}

	if *svg != "" {
		f, err := os.Create(*svg)
		if err != nil {
			fatal(err)
		}
		hidap.WriteFloorplanSVG(f, pl)
		f.Close()
	}

	if *def_ != "" {
		f, err := os.Create(*def_)
		if err != nil {
			fatal(err)
		}
		if err := hidap.WriteDEF(f, pl); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

// readLEF loads LEF macros into lib, reporting the file name on failure.
func readLEF(path string, lib *hidap.Library) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open LEF: %w", err)
	}
	defer f.Close()
	if _, err := hidap.ReadLEF(f, lib); err != nil {
		return fmt.Errorf("read LEF %s: %w", path, err)
	}
	return nil
}

func parseMacro(s string) (name string, w, h int64, bits int, err error) {
	eq := strings.IndexByte(s, '=')
	if eq < 1 {
		return "", 0, 0, 0, fmt.Errorf("bad -macro %q: want name=WxHxBITS", s)
	}
	name = s[:eq]
	parts := strings.Split(s[eq+1:], "x")
	if len(parts) != 3 {
		return "", 0, 0, 0, fmt.Errorf("bad -macro %q: want name=WxHxBITS", s)
	}
	w, err = strconv.ParseInt(parts[0], 10, 64)
	if err == nil {
		h, err = strconv.ParseInt(parts[1], 10, 64)
	}
	if err == nil {
		bits, err = strconv.Atoi(parts[2])
	}
	if err != nil {
		return "", 0, 0, 0, fmt.Errorf("bad -macro %q: %v", s, err)
	}
	return name, w, h, bits, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hidap:", err)
	os.Exit(1)
}
