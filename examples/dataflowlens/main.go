// Dataflowlens: block flow vs macro flow (the paper's Figs. 2 and 3).
//
// The ABCDX system has four 2-macro blocks that all exchange data with a
// central standard-cell block X, while the macro dataflow chains
// A -> B -> C -> D through X's registers. Looking at the system through the
// block-flow lens alone (λ=1) the chain is invisible; through the
// macro-flow lens alone (λ=0) X's position is unconstrained. The blended
// affinity (λ=0.5) recovers the paper's Fig. 3c layout. This program prints
// both edge lists and compares the three placements.
//
//	go run ./examples/dataflowlens
package main

import (
	"context"
	"fmt"
	"log"

	"repro/circuits"
	"repro/hidap"
)

func main() {
	ctx := context.Background()
	g := circuits.ABCDX()
	d := g.Design

	blockFlow, macroFlow := hidap.DataflowEdges(d, 2)
	fmt.Println("block flow (Fig. 2a) — physical connections between blocks:")
	for _, e := range blockFlow {
		fmt.Printf("  %-4s -> %-4s %4d bits, latency %d, score %.1f\n",
			e.From, e.To, e.Bits, e.MinLatency, e.Score)
	}
	fmt.Println("\nmacro flow (Fig. 2b) — global dataflow between macros:")
	for _, e := range macroFlow {
		fmt.Printf("  %-4s -> %-4s %4d bits, latency %d, score %.1f\n",
			e.From, e.To, e.Bits, e.MinLatency, e.Score)
	}

	fmt.Println("\nlayouts under the three lenses (Fig. 3):")
	placer, err := hidap.Lookup("hidap")
	if err != nil {
		log.Fatal(err)
	}
	for _, lambda := range []float64{1.0, 0.0, 0.5} {
		cfg := hidap.NewConfig(hidap.WithLambda(lambda), hidap.WithSeed(7))
		pl, _, err := placer.Place(ctx, d, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := hidap.PlaceStdCells(ctx, pl); err != nil {
			log.Fatal(err)
		}
		rep, err := hidap.Evaluate(ctx, d, pl)
		if err != nil {
			log.Fatal(err)
		}
		chain := chainLength(d, pl)
		fmt.Printf("  λ=%.1f  WL=%.4f m   A->B->C->D chain span %.0f µm  %s\n",
			lambda, rep.WirelengthM, float64(chain)/1000, lensName(lambda))
	}
}

// chainLength sums the macro-chain distances A->B->C->D (centers of the
// first macro of each block).
func chainLength(d *hidap.Design, pl *hidap.Placement) int64 {
	pos := func(name string) hidap.Point {
		id := d.CellByName(name)
		return pl.Center(id)
	}
	chain := []string{"A/ram0/mem", "B/ram0/mem", "C/ram0/mem", "D/ram0/mem"}
	var sum int64
	for i := 1; i < len(chain); i++ {
		sum += pos(chain[i-1]).ManhattanDist(pos(chain[i]))
	}
	return sum
}

func lensName(lambda float64) string {
	switch lambda {
	case 1.0:
		return "(block flow only: blocks hug X, chain order ignored — Fig. 3a)"
	case 0.0:
		return "(macro flow only: chain tight, X placement unconstrained — Fig. 3b)"
	default:
		return "(blended: chain follows dataflow around X — Fig. 3c)"
	}
}
