// Engine: the long-lived run model, end to end.
//
// One hidap.Engine fans a mini evaluation suite (two circuits × three
// flows) through its bounded worker pool with SubmitBatch, streams
// completions as they land, and then shows the warm-cache effect: a second
// job on an already-served design skips Gseq construction and reuses the
// engine's pooled annealing scratch.
//
//	go run ./examples/engine
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/circuits"
	"repro/hidap"
)

func main() {
	ctx := context.Background()
	eng := hidap.NewEngine(
		hidap.NewConfig(hidap.WithEffort(hidap.EffortLow), hidap.WithSeed(1)),
		hidap.EngineOptions{Workers: 4},
	)
	defer eng.Close()

	// Stream completions while the batch runs.
	go func() {
		for tk := range eng.Results() {
			fmt.Printf("  [done] %-18s state=%s\n", tk.Label(), tk.State())
		}
	}()

	// A mini suite: two scaled-down paper circuits, all three flows.
	c1, err := circuits.SuiteSpec("c1")
	if err != nil {
		log.Fatal(err)
	}
	c1.Scale = 1000
	c8, err := circuits.SuiteSpec("c8")
	if err != nil {
		log.Fatal(err)
	}
	c8.Scale = 1000

	fmt.Println("submitting 2 circuits x 3 flows through the engine:")
	batch, err := eng.SubmitBatch(ctx, hidap.Suite{Circuits: []circuits.Spec{c1, c8}})
	if err != nil {
		log.Fatal(err)
	}
	res, err := batch.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nTable II over the mini suite:")
	for _, s := range res.Summaries {
		fmt.Printf("  %-8s WLnorm geomean %.3f, WNS mean %.1f%%\n", s.Flow, s.WLGeoMean, s.WNSMean)
	}

	// Warm-cache demo: two identical jobs on one design. The second one
	// finds the design and its sequential graph in the engine cache and
	// draws annealing scratch from the shared pool.
	d := circuits.Generate(c1).Design
	for _, run := range []string{"cold", "warm"} {
		start := time.Now()
		t, err := eng.Submit(ctx, hidap.Job{
			Design: d, Key: "demo", Placer: "hidap", Label: run,
			Config: hidap.NewConfig(hidap.WithEffort(hidap.EffortLow), hidap.WithSeed(7)),
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := t.Wait(ctx); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s same-design job: %v", run, time.Since(start).Round(time.Millisecond))
	}
	st := eng.Stats()
	fmt.Printf("\n\nengine served %d jobs; %d cached designs, %d cached circuits\n",
		st.Completed, st.CachedDesigns, st.CachedCircuits)
}
