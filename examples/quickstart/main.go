// Quickstart: the paper's running example (Fig. 1) end to end, on the
// registry-based Placer API.
//
// A sixteen-macro design is floorplanned with the "hidap" placer; the
// program streams per-level progress, prints the multi-level evolution of
// the block floorplan (first partition, recursive partitions, final macro
// coordinates) and writes one SVG per level plus the final floorplan,
// ending with the unified evaluation report.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/circuits"
	"repro/hidap"
)

func main() {
	ctx := context.Background()
	g := circuits.Fig1Design()
	d := g.Design
	fmt.Printf("design %s: %d macros, %d cells, die %.1f x %.1f mm\n",
		d.Name, len(d.Macros()), d.NumCells(),
		float64(d.Die.W)/1e6, float64(d.Die.H)/1e6)

	// Step 1 of the flow: what does the first partition see? (Fig. 1a)
	names, counts := hidap.TopBlocks(d)
	fmt.Println("\nfirst partition (hierarchical declustering):")
	for i := range names {
		kind := "standard cells"
		if counts[i] > 0 {
			kind = fmt.Sprintf("%d macros", counts[i])
		}
		fmt.Printf("  block %-8s %s\n", names[i], kind)
	}

	// Run the full flow with per-level tracing and progress streaming.
	placer, err := hidap.Lookup("hidap")
	if err != nil {
		log.Fatal(err)
	}
	cfg := hidap.NewConfig(
		hidap.WithSeed(1),
		hidap.WithTrace(),
		hidap.WithProgress(func(ev hidap.Progress) {
			if ev.Stage == hidap.StageLevel {
				fmt.Printf("  [progress] level %d: %q (%d blocks)\n", ev.Level, ev.Path, ev.Blocks)
			}
		}),
	)
	pl, stats, err := placer.Place(ctx, d, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHiDaP placed %d macros across %d levels (%d flips) in %.2fs\n",
		len(d.Macros()), stats.Levels, stats.Flips, stats.MacroSeconds)

	// The Fig. 1 evolution: one SVG per recursion level.
	for i, lv := range stats.Trace {
		path := fmt.Sprintf("quickstart_level%d.svg", i)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		hidap.WriteTraceSVG(f, d.Die, lv)
		f.Close()
		fmt.Printf("  level %d (depth %d, %q): %d blocks -> %s\n",
			i, lv.Depth, lv.Path, len(lv.Blocks), path)
	}

	// Final coordinates (Fig. 1d).
	fmt.Println("\nfinal macro placement:")
	for _, m := range d.Macros() {
		r := pl.Rect(m)
		fmt.Printf("  %-22s at (%7d,%7d) %s\n",
			d.Cell(m).Name, r.X, r.Y, pl.Orient[m])
	}

	f, err := os.Create("quickstart_floorplan.svg")
	if err != nil {
		log.Fatal(err)
	}
	hidap.WriteFloorplanSVG(f, pl)
	f.Close()

	// Metrics after standard-cell placement: one Report for everything.
	if err := hidap.PlaceStdCells(ctx, pl); err != nil {
		log.Fatal(err)
	}
	rep, err := hidap.Evaluate(ctx, d, pl)
	if err != nil {
		log.Fatal(err)
	}
	stats.Annotate(rep)
	fmt.Printf("\nafter cell placement: WL %.4f m, GRC %.2f%%, WNS %.1f%%, TNS %.1f ns\n",
		rep.WirelengthM, rep.CongestionPct, rep.WNSPct, rep.TNSns)
	fmt.Println("report as JSON:")
	if err := rep.WriteJSON(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart_floorplan.svg")
}
