// Quickstart: the paper's running example (Fig. 1) end to end.
//
// A sixteen-macro design is floorplanned with HiDaP; the program prints the
// multi-level evolution of the block floorplan (first partition, recursive
// partitions, final macro coordinates) and writes one SVG per level plus
// the final floorplan.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/circuits"
	"repro/hidap"
)

func main() {
	g := circuits.Fig1Design()
	d := g.Design
	fmt.Printf("design %s: %d macros, %d cells, die %.1f x %.1f mm\n",
		d.Name, len(d.Macros()), d.NumCells(),
		float64(d.Die.W)/1e6, float64(d.Die.H)/1e6)

	// Step 1 of the flow: what does the first partition see? (Fig. 1a)
	names, counts := hidap.TopBlocks(d)
	fmt.Println("\nfirst partition (hierarchical declustering):")
	for i := range names {
		kind := "standard cells"
		if counts[i] > 0 {
			kind = fmt.Sprintf("%d macros", counts[i])
		}
		fmt.Printf("  block %-8s %s\n", names[i], kind)
	}

	// Run the full flow with per-level tracing.
	opt := hidap.DefaultOptions()
	opt.Trace = true
	opt.Seed = 1
	res, err := hidap.Place(d, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHiDaP placed %d macros across %d levels (%d flips)\n",
		len(d.Macros()), res.Levels, res.Flips)

	// The Fig. 1 evolution: one SVG per recursion level.
	for i, lv := range res.Trace {
		path := fmt.Sprintf("quickstart_level%d.svg", i)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		hidap.WriteTraceSVG(f, d.Die, lv)
		f.Close()
		fmt.Printf("  level %d (depth %d, %q): %d blocks -> %s\n",
			i, lv.Depth, lv.Path, len(lv.Blocks), path)
	}

	// Final coordinates (Fig. 1d).
	fmt.Println("\nfinal macro placement:")
	for _, m := range d.Macros() {
		r := res.Placement.Rect(m)
		fmt.Printf("  %-22s at (%7d,%7d) %s\n",
			d.Cell(m).Name, r.X, r.Y, res.Placement.Orient[m])
	}

	f, err := os.Create("quickstart_floorplan.svg")
	if err != nil {
		log.Fatal(err)
	}
	hidap.WriteFloorplanSVG(f, res.Placement)
	f.Close()

	// Metrics after standard-cell placement.
	if err := hidap.PlaceCells(res.Placement); err != nil {
		log.Fatal(err)
	}
	wns, tns := hidap.Timing(d, res.Placement)
	fmt.Printf("\nafter cell placement: WL %.4f m, GRC %.2f%%, WNS %.1f%%, TNS %.1f ns\n",
		hidap.Wirelength(res.Placement), hidap.Congestion(res.Placement), wns, tns)
	fmt.Println("wrote quickstart_floorplan.svg")
}
