// Shapecurves: the block area model of the paper's Fig. 4.
//
// For the Fig. 1 sixteen-macro design, this program prints the shape curve
// Γ of one 4-macro group, one 8-macro side, and the whole design — the
// Pareto-minimal bounding boxes that can hold a slicing placement of the
// macros — and draws each curve as ASCII art.
//
//	go run ./examples/shapecurves
package main

import (
	"fmt"

	"repro/circuits"
	"repro/hidap"
)

func main() {
	g := circuits.Fig1Design()
	d := g.Design

	for _, path := range []string{"left/grp0", "left", ""} {
		pts := hidap.ShapeCurveFor(d, path)
		name := path
		if name == "" {
			name = "(whole design)"
		}
		fmt.Printf("shape curve Γ for %s — %d Pareto corners:\n", name, len(pts))
		for _, p := range pts {
			ar := float64(p.W) / float64(p.H)
			fmt.Printf("  %7.2f x %7.2f mm  (aspect %.2f, area %.3f mm²)\n",
				float64(p.W)/1e6, float64(p.H)/1e6, ar,
				float64(p.W)*float64(p.H)/1e12)
		}
		plot(pts)
		fmt.Println()
	}
}

// plot draws the staircase: feasible region above-right of the corners.
func plot(pts []hidap.ShapePoint) {
	if len(pts) == 0 {
		return
	}
	const cols, rows = 48, 16
	maxW, maxH := int64(0), int64(0)
	for _, p := range pts {
		if p.W > maxW {
			maxW = p.W
		}
		if p.H > maxH {
			maxH = p.H
		}
	}
	maxW = maxW * 11 / 10
	maxH = maxH * 11 / 10
	fits := func(w, h int64) bool {
		for _, p := range pts {
			if p.W <= w && p.H <= h {
				return true
			}
		}
		return false
	}
	for r := rows - 1; r >= 0; r-- {
		h := maxH * int64(r+1) / rows
		line := make([]byte, cols)
		for c := 0; c < cols; c++ {
			w := maxW * int64(c+1) / cols
			if fits(w, h) {
				line[c] = '#'
			} else {
				line[c] = '.'
			}
		}
		fmt.Printf("  |%s\n", line)
	}
	fmt.Printf("  +%s-> width\n", dashes(cols))
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}
