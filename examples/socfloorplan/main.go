// Socfloorplan: the three flows compared on a mid-size SoC.
//
// A c5-class synthetic SoC (133 macros) is floorplanned with the
// industrial-style baseline, HiDaP and the handcrafted oracle; standard
// cells are placed with the shared quadratic placer and the paper's
// Table III metrics are reported, along with SVG floorplans and ASCII
// density maps (Fig. 9).
//
//	go run ./examples/socfloorplan
package main

import (
	"fmt"
	"log"
	"os"

	"repro/circuits"
	"repro/hidap"
)

func main() {
	spec, err := circuits.SuiteSpec("c5")
	if err != nil {
		log.Fatal(err)
	}
	spec.Scale = 100 // keep the example snappy
	g := circuits.Generate(spec)
	d := g.Design
	st := d.Stats()
	fmt.Printf("SoC %s: %d cells, %d macros, die %.2f x %.2f mm\n\n",
		spec.Name, st.Cells, st.MacroCells,
		float64(d.Die.W)/1e6, float64(d.Die.H)/1e6)

	type flowFn func() (*hidap.Placement, error)
	flowsToRun := []struct {
		name string
		run  flowFn
	}{
		{"IndEDA", func() (*hidap.Placement, error) { return hidap.PlaceIndEDA(d, 1) }},
		{"HiDaP", func() (*hidap.Placement, error) {
			opt := hidap.DefaultOptions()
			opt.Seed = 1
			res, err := hidap.Place(d, opt)
			if err != nil {
				return nil, err
			}
			return res.Placement, nil
		}},
		{"handFP", func() (*hidap.Placement, error) { return hidap.PlaceHandFP(d, g.Intent, 1) }},
	}

	fmt.Printf("%-8s %10s %8s %9s %10s\n", "flow", "WL(m)", "GRC%", "WNS%", "TNS(ns)")
	for _, fl := range flowsToRun {
		pl, err := fl.run()
		if err != nil {
			log.Fatalf("%s: %v", fl.name, err)
		}
		if err := hidap.PlaceCells(pl); err != nil {
			log.Fatalf("%s: cells: %v", fl.name, err)
		}
		wns, tns := hidap.Timing(d, pl)
		fmt.Printf("%-8s %10.4f %8.2f %9.1f %10.1f\n",
			fl.name, hidap.Wirelength(pl), hidap.Congestion(pl), wns, tns)

		svg := fmt.Sprintf("soc_%s.svg", fl.name)
		f, err := os.Create(svg)
		if err != nil {
			log.Fatal(err)
		}
		hidap.WriteFloorplanSVG(f, pl)
		f.Close()

		fmt.Printf("\n%s standard-cell density (M = macro):\n%s\n",
			fl.name, hidap.DensityASCII(pl, 20))
	}
	fmt.Println("wrote soc_IndEDA.svg, soc_HiDaP.svg, soc_handFP.svg")
}
