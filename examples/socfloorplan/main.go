// Socfloorplan: every registered placement flow compared on a mid-size SoC.
//
// A c5-class synthetic SoC (133 macros) is floorplanned by each placer in
// the registry — the industrial-style baseline, HiDaP and the handcrafted
// oracle; standard cells are placed with the shared quadratic placer and
// the paper's Table III metrics come out of the unified Evaluate pipeline,
// along with SVG floorplans and ASCII density maps (Fig. 9).
//
//	go run ./examples/socfloorplan
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/circuits"
	"repro/hidap"
)

func main() {
	ctx := context.Background()
	spec, err := circuits.SuiteSpec("c5")
	if err != nil {
		log.Fatal(err)
	}
	spec.Scale = 100 // keep the example snappy
	g := circuits.Generate(spec)
	d := g.Design
	st := d.Stats()
	fmt.Printf("SoC %s: %d cells, %d macros, die %.2f x %.2f mm\n\n",
		spec.Name, st.Cells, st.MacroCells,
		float64(d.Die.W)/1e6, float64(d.Die.H)/1e6)

	// The handfp placer needs the designer intent; the others ignore it.
	cfg := hidap.NewConfig(hidap.WithSeed(1), hidap.WithIntent(g.Intent))

	fmt.Printf("%-8s %10s %8s %9s %10s\n", "flow", "WL(m)", "GRC%", "WNS%", "TNS(ns)")
	for _, name := range hidap.Placers() {
		placer, err := hidap.Lookup(name)
		if err != nil {
			log.Fatal(err)
		}
		pl, stats, err := placer.Place(ctx, d, cfg)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if err := hidap.PlaceStdCells(ctx, pl); err != nil {
			log.Fatalf("%s: cells: %v", name, err)
		}
		rep, err := hidap.Evaluate(ctx, d, pl)
		if err != nil {
			log.Fatalf("%s: evaluate: %v", name, err)
		}
		stats.Annotate(rep)
		fmt.Printf("%-8s %10.4f %8.2f %9.1f %10.1f\n",
			name, rep.WirelengthM, rep.CongestionPct, rep.WNSPct, rep.TNSns)

		svg := fmt.Sprintf("soc_%s.svg", name)
		f, err := os.Create(svg)
		if err != nil {
			log.Fatal(err)
		}
		hidap.WriteFloorplanSVG(f, pl)
		f.Close()

		fmt.Printf("\n%s standard-cell density (M = macro):\n%s\n",
			name, hidap.DensityASCII(pl, 20))
	}
	fmt.Println("wrote soc_handfp.svg, soc_hidap.svg, soc_indeda.svg")
}
