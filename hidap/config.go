package hidap

import (
	"repro/internal/autocluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/seqgraph"
	"repro/internal/slicing"
)

// AutoclusterParams are the hierarchy-synthesis knobs of the autoclustering
// front-end (see internal/autocluster): per-cluster instance and macro
// bounds, coarsening ratio, level cap and tolerance, mirroring the
// rtl_macro_placer knob set of OpenROAD's Hier-RTLMP.
type AutoclusterParams = autocluster.Params

// DefaultAutocluster returns the default autoclustering knobs.
func DefaultAutocluster() AutoclusterParams { return autocluster.DefaultParams() }

// Progress aliases: the per-level / per-candidate events delivered to a
// WithProgress callback while a placer runs.
type (
	// Progress is one event of a running placement.
	Progress = core.Progress
	// ProgressFunc receives progress events; callbacks must be fast and
	// may be invoked from the goroutine running the placement.
	ProgressFunc = core.ProgressFunc
)

// Progress stages.
const (
	// StageLevel reports one floorplanned recursion level.
	StageLevel = core.StageLevel
	// StageFlips reports the macro-flipping post-process.
	StageFlips = core.StageFlips
	// StageCandidate reports one evaluated candidate of a multi-candidate
	// run.
	StageCandidate = core.StageCandidate
)

// Config parameterizes a Placer run. Build one with NewConfig and functional
// options; the zero value is not a valid configuration.
type Config struct {
	// Lambda blends block flow (λ) against macro flow (1−λ); the paper
	// evaluates λ ∈ {0.2, 0.5, 0.8}.
	Lambda float64
	// K is the latency decay exponent of the affinity score (paper: 2).
	K float64
	// Effort selects the annealing budget.
	Effort Effort
	// Restarts runs this many independent annealing chains per
	// floorplanning level, keeping the best layout (<= 1 means one chain).
	// The placement is a pure function of (Seed, Restarts) regardless of
	// Parallelism.
	Restarts int
	// Parallelism sizes the work-stealing scheduler a run's whole solve
	// DAG — sibling hierarchy subtrees, per-level restart chains, and (in
	// harness runs) placement candidates — drains through: 1 keeps the run
	// on the calling goroutine, <= 0 uses all cores. It trades wall time
	// only, never the result.
	Parallelism int
	// Batch sizes the speculative proposal groups inside every annealing
	// chain: <= 1 keeps the serial engine; larger values let reject
	// streaks stage and score up to Batch candidate moves against one
	// frozen floorplan per step, exposing intra-chain parallelism to the
	// scheduler. Like Parallelism it trades wall time only — the placement
	// is byte-identical at any value.
	Batch int
	// Seed drives all stochastic steps; equal seeds give equal placements.
	Seed int64
	// Trace records the per-level block floorplans (Fig. 1 evolution) into
	// Stats.Trace.
	Trace bool
	// Flat disables the multi-level recursion (the paper's ablation).
	Flat bool
	// Intent maps macro names to intended outlines; required by the
	// "handfp" placer, ignored by the others.
	Intent Intent
	// Progress, when set, streams per-level (and, in harness runs,
	// per-candidate) events so a server can report status for long runs.
	Progress ProgressFunc
	// Autocluster, when set, runs the hierarchy-synthesis front-end before
	// HiDaP placement: flat (or badly shaped) netlists get a synthesized
	// physical hierarchy honoring the given bounds; well-shaped ones pass
	// through untouched. Engines cache the clustered design per
	// (design, params). Ignored by the "indeda" and "handfp" placers, which
	// never read the hierarchy.
	Autocluster *AutoclusterParams

	// seqGraph, tree, bipartite and pool are warm-cache plumbing set by an
	// Engine before it hands the config to a placer: prebuilt per-design
	// artifacts (Gseq, hierarchy tree, cell–net bipartite graph) and the
	// engine's shared annealing-scratch pool. Never set on configs built by
	// callers.
	seqGraph  *seqgraph.Graph
	tree      *hier.Tree
	bipartite *graph.Bipartite
	pool      *slicing.EvaluatorPool
}

// Option mutates a Config under construction.
type Option func(*Config)

// NewConfig returns the paper's default parameters (λ=0.5, k=2, medium
// effort, seed 0) with the given options applied.
func NewConfig(opts ...Option) *Config {
	base := core.DefaultOptions()
	c := &Config{Lambda: base.Lambda, K: base.K, Effort: base.Effort}
	for _, o := range opts {
		o(c)
	}
	return c
}

// WithLambda sets the block-flow/macro-flow blend λ (0 = macro flow only,
// 1 = block flow only).
func WithLambda(lambda float64) Option { return func(c *Config) { c.Lambda = lambda } }

// WithK sets the latency decay exponent of the affinity score.
func WithK(k float64) Option { return func(c *Config) { c.K = k } }

// WithEffort selects the annealing budget.
func WithEffort(e Effort) Option { return func(c *Config) { c.Effort = e } }

// WithSeed seeds every stochastic step of the run.
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithRestarts runs k independent annealing chains per floorplanning level
// and keeps the best layout. The result is a pure function of (seed, k).
func WithRestarts(k int) Option { return func(c *Config) { c.Restarts = k } }

// WithParallelism sizes the work-stealing scheduler of the run (1 = fully
// serial, <= 0 = all cores). It affects wall time only; the placement never
// depends on it.
func WithParallelism(n int) Option { return func(c *Config) { c.Parallelism = n } }

// WithBatch sizes the speculative proposal groups of the annealing hot loop
// (1 = the serial engine). Larger batches amortize evaluation over reject
// streaks and give the scheduler intra-chain work; the placement never
// depends on the value.
func WithBatch(b int) Option { return func(c *Config) { c.Batch = b } }

// WithTrace records the per-level block floorplans into Stats.Trace.
func WithTrace() Option { return func(c *Config) { c.Trace = true } }

// WithFlat disables the multi-level recursion (ablation of the paper's
// first contribution).
func WithFlat() Option { return func(c *Config) { c.Flat = true } }

// WithIntent supplies the designer intent consumed by the "handfp" placer.
func WithIntent(intent Intent) Option { return func(c *Config) { c.Intent = intent } }

// WithProgress registers a progress callback for the run.
func WithProgress(fn ProgressFunc) Option { return func(c *Config) { c.Progress = fn } }

// WithAutocluster enables the autoclustering front-end with the given knobs
// (DefaultAutocluster() for the defaults). Flat netlists are re-hierarchized
// before placement; already well-shaped ones pass through as a no-op.
func WithAutocluster(p AutoclusterParams) Option {
	return func(c *Config) { c.Autocluster = &p }
}

// coreOptions lowers a Config to the internal HiDaP flow options.
func (c *Config) coreOptions() core.Options {
	opt := core.DefaultOptions()
	opt.Lambda = c.Lambda
	if c.K != 0 {
		opt.K = c.K
	}
	opt.Effort = c.Effort
	opt.Restarts = c.Restarts
	opt.Parallelism = c.Parallelism
	opt.Batch = c.Batch
	opt.Seed = c.Seed
	opt.Trace = c.Trace
	opt.Flat = c.Flat
	opt.Progress = c.Progress
	opt.SeqGraph = c.seqGraph
	opt.Tree = c.tree
	opt.Bipartite = c.bipartite
	opt.Pool = c.pool
	return opt
}
