package hidap

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/circuits"
	"repro/internal/autocluster"
	"repro/internal/eval"
	"repro/internal/flows"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/netlist"
	"repro/internal/seqgraph"
	"repro/internal/slicing"
)

// Flow harness aliases: the suite pipeline (Tables II/III) surfaced through
// the public API so a serving engine can fan a whole evaluation through its
// worker pool.
type (
	// Flow names a macro-placement flow of the paper's evaluation.
	Flow = flows.Flow
	// FlowMetrics is one Table III row: circuit, flow, Report, WLnorm.
	FlowMetrics = flows.Metrics
	// FlowSummary is one Table II row.
	FlowSummary = flows.Summary
	// CircuitSpec parameterizes one synthetic suite design.
	CircuitSpec = circuits.Spec
)

// Evaluation flows.
const (
	FlowIndEDA = flows.FlowIndEDA
	FlowHiDaP  = flows.FlowHiDaP
	FlowHandFP = flows.FlowHandFP
)

// Engine errors.
var (
	// ErrEngineClosed is returned by Submit/Run after Close.
	ErrEngineClosed = errors.New("hidap: engine closed")
	// ErrQueueFull is returned by Submit when MaxPending jobs are queued.
	ErrQueueFull = errors.New("hidap: engine queue full")
	// ErrNotFinished is returned by Ticket.Result before the job completes.
	ErrNotFinished = errors.New("hidap: job not finished")
)

// JobState is the lifecycle phase of a submitted job.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job describes one unit of work for an Engine. Exactly one of Design or
// Circuit must be set:
//
//   - Design jobs run a registered Placer on the given netlist. The engine
//     deduplicates designs by content hash (or by Key when set), so repeated
//     jobs on the same design share one parsed instance and one cached Gseq.
//   - Circuit jobs generate (and cache) a synthetic suite circuit and run
//     the full flow pipeline of the paper's evaluation on it — macro
//     placement, standard-cell placement, measurement — yielding a
//     FlowMetrics row.
type Job struct {
	// Design is the netlist to place (design jobs).
	Design *Design
	// Key optionally names the design in the engine cache, skipping the
	// content hash. Two jobs with equal keys assert content-identical
	// designs and share one canonical instance.
	Key string
	// Placer selects the registered flow for design jobs ("hidap" when
	// empty).
	Placer string
	// Evaluate, for design jobs, runs the shared standard-cell placer and
	// measurement pipeline after macro placement and attaches a Report.
	Evaluate bool

	// Circuit selects a synthetic suite circuit (circuit jobs). The
	// generated design is cached by canonical spec.
	Circuit *CircuitSpec
	// Flow selects the pipeline for circuit jobs (FlowHiDaP when empty).
	Flow Flow
	// Lambdas overrides the HiDaP λ sweep for circuit jobs (default: the
	// paper's {0.2, 0.5, 0.8}, best wirelength wins). A single value pins
	// λ. Circuit jobs otherwise take only Seed and Effort from the Config;
	// the remaining flow knobs are the pipeline's defaults.
	Lambdas []float64

	// Config overrides the engine's default Config for this job.
	Config *Config
	// Label is an opaque tag echoed on the result and its Report.
	Label string

	// placer carries a pre-resolved Placer (set by Placer.Place wrappers),
	// so placers that were never registered still run through the engine.
	placer Placer
}

// JobResult is the outcome of a finished job.
type JobResult struct {
	// Label echoes Job.Label.
	Label string
	// Placement is the physical result (macros, and standard cells when the
	// job evaluated).
	Placement *Placement
	// Stats is the placer bookkeeping.
	Stats Stats
	// Report is the measurement record (design jobs with Evaluate, and all
	// circuit jobs).
	Report *Report
	// Metrics is the Table III row (circuit jobs only).
	Metrics *FlowMetrics
}

// Ticket tracks one submitted job. Wait blocks for the result; Cancel
// aborts the job whether queued or running.
type Ticket struct {
	id     uint64
	label  string
	job    Job
	eng    *Engine
	cd     *cachedDesign
	cc     *cachedCircuit
	placer Placer

	ctx    context.Context
	cancel context.CancelFunc
	phase  atomic.Int32 // 0 queued, 1 running
	done   chan struct{}
	res    *JobResult
	err    error
}

// ID is the engine-unique job id.
func (t *Ticket) ID() uint64 { return t.id }

// Label echoes Job.Label.
func (t *Ticket) Label() string { return t.label }

// Done is closed when the job finishes (successfully or not).
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Cancel aborts the job. A still-queued job is removed from the queue
// immediately — its MaxPending slot frees and Wait returns
// context.Canceled without a worker touching it; a running job stops
// between annealing moves. Cancel after completion is a no-op.
func (t *Ticket) Cancel() {
	t.cancel()
	if t.eng != nil {
		t.eng.dequeue(t)
	}
}

// State reports the job's lifecycle phase.
func (t *Ticket) State() JobState {
	select {
	case <-t.done:
		switch {
		case t.err == nil:
			return JobDone
		case errors.Is(t.err, context.Canceled) || errors.Is(t.err, context.DeadlineExceeded):
			return JobCanceled
		default:
			return JobFailed
		}
	default:
		if t.phase.Load() == 1 {
			return JobRunning
		}
		return JobQueued
	}
}

// Wait blocks until the job finishes or ctx is done. The wait context is
// independent of the job: an expired wait does not cancel the job.
func (t *Ticket) Wait(ctx context.Context) (*JobResult, error) {
	select {
	case <-t.done:
		return t.res, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Result returns the outcome without blocking; ErrNotFinished while the job
// is queued or running.
func (t *Ticket) Result() (*JobResult, error) {
	select {
	case <-t.done:
		return t.res, t.err
	default:
		return nil, ErrNotFinished
	}
}

// EngineOptions sizes an Engine.
type EngineOptions struct {
	// Workers bounds the number of concurrently running jobs; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// MaxPending bounds the queued-but-not-running jobs; Submit returns
	// ErrQueueFull beyond it. <= 0 means unbounded.
	MaxPending int
	// CacheSize bounds each design/circuit cache (LRU eviction); <= 0
	// means 64 entries.
	CacheSize int
}

// EngineStats is a point-in-time snapshot of an Engine. Completed counts
// every terminal job; Failed and Canceled break it down (the remainder
// succeeded). Cache hits and misses count Submit-time lookups in the
// design and circuit caches.
type EngineStats struct {
	Queued             int    `json:"queued"`
	Running            int    `json:"running"`
	Workers            int    `json:"workers"`
	Completed          uint64 `json:"completed"`
	Failed             uint64 `json:"failed"`
	Canceled           uint64 `json:"canceled"`
	CachedDesigns      int    `json:"cached_designs"`
	CachedCircuits     int    `json:"cached_circuits"`
	DesignCacheHits    uint64 `json:"design_cache_hits"`
	DesignCacheMisses  uint64 `json:"design_cache_misses"`
	CircuitCacheHits   uint64 `json:"circuit_cache_hits"`
	CircuitCacheMisses uint64 `json:"circuit_cache_misses"`
	// Autoclustering front-end counters: designs that got a synthesized
	// hierarchy, pass-throughs on already-shaped inputs, cumulative leaf
	// clusters and coarsening levels of the synthesized trees, and jobs that
	// reused a cached clustered design.
	DesignsClustered uint64 `json:"designs_clustered"`
	AutoclusterNoop  uint64 `json:"autocluster_noop"`
	ClustersEmitted  uint64 `json:"clusters_emitted"`
	CoarseningLevels uint64 `json:"coarsening_levels"`
	ClusterCacheHits uint64 `json:"cluster_cache_hits"`
}

// Engine is the long-lived run model of the package: a bounded worker pool
// fed by Submit/SubmitBatch, a per-engine circuit cache (parsed designs and
// their sequential graphs, keyed by content hash) and pooled annealing
// scratch, so back-to-back jobs on the same design run allocation-warm.
// One Engine serves concurrent callers; all methods are safe for concurrent
// use. Placer.Place is a thin wrapper over a shared single-job engine, so
// the one-shot registry API inherits the same caches.
type Engine struct {
	cfg        *Config
	workers    int
	maxPending int

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*Ticket
	closed  bool
	quit    chan struct{} // closed at Close: unblocks stream sends
	wg      sync.WaitGroup
	runs    sync.WaitGroup // inline Engine.Run executions, drained by Close

	pool    *slicing.EvaluatorPool
	designs *lruCache[*cachedDesign]
	gens    *lruCache[*cachedCircuit]

	nextID    atomic.Uint64
	running   atomic.Int32
	completed atomic.Uint64
	failed    atomic.Uint64
	canceled  atomic.Uint64

	acRuns     atomic.Uint64 // designs clustered (non-noop syntheses)
	acNoop     atomic.Uint64 // pass-throughs on well-shaped hierarchies
	acClusters atomic.Uint64 // leaf clusters emitted, cumulative
	acLevels   atomic.Uint64 // coarsening levels run, cumulative
	acHits     atomic.Uint64 // jobs served a cached clustered design

	resultsMu     sync.Mutex
	results       chan *Ticket
	resultsClosed bool
}

// NewEngine builds an engine whose jobs default to cfg (nil means
// NewConfig() defaults) and starts its worker pool. Close releases it.
func NewEngine(cfg *Config, opt EngineOptions) *Engine {
	return newEngine(cfg, opt, true)
}

// newEngine optionally skips spawning the worker pool: the shared engine
// behind Placer.Place only ever executes inline through Run, so it keeps no
// parked goroutines.
func newEngine(cfg *Config, opt EngineOptions, spawnWorkers bool) *Engine {
	if cfg == nil {
		cfg = NewConfig()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cache := opt.CacheSize
	if cache <= 0 {
		cache = 64
	}
	e := &Engine{
		cfg:        cfg,
		workers:    workers,
		maxPending: opt.MaxPending,
		quit:       make(chan struct{}),
		pool:       &slicing.EvaluatorPool{},
		designs:    newLRU[*cachedDesign](cache),
		gens:       newLRU[*cachedCircuit](cache),
	}
	e.cond = sync.NewCond(&e.mu)
	if spawnWorkers {
		for i := 0; i < workers; i++ {
			e.wg.Add(1)
			//hidapvet:allow gocap long-lived engine worker pool, bounded by Workers and joined via wg on Close; not per-solve fan-out
			go e.worker()
		}
	}
	return e
}

// Workers reports the concurrency bound of the pool.
func (e *Engine) Workers() int { return e.workers }

// FlushCaches empties the design and circuit caches, releasing every
// retained netlist and sequential graph. Jobs in flight keep the entries
// they already resolved; subsequent jobs repopulate the caches. Use it when
// a long-lived engine has served a working set it will not see again.
func (e *Engine) FlushCaches() {
	e.designs.flush()
	e.gens.flush()
}

// Stats snapshots the engine's queue, outcome counters and cache occupancy.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	queued := len(e.pending)
	e.mu.Unlock()
	dLen, dHits, dMisses := e.designs.stats()
	cLen, cHits, cMisses := e.gens.stats()
	return EngineStats{
		Queued:             queued,
		Running:            int(e.running.Load()),
		Workers:            e.workers,
		Completed:          e.completed.Load(),
		Failed:             e.failed.Load(),
		Canceled:           e.canceled.Load(),
		CachedDesigns:      dLen,
		CachedCircuits:     cLen,
		DesignCacheHits:    dHits,
		DesignCacheMisses:  dMisses,
		CircuitCacheHits:   cHits,
		CircuitCacheMisses: cMisses,
		DesignsClustered:   e.acRuns.Load(),
		AutoclusterNoop:    e.acNoop.Load(),
		ClustersEmitted:    e.acClusters.Load(),
		CoarseningLevels:   e.acLevels.Load(),
		ClusterCacheHits:   e.acHits.Load(),
	}
}

// noteAutocluster tallies one autoclustering outcome into the engine
// counters: a cache hit, a no-op pass-through, or a fresh synthesis.
func (e *Engine) noteAutocluster(stats autocluster.Stats, fresh bool) {
	switch {
	case !fresh:
		e.acHits.Add(1)
	case stats.NoOp:
		e.acNoop.Add(1)
	default:
		e.acRuns.Add(1)
		e.acClusters.Add(uint64(stats.Clusters))
		e.acLevels.Add(uint64(stats.Levels))
	}
}

// Submit enqueues a job. ctx parents the job's run context: cancelling it
// (or Ticket.Cancel) aborts the job whether queued or running, so a server
// passes a long-lived context here, not a per-request one. Submit itself
// never blocks: it returns ErrQueueFull when MaxPending jobs are already
// queued and ErrEngineClosed after Close.
func (e *Engine) Submit(ctx context.Context, job Job) (*Ticket, error) {
	return e.submit(ctx, job, false)
}

// submit enqueues one job. Bulk submissions (SubmitBatch) bypass the
// MaxPending bound: that bound sheds load from a request-at-a-time
// endpoint, while a batch is one deliberate operation whose size is known
// up front — rejecting its tail nondeterministically would make bounded
// engines unable to run any realistically sized suite.
func (e *Engine) submit(ctx context.Context, job Job, bulk bool) (*Ticket, error) {
	// Reject overload/shutdown before prepare: an engine refusing work must
	// not pay the content hash nor let rejected traffic churn warm cache
	// entries out of the LRU. The check repeats under the lock below for
	// the (rare) race where the queue fills during prepare.
	if err := e.acceptable(bulk); err != nil {
		return nil, err
	}
	t, err := e.prepare(ctx, job)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	switch {
	case e.closed:
		e.mu.Unlock()
		t.cancel()
		return nil, ErrEngineClosed
	case !bulk && e.maxPending > 0 && len(e.pending) >= e.maxPending:
		e.mu.Unlock()
		t.cancel()
		return nil, ErrQueueFull
	}
	e.pending = append(e.pending, t)
	e.cond.Signal()
	e.mu.Unlock()
	// Watch the job context while the ticket waits: a context cancelled
	// during the queued phase dequeues the ticket immediately (freeing its
	// MaxPending slot and unblocking Wait), exactly like Ticket.Cancel. The
	// watcher exits as soon as the job finishes by any path.
	//hidapvet:allow gocap per-ticket context watcher; lifetime bounded by the job, not solver fan-out
	go func() {
		select {
		case <-t.ctx.Done():
			e.dequeue(t)
		case <-t.done:
		}
	}()
	return t, nil
}

func (e *Engine) acceptable(bulk bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch {
	case e.closed:
		return ErrEngineClosed
	case !bulk && e.maxPending > 0 && len(e.pending) >= e.maxPending:
		return ErrQueueFull
	}
	return nil
}

// Run executes one job synchronously on the caller's goroutine, outside the
// worker pool but inside the engine's caches and scratch pool. It is the
// single-job path behind Placer.Place.
func (e *Engine) Run(ctx context.Context, job Job) (*JobResult, error) {
	t, err := e.prepare(ctx, job)
	if err != nil {
		return nil, err
	}
	defer t.cancel()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrEngineClosed
	}
	// Registered under the engine lock so Close (which flips closed under
	// the same lock before waiting) cannot miss an in-flight Run.
	e.runs.Add(1)
	e.mu.Unlock()
	defer e.runs.Done()
	t.phase.Store(1)
	e.running.Add(1)
	res, err := e.execute(t)
	e.running.Add(-1)
	e.finish(err)
	return res, err
}

// finish tallies one terminal job outcome.
func (e *Engine) finish(err error) {
	e.completed.Add(1)
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		e.canceled.Add(1)
	default:
		e.failed.Add(1)
	}
}

// Results returns the completion stream: tickets finished by the worker
// pool after the first Results call are delivered in completion order, at
// most once each. Consumers should drain the channel until it closes (at
// Close); a stalled consumer applies backpressure to the pool, never to
// Close — completions that race shutdown are dropped from the stream
// (Ticket.Wait/Result still return them). Tickets finished before the
// first call, cancelled while queued, or run inline are not streamed.
func (e *Engine) Results() <-chan *Ticket {
	e.resultsMu.Lock()
	defer e.resultsMu.Unlock()
	if e.results == nil {
		e.results = make(chan *Ticket, 16)
		if e.resultsClosed {
			close(e.results)
		}
	}
	return e.results
}

// Close stops accepting jobs, drains every queued and running job —
// including jobs executing inline through Run — then closes the Results
// stream. It is idempotent and safe to call concurrently; all calls block
// until the drain completes.
func (e *Engine) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.quit) // release workers parked on a stalled Results consumer
		e.cond.Broadcast()
	}
	e.mu.Unlock()
	e.wg.Wait()
	e.runs.Wait()
	e.resultsMu.Lock()
	if !e.resultsClosed {
		e.resultsClosed = true
		if e.results != nil {
			close(e.results)
		}
	}
	e.resultsMu.Unlock()
}

// Suite describes a SubmitBatch fan-out: the cross product of circuits,
// flows and seeds, one job each.
type Suite struct {
	// Circuits are the synthetic designs to evaluate.
	Circuits []CircuitSpec
	// Flows to run per circuit; nil means all three paper flows.
	Flows []Flow
	// Seeds per (circuit, flow); nil means the base config's seed.
	Seeds []int64
	// Config is the base per-job config (effort, λ defaults); the seed is
	// overridden per job. Nil means the engine default.
	Config *Config
}

// Batch tracks the tickets of one SubmitBatch call.
type Batch struct {
	// Tickets in submit order: circuits × flows × seeds, innermost seeds.
	Tickets []*Ticket

	// seeds holds each ticket's seed so Wait can normalize per seed group.
	seeds []int64
}

// SuiteResult aggregates a finished batch through the shared evaluation
// pipeline: normalized Table III rows plus the Table II summary.
type SuiteResult struct {
	Rows      []*FlowMetrics `json:"rows"`
	Summaries []FlowSummary  `json:"summary"`
}

// SubmitBatch fans a suite through the worker pool, one job per
// (circuit, flow, seed). Repeated circuits across jobs share one cached
// design and sequential graph. ctx parents every job. A batch is exempt
// from the MaxPending bound: the whole suite is accepted atomically and
// drains through the Workers-bounded pool.
func (e *Engine) SubmitBatch(ctx context.Context, s Suite) (*Batch, error) {
	if len(s.Circuits) == 0 {
		return nil, errors.New("hidap: SubmitBatch needs at least one circuit")
	}
	fl := s.Flows
	if len(fl) == 0 {
		fl = []Flow{FlowIndEDA, FlowHiDaP, FlowHandFP}
	}
	base := s.Config
	if base == nil {
		base = e.cfg
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{base.Seed}
	}
	b := &Batch{}
	for _, spec := range s.Circuits {
		for _, f := range fl {
			for _, seed := range seeds {
				cfg := *base
				cfg.Seed = seed
				spec := spec
				t, err := e.submit(ctx, Job{
					Circuit: &spec,
					Flow:    f,
					Config:  &cfg,
					Label:   fmt.Sprintf("%s/%s/seed%d", spec.Name, f, seed),
				}, true)
				if err != nil {
					b.Cancel()
					return nil, err
				}
				b.Tickets = append(b.Tickets, t)
				b.seeds = append(b.seeds, seed)
			}
		}
	}
	return b, nil
}

// Cancel aborts every job of the batch.
func (b *Batch) Cancel() {
	for _, t := range b.Tickets {
		t.Cancel()
	}
}

// Wait blocks until every job finishes, then aggregates the rows through
// flows.Normalize/Summarize. Normalization runs per seed group, so with
// multiple seeds every row is normalized against its own seed's handFP
// reference (each handFP row is exactly 1.0) instead of cross-seed
// contamination. The first job *failure* cancels the remainder and is
// returned; an expired wait context merely returns its error — the jobs
// keep running and a later Wait picks them up.
func (b *Batch) Wait(ctx context.Context) (*SuiteResult, error) {
	rows := make([]*FlowMetrics, 0, len(b.Tickets))
	bySeed := map[int64][]*FlowMetrics{}
	for i, t := range b.Tickets {
		res, err := t.Wait(ctx)
		if err != nil {
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				return nil, err // the wait expired, not the batch
			}
			b.Cancel()
			return nil, fmt.Errorf("hidap: batch job %q: %w", t.Label(), err)
		}
		rows = append(rows, res.Metrics)
		bySeed[b.seeds[i]] = append(bySeed[b.seeds[i]], res.Metrics)
	}
	//hidapvet:orderinvariant per-seed groups are disjoint; Normalize mutates each group in isolation, so visit order cannot matter
	for _, group := range bySeed {
		flows.Normalize(group)
	}
	return &SuiteResult{Rows: rows, Summaries: flows.Summarize(rows)}, nil
}

// prepare validates a job, interns its design/circuit in the engine caches
// and wraps it in a ticket.
func (e *Engine) prepare(ctx context.Context, job Job) (*Ticket, error) {
	t := &Ticket{
		id:    e.nextID.Add(1),
		label: job.Label,
		job:   job,
		eng:   e,
		done:  make(chan struct{}),
	}
	switch {
	case job.Design != nil && job.Circuit != nil:
		return nil, errors.New("hidap: job sets both Design and Circuit")
	case job.Design != nil:
		t.placer = job.placer
		if t.placer == nil {
			name := job.Placer
			if name == "" {
				name = "hidap"
			}
			p, err := Lookup(name)
			if err != nil {
				return nil, err
			}
			t.placer = p
		}
		key := job.Key
		if key == "" {
			var err error
			key, err = hashDesign(job.Design)
			if err != nil {
				// An unhashable design is served uncached under a unique key.
				key = fmt.Sprintf("unhashed:%d", t.id)
			}
		}
		d := job.Design
		t.cd = e.designs.getOrCreate("design:"+key, func() *cachedDesign {
			return &cachedDesign{d: d}
		})
	case job.Circuit != nil:
		spec := job.Circuit.Canonical()
		if spec.Macros <= 0 {
			return nil, fmt.Errorf("hidap: circuit spec %q has no macros (use circuits.SuiteSpec for the paper suite)", spec.Name)
		}
		t.cc = e.gens.getOrCreate(fmt.Sprintf("circuit:%#v", spec), func() *cachedCircuit {
			return &cachedCircuit{spec: spec}
		})
	default:
		return nil, errors.New("hidap: job needs a Design or a Circuit")
	}
	t.ctx, t.cancel = context.WithCancel(ctx)
	return t, nil
}

// worker drains the queue until Close and the queue is empty, so shutdown
// finishes every accepted job.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		t := e.next()
		if t == nil {
			return
		}
		t.phase.Store(1)
		e.running.Add(1)
		t.res, t.err = e.execute(t)
		e.running.Add(-1)
		e.finish(t.err)
		t.cancel()
		close(t.done)
		if ch := e.resultsStream(); ch != nil {
			// A stalled consumer applies backpressure to the pool, but it
			// must never wedge Close: once shutdown starts, undelivered
			// completions are dropped from the stream (Wait/Result still
			// return them). The non-blocking attempt first keeps delivery
			// reliable for a consumer that is keeping up even while quit is
			// already closed — the two-ready-cases select would otherwise
			// drop randomly during a graceful drain.
			select {
			case ch <- t:
			default:
				select {
				case ch <- t:
				case <-e.quit:
				}
			}
		}
	}
}

// dequeue removes a cancelled ticket from the pending queue and finalizes
// it without a worker: its MaxPending slot frees immediately and Wait
// unblocks with the cancellation error. A ticket already popped (or
// finished) is left to the worker path; the queue lock makes the two
// exclusive. Cancelled-while-queued tickets are not delivered to the
// Results stream, which carries worker-completed jobs only.
func (e *Engine) dequeue(t *Ticket) {
	e.mu.Lock()
	found := false
	for i, p := range e.pending {
		if p == t {
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			found = true
			break
		}
	}
	e.mu.Unlock()
	if !found {
		return
	}
	t.err = t.ctx.Err()
	if t.err == nil {
		t.err = context.Canceled
	}
	e.finish(t.err)
	close(t.done)
}

func (e *Engine) next() *Ticket {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.pending) == 0 && !e.closed {
		e.cond.Wait()
	}
	if len(e.pending) == 0 {
		return nil
	}
	t := e.pending[0]
	e.pending[0] = nil
	e.pending = e.pending[1:]
	return t
}

func (e *Engine) resultsStream() chan *Ticket {
	e.resultsMu.Lock()
	defer e.resultsMu.Unlock()
	return e.results
}

// execute runs one job on the caller's goroutine. A panicking job (a
// degenerate design tripping an internal invariant) is converted into a job
// error: one bad job must not take down the engine or a server built on it.
func (e *Engine) execute(t *Ticket) (res *JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("hidap: job %d (%q) panicked: %v\n%s", t.id, t.label, r, debug.Stack())
		}
	}()
	ctx := t.ctx
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := t.job.Config
	if cfg == nil {
		cfg = e.cfg
	}
	cc := *cfg // shallow copy: the job must not see engine plumbing twice
	if e.workers > 1 && cc.Parallelism <= 0 {
		// The engine's worker pool is the outer parallelism layer: a job's
		// internal scheduler must not default to all cores on top of it, or
		// concurrent jobs multiply into Workers × GOMAXPROCS busy
		// goroutines. Jobs run serially inside their worker slot unless they
		// ask for more; results are identical either way (placements are
		// Parallelism-independent).
		cc.Parallelism = 1
	}
	if t.cc != nil {
		return e.runCircuitJob(ctx, t, &cc)
	}
	return e.runDesignJob(ctx, t, &cc)
}

// runDesignJob places (and optionally evaluates) a cached design with a
// registered placer, warm: the cached Gseq and the engine scratch pool ride
// in on the config.
func (e *Engine) runDesignJob(ctx context.Context, t *Ticket, cfg *Config) (*JobResult, error) {
	cd := t.cd
	if cfg.Autocluster != nil && t.placer.Name() != "indeda" && t.placer.Name() != "handfp" {
		// Hierarchy-consuming placers get the autoclustered variant; indeda
		// and handfp never read the hierarchy, so clustering for them would
		// be wasted work.
		ent, fresh, err := cd.clustered(*cfg.Autocluster)
		if err != nil {
			return nil, err
		}
		e.noteAutocluster(ent.stats, fresh)
		cd = ent.cd
	}
	d := cd.d
	if t.placer.Name() == "hidap" {
		// Only the paper's flow consumes these during placement; building
		// them for indeda/handfp jobs would charge them work they never did
		// before the engine existed. (Evaluate below builds Gseq on demand —
		// every cachedDesign artifact is once-per-design either way.)
		cfg.seqGraph = cd.graph()
		cfg.tree = cd.hierTree()
		cfg.bipartite = cd.bipartite()
	}
	cfg.pool = e.pool
	pl, stats, err := placerRun(ctx, t.placer, d, cfg)
	if err != nil {
		return nil, err
	}
	res := &JobResult{Label: t.job.Label, Placement: pl, Stats: stats}
	if t.job.Evaluate {
		if err := PlaceStdCells(ctx, pl); err != nil {
			return nil, err
		}
		rep, err := eval.Evaluate(ctx, d, pl, eval.Options{Graph: t.cd.graph()})
		if err != nil {
			return nil, err
		}
		stats.Annotate(rep)
		rep.Label = t.job.Label
		res.Report = rep
	}
	return res, nil
}

// runCircuitJob generates (once) a synthetic circuit and runs the full flow
// pipeline, yielding one Table III row.
func (e *Engine) runCircuitJob(ctx context.Context, t *Ticket, cfg *Config) (*JobResult, error) {
	g := t.cc.gen()
	fl := t.job.Flow
	if fl == "" {
		fl = FlowHiDaP
	}
	fopt := flows.DefaultOptions()
	fopt.Seed = cfg.Seed
	fopt.Effort = cfg.Effort
	fopt.LevelRestarts = cfg.Restarts
	fopt.Parallelism = cfg.Parallelism
	fopt.Batch = cfg.Batch
	fopt.Pool = e.pool
	if len(t.job.Lambdas) > 0 {
		fopt.Lambdas = t.job.Lambdas
	}
	if cfg.Autocluster != nil && fl == FlowHiDaP {
		// Cluster up front (the Generated memoizes per params, so the flow's
		// own lookup below is a hit) to tally the outcome into the engine
		// counters before placement starts.
		res, fresh, err := g.Autocluster(*cfg.Autocluster)
		if err != nil {
			return nil, err
		}
		e.noteAutocluster(res.Stats, fresh)
		fopt.Autocluster = cfg.Autocluster
	}
	// Parallelism rides in from the config (execute pinned it to 1 on
	// multi-worker engines, so the Workers bound stays the whole story of a
	// busy engine's parallelism; a single-worker engine lets the job's own
	// scheduler use the machine).
	m, pl, err := flows.Run(ctx, g, fl, fopt)
	if err != nil {
		return nil, err
	}
	m.Label = t.job.Label
	return &JobResult{
		Label:     t.job.Label,
		Placement: pl,
		Stats:     Stats{Placer: string(fl), MacroSeconds: m.MacroSeconds, Lambda: m.Lambda},
		Report:    &m.Report,
		Metrics:   m,
	}, nil
}

// placerRun dispatches to a placer's implementation. Built-in flows (and
// any Placer built with PlacerFunc) are unwrapped to their raw function:
// their Place method routes through the shared engine, and unwrapping here
// is what keeps that loop open instead of recursive.
func placerRun(ctx context.Context, p Placer, d *Design, cfg *Config) (*Placement, Stats, error) {
	if pf, ok := p.(placerFunc); ok {
		return pf.fn(ctx, d, cfg)
	}
	return p.Place(ctx, d, cfg)
}

// cachedDesign is one design cache entry: the canonical parsed instance and
// its lazily built derived artifacts — sequential graph, hierarchy tree and
// cell–net bipartite graph — each built once and shared read-only by every
// job that references the design.
type cachedDesign struct {
	d        *Design
	once     sync.Once
	sg       *seqgraph.Graph
	treeOnce sync.Once
	tree     *hier.Tree
	bpOnce   sync.Once
	bp       *graph.Bipartite

	// acMu guards the clustered-design variants, keyed by the autocluster
	// knobs: the design cache is content-addressed, so one clustered variant
	// per (design hash, params) serves every job that asks for it.
	acMu sync.Mutex
	ac   map[autocluster.Params]*clusteredEntry
}

// clusteredEntry is one autoclustered variant of a cached design. A no-op
// synthesis points cd back at the original entry, so warm artifacts are
// shared rather than rebuilt.
type clusteredEntry struct {
	cd    *cachedDesign
	stats autocluster.Stats
}

// clustered returns (building once) the autoclustered variant of the design
// under the given knobs. The clustered netlist shares cells and nets with
// the original, so the variant inherits the original's sequential and
// bipartite graphs — only the hierarchy tree is rebuilt.
func (c *cachedDesign) clustered(p autocluster.Params) (*clusteredEntry, bool, error) {
	c.acMu.Lock()
	defer c.acMu.Unlock()
	if ent, ok := c.ac[p]; ok {
		return ent, false, nil
	}
	res, err := autocluster.ClusterUsing(c.d, p, c.graph())
	if err != nil {
		return nil, false, err
	}
	ent := &clusteredEntry{cd: c, stats: res.Stats}
	if !res.Stats.NoOp {
		cd := &cachedDesign{d: res.Design}
		cd.once.Do(func() { cd.sg = c.graph() })
		cd.bpOnce.Do(func() { cd.bp = c.bipartite() })
		ent.cd = cd
	}
	if c.ac == nil {
		c.ac = make(map[autocluster.Params]*clusteredEntry)
	}
	c.ac[p] = ent
	return ent, true, nil
}

func (c *cachedDesign) graph() *seqgraph.Graph {
	c.once.Do(func() {
		c.sg = seqgraph.Build(c.d, seqgraph.DefaultParams())
	})
	return c.sg
}

func (c *cachedDesign) hierTree() *hier.Tree {
	c.treeOnce.Do(func() {
		c.tree = hier.New(c.d)
	})
	return c.tree
}

func (c *cachedDesign) bipartite() *graph.Bipartite {
	c.bpOnce.Do(func() {
		c.bp = graph.BipartiteFromDesign(c.d)
	})
	return c.bp
}

// cachedCircuit is one synthetic-circuit cache entry, generated on first
// use. Generated caches its own Gseq.
type cachedCircuit struct {
	spec circuits.Spec
	once sync.Once
	g    *circuits.Generated
}

func (c *cachedCircuit) gen() *circuits.Generated {
	c.once.Do(func() {
		c.g = circuits.Generate(c.spec)
	})
	return c.g
}

// hashDesign content-addresses a design via its canonical JSON form.
func hashDesign(d *Design) (string, error) {
	h := sha256.New()
	if err := netlist.WriteJSON(h, d); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)[:12]), nil
}

// lruCache is a small mutex-guarded LRU of cache entries. Creation inserts
// a cheap shell; heavy initialization happens lazily inside the entry (via
// sync.Once), so the cache lock is never held across design parsing or
// graph construction. Evicted entries stay valid for jobs already holding
// them.
type lruCache[V any] struct {
	mu     sync.Mutex
	max    int
	m      map[string]*list.Element
	l      *list.List
	hits   uint64
	misses uint64
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](max int) *lruCache[V] {
	return &lruCache[V]{max: max, m: make(map[string]*list.Element), l: list.New()}
}

func (c *lruCache[V]) getOrCreate(key string, mk func() V) V {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.hits++
		c.l.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val
	}
	c.misses++
	v := mk()
	c.m[key] = c.l.PushFront(&lruEntry[V]{key: key, val: v})
	for c.l.Len() > c.max {
		last := c.l.Back()
		c.l.Remove(last)
		delete(c.m, last.Value.(*lruEntry[V]).key)
	}
	return v
}

func (c *lruCache[V]) stats() (length int, hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.l.Len(), c.hits, c.misses
}

func (c *lruCache[V]) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[string]*list.Element)
	c.l.Init()
}

// sharedEngine is the process-wide single-job engine behind Placer.Place:
// one-shot callers inherit its scratch pool and a small design cache
// without managing an Engine themselves. It spawns no worker goroutines
// (Place executes inline through Run) and its cache is deliberately small —
// Place retains at most the last 16 distinct designs (keyed by pointer
// identity, see placerFunc.Place), a bounded warm set rather than an
// accumulating one.
var (
	sharedOnce sync.Once
	sharedInst *Engine
)

func sharedEngine() *Engine {
	sharedOnce.Do(func() {
		sharedInst = newEngine(nil, EngineOptions{CacheSize: 16}, false)
	})
	return sharedInst
}
