package hidap_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/circuits"
	"repro/hidap"
)

// loadSpecA/B are tiny suite-shaped circuits for engine tests: small enough
// for low-effort runs, structured enough that every flow has real work.
func loadSpecA() circuits.Spec {
	return circuits.Spec{
		Name: "engA", Cells: 300_000, Macros: 8, Subsystems: 2,
		BusWidth: 32, PipelineDepth: 2, Scale: 300, Seed: 5,
	}
}

func loadSpecB() circuits.Spec {
	return circuits.Spec{
		Name: "engB", Cells: 250_000, Macros: 6, Subsystems: 2,
		BusWidth: 32, PipelineDepth: 2, Scale: 300, Seed: 9,
	}
}

func fastCfg(seed int64) *hidap.Config {
	return hidap.NewConfig(hidap.WithEffort(hidap.EffortLow), hidap.WithSeed(seed))
}

// TestEngineConcurrentLoad floods one engine with mixed concurrent jobs —
// repeated designs, all three flows, several seeds — and checks that every
// job completes with a correct Report, that identical jobs stay
// deterministic under concurrency, and that the caches were actually shared
// (run under -race in CI to prove the sharing is race-free).
func TestEngineConcurrentLoad(t *testing.T) {
	gA := circuits.Generate(loadSpecA())
	gB := circuits.Generate(loadSpecB())

	eng := hidap.NewEngine(fastCfg(1), hidap.EngineOptions{Workers: 8})
	defer eng.Close()

	ctx := context.Background()
	var tickets []*hidap.Ticket
	submit := func(job hidap.Job) {
		t.Helper()
		tk, err := eng.Submit(ctx, job)
		if err != nil {
			t.Fatalf("Submit(%q): %v", job.Label, err)
		}
		tickets = append(tickets, tk)
	}

	// 10 design jobs over two distinct designs (so the design cache must
	// dedup), mixed placers and seeds, including two identical jobs whose
	// results must match bit for bit.
	for i := 0; i < 5; i++ {
		submit(hidap.Job{
			Design: gA.Design, Placer: "hidap", Evaluate: true,
			Config: fastCfg(int64(i % 3)), Label: fmt.Sprintf("dA-hidap-%d", i%3),
		})
	}
	for i := 0; i < 3; i++ {
		submit(hidap.Job{
			Design: gB.Design, Placer: "hidap", Evaluate: true,
			Config: fastCfg(2), Label: "dB-hidap",
		})
	}
	submit(hidap.Job{Design: gA.Design, Placer: "indeda", Evaluate: true, Config: fastCfg(1), Label: "dA-indeda"})
	submit(hidap.Job{Design: gB.Design, Placer: "indeda", Evaluate: true, Config: fastCfg(1), Label: "dB-indeda"})

	// 6 circuit jobs: two specs × three flows through the full pipeline.
	for _, spec := range []circuits.Spec{loadSpecA(), loadSpecB()} {
		for _, f := range []hidap.Flow{hidap.FlowIndEDA, hidap.FlowHiDaP, hidap.FlowHandFP} {
			spec := spec
			submit(hidap.Job{
				Circuit: &spec, Flow: f, Config: fastCfg(1),
				Label: fmt.Sprintf("%s/%s", spec.Name, f),
			})
		}
	}
	if len(tickets) < 16 {
		t.Fatalf("load test submitted %d jobs, want >= 16", len(tickets))
	}

	wlByLabel := map[string][]float64{}
	for _, tk := range tickets {
		res, err := tk.Wait(ctx)
		if err != nil {
			t.Fatalf("job %q: %v", tk.Label(), err)
		}
		if tk.State() != hidap.JobDone {
			t.Errorf("job %q state = %q, want done", tk.Label(), tk.State())
		}
		if res.Report == nil || res.Report.WirelengthM <= 0 {
			t.Errorf("job %q: bad report %+v", tk.Label(), res.Report)
		}
		if res.Report.Label != tk.Label() {
			t.Errorf("job %q: report label %q", tk.Label(), res.Report.Label)
		}
		if res.Placement == nil || !res.Placement.AllMacrosPlaced() {
			t.Errorf("job %q: macros unplaced", tk.Label())
		}
		wlByLabel[tk.Label()] = append(wlByLabel[tk.Label()], res.Report.WirelengthM)
	}
	// Identical jobs (same design, placer, seed) must agree exactly even
	// when raced against the rest of the load.
	for label, wls := range wlByLabel {
		for _, wl := range wls[1:] {
			if wl != wls[0] {
				t.Errorf("job %q nondeterministic under load: %v", label, wls)
			}
		}
	}

	st := eng.Stats()
	if st.CachedDesigns != 2 {
		t.Errorf("cached designs = %d, want 2 (content-hash dedup)", st.CachedDesigns)
	}
	if st.CachedCircuits != 2 {
		t.Errorf("cached circuits = %d, want 2", st.CachedCircuits)
	}
	if st.Completed != uint64(len(tickets)) {
		t.Errorf("completed = %d, want %d", st.Completed, len(tickets))
	}
}

// TestEngineWarmCacheAllocs submits the same design twice to a single-worker
// engine and requires the second job to allocate measurably less: the warm
// path skips seqgraph construction and reuses pooled annealing scratch.
func TestEngineWarmCacheAllocs(t *testing.T) {
	g := circuits.Generate(circuits.Spec{
		Name: "warm", Cells: 400_000, Macros: 6, Subsystems: 2,
		BusWidth: 48, PipelineDepth: 2, Scale: 100, Seed: 3,
	})
	eng := hidap.NewEngine(fastCfg(1), hidap.EngineOptions{Workers: 1})
	defer eng.Close()

	job := hidap.Job{Design: g.Design, Key: "warm", Placer: "hidap", Config: fastCfg(1)}
	// Run executes on this goroutine, so ReadMemStats brackets exactly the
	// job's own allocations — no racing worker to under- or over-count.
	mallocs := func() uint64 {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if _, err := eng.Run(context.Background(), job); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}
	cold := mallocs()
	warm := mallocs()
	t.Logf("cold job: %d mallocs, warm job: %d mallocs (%.1f%%)",
		cold, warm, 100*float64(warm)/float64(cold))
	if warm >= cold {
		t.Errorf("warm job allocated %d >= cold %d: cache not warm", warm, cold)
	}
	if float64(warm) > 0.9*float64(cold) {
		t.Errorf("warm job allocated %d vs cold %d: saving < 10%%, not measurable", warm, cold)
	}
}

// BenchmarkEngineSameDesign contrasts the cold path (fresh engine per job)
// with the warm path (one long-lived engine): allocs/op is the headline.
func BenchmarkEngineSameDesign(b *testing.B) {
	g := circuits.Generate(circuits.Spec{
		Name: "warmb", Cells: 400_000, Macros: 6, Subsystems: 2,
		BusWidth: 48, PipelineDepth: 2, Scale: 100, Seed: 3,
	})
	job := hidap.Job{Design: g.Design, Key: "warmb", Placer: "hidap", Config: fastCfg(1)}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := hidap.NewEngine(fastCfg(1), hidap.EngineOptions{Workers: 1})
			if _, err := eng.Run(context.Background(), job); err != nil {
				b.Fatal(err)
			}
			eng.Close()
		}
	})
	b.Run("warm", func(b *testing.B) {
		eng := hidap.NewEngine(fastCfg(1), hidap.EngineOptions{Workers: 1})
		defer eng.Close()
		if _, err := eng.Run(context.Background(), job); err != nil {
			b.Fatal(err) // prime the caches outside the timed loop
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(context.Background(), job); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// blockingPlacer parks until its context is cancelled; tests use it to hold
// a worker slot deterministically. started receives one token per run.
func blockingPlacer(name string, started chan struct{}) hidap.Placer {
	return hidap.PlacerFunc(name, func(ctx context.Context, d *hidap.Design, cfg *hidap.Config) (*hidap.Placement, hidap.Stats, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return nil, hidap.Stats{}, ctx.Err()
	})
}

func TestEngineCancelAndQueueFull(t *testing.T) {
	started := make(chan struct{}, 4)
	hidap.MustRegister(blockingPlacer("test-engine-block", started))
	g := circuits.ABCDX()

	eng := hidap.NewEngine(nil, hidap.EngineOptions{Workers: 1, MaxPending: 1})
	defer eng.Close()
	ctx := context.Background()

	running, err := eng.Submit(ctx, hidap.Job{Design: g.Design, Placer: "test-engine-block"})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("blocking job never started")
	}
	if running.State() != hidap.JobRunning {
		t.Errorf("state = %q, want running", running.State())
	}

	queued, err := eng.Submit(ctx, hidap.Job{Design: g.Design, Placer: "test-engine-block"})
	if err != nil {
		t.Fatal(err)
	}
	if queued.State() != hidap.JobQueued {
		t.Errorf("state = %q, want queued", queued.State())
	}
	if _, err := eng.Submit(ctx, hidap.Job{Design: g.Design, Placer: "test-engine-block"}); !errors.Is(err, hidap.ErrQueueFull) {
		t.Errorf("third submit err = %v, want ErrQueueFull", err)
	}

	// Cancel the queued job: its MaxPending slot must free immediately,
	// without a worker touching it.
	queued.Cancel()
	if _, err := queued.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued cancel err = %v, want context.Canceled", err)
	}
	refill, err := eng.Submit(ctx, hidap.Job{Design: g.Design, Placer: "test-engine-block"})
	if err != nil {
		t.Fatalf("submit after cancelling queued job: %v (slot not freed)", err)
	}
	refill.Cancel()
	running.Cancel()
	for _, tk := range []*hidap.Ticket{running, queued, refill} {
		if _, err := tk.Wait(ctx); !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
		if tk.State() != hidap.JobCanceled {
			t.Errorf("state = %q, want canceled", tk.State())
		}
	}
}

// TestEngineCloseWaitsForRun: Close's drain contract covers jobs executing
// inline through Run (the Placer.Place path), not only pool workers.
func TestEngineCloseWaitsForRun(t *testing.T) {
	started := make(chan struct{}, 4)
	hidap.MustRegister(blockingPlacer("test-engine-run-block", started))
	g := circuits.ABCDX()
	eng := hidap.NewEngine(nil, hidap.EngineOptions{Workers: 1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		_, _ = eng.Run(ctx, hidap.Job{Design: g.Design, Placer: "test-engine-run-block"})
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("inline run never started")
	}

	closeDone := make(chan struct{})
	go func() { eng.Close(); close(closeDone) }()
	select {
	case <-closeDone:
		t.Fatal("Close returned while an inline Run was still executing")
	case <-time.After(100 * time.Millisecond):
	}
	cancel() // release the blocked job; Close must now complete
	select {
	case <-closeDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Close never finished after the inline run ended")
	}
	<-runDone
}

// TestEngineLambdaPin: Job.Lambdas overrides the circuit pipeline's λ sweep.
func TestEngineLambdaPin(t *testing.T) {
	eng := hidap.NewEngine(fastCfg(1), hidap.EngineOptions{Workers: 1})
	defer eng.Close()
	spec := loadSpecA()
	tk, err := eng.Submit(context.Background(), hidap.Job{
		Circuit: &spec, Flow: hidap.FlowHiDaP, Lambdas: []float64{0.8}, Config: fastCfg(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Lambda != 0.8 {
		t.Errorf("lambda = %v, want pinned 0.8", res.Metrics.Lambda)
	}
}

func TestEngineCloseDrainsAndRejects(t *testing.T) {
	g := circuits.ABCDX()
	eng := hidap.NewEngine(fastCfg(1), hidap.EngineOptions{Workers: 2})
	ctx := context.Background()
	var tickets []*hidap.Ticket
	for i := 0; i < 4; i++ {
		tk, err := eng.Submit(ctx, hidap.Job{Design: g.Design, Placer: "indeda", Config: fastCfg(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	eng.Close() // must drain all four accepted jobs
	for i, tk := range tickets {
		res, err := tk.Result()
		if err != nil {
			t.Errorf("job %d after Close: %v", i, err)
			continue
		}
		if res.Placement == nil || !res.Placement.AllMacrosPlaced() {
			t.Errorf("job %d: incomplete placement after drain", i)
		}
	}
	if _, err := eng.Submit(ctx, hidap.Job{Design: g.Design}); !errors.Is(err, hidap.ErrEngineClosed) {
		t.Errorf("submit after close err = %v, want ErrEngineClosed", err)
	}
	if _, err := eng.Run(ctx, hidap.Job{Design: g.Design}); !errors.Is(err, hidap.ErrEngineClosed) {
		t.Errorf("run after close err = %v, want ErrEngineClosed", err)
	}
	eng.Close() // idempotent
}

func TestEngineResultsStream(t *testing.T) {
	g := circuits.ABCDX()
	eng := hidap.NewEngine(fastCfg(1), hidap.EngineOptions{Workers: 2})
	results := eng.Results() // enable the stream before submitting
	ctx := context.Background()
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := eng.Submit(ctx, hidap.Job{Design: g.Design, Placer: "indeda", Config: fastCfg(int64(i)), Label: "s"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case tk := <-results:
			if res, err := tk.Result(); err != nil || res.Placement == nil {
				t.Errorf("streamed job %d: %v", i, err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("completion %d never streamed", i)
		}
	}
	eng.Close()
	if _, open := <-results; open {
		t.Error("results stream still open after Close")
	}
}

func TestEngineSubmitBatch(t *testing.T) {
	eng := hidap.NewEngine(fastCfg(1), hidap.EngineOptions{Workers: 4})
	defer eng.Close()
	batch, err := eng.SubmitBatch(context.Background(), hidap.Suite{
		Circuits: []circuits.Spec{loadSpecA(), loadSpecB()},
		Config:   fastCfg(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Tickets) != 6 {
		t.Fatalf("tickets = %d, want 2 circuits x 3 flows", len(batch.Tickets))
	}
	res, err := batch.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 || len(res.Summaries) != 3 {
		t.Fatalf("rows = %d, summaries = %d", len(res.Rows), len(res.Summaries))
	}
	for _, r := range res.Rows {
		if r.WLnorm <= 0 {
			t.Errorf("%s/%s: WLnorm = %v after Normalize", r.Circuit, r.Flow, r.WLnorm)
		}
		if r.Flow == hidap.FlowHandFP && r.WLnorm != 1 {
			t.Errorf("%s handFP norm = %v, want 1", r.Circuit, r.WLnorm)
		}
	}
	for _, s := range res.Summaries {
		if s.WLGeoMean <= 0 {
			t.Errorf("%s: geomean = %v", s.Flow, s.WLGeoMean)
		}
	}
}

// TestEnginePanicIsolated: a job that panics (degenerate design tripping an
// internal invariant) must fail alone — the worker, the engine and later
// jobs survive.
func TestEnginePanicIsolated(t *testing.T) {
	hidap.MustRegister(hidap.PlacerFunc("test-engine-panic",
		func(ctx context.Context, d *hidap.Design, cfg *hidap.Config) (*hidap.Placement, hidap.Stats, error) {
			panic("boom")
		}))
	g := circuits.ABCDX()
	eng := hidap.NewEngine(fastCfg(1), hidap.EngineOptions{Workers: 1})
	defer eng.Close()
	ctx := context.Background()

	tk, err := eng.Submit(ctx, hidap.Job{Design: g.Design, Placer: "test-engine-panic"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(ctx); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic converted to error", err)
	}
	if tk.State() != hidap.JobFailed {
		t.Errorf("state = %q, want failed", tk.State())
	}
	// The engine keeps serving.
	tk2, err := eng.Submit(ctx, hidap.Job{Design: g.Design, Placer: "indeda", Config: fastCfg(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := tk2.Wait(ctx); err != nil || !res.Placement.AllMacrosPlaced() {
		t.Fatalf("job after panic: %v", err)
	}
}

// TestEngineBatchBypassesMaxPending: a batch is one deliberate bulk
// operation — it must be accepted whole even when it exceeds the
// request-endpoint queue bound, and an expired wait context must not
// cancel it.
func TestEngineBatchBypassesMaxPending(t *testing.T) {
	eng := hidap.NewEngine(fastCfg(1), hidap.EngineOptions{Workers: 1, MaxPending: 1})
	defer eng.Close()
	batch, err := eng.SubmitBatch(context.Background(), hidap.Suite{
		Circuits: []circuits.Spec{loadSpecA()},
		Config:   fastCfg(1),
	})
	if err != nil {
		t.Fatalf("batch larger than MaxPending rejected: %v", err)
	}
	if len(batch.Tickets) != 3 {
		t.Fatalf("tickets = %d, want 3", len(batch.Tickets))
	}
	// An expired wait returns its own error and leaves the batch running.
	expired, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := batch.Wait(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired wait err = %v", err)
	}
	res, err := batch.Wait(context.Background())
	if err != nil {
		t.Fatalf("re-Wait after expired wait: %v (batch must not be cancelled)", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
}

// TestEngineBatchMultiSeed: with several seeds, every row must be
// normalized against its own seed's handFP reference — each handFP row is
// exactly 1.0, never a cross-seed ratio.
func TestEngineBatchMultiSeed(t *testing.T) {
	eng := hidap.NewEngine(fastCfg(1), hidap.EngineOptions{Workers: 4})
	defer eng.Close()
	batch, err := eng.SubmitBatch(context.Background(), hidap.Suite{
		Circuits: []circuits.Spec{loadSpecA()},
		Flows:    []hidap.Flow{hidap.FlowHiDaP, hidap.FlowHandFP},
		Seeds:    []int64{1, 2},
		Config:   fastCfg(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := batch.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 1 circuit x 2 flows x 2 seeds", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Flow == hidap.FlowHandFP && r.WLnorm != 1 {
			t.Errorf("handFP row %q: WLnorm = %v, want exactly 1 per seed group", r.Label, r.WLnorm)
		}
		if r.WLnorm <= 0 {
			t.Errorf("row %q: WLnorm = %v", r.Label, r.WLnorm)
		}
	}
}

func TestEngineJobValidation(t *testing.T) {
	eng := hidap.NewEngine(nil, hidap.EngineOptions{Workers: 1})
	defer eng.Close()
	ctx := context.Background()
	g := circuits.ABCDX()
	spec := loadSpecA()
	if _, err := eng.Submit(ctx, hidap.Job{}); err == nil {
		t.Error("empty job must fail")
	}
	if _, err := eng.Submit(ctx, hidap.Job{Design: g.Design, Circuit: &spec}); err == nil {
		t.Error("job with both Design and Circuit must fail")
	}
	if _, err := eng.Submit(ctx, hidap.Job{Design: g.Design, Placer: "no-such-placer"}); err == nil {
		t.Error("unknown placer must fail at submit")
	}
	macroless := circuits.Spec{Name: "empty"}
	if _, err := eng.Submit(ctx, hidap.Job{Circuit: &macroless}); err == nil {
		t.Error("macro-less circuit spec must fail at submit, not panic a worker")
	}
}

// TestEngineConcurrentMultiStart exercises per-level multi-start inside
// concurrent engine jobs: several identical jobs run WithRestarts(3) on a
// shared cached design (shared Gseq, hierarchy tree and bipartite graph)
// with their solve DAGs fanned out WithParallelism(2), and every result
// must be identical — the multi-start selection is deterministic
// regardless of worker scheduling. Run under -race in CI, this also proves
// the scheduler fan-out and the shared artifacts are race-free.
func TestEngineConcurrentMultiStart(t *testing.T) {
	g := circuits.Generate(loadSpecA())
	eng := hidap.NewEngine(nil, hidap.EngineOptions{Workers: 4})
	defer eng.Close()

	cfg := hidap.NewConfig(
		hidap.WithEffort(hidap.EffortLow),
		hidap.WithSeed(7),
		hidap.WithRestarts(3),
		hidap.WithParallelism(2),
	)
	const jobs = 6
	var tickets []*hidap.Ticket
	for i := 0; i < jobs; i++ {
		tk, err := eng.Submit(context.Background(), hidap.Job{
			Design: g.Design, Placer: "hidap", Config: cfg,
			Label: fmt.Sprintf("ms-%d", i),
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		tickets = append(tickets, tk)
	}
	var want string
	for i, tk := range tickets {
		res, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		var sb strings.Builder
		for _, m := range g.Design.Macros() {
			fmt.Fprintf(&sb, "%v/%v;", res.Placement.Rect(m), res.Placement.Orient[m])
		}
		if i == 0 {
			want = sb.String()
		} else if sb.String() != want {
			t.Fatalf("job %d placement differs from job 0 under concurrent multi-start", i)
		}
	}
	st := eng.Stats()
	if st.DesignCacheHits < jobs-1 {
		t.Errorf("design cache hits = %d, want >= %d (jobs must share one cached design)", st.DesignCacheHits, jobs-1)
	}
	if st.Completed != jobs || st.Failed != 0 || st.Canceled != 0 {
		t.Errorf("stats = %+v, want %d clean completions", st, jobs)
	}
}

// TestEngineRestartsReachSolver pins the engine's restart plumbing end to
// end: across a handful of seeds, a job WithRestarts(4) must place
// differently from the single-chain run for at least one of them (the knob
// reaches the level solver), identically at any Parallelism value, and
// exactly like a direct Placer.Place call with the same config.
func TestEngineRestartsReachSolver(t *testing.T) {
	// Bigger levels than loadSpecA/B: on tiny levels every chain converges
	// to the same optimum and the divergence check below would be vacuous.
	g := circuits.Generate(circuits.Spec{
		Name: "engMS", Cells: 400_000, Macros: 18, Subsystems: 3,
		BusWidth: 32, PipelineDepth: 2, Scale: 300, Seed: 11,
	})
	eng := hidap.NewEngine(nil, hidap.EngineOptions{Workers: 2})
	defer eng.Close()

	run := func(cfg *hidap.Config) *hidap.JobResult {
		t.Helper()
		res, err := eng.Run(context.Background(), hidap.Job{Design: g.Design, Placer: "hidap", Config: cfg})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	// Scan a few seeds: for at least one, the best of 4 chains must differ
	// from chain 0 alone. If the Restarts plumbing were dropped anywhere in
	// the chain, every seed would match.
	differs := false
	for seed := int64(1); seed <= 6 && !differs; seed++ {
		single := run(hidap.NewConfig(hidap.WithEffort(hidap.EffortLow), hidap.WithSeed(seed)))
		multi := run(hidap.NewConfig(hidap.WithEffort(hidap.EffortLow), hidap.WithSeed(seed), hidap.WithRestarts(4)))
		for _, m := range g.Design.Macros() {
			if multi.Placement.Rect(m) != single.Placement.Rect(m) {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("WithRestarts(4) placed identically to the single-chain run for every seed: the knob did not reach the level solver")
	}

	multiA := run(hidap.NewConfig(hidap.WithEffort(hidap.EffortLow), hidap.WithSeed(3), hidap.WithRestarts(4)))
	multiB := run(hidap.NewConfig(hidap.WithEffort(hidap.EffortLow), hidap.WithSeed(3), hidap.WithRestarts(4), hidap.WithParallelism(4)))
	for _, m := range g.Design.Macros() {
		if multiA.Placement.Rect(m) != multiB.Placement.Rect(m) {
			t.Fatalf("macro %d: restart placement depends on Parallelism", m)
		}
	}

	p, err := hidap.Lookup("hidap")
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := p.Place(context.Background(),
		g.Design, hidap.NewConfig(hidap.WithEffort(hidap.EffortLow), hidap.WithSeed(3), hidap.WithRestarts(4)))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range g.Design.Macros() {
		if direct.Rect(m) != multiA.Placement.Rect(m) {
			t.Fatalf("macro %d: engine job and direct Place disagree under restarts", m)
		}
	}
}

// TestEngineAutocluster exercises the clustered-design cache: a flat design
// job with the front-end enabled synthesizes a hierarchy once, repeat jobs
// under the same knobs hit the cache, and a well-shaped circuit job records
// a no-op pass-through. All outcomes surface in EngineStats.
func TestEngineAutocluster(t *testing.T) {
	spec := loadSpecA()
	spec.Flat = true
	g := circuits.Generate(spec)

	eng := hidap.NewEngine(nil, hidap.EngineOptions{Workers: 2})
	defer eng.Close()
	ctx := context.Background()

	p := hidap.DefaultAutocluster()
	p.MaxNumInst = 300
	p.MaxNumMacro = 3
	p.MinNumMacro = 1
	cfg := func(seed int64) *hidap.Config {
		return hidap.NewConfig(hidap.WithEffort(hidap.EffortLow),
			hidap.WithSeed(seed), hidap.WithAutocluster(p))
	}

	run := func(seed int64, label string) *hidap.JobResult {
		t.Helper()
		tk, err := eng.Submit(ctx, hidap.Job{
			Design: g.Design, Placer: "hidap", Config: cfg(seed), Label: label,
		})
		if err != nil {
			t.Fatalf("Submit(%s): %v", label, err)
		}
		res, err := tk.Wait(ctx)
		if err != nil {
			t.Fatalf("job %s: %v", label, err)
		}
		return res
	}

	r1 := run(1, "flat-1")
	st := eng.Stats()
	if st.DesignsClustered != 1 || st.ClusterCacheHits != 0 {
		t.Fatalf("after first job: clustered=%d hits=%d, want 1/0",
			st.DesignsClustered, st.ClusterCacheHits)
	}
	if st.ClustersEmitted == 0 {
		t.Errorf("synthesis counters empty: %+v", st)
	}

	// Same design + same knobs: the clustered variant is served from cache,
	// and equal seeds reproduce the placement exactly.
	r2 := run(1, "flat-2")
	st = eng.Stats()
	if st.DesignsClustered != 1 || st.ClusterCacheHits != 1 {
		t.Fatalf("after repeat job: clustered=%d hits=%d, want 1/1",
			st.DesignsClustered, st.ClusterCacheHits)
	}
	if len(r1.Placement.Pos) != len(r2.Placement.Pos) {
		t.Fatal("placement shape mismatch")
	}
	for i := range r1.Placement.Pos {
		if r1.Placement.Pos[i] != r2.Placement.Pos[i] {
			t.Fatal("repeat job with cached clustered design diverged")
		}
	}

	// A well-shaped circuit job under the default (loose) knobs records a
	// no-op pass-through.
	wellShaped := loadSpecB()
	noopCfg := hidap.NewConfig(hidap.WithEffort(hidap.EffortLow), hidap.WithSeed(1),
		hidap.WithAutocluster(hidap.DefaultAutocluster()))
	tk, err := eng.Submit(ctx, hidap.Job{Circuit: &wellShaped, Config: noopCfg, Label: "noop"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.AutoclusterNoop != 1 {
		t.Errorf("noop count = %d, want 1", st.AutoclusterNoop)
	}

	// indeda never reads the hierarchy: no clustering work is charged.
	before := eng.Stats()
	tk, err = eng.Submit(ctx, hidap.Job{Design: g.Design, Placer: "indeda", Config: cfg(1), Label: "indeda"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.DesignsClustered != before.DesignsClustered || st.ClusterCacheHits != before.ClusterCacheHits {
		t.Errorf("indeda job touched the cluster cache: before %+v after %+v", before, st)
	}
}
