// Package hidap is the public API of the HiDaP reproduction: RTL-aware,
// dataflow-driven macro placement after Vidal-Obiols et al. (DATE 2019).
//
// The typical flow:
//
//	b := hidap.NewDesign("soc")
//	... build the hierarchical netlist (or hidap.ParseVerilog) ...
//	d := b.MustBuild()
//	res, err := hidap.Place(d, hidap.DefaultOptions())
//	hidap.PlaceCells(res.Placement)            // standard cells
//	wl := hidap.Wirelength(res.Placement)      // meters
//
// The package re-exports the stable subset of the internal machinery:
// netlist construction, the Verilog front end, the HiDaP placer, the
// comparison flows (IndEDA-style baseline and handcrafted oracle), metric
// models and SVG rendering. Every entry point is deterministic for a fixed
// seed.
package hidap

import (
	"io"

	"repro/internal/core"
	"repro/internal/deffmt"
	"repro/internal/geom"
	"repro/internal/handfp"
	"repro/internal/indeda"
	"repro/internal/layout"
	"repro/internal/leffmt"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/placement"
	"repro/internal/render"
	"repro/internal/route"
	"repro/internal/seqgraph"
	"repro/internal/sta"
	"repro/internal/verilog"
)

// Geometry aliases.
type (
	// Point is a die location in DBU (1 DBU = 1 nm).
	Point = geom.Point
	// Rect is an axis-aligned rectangle in DBU.
	Rect = geom.Rect
	// Orient is a placement orientation (R0, MX, MY, ...).
	Orient = geom.Orient
)

// Pt builds a Point.
func Pt(x, y int64) Point { return geom.Pt(x, y) }

// RectXYWH builds a Rect from origin and extents.
func RectXYWH(x, y, w, h int64) Rect { return geom.RectXYWH(x, y, w, h) }

// Netlist aliases.
type (
	// Design is a frozen hierarchical netlist.
	Design = netlist.Design
	// Builder constructs designs programmatically.
	Builder = netlist.Builder
	// CellID identifies a cell in a Design.
	CellID = netlist.CellID
)

// NewDesign returns a Builder for a new hierarchical netlist.
func NewDesign(name string) *Builder { return netlist.NewBuilder(name) }

// Verilog front end aliases.
type (
	// Library is the primitive cell library for Verilog elaboration.
	Library = verilog.Library
)

// DefaultLibrary returns the synthetic standard-cell library (DFF, gates).
// Register design-specific macros with Library.AddMacro.
func DefaultLibrary() *Library { return verilog.DefaultLibrary() }

// ParseVerilog parses a structural Verilog source and elaborates the named
// top module into a Design.
func ParseVerilog(src, top string, lib *Library) (*Design, error) {
	f, err := verilog.Parse(src)
	if err != nil {
		return nil, err
	}
	return verilog.Elaborate(f, top, lib)
}

// WriteVerilog emits a flat design as structural Verilog.
func WriteVerilog(w io.Writer, d *Design, lib *Library) error {
	return verilog.Write(w, d, lib)
}

// Placer aliases.
type (
	// Options configures the HiDaP flow (λ, k, declustering fractions,
	// annealing effort, seed).
	Options = core.Options
	// Result is a finished macro placement with the per-level trace.
	Result = core.Result
	// LevelTrace is one recursion level of the multi-level floorplan.
	LevelTrace = core.LevelTrace
	// Placement is the physical state: positions and orientations.
	Placement = placement.Placement
	// Effort selects the annealing budget.
	Effort = layout.Effort
)

// Annealing efforts.
const (
	EffortLow    = layout.EffortLow
	EffortMedium = layout.EffortMedium
	EffortHigh   = layout.EffortHigh
)

// DefaultOptions mirrors the paper's parameter choices (λ=0.5, k=2,
// open_area=1%, min_area=40%).
func DefaultOptions() Options { return core.DefaultOptions() }

// Place runs the HiDaP flow: hierarchy tree, shape curves, recursive
// dataflow-driven block floorplanning, and macro flipping.
func Place(d *Design, opt Options) (*Result, error) { return core.Place(d, opt) }

// PlaceIndEDA runs the industrial-baseline macro placer (hierarchy- and
// dataflow-blind; wall-packing plus netlist annealing).
func PlaceIndEDA(d *Design, seed int64) (*Placement, error) {
	return indeda.Place(d, indeda.Options{Seed: seed, HighEffort: true, WallWeight: 0.4})
}

// Intent maps macro cell names to intended placed outlines; it feeds the
// handcrafted-floorplan oracle.
type Intent = handfp.Intent

// PlaceHandFP realizes a handcrafted floorplan from a designer intent and
// refines it locally.
func PlaceHandFP(d *Design, intent Intent, seed int64) (*Placement, error) {
	return handfp.Place(d, intent, handfp.Options{Seed: seed})
}

// PlaceCells runs the standard-cell global placer over a design whose
// macros are already placed.
func PlaceCells(pl *Placement) error { return place.Run(pl, place.DefaultOptions()) }

// Wirelength returns the total half-perimeter wirelength in meters.
func Wirelength(pl *Placement) float64 { return metrics.WirelengthMeters(pl) }

// Congestion returns GRC%: the percentage of routing gcells whose estimated
// demand exceeds capacity.
func Congestion(pl *Placement) float64 {
	return route.Estimate(pl, route.DefaultOptions()).OverflowPct
}

// Timing returns (WNS as % of the clock period, TNS in ns) under the
// synthetic timing model, with the wire delay calibrated to the die (a
// stage crossing ~70% of the die half-perimeter consumes the wire budget,
// matching the benchmark harness calibration).
func Timing(d *Design, pl *Placement) (wnsPct, tnsNs float64) {
	sg := seqgraph.Build(d, seqgraph.DefaultParams())
	opt := sta.DefaultOptions()
	span := float64(d.Die.W + d.Die.H)
	opt.WirePsPerDBU = (opt.ClockPs - opt.IntrinsicPs) / (0.7 * span / 2)
	res := sta.Analyze(sg, pl, opt)
	return res.WNSPct, res.TNSns
}

// WriteFloorplanSVG renders macros and ports of a placement.
func WriteFloorplanSVG(w io.Writer, pl *Placement) { render.Floorplan(w, pl, 800) }

// WriteTraceSVG renders one recursion level of the multi-level floorplan
// (the evolution of the paper's Fig. 1).
func WriteTraceSVG(w io.Writer, die Rect, level LevelTrace) {
	render.BlockTrace(w, die, level, 800)
}

// DensityASCII renders the standard-cell density map as text (Fig. 9).
func DensityASCII(pl *Placement, bins int) string {
	return render.DensityASCII(metrics.Density(pl, bins))
}

// WriteJSON serializes a design to the JSON interchange format.
func WriteJSON(w io.Writer, d *Design) error { return netlist.WriteJSON(w, d) }

// ReadJSON parses the JSON interchange format into a validated design.
func ReadJSON(r io.Reader) (*Design, error) { return netlist.ReadJSON(r) }

// WriteDEF emits the macro placement as a DEF COMPONENTS/PINS subset for
// hand-off to downstream place-and-route tools.
func WriteDEF(w io.Writer, pl *Placement) error { return deffmt.Write(w, pl) }

// ApplyDEF reads fixed component placements from a DEF stream and applies
// them onto a placement (matching macros by name).
func ApplyDEF(pl *Placement, r io.Reader) error {
	comps, err := deffmt.ReadComponents(r)
	if err != nil {
		return err
	}
	return deffmt.Apply(pl, comps)
}

// WriteLEF emits the macro cells of a library as LEF (Library Exchange
// Format) MACRO blocks.
func WriteLEF(w io.Writer, lib *Library) error { return leffmt.Write(w, lib) }

// ReadLEF parses LEF macros into lib (or a new library when lib is nil),
// ready for Verilog elaboration.
func ReadLEF(r io.Reader, lib *Library) (*Library, error) { return leffmt.Read(r, lib) }
