// Package hidap is the public API of the HiDaP reproduction: RTL-aware,
// dataflow-driven macro placement after Vidal-Obiols et al. (DATE 2019).
//
// # One-shot placement
//
// Every flow sits behind the Placer interface and a name registry, with one
// evaluation pipeline for the results:
//
//	b := hidap.NewDesign("soc")
//	... build the hierarchical netlist (or hidap.ParseVerilog) ...
//	d := b.MustBuild()
//	p, _ := hidap.Lookup("hidap") // or "indeda", "handfp", a plug-in
//	cfg := hidap.NewConfig(hidap.WithLambda(0.5), hidap.WithSeed(7))
//	pl, stats, err := p.Place(ctx, d, cfg)
//	hidap.PlaceStdCells(ctx, pl)        // standard cells
//	rep, err := hidap.Evaluate(ctx, d, pl)
//	stats.Annotate(rep)                 // one JSON-ready Report
//
// Placers honor context cancellation and deadlines, report progress through
// hidap.WithProgress, and are deterministic for a fixed seed. Third-party
// flows join the registry with hidap.Register without touching this
// package.
//
// # Engine: the long-lived run model
//
// Placement is a batch workload — many jobs over few designs — so the
// package's run model is the Engine: a long-lived object owning a bounded
// worker pool, a content-hash design cache (parsed netlists plus their
// sequential graphs) and pooled annealing scratch. Back-to-back jobs on the
// same design run allocation-warm; concurrent jobs share the caches
// race-free:
//
//	eng := hidap.NewEngine(cfg, hidap.EngineOptions{Workers: 8})
//	defer eng.Close()
//	t, _ := eng.Submit(ctx, hidap.Job{Design: d, Placer: "hidap", Evaluate: true})
//	res, err := t.Wait(ctx)             // res.Report is the JSON-ready record
//
// Engine.SubmitBatch fans a whole evaluation suite (circuits × flows ×
// seeds) through the pool and aggregates it with the Tables II/III
// pipeline; Engine.Results streams completions for serving layers (see
// cmd/hidap-serve for the HTTP surface). Placer.Place is itself a thin
// wrapper over a single job on a shared package-level engine, so the
// one-shot API above inherits the same caches.
//
// # Interchange and deprecated surface
//
// The package also re-exports the stable subset of the internal machinery:
// netlist construction, the Verilog front end, metric models, interchange
// formats and SVG rendering. The free functions Place, PlaceIndEDA,
// PlaceHandFP, PlaceCells, Wirelength, Congestion and Timing are the
// deprecated pre-registry surface, kept as thin wrappers.
package hidap

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/deffmt"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/handfp"
	"repro/internal/indeda"
	"repro/internal/layout"
	"repro/internal/leffmt"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/placement"
	"repro/internal/render"
	"repro/internal/route"
	"repro/internal/seqgraph"
	"repro/internal/sta"
	"repro/internal/verilog"
)

// Geometry aliases.
type (
	// Point is a die location in DBU (1 DBU = 1 nm).
	Point = geom.Point
	// Rect is an axis-aligned rectangle in DBU.
	Rect = geom.Rect
	// Orient is a placement orientation (R0, MX, MY, ...).
	Orient = geom.Orient
)

// Pt builds a Point.
func Pt(x, y int64) Point { return geom.Pt(x, y) }

// RectXYWH builds a Rect from origin and extents.
func RectXYWH(x, y, w, h int64) Rect { return geom.RectXYWH(x, y, w, h) }

// Netlist aliases.
type (
	// Design is a frozen hierarchical netlist.
	Design = netlist.Design
	// Builder constructs designs programmatically.
	Builder = netlist.Builder
	// CellID identifies a cell in a Design.
	CellID = netlist.CellID
)

// NewDesign returns a Builder for a new hierarchical netlist.
func NewDesign(name string) *Builder { return netlist.NewBuilder(name) }

// Verilog front end aliases.
type (
	// Library is the primitive cell library for Verilog elaboration.
	Library = verilog.Library
)

// DefaultLibrary returns the synthetic standard-cell library (DFF, gates).
// Register design-specific macros with Library.AddMacro.
func DefaultLibrary() *Library { return verilog.DefaultLibrary() }

// ParseVerilog parses a structural Verilog source and elaborates the named
// top module into a Design.
func ParseVerilog(src, top string, lib *Library) (*Design, error) {
	f, err := verilog.Parse(src)
	if err != nil {
		return nil, err
	}
	return verilog.Elaborate(f, top, lib)
}

// WriteVerilog emits a flat design as structural Verilog.
func WriteVerilog(w io.Writer, d *Design, lib *Library) error {
	return verilog.Write(w, d, lib)
}

// Placer aliases.
type (
	// Options configures the HiDaP flow (λ, k, declustering fractions,
	// annealing effort, seed).
	Options = core.Options
	// Result is a finished macro placement with the per-level trace.
	Result = core.Result
	// LevelTrace is one recursion level of the multi-level floorplan.
	LevelTrace = core.LevelTrace
	// Placement is the physical state: positions and orientations.
	Placement = placement.Placement
	// Effort selects the annealing budget.
	Effort = layout.Effort
)

// Annealing efforts.
const (
	EffortLow    = layout.EffortLow
	EffortMedium = layout.EffortMedium
	EffortHigh   = layout.EffortHigh
)

// DefaultOptions mirrors the paper's parameter choices (λ=0.5, k=2,
// open_area=1%, min_area=40%).
//
// Deprecated: use NewConfig with functional options.
func DefaultOptions() Options { return core.DefaultOptions() }

// Place runs the HiDaP flow: hierarchy tree, shape curves, recursive
// dataflow-driven block floorplanning, and macro flipping.
//
// Deprecated: use Lookup("hidap") and Placer.Place, which add cancellation
// and progress reporting.
func Place(d *Design, opt Options) (*Result, error) {
	//hidapvet:allow ctxflow deprecated pre-context compatibility wrapper; new code uses Placer.Place
	return core.Place(context.Background(), d, opt)
}

// PlaceIndEDA runs the industrial-baseline macro placer (hierarchy- and
// dataflow-blind; wall-packing plus netlist annealing).
//
// Deprecated: use Lookup("indeda") and Placer.Place.
func PlaceIndEDA(d *Design, seed int64) (*Placement, error) {
	//hidapvet:allow ctxflow deprecated pre-context compatibility wrapper; new code uses Placer.Place
	return indeda.Place(context.Background(), d, indeda.Options{Seed: seed, HighEffort: true, WallWeight: 0.4})
}

// Intent maps macro cell names to intended placed outlines; it feeds the
// handcrafted-floorplan oracle.
type Intent = handfp.Intent

// PlaceHandFP realizes a handcrafted floorplan from a designer intent and
// refines it locally.
//
// Deprecated: use Lookup("handfp") and Placer.Place with WithIntent.
func PlaceHandFP(d *Design, intent Intent, seed int64) (*Placement, error) {
	//hidapvet:allow ctxflow deprecated pre-context compatibility wrapper; new code uses Placer.Place
	return handfp.Place(context.Background(), d, intent, handfp.Options{Seed: seed})
}

// PlaceCells runs the standard-cell global placer over a design whose
// macros are already placed.
//
// Deprecated: use PlaceStdCells, which honors cancellation.
func PlaceCells(pl *Placement) error {
	//hidapvet:allow ctxflow deprecated pre-context compatibility wrapper; new code uses PlaceStdCells
	return place.Run(context.Background(), pl, place.DefaultOptions())
}

// Wirelength returns the total half-perimeter wirelength in meters.
//
// Deprecated: use Evaluate, which returns every metric in one Report.
func Wirelength(pl *Placement) float64 { return metrics.WirelengthMeters(pl) }

// Congestion returns GRC%: the percentage of routing gcells whose estimated
// demand exceeds capacity.
//
// Deprecated: use Evaluate, which returns every metric in one Report.
func Congestion(pl *Placement) float64 {
	return route.Estimate(pl, route.DefaultOptions()).OverflowPct
}

// Timing returns (WNS as % of the clock period, TNS in ns) under the
// synthetic timing model, with the wire delay calibrated to the die by
// CalibrateSTA.
//
// Deprecated: use Evaluate, which returns every metric in one Report.
func Timing(d *Design, pl *Placement) (wnsPct, tnsNs float64) {
	sg := seqgraph.Build(d, seqgraph.DefaultParams())
	res := sta.Analyze(sg, pl, eval.CalibrateSTA(d, sta.Options{}))
	return res.WNSPct, res.TNSns
}

// WriteFloorplanSVG renders macros and ports of a placement.
func WriteFloorplanSVG(w io.Writer, pl *Placement) { render.Floorplan(w, pl, 800) }

// WriteTraceSVG renders one recursion level of the multi-level floorplan
// (the evolution of the paper's Fig. 1).
func WriteTraceSVG(w io.Writer, die Rect, level LevelTrace) {
	render.BlockTrace(w, die, level, 800)
}

// DensityASCII renders the standard-cell density map as text (Fig. 9).
func DensityASCII(pl *Placement, bins int) string {
	return render.DensityASCII(metrics.Density(pl, bins))
}

// WriteJSON serializes a design to the JSON interchange format.
func WriteJSON(w io.Writer, d *Design) error { return netlist.WriteJSON(w, d) }

// ReadJSON parses the JSON interchange format into a validated design.
func ReadJSON(r io.Reader) (*Design, error) { return netlist.ReadJSON(r) }

// WriteDEF emits the macro placement as a DEF COMPONENTS/PINS subset for
// hand-off to downstream place-and-route tools.
func WriteDEF(w io.Writer, pl *Placement) error { return deffmt.Write(w, pl) }

// ApplyDEF reads fixed component placements from a DEF stream and applies
// them onto a placement (matching macros by name).
func ApplyDEF(pl *Placement, r io.Reader) error {
	comps, err := deffmt.ReadComponents(r)
	if err != nil {
		return err
	}
	return deffmt.Apply(pl, comps)
}

// WriteLEF emits the macro cells of a library as LEF (Library Exchange
// Format) MACRO blocks.
func WriteLEF(w io.Writer, lib *Library) error { return leffmt.Write(w, lib) }

// ReadLEF parses LEF macros into lib (or a new library when lib is nil),
// ready for Verilog elaboration.
func ReadLEF(r io.Reader, lib *Library) (*Library, error) { return leffmt.Read(r, lib) }
