package hidap_test

import (
	"strings"
	"testing"

	"repro/circuits"
	"repro/hidap"
)

const tinyVerilog = `
module top (din, dout);
  input [3:0] din;
  output [3:0] dout;
  wire [3:0] s;
  DFF r0 (.D(din[0]), .Q(s[0]));
  DFF r1 (.D(din[1]), .Q(s[1]));
  DFF r2 (.D(din[2]), .Q(s[2]));
  DFF r3 (.D(din[3]), .Q(s[3]));
  RAM4 u_mem (.D(s), .Q(dout));
endmodule
`

func TestParseVerilogAndPlace(t *testing.T) {
	lib := hidap.DefaultLibrary()
	lib.AddMacro("RAM4", 20_000, 12_000, 4)
	d, err := hidap.ParseVerilog(tinyVerilog, "top", lib)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hidap.Place(d, hidap.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placement.AllMacrosPlaced() {
		t.Fatal("macro unplaced")
	}
	if err := hidap.PlaceCells(res.Placement); err != nil {
		t.Fatal(err)
	}
	if wl := hidap.Wirelength(res.Placement); wl <= 0 {
		t.Errorf("wirelength = %v", wl)
	}
}

func TestFullPublicFlow(t *testing.T) {
	g := circuits.Generate(circuits.Spec{
		Name: "pub", Cells: 200_000, Macros: 6, Subsystems: 2,
		BusWidth: 32, Scale: 400, Seed: 3,
	})
	opt := hidap.DefaultOptions()
	opt.Effort = hidap.EffortLow
	opt.Trace = true
	res, err := hidap.Place(g.Design, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := hidap.PlaceCells(res.Placement); err != nil {
		t.Fatal(err)
	}
	if hidap.Congestion(res.Placement) < 0 {
		t.Error("congestion negative")
	}
	wns, tns := hidap.Timing(g.Design, res.Placement)
	if wns > 0 || tns > 0 {
		t.Errorf("timing sign convention broken: wns=%v tns=%v", wns, tns)
	}

	var sb strings.Builder
	hidap.WriteFloorplanSVG(&sb, res.Placement)
	if !strings.Contains(sb.String(), "</svg>") {
		t.Error("floorplan SVG incomplete")
	}
	if len(res.Trace) > 0 {
		sb.Reset()
		hidap.WriteTraceSVG(&sb, g.Design.Die, res.Trace[0])
		if !strings.Contains(sb.String(), "</svg>") {
			t.Error("trace SVG incomplete")
		}
	}
	if txt := hidap.DensityASCII(res.Placement, 12); len(txt) == 0 {
		t.Error("density ASCII empty")
	}
}

func TestBaselinesPublicAPI(t *testing.T) {
	g := circuits.ABCDX()
	ind, err := hidap.PlaceIndEDA(g.Design, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ind.AllMacrosPlaced() {
		t.Error("IndEDA left macros unplaced")
	}
	hfp, err := hidap.PlaceHandFP(g.Design, g.Intent, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !hfp.AllMacrosPlaced() {
		t.Error("handFP left macros unplaced")
	}
}

func TestBuilderPublicAPI(t *testing.T) {
	b := hidap.NewDesign("mini")
	b.SetDie(hidap.RectXYWH(0, 0, 50_000, 50_000))
	m := b.AddMacro("grp/mem", 9_000, 6_000, "grp")
	r := b.AddFlop("grp/d[0]", "grp")
	b.Wire("n0", r, m)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := hidap.Place(d, hidap.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Die.ContainsRect(res.Placement.Rect(m)) {
		t.Error("macro escaped die")
	}
}

func TestWriteVerilogRoundTrip(t *testing.T) {
	lib := hidap.DefaultLibrary()
	lib.AddMacro("RAM4", 20_000, 12_000, 4)
	d, err := hidap.ParseVerilog(tinyVerilog, "top", lib)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := hidap.WriteVerilog(&sb, d, lib); err != nil {
		t.Fatal(err)
	}
	d2, err := hidap.ParseVerilog(sb.String(), "top", lib)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, sb.String())
	}
	if d2.Stats().MacroCells != 1 {
		t.Error("macro lost in round trip")
	}
}

func TestLEFLibraryFlow(t *testing.T) {
	lib := hidap.DefaultLibrary()
	lib.AddMacro("RAM4", 20_000, 12_000, 4)
	var sb strings.Builder
	if err := hidap.WriteLEF(&sb, lib); err != nil {
		t.Fatal(err)
	}
	lib2, err := hidap.ReadLEF(strings.NewReader(sb.String()), hidap.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	d, err := hidap.ParseVerilog(tinyVerilog, "top", lib2)
	if err != nil {
		t.Fatalf("elaborate with LEF-read library: %v", err)
	}
	if len(d.Macros()) != 1 {
		t.Error("macro lost through LEF round trip")
	}
}
