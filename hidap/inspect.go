package hidap

import (
	"context"
	"sort"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/hier"
	"repro/internal/seqgraph"
)

// FlowEdge describes one dataflow-graph edge for inspection and
// visualization (the arrows of the paper's Figs. 2 and 9d).
type FlowEdge struct {
	From, To string
	// Bits is the total bus width over all latencies.
	Bits int64
	// MinLatency is the shortest path latency in sequential hops.
	MinLatency int32
	// Score is the affinity contribution score(h, k).
	Score float64
}

// DataflowEdges declusters the top level of a design and returns its block
// flow and macro flow edge lists, scored with decay exponent k.
func DataflowEdges(d *Design, k float64) (blockFlow, macroFlow []FlowEdge) {
	tr := hier.New(d)
	decl := tr.Decluster(d.Root(), hier.DefaultParams())
	sg := seqgraph.Build(d, seqgraph.DefaultParams())
	gdf := dataflow.Build(sg, decl)
	conv := func(m map[dataflow.EdgeKey]*dataflow.Histogram) []FlowEdge {
		// Iterate in sorted key order, then stable-sort by display name:
		// the name sort alone left identically-named nodes in map order.
		keys := make([]dataflow.EdgeKey, 0, len(m))
		for key := range m {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].From != keys[j].From {
				return keys[i].From < keys[j].From
			}
			return keys[i].To < keys[j].To
		})
		out := make([]FlowEdge, 0, len(keys))
		for _, key := range keys {
			h := m[key]
			e := FlowEdge{
				From:  gdf.Nodes[key.From].Name,
				To:    gdf.Nodes[key.To].Name,
				Bits:  h.TotalBits(),
				Score: h.Score(k),
			}
			if len(h.Bins) > 0 {
				e.MinLatency = h.Bins[0].Latency
			}
			out = append(out, e)
		}
		sort.SliceStable(out, func(i, j int) bool {
			if out[i].From != out[j].From {
				return out[i].From < out[j].From
			}
			return out[i].To < out[j].To
		})
		return out
	}
	return conv(gdf.BlockFlow), conv(gdf.MacroFlow)
}

// ShapePoint is one Pareto corner of a shape curve: a minimal bounding box
// that can hold a slicing placement of a block's macros (paper Fig. 4).
type ShapePoint struct {
	W, H int64
}

// ShapeCurveFor computes the shape curve of the macros under a hierarchy
// path ("" for the whole design). It returns nil when the subtree holds no
// macros.
func ShapeCurveFor(d *Design, path string) []ShapePoint {
	nh := d.NodeByPath(path)
	if nh == -1 {
		return nil
	}
	tr := hier.New(d)
	//hidapvet:allow ctxflow synchronous inspection helper with no cancellation surface; curve generation for one node is fast
	sc := core.GenerateShapeCurves(context.Background(), tr, 1)
	curve, ok := sc.ByNode[nh]
	if !ok {
		return nil
	}
	var out []ShapePoint
	for _, p := range curve.Points() {
		out = append(out, ShapePoint{W: p.W, H: p.H})
	}
	return out
}

// TopBlocks returns the names and macro counts of the blocks the first
// declustering level produces — the partition of the paper's Fig. 1a.
func TopBlocks(d *Design) (names []string, macroCounts []int) {
	tr := hier.New(d)
	decl := tr.Decluster(d.Root(), hier.DefaultParams())
	for i := range decl.Blocks {
		names = append(names, decl.Blocks[i].Name)
		macroCounts = append(macroCounts, decl.Blocks[i].MacroCount())
	}
	return names, macroCounts
}
