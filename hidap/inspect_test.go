package hidap_test

import (
	"reflect"
	"testing"

	"repro/circuits"
	"repro/hidap"
)

func TestDataflowEdgesABCDX(t *testing.T) {
	g := circuits.ABCDX()
	blockFlow, macroFlow := hidap.DataflowEdges(g.Design, 2)

	// Fig. 2a: four bidirectional block-flow pairs with X.
	bf := map[[2]string]bool{}
	for _, e := range blockFlow {
		bf[[2]string{e.From, e.To}] = true
		if e.Bits <= 0 || e.MinLatency < 1 || e.Score <= 0 {
			t.Errorf("degenerate edge %+v", e)
		}
	}
	for _, blk := range []string{"A", "B", "C", "D"} {
		if !bf[[2]string{blk, "x"}] || !bf[[2]string{"x", blk}] {
			t.Errorf("block flow %s <-> x missing", blk)
		}
	}
	// Fig. 2b: the macro chain.
	mf := map[[2]string]bool{}
	for _, e := range macroFlow {
		mf[[2]string{e.From, e.To}] = true
	}
	for _, pair := range [][2]string{{"A", "B"}, {"B", "C"}, {"C", "D"}} {
		if !mf[pair] {
			t.Errorf("macro flow %s -> %s missing", pair[0], pair[1])
		}
	}
	// Deterministic ordering (sorted by From, To).
	for i := 1; i < len(blockFlow); i++ {
		a, b := blockFlow[i-1], blockFlow[i]
		if a.From > b.From || (a.From == b.From && a.To > b.To) {
			t.Fatal("block flow edges not sorted")
		}
	}
}

func TestShapeCurveForPaths(t *testing.T) {
	g := circuits.Fig1Design()
	pts := hidap.ShapeCurveFor(g.Design, "left/grp0")
	if len(pts) == 0 {
		t.Fatal("no curve for a macro group")
	}
	// Corners must be Pareto: increasing W, decreasing H.
	for i := 1; i < len(pts); i++ {
		if pts[i].W <= pts[i-1].W || pts[i].H >= pts[i-1].H {
			t.Fatalf("corners not Pareto-ordered: %+v", pts)
		}
	}
	// Any corner must hold the four 36000x24000 macros.
	for _, p := range pts {
		if p.W*p.H < 4*36_000*24_000 {
			t.Errorf("corner %+v below macro area", p)
		}
	}
	if hidap.ShapeCurveFor(g.Design, "x") != nil {
		t.Error("macro-free node should have no curve")
	}
	if hidap.ShapeCurveFor(g.Design, "nope") != nil {
		t.Error("unknown path should return nil")
	}
}

func TestTopBlocksFig1(t *testing.T) {
	g := circuits.Fig1Design()
	names, counts := hidap.TopBlocks(g.Design)
	if len(names) != 3 || len(counts) != 3 {
		t.Fatalf("blocks = %v %v", names, counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 16 {
		t.Errorf("macro total = %d, want 16", total)
	}
}

// TestDataflowEdgesRepeatable pins full output determinism of DataflowEdges:
// the edge lists must be deep-equal across repeated calls. Before the edges
// were emitted in sorted-key order, ties under the display-name sort kept
// whatever order the map iteration produced, so repeated calls could disagree.
func TestDataflowEdgesRepeatable(t *testing.T) {
	g := circuits.ABCDX()
	refBlock, refMacro := hidap.DataflowEdges(g.Design, 2)
	for i := 0; i < 20; i++ {
		blockFlow, macroFlow := hidap.DataflowEdges(g.Design, 2)
		if !reflect.DeepEqual(blockFlow, refBlock) || !reflect.DeepEqual(macroFlow, refMacro) {
			t.Fatalf("iteration %d: edge lists differ from first call", i)
		}
	}
}
