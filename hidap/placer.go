package hidap

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/handfp"
	"repro/internal/indeda"
	"repro/internal/seqgraph"
)

// SeqStats is the sequential-graph size summary (Table I).
type SeqStats = seqgraph.Stats

// Stats is the bookkeeping of one Placer run.
type Stats struct {
	// Placer names the flow that produced the placement.
	Placer string
	// MacroSeconds is the macro-placement wall time.
	MacroSeconds float64
	// Levels counts floorplanned recursion levels (hidap flow).
	Levels int
	// Flips counts orientation changes of the flipping post-process.
	Flips int
	// Lambda is the dataflow blend of the run (hidap flow).
	Lambda float64
	// SeqStats reports the Gseq size (hidap flow).
	SeqStats SeqStats
	// Trace lists the per-level block floorplans when Config.Trace is set.
	Trace []LevelTrace
}

// Annotate copies the run bookkeeping onto a measurement report, fusing
// "what the placer did" with "how good the placement is" into the single
// record a server or the bench harness emits.
func (s Stats) Annotate(r *Report) {
	r.Placer = s.Placer
	r.MacroSeconds = s.MacroSeconds
	r.Levels = s.Levels
	r.Flips = s.Flips
	r.Lambda = s.Lambda
	if s.SeqStats.Nodes > 0 {
		r.SeqNodes = s.SeqStats.Nodes
		r.SeqEdges = s.SeqStats.Edges
	}
}

// Placer is a macro-placement flow behind the uniform entry point. The
// package registers its three flows ("hidap", "indeda", "handfp"); third
// parties add their own with Register and select them by name via Lookup.
type Placer interface {
	// Name is the registry key of the flow.
	Name() string
	// Place produces a macro placement for the design. Ports are fixed by
	// the design; standard cells are left to PlaceStdCells. A nil cfg
	// means NewConfig() defaults. A cancelled or expired ctx aborts the
	// run promptly and returns ctx.Err().
	Place(ctx context.Context, d *Design, cfg *Config) (*Placement, Stats, error)
}

// PlacerFunc adapts a placement function to the Placer interface. The
// returned placer's Place method is a thin wrapper over a single-job run on
// the package's shared Engine, so one-shot callers inherit its design cache
// and warm annealing scratch; fn itself is invoked by the engine. The
// shared cache retains at most the 16 most recently placed designs (with
// their sequential graphs) for warm reuse; callers that manage placement
// memory explicitly should run their own Engine and use FlushCaches.
func PlacerFunc(name string, fn func(ctx context.Context, d *Design, cfg *Config) (*Placement, Stats, error)) Placer {
	return placerFunc{name: name, fn: fn}
}

type placerFunc struct {
	name string
	fn   func(ctx context.Context, d *Design, cfg *Config) (*Placement, Stats, error)
}

func (p placerFunc) Name() string { return p.name }

func (p placerFunc) Place(ctx context.Context, d *Design, cfg *Config) (*Placement, Stats, error) {
	if cfg == nil {
		cfg = NewConfig()
	}
	// Key by pointer identity: repeated Place calls on one design hit the
	// warm path without the content hash's full-netlist serialization.
	// Safe because the cache entry retains d, so the address cannot be
	// reused while the key is live; a different pointer to equal content
	// simply misses (exactly the pre-engine behavior). Designs are frozen
	// after Build; the structural counts in the key additionally miss the
	// cache if a caller grows one anyway, rather than serving a placement
	// against a stale cached Gseq.
	key := fmt.Sprintf("ptr:%p:%d:%d", d, len(d.Cells), len(d.Nets))
	res, err := sharedEngine().Run(ctx, Job{Design: d, Key: key, Placer: p.name, Config: cfg, placer: p})
	if err != nil {
		return nil, Stats{}, err
	}
	return res.Placement, res.Stats, nil
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Placer{}
)

// Register adds a placer to the registry. Registering an empty or duplicate
// name is an error, so flows cannot silently shadow each other.
func Register(p Placer) error {
	name := p.Name()
	if name == "" {
		return fmt.Errorf("hidap: placer has empty name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("hidap: placer %q already registered", name)
	}
	registry[name] = p
	return nil
}

// MustRegister is Register, panicking on error; for use from init functions.
func MustRegister(p Placer) {
	if err := Register(p); err != nil {
		panic(err)
	}
}

// Lookup returns the placer registered under name.
func Lookup(name string) (Placer, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	p, ok := registry[name]
	if !ok {
		names := make([]string, 0, len(registry))
		for n := range registry {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("hidap: unknown placer %q (registered: %v)", name, names)
	}
	return p, nil
}

// Placers lists the registered placer names, sorted.
func Placers() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	MustRegister(PlacerFunc("hidap", placeHiDaP))
	MustRegister(PlacerFunc("indeda", placeIndEDA))
	MustRegister(PlacerFunc("handfp", placeHandFP))
}

// placeHiDaP runs the paper's flow: hierarchy tree, shape curves, recursive
// dataflow-driven block floorplanning, and macro flipping.
func placeHiDaP(ctx context.Context, d *Design, cfg *Config) (*Placement, Stats, error) {
	start := time.Now()
	res, err := core.Place(ctx, d, cfg.coreOptions())
	if err != nil {
		return nil, Stats{}, err
	}
	return res.Placement, Stats{
		Placer:       "hidap",
		MacroSeconds: time.Since(start).Seconds(),
		Levels:       res.Levels,
		Flips:        res.Flips,
		Lambda:       cfg.Lambda,
		SeqStats:     res.SeqStats,
		Trace:        res.Trace,
	}, nil
}

// placeIndEDA runs the industrial-baseline macro placer (hierarchy- and
// dataflow-blind; wall-packing plus netlist annealing).
func placeIndEDA(ctx context.Context, d *Design, cfg *Config) (*Placement, Stats, error) {
	start := time.Now()
	pl, err := indeda.Place(ctx, d, indeda.Options{
		Seed:       cfg.Seed,
		HighEffort: cfg.Effort != EffortLow,
		WallWeight: 0.4,
	})
	if err != nil {
		return nil, Stats{}, err
	}
	return pl, Stats{Placer: "indeda", MacroSeconds: time.Since(start).Seconds()}, nil
}

// placeHandFP realizes a handcrafted floorplan from the designer intent
// supplied via WithIntent and refines it locally.
func placeHandFP(ctx context.Context, d *Design, cfg *Config) (*Placement, Stats, error) {
	if cfg.Intent == nil {
		return nil, Stats{}, fmt.Errorf("hidap: placer \"handfp\" needs a designer intent (use WithIntent)")
	}
	start := time.Now()
	pl, err := handfp.Place(ctx, d, cfg.Intent, handfp.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, Stats{}, err
	}
	return pl, Stats{Placer: "handfp", MacroSeconds: time.Since(start).Seconds()}, nil
}
