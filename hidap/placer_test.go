package hidap_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/circuits"
	"repro/hidap"
)

func TestRegistryHasBuiltinFlows(t *testing.T) {
	names := hidap.Placers()
	for _, want := range []string{"handfp", "hidap", "indeda"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("builtin placer %q missing from registry %v", want, names)
		}
	}
	for _, n := range names {
		p, err := hidap.Lookup(n)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Errorf("Lookup(%q).Name() = %q", n, p.Name())
		}
	}
}

func TestLookupUnknownPlacer(t *testing.T) {
	_, err := hidap.Lookup("nope")
	if err == nil {
		t.Fatal("expected error for unknown placer")
	}
	if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error should name the missing placer: %v", err)
	}
}

func TestRegisterDuplicateFails(t *testing.T) {
	stub := hidap.PlacerFunc("dup-test-placer",
		func(ctx context.Context, d *hidap.Design, cfg *hidap.Config) (*hidap.Placement, hidap.Stats, error) {
			return nil, hidap.Stats{}, errors.New("stub")
		})
	if err := hidap.Register(stub); err != nil {
		t.Fatalf("first Register: %v", err)
	}
	if err := hidap.Register(stub); err == nil {
		t.Fatal("duplicate Register must fail")
	}
	if err := hidap.Register(hidap.PlacerFunc("", nil)); err == nil {
		t.Fatal("empty-name Register must fail")
	}
}

func TestAllFlowsViaRegistry(t *testing.T) {
	g := circuits.ABCDX()
	ctx := context.Background()
	cfg := hidap.NewConfig(
		hidap.WithSeed(1),
		hidap.WithEffort(hidap.EffortLow),
		hidap.WithIntent(g.Intent),
	)
	builtin := map[string]bool{"handfp": true, "hidap": true, "indeda": true}
	for _, name := range hidap.Placers() {
		if !builtin[name] {
			continue // stubs registered by other tests
		}
		p, err := hidap.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		pl, stats, err := p.Place(ctx, g.Design, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !pl.AllMacrosPlaced() {
			t.Errorf("%s left macros unplaced", name)
		}
		if stats.Placer != name {
			t.Errorf("stats.Placer = %q, want %q", stats.Placer, name)
		}
		if stats.MacroSeconds < 0 {
			t.Errorf("%s: negative runtime", name)
		}
	}
}

func TestHandFPRequiresIntent(t *testing.T) {
	g := circuits.ABCDX()
	p, err := hidap.Lookup("handfp")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Place(context.Background(), g.Design, hidap.NewConfig()); err == nil {
		t.Fatal("handfp without intent must fail")
	}
}

func TestConfigOptions(t *testing.T) {
	cfg := hidap.NewConfig()
	if cfg.Lambda != 0.5 || cfg.K != 2 || cfg.Effort != hidap.EffortMedium {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	var got hidap.Progress
	fn := func(ev hidap.Progress) { got = ev }
	cfg = hidap.NewConfig(
		hidap.WithLambda(0.2),
		hidap.WithK(3),
		hidap.WithEffort(hidap.EffortHigh),
		hidap.WithSeed(9),
		hidap.WithTrace(),
		hidap.WithFlat(),
		hidap.WithProgress(fn),
	)
	if cfg.Lambda != 0.2 || cfg.K != 3 || cfg.Effort != hidap.EffortHigh ||
		cfg.Seed != 9 || !cfg.Trace || !cfg.Flat || cfg.Progress == nil {
		t.Errorf("options not applied: %+v", cfg)
	}
	cfg.Progress(hidap.Progress{Stage: hidap.StageLevel, Level: 3})
	if got.Stage != hidap.StageLevel || got.Level != 3 {
		t.Errorf("progress callback not wired: %+v", got)
	}
}

func TestProgressEventsStream(t *testing.T) {
	g := circuits.ABCDX()
	p, _ := hidap.Lookup("hidap")
	var levels, flips int
	cfg := hidap.NewConfig(
		hidap.WithSeed(1),
		hidap.WithEffort(hidap.EffortLow),
		hidap.WithProgress(func(ev hidap.Progress) {
			switch ev.Stage {
			case hidap.StageLevel:
				levels++
			case hidap.StageFlips:
				flips++
			}
		}),
	)
	_, stats, err := p.Place(context.Background(), g.Design, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if levels == 0 {
		t.Error("no level progress events")
	}
	if flips != 1 {
		t.Errorf("flip events = %d, want 1", flips)
	}
	if levels > stats.Levels {
		t.Errorf("more level events (%d) than levels (%d)", levels, stats.Levels)
	}
}

// TestCancellationMidAnneal cancels from inside the first progress event —
// provably mid-run — and requires the placer to return ctx.Err() promptly
// instead of spinning through the high-effort annealing budget.
func TestCancellationMidAnneal(t *testing.T) {
	spec, err := circuits.SuiteSpec("c3")
	if err != nil {
		t.Fatal(err)
	}
	spec.Scale = 200
	g := circuits.Generate(spec)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, _ := hidap.Lookup("hidap")
	cfg := hidap.NewConfig(
		hidap.WithSeed(1),
		hidap.WithEffort(hidap.EffortHigh),
		hidap.WithProgress(func(ev hidap.Progress) {
			if ev.Stage == hidap.StageLevel {
				cancel()
			}
		}),
	)
	start := time.Now()
	_, _, err = p.Place(ctx, g.Design, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Generous bound: a full high-effort run on this circuit takes far
	// longer than a single post-cancel check window.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancellation took %v, not prompt", elapsed)
	}
}

func TestCancelledBeforeStart(t *testing.T) {
	g := circuits.ABCDX()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"hidap", "indeda"} {
		p, _ := hidap.Lookup(name)
		cfg := hidap.NewConfig(hidap.WithSeed(1), hidap.WithIntent(g.Intent))
		if _, _, err := p.Place(ctx, g.Design, cfg); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

func TestEvaluateReportJSONRoundTrip(t *testing.T) {
	g := circuits.ABCDX()
	ctx := context.Background()
	p, _ := hidap.Lookup("hidap")
	pl, stats, err := p.Place(ctx, g.Design, hidap.NewConfig(hidap.WithSeed(1), hidap.WithEffort(hidap.EffortLow)))
	if err != nil {
		t.Fatal(err)
	}
	if err := hidap.PlaceStdCells(ctx, pl); err != nil {
		t.Fatal(err)
	}
	rep, err := hidap.Evaluate(ctx, g.Design, pl)
	if err != nil {
		t.Fatal(err)
	}
	stats.Annotate(rep)

	if rep.WirelengthM <= 0 {
		t.Errorf("wirelength = %v", rep.WirelengthM)
	}
	if rep.WNSPct > 0 || rep.TNSns > 0 {
		t.Errorf("timing sign convention broken: %+v", rep)
	}
	if rep.Placer != "hidap" || rep.SeqNodes == 0 {
		t.Errorf("bookkeeping missing: %+v", rep)
	}

	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"wirelength_m", "congestion_pct", "wns_pct", "tns_ns", "placer"} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("JSON missing %q: %s", key, raw)
		}
	}
	var back hidap.Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != *rep {
		t.Errorf("round trip changed report:\n%+v\n%+v", back, *rep)
	}

	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wirelength_m") {
		t.Errorf("WriteJSON output: %s", sb.String())
	}
}

func TestEvaluateHonorsCancellation(t *testing.T) {
	g := circuits.ABCDX()
	p, _ := hidap.Lookup("indeda")
	pl, _, err := p.Place(context.Background(), g.Design, hidap.NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := hidap.Evaluate(ctx, g.Design, pl); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestDeprecatedWrappersStillWork(t *testing.T) {
	g := circuits.ABCDX()
	res, err := hidap.Place(g.Design, hidap.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := hidap.PlaceCells(res.Placement); err != nil {
		t.Fatal(err)
	}
	wl := hidap.Wirelength(res.Placement)
	wns, tns := hidap.Timing(g.Design, res.Placement)
	rep, err := hidap.Evaluate(context.Background(), g.Design, res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if wl != rep.WirelengthM {
		t.Errorf("Wirelength %v != Report %v", wl, rep.WirelengthM)
	}
	if wns != rep.WNSPct || tns != rep.TNSns {
		t.Errorf("Timing (%v, %v) != Report (%v, %v)", wns, tns, rep.WNSPct, rep.TNSns)
	}
}
