package hidap

import (
	"context"

	"repro/internal/eval"
	"repro/internal/place"
	"repro/internal/sta"
)

// Report is the uniform measurement record of a placed design: wirelength,
// congestion, timing, sequential-graph size and run bookkeeping, with flat
// JSON marshalling. It subsumes the former Wirelength / Congestion / Timing
// trio; use Stats.Annotate to add the placer's runtime and flip count.
type Report = eval.Report

// STAOptions configures the synthetic timing model used by Evaluate; the
// zero value is calibrated to the die by CalibrateSTA.
type STAOptions = sta.Options

// Evaluate measures a fully placed design (macros and standard cells) under
// the shared metric models and returns one Report. The placement is not
// modified. Timing wire delay is calibrated to the die (see CalibrateSTA).
func Evaluate(ctx context.Context, d *Design, pl *Placement) (*Report, error) {
	return eval.Evaluate(ctx, d, pl, eval.Options{})
}

// CalibrateSTA fits the wire-delay coefficient of the timing model to a
// design's die: a stage crossing ~70% of the die half-perimeter consumes
// the full wire budget. Fields set explicitly in base pass through.
func CalibrateSTA(d *Design, base STAOptions) STAOptions {
	return eval.CalibrateSTA(d, base)
}

// PlaceStdCells runs the standard-cell global placer over a design whose
// macros are already placed. A cancelled ctx aborts between placement
// rounds and returns ctx.Err().
func PlaceStdCells(ctx context.Context, pl *Placement) error {
	return place.Run(ctx, pl, place.DefaultOptions())
}
