package repro

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/circuits"
	"repro/hidap"
	"repro/internal/flows"
	"repro/internal/layout"
	"repro/internal/netlist"
)

// TestEndToEndSuiteCircuit runs all three flows on a small suite circuit
// and checks the cross-flow invariants the tables rely on.
func TestEndToEndSuiteCircuit(t *testing.T) {
	spec, err := circuits.SuiteSpec("c1")
	if err != nil {
		t.Fatal(err)
	}
	spec.Scale = 1000
	g := circuits.Generate(spec)

	opt := flows.DefaultOptions()
	opt.Effort = layout.EffortLow
	opt.Lambdas = []float64{0.5}

	var rows []*flows.Metrics
	for _, f := range []flows.Flow{flows.FlowIndEDA, flows.FlowHiDaP, flows.FlowHandFP} {
		m, pl, err := flows.Run(context.Background(), g, f, opt)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if ov := pl.MacroOverlapArea(); ov != 0 {
			t.Errorf("%s: overlapping macros (%d)", f, ov)
		}
		if err := pl.MacrosInsideDie(); err != nil {
			t.Errorf("%s: %v", f, err)
		}
		// Every movable cell must be placed for the metrics to mean anything.
		for i := range g.Design.Cells {
			if g.Design.Cells[i].Kind != netlist.KindPort && !pl.Placed[i] {
				t.Fatalf("%s: cell %s unplaced", f, g.Design.Cells[i].Name)
			}
		}
		rows = append(rows, m)
	}
	flows.Normalize(rows)
	sums := flows.Summarize(rows)
	if len(sums) != 3 {
		t.Fatalf("summaries: %d", len(sums))
	}
}

// TestVerilogExportImport writes a generated circuit as flat Verilog and
// elaborates it back, checking the structural counts survive.
func TestVerilogExportImport(t *testing.T) {
	g := circuits.Generate(circuits.Spec{
		Name: "vx", Cells: 100_000, Macros: 4, Subsystems: 2,
		BusWidth: 16, Scale: 1000, Seed: 7,
	})
	d := g.Design

	// Build a library covering the design's macro outlines.
	lib := hidap.DefaultLibrary()
	type outline struct{ w, h int64 }
	seen := map[outline]bool{}
	for _, m := range d.Macros() {
		c := d.Cell(m)
		o := outline{c.Width, c.Height}
		if seen[o] {
			continue
		}
		seen[o] = true
		ins := 0
		for _, pid := range c.Pins {
			if d.Pin(pid).Dir == netlist.DirIn {
				ins++
			}
		}
		lib.AddMacro(fmt.Sprintf("MACRO_%dX%d", c.Width, c.Height), c.Width, c.Height, ins)
	}

	var sb strings.Builder
	if err := hidap.WriteVerilog(&sb, d, lib); err != nil {
		t.Fatal(err)
	}
	d2, err := hidap.ParseVerilog(sb.String(), "vx", lib)
	if err != nil {
		t.Fatalf("re-elaborate: %v", err)
	}
	s1, s2 := d.Stats(), d2.Stats()
	if s1.MacroCells != s2.MacroCells || s1.Flops != s2.Flops || s1.Comb != s2.Comb {
		t.Errorf("structure changed: %+v vs %+v", s1, s2)
	}
}

// TestPlaceOverfullDie injects an infeasible instance: macros whose total
// area exceeds the die. The flow must not panic and must keep macros
// inside the die (overlaps allowed only if physically unavoidable — here
// they are, so we only check containment and termination).
func TestPlaceOverfullDie(t *testing.T) {
	b := hidap.NewDesign("overfull")
	b.SetDie(hidap.RectXYWH(0, 0, 50_000, 50_000))
	for i := 0; i < 4; i++ {
		path := fmt.Sprintf("u%d", i)
		m := b.AddMacro(path+"/mem", 30_000, 30_000, path) // 4x900M > 2500M die
		r := b.AddFlop(path+"/d[0]", path)
		b.Wire(fmt.Sprintf("n%d", i), r, m)
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := hidap.Place(d, hidap.DefaultOptions())
	if err != nil {
		t.Fatalf("Place should degrade gracefully: %v", err)
	}
	if err := res.Placement.MacrosInsideDie(); err != nil {
		t.Error(err)
	}
}

// TestPlaceMacroLargerThanDie: a single macro that cannot fit is clamped
// to the die origin-side without crashing.
func TestPlaceMacroLargerThanDie(t *testing.T) {
	b := hidap.NewDesign("giant")
	b.SetDie(hidap.RectXYWH(0, 0, 10_000, 10_000))
	b.AddMacro("m", 20_000, 5_000, "u")
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := hidap.Place(d, hidap.DefaultOptions())
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	m := d.Macros()[0]
	r := res.Placement.Rect(m)
	if r.X != 0 && r.X2() != d.Die.X2() {
		t.Errorf("oversized macro not anchored to die: %v", r)
	}
}

// TestPlaceMacroOnlyDesign: no standard cells at all.
func TestPlaceMacroOnlyDesign(t *testing.T) {
	b := hidap.NewDesign("macroonly")
	b.SetDie(hidap.RectXYWH(0, 0, 100_000, 100_000))
	var prev hidap.CellID = -1
	for i := 0; i < 6; i++ {
		path := fmt.Sprintf("u%d", i)
		m := b.AddMacro(path+"/mem", 20_000, 15_000, path)
		if prev >= 0 {
			b.Wire(fmt.Sprintf("n%d", i), prev, m)
		}
		prev = m
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := hidap.Place(d, hidap.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ov := res.Placement.MacroOverlapArea(); ov != 0 {
		t.Errorf("overlap = %d", ov)
	}
	// Cell placement over a macro-only design is a no-op but must succeed.
	if err := hidap.PlaceCells(res.Placement); err != nil {
		t.Fatal(err)
	}
}

// TestRestartsImproveOrKeep: more restarts never yield a worse WL (the
// best is kept across all attempts).
func TestRestartsImproveOrKeep(t *testing.T) {
	spec, _ := circuits.SuiteSpec("c1")
	spec.Scale = 2000
	g := circuits.Generate(spec)
	base := flows.DefaultOptions()
	base.Effort = layout.EffortLow
	base.Lambdas = []float64{0.5}

	one, _, err := flows.Run(context.Background(), g, flows.FlowHiDaP, base)
	if err != nil {
		t.Fatal(err)
	}
	multi := base
	multi.Restarts = 3
	three, _, err := flows.Run(context.Background(), g, flows.FlowHiDaP, multi)
	if err != nil {
		t.Fatal(err)
	}
	if three.WirelengthM > one.WirelengthM+1e-12 {
		t.Errorf("3 restarts WL %v worse than 1 restart %v", three.WirelengthM, one.WirelengthM)
	}
}

// TestDEFHandoff: place, export DEF, re-import onto a fresh placement.
func TestDEFHandoff(t *testing.T) {
	g := circuits.ABCDX()
	res, err := hidap.Place(g.Design, hidap.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := hidap.WriteDEF(&sb, res.Placement); err != nil {
		t.Fatal(err)
	}
	fresh := res.Placement.Clone()
	for _, m := range g.Design.Macros() {
		fresh.Placed[m] = false
	}
	if err := hidap.ApplyDEF(fresh, strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	for _, m := range g.Design.Macros() {
		if fresh.Pos[m] != res.Placement.Pos[m] || fresh.Orient[m] != res.Placement.Orient[m] {
			t.Fatalf("DEF handoff mismatch on %s", g.Design.Cell(m).Name)
		}
	}
}
