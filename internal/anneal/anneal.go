// Package anneal provides the deterministic simulated-annealing engine
// shared by shape-curve generation and layout generation. The engine is
// state-agnostic: the caller owns the state and exposes it either through
// the delta-aware Model interface (propose → cost → accept/undo, the hot
// path of incremental evaluators) or through the legacy closure triple of
// Run. All randomness comes from a caller-seeded source, so every run is
// reproducible.
package anneal

import (
	"context"
	"math"
	"math/rand"
)

// Options tunes the annealing schedule.
type Options struct {
	// Seed initializes the random source. Equal seeds give equal runs.
	Seed int64
	// InitialTemp is the starting temperature; if 0 it is calibrated from a
	// short random walk so that InitialAcceptance of uphill moves pass.
	InitialTemp float64
	// InitialAcceptance is the target uphill acceptance used by
	// calibration (default 0.85).
	InitialAcceptance float64
	// FinalTemp stops the schedule (default 1e-4 × initial).
	FinalTemp float64
	// Alpha is the geometric cooling factor per round (default 0.92).
	Alpha float64
	// MovesPerRound is the number of proposed moves per temperature step
	// (default 64).
	MovesPerRound int
	// MaxRounds caps the schedule length (default 200).
	MaxRounds int
	// StallRounds stops early after this many rounds without a new best
	// (default 0: disabled).
	StallRounds int
	// Batch, when > 1 and the model implements BatchModel, stages up to this
	// many speculative candidates per step and scores them together against
	// the frozen state (see batch.go). The walk, traces and result are
	// byte-identical at every batch size; 1 (or 0) selects the serial loop.
	Batch int
}

func (o Options) withDefaults() Options {
	if o.InitialAcceptance <= 0 || o.InitialAcceptance >= 1 {
		o.InitialAcceptance = 0.85
	}
	if o.Alpha <= 0 || o.Alpha >= 1 {
		o.Alpha = 0.92
	}
	if o.MovesPerRound <= 0 {
		o.MovesPerRound = 64
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 200
	}
	if o.Batch < 1 {
		o.Batch = 1
	}
	return o
}

// Result reports what the run did.
type Result struct {
	BestCost  float64
	Accepted  int
	Rejected  int
	Rounds    int
	InitTemp  float64
	FinalTemp float64
	// Canceled is set when the run stopped early because ctx was done. The
	// best snapshot taken so far is still valid.
	Canceled bool
}

// Model is the delta-aware annealing interface. The caller owns the state;
// the engine only sequences moves:
//
//   - Cost returns the objective of the current state. It is called at the
//     start of a run (and once more after calibration) and must agree bit
//     for bit with the values Propose maintains incrementally — a full
//     recompute re-synchronizing any cached partial sums is the usual
//     implementation.
//   - Propose applies one random move and returns the resulting cost. A
//     delta-aware model updates only the cost terms the move touched.
//   - Undo reverts the last proposal. The engine guarantees a strict move
//     discipline, in the main loop and in the calibration walk alike: Undo
//     is invoked at most once per proposal, always before the next Propose,
//     or not at all. Incremental evaluators depend on this to keep a
//     single-move undo journal instead of full snapshots.
//   - Snapshot is invoked whenever the current state improves on the best
//     seen so far, so the model can record it. The engine never restores
//     state itself: when the run ends the model's state is whatever the
//     walk last accepted, and the snapshot holds the best.
type Model interface {
	Cost() float64
	Propose(rng *rand.Rand) float64
	Undo()
	Snapshot()
}

// ctxCheckMoves bounds how many moves run between cancellation checks, so a
// cancelled context stops a schedule within a fraction of one round.
const ctxCheckMoves = 16

// RunModel minimizes a Model's objective under the configured schedule.
// Cancelling ctx stops the schedule within a few moves; the caller should
// propagate ctx.Err() after checking Result.Canceled.
//
//hidapvet:hotpath
func RunModel(ctx context.Context, opt Options, m Model) Result {
	opt = opt.withDefaults()
	if opt.Batch > 1 {
		if bm, ok := m.(BatchModel); ok {
			return runBatched(ctx, opt, bm) //hidapvet:allow allocfree one recording source per schedule, constructed before the move loop
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed)) //hidapvet:allow allocfree one RNG per schedule, constructed before the move loop; the loop itself is the hot path

	cur := m.Cost()
	best := cur
	m.Snapshot()

	temp := opt.InitialTemp
	if temp <= 0 {
		temp = calibrate(rng, opt, m)
		cur = m.Cost() // calibration leaves the state perturbed; re-read
		if cur < best {
			best = cur
			m.Snapshot()
		}
	}
	finalTemp := opt.FinalTemp
	if finalTemp <= 0 {
		finalTemp = temp * 1e-4
	}

	res := Result{InitTemp: temp}
	stall := 0
	for round := 0; round < opt.MaxRounds && temp > finalTemp; round++ {
		res.Rounds++
		improvedThisRound := false
		for mv := 0; mv < opt.MovesPerRound; mv++ {
			if mv%ctxCheckMoves == 0 && ctx.Err() != nil {
				res.Canceled = true
				res.BestCost = best
				res.FinalTemp = temp
				return res
			}
			next := m.Propose(rng)
			delta := next - cur
			if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
				cur = next
				res.Accepted++
				if cur < best {
					best = cur
					improvedThisRound = true
					m.Snapshot()
				}
			} else {
				m.Undo()
				res.Rejected++
			}
		}
		if improvedThisRound {
			stall = 0
		} else if stall++; opt.StallRounds > 0 && stall >= opt.StallRounds {
			break
		}
		temp *= opt.Alpha
	}
	res.BestCost = best
	res.FinalTemp = temp
	return res
}

// Run is the legacy closure entry point, kept for callers whose state does
// not warrant a Model implementation:
//
//   - cost returns the objective for the current state;
//   - perturb applies one random move and returns a closure undoing it;
//   - onBest (optional) is invoked whenever the current state improves on
//     the best seen so far, so the caller can snapshot it.
//
// It wraps the triple in a Model and defers to RunModel, drawing from the
// random source exactly as RunModel does, so the two entry points produce
// identical runs for the same schedule and equivalent state. The move
// discipline documented on Model holds here too: each undo closure is
// invoked at most once, always before the next perturb call, or not at all;
// perturb implementations may therefore return the same closure every call.
func Run(ctx context.Context, opt Options, cost func() float64, perturb func(rng *rand.Rand) func(), onBest func()) Result {
	return RunModel(ctx, opt, &closureModel{cost: cost, perturb: perturb, onBest: onBest})
}

// closureModel adapts the legacy closure triple to the Model interface.
type closureModel struct {
	cost    func() float64
	perturb func(rng *rand.Rand) func()
	onBest  func()
	undo    func()
}

func (c *closureModel) Cost() float64 { return c.cost() }

func (c *closureModel) Propose(rng *rand.Rand) float64 {
	c.undo = c.perturb(rng)
	return c.cost()
}

func (c *closureModel) Undo() { c.undo() }

func (c *closureModel) Snapshot() {
	if c.onBest != nil {
		c.onBest()
	}
}

// calibrate estimates an initial temperature from the uphill deltas of a
// short random walk: T0 = mean(Δ⁺) / ln(1/p0).
func calibrate(rng *rand.Rand, opt Options, m Model) float64 {
	const samples = 32
	cur := m.Cost()
	var upSum float64
	upCount := 0
	for i := 0; i < samples; i++ {
		next := m.Propose(rng)
		if d := next - cur; d > 0 {
			upSum += d
			upCount++
			m.Undo()
		} else {
			cur = next // keep downhill moves; they cost nothing
		}
	}
	if upCount == 0 {
		// Flat or monotone landscape; any small positive temperature works.
		return 1e-6
	}
	return (upSum / float64(upCount)) / math.Log(1/opt.InitialAcceptance)
}
