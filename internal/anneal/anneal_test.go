package anneal

import (
	"context"
	"math/rand"
	"testing"
)

// permProblem is a toy quadratic-assignment-style problem: order the numbers
// 0..n-1 so that cost = Σ |perm[i] - i| is minimized (optimum 0, identity).
type permProblem struct {
	perm []int
}

func newPermProblem(n int, seed int64) *permProblem {
	p := &permProblem{perm: make([]int, n)}
	rng := rand.New(rand.NewSource(seed))
	for i := range p.perm {
		p.perm[i] = i
	}
	rng.Shuffle(n, func(i, j int) { p.perm[i], p.perm[j] = p.perm[j], p.perm[i] })
	return p
}

func (p *permProblem) cost() float64 {
	c := 0
	for i, v := range p.perm {
		d := v - i
		if d < 0 {
			d = -d
		}
		c += d
	}
	return float64(c)
}

func (p *permProblem) perturb(rng *rand.Rand) func() {
	i := rng.Intn(len(p.perm))
	j := rng.Intn(len(p.perm))
	p.perm[i], p.perm[j] = p.perm[j], p.perm[i]
	return func() { p.perm[i], p.perm[j] = p.perm[j], p.perm[i] }
}

func TestRunFindsOptimum(t *testing.T) {
	p := newPermProblem(12, 99)
	var bestPerm []int
	res := Run(context.Background(), Options{Seed: 1, MovesPerRound: 200, MaxRounds: 300},
		p.cost,
		p.perturb,
		func() { bestPerm = append(bestPerm[:0], p.perm...) },
	)
	if res.BestCost != 0 {
		t.Errorf("BestCost = %v, want 0 (best perm %v)", res.BestCost, bestPerm)
	}
	for i, v := range bestPerm {
		if v != i {
			t.Fatalf("best perm not identity: %v", bestPerm)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, []int) {
		p := newPermProblem(10, 5)
		var best []int
		res := Run(context.Background(), Options{Seed: 42, MovesPerRound: 50, MaxRounds: 60},
			p.cost, p.perturb,
			func() { best = append(best[:0], p.perm...) })
		return res.BestCost, best
	}
	c1, p1 := run()
	c2, p2 := run()
	if c1 != c2 {
		t.Fatalf("cost nondeterministic: %v vs %v", c1, c2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("best state nondeterministic: %v vs %v", p1, p2)
		}
	}
}

func TestSeedChangesTrajectory(t *testing.T) {
	accepted := func(seed int64) int {
		p := newPermProblem(10, 5)
		res := Run(context.Background(), Options{Seed: seed, MovesPerRound: 30, MaxRounds: 20}, p.cost, p.perturb, nil)
		return res.Accepted
	}
	if accepted(1) == accepted(2) {
		// Not impossible, but with 600 proposals it would be a remarkable
		// coincidence; treat as a bug signal.
		t.Error("different seeds produced identical acceptance counts")
	}
}

func TestBestNeverWorseThanInitial(t *testing.T) {
	p := newPermProblem(15, 3)
	initial := p.cost()
	res := Run(context.Background(), Options{Seed: 7, MovesPerRound: 10, MaxRounds: 10}, p.cost, p.perturb, nil)
	if res.BestCost > initial {
		t.Errorf("BestCost %v worse than initial %v", res.BestCost, initial)
	}
}

func TestCalibration(t *testing.T) {
	p := newPermProblem(12, 11)
	res := Run(context.Background(), Options{Seed: 2, MovesPerRound: 20, MaxRounds: 5}, p.cost, p.perturb, nil)
	if res.InitTemp <= 0 {
		t.Errorf("calibrated InitTemp = %v, want > 0", res.InitTemp)
	}
}

func TestExplicitTemperatureHonored(t *testing.T) {
	p := newPermProblem(12, 11)
	res := Run(context.Background(), Options{Seed: 2, InitialTemp: 123, MovesPerRound: 5, MaxRounds: 3},
		p.cost, p.perturb, nil)
	if res.InitTemp != 123 {
		t.Errorf("InitTemp = %v, want 123", res.InitTemp)
	}
}

func TestStallStopsEarly(t *testing.T) {
	// A flat landscape never improves; StallRounds must cut the run short.
	flatCost := func() float64 { return 1 }
	perturb := func(rng *rand.Rand) func() { return func() {} }
	res := Run(context.Background(), Options{Seed: 1, InitialTemp: 1, MovesPerRound: 2, MaxRounds: 1000, StallRounds: 3},
		flatCost, perturb, nil)
	if res.Rounds > 4 {
		t.Errorf("Rounds = %d, want early stall stop", res.Rounds)
	}
}

func TestZeroTempOnMonotoneLandscape(t *testing.T) {
	// Monotone decreasing cost: calibration sees no uphill moves and must
	// still produce a usable (tiny) temperature.
	x := 1000.0
	cost := func() float64 { return x }
	perturb := func(rng *rand.Rand) func() {
		old := x
		x--
		return func() { x = old }
	}
	res := Run(context.Background(), Options{Seed: 1, MovesPerRound: 5, MaxRounds: 5}, cost, perturb, nil)
	if res.BestCost >= 1000 {
		t.Errorf("BestCost = %v, want < 1000", res.BestCost)
	}
}

func TestOnBestCalledOnImprovement(t *testing.T) {
	p := newPermProblem(8, 17)
	calls := 0
	Run(context.Background(), Options{Seed: 3, MovesPerRound: 50, MaxRounds: 50}, p.cost, p.perturb,
		func() { calls++ })
	if calls < 2 {
		t.Errorf("onBest calls = %d, want >= 2 (initial + improvements)", calls)
	}
}

func TestCancelStopsSchedule(t *testing.T) {
	// Cancel mid-run from the cost callback: the engine must stop within
	// one cancellation-check window instead of finishing the schedule.
	ctx, cancel := context.WithCancel(context.Background())
	p := newPermProblem(12, 9)
	evals := 0
	cost := func() float64 {
		evals++
		if evals == 10 {
			cancel()
		}
		return p.cost()
	}
	res := Run(ctx, Options{Seed: 1, MovesPerRound: 64, MaxRounds: 10_000, InitialTemp: 1}, cost, p.perturb, nil)
	if !res.Canceled {
		t.Fatal("Canceled not set after mid-run cancellation")
	}
	if evals > 10+ctxCheckMoves+1 {
		t.Errorf("engine ran %d cost evals after cancellation, want <= %d", evals-10, ctxCheckMoves+1)
	}
}
