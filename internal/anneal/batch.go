package anneal

import (
	"context"
	"math"
	"math/rand"
)

// Speculative proposal batching. RunModel with Options.Batch > 1 and a model
// implementing BatchModel drives the schedule through runBatched: each step
// stages up to Batch candidate moves drawn from the deterministic rng
// sequence, scores them all against the frozen current state (EvalBatch —
// models may fan the scoring out over a worker pool), then replays the
// serial Metropolis accept chain over the scores in rng order. The accepted
// trajectory, every Snapshot, and the Accepted/Rejected/Rounds accounting
// are byte-identical to the serial loop at any batch size: staged candidates
// invalidated by an acceptance are discarded and re-proposed against the new
// state, exactly as the serial engine would have drawn them.
//
// The rng bookkeeping is the subtle part. The serial loop consumes the
// stream as p₁ [u₁] p₂ [u₂] …, where pₖ are the draws of the k-th proposal
// and the Metropolis uniform uₖ is drawn only when the proposal is uphill
// (the `delta <= 0 ||` short-circuit in the serial loop). Batching therefore
// records the underlying stream (recSource) and reserves one uniform after
// every staged proposal — the uphill-dense steady state of an annealer, in
// which whole batches replay without truncation. Whenever a decision
// consumes the stream differently than the reservation assumed (a downhill
// accept skips its uniform; any accept changes the state later proposals
// were drawn against), the remaining candidates are discarded and the cursor
// seeks back so the recorded values re-serve to fresh proposals. Decisions
// and state are never speculated on — only scoring work is.

// BatchModel extends Model with speculative proposal staging. The engine
// drives it in groups: repeated ProposeSpec calls stage candidates, one
// EvalBatch scores them, then zero or one CommitSpec applies the accepted
// candidate. Staged candidates are discarded by CommitSpec and by the first
// ProposeSpec after an EvalBatch; rejected candidates need no call at all,
// because staging leaves the model's observable state untouched.
type BatchModel interface {
	Model

	// ProposeSpec draws one candidate move from rng — consuming exactly the
	// values a Propose call on the current state would — and stages it for
	// scoring, leaving the model's state unchanged. It returns false when
	// the drawn move cannot be scored speculatively; nothing is staged, and
	// the engine rewinds the rng and replays the move through Propose.
	ProposeSpec(rng *rand.Rand) bool

	// EvalBatch scores every staged candidate against the frozen current
	// state and returns their costs — each bit-identical to what a Propose
	// drawing that candidate would return. The slice is model-owned and
	// valid until the next stage/commit call.
	EvalBatch() []float64

	// CommitSpec applies staged candidate k in full and returns its cost;
	// state and cost are bit-identical to a Propose that drew the move. The
	// engine commits at most one candidate per EvalBatch, in replay order.
	CommitSpec(k int) float64
}

// recSource is a recording wrapper around a rand.Source: every Int63 output
// is retained, and the read cursor can be marked, rewound and re-served, so
// the batched engine can reserve draws and later replay the stream exactly
// as the serial engine's conditional consumption would have.
//
// It deliberately implements only rand.Source, not Source64: rand.Rand then
// routes every method this package uses (Intn, Int63n, Float64) through
// Int63, which keeps the recorded stream in one-to-one correspondence with
// rand.New(rand.NewSource(seed)) — those methods draw identically either
// way. Uint64-consuming methods would not; none are used here or in the
// models' move generation.
type recSource struct {
	src rand.Source
	buf []int64
	pos int
}

func (r *recSource) Int63() int64 {
	if r.pos < len(r.buf) {
		v := r.buf[r.pos]
		r.pos++
		return v
	}
	v := r.src.Int63()
	r.buf = append(r.buf, v)
	r.pos++
	return v
}

func (r *recSource) Seed(seed int64) {
	r.src.Seed(seed)
	r.buf, r.pos = r.buf[:0], 0
}

// mark returns the current cursor; seek rewinds (or advances) to one.
func (r *recSource) mark() int    { return r.pos }
func (r *recSource) seek(pos int) { r.pos = pos }

// compact drops the consumed prefix, keeping recorded-but-unserved values.
// Called between groups so the buffer stays a few proposals long.
func (r *recSource) compact() {
	if r.pos == 0 {
		return
	}
	n := copy(r.buf, r.buf[r.pos:])
	r.buf = r.buf[:n]
	r.pos = 0
}

// runBatched is the speculative-batching counterpart of RunModel's serial
// loop; see the package comment above for the replay discipline. Dispatch
// guarantees opt.Batch > 1 here.
func runBatched(ctx context.Context, opt Options, m BatchModel) Result {
	rec := &recSource{src: rand.NewSource(opt.Seed)}
	rng := rand.New(rec) //hidapvet:allow allocfree one RNG per schedule, constructed before the move loop; the loop itself is the hot path

	cur := m.Cost()
	best := cur
	m.Snapshot()

	temp := opt.InitialTemp
	if temp <= 0 {
		temp = calibrate(rng, opt, m) // serial: calibration is 32 moves total
		cur = m.Cost()
		if cur < best {
			best = cur
			m.Snapshot()
		}
	}
	finalTemp := opt.FinalTemp
	if finalTemp <= 0 {
		finalTemp = temp * 1e-4
	}

	res := Result{InitTemp: temp}
	stall := 0
	// streak counts consecutive rejections; it sizes the speculative groups.
	// Speculative scoring reads the frozen state through an override layer,
	// which taxes every scored candidate a little whether or not the score
	// is used, so speculating in an accept-dense phase loses outright: the
	// tax outruns the undo work it saves. The group size therefore shadows
	// the reject streak like a branch predictor — an acceptance drops the
	// next group to zero (a plain serial step), and each rejection grows the
	// stake by one up to opt.Batch — confining the speculative machinery to
	// the reject-dense phase where batches actually replay and the serial
	// engine would be paying full evaluations to throw their results away.
	// The walk is byte-identical at any group size (only scoring is
	// speculated, never decisions), and the sizing is a deterministic
	// function of the trajectory, so reproducibility survives.
	streak := 0
	umark := make([]int, opt.Batch)
	for round := 0; round < opt.MaxRounds && temp > finalTemp; round++ {
		res.Rounds++
		improvedThisRound := false
		mv := 0
		for mv < opt.MovesPerRound {
			if ctx.Err() != nil {
				res.Canceled = true
				res.BestCost = best
				res.FinalTemp = temp
				return res
			}
			rec.compact()

			// Stage up to streak candidates (bounded by the knob and the
			// round), reserving one Metropolis uniform after each proposal's
			// draws.
			b := streak
			if b > opt.Batch {
				b = opt.Batch
			}
			if left := opt.MovesPerRound - mv; b > left {
				b = left
			}
			staged := 0
			for staged < b {
				pm := rec.mark()
				if !m.ProposeSpec(rng) {
					rec.seek(pm) // unscorable: re-serve its draws to Propose
					break
				}
				umark[staged] = rec.mark()
				_ = rng.Float64() // reserve uₖ
				staged++
			}

			if staged == 0 {
				// Nothing staged — the engine is out of a reject streak, or
				// the group leads with an unscorable move: one serial step.
				// Propose (re-)draws the recorded values and applies in full.
				next := m.Propose(rng)
				delta := next - cur
				if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
					cur = next
					res.Accepted++
					streak = 0
					if cur < best {
						best = cur
						improvedThisRound = true
						m.Snapshot()
					}
				} else {
					m.Undo()
					res.Rejected++
					streak++
				}
				mv++
				continue
			}

			costs := m.EvalBatch()
			for k := 0; k < staged; k++ {
				next := costs[k]
				delta := next - cur
				if delta <= 0 {
					// Serial would accept without drawing the uniform: give
					// the reserved draw back before committing.
					rec.seek(umark[k])
					cur = m.CommitSpec(k)
					res.Accepted++
					streak = 0
					mv++
					if cur < best {
						best = cur
						improvedThisRound = true
						m.Snapshot()
					}
					break // later candidates were drawn against a dead state
				}
				rec.seek(umark[k])
				if rng.Float64() < math.Exp(-delta/temp) {
					cur = m.CommitSpec(k)
					res.Accepted++
					streak = 0
					mv++
					if cur < best {
						best = cur
						improvedThisRound = true
						m.Snapshot()
					}
					break
				}
				// Uphill reject: the uniform was consumed exactly where the
				// reservation put it, so the next staged candidate's draws
				// line up and the replay continues.
				res.Rejected++
				streak++
				mv++
			}
		}
		if improvedThisRound {
			stall = 0
		} else if stall++; opt.StallRounds > 0 && stall >= opt.StallRounds {
			break
		}
		temp *= opt.Alpha
	}
	res.BestCost = best
	res.FinalTemp = temp
	return res
}
