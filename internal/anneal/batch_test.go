package anneal

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// btmMove is one move of the batch test model. Kinds consume different
// numbers of rng draws, so any misalignment between the batched replay and
// the serial stream scrambles every subsequent move.
type btmMove struct {
	kind int
	i, j int
	d    float64
	prev float64 // value displaced by apply, restored exactly by revert
}

// batchTestModel is a deliberately awkward BatchModel: variable-length rng
// consumption per move kind, one kind (2) that refuses speculative scoring,
// and a cost folded in a fixed order so bit-identity is meaningful.
type batchTestModel struct {
	xs []float64

	last btmMove
	have bool

	cands  []btmMove
	scored bool
	costs  []float64

	snaps []float64 // cost at every Snapshot, in call order
}

func newBatchTestModel(n int, seed int64) *batchTestModel {
	rng := rand.New(rand.NewSource(seed))
	m := &batchTestModel{xs: make([]float64, n)}
	for i := range m.xs {
		m.xs[i] = rng.Float64() * 10
	}
	return m
}

func (m *batchTestModel) recompute() float64 {
	var s float64
	for i, x := range m.xs {
		t := x - float64(i%5)
		s += t * t
	}
	return s
}

func (m *batchTestModel) draw(rng *rand.Rand) btmMove {
	mv := btmMove{kind: rng.Intn(3)}
	n := len(m.xs)
	switch mv.kind {
	case 0: // nudge: two draws after the kind
		mv.i = rng.Intn(n)
		mv.d = rng.Float64()*2 - 1
	case 1: // swap: two index draws
		mv.i = rng.Intn(n)
		mv.j = rng.Intn(n)
	default: // unscorable: three draws
		mv.i = rng.Intn(n)
		mv.d = (rng.Float64() - 0.5) * (1 + rng.Float64())
	}
	return mv
}

// apply mutates the state; revert restores it bit for bit (the displaced
// value is saved, not recomputed — a serial run reverts rejected moves while
// a batched run never applies them, so the two must cancel exactly).
func (m *batchTestModel) apply(mv *btmMove) {
	switch mv.kind {
	case 0:
		mv.prev = m.xs[mv.i]
		m.xs[mv.i] = m.xs[mv.i] + mv.d
	case 1:
		m.xs[mv.i], m.xs[mv.j] = m.xs[mv.j], m.xs[mv.i]
	default:
		mv.prev = m.xs[mv.i]
		m.xs[mv.i] = -0.5*m.xs[mv.i] + mv.d
	}
}

func (m *batchTestModel) revert(mv *btmMove) {
	switch mv.kind {
	case 1:
		m.xs[mv.i], m.xs[mv.j] = m.xs[mv.j], m.xs[mv.i]
	default:
		m.xs[mv.i] = mv.prev
	}
}

// costWith prices a staged move without touching the state: the fold visits
// the same indexes in the same order as recompute with the moved values
// substituted, so it bit-matches an apply + recompute.
func (m *batchTestModel) costWith(mv btmMove) float64 {
	var s float64
	for i, x := range m.xs {
		switch {
		case mv.kind == 0 && i == mv.i:
			x = x + mv.d
		case mv.kind == 1 && i == mv.i:
			x = m.xs[mv.j]
		case mv.kind == 1 && i == mv.j:
			x = m.xs[mv.i]
		}
		t := x - float64(i%5)
		s += t * t
	}
	return s
}

func (m *batchTestModel) Cost() float64 { return m.recompute() }

func (m *batchTestModel) Propose(rng *rand.Rand) float64 {
	m.last = m.draw(rng)
	m.have = true
	m.apply(&m.last)
	return m.recompute()
}

func (m *batchTestModel) Undo() {
	if !m.have {
		panic("Undo without Propose")
	}
	m.revert(&m.last)
	m.have = false
}

func (m *batchTestModel) Snapshot() { m.snaps = append(m.snaps, m.recompute()) }

func (m *batchTestModel) ProposeSpec(rng *rand.Rand) bool {
	if m.scored {
		m.cands, m.scored = m.cands[:0], false
	}
	mv := m.draw(rng)
	if mv.kind == 2 {
		return false
	}
	m.cands = append(m.cands, mv)
	return true
}

func (m *batchTestModel) EvalBatch() []float64 {
	m.scored = true
	m.costs = m.costs[:0]
	for _, mv := range m.cands {
		m.costs = append(m.costs, m.costWith(mv))
	}
	return m.costs
}

func (m *batchTestModel) CommitSpec(k int) float64 {
	m.last = m.cands[k]
	m.have = true
	m.apply(&m.last)
	return m.recompute()
}

// TestBatchedMatchesSerial is the byte-identity contract of speculative
// batching: for every batch size, runBatched must reproduce the serial
// engine's walk exactly — same Result in every field, same state at the end,
// and the same cost at every Snapshot — despite one move kind in three
// refusing speculative scoring and the kinds consuming different numbers of
// rng draws.
func TestBatchedMatchesSerial(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		opt := Options{
			Seed:          seed,
			MovesPerRound: 40,
			MaxRounds:     25,
			StallRounds:   8,
		}
		ref := newBatchTestModel(12, seed)
		refRes := RunModel(context.Background(), opt, ref)
		if refRes.Accepted == 0 || refRes.Rejected == 0 {
			t.Fatalf("seed %d: degenerate reference walk %+v", seed, refRes)
		}

		for _, batch := range []int{2, 3, 8, 40, 64} {
			m := newBatchTestModel(12, seed)
			bopt := opt
			bopt.Batch = batch
			res := RunModel(context.Background(), bopt, m)
			if res != refRes {
				t.Fatalf("seed %d batch %d: result %+v != serial %+v", seed, batch, res, refRes)
			}
			if len(m.xs) != len(ref.xs) {
				t.Fatal("state length diverged")
			}
			for i := range m.xs {
				if math.Float64bits(m.xs[i]) != math.Float64bits(ref.xs[i]) {
					t.Fatalf("seed %d batch %d: xs[%d] = %v, serial %v", seed, batch, i, m.xs[i], ref.xs[i])
				}
			}
			if len(m.snaps) != len(ref.snaps) {
				t.Fatalf("seed %d batch %d: %d snapshots, serial %d", seed, batch, len(m.snaps), len(ref.snaps))
			}
			for i := range m.snaps {
				if math.Float64bits(m.snaps[i]) != math.Float64bits(ref.snaps[i]) {
					t.Fatalf("seed %d batch %d: snapshot %d = %v, serial %v", seed, batch, i, m.snaps[i], ref.snaps[i])
				}
			}
		}
	}
}

// TestBatchedCancel checks that a cancelled context stops the batched loop
// promptly and reports Canceled, like the serial loop.
func TestBatchedCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := newBatchTestModel(8, 3)
	res := RunModel(ctx, Options{Seed: 3, Batch: 4, InitialTemp: 1}, m)
	if !res.Canceled {
		t.Fatalf("expected Canceled, got %+v", res)
	}
}

// TestRecSourceReplay pins the recording source: values re-served after a
// seek equal the originals, and compact preserves the recorded tail.
func TestRecSourceReplay(t *testing.T) {
	rec := &recSource{src: rand.NewSource(11)}
	a := make([]int64, 8)
	for i := range a {
		a[i] = rec.Int63()
	}
	rec.seek(3)
	for i := 3; i < 8; i++ {
		if v := rec.Int63(); v != a[i] {
			t.Fatalf("replay[%d] = %d, want %d", i, v, a[i])
		}
	}
	rec.seek(5)
	rec.compact() // drops the 5 consumed values, keeps 3 recorded ones
	for i := 5; i < 8; i++ {
		if v := rec.Int63(); v != a[i] {
			t.Fatalf("post-compact[%d] = %d, want %d", i, v, a[i])
		}
	}
	// Fresh values after the tail drains must come from the source.
	next := rand.NewSource(11)
	for i := 0; i < 8; i++ {
		next.Int63()
	}
	if v, w := rec.Int63(), next.Int63(); v != w {
		t.Fatalf("fresh draw %d, want %d", v, w)
	}
}
