// Package autocluster synthesizes a physical hierarchy for netlists whose
// RTL hierarchy is flat, too deep or badly unbalanced, so that the
// hier.Tree → Decluster → multilevel placement flow can consume real-world
// inputs unchanged.
//
// The approach follows the Hier-RTLMP direction (see PAPERS.md): seed
// clusters from whatever hierarchy prefix exists (subtrees that already fit
// the size bounds are kept whole; oversized modules are burst into their
// sequential components), keep macros and their dataflow-adjacent register
// arrays together using Gseq affinities, then coarsen the cluster-level
// connectivity graph with greedy heavy-edge matching until every leaf
// cluster respects the instance and macro bounds. Leaves are finally
// grouped into up to MaxLevels internal tree levels whose bounds scale by
// CoarseningRatio per level.
//
// The algorithm is sequential and breaks every tie by smallest member
// CellID, so the same (design, Params) input always produces a
// byte-identical tree regardless of GOMAXPROCS.
package autocluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/netlist"
	"repro/internal/seqgraph"
)

// Params controls hierarchy synthesis. The knob set mirrors the argument
// surface of OpenROAD's rtl_macro_placer (Hier-RTLMP): MaxNumInst /
// MinNumInst bound the standard-cell instances per leaf cluster
// (max_num_inst / min_num_inst, RTLMP_MAX_INST / RTLMP_MIN_INST),
// MaxNumMacro / MinNumMacro bound the macros per leaf cluster
// (max_num_macro / min_num_macro), CoarseningRatio is the factor by which
// the bounds grow per tree level going up (coarsening_ratio), MaxLevels
// bounds the synthesized tree depth above the leaves (max_num_level), and
// Tolerance relaxes the max bounds by the given fraction (tolerance).
//
// Zero values of MaxNumInst, MaxNumMacro, CoarseningRatio and MaxLevels
// mean "use the DefaultParams value". Zero MinNumInst, MinNumMacro and
// Tolerance are meaningful (no minimum, strict bounds) and are kept.
type Params struct {
	MaxNumInst      int     `json:"max_num_inst"`
	MinNumInst      int     `json:"min_num_inst"`
	MaxNumMacro     int     `json:"max_num_macro"`
	MinNumMacro     int     `json:"min_num_macro"`
	CoarseningRatio float64 `json:"coarsening_ratio"`
	MaxLevels       int     `json:"max_levels"`
	Tolerance       float64 `json:"tolerance"`
}

// DefaultParams returns the recommended knob settings. They are sized so
// that the synthetic suite circuits (whose generated hierarchy is already
// well shaped) pass through as a no-op, while genuinely flat 50k–100k
// instance designs cluster into a few dozen leaves.
func DefaultParams() Params {
	return Params{
		MaxNumInst:      4000,
		MinNumInst:      200,
		MaxNumMacro:     16,
		MinNumMacro:     4,
		CoarseningRatio: 8,
		MaxLevels:       2,
		Tolerance:       0.1,
	}
}

// withDefaults fills the zero-meaning-default fields.
func (p Params) withDefaults() Params {
	def := DefaultParams()
	if p.MaxNumInst == 0 {
		p.MaxNumInst = def.MaxNumInst
	}
	if p.MaxNumMacro == 0 {
		p.MaxNumMacro = def.MaxNumMacro
	}
	if p.CoarseningRatio == 0 {
		p.CoarseningRatio = def.CoarseningRatio
	}
	if p.MaxLevels == 0 {
		p.MaxLevels = def.MaxLevels
	}
	return p
}

// Validate rejects contradictory or out-of-range knob settings. It is
// called (after default filling) by Cluster.
func (p Params) Validate() error {
	switch {
	case p.MaxNumInst < 1:
		return fmt.Errorf("autocluster: MaxNumInst %d < 1", p.MaxNumInst)
	case p.MinNumInst < 0:
		return fmt.Errorf("autocluster: MinNumInst %d < 0", p.MinNumInst)
	case p.MinNumInst > p.MaxNumInst:
		return fmt.Errorf("autocluster: MinNumInst %d > MaxNumInst %d", p.MinNumInst, p.MaxNumInst)
	case p.MaxNumMacro < 1:
		return fmt.Errorf("autocluster: MaxNumMacro %d < 1", p.MaxNumMacro)
	case p.MinNumMacro < 0:
		return fmt.Errorf("autocluster: MinNumMacro %d < 0", p.MinNumMacro)
	case p.MinNumMacro > p.MaxNumMacro:
		return fmt.Errorf("autocluster: MinNumMacro %d > MaxNumMacro %d", p.MinNumMacro, p.MaxNumMacro)
	case p.CoarseningRatio <= 1:
		return fmt.Errorf("autocluster: CoarseningRatio %g must be > 1", p.CoarseningRatio)
	case p.MaxLevels < 1:
		return fmt.Errorf("autocluster: MaxLevels %d < 1", p.MaxLevels)
	case p.Tolerance < 0 || p.Tolerance > 4:
		return fmt.Errorf("autocluster: Tolerance %g out of [0, 4]", p.Tolerance)
	}
	return nil
}

// Stats summarizes one clustering pass.
type Stats struct {
	// NoOp is true when the input hierarchy was already well shaped and
	// the design was passed through untouched.
	NoOp bool `json:"noop,omitempty"`
	// Instances is the number of movable cells (comb + flop + macro).
	Instances int `json:"instances"`
	// SeedClusters counts clusters after hierarchy-prefix seeding.
	SeedClusters int `json:"seed_clusters"`
	// Clusters counts the leaf clusters of the synthesized tree.
	Clusters int `json:"clusters"`
	// Levels counts internal tree levels between the leaves and the root.
	Levels int `json:"levels"`
	// Rounds counts coarsening match rounds.
	Rounds int `json:"rounds"`
	// TreeNodes is the total synthesized hierarchy node count (with root).
	TreeNodes int `json:"tree_nodes"`
	// MaxLeafInsts is the largest leaf cluster instance count.
	MaxLeafInsts int `json:"max_leaf_insts"`
}

// Result is the outcome of Cluster.
type Result struct {
	// Design is the re-hierarchized design (the input design itself when
	// NoOp). Cell, net and pin IDs are identical to the input's.
	Design *netlist.Design
	Stats  Stats
}

// Graph-construction constants: nets with more pins than
// largeNetThreshold, or touching more than cliqueCap clusters, contribute
// no affinity (they are global wires; clique weights would be noise).
const (
	largeNetThreshold = 64
	cliqueCap         = 16
	maxRounds         = 64
)

// tolInt relaxes a bound by the tolerance fraction.
func tolInt(v int, tol float64) int {
	return int(float64(v) * (1 + tol))
}

// maxGoodDepth is the hierarchy depth beyond which Needed asks for
// re-clustering even if every node respects the direct-size bounds.
func maxGoodDepth(p Params) int { return 3*p.MaxLevels + 3 }

// Needed reports whether the design's hierarchy is flat, too deep or
// unbalanced enough to benefit from a synthesized hierarchy: some node
// directly owns more movable instances (or macros) than the tolerance-
// relaxed bounds allow, or the tree is deeper than the multilevel flow
// can usefully consume.
func Needed(d *netlist.Design, p Params) bool {
	p = p.withDefaults()
	capI := tolInt(p.MaxNumInst, p.Tolerance)
	capM := tolInt(p.MaxNumMacro, p.Tolerance)
	for i := range d.Hier {
		insts, macros := 0, 0
		for _, cid := range d.Hier[i].Cells {
			switch d.Cell(cid).Kind {
			case netlist.KindPort:
				continue
			case netlist.KindMacro:
				macros++
			}
			insts++
		}
		if insts > capI || macros > capM {
			return true
		}
	}
	depth := make([]int32, len(d.Hier))
	maxDepth := 0
	for _, n := range d.HierTopo() {
		if n != 0 {
			depth[n] = depth[d.Hier[n].Parent] + 1
			if int(depth[n]) > maxDepth {
				maxDepth = int(depth[n])
			}
		}
	}
	return maxDepth > maxGoodDepth(p)
}

// Cluster synthesizes a physical hierarchy for d. When the existing
// hierarchy already fits the bounds the input design is returned unchanged
// with Stats.NoOp set, which guarantees bit-identical downstream results
// for well-shaped inputs.
func Cluster(d *netlist.Design, p Params) (*Result, error) {
	return ClusterUsing(d, p, nil)
}

// ClusterUsing is Cluster with a caller-provided sequential graph of d
// (for engines that already cache Gseq). The graph depends only on cells,
// nets and names — not on the hierarchy — so a graph built from any
// ReplaceHier variant of the same connectivity is acceptable. A nil graph
// is built internally.
func ClusterUsing(d *netlist.Design, p Params, sg *seqgraph.Graph) (*Result, error) {
	q := p.withDefaults()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	st := Stats{}
	for i := range d.Cells {
		if d.Cells[i].Kind != netlist.KindPort {
			st.Instances++
		}
	}
	if !Needed(d, q) {
		st.NoOp = true
		st.TreeNodes = len(d.Hier)
		return &Result{Design: d, Stats: st}, nil
	}
	if sg == nil {
		sg = seqgraph.Build(d, seqgraph.DefaultParams())
	} else if len(sg.CellNode) != len(d.Cells) {
		return nil, fmt.Errorf("autocluster: sequential graph covers %d cells, design has %d", len(sg.CellNode), len(d.Cells))
	}

	c := &clusterer{
		d:        d,
		p:        q,
		sg:       sg,
		maxInst:  tolInt(q.MaxNumInst, q.Tolerance),
		maxMacro: tolInt(q.MaxNumMacro, q.Tolerance),
	}
	c.seed()
	st.SeedClusters = c.alive
	c.splitOversized()
	c.attachAffinity()
	c.coarsen()
	c.mergeSmall()
	st.Rounds = c.rounds

	nd, err := c.build(&st)
	if err != nil {
		return nil, err
	}
	return &Result{Design: nd, Stats: st}, nil
}

// clusterer carries the union-find cluster state of one pass.
type clusterer struct {
	d  *netlist.Design
	p  Params
	sg *seqgraph.Graph
	// maxInst and maxMacro are the tolerance-relaxed leaf bounds.
	maxInst, maxMacro int

	cellCl  []int32 // cell -> cluster (pre-find), -1 for ports
	parent  []int32 // union-find forest
	insts   []int32 // per root: movable instance count
	macros  []int32 // per root: macro count
	minCell []int32 // per root: smallest member CellID (deterministic order key)
	alive   int
	rounds  int
	levels  int

	scratch []netlist.CellID
}

func (c *clusterer) newCluster() int32 {
	id := int32(len(c.parent))
	c.parent = append(c.parent, id)
	c.insts = append(c.insts, 0)
	c.macros = append(c.macros, 0)
	c.minCell = append(c.minCell, math.MaxInt32)
	c.alive++
	return id
}

func (c *clusterer) addCell(ci int32, cid netlist.CellID) {
	c.cellCl[cid] = ci
	c.insts[ci]++
	if c.d.Cell(cid).Kind == netlist.KindMacro {
		c.macros[ci]++
	}
	if int32(cid) < c.minCell[ci] {
		c.minCell[ci] = int32(cid)
	}
}

func (c *clusterer) find(x int32) int32 {
	for c.parent[x] != x {
		c.parent[x] = c.parent[c.parent[x]] // path halving
		x = c.parent[x]
	}
	return x
}

// union merges the two roots; the root with the smaller minCell survives.
// Returns the surviving root.
func (c *clusterer) union(a, b int32) int32 {
	if a == b {
		return a
	}
	if c.minCell[b] < c.minCell[a] {
		a, b = b, a
	}
	c.parent[b] = a
	c.insts[a] += c.insts[b]
	c.macros[a] += c.macros[b]
	c.alive--
	return a
}

func (c *clusterer) fits(a, b int32) bool {
	return int(c.insts[a]+c.insts[b]) <= c.maxInst && int(c.macros[a]+c.macros[b]) <= c.maxMacro
}

// seed forms the initial clusters from the hierarchy prefix: subtrees that
// already fit the bounds become whole seed clusters; oversized (or root)
// levels burst their direct cells into sequential components — register
// arrays and macros become one seed each (via Gseq), everything else a
// singleton.
func (c *clusterer) seed() {
	d := c.d
	c.cellCl = make([]int32, len(d.Cells))
	for i := range c.cellCl {
		c.cellCl[i] = -1
	}

	topo := d.HierTopo()
	subI := make([]int32, len(d.Hier))
	subM := make([]int32, len(d.Hier))
	for oi := len(topo) - 1; oi >= 0; oi-- {
		n := topo[oi]
		node := d.Node(n)
		for _, cid := range node.Cells {
			switch d.Cell(cid).Kind {
			case netlist.KindPort:
				continue
			case netlist.KindMacro:
				subM[n]++
			}
			subI[n]++
		}
		for _, ch := range node.Children {
			subI[n] += subI[ch]
			subM[n] += subM[ch]
		}
	}

	var walk func(n netlist.HierID)
	walk = func(n netlist.HierID) {
		if n != 0 && subI[n] > 0 && int(subI[n]) <= c.maxInst && int(subM[n]) <= c.maxMacro {
			c.scratch = c.d.SubtreeCells(n, c.scratch[:0])
			ci := c.newCluster()
			for _, cid := range c.scratch {
				if d.Cell(cid).Kind != netlist.KindPort {
					c.addCell(ci, cid)
				}
			}
			return
		}
		c.burstDirect(n)
		for _, ch := range d.Node(n).Children {
			walk(ch)
		}
	}
	walk(0)
}

// burstDirect seeds the direct cells of one oversized hierarchy node,
// grouping by sequential component so register arrays stay whole.
func (c *clusterer) burstDirect(n netlist.HierID) {
	d := c.d
	bySeq := map[int32]int32{}
	for _, cid := range d.Node(n).Cells {
		if d.Cell(cid).Kind == netlist.KindPort {
			continue
		}
		if sq := c.sg.CellNode[cid]; sq >= 0 {
			ci, ok := bySeq[sq]
			if !ok {
				ci = c.newCluster()
				bySeq[sq] = ci
			}
			c.addCell(ci, cid)
		} else {
			c.addCell(c.newCluster(), cid)
		}
	}
}

// splitOversized chunks any seed cluster that exceeds the instance bound
// (a register array wider than MaxNumInst) into bound-sized pieces in
// CellID order. It runs before any union, so every cluster is still its
// own root.
func (c *clusterer) splitOversized() {
	over := false
	isOver := make([]bool, len(c.parent))
	for i := range c.parent {
		if int(c.insts[i]) > c.maxInst {
			isOver[i] = true
			over = true
		}
	}
	if !over {
		return
	}
	members := make(map[int32][]netlist.CellID)
	for i := range c.cellCl {
		if ci := c.cellCl[i]; ci >= 0 && isOver[ci] {
			members[ci] = append(members[ci], netlist.CellID(i))
		}
	}
	var order []int32
	for ci := range members {
		order = append(order, ci)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, ci := range order {
		cells := members[ci]
		c.insts[ci], c.macros[ci], c.minCell[ci] = 0, 0, math.MaxInt32
		cur := ci
		for k, cid := range cells {
			if k > 0 && k%c.maxInst == 0 {
				cur = c.newCluster()
			}
			c.addCell(cur, cid)
		}
	}
}

// attachAffinity merges each register array into the cluster of its
// widest dataflow-adjacent macro (one Gseq hop, either direction) when the
// merged cluster still fits the bounds. Ties break toward the smaller
// Gseq node index.
func (c *clusterer) attachAffinity() {
	sg := c.sg
	in := make([][]seqgraph.Edge, len(sg.Nodes))
	for u := range sg.Nodes {
		for _, e := range sg.Out[u] {
			in[e.To] = append(in[e.To], seqgraph.Edge{To: int32(u), Bits: e.Bits})
		}
	}
	for u := range sg.Nodes {
		if sg.Nodes[u].Kind != seqgraph.KindRegister || len(sg.Nodes[u].Cells) == 0 {
			continue
		}
		best, bestBits := int32(-1), int32(0)
		consider := func(v, bits int32) {
			if sg.Nodes[v].Kind != seqgraph.KindMacro {
				return
			}
			if bits > bestBits || (bits == bestBits && best >= 0 && v < best) {
				best, bestBits = v, bits
			}
		}
		for _, e := range sg.Out[u] {
			consider(e.To, e.Bits)
		}
		for _, e := range in[u] {
			consider(e.To, e.Bits)
		}
		if best < 0 {
			continue
		}
		ru := c.find(c.cellCl[sg.Nodes[u].Cells[0]])
		rm := c.find(c.cellCl[sg.Nodes[best].Cells[0]])
		if ru != rm && c.fits(ru, rm) {
			c.union(ru, rm)
		}
	}
}

// nb is one weighted neighbor in a cluster adjacency list.
type nb struct {
	to int32
	w  float64
}

// aliveReps returns the current cluster roots sorted by minCell.
func (c *clusterer) aliveReps() []int32 {
	reps := make([]int32, 0, c.alive)
	for i := range c.parent {
		if c.find(int32(i)) == int32(i) {
			reps = append(reps, int32(i))
		}
	}
	sort.Slice(reps, func(i, j int) bool { return c.minCell[reps[i]] < c.minCell[reps[j]] })
	return reps
}

// cellDense fills dst with each cell's dense index into reps (or -1) and
// returns it.
func (c *clusterer) cellDense(reps []int32, dst []int32) []int32 {
	repIdx := make(map[int32]int32, len(reps))
	for i, r := range reps {
		repIdx[r] = int32(i)
	}
	if cap(dst) < len(c.cellCl) {
		dst = make([]int32, len(c.cellCl))
	}
	dst = dst[:len(c.cellCl)]
	for i, ci := range c.cellCl {
		if ci < 0 {
			dst[i] = -1
		} else {
			dst[i] = repIdx[c.find(ci)]
		}
	}
	return dst
}

// buildAdj constructs the weighted cluster adjacency of the current
// grouping: every net with at most largeNetThreshold pins touching
// 2..cliqueCap groups contributes a clique with weight 1/(k-1) per pair.
// Neighbor lists are sorted by weight (descending) then dense index, so
// greedy consumption is deterministic.
func buildAdj(d *netlist.Design, cellTop []int32, n int) [][]nb {
	pair := make(map[int64]float64)
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	var mem [cliqueCap]int32
	for ni := range d.Nets {
		pins := d.Nets[ni].Pins
		if len(pins) < 2 || len(pins) > largeNetThreshold {
			continue
		}
		epoch := int32(ni)
		k := 0
		ok := true
		for _, pid := range pins {
			t := cellTop[d.Pin(pid).Cell]
			if t < 0 || seen[t] == epoch {
				continue
			}
			if k == cliqueCap {
				ok = false
				break
			}
			seen[t] = epoch
			mem[k] = t
			k++
		}
		if !ok || k < 2 {
			continue
		}
		w := 1.0 / float64(k-1)
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				x, y := mem[a], mem[b]
				if x > y {
					x, y = y, x
				}
				pair[int64(x)<<32|int64(y)] += w
			}
		}
	}
	keys := make([]int64, 0, len(pair))
	for k := range pair {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	adj := make([][]nb, n)
	for _, k := range keys {
		a, b, w := int32(k>>32), int32(k&0xffffffff), pair[k]
		adj[a] = append(adj[a], nb{to: b, w: w})
		adj[b] = append(adj[b], nb{to: a, w: w})
	}
	for i := range adj {
		l := adj[i]
		sort.Slice(l, func(x, y int) bool {
			if l[x].w != l[y].w {
				return l[x].w > l[y].w
			}
			return l[x].to < l[y].to
		})
	}
	return adj
}

// coarsen runs greedy heavy-edge match rounds until no merge fits the leaf
// bounds anymore.
func (c *clusterer) coarsen() {
	var dense []int32
	for c.rounds < maxRounds {
		reps := c.aliveReps()
		if len(reps) < 2 {
			break
		}
		dense = c.cellDense(reps, dense)
		adj := buildAdj(c.d, dense, len(reps))
		merges := 0
		for i := range reps {
			cur := c.find(reps[i])
			if cur != reps[i] {
				continue // absorbed earlier this round
			}
			for _, e := range adj[i] {
				tgt := c.find(reps[e.to])
				if tgt == cur {
					continue
				}
				if c.fits(cur, tgt) {
					cur = c.union(cur, tgt)
					merges++
				}
			}
		}
		c.rounds++
		if merges == 0 {
			break
		}
	}
}

// mergeSmall folds clusters below the minimum bounds into their
// best-connected (or, failing that, nearest-by-CellID) neighbor that still
// fits the maximum bounds. Macro-poor clusters only merge toward other
// macro-bearing clusters, concentrating stray macros.
func (c *clusterer) mergeSmall() {
	if c.p.MinNumInst == 0 && c.p.MinNumMacro == 0 {
		return
	}
	var dense []int32
	for pass := 0; pass < 8; pass++ {
		reps := c.aliveReps()
		if len(reps) < 2 {
			return
		}
		dense = c.cellDense(reps, dense)
		adj := buildAdj(c.d, dense, len(reps))
		changed := false
		for i := range reps {
			cur := c.find(reps[i])
			if cur != reps[i] {
				continue
			}
			tiny := int(c.insts[cur]) < c.p.MinNumInst
			poor := c.macros[cur] > 0 && int(c.macros[cur]) < c.p.MinNumMacro
			if !tiny && !poor {
				continue
			}
			merged := false
			for _, e := range adj[i] {
				tgt := c.find(reps[e.to])
				if tgt == cur || (poor && !tiny && c.macros[tgt] == 0) {
					continue
				}
				if c.fits(cur, tgt) {
					c.union(cur, tgt)
					changed, merged = true, true
					break
				}
			}
			if merged || !tiny {
				continue
			}
			// Disconnected tiny cluster: fold into the nearest cluster in
			// minCell order that fits.
			for off := 1; off < len(reps); off++ {
				for _, j := range [2]int{i + off, i - off} {
					if j < 0 || j >= len(reps) {
						continue
					}
					tgt := c.find(reps[j])
					if tgt != cur && c.fits(cur, tgt) {
						c.union(cur, tgt)
						changed, merged = true, true
						break
					}
				}
				if merged {
					break
				}
			}
		}
		if !changed {
			return
		}
	}
}

// boundFor returns the tolerance-relaxed instance and macro caps for a
// tree node of the given height (leaves have height 1); the caps grow by
// CoarseningRatio per level.
func (c *clusterer) boundFor(h int32) (int32, int32) {
	scale := math.Pow(c.p.CoarseningRatio, float64(h-1))
	capI := float64(c.maxInst) * scale
	capM := float64(c.maxMacro) * scale
	if capI > math.MaxInt32 {
		capI = math.MaxInt32
	}
	if capM > math.MaxInt32 {
		capM = math.MaxInt32
	}
	return int32(capI), int32(capM)
}

// tnode is one node of the synthesized tree during construction.
type tnode struct {
	children []int32
	parent   int32
	minCell  int32
	insts    int32
	macros   int32
	height   int32
}

// build groups the leaf clusters into up to MaxLevels internal levels and
// materializes the synthesized hierarchy via netlist.ReplaceHier.
func (c *clusterer) build(st *Stats) (*netlist.Design, error) {
	d := c.d
	reps := c.aliveReps()
	L := len(reps)

	tn := make([]tnode, 0, 2*L)
	leafIdx := make(map[int32]int32, L) // root cluster -> leaf tnode index
	for i, r := range reps {
		tn = append(tn, tnode{
			parent: -1, minCell: c.minCell[r],
			insts: c.insts[r], macros: c.macros[r], height: 1,
		})
		leafIdx[r] = int32(i)
	}
	level := make([]int32, L)
	for i := range level {
		level[i] = int32(i)
	}
	fanCap := int(math.Ceil(c.p.CoarseningRatio))
	if fanCap < 2 {
		fanCap = 2
	}

	cellTop := make([]int32, len(c.cellCl))
	pos := make([]int32, 0)
	topOf := func(t int32) int32 {
		for tn[t].parent >= 0 {
			t = tn[t].parent
		}
		return t
	}
	for c.levels < c.p.MaxLevels && len(level) > fanCap {
		// Dense position of each current-level node, then per-cell tops.
		pos = append(pos[:0], make([]int32, len(tn))...)
		for i, t := range level {
			pos[t] = int32(i)
		}
		leafTop := make([]int32, L)
		for l := 0; l < L; l++ {
			leafTop[l] = pos[topOf(int32(l))]
		}
		for i, ci := range c.cellCl {
			if ci < 0 {
				cellTop[i] = -1
			} else {
				cellTop[i] = leafTop[leafIdx[c.find(ci)]]
			}
		}
		adj := buildAdj(d, cellTop, len(level))

		assigned := make([]int32, len(level))
		for i := range assigned {
			assigned[i] = -1
		}
		var next []int32
		created := 0
		for i := range level {
			if assigned[i] >= 0 {
				continue
			}
			base := level[i]
			members := []int32{int32(i)}
			gi, gm, mh := tn[base].insts, tn[base].macros, tn[base].height
			for _, e := range adj[i] {
				if len(members) >= fanCap {
					break
				}
				j := e.to
				if assigned[j] >= 0 || int(j) == i {
					continue
				}
				cand := level[j]
				h := mh
				if tn[cand].height > h {
					h = tn[cand].height
				}
				capI, capM := c.boundFor(h + 1)
				if gi+tn[cand].insts <= capI && gm+tn[cand].macros <= capM {
					members = append(members, j)
					gi += tn[cand].insts
					gm += tn[cand].macros
					if tn[cand].height > mh {
						mh = tn[cand].height
					}
				}
			}
			if len(members) == 1 {
				assigned[i] = int32(i)
				next = append(next, base)
				continue
			}
			nt := int32(len(tn))
			node := tnode{parent: -1, minCell: tn[base].minCell, insts: gi, macros: gm, height: mh + 1}
			for _, m := range members {
				assigned[m] = nt
				node.children = append(node.children, level[m])
				tn[level[m]].parent = nt
			}
			tn = append(tn, node)
			next = append(next, nt)
			created++
		}
		if created == 0 {
			break
		}
		level = next
		c.levels++
	}

	// Materialize: root is 0, leaves get IDs 1..L in minCell order, then
	// internal nodes in creation order. Parents of internal nodes come
	// AFTER their children on purpose — consumers must not assume builder
	// ordering (hier.New and the shape-curve sweep handle this).
	nodes := make([]netlist.NewHierNode, 1, len(tn)+1)
	nodes[0] = netlist.NewHierNode{Parent: netlist.None}
	hid := make([]netlist.HierID, len(tn))
	for t := range tn {
		name := fmt.Sprintf("g%d", t-L)
		if t < L {
			name = fmt.Sprintf("c%d", t)
		}
		hid[t] = netlist.HierID(len(nodes))
		nodes = append(nodes, netlist.NewHierNode{Name: name})
	}
	for t := range tn {
		p := netlist.HierID(0)
		if tn[t].parent >= 0 {
			p = hid[tn[t].parent]
		}
		nodes[hid[t]].Parent = p
	}
	cellNode := make([]netlist.HierID, len(d.Cells))
	for i, ci := range c.cellCl {
		if ci < 0 {
			cellNode[i] = 0
		} else {
			cellNode[i] = hid[leafIdx[c.find(ci)]]
		}
	}
	nd, err := netlist.ReplaceHier(d, nodes, cellNode)
	if err != nil {
		return nil, fmt.Errorf("autocluster: rebuild: %w", err)
	}

	st.Clusters = L
	st.Levels = c.levels
	st.TreeNodes = len(nodes)
	for t := 0; t < L; t++ {
		if int(tn[t].insts) > st.MaxLeafInsts {
			st.MaxLeafInsts = int(tn[t].insts)
		}
	}
	return nd, nil
}

// CheckTree verifies that a synthesized hierarchy respects the bounds at
// every level: leaves stay within the tolerance-relaxed MaxNumInst /
// MaxNumMacro, and a node whose height above the leaves is h stays within
// those bounds scaled by CoarseningRatio^h. The root is exempt (it owns
// the whole design). Intended for tests and acceptance checks on Cluster
// output; arbitrary RTL hierarchies need not satisfy it.
func CheckTree(d *netlist.Design, p Params) error {
	p = p.withDefaults()
	maxInst := tolInt(p.MaxNumInst, p.Tolerance)
	maxMacro := tolInt(p.MaxNumMacro, p.Tolerance)
	topo := d.HierTopo()
	insts := make([]int32, len(d.Hier))
	macros := make([]int32, len(d.Hier))
	height := make([]int32, len(d.Hier))
	for oi := len(topo) - 1; oi >= 0; oi-- {
		n := topo[oi]
		node := d.Node(n)
		for _, cid := range node.Cells {
			switch d.Cell(cid).Kind {
			case netlist.KindPort:
				continue
			case netlist.KindMacro:
				macros[n]++
			}
			insts[n]++
		}
		height[n] = 1
		for _, ch := range node.Children {
			insts[n] += insts[ch]
			macros[n] += macros[ch]
			if height[ch]+1 > height[n] {
				height[n] = height[ch] + 1
			}
		}
		if n == 0 {
			continue
		}
		scale := math.Pow(p.CoarseningRatio, float64(height[n]-1))
		capI := int32(math.Min(float64(maxInst)*scale, math.MaxInt32))
		capM := int32(math.Min(float64(maxMacro)*scale, math.MaxInt32))
		if insts[n] > capI {
			return fmt.Errorf("autocluster: node %q (height %d) holds %d insts > cap %d", node.Path, height[n], insts[n], capI)
		}
		if macros[n] > capM {
			return fmt.Errorf("autocluster: node %q (height %d) holds %d macros > cap %d", node.Path, height[n], macros[n], capM)
		}
	}
	return nil
}
