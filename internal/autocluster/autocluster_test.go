package autocluster_test

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/circuits"
	"repro/internal/autocluster"
	"repro/internal/hier"
	"repro/internal/netlist"
)

func flatSpec() circuits.Spec {
	return circuits.Spec{Name: "t1", Cells: 400_000, Macros: 12, Subsystems: 3,
		BusWidth: 32, PipelineDepth: 2, Scale: 200, Seed: 9}
}

func mustCluster(t testing.TB, d *netlist.Design, p autocluster.Params) *autocluster.Result {
	t.Helper()
	r, err := autocluster.Cluster(d, p)
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	return r
}

func designBytes(t testing.TB, d *netlist.Design) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := netlist.WriteJSON(&buf, d); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

func TestValidateKnobBounds(t *testing.T) {
	bad := []autocluster.Params{
		{MaxNumInst: 100, MinNumInst: 200},                // min > max insts
		{MaxNumMacro: 4, MinNumMacro: 9},                  // min > max macros
		{MinNumInst: -1},                                  // negative min
		{MinNumMacro: -2},                                 // negative min
		{MaxNumInst: -5},                                  // negative max
		{CoarseningRatio: 0.5},                            // ratio must exceed 1
		{CoarseningRatio: 1},                              // ratio must exceed 1
		{MaxLevels: -1},                                   // negative levels
		{Tolerance: -0.1},                                 // negative tolerance
		{Tolerance: 100},                                  // absurd tolerance
		{MaxNumInst: 10, MinNumInst: 10, MinNumMacro: 17}, // min macro > default max
	}
	d := goldenDesign(t)
	for i, p := range bad {
		if _, err := autocluster.Cluster(d, p); err == nil {
			t.Errorf("case %d (%+v): expected rejection", i, p)
		}
	}
	// Defaults validate.
	if err := autocluster.DefaultParams().Validate(); err != nil {
		t.Errorf("DefaultParams invalid: %v", err)
	}
}

func TestNoOpOnHierarchical(t *testing.T) {
	g := circuits.Generate(flatSpec())
	r := mustCluster(t, g.Design, autocluster.DefaultParams())
	if !r.Stats.NoOp {
		t.Fatalf("expected no-op on well-shaped hierarchy, got %+v", r.Stats)
	}
	if r.Design != g.Design {
		t.Fatal("no-op must return the input design unchanged")
	}
}

func TestFlatDesignClustered(t *testing.T) {
	g := circuits.GenFlat(flatSpec())
	p := autocluster.Params{MaxNumInst: 400, MinNumInst: 20, MaxNumMacro: 4}
	r := mustCluster(t, g.Design, p)
	if r.Stats.NoOp {
		t.Fatal("flat design must cluster")
	}
	d := r.Design
	if err := d.Validate(); err != nil {
		t.Fatalf("clustered design invalid: %v", err)
	}
	if err := autocluster.CheckTree(d, p); err != nil {
		t.Fatalf("bounds violated: %v", err)
	}
	if r.Stats.Clusters < 2 {
		t.Fatalf("expected multiple leaves, got %d", r.Stats.Clusters)
	}
	// Movable cells live below the root; ports stay at it.
	for i := range d.Cells {
		atRoot := d.Cells[i].Hier == 0
		isPort := d.Cells[i].Kind == netlist.KindPort
		if atRoot != isPort {
			t.Fatalf("cell %d (%v) at node %d", i, d.Cells[i].Kind, d.Cells[i].Hier)
		}
	}
	// The synthesized tree is consumable by the hierarchy analysis.
	tr := hier.New(d)
	if tr.MacroCount(0) != 12 {
		t.Fatalf("root macro count = %d, want 12", tr.MacroCount(0))
	}
}

func TestDeterminism(t *testing.T) {
	g := circuits.GenFlat(flatSpec())
	p := autocluster.DefaultParams()
	p.MaxNumInst = 300
	p.MaxNumMacro = 3
	p.MinNumMacro = 1

	old := runtime.GOMAXPROCS(1)
	r1 := mustCluster(t, g.Design, p)
	runtime.GOMAXPROCS(4)
	r2 := mustCluster(t, g.Design, p)
	runtime.GOMAXPROCS(old)
	b1, b2 := designBytes(t, r1.Design), designBytes(t, r2.Design)
	if !bytes.Equal(b1, b2) {
		t.Fatal("tree bytes differ across GOMAXPROCS")
	}

	// Concurrent passes over the same design (the -race job exercises
	// this) must also agree byte-for-byte.
	var wg sync.WaitGroup
	out := make([][]byte, 4)
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := autocluster.Cluster(g.Design, p)
			if err != nil {
				return
			}
			var buf bytes.Buffer
			_ = netlist.WriteJSON(&buf, r.Design)
			out[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i := range out {
		if !bytes.Equal(out[i], b1) {
			t.Fatalf("concurrent run %d produced different tree bytes", i)
		}
	}
}

// chainDesign builds 10 three-bit register arrays in a chain, flat at the
// root: a workload where the Tolerance knob decides whether neighboring
// arrays may merge.
func chainDesign(t testing.TB) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("chain")
	var prev [3]netlist.CellID
	for k := 0; k < 10; k++ {
		var cur [3]netlist.CellID
		for i := 0; i < 3; i++ {
			cur[i] = b.AddFlop(fmt.Sprintf("r%d[%d]", k, i), "")
			if k > 0 {
				b.Wire(fmt.Sprintf("n%d_%d", k, i), prev[i], cur[i])
			}
		}
		prev = cur
	}
	return b.MustBuild()
}

func TestToleranceHonored(t *testing.T) {
	d := chainDesign(t)
	strict := autocluster.Params{MaxNumInst: 4, MinNumInst: 0, MaxNumMacro: 1,
		CoarseningRatio: 8, MaxLevels: 1, Tolerance: 0}
	r := mustCluster(t, d, strict)
	// Two 3-bit arrays cannot merge under a strict cap of 4.
	if r.Stats.Clusters != 10 {
		t.Fatalf("strict: %d clusters, want 10", r.Stats.Clusters)
	}
	if r.Stats.MaxLeafInsts > 4 {
		t.Fatalf("strict: leaf of %d insts exceeds cap", r.Stats.MaxLeafInsts)
	}

	relaxed := strict
	relaxed.Tolerance = 1.0 // cap 8: neighboring arrays pair up
	r2 := mustCluster(t, d, relaxed)
	if r2.Stats.Clusters >= r.Stats.Clusters {
		t.Fatalf("relaxed: %d clusters, want fewer than %d", r2.Stats.Clusters, r.Stats.Clusters)
	}
	if r2.Stats.MaxLeafInsts > 8 {
		t.Fatalf("relaxed: leaf of %d insts exceeds relaxed cap 8", r2.Stats.MaxLeafInsts)
	}
	if err := autocluster.CheckTree(r2.Design, relaxed); err != nil {
		t.Fatalf("CheckTree(relaxed): %v", err)
	}
}

// goldenDesign is a fixed flat design: two macro+register-file pairs and a
// six-cell combinational chain between them.
func goldenDesign(t testing.TB) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("golden")
	var q [2][4]netlist.CellID
	var mac [2]netlist.CellID
	for m := 0; m < 2; m++ {
		mac[m] = b.AddMacro(fmt.Sprintf("ram%d", m), 20000, 16000, "")
		for i := 0; i < 4; i++ {
			q[m][i] = b.AddFlop(fmt.Sprintf("q%d[%d]", m, i), "")
			b.Wire(fmt.Sprintf("mq%d_%d", m, i), mac[m], q[m][i])
		}
	}
	prev := q[0][0]
	for i := 0; i < 6; i++ {
		c := b.AddComb(fmt.Sprintf("u%d", i), 3000, "")
		b.Wire(fmt.Sprintf("g%d", i), prev, c)
		prev = c
	}
	b.Wire("gl", prev, q[1][0])
	clk := b.AddPort("clk")
	b.Wire("clk_n", clk, mac[0], mac[1])
	return b.MustBuild()
}

// dumpTree renders the hierarchy with per-subtree movable-instance and
// macro counts, preorder, children in Children order.
func dumpTree(d *netlist.Design) string {
	tr := hier.New(d)
	insts := make([]int, len(d.Hier))
	order := d.HierTopo()
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		for _, cid := range d.Node(n).Cells {
			if d.Cell(cid).Kind != netlist.KindPort {
				insts[n]++
			}
		}
		for _, ch := range d.Node(n).Children {
			insts[n] += insts[ch]
		}
	}
	var sb strings.Builder
	var walk func(n netlist.HierID, depth int)
	walk = func(n netlist.HierID, depth int) {
		name := d.Node(n).Name
		if n == 0 {
			name = "<root>"
		}
		fmt.Fprintf(&sb, "%s%s insts=%d macros=%d\n",
			strings.Repeat("  ", depth), name, insts[n], tr.MacroCount(n))
		for _, ch := range d.Node(n).Children {
			walk(ch, depth+1)
		}
	}
	walk(0, 0)
	return sb.String()
}

func TestGoldenTree(t *testing.T) {
	d := goldenDesign(t)
	p := autocluster.Params{MaxNumInst: 6, MinNumInst: 0, MaxNumMacro: 1,
		MinNumMacro: 0, CoarseningRatio: 2, MaxLevels: 2, Tolerance: 0}
	r := mustCluster(t, d, p)
	got := dumpTree(r.Design)
	// The two macro+register-file leaves (c0, c1) pair under g0 — they
	// share the clk net — and the comb chain (c2) stays a direct child.
	const golden = `<root> insts=16 macros=2
  c2 insts=4 macros=0
  g0 insts=12 macros=2
    c0 insts=6 macros=1
    c1 insts=6 macros=1
`
	if got != golden {
		t.Fatalf("golden tree mismatch.\ngot:\n%s\nwant:\n%s", got, golden)
	}
	if err := autocluster.CheckTree(r.Design, p); err != nil {
		t.Fatalf("CheckTree: %v", err)
	}
}

func TestDeepHierarchyFlattened(t *testing.T) {
	b := netlist.NewBuilder("deep")
	path := ""
	for i := 0; i < 14; i++ {
		if path != "" {
			path += "/"
		}
		path += fmt.Sprintf("a%d", i)
		b.AddComb(fmt.Sprintf("%s/u", path), 3000, path)
	}
	d := b.MustBuild()
	p := autocluster.DefaultParams()
	if !autocluster.Needed(d, p) {
		t.Fatal("14-deep hierarchy should trigger clustering")
	}
	r := mustCluster(t, d, p)
	if r.Stats.NoOp {
		t.Fatal("expected a synthesized tree")
	}
	// The tiny deep chain collapses into one leaf under the root.
	if r.Stats.Clusters != 1 || r.Stats.TreeNodes != 2 {
		t.Fatalf("stats = %+v, want 1 cluster / 2 tree nodes", r.Stats)
	}
}

func BenchmarkClusterFlat(b *testing.B) {
	spec := flatSpec()
	spec.Scale = 40 // ~10k cells
	g := circuits.GenFlat(spec)
	p := autocluster.DefaultParams()
	p.MaxNumInst = 1000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := autocluster.Cluster(g.Design, p); err != nil {
			b.Fatal(err)
		}
	}
}
