package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/legalize"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/shape"
)

// miniSoC builds a two-subsystem design with four macros per subsystem,
// register pipelines inside each subsystem, a wide bus between the two, and
// ports on the west edge feeding subsystem A.
func miniSoC(t testing.TB) *netlist.Design {
	b := netlist.NewBuilder("minisoc")
	b.SetDie(geom.RectXYWH(0, 0, 60_000, 60_000))

	addSub := func(name string) (regs []netlist.CellID, macros []netlist.CellID) {
		for mi := 0; mi < 4; mi++ {
			path := fmt.Sprintf("%s/ram%d", name, mi)
			m := b.AddMacro(path+"/mem", 9_000, 6_000, path)
			macros = append(macros, m)
			// Each macro has a 16-bit input register in its wrapper.
			for bit := 0; bit < 16; bit++ {
				r := b.AddFlop(fmt.Sprintf("%s/d[%d]", path, bit), path)
				b.ConnectAt(m, b.Wire(fmt.Sprintf("%s_n%d", path, bit), r), netlist.DirIn,
					geom.Pt(0, int64(200+bit*100)))
				regs = append(regs, r)
			}
			b.AddComb(path+"/lg", 200_000, path)
		}
		b.AddComb(name+"/glue", 2_000_000, name)
		return regs, macros
	}
	aRegs, _ := addSub("subA")
	bRegs, _ := addSub("subB")

	// 32-bit pipeline A -> B through a glue register stage.
	for bit := 0; bit < 32; bit++ {
		src := aRegs[bit%len(aRegs)]
		mid := b.AddFlop(fmt.Sprintf("xfer/t[%d]", bit), "xfer")
		dst := bRegs[bit%len(bRegs)]
		c1 := b.AddComb(fmt.Sprintf("xc1_%dx", bit), 300, "xfer")
		b.Wire(fmt.Sprintf("xa%d", bit), src, c1)
		b.Wire(fmt.Sprintf("xb%d", bit), c1, mid)
		c2 := b.AddComb(fmt.Sprintf("xc2_%dx", bit), 300, "xfer")
		b.Wire(fmt.Sprintf("xc%d", bit), mid, c2)
		b.Wire(fmt.Sprintf("xd%d", bit), c2, dst)
	}

	// 16 west-edge ports feeding subsystem A registers.
	for bit := 0; bit < 16; bit++ {
		p := b.AddPort(fmt.Sprintf("din[%d]", bit))
		b.SetPortPos(p, geom.Pt(0, int64(10_000+bit*2_000)))
		c := b.AddComb(fmt.Sprintf("pc_%dx", bit), 300, "")
		b.Wire(fmt.Sprintf("pi%d", bit), p, c)
		b.Wire(fmt.Sprintf("pa%d", bit), c, aRegs[bit])
	}
	return b.MustBuild()
}

func TestPlaceEndToEnd(t *testing.T) {
	d := miniSoC(t)
	opt := DefaultOptions()
	opt.Seed = 42
	opt.Trace = true
	res, err := Place(context.Background(), d, opt)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	pl := res.Placement
	if !pl.AllMacrosPlaced() {
		t.Fatal("macros left unplaced")
	}
	if err := pl.MacrosInsideDie(); err != nil {
		t.Fatal(err)
	}
	if ov := pl.MacroOverlapArea(); ov != 0 {
		t.Errorf("macro overlap area = %d, want 0", ov)
	}
	if res.Levels < 3 {
		t.Errorf("Levels = %d, want >= 3 (top + two subsystems)", res.Levels)
	}
	if len(res.Trace) == 0 {
		t.Error("trace requested but empty")
	}
	if res.Trace[0].Depth != 0 || len(res.Trace[0].Blocks) < 2 {
		t.Errorf("top trace level: %+v", res.Trace[0])
	}
}

func TestPlaceDeterministic(t *testing.T) {
	d := miniSoC(t)
	opt := DefaultOptions()
	opt.Seed = 7
	r1, err := Place(context.Background(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Place(context.Background(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range d.Macros() {
		if r1.Placement.Pos[m] != r2.Placement.Pos[m] ||
			r1.Placement.Orient[m] != r2.Placement.Orient[m] {
			t.Fatalf("macro %s nondeterministic: %v/%v vs %v/%v",
				d.Cell(m).Name,
				r1.Placement.Pos[m], r1.Placement.Orient[m],
				r2.Placement.Pos[m], r2.Placement.Orient[m])
		}
	}
}

func TestPlaceSeedMatters(t *testing.T) {
	d := miniSoC(t)
	a, err := Place(context.Background(), d, Options{Seed: 1, Lambda: 0.5, K: 2,
		Decluster: hier.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(context.Background(), d, Options{Seed: 2, Lambda: 0.5, K: 2,
		Decluster: hier.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for _, m := range d.Macros() {
		if a.Placement.Pos[m] != b.Placement.Pos[m] {
			same = false
		}
	}
	if same {
		t.Log("warning: different seeds produced identical placements (possible but suspicious)")
	}
}

func TestPlaceSubsystemCohesion(t *testing.T) {
	// Macros of the same subsystem should cluster: the mean intra-subsystem
	// macro distance must be below the mean inter-subsystem distance.
	d := miniSoC(t)
	opt := DefaultOptions()
	opt.Seed = 3
	res, err := Place(context.Background(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	var subA, subB []geom.Point
	for _, m := range d.Macros() {
		c := res.Placement.Center(m)
		if d.Cell(m).Name[:4] == "subA" {
			subA = append(subA, c)
		} else {
			subB = append(subB, c)
		}
	}
	intra := meanDist(subA, subA) + meanDist(subB, subB)
	inter := 2 * meanDist(subA, subB)
	if intra >= inter {
		t.Errorf("intra-subsystem distance %v not below inter %v", intra, inter)
	}
}

func meanDist(a, b []geom.Point) float64 {
	var sum float64
	n := 0
	for i := range a {
		for j := range b {
			if &a[i] == &b[j] {
				continue
			}
			d := a[i].ManhattanDist(b[j])
			if d == 0 {
				continue
			}
			sum += float64(d)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestPlaceNoMacrosFails(t *testing.T) {
	b := netlist.NewBuilder("nomacro")
	b.AddComb("c", 100, "")
	d := b.MustBuild()
	if _, err := Place(context.Background(), d, DefaultOptions()); err == nil {
		t.Error("expected error for macro-free design")
	}
}

func TestGenerateShapeCurves(t *testing.T) {
	d := miniSoC(t)
	tr := hier.New(d)
	sc := GenerateShapeCurves(context.Background(), tr, 1)

	// Every node with macros has a non-empty curve.
	for i := range d.Hier {
		id := netlist.HierID(i)
		if tr.SubMacros[id] > 0 {
			c, ok := sc.ByNode[id]
			if !ok || c.Empty() {
				t.Errorf("node %s: missing shape curve", d.Node(id).Path)
			}
		} else if _, ok := sc.ByNode[id]; ok {
			t.Errorf("node %s: unexpected curve for macro-free node", d.Node(id).Path)
		}
	}

	// The subsystem curve must be able to hold its four 9000x6000 macros:
	// min area >= 4 * macro area.
	sub := d.NodeByPath("subA")
	c := sc.ByNode[sub]
	if c.MinArea() < 4*9000*6000 {
		t.Errorf("subA curve min area %d below macro area", c.MinArea())
	}
	// And some corner must be achievable in a reasonable bounding box
	// (say within 3x the ideal square side).
	side := int64(1)
	for side*side < 4*9000*6000 {
		side *= 2
	}
	if !c.Fits(3*side, 3*side) {
		t.Errorf("subA curve cannot fit a generous square: %v", c)
	}
}

func TestShapeCurveLeafRotatable(t *testing.T) {
	d := miniSoC(t)
	tr := hier.New(d)
	sc := GenerateShapeCurves(context.Background(), tr, 1)
	for m, c := range sc.ByMacro {
		cell := d.Cell(m)
		if !c.Fits(cell.Width, cell.Height) || !c.Fits(cell.Height, cell.Width) {
			t.Errorf("macro %s curve not rotatable: %v", cell.Name, c)
		}
	}
}

func TestComposePartsTwo(t *testing.T) {
	a := shape.FromBox(10, 20)
	b := shape.FromBox(30, 5)
	c := composeParts(context.Background(), []shape.Curve{a, b}, 1, nil)
	// H composition: 40 x 20; V composition: 30 x 25.
	if !c.Fits(40, 20) || !c.Fits(30, 25) {
		t.Errorf("compose missing realizations: %v", c)
	}
	if c.Fits(29, 19) {
		t.Errorf("compose too optimistic: %v", c)
	}
}

func TestLegalizeMacrosSeparates(t *testing.T) {
	b := netlist.NewBuilder("lg")
	b.SetDie(geom.RectXYWH(0, 0, 10_000, 10_000))
	var ids []netlist.CellID
	for i := 0; i < 4; i++ {
		ids = append(ids, b.AddMacro(fmt.Sprintf("m%d", i), 2_000, 2_000, ""))
	}
	d := b.MustBuild()
	pl := placement.New(d)
	// Stack all four at the same spot.
	for _, id := range ids {
		pl.Place(id, geom.Pt(4_000, 4_000))
	}
	legalize.Macros(pl, d.Die)
	if ov := pl.MacroOverlapArea(); ov != 0 {
		t.Errorf("overlap after legalize = %d", ov)
	}
	if err := pl.MacrosInsideDie(); err != nil {
		t.Error(err)
	}
}

func TestFlippingImprovesPinWL(t *testing.T) {
	// A macro with its pin on the east edge, connected to a port on the
	// west: flipping must mirror the macro so the pin faces west.
	b := netlist.NewBuilder("flip")
	b.SetDie(geom.RectXYWH(0, 0, 10_000, 10_000))
	m := b.AddMacro("m", 2_000, 1_000, "")
	p := b.AddPort("in")
	b.SetPortPos(p, geom.Pt(0, 500))
	n := b.Net("n")
	b.Connect(p, n, netlist.DirOut)
	b.ConnectAt(m, n, netlist.DirIn, geom.Pt(2_000, 500)) // east-edge pin
	d := b.MustBuild()

	pl := placement.New(d)
	pl.Place(m, geom.Pt(4_000, 0))
	before := pl.TotalHPWL()
	flips := flipMacros(pl, nil, nil)
	after := pl.TotalHPWL()
	if flips != 1 {
		t.Errorf("flips = %d, want 1", flips)
	}
	if after >= before {
		t.Errorf("flipping did not improve WL: %d -> %d", before, after)
	}
	if pl.Orient[m] != geom.MY {
		t.Errorf("orientation = %v, want MY", pl.Orient[m])
	}
}

func TestFlatModePlacesAllMacros(t *testing.T) {
	d := miniSoC(t)
	opt := DefaultOptions()
	opt.Flat = true
	opt.Seed = 5
	opt.Trace = true
	res, err := Place(context.Background(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placement.AllMacrosPlaced() {
		t.Fatal("flat mode left macros unplaced")
	}
	if ov := res.Placement.MacroOverlapArea(); ov != 0 {
		t.Errorf("flat overlap = %d", ov)
	}
	if res.Levels != 1 {
		t.Errorf("flat Levels = %d, want 1", res.Levels)
	}
	if len(res.Trace) != 1 || len(res.Trace[0].Blocks) != len(d.Macros()) {
		t.Errorf("flat trace should have one level with one block per macro")
	}
}

// TestTargetAreasGlueAdoption exercises §IV-C (Fig. 6) directly: glue
// cells join their BFS-nearest block's target area.
func TestTargetAreasGlueAdoption(t *testing.T) {
	b := netlist.NewBuilder("ta")
	b.SetDie(geom.RectXYWH(0, 0, 200_000, 200_000))
	// Two macro blocks; glue g1 wired to block A, glue g2 wired to block B,
	// orphan glue g3 connected to nothing.
	mA := b.AddMacro("A/mem", 10_000, 10_000, "A")
	mB := b.AddMacro("B/mem", 10_000, 10_000, "B")
	rA := b.AddFlop("A/r[0]", "A")
	rB := b.AddFlop("B/r[0]", "B")
	b.Wire("na", rA, mA)
	b.Wire("nb", rB, mB)
	g1 := b.AddComb("glue/g1", 40_000_000, "glue")
	g2 := b.AddComb("glue/g2", 40_000_000, "glue")
	b.AddComb("glue/g3", 10_000_000, "glue")
	b.Wire("ng1", rA, g1)
	b.Wire("ng2", rB, g2)
	d := b.MustBuild()

	st := &flowState{
		d:    d,
		tree: hier.New(d),
		bp:   graphBipartite(d),
	}
	decl := st.tree.Decluster(d.Root(), hier.DefaultParams())
	if len(decl.Blocks) != 2 {
		t.Fatalf("blocks = %d, want A and B", len(decl.Blocks))
	}
	at := st.targetAreas(decl)
	for i := range decl.Blocks {
		// Each block's target area grew by its adopted glue (~40M) plus a
		// half share of the 10M orphan.
		extra := at[i] - decl.Blocks[i].Area
		if extra < 40_000_000 || extra > 50_000_000 {
			t.Errorf("block %s adopted %d glue area, want ~45M", decl.Blocks[i].Name, extra)
		}
	}
}

func graphBipartite(d *netlist.Design) *graph.Bipartite { return graph.BipartiteFromDesign(d) }
