package core

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/sched"
)

// fingerprint serializes everything observable about a placement run —
// macro positions and orientations, level count, flips, the full trace,
// and the complete progress-event stream in delivery order — so two runs
// can be compared byte for byte.
func fingerprint(t *testing.T, par, batch int) string {
	t.Helper()
	d := miniSoC(t)
	opt := DefaultOptions()
	opt.Seed = 42
	opt.Trace = true
	opt.Restarts = 3 // chain tasks join subtree tasks in the same pool
	opt.Parallelism = par
	opt.Batch = batch
	var sb strings.Builder
	opt.Progress = func(ev Progress) { fmt.Fprintf(&sb, "ev %+v\n", ev) }
	res, err := Place(context.Background(), d, opt)
	if err != nil {
		t.Fatalf("Place(par=%d): %v", par, err)
	}
	fmt.Fprintf(&sb, "levels %d flips %d\n", res.Levels, res.Flips)
	for _, tl := range res.Trace {
		fmt.Fprintf(&sb, "trace %+v\n", tl)
	}
	for _, m := range d.Macros() {
		fmt.Fprintf(&sb, "macro %d %v %v %v\n", m, res.Placement.Pos[m], res.Placement.Orient[m], res.Placement.Placed[m])
	}
	return sb.String()
}

// TestPlaceDeterminismMatrix is the scheduler's central promise: the
// placement, the trace, and the progress-event stream are byte-identical
// at every combination of scheduler width, GOMAXPROCS, and speculative
// batch size. Run under -race in CI, it also proves the fork-join
// recursion and the batched scoring fan-out are race-free.
func TestPlaceDeterminismMatrix(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	want := ""
	for _, procs := range []int{1, 4, 16} {
		runtime.GOMAXPROCS(procs)
		for _, par := range []int{1, 2, 8} {
			for _, batch := range []int{1, 4} {
				got := fingerprint(t, par, batch)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("GOMAXPROCS=%d parallelism=%d batch=%d: run fingerprint differs from serial reference\n--- got ---\n%s\n--- want ---\n%s",
						procs, par, batch, got, want)
				}
			}
		}
	}
}

// TestPlaceSchedBorrowedPool: a caller-supplied pool (the flows harness
// shares one across candidates) must produce the same placement as the
// pool Place builds for itself.
func TestPlaceSchedBorrowedPool(t *testing.T) {
	own := fingerprint(t, 4, 1)

	d := miniSoC(t)
	pool := sched.NewPool(4)
	defer pool.Close()
	opt := DefaultOptions()
	opt.Seed = 42
	opt.Trace = true
	opt.Restarts = 3
	opt.Sched = pool
	var sb strings.Builder
	opt.Progress = func(ev Progress) { fmt.Fprintf(&sb, "ev %+v\n", ev) }
	res, err := Place(context.Background(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&sb, "levels %d flips %d\n", res.Levels, res.Flips)
	for _, tl := range res.Trace {
		fmt.Fprintf(&sb, "trace %+v\n", tl)
	}
	for _, m := range d.Macros() {
		fmt.Fprintf(&sb, "macro %d %v %v %v\n", m, res.Placement.Pos[m], res.Placement.Orient[m], res.Placement.Placed[m])
	}
	if sb.String() != own {
		t.Fatal("borrowed-pool placement differs from own-pool placement")
	}
}
