package core

import (
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/placement"
)

// flipMacros is the orientation post-process of Algorithm 1 (line 6,
// "memory flipping"): every placed macro greedily takes the
// outline-preserving orientation (identity, mirror-X, mirror-Y, 180°) that
// minimizes the wirelength of its incident nets, using exact pin offsets
// for placed cells and block-center estimates for cells the flow has not
// placed yet ("macro side dataflow"). Passes repeat until no macro flips.
// Returns the number of orientation changes applied.
func flipMacros(pl *placement.Placement, approx []geom.Point, hasApx []bool) int {
	d := pl.D
	macros := d.Macros()
	flips := 0
	for pass := 0; pass < 4; pass++ {
		changed := false
		for _, m := range macros {
			if !pl.Placed[m] {
				continue
			}
			if flipOneMacro(pl, m, approx, hasApx) {
				flips++
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return flips
}

// span tracks the bounding interval of a point set on one axis.
type span struct{ lo, hi int64 }

func (s *span) extendPoint(v int64, first bool) {
	if first || v < s.lo {
		s.lo = v
	}
	if first || v > s.hi {
		s.hi = v
	}
}

// flipOneMacro tries the four outline-preserving orientations of one macro
// and keeps the best. Reports whether the orientation changed.
func flipOneMacro(pl *placement.Placement, m netlist.CellID, approx []geom.Point, hasApx []bool) bool {
	d := pl.D
	base := pl.Orient[m]
	candidates := [4]geom.Orient{
		base,
		base.FlipX(),
		base.FlipY(),
		base.FlipX().FlipY(),
	}

	// Precompute, per incident net, the bounding spans of the other
	// endpoints (orientation-independent) and this macro's pin offset.
	type netCtx struct {
		x, y   span
		others int
		pin    geom.Point // this macro's pin library offset
	}
	var nets []netCtx
	for _, pid := range d.Cell(m).Pins {
		pin := d.Pin(pid)
		ctx := netCtx{pin: pin.Offset}
		for _, qid := range d.Net(pin.Net).Pins {
			q := d.Pin(qid)
			if q.Cell == m {
				continue
			}
			var p geom.Point
			switch {
			case pl.Placed[q.Cell]:
				p = pl.PinPos(qid)
			case hasApx != nil && hasApx[q.Cell]:
				p = approx[q.Cell]
			default:
				continue
			}
			first := ctx.others == 0
			ctx.x.extendPoint(p.X, first)
			ctx.y.extendPoint(p.Y, first)
			ctx.others++
		}
		if ctx.others > 0 {
			nets = append(nets, ctx)
		}
	}
	if len(nets) == 0 {
		return false
	}

	c := d.Cell(m)
	pos := pl.Pos[m]
	cost := func(o geom.Orient) int64 {
		var sum int64
		for i := range nets {
			pp := pos.Add(o.Apply(nets[i].pin, c.Width, c.Height))
			x, y := nets[i].x, nets[i].y
			x.extendPoint(pp.X, false)
			y.extendPoint(pp.Y, false)
			sum += (x.hi - x.lo) + (y.hi - y.lo)
		}
		return sum
	}

	bestO := base
	bestC := cost(base)
	for _, o := range candidates[1:] {
		if cand := cost(o); cand < bestC {
			bestC = cand
			bestO = o
		}
	}
	if bestO == base {
		return false
	}
	pl.PlaceOriented(m, pos, bestO)
	return true
}
