package core

import (
	"context"
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/layout"
	"repro/internal/legalize"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/seqgraph"
	"repro/internal/slicing"
)

// Progress stages reported to Options.Progress.
const (
	// StageLevel reports one floorplanned recursion level.
	StageLevel = "level"
	// StageFlips reports the macro-flipping post-process.
	StageFlips = "flips"
	// StageCandidate reports one evaluated candidate of a multi-candidate
	// run (emitted by the flows harness, not by Place itself).
	StageCandidate = "candidate"
)

// Progress is one event of a running placement, delivered to the
// Options.Progress callback so long runs can stream status.
type Progress struct {
	// Stage is one of the Stage* constants.
	Stage string
	// Path, Depth and Blocks describe the floorplanned level (StageLevel).
	Path   string
	Depth  int
	Blocks int
	// Level counts floorplanned levels so far.
	Level int
	// Candidate / Candidates index a multi-candidate run (StageCandidate).
	Candidate  int
	Candidates int
	// Lambda is the dataflow blend of the run or candidate.
	Lambda float64
	// Flips counts orientation changes (StageFlips).
	Flips int
}

// ProgressFunc receives placement progress events. Callbacks must be fast
// and must not retain the event past the call; they may be invoked from the
// goroutine running the placement. Place delivers StageLevel events in the
// canonical depth-first order of the recursion whatever the Parallelism:
// levels solved before the recursion first forks stream live (so callbacks
// see progress and can cancel mid-run), the rest buffer inside their
// subtree task and replay at the join.
type ProgressFunc func(Progress)

// Options configures the HiDaP flow.
type Options struct {
	// Lambda blends block flow (λ) against macro flow (1−λ); the paper
	// evaluates λ ∈ {0.2, 0.5, 0.8} and keeps the best wirelength.
	Lambda float64
	// K is the latency decay exponent of the affinity score (default 2).
	K float64
	// Decluster sets the open/min area fractions (paper: 1% / 40%).
	Decluster hier.Params
	// Seq sets Gseq construction parameters.
	Seq seqgraph.Params
	// SeqGraph optionally supplies a prebuilt sequential graph for the
	// design; the flow then skips seqgraph.Build. The caller asserts the
	// graph was built from the same design with the same Seq parameters
	// (a serving engine caches one graph per design and reuses it across
	// jobs; the graph is read-only during placement, so sharing is safe).
	SeqGraph *seqgraph.Graph
	// Tree optionally supplies the prebuilt hierarchy tree of the design,
	// skipping hier.New. Same contract as SeqGraph: built from this design,
	// shared read-only.
	Tree *hier.Tree
	// Bipartite optionally supplies the prebuilt cell–net bipartite graph
	// of the design, skipping graph.BipartiteFromDesign. Same contract as
	// SeqGraph.
	Bipartite *graph.Bipartite
	// Pool optionally shares annealing scratch (incremental slicing
	// evaluators) across levels and runs; see layout.Options.Pool.
	Pool *slicing.EvaluatorPool
	// Effort selects the annealing budget per level.
	Effort layout.Effort
	// Restarts runs this many independent annealing chains per level solve,
	// keeping the best (see layout.Options.Restarts; <= 1 means one chain).
	Restarts int
	// Parallelism sizes the work-stealing scheduler the whole solve DAG —
	// sibling subtrees of the hierarchy and the restart chains of every
	// level — drains through: 1 keeps the run on the calling goroutine,
	// <= 0 uses runtime.GOMAXPROCS(0), and anything else starts that many
	// lanes. The placement is a pure function of (Seed, Lambda, Restarts,
	// Effort) regardless of this value: tasks are indexed, seeded from
	// stable task paths (sched.Derive), and reduced in index order.
	// Ignored when Sched is set.
	Parallelism int
	// Sched, when set, borrows an existing work-stealing pool instead of
	// creating one per Place call; a multi-candidate sweep passes its pool
	// here so candidates, subtrees and chains share one set of lanes.
	Sched *sched.Pool
	// Batch sizes the speculative proposal groups of every level's
	// annealing chains (see layout.Options.Batch): <= 1 keeps the serial
	// engine, larger values let reject streaks score up to Batch
	// candidates against one frozen state per step. The placement is
	// byte-identical at any value.
	Batch int
	// Eval sets the slicing evaluation penalties.
	Eval slicing.EvalParams
	// Seed drives all stochastic steps; equal seeds give equal floorplans.
	Seed int64
	// Trace records the per-level block floorplans (Fig. 1 evolution).
	Trace bool
	// Flat disables the multi-level recursion: every macro becomes its own
	// block in a single floorplanning instance. This is the ablation for
	// the paper's first contribution (multi-level placement with
	// hierarchy-aware declustering); dataflow affinity is still used.
	Flat bool
	// Progress, when set, receives one event per floorplanned level and one
	// for the flipping post-process.
	Progress ProgressFunc
}

// DefaultOptions mirrors the paper's defaults.
func DefaultOptions() Options {
	return Options{
		Lambda:    0.5,
		K:         2,
		Decluster: hier.DefaultParams(),
		Seq:       seqgraph.DefaultParams(),
		Effort:    layout.EffortMedium,
		Eval:      slicing.DefaultEvalParams(),
	}
}

// TraceBlock is one block of a traced level.
type TraceBlock struct {
	Name       string
	Rect       geom.Rect
	MacroCount int
}

// LevelTrace captures one recursion level for visualization (Fig. 1).
type LevelTrace struct {
	Path   string
	Depth  int
	Region geom.Rect
	Blocks []TraceBlock
}

// Result is a finished HiDaP macro placement.
type Result struct {
	// Placement holds macro and port positions/orientations.
	Placement *placement.Placement
	// Trace lists the per-level block floorplans when Options.Trace is set.
	Trace []LevelTrace
	// Levels counts floorplanned recursion levels.
	Levels int
	// SeqStats reports the Gseq size (Table I).
	SeqStats seqgraph.Stats
	// Flips counts orientation changes made by the flipping post-process.
	Flips int
}

// flowState carries the per-run context through the recursion. Everything
// here is either read-only during the recursion (design, graphs, curves,
// options) or written at disjoint indices by disjoint subtree tasks (the
// placement: every macro belongs to exactly one subtree).
type flowState struct {
	d     *netlist.Design
	tree  *hier.Tree
	sg    *seqgraph.Graph
	sc    *ShapeCurves
	bp    *graph.Bipartite
	pl    *placement.Placement
	opt   Options
	res   *Result
	sched *sched.Pool
}

// view is one task's sight of the evolving position estimates: per-cell
// approximations (block centers, refined to exact centers once a macro is
// fixed) and whether a cell's macro has actually been placed. Parallel
// sibling subtrees each work on a frozen clone taken at fork time — a
// sibling's deeper refinements are invisible until the join, which is what
// makes the result independent of scheduling (the paper's recursion treats
// sibling subtrees as independent subproblems; cross-subtree attraction
// comes from the parent level's block centers, which the clone carries).
type view struct {
	approx []geom.Point
	hasApx []bool
	placed []bool // mirrors placement.Placed for cells this view has seen fixed
}

func newView(n int) *view {
	return &view{approx: make([]geom.Point, n), hasApx: make([]bool, n), placed: make([]bool, n)}
}

func (v *view) clone() *view {
	return &view{
		approx: append([]geom.Point(nil), v.approx...),
		hasApx: append([]bool(nil), v.hasApx...),
		placed: append([]bool(nil), v.placed...),
	}
}

// absorb copies a child task's estimates back for the cells the child owned
// (its block's subtree cells). Sibling cell sets are disjoint, so absorbing
// the children in block order is conflict-free and order-canonical.
func (v *view) absorb(sub *view, cells []netlist.CellID) {
	for _, cid := range cells {
		v.approx[cid] = sub.approx[cid]
		v.hasApx[cid] = sub.hasApx[cid]
		v.placed[cid] = sub.placed[cid]
	}
}

// subRun buffers everything one subtree task produces — its view of the
// estimates, trace entries, progress events (with subtree-local level
// numbers) and level count — so the parent can merge the children in block
// order and reproduce the serial depth-first result exactly.
type subRun struct {
	view   *view
	trace  []LevelTrace
	events []Progress
	levels int
	err    error
	// live marks the root task's spine: every level solved before the
	// first fork is the canonical prefix of the event stream whatever the
	// scheduling, so those events stream to the callback as they happen (a
	// long run shows progress, and a callback can cancel mid-run); forked
	// subtrees buffer instead and replay at the join.
	live bool
}

// event delivers one progress event: immediately on the live spine,
// buffered otherwise.
func (run *subRun) event(st *flowState, ev Progress) {
	if run.live {
		st.emit(ev)
		return
	}
	run.events = append(run.events, ev)
}

// Place runs the complete HiDaP flow (Algorithm 1) on a design: hierarchy
// tree, shape curves, recursive block floorplan, and macro flipping. A
// cancelled or expired ctx aborts the run promptly (between annealing moves)
// and returns ctx.Err().
func Place(ctx context.Context, d *netlist.Design, opt Options) (*Result, error) {
	if len(d.Macros()) == 0 {
		return nil, fmt.Errorf("core: design %q has no macros to place", d.Name)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opt.K == 0 {
		opt.K = 2
	}
	if opt.Decluster.MinAreaFrac == 0 {
		opt.Decluster = hier.DefaultParams()
	}
	if opt.Eval.CompactPoints == 0 {
		opt.Eval = slicing.DefaultEvalParams()
	}

	sg := opt.SeqGraph
	if sg == nil {
		sg = seqgraph.Build(d, opt.Seq)
	}
	tree := opt.Tree
	if tree == nil {
		tree = hier.New(d)
	}
	bp := opt.Bipartite
	if bp == nil {
		bp = graph.BipartiteFromDesign(d)
	}
	st := &flowState{
		d:    d,
		tree: tree,
		sg:   sg,
		bp:   bp,
		pl:   placement.New(d),
		opt:  opt,
		res:  &Result{},
	}
	st.sched = opt.Sched
	if st.sched == nil && opt.Parallelism != 1 {
		st.sched = sched.NewPool(opt.Parallelism)
		defer st.sched.Close()
	}
	st.sc = generateShapeCurves(ctx, st.tree, opt.Seed, opt.Pool)
	st.res.SeqStats = st.sg.Stats()

	root := &subRun{view: newView(len(d.Cells)), live: true}
	var err error
	if opt.Flat {
		err = st.flatPlace(ctx, d.Die, root)
	} else {
		err = st.recurse(ctx, d.Root(), d.Die, 0, root)
	}
	if err != nil {
		return nil, err
	}
	st.res.Levels = root.levels
	if opt.Trace {
		st.res.Trace = root.trace
	}

	if !st.pl.AllMacrosPlaced() {
		return nil, fmt.Errorf("core: flow left macros unplaced")
	}
	legalize.Macros(st.pl, d.Die)
	st.res.Flips = flipMacros(st.pl, root.view.approx, root.view.hasApx)
	st.res.Placement = st.pl
	// Replay the buffered level events (the root spine already streamed
	// live) in canonical depth-first order, then close with the flips
	// stage: the stream is identical at any Parallelism.
	for _, ev := range root.events {
		st.emit(ev)
	}
	st.emit(Progress{Stage: StageFlips, Level: st.res.Levels, Lambda: opt.Lambda, Flips: st.res.Flips})
	return st.res, nil
}

// emit delivers one progress event when a callback is registered.
func (st *flowState) emit(ev Progress) {
	if st.opt.Progress != nil {
		st.opt.Progress(ev)
	}
}

// recurse is Algorithm 2: floorplan the blocks of one hierarchy level
// inside region, then recurse into multi-macro blocks. It runs as one task
// of the solve DAG, writing only into run (its own buffers) and the
// disjoint placement slots of its subtree; multi-macro children fork as
// sibling tasks on frozen view clones and merge back in block order, so
// the result is byte-identical to the serial depth-first execution.
func (st *flowState) recurse(ctx context.Context, nh netlist.HierID, region geom.Rect, depth int, run *subRun) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	d := st.d
	decl := st.tree.Decluster(nh, st.opt.Decluster)
	if len(decl.Blocks) == 0 {
		return nil
	}
	run.levels++

	if len(decl.Blocks) == 1 {
		// A level that cannot be partitioned further: place its macros
		// directly (wrapper collapse already tried to open it).
		b := &decl.Blocks[0]
		for _, m := range b.MacroCells {
			st.fixSingleMacro(m, region, nil, nil, 0, nil, run.view)
		}
		return nil
	}

	at := st.targetAreas(decl)
	gdf := dataflow.Build(st.sg, decl)
	aff := gdf.Affinity(dataflow.Params{Lambda: st.opt.Lambda, K: st.opt.K})

	prob := &layout.Problem{Region: region, Affinity: aff}
	for i := range decl.Blocks {
		b := &decl.Blocks[i]
		prob.Blocks = append(prob.Blocks, layout.BlockSpec{
			Name: b.Name,
			Block: slicing.Block{
				Curve:      st.sc.Curve(b),
				MinArea:    b.Area,
				TargetArea: at[i],
			},
		})
	}
	for i := len(decl.Blocks); i < len(gdf.Nodes); i++ {
		prob.Terminals = append(prob.Terminals, layout.Terminal{
			Name: gdf.Nodes[i].Name,
			Pos:  st.terminalPos(gdf, i, run.view),
		})
	}

	opt := layout.Options{
		Seed: sched.Derive(st.opt.Seed, int64(nh)), Effort: st.opt.Effort, Eval: st.opt.Eval, Pool: st.opt.Pool,
		Restarts: st.opt.Restarts, Sched: st.sched, Batch: st.opt.Batch,
	}
	sol := layout.Solve(ctx, prob, opt)
	if err := ctx.Err(); err != nil {
		return err
	}
	run.event(st, Progress{
		Stage: StageLevel, Path: d.Node(nh).Path, Depth: depth,
		Blocks: len(decl.Blocks), Level: run.levels, Lambda: st.opt.Lambda,
	})

	// Refresh position estimates: every cell of block i now lives at the
	// center of the block's rectangle; glue cells at the region center.
	v := run.view
	for i := range decl.Blocks {
		c := sol.Rects[i].Center()
		for _, cid := range decl.Blocks[i].Cells {
			v.approx[cid] = c
			v.hasApx[cid] = true
		}
	}
	for ci := range decl.CellBlock {
		if decl.CellBlock[ci] == hier.Glue && !v.hasApx[ci] {
			v.approx[ci] = region.Center()
			v.hasApx[ci] = true
		}
	}

	if st.opt.Trace {
		tl := LevelTrace{Path: d.Node(nh).Path, Depth: depth, Region: region}
		for i := range decl.Blocks {
			tl.Blocks = append(tl.Blocks, TraceBlock{
				Name:       decl.Blocks[i].Name,
				Rect:       sol.Rects[i],
				MacroCount: decl.Blocks[i].MacroCount(),
			})
		}
		run.trace = append(run.trace, tl)
	}

	// Descend (Algorithm 2, lines 7-11), in two phases so the result does
	// not depend on scheduling: first every single-macro block is fixed
	// serially in block order (these are cheap corner placements), then the
	// multi-macro blocks — the expensive recursive subproblems — run as
	// sibling tasks, each on a clone of the view as it stands right here.
	// Cloning even in the serial case keeps the semantics identical at any
	// Parallelism: a sibling never sees another sibling's deeper
	// refinements, only the block centers this level just computed.
	var children []int
	for i := range decl.Blocks {
		b := &decl.Blocks[i]
		switch {
		case b.MacroCount() == 0:
			// Soft block: standard cells only, placed later by the cell
			// placer; nothing to fix here.
		case b.MacroCount() == 1:
			st.fixSingleMacro(b.MacroCells[0], sol.Rects[i], gdf, aff, int32(i), sol, v)
		default:
			children = append(children, i)
		}
	}
	if len(children) == 0 {
		return nil
	}
	if len(children) == 1 {
		// One child sees exactly the view a clone would carry; recurse in
		// place and let it extend this task's buffers directly.
		i := children[0]
		return st.recurse(ctx, decl.Blocks[i].Node, sol.Rects[i], depth+1, run)
	}
	subs := make([]*subRun, len(children))
	for k := range children {
		subs[k] = &subRun{view: v.clone()}
	}
	if st.sched == nil {
		for k, i := range children {
			sub := subs[k]
			sub.err = st.recurse(ctx, decl.Blocks[i].Node, sol.Rects[i], depth+1, sub)
		}
	} else {
		g := st.sched.Group(ctx)
		for k, i := range children {
			sub, b, r := subs[k], &decl.Blocks[i], sol.Rects[i]
			g.Go(func(ctx context.Context) {
				sub.err = st.recurse(ctx, b.Node, r, depth+1, sub)
			})
		}
		g.Wait() // a cancelled ctx still drains; errors are read per-child below
	}
	// Merge the children in block order: level numbers shift by the levels
	// accumulated so far, traces and events concatenate, and each child's
	// view writes back over exactly its block's subtree cells (disjoint
	// across siblings). Errors surface in block order too, so the reported
	// error does not depend on scheduling.
	for k, i := range children {
		sub := subs[k]
		if sub.err != nil {
			return sub.err
		}
		for e := range sub.events {
			sub.events[e].Level += run.levels
		}
		run.events = append(run.events, sub.events...)
		run.trace = append(run.trace, sub.trace...)
		run.levels += sub.levels
		v.absorb(sub.view, decl.Blocks[i].Cells)
	}
	return ctx.Err()
}

// flatPlace is the single-level ablation: one layout instance whose blocks
// are the individual macros; all standard cells are glue.
func (st *flowState) flatPlace(ctx context.Context, region geom.Rect, run *subRun) error {
	d := st.d
	decl := &hier.Result{CellBlock: make([]int32, len(d.Cells))}
	for i := range decl.CellBlock {
		decl.CellBlock[i] = hier.Glue
	}
	for _, m := range d.Macros() {
		c := d.Cell(m)
		decl.CellBlock[m] = int32(len(decl.Blocks))
		decl.Blocks = append(decl.Blocks, hier.Block{
			Name:       c.Name,
			Node:       netlist.None,
			Macro:      m,
			Cells:      []netlist.CellID{m},
			MacroCells: []netlist.CellID{m},
			Area:       c.Area(),
		})
	}
	for i := range d.Cells {
		if d.Cells[i].Kind == netlist.KindPort {
			decl.CellBlock[i] = hier.Outside
		} else if decl.CellBlock[i] == hier.Glue {
			decl.GlueArea += d.Cells[i].Area()
		}
	}
	run.levels = 1

	at := st.targetAreas(decl)
	gdf := dataflow.Build(st.sg, decl)
	aff := gdf.Affinity(dataflow.Params{Lambda: st.opt.Lambda, K: st.opt.K})

	prob := &layout.Problem{Region: region, Affinity: aff}
	for i := range decl.Blocks {
		b := &decl.Blocks[i]
		prob.Blocks = append(prob.Blocks, layout.BlockSpec{
			Name: b.Name,
			Block: slicing.Block{
				Curve:      st.sc.Curve(b),
				MinArea:    b.Area,
				TargetArea: at[i],
			},
		})
	}
	for i := len(decl.Blocks); i < len(gdf.Nodes); i++ {
		prob.Terminals = append(prob.Terminals, layout.Terminal{
			Name: gdf.Nodes[i].Name,
			Pos:  st.terminalPos(gdf, i, run.view),
		})
	}
	sol := layout.Solve(ctx, prob, layout.Options{
		Seed: st.opt.Seed, Effort: st.opt.Effort, Eval: st.opt.Eval, Pool: st.opt.Pool,
		Restarts: st.opt.Restarts, Sched: st.sched, Batch: st.opt.Batch,
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	run.event(st, Progress{Stage: StageLevel, Path: "(flat)", Blocks: len(decl.Blocks), Level: 1, Lambda: st.opt.Lambda})
	for i := range decl.Blocks {
		st.fixSingleMacro(decl.Blocks[i].MacroCells[0], sol.Rects[i], gdf, aff, int32(i), sol, run.view)
	}
	if st.opt.Trace {
		tl := LevelTrace{Path: "(flat)", Depth: 0, Region: region}
		for i := range decl.Blocks {
			tl.Blocks = append(tl.Blocks, TraceBlock{Name: decl.Blocks[i].Name, Rect: sol.Rects[i], MacroCount: 1})
		}
		run.trace = append(run.trace, tl)
	}
	return nil
}

// targetAreas implements §IV-C: glue cells adopt their BFS-nearest block,
// and each block's target area is its own area plus the adopted glue.
func (st *flowState) targetAreas(decl *hier.Result) []int64 {
	d := st.d
	var seeds, seedLabels []int32
	for i := range decl.Blocks {
		for _, cid := range decl.Blocks[i].Cells {
			seeds = append(seeds, int32(cid))
			seedLabels = append(seedLabels, int32(i))
		}
	}
	labels, _ := st.bp.MultiSourceLabel(seeds, seedLabels)

	at := make([]int64, len(decl.Blocks))
	var blockArea int64
	for i := range decl.Blocks {
		at[i] = decl.Blocks[i].Area
		blockArea += decl.Blocks[i].Area
	}
	var orphan int64
	for ci, m := range decl.CellBlock {
		if m != hier.Glue {
			continue
		}
		area := d.Cell(netlist.CellID(ci)).Area()
		if l := labels[ci]; l >= 0 {
			at[l] += area
		} else {
			orphan += area
		}
	}
	// Unreachable glue: spread proportionally to block area.
	if orphan > 0 && blockArea > 0 {
		for i := range at {
			at[i] += orphan * decl.Blocks[i].Area / blockArea
		}
	}
	return at
}

// terminalPos estimates the fixed position of a Gdf terminal node from the
// task's view. A placed macro's view approximation equals its exact placed
// center (fixSingleMacro writes both), so reading the view covers the
// placed case too — without racing on placement slots other tasks own.
func (st *flowState) terminalPos(gdf *dataflow.Graph, node int, v *view) geom.Point {
	n := &gdf.Nodes[node]
	var sx, sy, cnt int64
	for _, si := range n.Seq {
		for _, cid := range st.sg.Nodes[si].Cells {
			var p geom.Point
			switch {
			case st.d.Cell(cid).Kind == netlist.KindPort:
				p = st.d.PortPos(cid)
			case v.hasApx[cid]:
				p = v.approx[cid]
			default:
				p = st.d.Die.Center()
			}
			sx += p.X
			sy += p.Y
			cnt++
		}
	}
	if cnt == 0 {
		return st.d.Die.Center()
	}
	return geom.Pt(sx/cnt, sy/cnt)
}

// fixSingleMacro places one macro inside its block rectangle, in the corner
// that minimizes the affinity-weighted distance to its Gdf counterparts
// (Algorithm 2, line 11). gdf/sol may be nil for degenerate levels, in
// which case the macro centers in the region.
func (st *flowState) fixSingleMacro(m netlist.CellID, r geom.Rect, gdf *dataflow.Graph, aff [][]float64, blockIdx int32, sol *layout.Result, v *view) {
	c := st.d.Cell(m)
	// Choose the orientation whose outline fits the rectangle best.
	orients := []geom.Orient{geom.R0, geom.R90}
	bestOrient := geom.R0
	bestFit := int64(-1)
	for _, o := range orients {
		w, h := o.Dims(c.Width, c.Height)
		overW := max64(0, w-r.W)
		overH := max64(0, h-r.H)
		fit := overW + overH
		if bestFit < 0 || fit < bestFit {
			bestFit = fit
			bestOrient = o
		}
	}
	w, h := bestOrient.Dims(c.Width, c.Height)

	// Candidate anchor points: four corners and the center.
	candidates := []geom.Rect{
		geom.RectXYWH(r.X, r.Y, w, h),
		geom.RectXYWH(r.X2()-w, r.Y, w, h),
		geom.RectXYWH(r.X, r.Y2()-h, w, h),
		geom.RectXYWH(r.X2()-w, r.Y2()-h, w, h),
		geom.RectXYWH(r.X+(r.W-w)/2, r.Y+(r.H-h)/2, w, h),
	}
	best := candidates[0]
	bestCost := float64(-1)
	for _, cand := range candidates {
		cand = cand.ClampInside(st.d.Die)
		cost := st.macroAttraction(cand.Center(), gdf, aff, blockIdx, sol, v)
		if bestCost < 0 || cost < bestCost {
			bestCost = cost
			best = cand
		}
	}
	st.pl.PlaceOriented(m, geom.Pt(best.X, best.Y), bestOrient)
	// The view approximation must equal the placed center exactly — the
	// view stands in for placement reads everywhere in this flow.
	v.approx[m] = best.Center()
	v.hasApx[m] = true
	v.placed[m] = true
}

// macroAttraction scores a candidate macro position against the affinity
// row of its block.
func (st *flowState) macroAttraction(p geom.Point, gdf *dataflow.Graph, aff [][]float64, blockIdx int32, sol *layout.Result, v *view) float64 {
	if gdf == nil || sol == nil {
		// No dataflow context: all candidates tie at zero and the first
		// (lower-left corner) wins.
		return 0
	}
	var cost float64
	for j := range gdf.Nodes {
		w := aff[blockIdx][j]
		if w == 0 || int32(j) == blockIdx {
			continue
		}
		cost += w * float64(p.ManhattanDist(st.counterpartPos(gdf, j, sol, v)))
	}
	return cost
}

// counterpartPos locates a Gdf node for corner scoring: macros the task has
// seen fixed (earlier single-macro siblings at this level) count with their
// real positions via the view, others with their block rectangle centers.
func (st *flowState) counterpartPos(gdf *dataflow.Graph, j int, sol *layout.Result, v *view) geom.Point {
	if j >= len(sol.Rects) {
		return st.terminalPos(gdf, j, v)
	}
	var sx, sy, cnt int64
	for _, si := range gdf.Nodes[j].Seq {
		if st.sg.Nodes[si].Kind != seqgraph.KindMacro {
			continue
		}
		cid := st.sg.Nodes[si].Cells[0]
		if v.placed[cid] {
			p := v.approx[cid] // == the placed center, set by fixSingleMacro
			sx += p.X
			sy += p.Y
			cnt++
		}
	}
	if cnt > 0 {
		return geom.Pt(sx/cnt, sy/cnt)
	}
	return sol.Rects[j].Center()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
