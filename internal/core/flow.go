package core

import (
	"context"
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/layout"
	"repro/internal/legalize"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/seqgraph"
	"repro/internal/slicing"
)

// Progress stages reported to Options.Progress.
const (
	// StageLevel reports one floorplanned recursion level.
	StageLevel = "level"
	// StageFlips reports the macro-flipping post-process.
	StageFlips = "flips"
	// StageCandidate reports one evaluated candidate of a multi-candidate
	// run (emitted by the flows harness, not by Place itself).
	StageCandidate = "candidate"
)

// Progress is one event of a running placement, delivered to the
// Options.Progress callback so long runs can stream status.
type Progress struct {
	// Stage is one of the Stage* constants.
	Stage string
	// Path, Depth and Blocks describe the floorplanned level (StageLevel).
	Path   string
	Depth  int
	Blocks int
	// Level counts floorplanned levels so far.
	Level int
	// Candidate / Candidates index a multi-candidate run (StageCandidate).
	Candidate  int
	Candidates int
	// Lambda is the dataflow blend of the run or candidate.
	Lambda float64
	// Flips counts orientation changes (StageFlips).
	Flips int
}

// ProgressFunc receives placement progress events. Callbacks must be fast
// and must not retain the event past the call; they may be invoked from the
// goroutine running the placement.
type ProgressFunc func(Progress)

// Options configures the HiDaP flow.
type Options struct {
	// Lambda blends block flow (λ) against macro flow (1−λ); the paper
	// evaluates λ ∈ {0.2, 0.5, 0.8} and keeps the best wirelength.
	Lambda float64
	// K is the latency decay exponent of the affinity score (default 2).
	K float64
	// Decluster sets the open/min area fractions (paper: 1% / 40%).
	Decluster hier.Params
	// Seq sets Gseq construction parameters.
	Seq seqgraph.Params
	// SeqGraph optionally supplies a prebuilt sequential graph for the
	// design; the flow then skips seqgraph.Build. The caller asserts the
	// graph was built from the same design with the same Seq parameters
	// (a serving engine caches one graph per design and reuses it across
	// jobs; the graph is read-only during placement, so sharing is safe).
	SeqGraph *seqgraph.Graph
	// Tree optionally supplies the prebuilt hierarchy tree of the design,
	// skipping hier.New. Same contract as SeqGraph: built from this design,
	// shared read-only.
	Tree *hier.Tree
	// Bipartite optionally supplies the prebuilt cell–net bipartite graph
	// of the design, skipping graph.BipartiteFromDesign. Same contract as
	// SeqGraph.
	Bipartite *graph.Bipartite
	// Pool optionally shares annealing scratch (incremental slicing
	// evaluators) across levels and runs; see layout.Options.Pool.
	Pool *slicing.EvaluatorPool
	// Effort selects the annealing budget per level.
	Effort layout.Effort
	// Restarts runs this many independent annealing chains per level solve,
	// keeping the best (see layout.Options.Restarts; <= 1 means one chain).
	Restarts int
	// RestartWorkers caps the concurrency of per-level restart chains
	// (layout.Options.Workers); the placement is a pure function of
	// (Seed, Restarts) regardless of this value.
	RestartWorkers int
	// Eval sets the slicing evaluation penalties.
	Eval slicing.EvalParams
	// Seed drives all stochastic steps; equal seeds give equal floorplans.
	Seed int64
	// Trace records the per-level block floorplans (Fig. 1 evolution).
	Trace bool
	// Flat disables the multi-level recursion: every macro becomes its own
	// block in a single floorplanning instance. This is the ablation for
	// the paper's first contribution (multi-level placement with
	// hierarchy-aware declustering); dataflow affinity is still used.
	Flat bool
	// Progress, when set, receives one event per floorplanned level and one
	// for the flipping post-process.
	Progress ProgressFunc
}

// DefaultOptions mirrors the paper's defaults.
func DefaultOptions() Options {
	return Options{
		Lambda:    0.5,
		K:         2,
		Decluster: hier.DefaultParams(),
		Seq:       seqgraph.DefaultParams(),
		Effort:    layout.EffortMedium,
		Eval:      slicing.DefaultEvalParams(),
	}
}

// TraceBlock is one block of a traced level.
type TraceBlock struct {
	Name       string
	Rect       geom.Rect
	MacroCount int
}

// LevelTrace captures one recursion level for visualization (Fig. 1).
type LevelTrace struct {
	Path   string
	Depth  int
	Region geom.Rect
	Blocks []TraceBlock
}

// Result is a finished HiDaP macro placement.
type Result struct {
	// Placement holds macro and port positions/orientations.
	Placement *placement.Placement
	// Trace lists the per-level block floorplans when Options.Trace is set.
	Trace []LevelTrace
	// Levels counts floorplanned recursion levels.
	Levels int
	// SeqStats reports the Gseq size (Table I).
	SeqStats seqgraph.Stats
	// Flips counts orientation changes made by the flipping post-process.
	Flips int
}

// flowState carries the per-run context through the recursion.
type flowState struct {
	d      *netlist.Design
	tree   *hier.Tree
	sg     *seqgraph.Graph
	sc     *ShapeCurves
	bp     *graph.Bipartite
	pl     *placement.Placement
	opt    Options
	res    *Result
	approx []geom.Point // per-cell position estimate (block centers)
	hasApx []bool
}

// Place runs the complete HiDaP flow (Algorithm 1) on a design: hierarchy
// tree, shape curves, recursive block floorplan, and macro flipping. A
// cancelled or expired ctx aborts the run promptly (between annealing moves)
// and returns ctx.Err().
func Place(ctx context.Context, d *netlist.Design, opt Options) (*Result, error) {
	if len(d.Macros()) == 0 {
		return nil, fmt.Errorf("core: design %q has no macros to place", d.Name)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opt.K == 0 {
		opt.K = 2
	}
	if opt.Decluster.MinAreaFrac == 0 {
		opt.Decluster = hier.DefaultParams()
	}
	if opt.Eval.CompactPoints == 0 {
		opt.Eval = slicing.DefaultEvalParams()
	}

	sg := opt.SeqGraph
	if sg == nil {
		sg = seqgraph.Build(d, opt.Seq)
	}
	tree := opt.Tree
	if tree == nil {
		tree = hier.New(d)
	}
	bp := opt.Bipartite
	if bp == nil {
		bp = graph.BipartiteFromDesign(d)
	}
	st := &flowState{
		d:      d,
		tree:   tree,
		sg:     sg,
		bp:     bp,
		pl:     placement.New(d),
		opt:    opt,
		res:    &Result{},
		approx: make([]geom.Point, len(d.Cells)),
		hasApx: make([]bool, len(d.Cells)),
	}
	st.sc = generateShapeCurves(ctx, st.tree, opt.Seed, opt.Pool)
	st.res.SeqStats = st.sg.Stats()

	var err error
	if opt.Flat {
		err = st.flatPlace(ctx, d.Die)
	} else {
		err = st.recurse(ctx, d.Root(), d.Die, 0)
	}
	if err != nil {
		return nil, err
	}

	if !st.pl.AllMacrosPlaced() {
		return nil, fmt.Errorf("core: flow left macros unplaced")
	}
	legalize.Macros(st.pl, d.Die)
	st.res.Flips = flipMacros(st.pl, st.approx, st.hasApx)
	st.res.Placement = st.pl
	st.emit(Progress{Stage: StageFlips, Level: st.res.Levels, Lambda: opt.Lambda, Flips: st.res.Flips})
	return st.res, nil
}

// emit delivers one progress event when a callback is registered.
func (st *flowState) emit(ev Progress) {
	if st.opt.Progress != nil {
		st.opt.Progress(ev)
	}
}

// recurse is Algorithm 2: floorplan the blocks of one hierarchy level
// inside region, then recurse into multi-macro blocks.
func (st *flowState) recurse(ctx context.Context, nh netlist.HierID, region geom.Rect, depth int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	d := st.d
	decl := st.tree.Decluster(nh, st.opt.Decluster)
	if len(decl.Blocks) == 0 {
		return nil
	}
	st.res.Levels++

	if len(decl.Blocks) == 1 {
		// A level that cannot be partitioned further: place its macros
		// directly (wrapper collapse already tried to open it).
		b := &decl.Blocks[0]
		for _, m := range b.MacroCells {
			st.fixSingleMacro(m, region, nil, nil, 0, nil)
		}
		return nil
	}

	at := st.targetAreas(decl)
	gdf := dataflow.Build(st.sg, decl)
	aff := gdf.Affinity(dataflow.Params{Lambda: st.opt.Lambda, K: st.opt.K})

	prob := &layout.Problem{Region: region, Affinity: aff}
	for i := range decl.Blocks {
		b := &decl.Blocks[i]
		prob.Blocks = append(prob.Blocks, layout.BlockSpec{
			Name: b.Name,
			Block: slicing.Block{
				Curve:      st.sc.Curve(b),
				MinArea:    b.Area,
				TargetArea: at[i],
			},
		})
	}
	for i := len(decl.Blocks); i < len(gdf.Nodes); i++ {
		prob.Terminals = append(prob.Terminals, layout.Terminal{
			Name: gdf.Nodes[i].Name,
			Pos:  st.terminalPos(gdf, i),
		})
	}

	opt := layout.Options{
		Seed: st.opt.Seed + int64(nh)*7919, Effort: st.opt.Effort, Eval: st.opt.Eval, Pool: st.opt.Pool,
		Restarts: st.opt.Restarts, Workers: st.opt.RestartWorkers,
	}
	sol := layout.Solve(ctx, prob, opt)
	if err := ctx.Err(); err != nil {
		return err
	}
	st.emit(Progress{
		Stage: StageLevel, Path: d.Node(nh).Path, Depth: depth,
		Blocks: len(decl.Blocks), Level: st.res.Levels, Lambda: st.opt.Lambda,
	})

	// Refresh position estimates: every cell of block i now lives at the
	// center of the block's rectangle; glue cells at the region center.
	for i := range decl.Blocks {
		c := sol.Rects[i].Center()
		for _, cid := range decl.Blocks[i].Cells {
			st.approx[cid] = c
			st.hasApx[cid] = true
		}
	}
	for ci := range decl.CellBlock {
		if decl.CellBlock[ci] == hier.Glue && !st.hasApx[ci] {
			st.approx[ci] = region.Center()
			st.hasApx[ci] = true
		}
	}

	if st.opt.Trace {
		tl := LevelTrace{Path: d.Node(nh).Path, Depth: depth, Region: region}
		for i := range decl.Blocks {
			tl.Blocks = append(tl.Blocks, TraceBlock{
				Name:       decl.Blocks[i].Name,
				Rect:       sol.Rects[i],
				MacroCount: decl.Blocks[i].MacroCount(),
			})
		}
		st.res.Trace = append(st.res.Trace, tl)
	}

	// Descend (Algorithm 2, lines 7-11).
	for i := range decl.Blocks {
		b := &decl.Blocks[i]
		r := sol.Rects[i]
		switch {
		case b.MacroCount() == 0:
			// Soft block: standard cells only, placed later by the cell
			// placer; nothing to fix here.
		case b.MacroCount() == 1:
			st.fixSingleMacro(b.MacroCells[0], r, gdf, aff, int32(i), sol)
		default:
			if err := st.recurse(ctx, b.Node, r, depth+1); err != nil {
				return err
			}
		}
	}
	return nil
}

// flatPlace is the single-level ablation: one layout instance whose blocks
// are the individual macros; all standard cells are glue.
func (st *flowState) flatPlace(ctx context.Context, region geom.Rect) error {
	d := st.d
	decl := &hier.Result{CellBlock: make([]int32, len(d.Cells))}
	for i := range decl.CellBlock {
		decl.CellBlock[i] = hier.Glue
	}
	for _, m := range d.Macros() {
		c := d.Cell(m)
		decl.CellBlock[m] = int32(len(decl.Blocks))
		decl.Blocks = append(decl.Blocks, hier.Block{
			Name:       c.Name,
			Node:       netlist.None,
			Macro:      m,
			Cells:      []netlist.CellID{m},
			MacroCells: []netlist.CellID{m},
			Area:       c.Area(),
		})
	}
	for i := range d.Cells {
		if d.Cells[i].Kind == netlist.KindPort {
			decl.CellBlock[i] = hier.Outside
		} else if decl.CellBlock[i] == hier.Glue {
			decl.GlueArea += d.Cells[i].Area()
		}
	}
	st.res.Levels = 1

	at := st.targetAreas(decl)
	gdf := dataflow.Build(st.sg, decl)
	aff := gdf.Affinity(dataflow.Params{Lambda: st.opt.Lambda, K: st.opt.K})

	prob := &layout.Problem{Region: region, Affinity: aff}
	for i := range decl.Blocks {
		b := &decl.Blocks[i]
		prob.Blocks = append(prob.Blocks, layout.BlockSpec{
			Name: b.Name,
			Block: slicing.Block{
				Curve:      st.sc.Curve(b),
				MinArea:    b.Area,
				TargetArea: at[i],
			},
		})
	}
	for i := len(decl.Blocks); i < len(gdf.Nodes); i++ {
		prob.Terminals = append(prob.Terminals, layout.Terminal{
			Name: gdf.Nodes[i].Name,
			Pos:  st.terminalPos(gdf, i),
		})
	}
	sol := layout.Solve(ctx, prob, layout.Options{
		Seed: st.opt.Seed, Effort: st.opt.Effort, Eval: st.opt.Eval, Pool: st.opt.Pool,
		Restarts: st.opt.Restarts, Workers: st.opt.RestartWorkers,
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	st.emit(Progress{Stage: StageLevel, Path: "(flat)", Blocks: len(decl.Blocks), Level: 1, Lambda: st.opt.Lambda})
	for i := range decl.Blocks {
		st.fixSingleMacro(decl.Blocks[i].MacroCells[0], sol.Rects[i], gdf, aff, int32(i), sol)
	}
	if st.opt.Trace {
		tl := LevelTrace{Path: "(flat)", Depth: 0, Region: region}
		for i := range decl.Blocks {
			tl.Blocks = append(tl.Blocks, TraceBlock{Name: decl.Blocks[i].Name, Rect: sol.Rects[i], MacroCount: 1})
		}
		st.res.Trace = append(st.res.Trace, tl)
	}
	return nil
}

// targetAreas implements §IV-C: glue cells adopt their BFS-nearest block,
// and each block's target area is its own area plus the adopted glue.
func (st *flowState) targetAreas(decl *hier.Result) []int64 {
	d := st.d
	var seeds, seedLabels []int32
	for i := range decl.Blocks {
		for _, cid := range decl.Blocks[i].Cells {
			seeds = append(seeds, int32(cid))
			seedLabels = append(seedLabels, int32(i))
		}
	}
	labels, _ := st.bp.MultiSourceLabel(seeds, seedLabels)

	at := make([]int64, len(decl.Blocks))
	var blockArea int64
	for i := range decl.Blocks {
		at[i] = decl.Blocks[i].Area
		blockArea += decl.Blocks[i].Area
	}
	var orphan int64
	for ci, m := range decl.CellBlock {
		if m != hier.Glue {
			continue
		}
		area := d.Cell(netlist.CellID(ci)).Area()
		if l := labels[ci]; l >= 0 {
			at[l] += area
		} else {
			orphan += area
		}
	}
	// Unreachable glue: spread proportionally to block area.
	if orphan > 0 && blockArea > 0 {
		for i := range at {
			at[i] += orphan * decl.Blocks[i].Area / blockArea
		}
	}
	return at
}

// terminalPos estimates the fixed position of a Gdf terminal node.
func (st *flowState) terminalPos(gdf *dataflow.Graph, node int) geom.Point {
	n := &gdf.Nodes[node]
	var sx, sy, cnt int64
	for _, si := range n.Seq {
		for _, cid := range st.sg.Nodes[si].Cells {
			var p geom.Point
			switch {
			case st.d.Cell(cid).Kind == netlist.KindPort:
				p = st.d.PortPos(cid)
			case st.pl.Placed[cid]:
				p = st.pl.Center(cid)
			case st.hasApx[cid]:
				p = st.approx[cid]
			default:
				p = st.d.Die.Center()
			}
			sx += p.X
			sy += p.Y
			cnt++
		}
	}
	if cnt == 0 {
		return st.d.Die.Center()
	}
	return geom.Pt(sx/cnt, sy/cnt)
}

// fixSingleMacro places one macro inside its block rectangle, in the corner
// that minimizes the affinity-weighted distance to its Gdf counterparts
// (Algorithm 2, line 11). gdf/sol may be nil for degenerate levels, in
// which case the macro centers in the region.
func (st *flowState) fixSingleMacro(m netlist.CellID, r geom.Rect, gdf *dataflow.Graph, aff [][]float64, blockIdx int32, sol *layout.Result) {
	c := st.d.Cell(m)
	// Choose the orientation whose outline fits the rectangle best.
	orients := []geom.Orient{geom.R0, geom.R90}
	bestOrient := geom.R0
	bestFit := int64(-1)
	for _, o := range orients {
		w, h := o.Dims(c.Width, c.Height)
		overW := max64(0, w-r.W)
		overH := max64(0, h-r.H)
		fit := overW + overH
		if bestFit < 0 || fit < bestFit {
			bestFit = fit
			bestOrient = o
		}
	}
	w, h := bestOrient.Dims(c.Width, c.Height)

	// Candidate anchor points: four corners and the center.
	candidates := []geom.Rect{
		geom.RectXYWH(r.X, r.Y, w, h),
		geom.RectXYWH(r.X2()-w, r.Y, w, h),
		geom.RectXYWH(r.X, r.Y2()-h, w, h),
		geom.RectXYWH(r.X2()-w, r.Y2()-h, w, h),
		geom.RectXYWH(r.X+(r.W-w)/2, r.Y+(r.H-h)/2, w, h),
	}
	best := candidates[0]
	bestCost := float64(-1)
	for _, cand := range candidates {
		cand = cand.ClampInside(st.d.Die)
		cost := st.macroAttraction(cand.Center(), gdf, aff, blockIdx, sol)
		if bestCost < 0 || cost < bestCost {
			bestCost = cost
			best = cand
		}
	}
	st.pl.PlaceOriented(m, geom.Pt(best.X, best.Y), bestOrient)
	st.approx[m] = best.Center()
	st.hasApx[m] = true
}

// macroAttraction scores a candidate macro position against the affinity
// row of its block.
func (st *flowState) macroAttraction(p geom.Point, gdf *dataflow.Graph, aff [][]float64, blockIdx int32, sol *layout.Result) float64 {
	if gdf == nil || sol == nil {
		// No dataflow context: all candidates tie at zero and the first
		// (lower-left corner) wins.
		return 0
	}
	var cost float64
	for j := range gdf.Nodes {
		w := aff[blockIdx][j]
		if w == 0 || int32(j) == blockIdx {
			continue
		}
		cost += w * float64(p.ManhattanDist(st.counterpartPos(gdf, j, sol)))
	}
	return cost
}

// counterpartPos locates a Gdf node for corner scoring: already-fixed
// macros (earlier siblings or deeper levels) count with their real
// positions, others with their block rectangle centers.
func (st *flowState) counterpartPos(gdf *dataflow.Graph, j int, sol *layout.Result) geom.Point {
	if j >= len(sol.Rects) {
		return st.terminalPos(gdf, j)
	}
	var sx, sy, cnt int64
	for _, si := range gdf.Nodes[j].Seq {
		if st.sg.Nodes[si].Kind != seqgraph.KindMacro {
			continue
		}
		cid := st.sg.Nodes[si].Cells[0]
		if st.pl.Placed[cid] {
			p := st.pl.Center(cid)
			sx += p.X
			sy += p.Y
			cnt++
		}
	}
	if cnt > 0 {
		return geom.Pt(sx/cnt, sy/cnt)
	}
	return sol.Rects[j].Center()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
