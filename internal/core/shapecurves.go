// Package core implements the HiDaP flow of the paper: shape-curve
// generation over the hierarchy tree (§IV-A), the recursive block
// floorplan (Algorithm 2) with hierarchical declustering, target-area
// assignment and dataflow-driven layout generation, and the macro-flipping
// post-process (Algorithm 1).
package core

import (
	"context"
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/hier"
	"repro/internal/netlist"
	"repro/internal/shape"
	"repro/internal/slicing"
)

// ShapeCurves is SΓ: for every hierarchy node with macros beneath it, the
// shape curve of the minimal bounding boxes that can hold a slicing
// placement of those macros.
type ShapeCurves struct {
	// ByNode maps hierarchy nodes (with macros) to their curves.
	ByNode map[netlist.HierID]shape.Curve
	// ByMacro maps each macro cell to its (rotatable) leaf curve.
	ByMacro map[netlist.CellID]shape.Curve
}

// GenerateShapeCurves computes SΓ bottom-up over the hierarchy tree, once
// per design (Algorithm 1, line 4). Leaf macros contribute their two
// orientations; interior nodes compose their parts with a short
// area-minimizing anneal over slicing structures, and the union of every
// composition visited forms the node's Pareto set.
func GenerateShapeCurves(ctx context.Context, tree *hier.Tree, seed int64) *ShapeCurves {
	return generateShapeCurves(ctx, tree, seed, nil)
}

// generateShapeCurves is GenerateShapeCurves with an optional evaluator
// pool: the per-node composition anneals draw their scratch from it, so a
// long-lived engine re-deriving curves for many jobs stays allocation-warm.
func generateShapeCurves(ctx context.Context, tree *hier.Tree, seed int64, pool *slicing.EvaluatorPool) *ShapeCurves {
	d := tree.D
	sc := &ShapeCurves{
		ByNode:  make(map[netlist.HierID]shape.Curve),
		ByMacro: make(map[netlist.CellID]shape.Curve),
	}
	// A reverse topological sweep is bottom-up for any valid tree, not just
	// builder-ordered ones (rebuilt hierarchies renumber nodes arbitrarily).
	order := d.HierTopo()
	for oi := len(order) - 1; oi >= 0; oi-- {
		hid := order[oi]
		if tree.SubMacros[hid] == 0 {
			continue
		}
		node := d.Node(hid)
		var parts []shape.Curve
		for _, cid := range node.Cells {
			c := d.Cell(cid)
			if c.Kind != netlist.KindMacro {
				continue
			}
			curve := shape.FromBoxRotatable(c.Width, c.Height)
			sc.ByMacro[cid] = curve
			parts = append(parts, curve)
		}
		for _, ch := range node.Children {
			if tree.SubMacros[ch] > 0 {
				parts = append(parts, sc.ByNode[ch])
			}
		}
		sc.ByNode[hid] = composeParts(ctx, parts, seed+int64(hid), pool)
	}
	return sc
}

// Curve returns the shape curve of a declustered block.
func (sc *ShapeCurves) Curve(b *hier.Block) shape.Curve {
	if b.Macro != netlist.None {
		return sc.ByMacro[b.Macro]
	}
	if b.Node != netlist.None {
		if c, ok := sc.ByNode[b.Node]; ok {
			return c
		}
	}
	return shape.Curve{} // soft block
}

// composeCompact bounds the corner count of curves fed to composition.
const composeCompact = 16

// composeParts builds the shape curve of a set of sub-curves under slicing
// composition. Two parts are enumerated exactly; more parts run a short
// area-optimization anneal (paper §IV-A), accumulating the Pareto union of
// every slicing structure visited.
func composeParts(ctx context.Context, parts []shape.Curve, seed int64, pool *slicing.EvaluatorPool) shape.Curve {
	switch len(parts) {
	case 0:
		return shape.Curve{}
	case 1:
		return parts[0]
	case 2:
		return shape.Union(
			shape.CombineH(parts[0], parts[1]),
			shape.CombineV(parts[0], parts[1]),
		)
	}
	// The anneal walks on an incremental evaluator over curve-only blocks:
	// it thins every part once (to composeCompact, matching the old
	// pre-compaction) and recomposes only the slicing-tree path each move
	// touches, instead of rebuilding the whole composition per move.
	blocks := make([]slicing.Block, len(parts))
	for i := range parts {
		blocks[i] = slicing.Block{Curve: parts[i]}
	}
	expr := slicing.NewBalanced(len(parts))
	var inc *slicing.Evaluator
	if pool != nil {
		inc = pool.Get(&expr, blocks, slicing.EvalParams{CompactPoints: composeCompact})
		defer pool.Put(inc)
	} else {
		inc = slicing.NewEvaluator(&expr, blocks, slicing.EvalParams{CompactPoints: composeCompact})
	}
	acc := shape.Curve{}
	var us shape.Scratch
	var ubuf []shape.Point
	cost := func() float64 {
		c := inc.RootCurve()
		// The scratch form copies the corners into ubuf (so accumulating
		// the evaluator-owned curve stays safe across later moves) and
		// reuses the buffer every step instead of allocating a fresh
		// candidate slice per move; acc aliases ubuf between calls, which
		// Scratch.Union's in-place prune tolerates.
		acc, ubuf = us.Union(ubuf, acc, c)
		return float64(c.MinArea())
	}
	anneal.Run(ctx,
		anneal.Options{Seed: seed, MovesPerRound: 24, MaxRounds: 30, Alpha: 0.88, StallRounds: 8},
		cost,
		func(rng *rand.Rand) func() {
			undo, _ := inc.Perturb(rng)
			return undo
		},
		nil,
	)
	return acc
}
