// Package dataflow builds the dataflow graph Gdf of the paper (§II-C,
// §IV-D) and derives the affinity matrix Maff used by layout generation.
//
// Gdf nodes are the floorplanning blocks of the current level plus the
// fixed terminals (multi-bit ports and macros outside the level). Every
// ordered node pair carries two latency histograms:
//
//   - block flow (E^b_df): paths found by a BFS over Gseq that starts from
//     all components of a block and traverses only glue logic;
//   - macro flow (E^m_df): paths between macros that may cross any Gseq
//     node except other macros.
//
// A histogram bin at latency l holds the number of bits arriving over
// shortest paths with l sequential hops. The affinity of an edge is
// score(h, k) = Σ bits_l / l^k, and the blended affinity is
// λ·score(block) + (1−λ)·score(macro), exactly the paper's parametric form.
package dataflow

import (
	"sort"

	"repro/internal/hier"
	"repro/internal/seqgraph"
)

// Class classifies Gdf nodes.
type Class uint8

const (
	// ClassBlock is a floorplanning block of the current level.
	ClassBlock Class = iota
	// ClassPort is a multi-bit port terminal (fixed position).
	ClassPort
	// ClassExtMacro is a macro outside the current level (fixed position).
	ClassExtMacro
)

func (c Class) String() string {
	switch c {
	case ClassBlock:
		return "block"
	case ClassPort:
		return "port"
	case ClassExtMacro:
		return "extmacro"
	}
	return "?"
}

// Node is one Gdf vertex.
type Node struct {
	Class Class
	Name  string
	// Block is the block index for ClassBlock nodes, else -1.
	Block int32
	// Seq lists the member Gseq nodes.
	Seq []int32
}

// Bin is one histogram bin: Bits bits arriving at the given latency.
type Bin struct {
	Latency int32
	Bits    int64
}

// Histogram condenses the connectivity of one Gdf edge.
type Histogram struct {
	Bins []Bin // sorted by latency
}

// Add accumulates bits at a latency (clamped to a minimum of 1 so that the
// score stays finite on purely combinational block-to-block paths).
func (h *Histogram) Add(latency int32, bits int64) {
	if latency < 1 {
		latency = 1
	}
	i := sort.Search(len(h.Bins), func(i int) bool { return h.Bins[i].Latency >= latency })
	if i < len(h.Bins) && h.Bins[i].Latency == latency {
		h.Bins[i].Bits += bits
		return
	}
	h.Bins = append(h.Bins, Bin{})
	copy(h.Bins[i+1:], h.Bins[i:])
	h.Bins[i] = Bin{Latency: latency, Bits: bits}
}

// TotalBits returns the histogram mass.
func (h *Histogram) TotalBits() int64 {
	var t int64
	for _, b := range h.Bins {
		t += b.Bits
	}
	return t
}

// Score evaluates the paper's Σ bits_i / latency_i^k.
func (h *Histogram) Score(k float64) float64 {
	var s float64
	for _, b := range h.Bins {
		s += float64(b.Bits) / powf(float64(b.Latency), k)
	}
	return s
}

// powf computes x^k for x >= 1 without importing math for the common small
// integer exponents used here.
func powf(x, k float64) float64 {
	switch k {
	case 0:
		return 1
	case 1:
		return x
	case 2:
		return x * x
	case 3:
		return x * x * x
	}
	// Rare non-integer k: exp(k ln x) via a couple of Newton-ish terms is
	// overkill; fall back to repeated multiplication on the integer part
	// and linear blend on the fraction. Accuracy is ample for scoring.
	ik := int(k)
	r := 1.0
	for i := 0; i < ik; i++ {
		r *= x
	}
	frac := k - float64(ik)
	if frac > 0 {
		r *= 1 + frac*(x-1)
	}
	return r
}

// EdgeKey identifies a directed Gdf edge (from, to).
type EdgeKey struct{ From, To int32 }

// Graph is the dataflow graph of one floorplanning level.
type Graph struct {
	Nodes []Node
	// SeqToNode maps Gseq node -> Gdf node index, or -1 (glue).
	SeqToNode []int32
	// BlockFlow and MacroFlow hold the per-edge histograms.
	BlockFlow map[EdgeKey]*Histogram
	MacroFlow map[EdgeKey]*Histogram
}

// Build constructs Gdf for one level.
//
// sg is the design's sequential graph; decl is the declustering result of
// the level (block membership per design cell). Terminals (ports and
// macros whose cells are Outside the level) become fixed Gdf nodes.
func Build(sg *seqgraph.Graph, decl *hier.Result) *Graph {
	g := &Graph{
		SeqToNode: make([]int32, len(sg.Nodes)),
		BlockFlow: make(map[EdgeKey]*Histogram),
		MacroFlow: make(map[EdgeKey]*Histogram),
	}
	for i := range g.SeqToNode {
		g.SeqToNode[i] = -1
	}

	// Blocks first, in declustering order: Gdf node index == block index.
	for bi := range decl.Blocks {
		g.Nodes = append(g.Nodes, Node{
			Class: ClassBlock,
			Name:  decl.Blocks[bi].Name,
			Block: int32(bi),
		})
	}
	for si := range sg.Nodes {
		sn := &sg.Nodes[si]
		m := membership(sg, decl, int32(si))
		switch {
		case m >= 0:
			g.SeqToNode[si] = m
			g.Nodes[m].Seq = append(g.Nodes[m].Seq, int32(si))
		case sn.Kind == seqgraph.KindPort:
			g.SeqToNode[si] = int32(len(g.Nodes))
			g.Nodes = append(g.Nodes, Node{
				Class: ClassPort, Name: sn.Name, Block: -1, Seq: []int32{int32(si)},
			})
		case sn.Kind == seqgraph.KindMacro && isOutside(sg, decl, int32(si)):
			g.SeqToNode[si] = int32(len(g.Nodes))
			g.Nodes = append(g.Nodes, Node{
				Class: ClassExtMacro, Name: sn.Name, Block: -1, Seq: []int32{int32(si)},
			})
		default:
			// Glue registers (inside or outside the level): traversable.
		}
	}

	g.buildBlockFlow(sg)
	g.buildMacroFlow(sg, decl)
	return g
}

// membership returns the block index of a Gseq node, or -1. A Gseq node's
// cells always share one hierarchy level, so the first cell decides.
func membership(sg *seqgraph.Graph, decl *hier.Result, si int32) int32 {
	m := decl.CellBlock[sg.Nodes[si].Cells[0]]
	if m >= 0 {
		return m
	}
	return -1
}

func isOutside(sg *seqgraph.Graph, decl *hier.Result, si int32) bool {
	return decl.CellBlock[sg.Nodes[si].Cells[0]] == hier.Outside
}

// buildBlockFlow runs, for every block and terminal, a multi-source BFS
// over Gseq that traverses only glue nodes and records arrivals into other
// blocks and terminals (paper: blue paths of Fig. 7a). Running the search
// from terminals as well makes input-port → block flow visible; edges in
// Gseq are directed, so a search seeded only at blocks would never see it.
func (g *Graph) buildBlockFlow(sg *seqgraph.Graph) {
	n := len(sg.Nodes)
	dist := make([]int32, n)
	for from := range g.Nodes {
		for i := range dist {
			dist[i] = -1
		}
		queue := queue{}
		for _, si := range g.Nodes[from].Seq {
			dist[si] = 0
			queue.push(si)
		}
		for !queue.empty() {
			u := queue.pop()
			for _, e := range sg.Out[u] {
				v := e.To
				if dist[v] >= 0 {
					continue
				}
				dist[v] = dist[u] + 1
				target := g.SeqToNode[v]
				if target >= 0 && target != int32(from) {
					// Arrival: bits of the final hop at the path latency.
					g.addBits(g.BlockFlow, int32(from), target, dist[v], int64(e.Bits))
					continue // do not traverse through blocks/terminals
				}
				if target < 0 {
					queue.push(v) // glue: keep going
				}
				// target == from: re-entered own block; stop.
			}
		}
	}
}

// buildMacroFlow finds, for every macro, shortest paths to other macros
// crossing any Gseq node except macros (paper: red paths of Fig. 7a), and
// aggregates them onto the Gdf edge of the owning blocks/terminals.
func (g *Graph) buildMacroFlow(sg *seqgraph.Graph, decl *hier.Result) {
	n := len(sg.Nodes)
	dist := make([]int32, n)
	for si := range sg.Nodes {
		if sg.Nodes[si].Kind != seqgraph.KindMacro {
			continue
		}
		fromNode := g.SeqToNode[si]
		if fromNode < 0 {
			continue
		}
		for i := range dist {
			dist[i] = -1
		}
		queue := queue{}
		dist[si] = 0
		queue.push(int32(si))
		for !queue.empty() {
			u := queue.pop()
			for _, e := range sg.Out[u] {
				v := e.To
				if dist[v] >= 0 {
					continue
				}
				dist[v] = dist[u] + 1
				if sg.Nodes[v].Kind == seqgraph.KindMacro {
					toNode := g.SeqToNode[v]
					if toNode >= 0 && toNode != fromNode {
						g.addBits(g.MacroFlow, fromNode, toNode, dist[v], int64(e.Bits))
					}
					continue // never traverse through macros
				}
				queue.push(v)
			}
		}
	}
}

func (g *Graph) addBits(m map[EdgeKey]*Histogram, from, to, latency int32, bits int64) {
	k := EdgeKey{from, to}
	h := m[k]
	if h == nil {
		h = &Histogram{}
		m[k] = h
	}
	h.Add(latency, bits)
}

// queue is a simple FIFO of Gseq node indices.
type queue struct {
	items []int32
	head  int
}

func (q *queue) push(v int32) { q.items = append(q.items, v) }
func (q *queue) empty() bool  { return q.head >= len(q.items) }
func (q *queue) pop() int32   { v := q.items[q.head]; q.head++; return v }

// Params parameterizes the affinity computation.
type Params struct {
	// Lambda blends block flow (λ) against macro flow (1−λ).
	Lambda float64
	// K is the latency decay exponent of score(h, k).
	K float64
}

// DefaultParams returns λ=0.5, k=2.
func DefaultParams() Params { return Params{Lambda: 0.5, K: 2} }

// Affinity computes the symmetric affinity matrix Maff: for every unordered
// node pair the λ-blend of both directions' histogram scores.
func (g *Graph) Affinity(p Params) [][]float64 {
	n := len(g.Nodes)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	// Accumulate in sorted key order: cells can receive several float
	// contributions (both directed keys of a pair land in the same two
	// cells), and float addition is not associative, so map-order
	// accumulation would make the matrix bit-pattern differ run to run —
	// nondeterminism that feeds straight into λ-candidate costs.
	// Regression-pinned by TestAffinityAccumulationOrder.
	acc := func(edges map[EdgeKey]*Histogram, weight float64) {
		keys := make([]EdgeKey, 0, len(edges))
		for k := range edges {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].From != keys[j].From {
				return keys[i].From < keys[j].From
			}
			return keys[i].To < keys[j].To
		})
		for _, k := range keys {
			s := weight * edges[k].Score(p.K)
			m[k.From][k.To] += s
			m[k.To][k.From] += s
		}
	}
	acc(g.BlockFlow, p.Lambda)
	acc(g.MacroFlow, 1-p.Lambda)
	return m
}

// Stats is the Gdf row of Table I.
type Stats struct {
	Nodes      int
	Blocks     int
	Ports      int
	ExtMacros  int
	BlockEdges int
	MacroEdges int
}

// Stats summarizes the graph.
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: len(g.Nodes), BlockEdges: len(g.BlockFlow), MacroEdges: len(g.MacroFlow)}
	for i := range g.Nodes {
		switch g.Nodes[i].Class {
		case ClassBlock:
			s.Blocks++
		case ClassPort:
			s.Ports++
		case ClassExtMacro:
			s.ExtMacros++
		}
	}
	return s
}
