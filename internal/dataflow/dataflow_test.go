package dataflow

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hier"
	"repro/internal/netlist"
	"repro/internal/seqgraph"
)

// fig7Toy builds a two-block system in the spirit of the paper's Fig. 7:
//
//	in[0..7] ──► a[0..15] ──► g[0..15] ──► b[0..15] ──► mB
//	   mA ─────►   (A)          glue         (B)
//
// Block A = {mA, a}, block B = {mB, b}; g is glue.
func fig7Toy(t *testing.T) (*seqgraph.Graph, *hier.Result, *netlist.Design) {
	t.Helper()
	b := netlist.NewBuilder("fig7")
	mA := b.AddMacro("A/mA", 1000, 1000, "A")
	mB := b.AddMacro("B/mB", 1000, 1000, "B")
	var aID, gID, bID [16]netlist.CellID
	for i := 0; i < 16; i++ {
		aID[i] = b.AddFlop(fmt.Sprintf("A/a[%d]", i), "A")
		gID[i] = b.AddFlop(fmt.Sprintf("glue/g[%d]", i), "glue")
		bID[i] = b.AddFlop(fmt.Sprintf("B/b[%d]", i), "B")
	}
	for i := 0; i < 8; i++ {
		in := b.AddPort(fmt.Sprintf("in[%d]", i))
		c := b.AddComb(fmt.Sprintf("ci_%dx", i), 100, "")
		b.Wire(fmt.Sprintf("npi%d", i), in, c)
		b.Wire(fmt.Sprintf("npa%d", i), c, aID[i])
	}
	for i := 0; i < 16; i++ {
		// mA drives a (one net per bit).
		b.Wire(fmt.Sprintf("nma%d", i), mA, aID[i])
		c1 := b.AddComb(fmt.Sprintf("c1_%dx", i), 100, "")
		b.Wire(fmt.Sprintf("nag%d", i), aID[i], c1)
		b.Wire(fmt.Sprintf("ng%d", i), c1, gID[i])
		c2 := b.AddComb(fmt.Sprintf("c2_%dx", i), 100, "")
		b.Wire(fmt.Sprintf("ngb%d", i), gID[i], c2)
		b.Wire(fmt.Sprintf("nb%d", i), c2, bID[i])
		b.Wire(fmt.Sprintf("nbm%d", i), bID[i], mB)
	}
	d := b.MustBuild()
	sg := seqgraph.Build(d, seqgraph.DefaultParams())

	tr := hier.New(d)
	decl := tr.Decluster(d.Root(), hier.DefaultParams())
	return sg, decl, d
}

func blockIdx(t *testing.T, decl *hier.Result, name string) int32 {
	t.Helper()
	for i := range decl.Blocks {
		if decl.Blocks[i].Name == name {
			return int32(i)
		}
	}
	t.Fatalf("block %s not found", name)
	return -1
}

func TestBuildNodes(t *testing.T) {
	sg, decl, _ := fig7Toy(t)
	g := Build(sg, decl)
	st := g.Stats()
	if st.Blocks != len(decl.Blocks) {
		t.Errorf("blocks = %d, want %d", st.Blocks, len(decl.Blocks))
	}
	if st.Ports != 1 {
		t.Errorf("ports = %d, want 1 (the in[] cluster)", st.Ports)
	}
	if st.ExtMacros != 0 {
		t.Errorf("extmacros = %d, want 0 at the root level", st.ExtMacros)
	}
}

func TestBlockFlow(t *testing.T) {
	sg, decl, _ := fig7Toy(t)
	g := Build(sg, decl)
	A := blockIdx(t, decl, "A")
	B := blockIdx(t, decl, "B")

	h := g.BlockFlow[EdgeKey{A, B}]
	if h == nil {
		t.Fatal("block flow A->B missing")
	}
	// a -> g -> b: latency 2, 16 bits.
	if len(h.Bins) != 1 || h.Bins[0] != (Bin{Latency: 2, Bits: 16}) {
		t.Errorf("A->B histogram = %+v, want one bin {2,16}", h.Bins)
	}
	// No direct B->A flow.
	if g.BlockFlow[EdgeKey{B, A}] != nil {
		t.Error("unexpected B->A block flow")
	}
}

func TestPortFlow(t *testing.T) {
	sg, decl, _ := fig7Toy(t)
	g := Build(sg, decl)
	A := blockIdx(t, decl, "A")
	// Find the port node.
	var port int32 = -1
	for i := range g.Nodes {
		if g.Nodes[i].Class == ClassPort {
			port = int32(i)
		}
	}
	if port < 0 {
		t.Fatal("port node missing")
	}
	h := g.BlockFlow[EdgeKey{port, A}]
	if h == nil {
		t.Fatal("port->A flow missing")
	}
	if h.TotalBits() != 8 || h.Bins[0].Latency != 1 {
		t.Errorf("port->A = %+v, want 8 bits at latency 1", h.Bins)
	}
}

func TestMacroFlow(t *testing.T) {
	sg, decl, _ := fig7Toy(t)
	g := Build(sg, decl)
	A := blockIdx(t, decl, "A")
	B := blockIdx(t, decl, "B")

	h := g.MacroFlow[EdgeKey{A, B}]
	if h == nil {
		t.Fatal("macro flow A->B missing")
	}
	// mA -> a -> g -> b -> mB: latency 4, 16 bits on the final hop.
	if len(h.Bins) != 1 || h.Bins[0] != (Bin{Latency: 4, Bits: 16}) {
		t.Errorf("macro flow A->B = %+v, want {4,16}", h.Bins)
	}
}

func TestHistogramAddAndScore(t *testing.T) {
	var h Histogram
	h.Add(3, 8)
	h.Add(1, 4)
	h.Add(3, 8)
	h.Add(0, 2) // clamped to latency 1
	if len(h.Bins) != 2 {
		t.Fatalf("bins = %+v", h.Bins)
	}
	if h.Bins[0] != (Bin{1, 6}) || h.Bins[1] != (Bin{3, 16}) {
		t.Errorf("bins = %+v", h.Bins)
	}
	if h.TotalBits() != 22 {
		t.Errorf("TotalBits = %d", h.TotalBits())
	}
	// score(k=2) = 6/1 + 16/9.
	want := 6.0 + 16.0/9.0
	if got := h.Score(2); math.Abs(got-want) > 1e-12 {
		t.Errorf("Score(2) = %v, want %v", got, want)
	}
	// k=0: raw bits.
	if got := h.Score(0); got != 22 {
		t.Errorf("Score(0) = %v, want 22", got)
	}
	// k=1 decays linearly.
	if got := h.Score(1); math.Abs(got-(6+16.0/3)) > 1e-12 {
		t.Errorf("Score(1) = %v", got)
	}
}

func TestScoreDecreasingInK(t *testing.T) {
	var h Histogram
	h.Add(2, 10)
	h.Add(5, 20)
	prev := math.Inf(1)
	for _, k := range []float64{0, 1, 2, 3} {
		s := h.Score(k)
		if s > prev {
			t.Fatalf("score not decreasing in k: k=%v s=%v prev=%v", k, s, prev)
		}
		prev = s
	}
}

func TestAffinityBlend(t *testing.T) {
	sg, decl, _ := fig7Toy(t)
	g := Build(sg, decl)
	A := blockIdx(t, decl, "A")
	B := blockIdx(t, decl, "B")

	blockOnly := g.Affinity(Params{Lambda: 1, K: 2})
	macroOnly := g.Affinity(Params{Lambda: 0, K: 2})
	blended := g.Affinity(Params{Lambda: 0.5, K: 2})

	// block flow A->B: 16/4 = 4. macro flow: 16/16 = 1.
	if math.Abs(blockOnly[A][B]-4) > 1e-12 {
		t.Errorf("block-only affinity = %v, want 4", blockOnly[A][B])
	}
	if math.Abs(macroOnly[A][B]-1) > 1e-12 {
		t.Errorf("macro-only affinity = %v, want 1", macroOnly[A][B])
	}
	if math.Abs(blended[A][B]-2.5) > 1e-12 {
		t.Errorf("blended affinity = %v, want 2.5", blended[A][B])
	}
	// Symmetry.
	if blended[A][B] != blended[B][A] {
		t.Error("affinity matrix not symmetric")
	}
	// Diagonal zero.
	if blended[A][A] != 0 {
		t.Error("self affinity must be 0")
	}
}

func TestAffinityLatencyPreference(t *testing.T) {
	// Two equal-width connections, different latencies: the shorter one
	// must have strictly larger affinity for k > 0.
	var near, far Histogram
	near.Add(1, 32)
	far.Add(4, 32)
	if near.Score(2) <= far.Score(2) {
		t.Error("low-latency flow should score higher")
	}
	if near.Score(0) != far.Score(0) {
		t.Error("k=0 should ignore latency")
	}
}

func TestGlueNotANode(t *testing.T) {
	sg, decl, _ := fig7Toy(t)
	g := Build(sg, decl)
	for i := range g.Nodes {
		for _, si := range g.Nodes[i].Seq {
			if sg.Nodes[si].Name == "glue/g" {
				t.Error("glue register should not belong to any Gdf node")
			}
		}
	}
	// g's Gseq node maps to -1.
	gi := sg.NodeByName("glue/g")
	if gi < 0 {
		t.Fatal("glue register missing from Gseq")
	}
	if g.SeqToNode[gi] != -1 {
		t.Errorf("glue SeqToNode = %d, want -1", g.SeqToNode[gi])
	}
}

func TestDeterministicAffinity(t *testing.T) {
	sg, decl, _ := fig7Toy(t)
	g1 := Build(sg, decl)
	g2 := Build(sg, decl)
	m1 := g1.Affinity(DefaultParams())
	m2 := g2.Affinity(DefaultParams())
	for i := range m1 {
		for j := range m1[i] {
			if m1[i][j] != m2[i][j] {
				t.Fatalf("affinity nondeterministic at %d,%d", i, j)
			}
		}
	}
}

// TestHistogramQuickPermutation: Add order never changes the result.
func TestHistogramQuickPermutation(t *testing.T) {
	f := func(raw []uint8) bool {
		type entry struct {
			lat  int32
			bits int64
		}
		var entries []entry
		for i := 0; i+1 < len(raw); i += 2 {
			entries = append(entries, entry{int32(raw[i]%8) + 1, int64(raw[i+1]%32) + 1})
		}
		var fwd, rev Histogram
		for _, e := range entries {
			fwd.Add(e.lat, e.bits)
		}
		for i := len(entries) - 1; i >= 0; i-- {
			rev.Add(entries[i].lat, entries[i].bits)
		}
		if len(fwd.Bins) != len(rev.Bins) || fwd.TotalBits() != rev.TotalBits() {
			return false
		}
		for i := range fwd.Bins {
			if fwd.Bins[i] != rev.Bins[i] {
				return false
			}
		}
		// Bins stay sorted by latency.
		for i := 1; i < len(fwd.Bins); i++ {
			if fwd.Bins[i].Latency <= fwd.Bins[i-1].Latency {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMultiLatencyHistogram: parallel paths of different depth produce the
// two-bin histograms the paper's Fig. 7 sketches.
func TestMultiLatencyHistogram(t *testing.T) {
	b := netlist.NewBuilder("ml")
	// Block A: 8-bit reg a. Block B: two 4-bit registers, bf and bs.
	// Fast path: a[0..3] -> bf directly (latency 1). Slow path:
	// a[4..7] -> g -> bs (latency 2). Distinct destination registers keep
	// both latencies visible: BFS records each reached component once.
	var aID [8]netlist.CellID
	var bfID, bsID, gID [4]netlist.CellID
	for i := 0; i < 8; i++ {
		aID[i] = b.AddFlop(fmt.Sprintf("A/a[%d]", i), "A")
	}
	for i := 0; i < 4; i++ {
		bfID[i] = b.AddFlop(fmt.Sprintf("B/bf[%d]", i), "B")
		bsID[i] = b.AddFlop(fmt.Sprintf("B/bs[%d]", i), "B")
	}
	b.AddMacro("A/mA", 1000, 1000, "A") // make A and B macro blocks
	b.AddMacro("B/mB", 1000, 1000, "B")
	for i := 0; i < 4; i++ {
		b.Wire(fmt.Sprintf("fast%d", i), aID[i], bfID[i])
	}
	for i := 0; i < 4; i++ {
		gID[i] = b.AddFlop(fmt.Sprintf("glue/g[%d]", i), "glue")
		b.Wire(fmt.Sprintf("s1_%d", i), aID[i+4], gID[i])
		b.Wire(fmt.Sprintf("s2_%d", i), gID[i], bsID[i])
	}
	d := b.MustBuild()
	sg := seqgraph.Build(d, seqgraph.DefaultParams())
	tr := hier.New(d)
	decl := tr.Decluster(d.Root(), hier.DefaultParams())
	g := Build(sg, decl)

	A := blockIdx(t, decl, "A")
	B := blockIdx(t, decl, "B")
	h := g.BlockFlow[EdgeKey{A, B}]
	if h == nil {
		t.Fatal("A->B flow missing")
	}
	if len(h.Bins) != 2 {
		t.Fatalf("bins = %+v, want two latencies", h.Bins)
	}
	if h.Bins[0] != (Bin{Latency: 1, Bits: 4}) || h.Bins[1] != (Bin{Latency: 2, Bits: 4}) {
		t.Errorf("bins = %+v, want {1,4} and {2,4}", h.Bins)
	}
}

// TestAffinityAccumulationOrder pins the sorted-key accumulation order of
// Affinity with rounding-sensitive values: the cell m[0][1] receives
// 2^53 (block flow), then 1.5 and 1 (both macro-flow directions). Under
// IEEE round-to-nearest-even, (2^53+1.5)+1 = 2^53+4 but (2^53+1)+1.5 =
// 2^53+2, so any map-order accumulation would flip the result between
// iterations once Go's randomized map iteration picks the other key first.
func TestAffinityAccumulationOrder(t *testing.T) {
	g := &Graph{
		Nodes: make([]Node, 2),
		BlockFlow: map[EdgeKey]*Histogram{
			{From: 0, To: 1}: {Bins: []Bin{{Latency: 1, Bits: 1 << 54}}},
		},
		MacroFlow: map[EdgeKey]*Histogram{
			{From: 0, To: 1}: {Bins: []Bin{{Latency: 1, Bits: 3}}},
			{From: 1, To: 0}: {Bins: []Bin{{Latency: 1, Bits: 2}}},
		},
	}
	want := math.Ldexp(1, 53) + 4 // (2^53 + 1.5) + 1 in sorted key order
	for i := 0; i < 300; i++ {
		m := g.Affinity(DefaultParams())
		if m[0][1] != want || m[1][0] != want {
			t.Fatalf("iteration %d: affinity = %v / %v, want %v (accumulation order drifted)",
				i, m[0][1], m[1][0], want)
		}
	}
}
