// Package deffmt writes and reads the placement exchange subset of DEF
// (Design Exchange Format): DESIGN/DIEAREA headers, a COMPONENTS section
// with FIXED macro placements, and a PINS section for ports. It is the
// hand-off format between this floorplanner and downstream P&R tools; only
// the subset those tools read back for macro placement is implemented.
package deffmt

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/placement"
)

// Write emits the macro placement (and port pins) of a design as DEF.
// Standard cells are omitted: the consumer places them.
func Write(w io.Writer, pl *placement.Placement) error {
	d := pl.D
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\nDIVIDERCHAR \"/\" ;\nBUSBITCHARS \"[]\" ;\n")
	fmt.Fprintf(bw, "DESIGN %s ;\nUNITS DISTANCE MICRONS 1000 ;\n", escape(d.Name))
	fmt.Fprintf(bw, "DIEAREA ( %d %d ) ( %d %d ) ;\n", d.Die.X, d.Die.Y, d.Die.X2(), d.Die.Y2())

	macros := d.Macros()
	placed := 0
	for _, m := range macros {
		if pl.Placed[m] {
			placed++
		}
	}
	fmt.Fprintf(bw, "COMPONENTS %d ;\n", placed)
	for _, m := range macros {
		if !pl.Placed[m] {
			continue
		}
		c := d.Cell(m)
		fmt.Fprintf(bw, "  - %s MACRO_%dX%d + FIXED ( %d %d ) %s ;\n",
			escape(c.Name), c.Width, c.Height,
			pl.Pos[m].X, pl.Pos[m].Y, defOrient(pl.Orient[m]))
	}
	fmt.Fprintf(bw, "END COMPONENTS\n")

	ports := d.Ports()
	fmt.Fprintf(bw, "PINS %d ;\n", len(ports))
	for _, p := range ports {
		pos := d.PortPos(p)
		fmt.Fprintf(bw, "  - %s + NET %s + FIXED ( %d %d ) N ;\n",
			escape(d.Cell(p).Name), escape(d.Cell(p).Name), pos.X, pos.Y)
	}
	fmt.Fprintf(bw, "END PINS\nEND DESIGN\n")
	return bw.Flush()
}

// escape maps hierarchical names into DEF-safe identifiers.
func escape(s string) string {
	s = strings.ReplaceAll(s, " ", "_")
	return s
}

// defOrient maps orientations to DEF names (same convention).
func defOrient(o geom.Orient) string { return o.String() }

// Component is one FIXED placement read back from a DEF file.
type Component struct {
	Name   string
	Pos    geom.Point
	Orient geom.Orient
}

// ReadComponents parses the COMPONENTS section of a DEF stream produced by
// Write (or a compatible tool) and returns the fixed placements.
func ReadComponents(r io.Reader) ([]Component, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var out []Component
	in := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "COMPONENTS "):
			in = true
		case line == "END COMPONENTS":
			in = false
		case in && strings.HasPrefix(line, "- "):
			comp, err := parseComponent(line)
			if err != nil {
				return nil, err
			}
			out = append(out, comp)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseComponent parses "- name type + FIXED ( x y ) ORIENT ;".
func parseComponent(line string) (Component, error) {
	f := strings.Fields(strings.TrimSuffix(strings.TrimSpace(line), ";"))
	// f: ["-", name, type, "+", "FIXED", "(", x, y, ")", orient]
	if len(f) < 10 || f[0] != "-" || f[4] != "FIXED" || f[5] != "(" || f[8] != ")" {
		return Component{}, fmt.Errorf("deffmt: malformed component line %q", line)
	}
	var x, y int64
	if _, err := fmt.Sscanf(f[6]+" "+f[7], "%d %d", &x, &y); err != nil {
		return Component{}, fmt.Errorf("deffmt: bad coordinates in %q: %v", line, err)
	}
	o, err := geom.ParseOrient(f[9])
	if err != nil {
		return Component{}, fmt.Errorf("deffmt: %v in %q", err, line)
	}
	return Component{Name: f[1], Pos: geom.Pt(x, y), Orient: o}, nil
}

// Apply places the named components onto a placement (matching by cell
// name). Unknown names are reported as an error.
func Apply(pl *placement.Placement, comps []Component) error {
	byName := map[string]netlist.CellID{}
	for _, m := range pl.D.Macros() {
		byName[pl.D.Cell(m).Name] = m
	}
	for _, c := range comps {
		id, ok := byName[c.Name]
		if !ok {
			return fmt.Errorf("deffmt: component %q is not a macro of design %s", c.Name, pl.D.Name)
		}
		pl.PlaceOriented(id, c.Pos, c.Orient)
	}
	return nil
}
