package deffmt

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/placement"
)

func placedDesign(t *testing.T) *placement.Placement {
	t.Helper()
	b := netlist.NewBuilder("defd")
	b.SetDie(geom.RectXYWH(0, 0, 100_000, 80_000))
	m1 := b.AddMacro("u/mem0", 20_000, 10_000, "u")
	m2 := b.AddMacro("u/mem1", 15_000, 15_000, "u")
	p := b.AddPort("clk")
	b.SetPortPos(p, geom.Pt(0, 40_000))
	d := b.MustBuild()
	pl := placement.New(d)
	pl.PlaceOriented(m1, geom.Pt(1_000, 2_000), geom.MY)
	pl.PlaceOriented(m2, geom.Pt(50_000, 60_000), geom.R90)
	return pl
}

func TestWriteStructure(t *testing.T) {
	pl := placedDesign(t)
	var buf bytes.Buffer
	if err := Write(&buf, pl); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"DESIGN defd ;",
		"DIEAREA ( 0 0 ) ( 100000 80000 ) ;",
		"COMPONENTS 2 ;",
		"- u/mem0 MACRO_20000X10000 + FIXED ( 1000 2000 ) MY ;",
		"- u/mem1 MACRO_15000X15000 + FIXED ( 50000 60000 ) R90 ;",
		"PINS 1 ;",
		"END DESIGN",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	pl := placedDesign(t)
	var buf bytes.Buffer
	if err := Write(&buf, pl); err != nil {
		t.Fatal(err)
	}
	comps, err := ReadComponents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 {
		t.Fatalf("components = %d", len(comps))
	}

	// Apply onto a fresh placement and compare.
	fresh := placement.New(pl.D)
	if err := Apply(fresh, comps); err != nil {
		t.Fatal(err)
	}
	for _, m := range pl.D.Macros() {
		if fresh.Pos[m] != pl.Pos[m] || fresh.Orient[m] != pl.Orient[m] {
			t.Errorf("macro %s: %v/%v vs %v/%v", pl.D.Cell(m).Name,
				fresh.Pos[m], fresh.Orient[m], pl.Pos[m], pl.Orient[m])
		}
	}
}

func TestReadComponentsErrors(t *testing.T) {
	bad := "COMPONENTS 1 ;\n- broken line ;\nEND COMPONENTS\n"
	if _, err := ReadComponents(strings.NewReader(bad)); err == nil {
		t.Error("expected parse error")
	}
	badOrient := "COMPONENTS 1 ;\n- m T + FIXED ( 1 2 ) Q9 ;\nEND COMPONENTS\n"
	if _, err := ReadComponents(strings.NewReader(badOrient)); err == nil {
		t.Error("expected orientation error")
	}
}

func TestApplyUnknownComponent(t *testing.T) {
	pl := placedDesign(t)
	err := Apply(pl, []Component{{Name: "nope", Pos: geom.Pt(0, 0)}})
	if err == nil {
		t.Error("expected unknown-component error")
	}
}

func TestSkipsUnplacedMacros(t *testing.T) {
	b := netlist.NewBuilder("u")
	b.SetDie(geom.RectXYWH(0, 0, 10_000, 10_000))
	b.AddMacro("m", 1_000, 1_000, "")
	d := b.MustBuild()
	pl := placement.New(d)
	var buf bytes.Buffer
	if err := Write(&buf, pl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "COMPONENTS 0 ;") {
		t.Errorf("unplaced macro emitted:\n%s", buf.String())
	}
}
