// Package eval is the single measurement pipeline shared by the public API,
// the flow harness and the commands: one placed design in, one Report out.
// Every flow is scored by the same wirelength, congestion and timing models
// (the paper's §V discipline: "Metrics are taken after placement of standard
// cells using the same tool as IndEDA"), so numbers from different placers
// are directly comparable.
package eval

import (
	"context"
	"encoding/json"
	"io"

	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/route"
	"repro/internal/seqgraph"
	"repro/internal/sta"
)

// Report is the uniform result record of one placement run: the paper's
// Table III columns plus run bookkeeping. It marshals to flat JSON so a
// serving layer or the bench harness can emit rows directly.
type Report struct {
	// Design is the netlist name.
	Design string `json:"design,omitempty"`
	// Label is an opaque caller tag (job label on a serving engine),
	// echoed untouched so batch results can be correlated.
	Label string `json:"label,omitempty"`
	// Placer names the flow that produced the placement, when known.
	Placer string `json:"placer,omitempty"`
	// WirelengthM is the total half-perimeter wirelength in meters.
	WirelengthM float64 `json:"wirelength_m"`
	// CongestionPct is GRC%: the percentage of routing gcells whose
	// estimated demand exceeds capacity.
	CongestionPct float64 `json:"congestion_pct"`
	// WNSPct is the worst negative slack as a percentage of the clock
	// period (0 when timing is met, negative otherwise).
	WNSPct float64 `json:"wns_pct"`
	// TNSns is the total negative slack in nanoseconds (<= 0).
	TNSns float64 `json:"tns_ns"`
	// MacroSeconds is the macro-placement wall time, when known.
	MacroSeconds float64 `json:"macro_seconds,omitempty"`
	// Levels counts floorplanned recursion levels (HiDaP runs).
	Levels int `json:"levels,omitempty"`
	// Flips counts orientation changes of the flipping post-process.
	Flips int `json:"flips,omitempty"`
	// Lambda is the dataflow blend of the run (HiDaP runs).
	Lambda float64 `json:"lambda,omitempty"`
	// SeqNodes / SeqEdges are the sequential-graph size (Table I).
	SeqNodes int `json:"seq_nodes,omitempty"`
	SeqEdges int `json:"seq_edges,omitempty"`
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Options configures the measurement models.
type Options struct {
	// Route configures the congestion estimate.
	Route route.Options
	// STA configures timing; a zero WirePsPerDBU is calibrated to the die
	// by CalibrateSTA.
	STA sta.Options
	// Seq sets Gseq construction parameters when Graph is nil.
	Seq seqgraph.Params
	// Graph optionally supplies a prebuilt sequential graph (the harness
	// reuses one graph across the flows of a circuit).
	Graph *seqgraph.Graph
}

// CalibrateSTA scales the wire-delay coefficient to the die so that a stage
// crossing ~70% of the die half-perimeter consumes the full wire budget.
// The suite scales cell counts (and with them die sizes) down from the
// paper's multi-million-cell designs; scaling electrical reach with the die
// keeps the timing picture equivalent. Explicit values pass through.
func CalibrateSTA(d *netlist.Design, base sta.Options) sta.Options {
	def := sta.DefaultOptions()
	if base.ClockPs <= 0 {
		base.ClockPs = def.ClockPs
	}
	if base.IntrinsicPs <= 0 {
		base.IntrinsicPs = def.IntrinsicPs
	}
	if base.WirePsPerDBU == 0 {
		span := float64(d.Die.W + d.Die.H)
		wireBudget := base.ClockPs - base.IntrinsicPs
		base.WirePsPerDBU = wireBudget / (0.7 * span / 2)
	}
	return base
}

// Evaluate measures a fully placed design: wirelength, congestion and timing
// under the shared models, plus the sequential-graph size. The placement is
// not modified. Cancellation is honored between the model stages.
func Evaluate(ctx context.Context, d *netlist.Design, pl *placement.Placement, opt Options) (*Report, error) {
	if opt.Route.GcellBins == 0 {
		opt.Route = route.DefaultOptions()
	}
	r := &Report{Design: d.Name}

	r.WirelengthM = metrics.WirelengthMeters(pl)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r.CongestionPct = route.Estimate(pl, opt.Route).OverflowPct
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sg := opt.Graph
	if sg == nil {
		if opt.Seq.MinBits == 0 {
			opt.Seq = seqgraph.DefaultParams()
		}
		sg = seqgraph.Build(d, opt.Seq)
	}
	st := sg.Stats()
	r.SeqNodes = st.Nodes
	r.SeqEdges = st.Edges
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	timing := sta.Analyze(sg, pl, CalibrateSTA(d, opt.STA))
	r.WNSPct = timing.WNSPct
	r.TNSns = timing.TNSns
	return r, nil
}
