package eval

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/sta"
)

// handPlaced builds a tiny design — two macros bridged by an 8-bit register
// pipeline — and places it by hand, so every measured quantity has a known
// geometry behind it.
func handPlaced(t testing.TB) (*netlist.Design, *placement.Placement) {
	t.Helper()
	b := netlist.NewBuilder("hand")
	b.SetDie(geom.RectXYWH(0, 0, 1_000_000, 1_000_000)) // 1 mm die
	m1 := b.AddMacro("m1", 40_000, 30_000, "")
	m2 := b.AddMacro("m2", 40_000, 30_000, "")
	for i := 0; i < 8; i++ {
		f := b.AddFlop(fmt.Sprintf("r[%d]", i), "")
		b.Wire(fmt.Sprintf("a%d", i), m1, f)
		b.Wire(fmt.Sprintf("b%d", i), f, m2)
	}
	d := b.MustBuild()
	pl := placement.New(d)
	pl.Place(m1, geom.Pt(100_000, 100_000))
	pl.Place(m2, geom.Pt(700_000, 100_000))
	for i := 0; i < 8; i++ {
		f := d.CellByName(fmt.Sprintf("r[%d]", i))
		pl.Place(f, geom.Pt(450_000, 100_000+int64(i)*2_000))
	}
	return d, pl
}

func TestEvaluateHandPlaced(t *testing.T) {
	d, pl := handPlaced(t)
	rep, err := Evaluate(context.Background(), d, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Design != "hand" {
		t.Errorf("design = %q", rep.Design)
	}
	// 16 two-pin nets spanning roughly the m1→regs and regs→m2 gaps; the
	// total must be positive and far below 16 die half-perimeters.
	if rep.WirelengthM <= 0 || rep.WirelengthM > 16*0.002 {
		t.Errorf("WL = %v m, want within (0, 0.032)", rep.WirelengthM)
	}
	if rep.CongestionPct < 0 || rep.CongestionPct > 100 {
		t.Errorf("GRC%% = %v", rep.CongestionPct)
	}
	if rep.WNSPct > 0 {
		t.Errorf("WNS%% = %v, must be <= 0", rep.WNSPct)
	}
	if rep.TNSns > 0 {
		t.Errorf("TNS = %v, must be <= 0", rep.TNSns)
	}
	// Gseq: the macros and the clustered 8-bit register array.
	if rep.SeqNodes != 3 {
		t.Errorf("SeqNodes = %d, want 3 (m1, m2, r[])", rep.SeqNodes)
	}
	if rep.SeqEdges != 2 {
		t.Errorf("SeqEdges = %d, want 2 (m1→r, r→m2)", rep.SeqEdges)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	d, pl := handPlaced(t)
	a, err := Evaluate(context.Background(), d, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(context.Background(), d, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("reports differ:\n%+v\n%+v", a, b)
	}
}

func TestEvaluateCancelled(t *testing.T) {
	d, pl := handPlaced(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Evaluate(ctx, d, pl, Options{}); err == nil {
		t.Error("expected context error")
	}
}

func TestReportJSONFlat(t *testing.T) {
	d, pl := handPlaced(t)
	rep, err := Evaluate(context.Background(), d, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"design"`, `"wirelength_m"`, `"congestion_pct"`} {
		if !strings.Contains(sb.String(), key) {
			t.Errorf("JSON missing %s:\n%s", key, sb.String())
		}
	}
}

func TestCalibrateSTADeterministic(t *testing.T) {
	d, _ := handPlaced(t)
	a := CalibrateSTA(d, sta.Options{})
	b := CalibrateSTA(d, sta.Options{})
	if a != b {
		t.Errorf("calibration nondeterministic: %+v vs %+v", a, b)
	}
	if a.WirePsPerDBU <= 0 {
		t.Errorf("calibrated wire delay = %v, want > 0", a.WirePsPerDBU)
	}
	// The calibration anchors a ~70% half-perimeter crossing at the full
	// wire budget; verify the fit analytically.
	def := sta.DefaultOptions()
	span := float64(d.Die.W + d.Die.H)
	want := (def.ClockPs - def.IntrinsicPs) / (0.7 * span / 2)
	if math.Abs(a.WirePsPerDBU-want) > 1e-12 {
		t.Errorf("WirePsPerDBU = %v, want %v", a.WirePsPerDBU, want)
	}
	// Explicit values pass through untouched.
	fixed := CalibrateSTA(d, sta.Options{ClockPs: 900, IntrinsicPs: 2, WirePsPerDBU: 7})
	if fixed != (sta.Options{ClockPs: 900, IntrinsicPs: 2, WirePsPerDBU: 7}) {
		t.Errorf("explicit options altered: %+v", fixed)
	}
}
