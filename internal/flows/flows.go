// Package flows runs the three macro-placement flows of the paper's
// evaluation end to end — macro placement, standard-cell placement,
// wirelength / congestion / timing measurement — and assembles the rows of
// Tables II and III. All flows share the same cell placer and the eval
// measurement pipeline, mirroring §V ("Metrics are taken after placement of
// standard cells using the same tool as IndEDA").
package flows

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/circuits"
	"repro/internal/autocluster"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/handfp"
	"repro/internal/indeda"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/placement"
	"repro/internal/route"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/sta"
)

// Flow names a macro-placement flow.
type Flow string

const (
	// FlowIndEDA is the industrial-floorplanner baseline.
	FlowIndEDA Flow = "IndEDA"
	// FlowHiDaP is the paper's flow (best wirelength of three λ).
	FlowHiDaP Flow = "HiDaP"
	// FlowHandFP is the handcrafted-floorplan oracle.
	FlowHandFP Flow = "handFP"
)

// Options configures a flow run.
type Options struct {
	// Seed drives every stochastic stage.
	Seed int64
	// Effort selects the HiDaP annealing budget.
	Effort layout.Effort
	// Lambdas are the HiDaP blend values to try (paper: 0.2, 0.5, 0.8;
	// the best post-placement wirelength wins).
	Lambdas []float64
	// Restarts runs HiDaP with this many seeds per λ, keeping the best
	// wirelength (default 1). A cheap robustness extension beyond the
	// paper's best-of-three-λ policy.
	Restarts int
	// Batch sizes the speculative proposal groups inside every annealing
	// chain (core.Options.Batch): <= 1 keeps the serial engine; larger
	// values let reject streaks score up to Batch candidates against one
	// frozen state per step, exposing intra-chain parallelism to the
	// scheduler. Placements are byte-identical at any value.
	Batch int
	// LevelRestarts runs this many independent annealing chains per
	// floorplanning level inside each HiDaP placement, keeping the best
	// (core.Options.Restarts). Orthogonal to Restarts, which restarts whole
	// placements.
	LevelRestarts int
	// SelectBy chooses among HiDaP candidates: "wl" (paper default) keeps
	// the best wirelength; "timing" keeps the best WNS, breaking ties by
	// wirelength — the timing-driven selection the paper's conclusions
	// motivate.
	SelectBy string
	// Parallelism sizes the one work-stealing scheduler the whole HiDaP
	// solve DAG drains through: candidates (λ × restarts), sibling
	// hierarchy subtrees inside each placement, and per-level restart
	// chains are all tasks of the same pool, so the machine stays busy
	// without any layer multiplying goroutines into another. 1 runs
	// everything on the calling goroutine; <= 0 means
	// runtime.GOMAXPROCS(0). Results never depend on it: tasks are
	// indexed, seeded by stable task paths, and reduced in index order.
	Parallelism int
	// Progress, when set, receives one core.StageCandidate event per
	// evaluated HiDaP candidate, so callers can stream status for long
	// suite runs. Events are delivered in candidate-index order (a
	// completed candidate's event is held until its predecessors have
	// reported), so the stream is identical at any Parallelism; they may
	// arrive from worker goroutines.
	Progress core.ProgressFunc
	// Pool, when set, shares annealing scratch (incremental slicing
	// evaluators) across candidates and runs; a serving engine passes its
	// per-engine pool here so back-to-back jobs run allocation-warm.
	Pool *slicing.EvaluatorPool
	// Autocluster, when set, runs the hierarchy-synthesis front-end on the
	// design before HiDaP placement (flat or badly-shaped inputs get a
	// synthesized physical hierarchy; well-shaped ones pass through as a
	// no-op). The clustered design is cached on the Generated, so repeated
	// runs share one synthesis. Only the HiDaP flow consumes the
	// hierarchy; IndEDA and handFP ignore this option.
	Autocluster *autocluster.Params
	// Place configures the shared standard-cell placer.
	Place place.Options
	// Route configures the congestion model.
	Route route.Options
	// STA configures timing; a zero WirePsPerDBU is auto-calibrated to the
	// die (see eval.CalibrateSTA).
	STA sta.Options
}

// DefaultOptions mirrors the paper's setup.
func DefaultOptions() Options {
	return Options{
		Effort:  layout.EffortMedium,
		Lambdas: []float64{0.2, 0.5, 0.8},
		Place:   place.DefaultOptions(),
		Route:   route.DefaultOptions(),
		// STA left zero: eval.CalibrateSTA fits the wire delay to each die.
	}
}

// Metrics is one row of Table III: the uniform eval.Report of the run plus
// the suite bookkeeping (circuit, flow, normalized wirelength).
type Metrics struct {
	Circuit string `json:"circuit"`
	Flow    Flow   `json:"flow"`
	eval.Report
	// WLnorm is WirelengthM normalized to the circuit's handFP flow (set
	// by Normalize; 0 when the circuit has no handFP reference row).
	WLnorm float64 `json:"wl_norm,omitempty"`
}

// CalibrateSTA scales the wire-delay coefficient to the die.
//
// Deprecated: use eval.CalibrateSTA, which this forwards to.
func CalibrateSTA(d *netlist.Design, base sta.Options) sta.Options {
	return eval.CalibrateSTA(d, base)
}

// Run executes one flow on a generated circuit and measures it. A cancelled
// ctx aborts macro placement, candidate evaluation and cell placement
// promptly and returns ctx.Err().
func Run(ctx context.Context, g *circuits.Generated, flow Flow, opt Options) (*Metrics, *placement.Placement, error) {
	d := g.Design
	if len(opt.Lambdas) == 0 {
		opt.Lambdas = []float64{0.2, 0.5, 0.8}
	}

	start := time.Now()
	var pl *placement.Placement
	var bestLambda float64
	var err error
	switch flow {
	case FlowIndEDA:
		pl, err = indeda.Place(ctx, d, indeda.Options{Seed: opt.Seed, HighEffort: true, WallWeight: 0.4})
		if err != nil {
			return nil, nil, err
		}
		if err := cellPlace(ctx, pl, opt); err != nil {
			return nil, nil, err
		}
	case FlowHandFP:
		pl, err = handfp.Place(ctx, d, g.Intent, handfp.Options{Seed: opt.Seed})
		if err != nil {
			return nil, nil, err
		}
		if err := cellPlace(ctx, pl, opt); err != nil {
			return nil, nil, err
		}
	case FlowHiDaP:
		pl, bestLambda, err = runHiDaP(ctx, g, opt)
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("flows: unknown flow %q", flow)
	}
	elapsed := time.Since(start).Seconds()

	m, err := measure(ctx, g, flow, pl, opt)
	if err != nil {
		return nil, nil, err
	}
	m.MacroSeconds = elapsed
	m.Lambda = bestLambda
	return m, pl, nil
}

// runHiDaP evaluates every (restart, λ) candidate on one shared
// work-stealing pool — candidates, hierarchy subtrees and restart chains
// are all tasks of the same scheduler — and selects the winner. Selection
// scans candidates in a fixed order, so the result is identical at any
// Parallelism.
func runHiDaP(ctx context.Context, g *circuits.Generated, opt Options) (*placement.Placement, float64, error) {
	d := g.Design
	if opt.Autocluster != nil {
		// Swap in the synthesized hierarchy before placement. Cells and nets
		// are shared with g.Design, so the cached Gseq below and the eval
		// pipeline (which reads g.Design) stay valid.
		res, _, err := g.Autocluster(*opt.Autocluster)
		if err != nil {
			return nil, 0, err
		}
		d = res.Design
	}
	restarts := opt.Restarts
	if restarts < 1 {
		restarts = 1
	}
	type candidate struct {
		lambda float64
		pl     *placement.Placement
		wl     float64
		wns    float64
		err    error
	}
	cands := make([]candidate, 0, restarts*len(opt.Lambdas))
	for r := 0; r < restarts; r++ {
		for _, lambda := range opt.Lambdas {
			cands = append(cands, candidate{lambda: lambda})
		}
	}
	// One pool for the whole run: candidate tasks fork subtree and chain
	// tasks onto the same lanes, so an idle lane always finds work in some
	// layer instead of waiting for its own layer to produce more.
	pool := sched.NewPool(opt.Parallelism)
	defer pool.Close()

	// Candidate progress events are emitted in index order behind a
	// watermark: a finished candidate marks itself done, and the lowest
	// unreported prefix of done candidates reports. Streaming survives,
	// and the event order is a pure function of the candidate set.
	var emitMu sync.Mutex
	emitted := make([]int8, len(cands)) // 0 pending, 1 done+event, -1 done silently (error)
	next := 0
	reportDone := func(i int, ok bool) {
		if opt.Progress == nil {
			return
		}
		emitMu.Lock()
		defer emitMu.Unlock()
		if ok {
			emitted[i] = 1
		} else {
			emitted[i] = -1
		}
		for next < len(cands) && emitted[next] != 0 {
			if emitted[next] > 0 {
				opt.Progress(core.Progress{
					Stage: core.StageCandidate, Candidate: next + 1, Candidates: len(cands), Lambda: cands[next].lambda,
				})
			}
			next++
		}
	}
	evalOne := func(ctx context.Context, i int) {
		c := &cands[i]
		defer func() { reportDone(i, c.err == nil) }()
		if c.err = ctx.Err(); c.err != nil {
			return
		}
		coreOpt := core.DefaultOptions()
		coreOpt.Lambda = c.lambda
		coreOpt.Seed = opt.Seed + int64(i/len(opt.Lambdas))*1_000_003
		coreOpt.Effort = opt.Effort
		coreOpt.Restarts = opt.LevelRestarts
		coreOpt.Batch = opt.Batch
		coreOpt.Sched = pool
		// Every candidate places the same design: reuse the circuit's cached
		// Gseq (built under default params, matching coreOpt.Seq) and the
		// shared scratch pool instead of rebuilding per candidate.
		coreOpt.SeqGraph = g.SeqGraph()
		coreOpt.Pool = opt.Pool
		res, err := core.Place(ctx, d, coreOpt)
		if err != nil {
			c.err = err
			return
		}
		c.pl = res.Placement
		if err := cellPlace(ctx, c.pl, opt); err != nil {
			c.err = err
			return
		}
		c.wl = metrics.WirelengthMeters(c.pl)
		if opt.SelectBy == "timing" {
			c.wns = sta.Analyze(g.SeqGraph(), c.pl, eval.CalibrateSTA(d, opt.STA)).WNSPct
		}
	}
	grp := pool.Group(ctx)
	for i := range cands {
		i := i
		grp.Go(func(ctx context.Context) { evalOne(ctx, i) })
	}
	grp.Wait() // a cancelled ctx drains; per-candidate errors are scanned below
	best := -1
	for i := range cands {
		if cands[i].err != nil {
			return nil, 0, cands[i].err
		}
		switch {
		case best < 0:
			best = i
		case opt.SelectBy == "timing":
			if cands[i].wns > cands[best].wns ||
				(cands[i].wns == cands[best].wns && cands[i].wl < cands[best].wl) {
				best = i
			}
		case cands[i].wl < cands[best].wl:
			best = i
		}
	}
	return cands[best].pl, cands[best].lambda, nil
}

func cellPlace(ctx context.Context, pl *placement.Placement, opt Options) error {
	p := opt.Place
	if p.GridBins == 0 {
		p = place.DefaultOptions()
	}
	return place.Run(ctx, pl, p)
}

// measure computes the Table III metric columns for a fully placed design
// through the shared eval pipeline.
func measure(ctx context.Context, g *circuits.Generated, flow Flow, pl *placement.Placement, opt Options) (*Metrics, error) {
	rep, err := eval.Evaluate(ctx, g.Design, pl, eval.Options{
		Route: opt.Route,
		STA:   opt.STA,
		Graph: g.SeqGraph(),
	})
	if err != nil {
		return nil, err
	}
	rep.Placer = string(flow)
	return &Metrics{Circuit: g.Spec.Name, Flow: flow, Report: *rep}, nil
}

// Normalize fills WLnorm on a result set: each circuit's rows are divided
// by its handFP wirelength (handFP rows get exactly 1.000).
func Normalize(rows []*Metrics) {
	ref := map[string]float64{}
	for _, r := range rows {
		if r.Flow == FlowHandFP {
			ref[r.Circuit] = r.WirelengthM
		}
	}
	for _, r := range rows {
		if base := ref[r.Circuit]; base > 0 {
			r.WLnorm = r.WirelengthM / base
		}
	}
}

// Summary is one row of Table II.
type Summary struct {
	Flow Flow `json:"flow"`
	// WLGeoMean is the geometric mean of WLnorm over the circuits that have
	// a handFP reference (0 when none do).
	WLGeoMean float64 `json:"wl_geomean"`
	// WNSMean is the arithmetic mean of WNS% over the suite.
	WNSMean float64 `json:"wns_mean_pct"`
	// Effort describes the solution cost (paper wording plus measured CPU).
	Effort string `json:"effort"`
}

// Summarize aggregates per-circuit rows into Table II.
func Summarize(rows []*Metrics) []Summary {
	effortNote := map[Flow]string{
		FlowIndEDA: "tool run (paper: 10-30 mins CPU)",
		FlowHiDaP:  "tool run (paper: 0.5-2 hours CPU)",
		FlowHandFP: "planted intent + refine (paper: 2-4 weeks engineers)",
	}
	var out []Summary
	for _, f := range []Flow{FlowIndEDA, FlowHiDaP, FlowHandFP} {
		var norms []float64
		var wnsSum, secs float64
		n := 0
		for _, r := range rows {
			if r.Flow != f {
				continue
			}
			// A circuit without a handFP reference row leaves WLnorm unset
			// (0). Feeding that zero into the geometric mean would collapse
			// the whole aggregate to 0, so unset norms are skipped; the row
			// still contributes to the WNS mean and CPU totals.
			if r.WLnorm > 0 {
				norms = append(norms, r.WLnorm)
			}
			wnsSum += r.WNSPct
			secs += r.MacroSeconds
			n++
		}
		if n == 0 {
			continue
		}
		out = append(out, Summary{
			Flow:      f,
			WLGeoMean: metrics.GeoMean(norms),
			WNSMean:   wnsSum / float64(n),
			Effort:    fmt.Sprintf("%.1fs CPU here; %s", secs, effortNote[f]),
		})
	}
	return out
}

// WriteCSV emits the result rows as CSV (one line per circuit × flow),
// suitable for spreadsheet import or plotting.
func WriteCSV(w io.Writer, rows []*Metrics) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"circuit", "flow", "wl_m", "wl_norm", "grc_pct", "wns_pct", "tns_ns", "macro_seconds", "lambda",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Circuit, string(r.Flow),
			fmt.Sprintf("%.6f", r.WirelengthM),
			fmt.Sprintf("%.4f", r.WLnorm),
			fmt.Sprintf("%.3f", r.CongestionPct),
			fmt.Sprintf("%.2f", r.WNSPct),
			fmt.Sprintf("%.2f", r.TNSns),
			fmt.Sprintf("%.2f", r.MacroSeconds),
			fmt.Sprintf("%.1f", r.Lambda),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
