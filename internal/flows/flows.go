// Package flows runs the three macro-placement flows of the paper's
// evaluation end to end — macro placement, standard-cell placement,
// wirelength / congestion / timing measurement — and assembles the rows of
// Tables II and III. All flows share the same cell placer and metric
// models, mirroring §V ("Metrics are taken after placement of standard
// cells using the same tool as IndEDA").
package flows

import (
	"encoding/csv"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/circuits"
	"repro/internal/core"
	"repro/internal/handfp"
	"repro/internal/indeda"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/placement"
	"repro/internal/route"
	"repro/internal/seqgraph"
	"repro/internal/sta"
)

// Flow names a macro-placement flow.
type Flow string

const (
	// FlowIndEDA is the industrial-floorplanner baseline.
	FlowIndEDA Flow = "IndEDA"
	// FlowHiDaP is the paper's flow (best wirelength of three λ).
	FlowHiDaP Flow = "HiDaP"
	// FlowHandFP is the handcrafted-floorplan oracle.
	FlowHandFP Flow = "handFP"
)

// Options configures a flow run.
type Options struct {
	// Seed drives every stochastic stage.
	Seed int64
	// Effort selects the HiDaP annealing budget.
	Effort layout.Effort
	// Lambdas are the HiDaP blend values to try (paper: 0.2, 0.5, 0.8;
	// the best post-placement wirelength wins).
	Lambdas []float64
	// Restarts runs HiDaP with this many seeds per λ, keeping the best
	// wirelength (default 1). A cheap robustness extension beyond the
	// paper's best-of-three-λ policy.
	Restarts int
	// SelectBy chooses among HiDaP candidates: "wl" (paper default) keeps
	// the best wirelength; "timing" keeps the best WNS, breaking ties by
	// wirelength — the timing-driven selection the paper's conclusions
	// motivate.
	SelectBy string
	// Sequential disables the parallel evaluation of HiDaP candidates
	// (λ × restarts). Selection is deterministic either way; parallel just
	// uses the machine's cores.
	Sequential bool
	// Place configures the shared standard-cell placer.
	Place place.Options
	// Route configures the congestion model.
	Route route.Options
	// STA configures timing; a zero WirePsPerDBU is auto-calibrated to the
	// die (see CalibrateSTA).
	STA sta.Options
}

// DefaultOptions mirrors the paper's setup.
func DefaultOptions() Options {
	return Options{
		Effort:  layout.EffortMedium,
		Lambdas: []float64{0.2, 0.5, 0.8},
		Place:   place.DefaultOptions(),
		Route:   route.DefaultOptions(),
		// STA left zero: CalibrateSTA fits the wire delay to each die.
	}
}

// Metrics is one row of Table III.
type Metrics struct {
	Circuit string
	Flow    Flow
	// WLm is the post-placement wirelength in meters.
	WLm float64
	// WLnorm is WLm normalized to the circuit's handFP flow (set by
	// Normalize).
	WLnorm float64
	// GRCPct is the global routing overflow percentage.
	GRCPct float64
	// WNSPct is the worst negative slack in percent of the clock period.
	WNSPct float64
	// TNSns is the total negative slack in nanoseconds.
	TNSns float64
	// MacroSeconds is the macro-placement wall time ("effort").
	MacroSeconds float64
	// Lambda is the winning λ for HiDaP rows (0 otherwise).
	Lambda float64
}

// CalibrateSTA scales the wire-delay coefficient to the die so that a stage
// crossing ~70% of the die half-perimeter consumes the full wire budget.
// The suite scales cell counts (and with them die sizes) down from the
// paper's multi-million-cell designs; scaling electrical reach with the die
// keeps the timing picture equivalent.
func CalibrateSTA(d *netlist.Design, base sta.Options) sta.Options {
	def := sta.DefaultOptions()
	if base.ClockPs <= 0 {
		base.ClockPs = def.ClockPs
	}
	if base.IntrinsicPs <= 0 {
		base.IntrinsicPs = def.IntrinsicPs
	}
	if base.WirePsPerDBU == 0 {
		span := float64(d.Die.W + d.Die.H)
		wireBudget := base.ClockPs - base.IntrinsicPs
		base.WirePsPerDBU = wireBudget / (0.7 * span / 2)
	}
	return base
}

// Run executes one flow on a generated circuit and measures it.
func Run(g *circuits.Generated, flow Flow, opt Options) (*Metrics, *placement.Placement, error) {
	d := g.Design
	if len(opt.Lambdas) == 0 {
		opt.Lambdas = []float64{0.2, 0.5, 0.8}
	}

	start := time.Now()
	var pl *placement.Placement
	var bestLambda float64
	var err error
	switch flow {
	case FlowIndEDA:
		pl, err = indeda.Place(d, indeda.Options{Seed: opt.Seed, HighEffort: true, WallWeight: 0.4})
		if err != nil {
			return nil, nil, err
		}
		if err := cellPlace(pl, opt); err != nil {
			return nil, nil, err
		}
	case FlowHandFP:
		pl, err = handfp.Place(d, g.Intent, handfp.Options{Seed: opt.Seed})
		if err != nil {
			return nil, nil, err
		}
		if err := cellPlace(pl, opt); err != nil {
			return nil, nil, err
		}
	case FlowHiDaP:
		restarts := opt.Restarts
		if restarts < 1 {
			restarts = 1
		}
		// Evaluate every (restart, λ) candidate; independent, so they run
		// in parallel unless opt.Sequential. Selection scans candidates in
		// a fixed order, so the result is identical either way.
		type candidate struct {
			lambda float64
			pl     *placement.Placement
			wl     float64
			wns    float64
			err    error
		}
		cands := make([]candidate, 0, restarts*len(opt.Lambdas))
		for r := 0; r < restarts; r++ {
			for _, lambda := range opt.Lambdas {
				cands = append(cands, candidate{lambda: lambda})
			}
		}
		evalOne := func(i int) {
			c := &cands[i]
			coreOpt := core.DefaultOptions()
			coreOpt.Lambda = c.lambda
			coreOpt.Seed = opt.Seed + int64(i/len(opt.Lambdas))*1_000_003
			coreOpt.Effort = opt.Effort
			res, err := core.Place(d, coreOpt)
			if err != nil {
				c.err = err
				return
			}
			c.pl = res.Placement
			if err := cellPlace(c.pl, opt); err != nil {
				c.err = err
				return
			}
			c.wl = metrics.WirelengthMeters(c.pl)
			if opt.SelectBy == "timing" {
				c.wns = sta.Analyze(seqOf(g), c.pl, CalibrateSTA(d, opt.STA)).WNSPct
			}
		}
		if opt.Sequential || len(cands) == 1 {
			for i := range cands {
				evalOne(i)
			}
		} else {
			var wg sync.WaitGroup
			for i := range cands {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					evalOne(i)
				}(i)
			}
			wg.Wait()
		}
		best := -1
		for i := range cands {
			if cands[i].err != nil {
				return nil, nil, cands[i].err
			}
			switch {
			case best < 0:
				best = i
			case opt.SelectBy == "timing":
				if cands[i].wns > cands[best].wns ||
					(cands[i].wns == cands[best].wns && cands[i].wl < cands[best].wl) {
					best = i
				}
			case cands[i].wl < cands[best].wl:
				best = i
			}
		}
		pl = cands[best].pl
		bestLambda = cands[best].lambda
	default:
		return nil, nil, fmt.Errorf("flows: unknown flow %q", flow)
	}
	elapsed := time.Since(start).Seconds()

	m := measure(g, flow, pl, opt)
	m.MacroSeconds = elapsed
	m.Lambda = bestLambda
	return m, pl, nil
}

func cellPlace(pl *placement.Placement, opt Options) error {
	p := opt.Place
	if p.GridBins == 0 {
		p = place.DefaultOptions()
	}
	return place.Run(pl, p)
}

// measure computes the Table III metric columns for a fully placed design.
func measure(g *circuits.Generated, flow Flow, pl *placement.Placement, opt Options) *Metrics {
	staOpt := CalibrateSTA(g.Design, opt.STA)
	cong := route.Estimate(pl, opt.Route)
	timing := sta.Analyze(seqOf(g), pl, staOpt)
	return &Metrics{
		Circuit: g.Spec.Name,
		Flow:    flow,
		WLm:     metrics.WirelengthMeters(pl),
		GRCPct:  cong.OverflowPct,
		WNSPct:  timing.WNSPct,
		TNSns:   timing.TNSns,
	}
}

// Normalize fills WLnorm on a result set: each circuit's rows are divided
// by its handFP wirelength (handFP rows get exactly 1.000).
func Normalize(rows []*Metrics) {
	ref := map[string]float64{}
	for _, r := range rows {
		if r.Flow == FlowHandFP {
			ref[r.Circuit] = r.WLm
		}
	}
	for _, r := range rows {
		if base := ref[r.Circuit]; base > 0 {
			r.WLnorm = r.WLm / base
		}
	}
}

// Summary is one row of Table II.
type Summary struct {
	Flow Flow
	// WLGeoMean is the geometric mean of WLnorm over the suite.
	WLGeoMean float64
	// WNSMean is the arithmetic mean of WNS% over the suite.
	WNSMean float64
	// Effort describes the solution cost (paper wording plus measured CPU).
	Effort string
}

// Summarize aggregates per-circuit rows into Table II.
func Summarize(rows []*Metrics) []Summary {
	effortNote := map[Flow]string{
		FlowIndEDA: "tool run (paper: 10-30 mins CPU)",
		FlowHiDaP:  "tool run (paper: 0.5-2 hours CPU)",
		FlowHandFP: "planted intent + refine (paper: 2-4 weeks engineers)",
	}
	var out []Summary
	for _, f := range []Flow{FlowIndEDA, FlowHiDaP, FlowHandFP} {
		var norms []float64
		var wnsSum, secs float64
		n := 0
		for _, r := range rows {
			if r.Flow != f {
				continue
			}
			norms = append(norms, r.WLnorm)
			wnsSum += r.WNSPct
			secs += r.MacroSeconds
			n++
		}
		if n == 0 {
			continue
		}
		out = append(out, Summary{
			Flow:      f,
			WLGeoMean: metrics.GeoMean(norms),
			WNSMean:   wnsSum / float64(n),
			Effort:    fmt.Sprintf("%.1fs CPU here; %s", secs, effortNote[f]),
		})
	}
	return out
}

// seqCache avoids rebuilding Gseq for every flow of the same circuit.
var (
	seqCacheMu sync.Mutex
	seqCache   = map[*netlist.Design]*seqgraph.Graph{}
)

func seqOf(g *circuits.Generated) *seqgraph.Graph {
	seqCacheMu.Lock()
	defer seqCacheMu.Unlock()
	sg, ok := seqCache[g.Design]
	if !ok {
		sg = seqgraph.Build(g.Design, seqgraph.DefaultParams())
		seqCache[g.Design] = sg
	}
	return sg
}

// WriteCSV emits the result rows as CSV (one line per circuit × flow),
// suitable for spreadsheet import or plotting.
func WriteCSV(w io.Writer, rows []*Metrics) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"circuit", "flow", "wl_m", "wl_norm", "grc_pct", "wns_pct", "tns_ns", "macro_seconds", "lambda",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Circuit, string(r.Flow),
			fmt.Sprintf("%.6f", r.WLm),
			fmt.Sprintf("%.4f", r.WLnorm),
			fmt.Sprintf("%.3f", r.GRCPct),
			fmt.Sprintf("%.2f", r.WNSPct),
			fmt.Sprintf("%.2f", r.TNSns),
			fmt.Sprintf("%.2f", r.MacroSeconds),
			fmt.Sprintf("%.1f", r.Lambda),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
