package flows

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/circuits"
	"repro/internal/autocluster"
	"repro/internal/eval"
	"repro/internal/layout"
	"repro/internal/sta"
)

func tinyCircuit() *circuits.Generated {
	return circuits.Generate(circuits.Spec{
		Name: "t", Cells: 300_000, Macros: 8, Subsystems: 2,
		BusWidth: 32, PipelineDepth: 2, Scale: 300, Seed: 5,
	})
}

func fastOpts() Options {
	o := DefaultOptions()
	o.Effort = layout.EffortLow
	o.Lambdas = []float64{0.5}
	o.Place.Iterations = 3
	return o
}

func TestRunAllFlows(t *testing.T) {
	g := tinyCircuit()
	var rows []*Metrics
	for _, f := range []Flow{FlowIndEDA, FlowHiDaP, FlowHandFP} {
		m, pl, err := Run(context.Background(), g, f, fastOpts())
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if m.WirelengthM <= 0 {
			t.Errorf("%s: WL = %v", f, m.WirelengthM)
		}
		if m.CongestionPct < 0 || m.CongestionPct > 100 {
			t.Errorf("%s: GRC%% = %v", f, m.CongestionPct)
		}
		if m.WNSPct > 0 {
			t.Errorf("%s: WNS%% = %v, must be <= 0", f, m.WNSPct)
		}
		if m.TNSns > 0 {
			t.Errorf("%s: TNS = %v, must be <= 0", f, m.TNSns)
		}
		if ov := pl.MacroOverlapArea(); ov != 0 {
			t.Errorf("%s: macro overlap %d", f, ov)
		}
		if err := pl.MacrosInsideDie(); err != nil {
			t.Errorf("%s: %v", f, err)
		}
		rows = append(rows, m)
	}

	Normalize(rows)
	for _, r := range rows {
		if r.Flow == FlowHandFP && math.Abs(r.WLnorm-1) > 1e-12 {
			t.Errorf("handFP norm = %v, want 1", r.WLnorm)
		}
		if r.WLnorm <= 0 {
			t.Errorf("%s norm = %v", r.Flow, r.WLnorm)
		}
	}

	sums := Summarize(rows)
	if len(sums) != 3 {
		t.Fatalf("summaries = %d", len(sums))
	}
	for _, s := range sums {
		if s.WLGeoMean <= 0 {
			t.Errorf("%s geomean = %v", s.Flow, s.WLGeoMean)
		}
		if s.Effort == "" {
			t.Errorf("%s effort empty", s.Flow)
		}
	}
}

func TestHiDaPPicksBestLambda(t *testing.T) {
	g := tinyCircuit()
	opt := fastOpts()
	opt.Lambdas = []float64{0.2, 0.8}
	m, _, err := Run(context.Background(), g, FlowHiDaP, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m.Lambda != 0.2 && m.Lambda != 0.8 {
		t.Errorf("winning lambda = %v, want one of the candidates", m.Lambda)
	}
}

func TestRunUnknownFlow(t *testing.T) {
	g := tinyCircuit()
	if _, _, err := Run(context.Background(), g, Flow("nope"), fastOpts()); err == nil {
		t.Error("expected error for unknown flow")
	}
}

func TestCalibrateSTA(t *testing.T) {
	g := tinyCircuit()
	opt := CalibrateSTA(g.Design, sta.Options{})
	if opt.WirePsPerDBU <= 0 {
		t.Fatalf("calibrated wire delay = %v", opt.WirePsPerDBU)
	}
	// A full die crossing must consume several clock periods' worth of
	// wire budget: delay(span) > clock.
	span := float64(g.Design.Die.W + g.Design.Die.H)
	if opt.IntrinsicPs+opt.WirePsPerDBU*span/2 <= opt.ClockPs {
		t.Error("calibration too lax: a half-span wire should violate")
	}
	// Explicit values pass through untouched.
	fixed := CalibrateSTA(g.Design, sta.Options{ClockPs: 1000, IntrinsicPs: 1, WirePsPerDBU: 42})
	if fixed.WirePsPerDBU != 42 {
		t.Error("explicit wire delay overridden")
	}
}

func TestDeterministicMetrics(t *testing.T) {
	g := tinyCircuit()
	a, _, err := Run(context.Background(), g, FlowHiDaP, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run(context.Background(), g, FlowHiDaP, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.WirelengthM != b.WirelengthM || a.CongestionPct != b.CongestionPct || a.WNSPct != b.WNSPct || a.TNSns != b.TNSns {
		t.Errorf("metrics nondeterministic: %+v vs %+v", a, b)
	}
}

func TestNormalizeWithoutHandFP(t *testing.T) {
	rows := []*Metrics{{Circuit: "x", Flow: FlowHiDaP, Report: eval.Report{WirelengthM: 2}}}
	Normalize(rows) // no handFP reference: norms stay zero, no panic
	if rows[0].WLnorm != 0 {
		t.Errorf("norm = %v, want 0 without a reference", rows[0].WLnorm)
	}
}

func TestNormalizeEmptyRows(t *testing.T) {
	Normalize(nil) // must not panic
	Normalize([]*Metrics{})
}

// TestSummarizeSkipsUnsetNorms is the regression test for the geomean
// collapse: a circuit without a handFP reference row leaves WLnorm at 0,
// and Summarize used to feed that zero into metrics.GeoMean, flattening
// the whole aggregate to 0. Unset norms must be skipped instead.
func TestSummarizeSkipsUnsetNorms(t *testing.T) {
	rows := []*Metrics{
		// Circuit "a" has a reference; "b" does not.
		{Circuit: "a", Flow: FlowHiDaP, Report: eval.Report{WirelengthM: 2, WNSPct: -4}},
		{Circuit: "a", Flow: FlowHandFP, Report: eval.Report{WirelengthM: 1}},
		{Circuit: "b", Flow: FlowHiDaP, Report: eval.Report{WirelengthM: 3, WNSPct: -8}},
	}
	Normalize(rows)
	if rows[0].WLnorm != 2 || rows[2].WLnorm != 0 {
		t.Fatalf("norms = %v, %v; want 2, 0", rows[0].WLnorm, rows[2].WLnorm)
	}
	for _, s := range Summarize(rows) {
		if s.Flow != FlowHiDaP {
			continue
		}
		// Geomean over the referenced circuit only: exactly 2, not 0.
		if s.WLGeoMean != 2 {
			t.Errorf("WLGeoMean = %v, want 2 (unset norm must be skipped)", s.WLGeoMean)
		}
		// The unreferenced row still counts toward the WNS mean.
		if want := (-4.0 + -8.0) / 2; s.WNSMean != want {
			t.Errorf("WNSMean = %v, want %v", s.WNSMean, want)
		}
	}
}

func TestSummarizeAllNormsUnset(t *testing.T) {
	rows := []*Metrics{
		{Circuit: "x", Flow: FlowHiDaP, Report: eval.Report{WirelengthM: 2, WNSPct: -1}},
	}
	Normalize(rows)
	sums := Summarize(rows)
	if len(sums) != 1 {
		t.Fatalf("sums = %+v", sums)
	}
	// No reference anywhere: the geomean is reported as 0 (unknown), and
	// must not panic or fabricate a value.
	if sums[0].WLGeoMean != 0 || sums[0].WNSMean != -1 {
		t.Errorf("summary = %+v", sums[0])
	}
}

func TestSummarizeEmptyRows(t *testing.T) {
	if sums := Summarize(nil); len(sums) != 0 {
		t.Errorf("summaries of no rows = %+v", sums)
	}
}

func TestWriteCSVEmptyRows(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "circuit,flow,") {
		t.Errorf("empty CSV = %q, want header only", sb.String())
	}
}

func TestWriteCSVMissingReference(t *testing.T) {
	rows := []*Metrics{{Circuit: "x", Flow: FlowHiDaP, Report: eval.Report{WirelengthM: 2}}}
	Normalize(rows)
	var sb strings.Builder
	if err := WriteCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[1], ",0.0000,") {
		t.Errorf("unset norm should serialize as 0.0000: %q", sb.String())
	}
}

func TestSummarizeSkipsMissingFlows(t *testing.T) {
	rows := []*Metrics{
		{Circuit: "x", Flow: FlowHiDaP, WLnorm: 1.1, Report: eval.Report{WNSPct: -10}},
	}
	sums := Summarize(rows)
	if len(sums) != 1 || sums[0].Flow != FlowHiDaP {
		t.Errorf("sums = %+v", sums)
	}
}

func TestWriteCSV(t *testing.T) {
	rows := []*Metrics{
		{Circuit: "c1", Flow: FlowIndEDA, WLnorm: 1.2, Report: eval.Report{WirelengthM: 1.5, CongestionPct: 3, WNSPct: -10, TNSns: -5}},
		{Circuit: "c1", Flow: FlowHiDaP, WLnorm: 0.96, Report: eval.Report{WirelengthM: 1.2, Lambda: 0.5}},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "c1,IndEDA,1.500000,") {
		t.Errorf("row = %q", lines[1])
	}
	if !strings.Contains(lines[2], ",0.5") {
		t.Errorf("lambda missing: %q", lines[2])
	}
}

func TestSelectByTiming(t *testing.T) {
	g := tinyCircuit()
	opt := fastOpts()
	opt.Lambdas = []float64{0.2, 0.8}
	opt.SelectBy = "timing"
	m, pl, err := Run(context.Background(), g, FlowHiDaP, opt)
	if err != nil {
		t.Fatal(err)
	}
	if pl == nil || m.WirelengthM <= 0 {
		t.Fatal("timing selection produced no placement")
	}
	// Timing-selected WNS must be at least as good as WL-selected WNS.
	optWL := fastOpts()
	optWL.Lambdas = []float64{0.2, 0.8}
	mWL, _, err := Run(context.Background(), g, FlowHiDaP, optWL)
	if err != nil {
		t.Fatal(err)
	}
	if m.WNSPct < mWL.WNSPct-1e-9 {
		t.Errorf("timing selection WNS %v worse than WL selection %v", m.WNSPct, mWL.WNSPct)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	g := tinyCircuit()
	par := fastOpts()
	par.Lambdas = []float64{0.2, 0.5, 0.8}
	seq := par
	seq.Parallelism = 1

	mp, _, err := Run(context.Background(), g, FlowHiDaP, par)
	if err != nil {
		t.Fatal(err)
	}
	ms, _, err := Run(context.Background(), g, FlowHiDaP, seq)
	if err != nil {
		t.Fatal(err)
	}
	if mp.WirelengthM != ms.WirelengthM || mp.Lambda != ms.Lambda {
		t.Errorf("parallel (%v, λ=%v) != sequential (%v, λ=%v)",
			mp.WirelengthM, mp.Lambda, ms.WirelengthM, ms.Lambda)
	}

	// Any scheduler width (including one far above the candidate count) must
	// select the same winner: scheduling order is irrelevant to selection.
	for _, workers := range []int{2, 16} {
		capped := par
		capped.Parallelism = workers
		mc, _, err := Run(context.Background(), g, FlowHiDaP, capped)
		if err != nil {
			t.Fatal(err)
		}
		if mc.WirelengthM != ms.WirelengthM || mc.Lambda != ms.Lambda {
			t.Errorf("workers=%d: (%v, λ=%v) != sequential (%v, λ=%v)",
				workers, mc.WirelengthM, mc.Lambda, ms.WirelengthM, ms.Lambda)
		}
	}
}

// TestAutoclusterDifferential runs the HiDaP pipeline on a well-shaped suite
// circuit with and without the autoclustering front-end. A healthy hierarchy
// must pass through as a no-op, so every Table II/III metric agrees within
// the issue's 1% budget (in fact exactly).
func TestAutoclusterDifferential(t *testing.T) {
	g := tinyCircuit()
	base, _, err := Run(context.Background(), g, FlowHiDaP, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOpts()
	p := autocluster.DefaultParams()
	opt.Autocluster = &p
	clustered, _, err := Run(context.Background(), g, FlowHiDaP, opt)
	if err != nil {
		t.Fatal(err)
	}
	within := func(name string, a, b float64) {
		t.Helper()
		if a == b {
			return
		}
		ref := math.Abs(a)
		if ref == 0 {
			ref = 1
		}
		if math.Abs(a-b)/ref > 0.01 {
			t.Errorf("%s diverged: base %v, autocluster %v", name, a, b)
		}
	}
	within("WL", base.WirelengthM, clustered.WirelengthM)
	within("GRC%", base.CongestionPct, clustered.CongestionPct)
	within("WNS%", base.WNSPct, clustered.WNSPct)
	within("TNS", base.TNSns, clustered.TNSns)
}

// TestAutoclusterFlatFlow drives a fully flat netlist through the whole
// HiDaP pipeline with the front-end enabled: without it the multilevel flow
// would see a single root node; with it the synthesized hierarchy makes the
// run complete with a real placement.
func TestAutoclusterFlatFlow(t *testing.T) {
	spec := circuits.Spec{
		Name: "flatflow", Cells: 300_000, Macros: 8, Subsystems: 2,
		BusWidth: 32, PipelineDepth: 2, Scale: 300, Seed: 5, Flat: true,
	}
	g := circuits.Generate(spec)
	if len(g.Design.Hier) != 1 {
		t.Fatalf("flat spec produced %d hierarchy nodes", len(g.Design.Hier))
	}
	opt := fastOpts()
	p := autocluster.DefaultParams()
	p.MaxNumInst = 300
	p.MaxNumMacro = 3
	p.MinNumMacro = 1
	opt.Autocluster = &p
	m, pl, err := Run(context.Background(), g, FlowHiDaP, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m.WirelengthM <= 0 {
		t.Errorf("WL = %v", m.WirelengthM)
	}
	if !pl.AllMacrosPlaced() {
		t.Error("macros unplaced")
	}
	if ov := pl.MacroOverlapArea(); ov != 0 {
		t.Errorf("macro overlap %d", ov)
	}
	res, fresh, err := g.Autocluster(p)
	if err != nil || fresh {
		t.Fatalf("flow must have populated the cluster cache (fresh=%v, err=%v)", fresh, err)
	}
	if res.Stats.NoOp {
		t.Error("flat design must not be a no-op")
	}
}
