// Package geom provides the integer geometry primitives used throughout the
// floorplanner: points, rectangles, Manhattan metrics, half-perimeter
// wirelength and the eight standard cell/macro orientations.
//
// All coordinates are in database units (DBU). The synthetic library in this
// repository uses 1 DBU = 1 nm, so a 10 mm die edge is 1e7 DBU; areas of
// realistic dies fit comfortably in int64.
package geom

import "fmt"

// Point is a location in DBU.
type Point struct {
	X, Y int64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int64) Point { return Point{x, y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) int64 {
	return abs64(p.X-q.X) + abs64(p.Y-q.Y)
}

func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Rect is an axis-aligned rectangle with origin (X, Y) at its lower-left
// corner and extents W×H. A Rect with W <= 0 or H <= 0 is empty.
type Rect struct {
	X, Y, W, H int64
}

// RectXYWH builds a rectangle from origin and extents.
func RectXYWH(x, y, w, h int64) Rect { return Rect{x, y, w, h} }

// RectCorners builds the rectangle spanned by two opposite corners.
func RectCorners(a, b Point) Rect {
	x0, x1 := a.X, b.X
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	y0, y1 := a.Y, b.Y
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1 - x0, y1 - y0}
}

// Empty reports whether r has non-positive width or height.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Area returns W*H (zero for empty rectangles).
func (r Rect) Area() int64 {
	if r.Empty() {
		return 0
	}
	return r.W * r.H
}

// X2 returns the right edge coordinate.
func (r Rect) X2() int64 { return r.X + r.W }

// Y2 returns the top edge coordinate.
func (r Rect) Y2() int64 { return r.Y + r.H }

// Center returns the center of r (rounded down).
func (r Rect) Center() Point { return Point{r.X + r.W/2, r.Y + r.H/2} }

// Contains reports whether p lies inside r (inclusive of the lower-left
// edges, exclusive of the upper-right edges, the usual half-open convention).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X && p.X < r.X2() && p.Y >= r.Y && p.Y < r.Y2()
}

// ContainsRect reports whether s lies entirely within r (closed comparison).
func (r Rect) ContainsRect(s Rect) bool {
	return s.X >= r.X && s.Y >= r.Y && s.X2() <= r.X2() && s.Y2() <= r.Y2()
}

// Intersects reports whether r and s overlap with positive area.
func (r Rect) Intersects(s Rect) bool {
	return r.X < s.X2() && s.X < r.X2() && r.Y < s.Y2() && s.Y < r.Y2()
}

// Intersect returns the overlapping region of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	x := max64(r.X, s.X)
	y := max64(r.Y, s.Y)
	x2 := min64(r.X2(), s.X2())
	y2 := min64(r.Y2(), s.Y2())
	if x2 <= x || y2 <= y {
		return Rect{}
	}
	return Rect{x, y, x2 - x, y2 - y}
}

// Union returns the bounding box of r and s. Empty inputs are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	x := min64(r.X, s.X)
	y := min64(r.Y, s.Y)
	x2 := max64(r.X2(), s.X2())
	y2 := max64(r.Y2(), s.Y2())
	return Rect{x, y, x2 - x, y2 - y}
}

// Translate returns r moved by (dx, dy).
func (r Rect) Translate(dx, dy int64) Rect {
	return Rect{r.X + dx, r.Y + dy, r.W, r.H}
}

// ClampInside returns r moved by the smallest offset so that it lies inside
// outer. If r is larger than outer along an axis it is aligned to outer's
// lower-left on that axis.
func (r Rect) ClampInside(outer Rect) Rect {
	if r.X < outer.X {
		r.X = outer.X
	}
	if r.Y < outer.Y {
		r.Y = outer.Y
	}
	if r.X2() > outer.X2() {
		r.X = outer.X2() - r.W
	}
	if r.Y2() > outer.Y2() {
		r.Y = outer.Y2() - r.H
	}
	if r.X < outer.X {
		r.X = outer.X
	}
	if r.Y < outer.Y {
		r.Y = outer.Y
	}
	return r
}

// DistTo returns the Manhattan distance between the centers of r and s.
func (r Rect) DistTo(s Rect) int64 { return r.Center().ManhattanDist(s.Center()) }

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %dx%d]", r.X, r.Y, r.W, r.H)
}

// BoundingBox returns the bounding box of a set of points. It returns the
// empty rectangle for an empty set.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	return Rect{minX, minY, maxX - minX, maxY - minY}
}

// HPWL returns the half-perimeter wirelength of a set of pin locations:
// the semi-perimeter of their bounding box. Nets with fewer than two pins
// contribute zero.
func HPWL(pts []Point) int64 {
	if len(pts) < 2 {
		return 0
	}
	bb := BoundingBox(pts)
	return bb.W + bb.H
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
