package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, 6) {
		t.Errorf("Add = %v, want (2,6)", got)
	}
	if got := p.Sub(q); got != Pt(4, 2) {
		t.Errorf("Sub = %v, want (4,2)", got)
	}
	if got := p.ManhattanDist(q); got != 6 {
		t.Errorf("ManhattanDist = %d, want 6", got)
	}
	if got := p.ManhattanDist(p); got != 0 {
		t.Errorf("self distance = %d, want 0", got)
	}
}

func TestManhattanDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by int32) bool {
		a := Pt(int64(ax), int64(ay))
		b := Pt(int64(bx), int64(by))
		return a.ManhattanDist(b) == b.ManhattanDist(a) && a.ManhattanDist(b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectBasics(t *testing.T) {
	r := RectXYWH(10, 20, 30, 40)
	if r.Area() != 1200 {
		t.Errorf("Area = %d, want 1200", r.Area())
	}
	if r.X2() != 40 || r.Y2() != 60 {
		t.Errorf("X2/Y2 = %d/%d, want 40/60", r.X2(), r.Y2())
	}
	if r.Center() != Pt(25, 40) {
		t.Errorf("Center = %v, want (25,40)", r.Center())
	}
	if r.Empty() {
		t.Error("non-degenerate rect reported empty")
	}
	if !(Rect{}).Empty() {
		t.Error("zero rect not empty")
	}
	if (Rect{0, 0, -5, 10}).Area() != 0 {
		t.Error("negative-width rect should have zero area")
	}
}

func TestRectCorners(t *testing.T) {
	r := RectCorners(Pt(5, 9), Pt(1, 2))
	if r != RectXYWH(1, 2, 4, 7) {
		t.Errorf("RectCorners = %v", r)
	}
}

func TestRectContains(t *testing.T) {
	r := RectXYWH(0, 0, 10, 10)
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true},
		{Pt(9, 9), true},
		{Pt(10, 10), false}, // half-open
		{Pt(-1, 5), false},
		{Pt(5, 10), false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectContainsRect(t *testing.T) {
	outer := RectXYWH(0, 0, 100, 100)
	if !outer.ContainsRect(RectXYWH(0, 0, 100, 100)) {
		t.Error("rect should contain itself (closed comparison)")
	}
	if !outer.ContainsRect(RectXYWH(10, 10, 20, 20)) {
		t.Error("strictly inner rect not contained")
	}
	if outer.ContainsRect(RectXYWH(90, 90, 20, 20)) {
		t.Error("overhanging rect reported contained")
	}
}

func TestRectIntersect(t *testing.T) {
	a := RectXYWH(0, 0, 10, 10)
	b := RectXYWH(5, 5, 10, 10)
	want := RectXYWH(5, 5, 5, 5)
	if got := a.Intersect(b); got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false for overlapping rects")
	}
	c := RectXYWH(10, 0, 5, 5) // touching edge: no positive-area overlap
	if a.Intersects(c) {
		t.Error("edge-touching rects reported overlapping")
	}
	if got := a.Intersect(c); !got.Empty() {
		t.Errorf("Intersect of touching rects = %v, want empty", got)
	}
}

func TestRectUnion(t *testing.T) {
	a := RectXYWH(0, 0, 10, 10)
	b := RectXYWH(20, 20, 5, 5)
	want := RectXYWH(0, 0, 25, 25)
	if got := a.Union(b); got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union with empty = %v, want %v", got, a)
	}
	if got := (Rect{}).Union(b); got != b {
		t.Errorf("empty Union b = %v, want %v", got, b)
	}
}

func TestRectIntersectionProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh uint16) bool {
		a := RectXYWH(int64(ax), int64(ay), int64(aw)%200+1, int64(ah)%200+1)
		b := RectXYWH(int64(bx), int64(by), int64(bw)%200+1, int64(bh)%200+1)
		in := a.Intersect(b)
		if !in.Empty() {
			// Intersection must be inside both and symmetric.
			if !a.ContainsRect(in) || !b.ContainsRect(in) {
				return false
			}
			if in != b.Intersect(a) {
				return false
			}
		}
		// Union contains both.
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampInside(t *testing.T) {
	outer := RectXYWH(0, 0, 100, 100)
	cases := []struct {
		in, want Rect
	}{
		{RectXYWH(10, 10, 20, 20), RectXYWH(10, 10, 20, 20)},
		{RectXYWH(-5, 50, 20, 20), RectXYWH(0, 50, 20, 20)},
		{RectXYWH(95, 95, 20, 20), RectXYWH(80, 80, 20, 20)},
		{RectXYWH(50, -30, 20, 20), RectXYWH(50, 0, 20, 20)},
	}
	for _, c := range cases {
		if got := c.in.ClampInside(outer); got != c.want {
			t.Errorf("ClampInside(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBoundingBoxAndHPWL(t *testing.T) {
	pts := []Point{Pt(1, 2), Pt(5, 9), Pt(-3, 4)}
	bb := BoundingBox(pts)
	if bb != RectXYWH(-3, 2, 8, 7) {
		t.Errorf("BoundingBox = %v", bb)
	}
	if got := HPWL(pts); got != 15 {
		t.Errorf("HPWL = %d, want 15", got)
	}
	if HPWL(nil) != 0 || HPWL([]Point{Pt(3, 3)}) != 0 {
		t.Error("HPWL of <2 pins must be 0")
	}
	if BoundingBox(nil) != (Rect{}) {
		t.Error("BoundingBox(nil) should be empty")
	}
}

func TestHPWLInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(int64(rng.Intn(1000)), int64(rng.Intn(1000)))
		}
		want := HPWL(pts)
		rng.Shuffle(n, func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
		if got := HPWL(pts); got != want {
			t.Fatalf("HPWL changed under permutation: %d vs %d", got, want)
		}
	}
}

func TestOrientNames(t *testing.T) {
	for o := R0; o <= MY90; o++ {
		back, err := ParseOrient(o.String())
		if err != nil {
			t.Fatalf("ParseOrient(%s): %v", o, err)
		}
		if back != o {
			t.Errorf("round trip %s -> %s", o, back)
		}
	}
	if _, err := ParseOrient("bogus"); err == nil {
		t.Error("ParseOrient should reject unknown names")
	}
}

func TestOrientDims(t *testing.T) {
	for o := R0; o <= MY90; o++ {
		w, h := o.Dims(30, 10)
		if o.Swapped() {
			if w != 10 || h != 30 {
				t.Errorf("%s: Dims = %dx%d, want 10x30", o, w, h)
			}
		} else if w != 30 || h != 10 {
			t.Errorf("%s: Dims = %dx%d, want 30x10", o, w, h)
		}
	}
}

// TestOrientApplyMapsOutline checks that every orientation maps the corners
// of the library outline onto the corners of the placed outline.
func TestOrientApplyMapsOutline(t *testing.T) {
	const w, h = 30, 10
	corners := []Point{Pt(0, 0), Pt(w, 0), Pt(0, h), Pt(w, h)}
	for o := R0; o <= MY90; o++ {
		ow, oh := o.Dims(w, h)
		seen := map[Point]bool{}
		for _, c := range corners {
			p := o.Apply(c, w, h)
			if p.X < 0 || p.Y < 0 || p.X > ow || p.Y > oh {
				t.Errorf("%s: corner %v maps outside placed outline: %v", o, c, p)
			}
			seen[p] = true
		}
		if len(seen) != 4 {
			t.Errorf("%s: corners collapsed: %v", o, seen)
		}
		wantCorners := []Point{Pt(0, 0), Pt(ow, 0), Pt(0, oh), Pt(ow, oh)}
		for _, wc := range wantCorners {
			if !seen[wc] {
				t.Errorf("%s: placed corner %v not covered", o, wc)
			}
		}
	}
}

// TestOrientComposeMatchesApply verifies algebraically that applying a then b
// equals applying Compose(a, b), for all 64 pairs, on a grid of points.
func TestOrientComposeMatchesApply(t *testing.T) {
	const w, h = 12, 5
	for a := R0; a <= MY90; a++ {
		for b := R0; b <= MY90; b++ {
			c := Compose(a, b)
			aw, ah := a.Dims(w, h)
			for x := int64(0); x <= w; x += 3 {
				for y := int64(0); y <= h; y++ {
					p := Pt(x, y)
					step := b.Apply(a.Apply(p, w, h), aw, ah)
					direct := c.Apply(p, w, h)
					if step != direct {
						t.Fatalf("Compose(%s,%s)=%s mismatch at %v: stepwise %v, direct %v",
							a, b, c, p, step, direct)
					}
				}
			}
		}
	}
}

func TestOrientFlips(t *testing.T) {
	if R0.FlipX() != MX {
		t.Errorf("R0.FlipX = %s, want MX", R0.FlipX())
	}
	if R0.FlipY() != MY {
		t.Errorf("R0.FlipY = %s, want MY", R0.FlipY())
	}
	if MX.FlipX() != R0 {
		t.Errorf("MX.FlipX = %s, want R0 (involution)", MX.FlipX())
	}
	if MY.FlipY() != R0 {
		t.Errorf("MY.FlipY = %s, want R0 (involution)", MY.FlipY())
	}
	if R0.FlipX().FlipY() != R180 {
		t.Errorf("FlipX+FlipY = %s, want R180", R0.FlipX().FlipY())
	}
	// Flips preserve outline.
	for o := R0; o <= MY90; o++ {
		if o.FlipX().Swapped() != o.Swapped() || o.FlipY().Swapped() != o.Swapped() {
			t.Errorf("%s: flip changed outline orientation", o)
		}
	}
}

func TestComposeIdentity(t *testing.T) {
	for o := R0; o <= MY90; o++ {
		if Compose(o, R0) != o || Compose(R0, o) != o {
			t.Errorf("%s: identity law violated", o)
		}
	}
}
