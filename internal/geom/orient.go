package geom

import "fmt"

// Orient is one of the eight standard placement orientations (DEF naming).
// R0 is the library orientation; R90/R180/R270 rotate counter-clockwise;
// MY mirrors about the Y axis (flip left-right), MX mirrors about the X axis
// (flip top-bottom); MX90 and MY90 combine a mirror with a 90° rotation.
//
// The macro-flipping post-process of the HiDaP flow only uses the subset
// {R0, MX, MY, R180}, which preserves the macro outline; the full set is
// provided for completeness and used by shape-curve rotation.
type Orient uint8

const (
	R0 Orient = iota
	R90
	R180
	R270
	MX
	MY
	MX90
	MY90
)

var orientNames = [...]string{"R0", "R90", "R180", "R270", "MX", "MY", "MX90", "MY90"}

func (o Orient) String() string {
	if int(o) < len(orientNames) {
		return orientNames[o]
	}
	return fmt.Sprintf("Orient(%d)", uint8(o))
}

// ParseOrient converts a DEF-style orientation name back to an Orient.
func ParseOrient(s string) (Orient, error) {
	for i, n := range orientNames {
		if n == s {
			return Orient(i), nil
		}
	}
	return R0, fmt.Errorf("geom: unknown orientation %q", s)
}

// Swapped reports whether the orientation exchanges width and height.
func (o Orient) Swapped() bool {
	switch o {
	case R90, R270, MX90, MY90:
		return true
	}
	return false
}

// OutlinePreserving reports whether applying o keeps a w×h outline w×h.
func (o Orient) OutlinePreserving() bool { return !o.Swapped() }

// Dims returns the placed outline of a cell whose library outline is w×h.
func (o Orient) Dims(w, h int64) (int64, int64) {
	if o.Swapped() {
		return h, w
	}
	return w, h
}

// Apply maps a point p given in the library frame of a w×h cell (origin at
// the lower-left corner) to the placed frame of the oriented cell, whose
// origin is again at the lower-left corner of the placed outline.
func (o Orient) Apply(p Point, w, h int64) Point {
	switch o {
	case R0:
		return p
	case R90:
		// (x,y) -> (h-1? ) Use continuous convention: rotate CCW then shift.
		return Point{h - p.Y, p.X}
	case R180:
		return Point{w - p.X, h - p.Y}
	case R270:
		return Point{p.Y, w - p.X}
	case MY:
		return Point{w - p.X, p.Y}
	case MX:
		return Point{p.X, h - p.Y}
	case MY90:
		return Point{h - p.Y, w - p.X}
	case MX90:
		return Point{p.Y, p.X}
	}
	return p
}

// Compose returns the orientation equivalent to applying first a, then b.
func Compose(a, b Orient) Orient {
	// Represent each orientation as (rotation quarter-turns, mirrored about Y).
	ra, ma := decompose(a)
	rb, mb := decompose(b)
	// Applying a then b: total mirror = ma XOR mb; rotation composes, but a
	// mirror conjugates the rotation direction of what follows.
	var r int
	if mb {
		r = (rb - ra + 8) % 4
	} else {
		r = (ra + rb) % 4
	}
	return compose(r, ma != mb)
}

// decompose returns (quarter-turns CCW, mirroredY) such that the orientation
// equals "mirror about Y axis if mirroredY, then rotate CCW by quarter-turns".
func decompose(o Orient) (int, bool) {
	switch o {
	case R0:
		return 0, false
	case R90:
		return 1, false
	case R180:
		return 2, false
	case R270:
		return 3, false
	case MY:
		return 0, true
	case MY90:
		return 1, true
	case MX:
		return 2, true
	case MX90:
		return 3, true
	}
	return 0, false
}

func compose(r int, m bool) Orient {
	if !m {
		return [...]Orient{R0, R90, R180, R270}[r%4]
	}
	return [...]Orient{MY, MY90, MX, MX90}[r%4]
}

// FlipX returns o composed with a top-bottom flip (mirror about X axis).
func (o Orient) FlipX() Orient { return Compose(o, MX) }

// FlipY returns o composed with a left-right flip (mirror about Y axis).
func (o Orient) FlipY() Orient { return Compose(o, MY) }
