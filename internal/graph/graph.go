// Package graph provides the compact connectivity structures used to
// traverse Gnet: directed cell-level fanout/fanin adjacency and a bipartite
// cell–net incidence, both in CSR (compressed sparse row) form, plus the
// multi-source BFS used for glue-logic area assignment (paper §IV-C, which
// cites Then et al., "The more the merrier", for the traversal pattern).
//
// High-fanout nets make a materialized cell-to-cell clique quadratic; the
// bipartite form keeps every traversal linear in the number of pins.
package graph

import "repro/internal/netlist"

// CSR is a compressed adjacency: the neighbors of vertex v are
// Targets[Offsets[v]:Offsets[v+1]].
type CSR struct {
	Offsets []int32
	Targets []int32
}

// Row returns the adjacency list of vertex v.
func (c *CSR) Row(v int32) []int32 {
	return c.Targets[c.Offsets[v]:c.Offsets[v+1]]
}

// NumVertices returns the number of rows.
func (c *CSR) NumVertices() int { return len(c.Offsets) - 1 }

// buildCSR packs (src, dst) pairs, provided via a counting pass and a fill
// pass, into CSR form. count[v] must hold the out-degree of v.
func buildCSR(count []int32, fill func(place func(src, dst int32))) CSR {
	n := len(count)
	offsets := make([]int32, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + count[i]
	}
	targets := make([]int32, offsets[n])
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	fill(func(src, dst int32) {
		targets[cursor[src]] = dst
		cursor[src]++
	})
	return CSR{Offsets: offsets, Targets: targets}
}

// Directed is the cell-level directed view of Gnet. Fanout lists, for each
// cell, every sink cell of every net the cell drives; Fanin is the reverse.
// Both are linear in the pin count because every net has at most one driver.
type Directed struct {
	Fanout CSR
	Fanin  CSR
}

// DirectedFromDesign builds the directed adjacency of a design.
func DirectedFromDesign(d *netlist.Design) *Directed {
	n := len(d.Cells)
	outCount := make([]int32, n)
	inCount := make([]int32, n)
	for i := range d.Nets {
		net := &d.Nets[i]
		driver := netlist.CellID(netlist.None)
		sinks := 0
		for _, pid := range net.Pins {
			p := d.Pin(pid)
			if p.Dir == netlist.DirOut {
				driver = p.Cell
			} else {
				sinks++
			}
		}
		if driver == netlist.None || sinks == 0 {
			continue
		}
		outCount[driver] += int32(sinks)
		for _, pid := range net.Pins {
			p := d.Pin(pid)
			if p.Dir == netlist.DirIn {
				inCount[p.Cell]++
			}
		}
	}
	fillBoth := func(place func(src, dst int32), reverse bool) {
		for i := range d.Nets {
			net := &d.Nets[i]
			driver := netlist.CellID(netlist.None)
			for _, pid := range net.Pins {
				if p := d.Pin(pid); p.Dir == netlist.DirOut {
					driver = p.Cell
				}
			}
			if driver == netlist.None {
				continue
			}
			for _, pid := range net.Pins {
				p := d.Pin(pid)
				if p.Dir == netlist.DirIn {
					if reverse {
						place(int32(p.Cell), int32(driver))
					} else {
						place(int32(driver), int32(p.Cell))
					}
				}
			}
		}
	}
	return &Directed{
		Fanout: buildCSR(outCount, func(place func(src, dst int32)) { fillBoth(place, false) }),
		Fanin:  buildCSR(inCount, func(place func(src, dst int32)) { fillBoth(place, true) }),
	}
}

// Bipartite is the cell–net incidence of Gnet, direction-blind.
type Bipartite struct {
	CellNets CSR // cell -> nets it touches
	NetCells CSR // net -> cells on it
}

// BipartiteFromDesign builds the bipartite incidence of a design.
func BipartiteFromDesign(d *netlist.Design) *Bipartite {
	cellCount := make([]int32, len(d.Cells))
	netCount := make([]int32, len(d.Nets))
	for i := range d.Pins {
		cellCount[d.Pins[i].Cell]++
		netCount[d.Pins[i].Net]++
	}
	return &Bipartite{
		CellNets: buildCSR(cellCount, func(place func(src, dst int32)) {
			for i := range d.Pins {
				place(int32(d.Pins[i].Cell), int32(d.Pins[i].Net))
			}
		}),
		NetCells: buildCSR(netCount, func(place func(src, dst int32)) {
			for i := range d.Pins {
				place(int32(d.Pins[i].Net), int32(d.Pins[i].Cell))
			}
		}),
	}
}

// Unlabeled marks vertices not reached by MultiSourceLabel.
const Unlabeled int32 = -1

// MultiSourceLabel runs a multi-source BFS over cells (stepping cell → net
// → cell) from the given seed cells. Every reachable cell receives the
// label of its nearest seed; ties resolve to the seed dequeued first, which
// is deterministic given the seed order. It returns the per-cell labels and
// BFS distances (in cell hops; Unlabeled / -1 where unreached).
func (bp *Bipartite) MultiSourceLabel(seeds []int32, seedLabels []int32) (labels, dist []int32) {
	nCells := bp.CellNets.NumVertices()
	labels = make([]int32, nCells)
	dist = make([]int32, nCells)
	for i := range labels {
		labels[i] = Unlabeled
		dist[i] = -1
	}
	netSeen := make([]bool, bp.NetCells.NumVertices())
	queue := make([]int32, 0, len(seeds))
	for i, s := range seeds {
		if labels[s] != Unlabeled {
			continue
		}
		labels[s] = seedLabels[i]
		dist[s] = 0
		queue = append(queue, s)
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, nid := range bp.CellNets.Row(v) {
			if netSeen[nid] {
				continue
			}
			netSeen[nid] = true
			for _, c := range bp.NetCells.Row(nid) {
				if labels[c] != Unlabeled {
					continue
				}
				labels[c] = labels[v]
				dist[c] = dist[v] + 1
				queue = append(queue, c)
			}
		}
	}
	return labels, dist
}
