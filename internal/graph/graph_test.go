package graph

import (
	"testing"

	"repro/internal/netlist"
)

// chainDesign builds: p -> a -> b -> c, plus a high-fanout net b -> {s0..s4}.
func chainDesign(t *testing.T) (*netlist.Design, map[string]netlist.CellID) {
	t.Helper()
	b := netlist.NewBuilder("chain")
	ids := map[string]netlist.CellID{}
	ids["p"] = b.AddPort("p")
	ids["a"] = b.AddComb("a", 100, "")
	ids["b"] = b.AddComb("b", 100, "")
	ids["c"] = b.AddComb("c", 100, "")
	for _, n := range []string{"s0", "s1", "s2", "s3", "s4"} {
		ids[n] = b.AddComb(n, 100, "")
	}
	b.Wire("n0", ids["p"], ids["a"])
	b.Wire("n1", ids["a"], ids["b"])
	b.Wire("n2", ids["b"], ids["c"])
	b.Wire("nf", ids["b"], ids["s0"], ids["s1"], ids["s2"], ids["s3"], ids["s4"])
	return b.MustBuild(), ids
}

func TestDirectedAdjacency(t *testing.T) {
	d, ids := chainDesign(t)
	g := DirectedFromDesign(d)
	// b drives c and s0..s4 -> fanout 6.
	fo := g.Fanout.Row(int32(ids["b"]))
	if len(fo) != 6 {
		t.Errorf("fanout(b) = %d, want 6", len(fo))
	}
	// c's fanin is exactly b.
	fi := g.Fanin.Row(int32(ids["c"]))
	if len(fi) != 1 || fi[0] != int32(ids["b"]) {
		t.Errorf("fanin(c) = %v, want [b]", fi)
	}
	// Port p has no fanin.
	if len(g.Fanin.Row(int32(ids["p"]))) != 0 {
		t.Error("port should have no fanin")
	}
	// Total edges linear in pins.
	if got, want := len(g.Fanout.Targets), len(g.Fanin.Targets); got != want {
		t.Errorf("fanout edges %d != fanin edges %d", got, want)
	}
}

func TestBipartiteIncidence(t *testing.T) {
	d, ids := chainDesign(t)
	bp := BipartiteFromDesign(d)
	if bp.CellNets.NumVertices() != len(d.Cells) {
		t.Errorf("CellNets rows = %d", bp.CellNets.NumVertices())
	}
	if bp.NetCells.NumVertices() != len(d.Nets) {
		t.Errorf("NetCells rows = %d", bp.NetCells.NumVertices())
	}
	// b touches n1 (sink), n2 (driver), nf (driver) -> 3 nets.
	if got := len(bp.CellNets.Row(int32(ids["b"]))); got != 3 {
		t.Errorf("nets(b) = %d, want 3", got)
	}
	// nf has 6 cells.
	nf := d.Nets[3]
	if nf.Name != "nf" {
		t.Fatalf("net order changed: %q", nf.Name)
	}
	if got := len(bp.NetCells.Row(3)); got != 6 {
		t.Errorf("cells(nf) = %d, want 6", got)
	}
}

func TestMultiSourceLabel(t *testing.T) {
	d, ids := chainDesign(t)
	bp := BipartiteFromDesign(d)
	// Seeds: p (label 10) and c (label 20).
	labels, dist := bp.MultiSourceLabel(
		[]int32{int32(ids["p"]), int32(ids["c"])},
		[]int32{10, 20},
	)
	if labels[ids["p"]] != 10 || dist[ids["p"]] != 0 {
		t.Errorf("seed p: label=%d dist=%d", labels[ids["p"]], dist[ids["p"]])
	}
	if labels[ids["c"]] != 20 || dist[ids["c"]] != 0 {
		t.Errorf("seed c: label=%d dist=%d", labels[ids["c"]], dist[ids["c"]])
	}
	// a is 1 hop from p, 2 hops from c -> label 10.
	if labels[ids["a"]] != 10 || dist[ids["a"]] != 1 {
		t.Errorf("a: label=%d dist=%d, want 10/1", labels[ids["a"]], dist[ids["a"]])
	}
	// b is 2 hops from p and 1 hop from c -> label 20.
	if labels[ids["b"]] != 20 || dist[ids["b"]] != 1 {
		t.Errorf("b: label=%d dist=%d, want 20/1", labels[ids["b"]], dist[ids["b"]])
	}
	// s* hang off b's fanout net -> 2 hops from c.
	if labels[ids["s3"]] != 20 || dist[ids["s3"]] != 2 {
		t.Errorf("s3: label=%d dist=%d, want 20/2", labels[ids["s3"]], dist[ids["s3"]])
	}
}

func TestMultiSourceLabelUnreachable(t *testing.T) {
	b := netlist.NewBuilder("u")
	a := b.AddComb("a", 100, "")
	c := b.AddComb("c", 100, "")
	b.Wire("n", a) // degenerate single-pin net
	_ = c          // isolated cell
	d := b.MustBuild()
	bp := BipartiteFromDesign(d)
	labels, dist := bp.MultiSourceLabel([]int32{int32(a)}, []int32{1})
	if labels[c] != Unlabeled || dist[c] != -1 {
		t.Errorf("isolated cell labeled: %d/%d", labels[c], dist[c])
	}
}

func TestMultiSourceDuplicateSeeds(t *testing.T) {
	d, ids := chainDesign(t)
	bp := BipartiteFromDesign(d)
	labels, _ := bp.MultiSourceLabel(
		[]int32{int32(ids["a"]), int32(ids["a"])},
		[]int32{5, 7},
	)
	if labels[ids["a"]] != 5 {
		t.Errorf("duplicate seed should keep first label, got %d", labels[ids["a"]])
	}
}

func TestCSRRowBounds(t *testing.T) {
	d, _ := chainDesign(t)
	g := DirectedFromDesign(d)
	total := 0
	for v := int32(0); v < int32(g.Fanout.NumVertices()); v++ {
		total += len(g.Fanout.Row(v))
	}
	if total != len(g.Fanout.Targets) {
		t.Errorf("row partition broken: %d vs %d", total, len(g.Fanout.Targets))
	}
}

func TestDeterministicTraversal(t *testing.T) {
	d, ids := chainDesign(t)
	bp := BipartiteFromDesign(d)
	l1, d1 := bp.MultiSourceLabel([]int32{int32(ids["p"])}, []int32{1})
	l2, d2 := bp.MultiSourceLabel([]int32{int32(ids["p"])}, []int32{1})
	for i := range l1 {
		if l1[i] != l2[i] || d1[i] != d2[i] {
			t.Fatal("BFS not deterministic")
		}
	}
}
