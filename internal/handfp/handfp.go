// Package handfp is the "handcrafted floorplan" oracle of the paper's
// evaluation (the handFP flow of Tables II/III). The weeks of expert
// iteration are simulated by starting from the designer's planted intent —
// the synthetic circuit generator records where its architect meant every
// macro to go — followed by local refinement of macro positions on real
// netlist wirelength and a flipping pass.
package handfp

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/geom"
	"repro/internal/legalize"
	"repro/internal/mbonds"
	"repro/internal/netlist"
	"repro/internal/placement"
)

// Intent maps macro cell names to their intended placed outline.
type Intent map[string]geom.Rect

// Options tunes the refinement.
type Options struct {
	Seed int64
	// RefineRounds is the annealing budget of the local refinement
	// (default 160 rounds; experts iterate for weeks).
	RefineRounds int
}

// DefaultOptions returns the standard expert effort.
func DefaultOptions() Options { return Options{RefineRounds: 160} }

// Place realizes the handcrafted floorplan. A cancelled ctx aborts the
// refinement anneal and returns ctx.Err().
func Place(ctx context.Context, d *netlist.Design, intent Intent, opt Options) (*placement.Placement, error) {
	pl := placement.New(d)
	macros := d.Macros()
	for _, m := range macros {
		r, ok := intent[d.Cell(m).Name]
		if !ok {
			return nil, fmt.Errorf("handfp: no intent for macro %s", d.Cell(m).Name)
		}
		o := geom.R0
		c := d.Cell(m)
		if r.W == c.Height && r.H == c.Width && c.Width != c.Height {
			o = geom.R90
		}
		pl.PlaceOriented(m, geom.Pt(r.X, r.Y), o)
	}
	legalize.Macros(pl, d.Die)
	refine(ctx, pl, macros, opt)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	legalize.Macros(pl, d.Die)
	flipAll(pl, macros)
	return pl, nil
}

// refine locally improves macro positions on macro-incident netlist
// wirelength: small slides only, so the expert's global structure is kept.
func refine(ctx context.Context, pl *placement.Placement, macros []netlist.CellID, opt Options) {
	if len(macros) == 0 {
		return
	}
	d := pl.D
	die := d.Die
	rounds := opt.RefineRounds
	if rounds <= 0 {
		rounds = 80
	}

	bonds := mbonds.Extract(d, mbonds.DefaultParams())
	overlapW := float64(die.W+die.H) / 32
	cost := func() float64 {
		sum := mbonds.WL(pl, bonds)
		for i, m := range macros {
			rm := pl.Rect(m)
			for _, o := range macros[i+1:] {
				if ov := rm.Intersect(pl.Rect(o)).Area(); ov > 0 {
					sum += overlapW * float64(ov) / float64(die.W)
				}
			}
		}
		return sum
	}

	step := die.W / 16 // experts move things around freely
	perturb := func(rng *rand.Rand) func() {
		switch rng.Intn(4) {
		case 0: // swap two macros (positions exchanged, clamped)
			mi := macros[rng.Intn(len(macros))]
			mj := macros[rng.Intn(len(macros))]
			oi, oj := pl.Orient[mi], pl.Orient[mj]
			pi, pj := pl.Pos[mi], pl.Pos[mj]
			ri := geom.RectXYWH(pj.X, pj.Y, pl.Rect(mi).W, pl.Rect(mi).H).ClampInside(die)
			rj := geom.RectXYWH(pi.X, pi.Y, pl.Rect(mj).W, pl.Rect(mj).H).ClampInside(die)
			pl.PlaceOriented(mi, geom.Pt(ri.X, ri.Y), oi)
			pl.PlaceOriented(mj, geom.Pt(rj.X, rj.Y), oj)
			return func() {
				pl.PlaceOriented(mi, pi, oi)
				pl.PlaceOriented(mj, pj, oj)
			}
		default: // slide one macro
			m := macros[rng.Intn(len(macros))]
			old := pl.Pos[m]
			o := pl.Orient[m] // slides never change orientation
			dx := rng.Int63n(2*step+1) - step
			dy := rng.Int63n(2*step+1) - step
			r := pl.Rect(m).Translate(dx, dy).ClampInside(die)
			pl.PlaceOriented(m, geom.Pt(r.X, r.Y), o)
			return func() { pl.PlaceOriented(m, old, o) }
		}
	}

	bestPos := make([]geom.Point, len(macros))
	bestOri := make([]geom.Orient, len(macros))
	snapshot := func() {
		for i, m := range macros {
			bestPos[i] = pl.Pos[m]
			bestOri[i] = pl.Orient[m]
		}
	}
	anneal.Run(ctx, anneal.Options{
		Seed: opt.Seed, MovesPerRound: 48, MaxRounds: rounds, Alpha: 0.95, StallRounds: 40,
	}, cost, perturb, snapshot)
	for i, m := range macros {
		pl.PlaceOriented(m, bestPos[i], bestOri[i])
	}
}

func flipAll(pl *placement.Placement, macros []netlist.CellID) {
	for _, m := range macros {
		base := pl.Orient[m]
		bestO := base
		bestC := macroPinWL(pl, m)
		for _, o := range []geom.Orient{base.FlipX(), base.FlipY(), base.FlipX().FlipY()} {
			pl.PlaceOriented(m, pl.Pos[m], o)
			if c := macroPinWL(pl, m); c < bestC {
				bestC = c
				bestO = o
			}
		}
		pl.PlaceOriented(m, pl.Pos[m], bestO)
	}
}

func macroPinWL(pl *placement.Placement, m netlist.CellID) int64 {
	d := pl.D
	var sum int64
	for _, pid := range d.Cell(m).Pins {
		sum += pl.NetHPWL(d.Pin(pid).Net)
	}
	return sum
}
