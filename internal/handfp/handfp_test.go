package handfp

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
)

func design(t testing.TB) (*netlist.Design, Intent) {
	b := netlist.NewBuilder("hd")
	b.SetDie(geom.RectXYWH(0, 0, 100_000, 100_000))
	intent := Intent{}
	var prev netlist.CellID = netlist.None
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("m%d", i)
		m := b.AddMacro(name, 20_000, 10_000, "")
		intent[name] = geom.RectXYWH(int64(i)*22_000, 0, 20_000, 10_000)
		if prev != netlist.None {
			b.Wire(fmt.Sprintf("n%d", i), prev, m)
		}
		prev = m
	}
	return b.MustBuild(), intent
}

func TestPlaceHonorsIntent(t *testing.T) {
	d, intent := design(t)
	pl, err := Place(context.Background(), d, intent, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Refinement slides are local: macros stay within a quarter-die of
	// their intended spot.
	for _, m := range d.Macros() {
		name := d.Cell(m).Name
		want := intent[name].Center()
		got := pl.Center(m)
		if got.ManhattanDist(want) > d.Die.W/2 {
			t.Errorf("%s drifted from intent: %v vs %v", name, got, want)
		}
	}
	if ov := pl.MacroOverlapArea(); ov != 0 {
		t.Errorf("overlap = %d", ov)
	}
	if err := pl.MacrosInsideDie(); err != nil {
		t.Error(err)
	}
}

func TestPlaceRotatedIntent(t *testing.T) {
	d, intent := design(t)
	// Rotate m3's intent: 10000x20000.
	intent["m3"] = geom.RectXYWH(0, 50_000, 10_000, 20_000)
	pl, err := Place(context.Background(), d, intent, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m3 := d.CellByName("m3")
	r := pl.Rect(m3)
	if r.W != 10_000 || r.H != 20_000 {
		t.Errorf("m3 outline = %v, want rotated 10000x20000", r)
	}
	// The flipping pass may compose mirrors onto the rotation; any
	// orientation with a swapped outline realizes the rotated intent.
	if !pl.Orient[m3].Swapped() {
		t.Errorf("m3 orient = %v, want a 90-degree family orientation", pl.Orient[m3])
	}
}

func TestPlaceMissingIntentFails(t *testing.T) {
	d, intent := design(t)
	delete(intent, "m2")
	if _, err := Place(context.Background(), d, intent, DefaultOptions()); err == nil {
		t.Error("expected error for missing intent")
	}
}

func TestRefineImprovesOrKeepsWL(t *testing.T) {
	d, intent := design(t)
	// Unrefined: rounds=0 is replaced by default, so compare against a
	// placement pinned exactly at intent.
	pinned, err := Place(context.Background(), d, intent, Options{Seed: 1, RefineRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Place(context.Background(), d, intent, Options{Seed: 1, RefineRounds: 120})
	if err != nil {
		t.Fatal(err)
	}
	if refined.TotalHPWL() > pinned.TotalHPWL() {
		t.Errorf("refinement regressed WL: %d -> %d", pinned.TotalHPWL(), refined.TotalHPWL())
	}
}

func TestPlaceDeterministic(t *testing.T) {
	d, intent := design(t)
	a, _ := Place(context.Background(), d, intent, DefaultOptions())
	b, _ := Place(context.Background(), d, intent, DefaultOptions())
	for _, m := range d.Macros() {
		if a.Pos[m] != b.Pos[m] || a.Orient[m] != b.Orient[m] {
			t.Fatal("nondeterministic")
		}
	}
}
