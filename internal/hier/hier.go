// Package hier implements the hierarchy-tree analysis of the HiDaP flow:
// per-subtree area and macro aggregates over HT, and the hierarchical
// declustering of paper §IV-B (Algorithm 3) that selects, for one
// floorplanning level, the set of blocks to place (HCB) and the small glue
// nodes (HCG) whose area is later folded into the blocks.
package hier

import (
	"fmt"

	"repro/internal/netlist"
)

// Tree caches subtree aggregates of a design's hierarchy.
type Tree struct {
	D *netlist.Design
	// SubArea[n] is the total outline area of all non-port cells under n
	// (inclusive). SubMacros[n] counts macros under n.
	SubArea   []int64
	SubMacros []int32
}

// New computes the aggregates for a design.
func New(d *netlist.Design) *Tree {
	t := &Tree{
		D:         d,
		SubArea:   make([]int64, len(d.Hier)),
		SubMacros: make([]int32, len(d.Hier)),
	}
	// A reverse topological sweep aggregates bottom-up. Builder-produced
	// designs happen to order children after parents, but rebuilt
	// hierarchies (netlist.ReplaceHier, autocluster) may not, so the order
	// is derived from the tree itself.
	order := d.HierTopo()
	for oi := len(order) - 1; oi >= 0; oi-- {
		i := order[oi]
		n := &d.Hier[i]
		for _, cid := range n.Cells {
			c := d.Cell(cid)
			if c.Kind == netlist.KindPort {
				continue
			}
			t.SubArea[i] += c.Area()
			if c.Kind == netlist.KindMacro {
				t.SubMacros[i]++
			}
		}
		for _, ch := range n.Children {
			t.SubArea[i] += t.SubArea[ch]
			t.SubMacros[i] += t.SubMacros[ch]
		}
	}
	return t
}

// Area returns the subtree cell area of node n.
func (t *Tree) Area(n netlist.HierID) int64 { return t.SubArea[n] }

// MacroCount returns the number of macros under node n.
func (t *Tree) MacroCount(n netlist.HierID) int32 { return t.SubMacros[n] }

// MacrosUnder appends all macro cell IDs under node n to dst (pre-order).
func (t *Tree) MacrosUnder(n netlist.HierID, dst []netlist.CellID) []netlist.CellID {
	node := t.D.Node(n)
	for _, cid := range node.Cells {
		if t.D.Cell(cid).Kind == netlist.KindMacro {
			dst = append(dst, cid)
		}
	}
	for _, ch := range node.Children {
		dst = t.MacrosUnder(ch, dst)
	}
	return dst
}

// Block is one floorplanning block produced by declustering: either a
// hierarchy subtree (Node valid) or a bare macro cell that sits directly at
// the declustered level (Macro valid, Node == None).
type Block struct {
	Name       string
	Node       netlist.HierID // None for bare-macro blocks
	Macro      netlist.CellID // None unless a bare-macro block
	Cells      []netlist.CellID
	MacroCells []netlist.CellID
	Area       int64 // am seed: outline area of member cells
}

// MacroCount returns the number of macros in the block.
func (b *Block) MacroCount() int { return len(b.MacroCells) }

// Membership constants for Result.CellBlock.
const (
	// Glue marks a cell under nh that belongs to no block (HCG logic).
	Glue int32 = -1
	// Outside marks a cell that is not under the declustered node at all.
	Outside int32 = -2
)

// Result is the outcome of declustering one hierarchy node.
type Result struct {
	Blocks []Block
	// CellBlock maps every cell of the design to the index of its block,
	// or Glue / Outside.
	CellBlock []int32
	// GlueArea is the total area of glue cells under nh.
	GlueArea int64
}

// Params controls declustering. Fractions are relative to the area of the
// declustered node, matching the paper's 1% open_area and 40% min_area.
type Params struct {
	OpenAreaFrac float64
	MinAreaFrac  float64
}

// DefaultParams are the values used in the paper's experiments.
func DefaultParams() Params { return Params{OpenAreaFrac: 0.01, MinAreaFrac: 0.40} }

// Decluster computes the blocks for floorplanning the subtree of nh.
//
// Interpretation notes (see DESIGN.md): the BFS queue is seeded with the
// children of nh (seeding with nh itself would degenerate at the top call
// because the root contains macros); macro cells sitting directly at an
// expanded level become bare-macro blocks; and if the sweep produces fewer
// than two blocks, the single surviving block is transparently expanded
// again so that wrapper modules do not stall the recursion.
func (t *Tree) Decluster(nh netlist.HierID, p Params) *Result {
	d := t.D
	openArea := int64(p.OpenAreaFrac * float64(t.SubArea[nh]))
	minArea := int64(p.MinAreaFrac * float64(t.SubArea[nh]))

	res := &Result{CellBlock: make([]int32, len(d.Cells))}
	for i := range res.CellBlock {
		res.CellBlock[i] = Outside
	}

	var glueNodes []netlist.HierID
	var glueCells []netlist.CellID

	// expandInto pushes the internals of node n: children onto the queue,
	// direct macro cells as bare-macro blocks, remaining direct cells as glue.
	var queue []netlist.HierID
	expandInto := func(n netlist.HierID) {
		node := d.Node(n)
		queue = append(queue, node.Children...)
		for _, cid := range node.Cells {
			c := d.Cell(cid)
			switch c.Kind {
			case netlist.KindMacro:
				res.Blocks = append(res.Blocks, Block{
					Name:       c.Name,
					Node:       netlist.None,
					Macro:      cid,
					Cells:      []netlist.CellID{cid},
					MacroCells: []netlist.CellID{cid},
					Area:       c.Area(),
				})
			case netlist.KindPort:
				// Ports are terminals, never block members.
			default:
				glueCells = append(glueCells, cid)
			}
		}
	}

	// sweep runs Algorithm 3 with the queue seeded from the internals of
	// start. It resets any previous outcome so it can be re-run for the
	// wrapper-collapse case.
	sweep := func(start netlist.HierID) {
		res.Blocks = res.Blocks[:0]
		glueNodes = glueNodes[:0]
		glueCells = glueCells[:0]
		queue = queue[:0]
		expandInto(start)
		for len(queue) > 0 {
			m := queue[0]
			queue = queue[1:]
			switch {
			case t.SubMacros[m] == 0 && t.SubArea[m] > openArea && len(d.Node(m).Children) > 0:
				expandInto(m)
			case t.SubArea[m] > minArea || t.SubMacros[m] > 0:
				res.Blocks = append(res.Blocks, t.subtreeBlock(m))
			default:
				glueNodes = append(glueNodes, m)
			}
		}
	}

	sweep(nh)
	// Wrapper collapse: a single subtree block cannot be floorplanned at
	// this level; open it up and try again. Each iteration descends one
	// hierarchy level, so this terminates at the leaves.
	for len(res.Blocks) == 1 && res.Blocks[0].Node != netlist.None {
		node := d.Node(res.Blocks[0].Node)
		hasMacroCell := false
		for _, cid := range node.Cells {
			if d.Cell(cid).Kind == netlist.KindMacro {
				hasMacroCell = true
			}
		}
		if len(node.Children) == 0 && !hasMacroCell {
			break // a true leaf block: nothing to open
		}
		sweep(res.Blocks[0].Node)
	}

	// Materialize membership.
	for bi := range res.Blocks {
		for _, cid := range res.Blocks[bi].Cells {
			res.CellBlock[cid] = int32(bi)
		}
	}
	for _, gn := range glueNodes {
		glueCells = d.SubtreeCells(gn, glueCells)
	}
	for _, cid := range glueCells {
		if d.Cell(cid).Kind == netlist.KindPort {
			continue
		}
		res.CellBlock[cid] = Glue
		res.GlueArea += d.Cell(cid).Area()
	}
	return res
}

// subtreeBlock materializes a hierarchy node as a block.
func (t *Tree) subtreeBlock(n netlist.HierID) Block {
	d := t.D
	cells := d.SubtreeCells(n, nil)
	b := Block{Name: d.Node(n).Path, Node: n, Macro: netlist.None}
	for _, cid := range cells {
		c := d.Cell(cid)
		if c.Kind == netlist.KindPort {
			continue
		}
		b.Cells = append(b.Cells, cid)
		b.Area += c.Area()
		if c.Kind == netlist.KindMacro {
			b.MacroCells = append(b.MacroCells, cid)
		}
	}
	if b.Name == "" {
		b.Name = fmt.Sprintf("node%d", n)
	}
	return b
}
