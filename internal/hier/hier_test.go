package hier

import (
	"testing"

	"repro/internal/netlist"
)

// fig1Style builds the hierarchy of the paper's Fig. 1/Fig. 5 example:
//
//	root
//	├── left   (8 macros in wrappers, some glue)
//	├── right  (8 macros in wrappers, some glue)
//	└── x      (big standard cell block, leaf)
func fig1Style(t *testing.T) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("fig1")
	for _, side := range []string{"left", "right"} {
		for i := 0; i < 8; i++ {
			path := side + "/ram" + string(rune('0'+i))
			b.AddMacro(path+"/mem", 2000, 1500, path)
			b.AddComb(path+"/ctl", 3_000, path)
		}
		b.AddComb(side+"/glue", 50_000, side)
	}
	// The x block: pure standard cells, sized to dominate min_area checks.
	b.AddComb("x/logic0", 30_000_000, "x")
	b.AddComb("x/logic1", 30_000_000, "x")
	return b.MustBuild()
}

func TestAggregates(t *testing.T) {
	d := fig1Style(t)
	tr := New(d)
	root := d.Root()
	if got := tr.MacroCount(root); got != 16 {
		t.Errorf("root macros = %d, want 16", got)
	}
	left := d.NodeByPath("left")
	if got := tr.MacroCount(left); got != 8 {
		t.Errorf("left macros = %d, want 8", got)
	}
	x := d.NodeByPath("x")
	if got := tr.MacroCount(x); got != 0 {
		t.Errorf("x macros = %d, want 0", got)
	}
	if tr.Area(root) != tr.Area(left)+tr.Area(d.NodeByPath("right"))+tr.Area(x) {
		t.Error("root area is not the sum of its children")
	}
	// Comb footprints snap to the row grid, so allow a sliver of rounding.
	if got := tr.Area(x); got < 59_900_000 || got > 60_000_000 {
		t.Errorf("x area = %d, want ~60M", got)
	}
}

func TestMacrosUnder(t *testing.T) {
	d := fig1Style(t)
	tr := New(d)
	ms := tr.MacrosUnder(d.Root(), nil)
	if len(ms) != 16 {
		t.Errorf("MacrosUnder(root) = %d, want 16", len(ms))
	}
	ms = tr.MacrosUnder(d.NodeByPath("right"), nil)
	if len(ms) != 8 {
		t.Errorf("MacrosUnder(right) = %d, want 8", len(ms))
	}
}

func TestDeclusterTopLevel(t *testing.T) {
	d := fig1Style(t)
	tr := New(d)
	res := tr.Decluster(d.Root(), DefaultParams())
	// Expect exactly three blocks: left, right (macros) and x (area > 40%).
	if len(res.Blocks) != 3 {
		names := []string{}
		for _, b := range res.Blocks {
			names = append(names, b.Name)
		}
		t.Fatalf("blocks = %d (%v), want 3", len(res.Blocks), names)
	}
	byName := map[string]*Block{}
	for i := range res.Blocks {
		byName[res.Blocks[i].Name] = &res.Blocks[i]
	}
	if b := byName["left"]; b == nil || b.MacroCount() != 8 {
		t.Errorf("left block missing or wrong macro count: %+v", b)
	}
	if b := byName["x"]; b == nil || b.MacroCount() != 0 {
		t.Errorf("x block missing or has macros: %+v", b)
	}
}

func TestDeclusterRecursionLevel(t *testing.T) {
	d := fig1Style(t)
	tr := New(d)
	left := d.NodeByPath("left")
	res := tr.Decluster(left, DefaultParams())
	// Each ram wrapper has a macro -> 8 blocks; glue cell is small.
	if len(res.Blocks) != 8 {
		t.Fatalf("blocks = %d, want 8", len(res.Blocks))
	}
	for _, b := range res.Blocks {
		if b.MacroCount() != 1 {
			t.Errorf("block %s macro count = %d, want 1", b.Name, b.MacroCount())
		}
	}
	if res.GlueArea == 0 {
		t.Error("left/glue should be glue area")
	}
}

func TestDeclusterLeafWithDirectMacros(t *testing.T) {
	// A wrapper whose macros are direct cells: bare-macro blocks appear.
	b := netlist.NewBuilder("leafy")
	b.AddMacro("grp/m0", 100, 100, "grp")
	b.AddMacro("grp/m1", 100, 100, "grp")
	b.AddComb("grp/c", 50, "grp")
	d := b.MustBuild()
	tr := New(d)
	res := tr.Decluster(d.NodeByPath("grp"), DefaultParams())
	if len(res.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2 bare macros", len(res.Blocks))
	}
	for _, blk := range res.Blocks {
		if blk.Macro == netlist.None || blk.Node != netlist.None {
			t.Errorf("expected bare-macro block, got %+v", blk)
		}
	}
}

func TestDeclusterWrapperCollapse(t *testing.T) {
	// root -> wrap -> {a (4 macros), b (4 macros)}: declustering the root
	// must see through the single wrapper.
	b := netlist.NewBuilder("wrap")
	for _, g := range []string{"wrap/a", "wrap/b"} {
		for i := 0; i < 4; i++ {
			p := g + "/r" + string(rune('0'+i))
			b.AddMacro(p+"/mem", 500, 500, p)
		}
	}
	d := b.MustBuild()
	tr := New(d)
	res := tr.Decluster(d.Root(), DefaultParams())
	if len(res.Blocks) != 2 {
		names := []string{}
		for _, blk := range res.Blocks {
			names = append(names, blk.Name)
		}
		t.Fatalf("blocks = %v, want [wrap/a wrap/b]", names)
	}
}

// TestDeclusterPartition checks the fundamental cut invariant: every
// non-port cell under nh lands in exactly one block or in glue; cells
// outside stay Outside.
func TestDeclusterPartition(t *testing.T) {
	d := fig1Style(t)
	tr := New(d)
	left := d.NodeByPath("left")
	res := tr.Decluster(left, DefaultParams())

	underLeft := map[netlist.CellID]bool{}
	for _, cid := range d.SubtreeCells(left, nil) {
		underLeft[cid] = true
	}
	var blockArea, glueArea int64
	for i := range d.Cells {
		cid := netlist.CellID(i)
		c := d.Cell(cid)
		m := res.CellBlock[i]
		if c.Kind == netlist.KindPort {
			continue
		}
		if underLeft[cid] {
			if m == Outside {
				t.Fatalf("cell %s under left marked Outside", c.Name)
			}
			if m == Glue {
				glueArea += c.Area()
			} else {
				blockArea += c.Area()
			}
		} else if m != Outside {
			t.Fatalf("cell %s outside left marked %d", c.Name, m)
		}
	}
	if got := blockArea + glueArea; got != tr.Area(left) {
		t.Errorf("partition area %d != subtree area %d", got, tr.Area(left))
	}
	if glueArea != res.GlueArea {
		t.Errorf("GlueArea = %d, computed %d", res.GlueArea, glueArea)
	}
}

// TestDeclusterBlockAreas: block Area equals the sum of member cell areas.
func TestDeclusterBlockAreas(t *testing.T) {
	d := fig1Style(t)
	tr := New(d)
	res := tr.Decluster(d.Root(), DefaultParams())
	for _, b := range res.Blocks {
		var sum int64
		for _, cid := range b.Cells {
			sum += d.Cell(cid).Area()
		}
		if sum != b.Area {
			t.Errorf("block %s Area = %d, member sum %d", b.Name, b.Area, sum)
		}
	}
}

func TestDeclusterDeterministic(t *testing.T) {
	d := fig1Style(t)
	tr := New(d)
	a := tr.Decluster(d.Root(), DefaultParams())
	b := tr.Decluster(d.Root(), DefaultParams())
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatal("nondeterministic block count")
	}
	for i := range a.Blocks {
		if a.Blocks[i].Name != b.Blocks[i].Name {
			t.Fatalf("nondeterministic order: %s vs %s", a.Blocks[i].Name, b.Blocks[i].Name)
		}
	}
}

func TestMinAreaControlsSoftBlocks(t *testing.T) {
	// With a huge min_area fraction, x (33% of total) drops to glue.
	d := fig1Style(t)
	tr := New(d)
	res := tr.Decluster(d.Root(), Params{OpenAreaFrac: 0.01, MinAreaFrac: 0.95})
	for _, b := range res.Blocks {
		if b.Name == "x" {
			t.Error("x should be glue when min_area is 95%")
		}
	}
	if res.GlueArea < tr.Area(d.NodeByPath("x")) {
		t.Errorf("GlueArea = %d, want >= area of x", res.GlueArea)
	}
}

// TestAggregatesRenumberedIDs checks that New tolerates hierarchies whose
// node IDs are not in builder (parent-before-child) order, as produced by
// netlist.ReplaceHier and the autocluster rewrite pass.
func TestAggregatesRenumberedIDs(t *testing.T) {
	d := fig1Style(t)
	// Rebuild the hierarchy with leaves numbered BEFORE their parents:
	// root(0) -> mem(3) -> {bank0(1), bank1(2)}, logic cells at root.
	nodes := []netlist.NewHierNode{
		{Parent: netlist.None},
		{Name: "bank0", Parent: 3},
		{Name: "bank1", Parent: 3},
		{Name: "mem", Parent: 0},
	}
	cellNode := make([]netlist.HierID, len(d.Cells))
	macros := 0
	for i := range d.Cells {
		if d.Cells[i].Kind == netlist.KindMacro {
			cellNode[i] = netlist.HierID(1 + macros%2)
			macros++
		}
	}
	nd, err := netlist.ReplaceHier(d, nodes, cellNode)
	if err != nil {
		t.Fatalf("ReplaceHier: %v", err)
	}
	tr := New(nd)
	if got := tr.MacroCount(3); got != 16 {
		t.Errorf("mem macros = %d, want 16 (got wrong bottom-up order?)", got)
	}
	if got := tr.MacroCount(0); got != 16 {
		t.Errorf("root macros = %d, want 16", got)
	}
	if tr.Area(3) != tr.Area(1)+tr.Area(2) {
		t.Errorf("mem area %d != bank0 %d + bank1 %d", tr.Area(3), tr.Area(1), tr.Area(2))
	}
	var macroArea int64
	for i := range nd.Cells {
		if nd.Cells[i].Kind == netlist.KindMacro {
			macroArea += nd.Cells[i].Area()
		}
	}
	if tr.Area(3) != macroArea {
		t.Errorf("mem area = %d, want %d", tr.Area(3), macroArea)
	}
}
