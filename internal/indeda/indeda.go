// Package indeda is the "industrial EDA floorplanner" baseline of the
// paper's evaluation (the IndEDA flow of Tables II/III): a competent but
// RTL-blind macro placer. It sees only the flat netlist — no hierarchy, no
// array/dataflow information — and follows the de-facto industrial recipe
// the paper describes: macros packed against the die walls, refined by
// simulated annealing on netlist wirelength with the standard-cell mass
// approximated at the die center.
package indeda

import (
	"context"
	"math/rand"
	"sort"

	"repro/internal/anneal"
	"repro/internal/geom"
	"repro/internal/legalize"
	"repro/internal/mbonds"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/sched"
)

// refineStream tags the seed stream of the annealing refinement under the
// user seed (see sched.Derive).
const refineStream int64 = 1

// Options tunes the baseline.
type Options struct {
	// Seed drives the annealing.
	Seed int64
	// HighEffort enables the paper's "high effort settings".
	HighEffort bool
	// WallWeight is the attraction of macros to the nearest die edge,
	// relative to wirelength (industrial tools strongly prefer wall
	// positions to keep the core area open).
	WallWeight float64
}

// DefaultOptions mirrors the paper's setup (high effort).
func DefaultOptions() Options {
	return Options{HighEffort: true, WallWeight: 0.4}
}

// Place produces a macro placement. Ports must already be fixed (they are
// read from the design); standard cells are left to the cell placer. A
// cancelled ctx aborts the annealing refinement and returns ctx.Err().
func Place(ctx context.Context, d *netlist.Design, opt Options) (*placement.Placement, error) {
	pl := placement.New(d)
	macros := d.Macros()
	if len(macros) == 0 {
		return pl, nil
	}
	if opt.WallWeight == 0 {
		opt.WallWeight = 0.4
	}

	packPeriphery(pl, macros)
	refine(ctx, pl, macros, opt)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	legalize.Macros(pl, d.Die)
	flipAll(pl, macros)
	return pl, nil
}

// packPeriphery places macros greedily along the four die walls, biggest
// first, leaving the core open for standard cells — the initial layout an
// industrial floorplanner produces.
func packPeriphery(pl *placement.Placement, macros []netlist.CellID) {
	d := pl.D
	die := d.Die
	order := append([]netlist.CellID(nil), macros...)
	sort.Slice(order, func(i, j int) bool {
		ai, aj := d.Cell(order[i]).Area(), d.Cell(order[j]).Area()
		if ai != aj {
			return ai > aj
		}
		return order[i] < order[j]
	})

	// Wall cursors: how far along each wall has been consumed, and the
	// strip depth of the current wall.
	type wall struct {
		used  int64
		depth int64
	}
	walls := [4]wall{} // 0=S, 1=N, 2=W, 3=E
	wallLen := [4]int64{die.W, die.W, die.H, die.H}

	wi := 0
	for _, m := range order {
		c := d.Cell(m)
		// Try walls round-robin until the macro fits along one.
		placed := false
		for try := 0; try < 4 && !placed; try++ {
			w := (wi + try) % 4
			horiz := w < 2
			ext := c.Width
			dep := c.Height
			if !horiz {
				ext = c.Height
				dep = c.Width
			}
			if walls[w].used+ext > wallLen[w] {
				continue
			}
			var pos geom.Point
			switch w {
			case 0: // south wall, left to right
				pos = geom.Pt(die.X+walls[w].used, die.Y)
			case 1: // north wall
				pos = geom.Pt(die.X+walls[w].used, die.Y2()-c.Height)
			case 2: // west wall, bottom to top
				pos = geom.Pt(die.X, die.Y+walls[w].used)
			case 3: // east wall
				pos = geom.Pt(die.X2()-c.Width, die.Y+walls[w].used)
			}
			pl.Place(m, pos)
			walls[w].used += ext
			if dep > walls[w].depth {
				walls[w].depth = dep
			}
			placed = true
			wi = (w + 1) % 4
		}
		if !placed {
			// Walls exhausted: drop into the core near the center; the
			// annealer and legalizer will sort it out.
			ctr := die.Center()
			pl.Place(m, geom.Pt(ctr.X-c.Width/2, ctr.Y-c.Height/2))
		}
	}
}

// refine anneals macro positions on netlist-derived connectivity: macro
// bonds extracted from the flat netlist (a few register hops, bus-width
// weighted — see package mbonds), plus the industrial wall preference and
// an overlap penalty. This is the connectivity picture a commercial,
// RTL-blind floorplanner optimizes before cell placement.
func refine(ctx context.Context, pl *placement.Placement, macros []netlist.CellID, opt Options) {
	d := pl.D
	die := d.Die
	bonds := mbonds.Extract(d, mbonds.DefaultParams())
	meanBondW := 1.0
	if len(bonds) > 0 {
		var t float64
		for i := range bonds {
			t += bonds[i].W
		}
		meanBondW = t / float64(len(bonds))
	}

	overlapW := float64(die.W+die.H) / 64 // overlap area → cost scale
	cost := func() float64 {
		sum := mbonds.WL(pl, bonds)
		// Wall preference: distance to nearest edge, scaled to compete
		// with a typical bond.
		for _, m := range macros {
			r := pl.Rect(m)
			edge := min4(r.X-die.X, die.X2()-r.X2(), r.Y-die.Y, die.Y2()-r.Y2())
			sum += opt.WallWeight * meanBondW * float64(edge)
		}
		// Overlap penalty.
		for i, m := range macros {
			rm := pl.Rect(m)
			for _, o := range macros[i+1:] {
				if ov := rm.Intersect(pl.Rect(o)).Area(); ov > 0 {
					sum += overlapW * meanBondW * float64(ov) / float64(die.W)
				}
			}
		}
		return sum
	}

	step := die.W / 10
	perturb := func(rng *rand.Rand) func() {
		switch rng.Intn(3) {
		case 0: // swap two macros (clamped: outlines differ)
			i, j := rng.Intn(len(macros)), rng.Intn(len(macros))
			mi, mj := macros[i], macros[j]
			pi, pj := pl.Pos[mi], pl.Pos[mj]
			ri := geom.RectXYWH(pj.X, pj.Y, pl.Rect(mi).W, pl.Rect(mi).H).ClampInside(die)
			rj := geom.RectXYWH(pi.X, pi.Y, pl.Rect(mj).W, pl.Rect(mj).H).ClampInside(die)
			pl.Place(mi, geom.Pt(ri.X, ri.Y))
			pl.Place(mj, geom.Pt(rj.X, rj.Y))
			return func() { pl.Place(mi, pi); pl.Place(mj, pj) }
		case 1: // translate one macro
			m := macros[rng.Intn(len(macros))]
			old := pl.Pos[m]
			dx := rng.Int63n(2*step+1) - step
			dy := rng.Int63n(2*step+1) - step
			r := pl.Rect(m).Translate(dx, dy).ClampInside(die)
			pl.Place(m, geom.Pt(r.X, r.Y))
			return func() { pl.Place(m, old) }
		default: // snap one macro to the nearest wall
			m := macros[rng.Intn(len(macros))]
			old := pl.Pos[m]
			r := pl.Rect(m)
			dl := r.X - die.X
			dr := die.X2() - r.X2()
			db := r.Y - die.Y
			dt := die.Y2() - r.Y2()
			switch min4(dl, dr, db, dt) {
			case dl:
				r.X = die.X
			case dr:
				r.X = die.X2() - r.W
			case db:
				r.Y = die.Y
			default:
				r.Y = die.Y2() - r.H
			}
			pl.Place(m, geom.Pt(r.X, r.Y))
			return func() { pl.Place(m, old) }
		}
	}

	// A commercial floorplanner's "high effort" is still a quick generic
	// pass relative to a dedicated optimizer; the schedules are sized so
	// that runtimes stay in the paper's 10-30 minute class proportionally.
	// The refine stage gets its own derived stream (stream 1 under the
	// user seed) so adding another randomized stage later cannot silently
	// correlate with — or shift — this one.
	sa := anneal.Options{Seed: sched.Derive(opt.Seed, refineStream), MovesPerRound: 12, MaxRounds: 25, Alpha: 0.88, StallRounds: 8}
	if opt.HighEffort {
		sa.MovesPerRound = 24
		sa.MaxRounds = 50
		sa.Alpha = 0.9
		sa.StallRounds = 12
	}
	bestPos := make([]geom.Point, len(macros))
	snapshot := func() {
		for i, m := range macros {
			bestPos[i] = pl.Pos[m]
		}
	}
	anneal.Run(ctx, sa, cost, perturb, snapshot)
	for i, m := range macros {
		pl.Place(m, bestPos[i])
	}
}

// flipAll greedily flips macros for pin wirelength, like any competent
// floorplanner (against placed macros and ports only).
func flipAll(pl *placement.Placement, macros []netlist.CellID) {
	d := pl.D
	for _, m := range macros {
		base := pl.Orient[m]
		bestO := base
		bestC := macroPinWL(pl, m)
		for _, o := range []geom.Orient{base.FlipX(), base.FlipY(), base.FlipX().FlipY()} {
			pl.PlaceOriented(m, pl.Pos[m], o)
			if c := macroPinWL(pl, m); c < bestC {
				bestC = c
				bestO = o
			}
		}
		pl.PlaceOriented(m, pl.Pos[m], bestO)
	}
	_ = d
}

func macroPinWL(pl *placement.Placement, m netlist.CellID) int64 {
	d := pl.D
	var sum int64
	for _, pid := range d.Cell(m).Pins {
		sum += pl.NetHPWL(d.Pin(pid).Net)
	}
	return sum
}

func min4(a, b, c, d int64) int64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	if d < m {
		m = d
	}
	return m
}
