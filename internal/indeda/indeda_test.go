package indeda

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
)

func wallDesign(t testing.TB) *netlist.Design {
	b := netlist.NewBuilder("wd")
	b.SetDie(geom.RectXYWH(0, 0, 200_000, 200_000))
	var prev netlist.CellID = netlist.None
	for i := 0; i < 8; i++ {
		m := b.AddMacro(fmt.Sprintf("m%d", i), 30_000, 20_000, "")
		if prev != netlist.None {
			b.Wire(fmt.Sprintf("n%d", i), prev, m)
		}
		prev = m
	}
	p := b.AddPort("in")
	b.SetPortPos(p, geom.Pt(0, 100_000))
	b.Wire("np", p, netlist.CellID(0))
	for i := 0; i < 50; i++ {
		b.AddComb(fmt.Sprintf("c%d", i), 1_000_000, "")
	}
	return b.MustBuild()
}

func TestPlaceLegal(t *testing.T) {
	d := wallDesign(t)
	pl, err := Place(context.Background(), d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !pl.AllMacrosPlaced() {
		t.Fatal("macros unplaced")
	}
	if ov := pl.MacroOverlapArea(); ov != 0 {
		t.Errorf("overlap = %d", ov)
	}
	if err := pl.MacrosInsideDie(); err != nil {
		t.Error(err)
	}
}

func TestPlacePrefersWalls(t *testing.T) {
	d := wallDesign(t)
	pl, err := Place(context.Background(), d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The industrial-style baseline should leave most macros near a die
	// edge (within 15% of the span).
	die := d.Die
	margin := die.W * 15 / 100
	nearWall := 0
	for _, m := range d.Macros() {
		r := pl.Rect(m)
		if r.X-die.X < margin || die.X2()-r.X2() < margin ||
			r.Y-die.Y < margin || die.Y2()-r.Y2() < margin {
			nearWall++
		}
	}
	if nearWall < 6 {
		t.Errorf("only %d of 8 macros near walls", nearWall)
	}
}

func TestPlaceDeterministic(t *testing.T) {
	d := wallDesign(t)
	a, err := Place(context.Background(), d, Options{Seed: 3, HighEffort: false, WallWeight: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(context.Background(), d, Options{Seed: 3, HighEffort: false, WallWeight: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range d.Macros() {
		if a.Pos[m] != b.Pos[m] {
			t.Fatalf("macro %d nondeterministic", m)
		}
	}
}

func TestPlaceNoMacros(t *testing.T) {
	b := netlist.NewBuilder("empty")
	b.AddComb("c", 100, "")
	d := b.MustBuild()
	pl, err := Place(context.Background(), d, DefaultOptions())
	if err != nil || pl == nil {
		t.Fatalf("macro-free design should succeed: %v", err)
	}
}

func TestConnectivityPullsChainTogether(t *testing.T) {
	// Macro chain m0-m1-...-m7: the annealer should keep consecutive
	// macros closer on average than random pairs.
	d := wallDesign(t)
	pl, err := Place(context.Background(), d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	macros := d.Macros()
	var adjSum, allSum float64
	adjN, allN := 0, 0
	for i := range macros {
		for j := i + 1; j < len(macros); j++ {
			dist := float64(pl.Center(macros[i]).ManhattanDist(pl.Center(macros[j])))
			if j == i+1 {
				adjSum += dist
				adjN++
			}
			allSum += dist
			allN++
		}
	}
	if adjSum/float64(adjN) >= allSum/float64(allN) {
		t.Errorf("adjacent macros (%v) not closer than average pair (%v)",
			adjSum/float64(adjN), allSum/float64(allN))
	}
}
