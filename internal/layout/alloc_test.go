package layout

import (
	"math/rand"
	"testing"

	"repro/internal/slicing"
)

// TestMoverProposeUndoAllocs pins the annealing step of a layout chain —
// mover.Propose (Perturb + incremental Eval + costState.update) followed by
// mover.Undo — at zero steady-state allocations, the budget allocfree
// enforces statically on the //hidapvet:hotpath annotations.
func TestMoverProposeUndoAllocs(t *testing.T) {
	p := benchProblem(24)
	nb := len(p.Blocks)
	blocks := make([]slicing.Block, nb)
	for i := range p.Blocks {
		blocks[i] = p.Blocks[i].Block
	}
	var cs costState
	cs.init(p, nil)
	var expr, best slicing.Expr
	expr.SetBalanced(nb)
	inc := slicing.NewEvaluator(&expr, blocks, slicing.DefaultEvalParams())
	m := mover{inc: inc, cs: &cs, region: p.Region, expr: &expr, best: &best}
	m.Cost() // prime centers and contributions

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 128; i++ {
		m.Propose(rng)
		if i%2 == 0 {
			m.Undo()
		}
	}
	i := 0
	avg := testing.AllocsPerRun(400, func() {
		m.Propose(rng)
		if i%2 == 0 {
			m.Undo()
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("Propose/Undo cycle allocates %.2f objects/run, want 0", avg)
	}
}
