package layout

import (
	"context"
	"math"
	"testing"

	"repro/internal/sched"
)

func resultsIdentical(t *testing.T, tag string, a, b *Result) {
	t.Helper()
	if math.Float64bits(a.Cost) != math.Float64bits(b.Cost) ||
		math.Float64bits(a.Penalty) != math.Float64bits(b.Penalty) ||
		a.Legal != b.Legal || a.Expr.String() != b.Expr.String() {
		t.Fatalf("%s: result differs: cost %v/%v penalty %v/%v legal %v/%v expr %s/%s",
			tag, a.Cost, b.Cost, a.Penalty, b.Penalty, a.Legal, b.Legal,
			a.Expr.String(), b.Expr.String())
	}
	if len(a.Rects) != len(b.Rects) {
		t.Fatalf("%s: %d rects vs %d", tag, len(a.Rects), len(b.Rects))
	}
	for i := range a.Rects {
		if a.Rects[i] != b.Rects[i] {
			t.Fatalf("%s: rect %d = %v, want %v", tag, i, b.Rects[i], a.Rects[i])
		}
	}
}

// TestSolveBatchMatchesSerial is the Options.Batch contract at the layout
// level: a batched solve — any batch size, with or without a worker pool
// fanning the speculative scores out — returns byte-identical results to the
// serial engine with the same seed. Run it under -race to also exercise the
// concurrent scoring path.
func TestSolveBatchMatchesSerial(t *testing.T) {
	for _, nb := range []int{6, 14} {
		p := benchProblem(nb)
		base := DefaultOptions()
		base.Seed = 17
		ref := Solve(context.Background(), p, base)

		for _, batch := range []int{2, 4, 8, 32} {
			opt := base
			opt.Batch = batch
			got := Solve(context.Background(), p, opt)
			resultsIdentical(t, "batch", ref, got)
		}
		for _, w := range []int{2, 4} {
			pool := sched.NewPool(w)
			opt := base
			opt.Batch = 8
			opt.Sched = pool
			got := Solve(context.Background(), p, opt)
			pool.Close()
			resultsIdentical(t, "batch+pool", ref, got)
		}
	}
}

// TestSolveBatchWithRestarts checks batching composes with the multi-start
// scheduler: every chain runs batched and the selected best is still the
// serial answer.
func TestSolveBatchWithRestarts(t *testing.T) {
	p := benchProblem(10)
	base := DefaultOptions()
	base.Seed = 21
	base.Effort = EffortLow
	base.Restarts = 3
	ref := Solve(context.Background(), p, base)

	pool := sched.NewPool(2)
	defer pool.Close()
	opt := base
	opt.Batch = 8
	opt.Sched = pool
	got := Solve(context.Background(), p, opt)
	resultsIdentical(t, "batch+restarts", ref, got)
}
