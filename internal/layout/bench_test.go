package layout

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/shape"
	"repro/internal/slicing"
)

// benchProblem builds a mixed macro/soft level of n blocks with a sparse
// affinity ring plus two corner terminals — the shape of a real HiDaP level.
func benchProblem(n int) *Problem {
	rng := rand.New(rand.NewSource(99))
	blocks := make([]BlockSpec, n)
	for i := range blocks {
		at := int64(40_000 + rng.Intn(60_000))
		b := slicing.Block{TargetArea: at, MinArea: at / 2}
		if i%3 == 0 {
			w := int64(100 + rng.Intn(150))
			h := int64(80 + rng.Intn(120))
			b.Curve = shape.FromBoxRotatable(w, h)
			b.MinArea = w * h
			b.TargetArea = w * h * 3 / 2
		}
		blocks[i] = BlockSpec{Block: b}
	}
	aff := make([][]float64, n+2)
	for i := range aff {
		aff[i] = make([]float64, n+2)
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		aff[i][j], aff[j][i] = float64(1+rng.Intn(20)), float64(1+rng.Intn(20))
	}
	aff[0][n], aff[n][0] = 30, 30
	aff[n-1][n+1], aff[n+1][n-1] = 30, 30
	return &Problem{
		Region: geom.RectXYWH(0, 0, 1500, 1200),
		Blocks: blocks,
		Terminals: []Terminal{
			{Name: "sw", Pos: geom.Pt(0, 0)},
			{Name: "ne", Pos: geom.Pt(1500, 1200)},
		},
		Affinity: aff,
	}
}

// BenchmarkLayoutSolve anneals one medium-effort level end to end — the
// hot path of HiDaP layout generation.
func BenchmarkLayoutSolve(b *testing.B) {
	p := benchProblem(12)
	opt := DefaultOptions()
	opt.Seed = 7
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Solve(context.Background(), p, opt)
		if len(r.Rects) != len(p.Blocks) {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkLayoutSolve24 is the same level at twice the block count, where
// the incremental assign and delta wirecost pay for themselves: each move
// touches O(depth + degree) state instead of the whole level.
func BenchmarkLayoutSolve24(b *testing.B) {
	p := benchProblem(24)
	opt := DefaultOptions()
	opt.Seed = 7
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Solve(context.Background(), p, opt)
		if len(r.Rects) != len(p.Blocks) {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkLayoutSolveRestarts measures the multi-start fan-out: four
// independent chains on pooled evaluators, all cores available.
func BenchmarkLayoutSolveRestarts(b *testing.B) {
	p := benchProblem(12)
	opt := DefaultOptions()
	opt.Seed = 7
	opt.Restarts = 4
	opt.Pool = &slicing.EvaluatorPool{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Solve(context.Background(), p, opt)
		if len(r.Rects) != len(p.Blocks) {
			b.Fatal("bad result")
		}
	}
}
