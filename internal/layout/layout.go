// Package layout implements the layout-generation step of paper §IV-E: one
// floorplanning level is solved by simulated annealing over slicing
// structures, minimizing
//
//	penalty · Σ distance(n_i, n_j) · Maff[i][j]
//
// where the sum ranges over Gdf node pairs, blocks move with the slicing
// layout, and ports / external macros are fixed points. The penalty
// multiplier comes from the top-down area-budgeting evaluation and forbids
// macro overlaps while letting the search pass through mildly illegal
// solutions.
//
// The annealing hot path is fully incremental: the slicing evaluator
// recomposes and re-assigns only the tree path a move touched, and the
// wirelength term is maintained as per-pair contributions under a
// fixed-shape summation tree, so one proposal costs O(depth + degree of the
// moved blocks) instead of O(n + pairs). Solve optionally runs several
// independent annealing chains (Options.Restarts) on pooled scratch and
// keeps the best, deterministically for a fixed seed regardless of how the
// chains are scheduled (Options.Sched).
package layout

import (
	"context"
	"math/rand"
	"sync"

	"repro/internal/anneal"
	"repro/internal/geom"
	"repro/internal/sched"
	"repro/internal/slicing"
)

// BlockSpec is one movable block of the level.
type BlockSpec struct {
	Name  string
	Block slicing.Block // ⟨Γ, am, at⟩
}

// Terminal is a fixed attraction point: a port or a macro outside the
// subtree being floorplanned.
type Terminal struct {
	Name string
	Pos  geom.Point
}

// Problem is one level floorplanning instance. Affinity is indexed with
// blocks first (0..B-1) and terminals after (B..B+T-1), matching the Gdf
// node order produced by the dataflow package.
type Problem struct {
	Region    geom.Rect
	Blocks    []BlockSpec
	Terminals []Terminal
	Affinity  [][]float64
}

// Effort selects the annealing budget.
type Effort int

const (
	// EffortLow is for smoke tests and tiny levels.
	EffortLow Effort = iota
	// EffortMedium is the default.
	EffortMedium
	// EffortHigh spends extra moves for final-quality runs.
	EffortHigh
)

func (e Effort) schedule(seed int64) anneal.Options {
	switch e {
	case EffortLow:
		return anneal.Options{Seed: seed, MovesPerRound: 16, MaxRounds: 40, Alpha: 0.85, StallRounds: 12}
	case EffortHigh:
		return anneal.Options{Seed: seed, MovesPerRound: 64, MaxRounds: 160, Alpha: 0.95, StallRounds: 40}
	default:
		return anneal.Options{Seed: seed, MovesPerRound: 32, MaxRounds: 80, Alpha: 0.92, StallRounds: 20}
	}
}

// Options tunes Solve.
type Options struct {
	Seed   int64
	Effort Effort
	Eval   slicing.EvalParams
	// Pool, when set, supplies the incremental evaluator from a shared
	// arena pool and returns it after the solve, so repeated solves (the
	// recursion levels of one placement, or back-to-back jobs on a serving
	// engine) reuse annealing scratch instead of reallocating it. Results
	// are identical with or without a pool.
	Pool *slicing.EvaluatorPool
	// Restarts runs this many independent annealing chains from distinct
	// seeds derived from Seed and keeps the lowest-cost result (<= 1 means
	// one chain, seeded with Seed exactly — the single-chain behavior).
	Restarts int
	// Sched, when set, runs the restart chains as tasks on the shared
	// work-stealing pool, so sibling level solves and their chains all
	// drain one scheduler instead of stacking private worker pools. Nil
	// runs the chains on the calling goroutine. The returned result is a
	// pure function of (Seed, Restarts): chains are seeded by index
	// (sched.Derive) and compared in index order, so scheduling affects
	// wall time only, never the solution.
	Sched *sched.Pool
	// Batch, when > 1, anneals with speculative proposal batching: each step
	// stages up to Batch candidate moves, scores them read-only against the
	// frozen state and replays the Metropolis chain over the scores
	// (anneal.BatchModel). Large batches additionally fan the scoring out
	// over Sched when it has parallelism to spare. Results are byte-identical
	// at every batch size; <= 1 keeps the serial loop.
	Batch int
	// Schedule, when non-nil, replaces the Effort-derived annealing
	// schedule wholesale (Seed and Batch are still threaded from this
	// struct). For schedule tuning and benchmarking — e.g. pinning the
	// temperature to probe the converged phase; ordinary solves should
	// pick an Effort and leave this nil.
	Schedule *anneal.Options
}

// DefaultOptions returns medium effort with the standard penalties.
func DefaultOptions() Options {
	return Options{Effort: EffortMedium, Eval: slicing.DefaultEvalParams()}
}

// Result is a solved level.
type Result struct {
	// Rects assigns a rectangle inside Region to every block.
	Rects []geom.Rect
	// Expr is the winning slicing expression.
	Expr slicing.Expr
	// Cost is penalty · Σ dist·affinity of the returned layout.
	Cost float64
	// Penalty is the violation multiplier of the returned layout (1 = legal).
	Penalty float64
	// Legal mirrors slicing.Eval.Legal for the returned layout.
	Legal bool
}

// Solve floorplans one level. A cancelled ctx stops the annealing schedules
// early and returns the best layout reached so far; the caller is expected
// to check ctx.Err() and abandon the result.
func Solve(ctx context.Context, p *Problem, opt Options) *Result {
	nb := len(p.Blocks)
	if nb == 0 {
		return &Result{Penalty: 1, Legal: true}
	}
	if opt.Eval.CompactPoints == 0 {
		opt.Eval = slicing.DefaultEvalParams()
	}

	if nb == 1 {
		blocks := []slicing.Block{p.Blocks[0].Block}
		e := slicing.NewBalanced(1)
		ev := slicing.Evaluate(&e, blocks, p.Region, opt.Eval)
		return &Result{
			Rects:   ev.Rects,
			Expr:    e,
			Cost:    wirecost(ev, p, affinityPairs(p)),
			Penalty: ev.Penalty,
			Legal:   ev.Legal(),
		}
	}

	restarts := opt.Restarts
	if restarts < 1 {
		restarts = 1
	}
	if restarts == 1 {
		return solveChain(ctx, p, opt, opt.Seed, nil)
	}

	// Multi-start: independent chains, each with its own pooled solver and
	// evaluator, seeded by chain index. The pair index (pairs + adjacency)
	// is a pure function of the problem, so it is built once here and
	// shared read-only by every chain. The results slice is indexed and the
	// best is picked by a strict-< scan in chain order, so the outcome does
	// not depend on which worker ran which chain.
	var shared pairIndex
	shared.build(p)
	results := make([]*Result, restarts)
	if opt.Sched == nil {
		for i := range results {
			results[i] = solveChain(ctx, p, opt, chainSeed(opt.Seed, i), &shared)
		}
	} else {
		// Each chain is one task on the shared pool; a cancelled ctx still
		// drains every task (the chains observe the cancellation and stop
		// annealing early), so every slot is filled before the scan below.
		g := opt.Sched.Group(ctx)
		for i := range results {
			i := i
			g.Go(func(ctx context.Context) {
				results[i] = solveChain(ctx, p, opt, chainSeed(opt.Seed, i), &shared)
			})
		}
		g.Wait() // ctx errors surface through the caller's ctx.Err() checks
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.Cost < best.Cost {
			best = r
		}
	}
	return best
}

// chainSeed derives the seed of one restart chain from its stable task
// path (the chain index). Chain 0 uses the caller's seed unchanged, so
// Restarts=1 reproduces the single-chain run.
func chainSeed(seed int64, chain int) int64 {
	if chain == 0 {
		return seed
	}
	return sched.Derive(seed, int64(chain))
}

// solver is the per-chain annealing scratch: the block slice, the delta
// cost state and the expression pair. Pooled so repeated level solves (and
// restart chains) reuse the buffers instead of reallocating them.
type solver struct {
	blocks []slicing.Block
	cost   costState
	expr   slicing.Expr
	best   slicing.Expr
	bs     batchScratch
}

var solverPool = sync.Pool{New: func() any { return new(solver) }}

// solveChain anneals one chain from the given seed and evaluates its best
// expression from scratch (bit-identical to the annealed costs, per the
// evaluator's differential contract). A non-nil idx supplies a prebuilt
// pair index shared read-only with other chains.
func solveChain(ctx context.Context, p *Problem, opt Options, seed int64, idx *pairIndex) *Result {
	s := solverPool.Get().(*solver)
	defer solverPool.Put(s)
	nb := len(p.Blocks)
	s.blocks = resizeSlice(s.blocks, nb)
	for i := range p.Blocks {
		s.blocks[i] = p.Blocks[i].Block
	}
	s.cost.init(p, idx)
	s.expr.SetBalanced(nb)

	var inc *slicing.Evaluator
	if opt.Pool != nil {
		inc = opt.Pool.Get(&s.expr, s.blocks, opt.Eval)
		defer opt.Pool.Put(inc)
	} else {
		inc = slicing.NewEvaluator(&s.expr, s.blocks, opt.Eval)
	}
	m := mover{inc: inc, cs: &s.cost, region: p.Region, expr: &s.expr, best: &s.best}
	schedOpt := opt.Effort.schedule(seed)
	if opt.Schedule != nil {
		schedOpt = *opt.Schedule
		schedOpt.Seed = seed
	}
	if opt.Batch > 1 {
		schedOpt.Batch = opt.Batch
		m.bs = &s.bs
		// Thunks close over this chain's mover; a pooled scratch may carry
		// a previous chain's, so they rebuild (one alloc per candidate slot
		// per chain, amortized over the whole schedule).
		m.bs.thunks = m.bs.thunks[:0]
		m.ctx = ctx
		m.pool = opt.Sched
		inc.EnsureSpecRegions(opt.Batch)
	}
	anneal.RunModel(ctx, schedOpt, &m)

	// Final evaluation of the winner reuses the incremental evaluator's
	// arena (Reset + Eval is bit-identical to a from-scratch Evaluate, per
	// the differential tests), so the tail of the solve is warm too. Rects
	// are copied out because the evaluator owns its record.
	inc.Reset(&s.best, s.blocks, opt.Eval)
	ev := inc.Eval(p.Region)
	return &Result{
		Rects:   append([]geom.Rect(nil), ev.Rects...),
		Expr:    s.best.Clone(),
		Cost:    ev.Penalty * (1 + s.cost.rebuild(ev.Rects)),
		Penalty: ev.Penalty,
		Legal:   ev.Legal(),
	}
}

// mover adapts one annealing chain to the delta-aware anneal.Model: a
// proposal perturbs the incremental evaluator, re-assigns only the dirty
// tree path, and re-sums only the affinity pairs incident to the blocks
// whose rectangles actually moved.
type mover struct {
	inc    *slicing.Evaluator
	cs     *costState
	region geom.Rect
	expr   *slicing.Expr
	best   *slicing.Expr
	undoEv func()

	// Speculative batching state (anneal.BatchModel), active when solveChain
	// wired bs. Staged candidates are invalidated by the first ProposeSpec
	// after a scoring pass, matching the engine's group discipline.
	bs     *batchScratch
	ctx    context.Context
	pool   *sched.Pool
	staged int
	scored bool
}

func (m *mover) Cost() float64 {
	ev := m.inc.Eval(m.region)
	return ev.Penalty * (1 + m.cs.rebuild(ev.Rects))
}

// Propose applies one slicing-tree move and returns the tentative cost; it
// runs once per annealing step.
//
//hidapvet:hotpath
func (m *mover) Propose(rng *rand.Rand) float64 {
	m.undoEv, _ = m.inc.Perturb(rng)
	ev := m.inc.Eval(m.region)
	return ev.Penalty * (1 + m.cs.update(ev.Rects, m.inc.Changed()))
}

// Undo reverts the last Propose, cost journal first, then the evaluator.
//
//hidapvet:hotpath
func (m *mover) Undo() {
	m.cs.undo()
	m.undoEv()
}

func (m *mover) Snapshot() { m.best.CopyFrom(m.expr) }

// batchScratch holds the staged candidates of speculative batching: the
// drawn moves, one scoring scratch pair (evaluator overrides + cost
// overlay) per candidate, and one reusable scoring thunk per candidate
// slot so the fan-out path forks without allocating closures per group.
// It lives in the pooled solver so back-to-back chains reuse the buffers.
type batchScratch struct {
	cands  []specCand
	costs  []float64
	thunks []sched.Task
}

// specCand is one staged candidate move and its private scoring scratch.
type specCand struct {
	mv slicing.Move
	ss slicing.SpecScratch
	cs costSpec
}

// ProposeSpec draws one candidate exactly as Propose would — the move comes
// off the same rng through the same Expr.PerturbMove — and rolls the
// expression back, staging the move for EvalBatch. The rare moves the
// evaluator cannot price speculatively report false without staging.
//
//hidapvet:hotpath
func (m *mover) ProposeSpec(rng *rand.Rand) bool {
	if m.scored {
		m.staged, m.scored = 0, false
	}
	if m.staged >= len(m.bs.cands) {
		m.bs.cands = append(m.bs.cands, specCand{}) //hidapvet:allow allocfree one-time warm-up: the slice caps out at the batch size and is pooled across chains
	}
	if m.staged >= len(m.bs.thunks) {
		k := m.staged
		m.bs.thunks = append(m.bs.thunks, func(context.Context) { m.specScore(k) }) //hidapvet:allow allocfree one-time warm-up: one reusable thunk per candidate slot, shared by every later group
	}
	c := &m.bs.cands[m.staged]
	m.expr.PerturbMove(rng, &c.mv)
	m.expr.UndoMove(&c.mv)
	if !m.inc.SpecFeasible(&c.mv) {
		return false
	}
	m.staged++
	return true
}

// EvalBatch scores every staged candidate against the frozen state: the
// slicing evaluator prices the candidate tree read-only (SpecScore) and the
// wirelength overlay re-sums the pair contributions the rectangle diff
// touches (specCost), composing cost exactly as Propose does. Batches of 4+
// fan out over the shared scheduler when it has parallelism to spare; each
// candidate owns its scratch and arena region, so the scores are
// independent of scheduling.
//
//hidapvet:hotpath
func (m *mover) EvalBatch() []float64 {
	m.scored = true
	m.bs.costs = resizeSlice(m.bs.costs, m.staged) //hidapvet:allow allocfree grows once to the batch size, then resizes within capacity
	if m.pool != nil && m.staged >= 4 && m.pool.Parallelism() > 1 {
		g := m.pool.Group(m.ctx) //hidapvet:allow allocfree one group header per scoring fan-out, amortized over >= 4 parallel scores; the serial arm below is the single-core hot path
		for k := 0; k < m.staged; k++ {
			g.Go(m.bs.thunks[k]) //hidapvet:allow allocfree one task header per forked score, amortized the same way
		}
		//hidapvet:allow allocfree workerOf's context-key boxing rides the fan-out arm only
		g.Wait() //hidapvet:allow ctxflow the group drains even when ctx is cancelled; every cost slot must be filled before the replay
	} else {
		for k := 0; k < m.staged; k++ {
			m.specScore(k)
		}
	}
	return m.bs.costs[:m.staged]
}

// specScore prices staged candidate k into costs[k].
//
//hidapvet:hotpath
func (m *mover) specScore(k int) {
	c := &m.bs.cands[k]
	pen, _ := m.inc.SpecScore(&c.mv, m.region, &c.ss, k)
	m.bs.costs[k] = pen * (1 + m.cs.specCost(c.ss.ChangedB, c.ss.ChangedR, &c.cs))
}

// CommitSpec commits staged candidate k from its speculative score: the
// evaluator writes the already-computed node state back instead of
// re-evaluating, and the cost overlay journals the same rectangle diff the
// full path would. State and cost land bit-identical to a serial accept.
//
//hidapvet:hotpath
func (m *mover) CommitSpec(k int) float64 {
	c := &m.bs.cands[k]
	ev := m.inc.CommitSpec(&c.mv, m.region, &c.ss)
	return ev.Penalty * (1 + m.cs.update(ev.Rects, m.inc.Changed()))
}

// pair is one nonzero affinity entry with at least one movable endpoint.
type pair struct {
	i, j int // node indices (blocks first, then terminals)
	w    float64
}

// pairIndex is the immutable half of the cost model: the nonzero affinity
// pairs of a problem and their CSR adjacency by block. It is a pure
// function of the Problem, so restart chains share one instance read-only.
type pairIndex struct {
	pairs   []pair
	adjOff  []int32
	adjPair []int32
	cursor  []int32 // CSR fill scratch
}

// build extracts the pairs (matching affinityPairs) and the adjacency,
// reusing the receiver's buffers.
func (px *pairIndex) build(p *Problem) {
	nb := len(p.Blocks)
	n := nb + len(p.Terminals)
	px.pairs = px.pairs[:0]
	for i := 0; i < n && i < len(p.Affinity); i++ {
		row := p.Affinity[i]
		for j := i + 1; j < n && j < len(row); j++ {
			if i >= nb && j >= nb {
				continue
			}
			if row[j] != 0 {
				px.pairs = append(px.pairs, pair{i, j, row[j]})
			}
		}
	}
	px.adjOff = resizeSlice(px.adjOff, nb+1)
	for i := range px.adjOff {
		px.adjOff[i] = 0
	}
	for _, pr := range px.pairs {
		if pr.i < nb {
			px.adjOff[pr.i+1]++
		}
		if pr.j < nb {
			px.adjOff[pr.j+1]++
		}
	}
	for i := 1; i <= nb; i++ {
		px.adjOff[i] += px.adjOff[i-1]
	}
	px.adjPair = resizeSlice(px.adjPair, int(px.adjOff[nb]))
	cursor := resizeSlice(px.cursor, nb)
	px.cursor = cursor
	copy(cursor, px.adjOff[:nb])
	for k, pr := range px.pairs {
		if pr.i < nb {
			px.adjPair[cursor[pr.i]] = int32(k)
			cursor[pr.i]++
		}
		if pr.j < nb {
			px.adjPair[cursor[pr.j]] = int32(k)
			cursor[pr.j]++
		}
	}
}

// costState maintains Σ dist·affinity incrementally: per-pair
// contributions in a flat array, re-derived only for the pairs incident to
// blocks whose centers moved, plus a fixed left-to-right summation over the
// array. Because the summation order never changes and untouched entries
// keep their exact bits, the total equals a full recompute bit for bit
// (differentially tested) — the expensive part per pair is the distance
// term, not the addition, so delta updates pay off long before the sum
// itself would need a tree. An undo journal mirrors the evaluator's: one
// move deep, restoring centers and contributions exactly.
type costState struct {
	nb  int
	idx *pairIndex   // shared read-only across the chains of one Solve
	own pairIndex    // backing storage when no shared index is supplied
	pts []geom.Point // block centers, then fixed terminal positions

	contrib []float64 // per-pair dist·weight

	pairGen []uint32 // dedups pairs touched within one update
	gen     uint32

	jPair    []int32 // undo journal: pair contributions…
	jContrib []float64
	jBlock   []int32 // …and block centers
	jCenter  []geom.Point
}

// init rebuilds the state for one problem, reusing every buffer. A non-nil
// idx supplies the prebuilt pair index (multi-start); otherwise the state
// builds its own.
func (cs *costState) init(p *Problem, idx *pairIndex) {
	nb := len(p.Blocks)
	n := nb + len(p.Terminals)
	cs.nb = nb
	if idx == nil {
		cs.own.build(p)
		idx = &cs.own
	}
	cs.idx = idx
	cs.pts = resizeSlice(cs.pts, n)
	for i := range p.Terminals {
		cs.pts[nb+i] = p.Terminals[i].Pos
	}

	np := len(idx.pairs)
	cs.contrib = resizeSlice(cs.contrib, np)
	cs.pairGen = resizeSlice(cs.pairGen, np)
	for i := range cs.pairGen {
		cs.pairGen[i] = 0
	}
	cs.gen = 0
	cs.jPair, cs.jContrib = cs.jPair[:0], cs.jContrib[:0]
	cs.jBlock, cs.jCenter = cs.jBlock[:0], cs.jCenter[:0]
}

// pairContrib computes one pair's dist·weight term from current positions.
func (cs *costState) pairContrib(k int) float64 {
	pr := &cs.idx.pairs[k]
	d := cs.pts[pr.i].ManhattanDist(cs.pts[pr.j])
	return float64(d) * pr.w
}

// sum folds the contribution array under one fixed association — four
// strided accumulators combined as (s0+s1)+(s2+s3) — shared by the delta
// and full-recompute paths, so both produce identical bits. The strided
// form breaks the serial FP-add latency chain a naive fold would carry.
func (cs *costState) sum() float64 {
	var s0, s1, s2, s3 float64
	c := cs.contrib
	i := 0
	for ; i+4 <= len(c); i += 4 {
		s0 += c[i]
		s1 += c[i+1]
		s2 += c[i+2]
		s3 += c[i+3]
	}
	for ; i < len(c); i++ {
		s0 += c[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// rebuild re-derives every contribution from the given block rectangles and
// returns the total. It both initializes the state and re-synchronizes it
// (anneal.Model.Cost), and is the full-recompute reference the delta path
// must match bit for bit.
func (cs *costState) rebuild(rects []geom.Rect) float64 {
	for b := 0; b < cs.nb; b++ {
		cs.pts[b] = rects[b].Center()
	}
	for k := range cs.contrib {
		cs.contrib[k] = cs.pairContrib(k)
	}
	return cs.sum()
}

// update applies one move's delta: every changed block whose center moved
// is journaled and refreshed, then the incident pairs' contributions
// recompute (deduplicated — a pair between two moved blocks recomputes
// once, after both centers are current) and the array re-sums.
//
//hidapvet:hotpath
func (cs *costState) update(rects []geom.Rect, changed []int32) float64 {
	cs.jPair, cs.jContrib = cs.jPair[:0], cs.jContrib[:0]
	cs.jBlock, cs.jCenter = cs.jBlock[:0], cs.jCenter[:0]
	cs.gen++
	for _, b := range changed {
		c := rects[b].Center()
		if c == cs.pts[b] {
			continue // resized in place: no distance term moved
		}
		cs.jBlock = append(cs.jBlock, b)
		cs.jCenter = append(cs.jCenter, cs.pts[b])
		cs.pts[b] = c
		for _, pi := range cs.idx.adjPair[cs.idx.adjOff[b]:cs.idx.adjOff[b+1]] {
			if cs.pairGen[pi] == cs.gen {
				continue
			}
			cs.pairGen[pi] = cs.gen
			cs.jPair = append(cs.jPair, pi)
			cs.jContrib = append(cs.jContrib, cs.contrib[pi])
		}
	}
	for _, pi := range cs.jPair {
		cs.contrib[pi] = cs.pairContrib(int(pi))
	}
	return cs.sum()
}

// costSpec is the per-candidate overlay of one speculative cost query:
// epoch-stamped center and contribution overrides, so specCost reads the
// base state without writing it. Each concurrently scored candidate owns
// one; reuse across candidates needs no clearing.
type costSpec struct {
	gen     uint32
	pairGen []uint32 // pair k is overridden when pairGen[k] == gen
	pairVal []float64
	ptGen   []uint32 // block b's center is overridden when ptGen[b] == gen
	ptVal   []geom.Point
	touched []int32
}

// specCost prices the wirelength of a candidate layout given the rectangle
// diff a speculative evaluation produced, without touching the state: moved
// centers and the contributions of their incident pairs go to the overlay,
// and the total re-sums the contribution array under the same fixed
// association as sum(), substituting overridden entries. The result is
// bit-identical to what update(rects, changed) would return — the overlay
// recomputes exactly the entries update rewrites, with the same values —
// which the batched annealer's replay discipline relies on.
//
//hidapvet:hotpath
func (cs *costState) specCost(chB []int32, chR []geom.Rect, sp *costSpec) float64 {
	np := len(cs.idx.pairs)
	sp.pairGen = resizeSlice(sp.pairGen, np) //hidapvet:allow allocfree overlay growth is a one-time warm-up per problem shape; steady state resizes within capacity
	sp.pairVal = resizeSlice(sp.pairVal, np) //hidapvet:allow allocfree same warm-up
	sp.ptGen = resizeSlice(sp.ptGen, cs.nb)  //hidapvet:allow allocfree same warm-up
	sp.ptVal = resizeSlice(sp.ptVal, cs.nb)  //hidapvet:allow allocfree same warm-up
	sp.touched = sp.touched[:0]
	sp.gen++
	if sp.gen == 0 { // uint32 wrap: stale stamps could alias the new epoch
		for i := range sp.pairGen {
			sp.pairGen[i] = 0
		}
		for i := range sp.ptGen {
			sp.ptGen[i] = 0
		}
		sp.gen = 1
	}
	for x, b := range chB {
		c := chR[x].Center()
		if c == cs.pts[b] {
			continue // resized in place: no distance term moved
		}
		sp.ptGen[b] = sp.gen
		sp.ptVal[b] = c
		for _, pi := range cs.idx.adjPair[cs.idx.adjOff[b]:cs.idx.adjOff[b+1]] {
			if sp.pairGen[pi] == sp.gen {
				continue
			}
			sp.pairGen[pi] = sp.gen
			sp.touched = append(sp.touched, pi)
		}
	}
	// Two phases like update: contributions recompute only after every moved
	// center is staged, so a pair between two moved blocks prices once,
	// against both new centers.
	for _, pi := range sp.touched {
		pr := &cs.idx.pairs[pi]
		a, b := cs.pts[pr.i], cs.pts[pr.j]
		if pr.i < cs.nb && sp.ptGen[pr.i] == sp.gen {
			a = sp.ptVal[pr.i]
		}
		if pr.j < cs.nb && sp.ptGen[pr.j] == sp.gen {
			b = sp.ptVal[pr.j]
		}
		sp.pairVal[pi] = float64(a.ManhattanDist(b)) * pr.w
	}
	// sum()'s strided fold, reading through the overlay.
	var s0, s1, s2, s3 float64
	c := cs.contrib
	pg, pv, g := sp.pairGen, sp.pairVal, sp.gen
	i := 0
	for ; i+4 <= len(c); i += 4 {
		v0, v1, v2, v3 := c[i], c[i+1], c[i+2], c[i+3]
		if pg[i] == g {
			v0 = pv[i]
		}
		if pg[i+1] == g {
			v1 = pv[i+1]
		}
		if pg[i+2] == g {
			v2 = pv[i+2]
		}
		if pg[i+3] == g {
			v3 = pv[i+3]
		}
		s0 += v0
		s1 += v1
		s2 += v2
		s3 += v3
	}
	for ; i < len(c); i++ {
		v := c[i]
		if pg[i] == g {
			v = pv[i]
		}
		s0 += v
	}
	return (s0 + s1) + (s2 + s3)
}

// undo reverts the last update: centers and contributions restore from the
// journal to their exact previous bits.
//
//hidapvet:hotpath
func (cs *costState) undo() {
	for k := len(cs.jBlock) - 1; k >= 0; k-- {
		cs.pts[cs.jBlock[k]] = cs.jCenter[k]
	}
	for k := len(cs.jPair) - 1; k >= 0; k-- {
		cs.contrib[cs.jPair[k]] = cs.jContrib[k]
	}
	cs.jPair, cs.jContrib = cs.jPair[:0], cs.jContrib[:0]
	cs.jBlock, cs.jCenter = cs.jBlock[:0], cs.jCenter[:0]
}

// resizeSlice returns s with length n, reusing its backing array when the
// capacity suffices.
func resizeSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// affinityPairs extracts the nonzero upper-triangle affinity entries,
// dropping terminal–terminal pairs (they contribute a layout-independent
// constant that would only dilute the penalty gradient). It is the
// allocating reference form of costState.init's pair extraction, kept for
// the single-block path and the differential tests.
func affinityPairs(p *Problem) []pair {
	nb := len(p.Blocks)
	n := nb + len(p.Terminals)
	var out []pair
	for i := 0; i < n && i < len(p.Affinity); i++ {
		row := p.Affinity[i]
		for j := i + 1; j < n && j < len(row); j++ {
			if i >= nb && j >= nb {
				continue
			}
			if row[j] != 0 {
				out = append(out, pair{i, j, row[j]})
			}
		}
	}
	return out
}

// wirecost evaluates penalty · (1 + Σ dist · affinity) for a placed level
// with a plain left-to-right pair sweep. The additive base keeps the
// penalty multiplier effective when the distance sum vanishes: without it,
// a layout whose attraction points all coincide would score zero however
// illegal it is, beating every legal layout exactly when the penalty
// matters most. The annealing loop maintains the same sum under a
// fixed-shape summation tree instead (costState); the two agree to within
// summation-order rounding.
func wirecost(ev *slicing.Eval, p *Problem, pairs []pair) float64 {
	nb := len(p.Blocks)
	pos := func(i int) geom.Point {
		if i < nb {
			return ev.Rects[i].Center()
		}
		return p.Terminals[i-nb].Pos
	}
	var sum float64
	for _, pr := range pairs {
		d := pos(pr.i).ManhattanDist(pos(pr.j))
		sum += float64(d) * pr.w
	}
	// A pure packing instance (no pairs) degenerates to optimizing the
	// penalty alone: sum is 0 and the cost is exactly ev.Penalty.
	return ev.Penalty * (1 + sum)
}
