// Package layout implements the layout-generation step of paper §IV-E: one
// floorplanning level is solved by simulated annealing over slicing
// structures, minimizing
//
//	penalty · Σ distance(n_i, n_j) · Maff[i][j]
//
// where the sum ranges over Gdf node pairs, blocks move with the slicing
// layout, and ports / external macros are fixed points. The penalty
// multiplier comes from the top-down area-budgeting evaluation and forbids
// macro overlaps while letting the search pass through mildly illegal
// solutions.
package layout

import (
	"context"
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/geom"
	"repro/internal/slicing"
)

// BlockSpec is one movable block of the level.
type BlockSpec struct {
	Name  string
	Block slicing.Block // ⟨Γ, am, at⟩
}

// Terminal is a fixed attraction point: a port or a macro outside the
// subtree being floorplanned.
type Terminal struct {
	Name string
	Pos  geom.Point
}

// Problem is one level floorplanning instance. Affinity is indexed with
// blocks first (0..B-1) and terminals after (B..B+T-1), matching the Gdf
// node order produced by the dataflow package.
type Problem struct {
	Region    geom.Rect
	Blocks    []BlockSpec
	Terminals []Terminal
	Affinity  [][]float64
}

// Effort selects the annealing budget.
type Effort int

const (
	// EffortLow is for smoke tests and tiny levels.
	EffortLow Effort = iota
	// EffortMedium is the default.
	EffortMedium
	// EffortHigh spends extra moves for final-quality runs.
	EffortHigh
)

func (e Effort) schedule(seed int64) anneal.Options {
	switch e {
	case EffortLow:
		return anneal.Options{Seed: seed, MovesPerRound: 16, MaxRounds: 40, Alpha: 0.85, StallRounds: 12}
	case EffortHigh:
		return anneal.Options{Seed: seed, MovesPerRound: 64, MaxRounds: 160, Alpha: 0.95, StallRounds: 40}
	default:
		return anneal.Options{Seed: seed, MovesPerRound: 32, MaxRounds: 80, Alpha: 0.92, StallRounds: 20}
	}
}

// Options tunes Solve.
type Options struct {
	Seed   int64
	Effort Effort
	Eval   slicing.EvalParams
	// Pool, when set, supplies the incremental evaluator from a shared
	// arena pool and returns it after the solve, so repeated solves (the
	// recursion levels of one placement, or back-to-back jobs on a serving
	// engine) reuse annealing scratch instead of reallocating it. Results
	// are identical with or without a pool.
	Pool *slicing.EvaluatorPool
}

// DefaultOptions returns medium effort with the standard penalties.
func DefaultOptions() Options {
	return Options{Effort: EffortMedium, Eval: slicing.DefaultEvalParams()}
}

// Result is a solved level.
type Result struct {
	// Rects assigns a rectangle inside Region to every block.
	Rects []geom.Rect
	// Expr is the winning slicing expression.
	Expr slicing.Expr
	// Cost is penalty · Σ dist·affinity of the returned layout.
	Cost float64
	// Penalty is the violation multiplier of the returned layout (1 = legal).
	Penalty float64
	// Legal mirrors slicing.Eval.Legal for the returned layout.
	Legal bool
}

// Solve floorplans one level. A cancelled ctx stops the annealing schedule
// early and returns the best layout reached so far; the caller is expected
// to check ctx.Err() and abandon the result.
func Solve(ctx context.Context, p *Problem, opt Options) *Result {
	nb := len(p.Blocks)
	if nb == 0 {
		return &Result{Penalty: 1, Legal: true}
	}
	if opt.Eval.CompactPoints == 0 {
		opt.Eval = slicing.DefaultEvalParams()
	}
	blocks := make([]slicing.Block, nb)
	for i := range p.Blocks {
		blocks[i] = p.Blocks[i].Block
	}
	pairs := affinityPairs(p)

	if nb == 1 {
		e := slicing.NewBalanced(1)
		ev := slicing.Evaluate(&e, blocks, p.Region, opt.Eval)
		return &Result{
			Rects:   ev.Rects,
			Expr:    e,
			Cost:    wirecost(ev, p, pairs),
			Penalty: ev.Penalty,
			Legal:   ev.Legal(),
		}
	}

	// The anneal loop runs on the incremental evaluator: every move
	// recomposes only the slicing-tree path it touched and the steady-state
	// Perturb/Eval cycle is allocation-free. The evaluator is bit-identical
	// to slicing.Evaluate (differentially tested), so the final from-scratch
	// evaluation of the best expression below agrees with the annealed costs.
	expr := slicing.NewBalanced(nb)
	var inc *slicing.Evaluator
	if opt.Pool != nil {
		inc = opt.Pool.Get(&expr, blocks, opt.Eval)
		defer opt.Pool.Put(inc)
	} else {
		inc = slicing.NewEvaluator(&expr, blocks, opt.Eval)
	}
	cost := func() float64 {
		return wirecost(inc.Eval(p.Region), p, pairs)
	}
	best := expr.Clone()
	anneal.Run(ctx, opt.Effort.schedule(opt.Seed),
		cost,
		func(rng *rand.Rand) func() {
			undo, _ := inc.Perturb(rng)
			return undo
		},
		func() { best.CopyFrom(&expr) },
	)

	// Final evaluation of the winner reuses the incremental evaluator's
	// arena (Reset + Eval is bit-identical to a from-scratch Evaluate, per
	// the differential tests), so the tail of the solve is warm too. Rects
	// are copied out because the evaluator owns its record.
	inc.Reset(&best, blocks, opt.Eval)
	ev := inc.Eval(p.Region)
	return &Result{
		Rects:   append([]geom.Rect(nil), ev.Rects...),
		Expr:    best,
		Cost:    wirecost(ev, p, pairs),
		Penalty: ev.Penalty,
		Legal:   ev.Legal(),
	}
}

// pair is one nonzero affinity entry with at least one movable endpoint.
type pair struct {
	i, j int // node indices (blocks first, then terminals)
	w    float64
}

// affinityPairs extracts the nonzero upper-triangle affinity entries,
// dropping terminal–terminal pairs (they contribute a layout-independent
// constant that would only dilute the penalty gradient).
func affinityPairs(p *Problem) []pair {
	nb := len(p.Blocks)
	n := nb + len(p.Terminals)
	var out []pair
	for i := 0; i < n && i < len(p.Affinity); i++ {
		row := p.Affinity[i]
		for j := i + 1; j < n && j < len(row); j++ {
			if i >= nb && j >= nb {
				continue
			}
			if row[j] != 0 {
				out = append(out, pair{i, j, row[j]})
			}
		}
	}
	return out
}

// wirecost evaluates penalty · (1 + Σ dist · affinity) for a placed level.
// The additive base keeps the penalty multiplier effective when the
// distance sum vanishes: without it, a layout whose attraction points all
// coincide would score zero however illegal it is, beating every legal
// layout exactly when the penalty matters most.
func wirecost(ev *slicing.Eval, p *Problem, pairs []pair) float64 {
	nb := len(p.Blocks)
	pos := func(i int) geom.Point {
		if i < nb {
			return ev.Rects[i].Center()
		}
		return p.Terminals[i-nb].Pos
	}
	var sum float64
	for _, pr := range pairs {
		d := pos(pr.i).ManhattanDist(pos(pr.j))
		sum += float64(d) * pr.w
	}
	// A pure packing instance (no pairs) degenerates to optimizing the
	// penalty alone: sum is 0 and the cost is exactly ev.Penalty.
	return ev.Penalty * (1 + sum)
}
