package layout

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/sched"
	"repro/internal/shape"
	"repro/internal/slicing"
)

func soft(at int64) BlockSpec {
	return BlockSpec{Block: slicing.Block{TargetArea: at, MinArea: at / 2}}
}

func TestSolveEmpty(t *testing.T) {
	r := Solve(context.Background(), &Problem{Region: geom.RectXYWH(0, 0, 100, 100)}, DefaultOptions())
	if len(r.Rects) != 0 || !r.Legal {
		t.Errorf("empty problem: %+v", r)
	}
}

func TestSolveSingleBlock(t *testing.T) {
	p := &Problem{
		Region: geom.RectXYWH(0, 0, 100, 100),
		Blocks: []BlockSpec{soft(5000)},
	}
	r := Solve(context.Background(), p, DefaultOptions())
	if r.Rects[0] != p.Region {
		t.Errorf("single block should take whole region, got %v", r.Rects[0])
	}
}

func TestSolveTerminalPull(t *testing.T) {
	// Block 0 is bound to a west terminal, block 1 to an east terminal.
	// After annealing, block 0 must sit west of block 1.
	aff := make([][]float64, 4)
	for i := range aff {
		aff[i] = make([]float64, 4)
	}
	aff[0][2], aff[2][0] = 100, 100 // block0 <-> west terminal
	aff[1][3], aff[3][1] = 100, 100 // block1 <-> east terminal
	p := &Problem{
		Region: geom.RectXYWH(0, 0, 1000, 500),
		Blocks: []BlockSpec{soft(200_000), soft(200_000)},
		Terminals: []Terminal{
			{Name: "west", Pos: geom.Pt(0, 250)},
			{Name: "east", Pos: geom.Pt(1000, 250)},
		},
		Affinity: aff,
	}
	opt := DefaultOptions()
	opt.Seed = 5
	r := Solve(context.Background(), p, opt)
	if r.Rects[0].Center().X >= r.Rects[1].Center().X {
		t.Errorf("block0 at %v should be west of block1 at %v", r.Rects[0].Center(), r.Rects[1].Center())
	}
	if !r.Legal {
		t.Error("soft blocks must produce a legal layout")
	}
}

func TestSolveAffinityAdjacency(t *testing.T) {
	// Four equal blocks; 0 and 3 have overwhelming affinity: they must end
	// adjacent (distance below the region half-diagonal).
	n := 4
	aff := make([][]float64, n)
	for i := range aff {
		aff[i] = make([]float64, n)
	}
	aff[0][3], aff[3][0] = 1000, 1000
	aff[1][2], aff[2][1] = 1, 1
	p := &Problem{
		Region:   geom.RectXYWH(0, 0, 800, 800),
		Blocks:   []BlockSpec{soft(160_000), soft(160_000), soft(160_000), soft(160_000)},
		Affinity: aff,
	}
	opt := DefaultOptions()
	opt.Seed = 11
	r := Solve(context.Background(), p, opt)
	d := r.Rects[0].Center().ManhattanDist(r.Rects[3].Center())
	if d > 800 {
		t.Errorf("high-affinity blocks %d apart; rects %v %v", d, r.Rects[0], r.Rects[3])
	}
}

func TestSolveMacroLegality(t *testing.T) {
	// Three blocks carrying macros that only fit in specific orientations.
	mk := func(w, h int64) BlockSpec {
		return BlockSpec{Block: slicing.Block{
			Curve:      shape.FromBoxRotatable(w, h),
			MinArea:    w * h,
			TargetArea: w * h * 3 / 2,
		}}
	}
	p := &Problem{
		Region: geom.RectXYWH(0, 0, 1000, 1000),
		Blocks: []BlockSpec{mk(600, 200), mk(500, 250), mk(300, 300)},
	}
	opt := DefaultOptions()
	opt.Seed = 3
	opt.Effort = EffortHigh
	r := Solve(context.Background(), p, opt)
	if !r.Legal {
		t.Fatalf("expected legal layout, penalty=%v expr=%s rects=%v", r.Penalty, r.Expr.String(), r.Rects)
	}
	for i, rect := range r.Rects {
		if !p.Blocks[i].Block.Curve.Fits(rect.W, rect.H) {
			t.Errorf("block %d rect %v does not fit curve %v", i, rect, p.Blocks[i].Block.Curve)
		}
	}
}

func TestSolveDeterministic(t *testing.T) {
	aff := [][]float64{{0, 5}, {5, 0}}
	p := &Problem{
		Region:   geom.RectXYWH(0, 0, 400, 400),
		Blocks:   []BlockSpec{soft(40_000), soft(40_000)},
		Affinity: aff,
	}
	opt := DefaultOptions()
	opt.Seed = 77
	a := Solve(context.Background(), p, opt)
	b := Solve(context.Background(), p, opt)
	if a.Cost != b.Cost || a.Expr.String() != b.Expr.String() {
		t.Errorf("nondeterministic: %v/%s vs %v/%s", a.Cost, a.Expr.String(), b.Cost, b.Expr.String())
	}
	for i := range a.Rects {
		if a.Rects[i] != b.Rects[i] {
			t.Fatal("rects nondeterministic")
		}
	}
}

func TestSolveBeatsBadReference(t *testing.T) {
	// The annealed cost must not exceed the cost of the initial balanced
	// expression (sanity: SA keeps the best ever seen).
	n := 6
	aff := make([][]float64, n)
	for i := range aff {
		aff[i] = make([]float64, n)
	}
	aff[0][5], aff[5][0] = 50, 50
	aff[1][4], aff[4][1] = 30, 30
	aff[2][3], aff[3][2] = 10, 10
	blocks := make([]BlockSpec, n)
	for i := range blocks {
		blocks[i] = soft(100_000)
	}
	p := &Problem{Region: geom.RectXYWH(0, 0, 900, 700), Blocks: blocks, Affinity: aff}

	// Reference: evaluate the untouched balanced expression.
	sl := make([]slicing.Block, n)
	for i := range blocks {
		sl[i] = blocks[i].Block
	}
	e0 := slicing.NewBalanced(n)
	ev0 := slicing.Evaluate(&e0, sl, p.Region, slicing.DefaultEvalParams())
	ref := wirecost(ev0, p, affinityPairs(p))

	opt := DefaultOptions()
	opt.Seed = 13
	r := Solve(context.Background(), p, opt)
	if r.Cost > ref {
		t.Errorf("annealed cost %v worse than initial %v", r.Cost, ref)
	}
}

func TestWirecostDegenerateLayoutLoses(t *testing.T) {
	// A layout whose only attraction distance is zero must not erase its
	// violation penalty: the illegal zero-distance layout has to cost more
	// than a nearby legal one. (Regression: penalty · Σ dist·aff scored the
	// degenerate layout 0, beating every legal layout.)
	aff := make([][]float64, 2)
	for i := range aff {
		aff[i] = make([]float64, 2)
	}
	aff[0][1], aff[1][0] = 5, 5 // block <-> center terminal
	p := &Problem{
		Region:    geom.RectXYWH(0, 0, 100, 100),
		Blocks:    []BlockSpec{soft(5000)},
		Terminals: []Terminal{{Name: "c", Pos: geom.Pt(50, 50)}},
		Affinity:  aff,
	}
	pairs := affinityPairs(p)

	// Illegal layout sitting exactly on the terminal: distance sum is zero.
	illegal := &slicing.Eval{
		Rects:          []geom.Rect{geom.RectXYWH(0, 0, 100, 100)},
		ViolationMacro: 1,
		Penalty:        33,
	}
	// Legal layout a couple of DBU off the terminal.
	legal := &slicing.Eval{
		Rects:   []geom.Rect{geom.RectXYWH(2, 2, 100, 100)},
		Penalty: 1,
	}
	ci, cl := wirecost(illegal, p, pairs), wirecost(legal, p, pairs)
	if ci <= cl {
		t.Errorf("illegal zero-distance layout costs %v, must exceed legal cost %v", ci, cl)
	}
}

func TestAffinityPairsSkipTerminalTerminal(t *testing.T) {
	aff := make([][]float64, 3)
	for i := range aff {
		aff[i] = make([]float64, 3)
	}
	aff[1][2], aff[2][1] = 9, 9 // terminal-terminal
	aff[0][1], aff[1][0] = 2, 2 // block-terminal
	p := &Problem{
		Region:    geom.RectXYWH(0, 0, 10, 10),
		Blocks:    []BlockSpec{soft(10)},
		Terminals: []Terminal{{Pos: geom.Pt(0, 0)}, {Pos: geom.Pt(9, 9)}},
		Affinity:  aff,
	}
	pairs := affinityPairs(p)
	if len(pairs) != 1 || pairs[0].i != 0 || pairs[0].j != 1 {
		t.Errorf("pairs = %+v, want only block-terminal", pairs)
	}
}

// TestSolvePoolMatchesUnpooled is the Options.Pool contract: solving with a
// shared (and reused) evaluator pool returns exactly the solution of the
// pool-free path, across several problem sizes through the same pool.
func TestSolvePoolMatchesUnpooled(t *testing.T) {
	pool := &slicing.EvaluatorPool{}
	for _, nb := range []int{2, 7, 4, 12} {
		p := &Problem{Region: geom.RectXYWH(0, 0, 200_000, 160_000)}
		for i := 0; i < nb; i++ {
			w := int64(20_000 + 3_000*(i%5))
			h := int64(15_000 + 2_000*(i%4))
			p.Blocks = append(p.Blocks, BlockSpec{
				Name:  fmt.Sprintf("b%d", i),
				Block: slicing.Block{Curve: shape.FromBoxRotatable(w, h), MinArea: w * h, TargetArea: w * h * 3 / 2},
			})
		}
		p.Terminals = []Terminal{{Name: "t", Pos: geom.Pt(0, 0)}}
		aff := make([][]float64, nb+1)
		for i := range aff {
			aff[i] = make([]float64, nb+1)
		}
		for i := 0; i+1 < nb; i++ {
			aff[i][i+1] = 1 + float64(i)
		}
		aff[0][nb] = 2 // block 0 pulled to the terminal
		p.Affinity = aff

		opt := DefaultOptions()
		opt.Seed = int64(nb)
		plain := Solve(context.Background(), p, opt)
		opt.Pool = pool
		pooled := Solve(context.Background(), p, opt)

		if plain.Cost != pooled.Cost || plain.Penalty != pooled.Penalty || plain.Legal != pooled.Legal {
			t.Fatalf("nb=%d: pooled (%v %v %v) != plain (%v %v %v)",
				nb, pooled.Cost, pooled.Penalty, pooled.Legal, plain.Cost, plain.Penalty, plain.Legal)
		}
		for i := range plain.Rects {
			if plain.Rects[i] != pooled.Rects[i] {
				t.Fatalf("nb=%d: rect %d = %v, want %v", nb, i, pooled.Rects[i], plain.Rects[i])
			}
		}
	}
}

// TestDeltaCostMatchesFullRecompute is the differential contract of the
// delta wirecost: across 10k random accepted and rejected moves, the
// incrementally maintained sum must equal a from-scratch costState rebuild
// bit for bit (both fold the contribution array under the same fixed
// association), and track the plain left-to-right wirecost reference to
// within summation-order rounding.
func TestDeltaCostMatchesFullRecompute(t *testing.T) {
	p := benchProblem(14)
	nb := len(p.Blocks)
	blocks := make([]slicing.Block, nb)
	for i := range p.Blocks {
		blocks[i] = p.Blocks[i].Block
	}
	pairs := affinityPairs(p)
	expr := slicing.NewBalanced(nb)
	inc := slicing.NewEvaluator(&expr, blocks, slicing.DefaultEvalParams())
	var cs, ref costState
	cs.init(p, nil)
	ev := inc.Eval(p.Region)
	sum := cs.rebuild(ev.Rects)

	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 10_000; step++ {
		undo, _ := inc.Perturb(rng)
		ev := inc.Eval(p.Region)
		sum = cs.update(ev.Rects, inc.Changed())
		ref.init(p, nil)
		want := ref.rebuild(ev.Rects)
		if sum != want {
			t.Fatalf("step %d: delta sum %v != full rebuild %v (bit mismatch)", step, sum, want)
		}
		plain := wirecost(ev, p, pairs) // penalty·(1+sum) with left-to-right fold
		got := ev.Penalty * (1 + sum)
		if diff := math.Abs(got - plain); diff > 1e-9*math.Abs(plain) {
			t.Fatalf("step %d: tree cost %v vs plain wirecost %v beyond rounding", step, got, plain)
		}
		if rng.Intn(2) == 0 {
			cs.undo()
			undo()
			ev2 := inc.Eval(p.Region)
			ref.init(p, nil)
			if got, want := cs.sum(), ref.rebuild(ev2.Rects); got != want {
				t.Fatalf("step %d: after undo, delta sum %v != full rebuild %v", step, got, want)
			}
		}
	}
}

// TestSolveRestartsDeterministicAcrossWorkers is the multi-start contract:
// a seeded Solve with Restarts=4 must return byte-identical results whether
// the chains run on the calling goroutine (Sched nil) or on a shared
// work-stealing pool of any width.
func TestSolveRestartsDeterministicAcrossWorkers(t *testing.T) {
	p := benchProblem(10)
	solve := func(workers int) *Result {
		opt := DefaultOptions()
		opt.Seed = 21
		opt.Effort = EffortLow
		opt.Restarts = 4
		if workers > 0 {
			pool := sched.NewPool(workers)
			defer pool.Close()
			opt.Sched = pool
		}
		return Solve(context.Background(), p, opt)
	}
	a := solve(0) // serial reference: no scheduler at all
	for _, w := range []int{1, 2, 4} {
		b := solve(w)
		if math.Float64bits(a.Cost) != math.Float64bits(b.Cost) ||
			math.Float64bits(a.Penalty) != math.Float64bits(b.Penalty) ||
			a.Legal != b.Legal || a.Expr.String() != b.Expr.String() {
			t.Fatalf("workers=%d: result differs: cost %v/%v expr %s/%s",
				w, a.Cost, b.Cost, a.Expr.String(), b.Expr.String())
		}
		for i := range a.Rects {
			if a.Rects[i] != b.Rects[i] {
				t.Fatalf("workers=%d: rect %d = %v, want %v", w, i, b.Rects[i], a.Rects[i])
			}
		}
	}
}

// TestSolveRestartsNeverWorse pins the selection rule: chain 0 reproduces
// the single-chain run, so the best of K restarts can never cost more than
// Restarts=1 with the same seed.
func TestSolveRestartsNeverWorse(t *testing.T) {
	p := benchProblem(9)
	opt := DefaultOptions()
	opt.Seed = 8
	opt.Effort = EffortLow
	single := Solve(context.Background(), p, opt)
	opt.Restarts = 5
	multi := Solve(context.Background(), p, opt)
	if multi.Cost > single.Cost {
		t.Fatalf("restarts=5 cost %v worse than single-chain %v", multi.Cost, single.Cost)
	}
}
