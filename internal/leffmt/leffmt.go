// Package leffmt reads and writes the macro subset of LEF (Library
// Exchange Format): MACRO blocks with CLASS, SIZE and PIN records. It is
// how macro libraries arrive from memory compilers in practice, and it
// pairs with the Verilog front end (which needs macro outlines and pin
// geometry) and the DEF writer.
//
// Supported subset per MACRO: CLASS BLOCK, SIZE <w> BY <h> (microns),
// ORIGIN (ignored), and PIN blocks with DIRECTION INPUT|OUTPUT and an
// optional PORT/RECT whose center becomes the pin offset. Bus pins may be
// written per bit (D[0], D[1], ...) and are re-clustered on read.
package leffmt

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/verilog"
)

// dbuPerMicron converts the synthetic 1 nm DBU to LEF microns.
const dbuPerMicron = 1000

// Write emits every macro of a library as LEF.
func Write(w io.Writer, lib *verilog.Library) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\nBUSBITCHARS \"[]\" ;\nDIVIDERCHAR \"/\" ;\n\n")

	var names []string
	for name, c := range lib.Cells {
		if c.Kind == netlist.KindMacro {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	for _, name := range names {
		c := lib.Cell(name)
		fmt.Fprintf(bw, "MACRO %s\n", name)
		fmt.Fprintf(bw, "  CLASS BLOCK ;\n")
		fmt.Fprintf(bw, "  ORIGIN 0 0 ;\n")
		fmt.Fprintf(bw, "  SIZE %s BY %s ;\n", microns(c.Width), microns(c.Height))
		for _, p := range c.Pins {
			dir := "INPUT"
			if p.Dir == netlist.DirOut {
				dir = "OUTPUT"
			}
			for bit := 0; bit < p.Width; bit++ {
				pin := p.Name
				if p.Width > 1 {
					pin = fmt.Sprintf("%s[%d]", p.Name, bit)
				}
				off := geom.Pt(p.Offset.X, p.Offset.Y+int64(bit)*p.Pitch)
				fmt.Fprintf(bw, "  PIN %s\n    DIRECTION %s ;\n", pin, dir)
				fmt.Fprintf(bw, "    PORT\n      LAYER M4 ;\n      RECT %s %s %s %s ;\n    END\n",
					microns(off.X-50), microns(off.Y-50), microns(off.X+50), microns(off.Y+50))
				fmt.Fprintf(bw, "  END %s\n", pin)
			}
		}
		fmt.Fprintf(bw, "END %s\n\n", name)
	}
	fmt.Fprintf(bw, "END LIBRARY\n")
	return bw.Flush()
}

func microns(dbu int64) string {
	return strconv.FormatFloat(float64(dbu)/dbuPerMicron, 'f', -1, 64)
}

// Read parses LEF macros into (or onto) a library. When base is nil a new
// library containing only the macros is returned; otherwise the macros are
// added to base and base is returned.
func Read(r io.Reader, base *verilog.Library) (*verilog.Library, error) {
	lib := base
	if lib == nil {
		lib = &verilog.Library{Cells: map[string]*verilog.LibCell{}}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	var cur *lefMacro
	var curPin *lefPin
	line := 0
	for sc.Scan() {
		line++
		f := strings.Fields(strings.TrimSuffix(strings.TrimSpace(sc.Text()), ";"))
		f = trimTrailing(f)
		if len(f) == 0 {
			continue
		}
		switch {
		case f[0] == "MACRO" && len(f) >= 2:
			cur = &lefMacro{name: f[1]}
		case f[0] == "SIZE" && cur != nil && len(f) >= 4 && f[2] == "BY":
			w, err1 := parseMicrons(f[1])
			h, err2 := parseMicrons(f[3])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("leffmt: line %d: bad SIZE", line)
			}
			cur.w, cur.h = w, h
		case f[0] == "PIN" && cur != nil && len(f) >= 2:
			curPin = &lefPin{name: f[1], dir: netlist.DirIn}
			cur.pins = append(cur.pins, curPin)
		case f[0] == "DIRECTION" && curPin != nil && len(f) >= 2:
			if strings.EqualFold(f[1], "OUTPUT") {
				curPin.dir = netlist.DirOut
			}
		case f[0] == "RECT" && curPin != nil && len(f) >= 5:
			x1, e1 := parseMicrons(f[1])
			y1, e2 := parseMicrons(f[2])
			x2, e3 := parseMicrons(f[3])
			y2, e4 := parseMicrons(f[4])
			if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
				return nil, fmt.Errorf("leffmt: line %d: bad RECT", line)
			}
			curPin.off = geom.Pt((x1+x2)/2, (y1+y2)/2)
			curPin.hasOff = true
		case f[0] == "END" && cur != nil && len(f) >= 2 && f[1] == cur.name:
			lib.Add(cur.toLibCell())
			cur = nil
			curPin = nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("leffmt: unterminated MACRO %s", cur.name)
	}
	return lib, nil
}

func trimTrailing(f []string) []string {
	for len(f) > 0 && f[len(f)-1] == ";" {
		f = f[:len(f)-1]
	}
	return f
}

func parseMicrons(s string) (int64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	return int64(v * dbuPerMicron), nil
}

type lefPin struct {
	name   string
	dir    netlist.PinDir
	off    geom.Point
	hasOff bool
}

type lefMacro struct {
	name string
	w, h int64
	pins []*lefPin
}

// toLibCell re-clusters per-bit pins (D[0], D[1], ...) into bus PinSpecs.
func (m *lefMacro) toLibCell() *verilog.LibCell {
	c := &verilog.LibCell{Name: m.name, Kind: netlist.KindMacro, Width: m.w, Height: m.h}
	type bus struct {
		dir  netlist.PinDir
		bits []*lefPin
		idx  []int
	}
	buses := map[string]*bus{}
	var order []string
	for _, p := range m.pins {
		base, bit, ok := netlist.ArrayBase(p.name)
		if !ok {
			base, bit = p.name, 0
		}
		b := buses[base]
		if b == nil {
			b = &bus{dir: p.dir}
			buses[base] = b
			order = append(order, base)
		}
		b.bits = append(b.bits, p)
		b.idx = append(b.idx, bit)
	}
	for _, base := range order {
		b := buses[base]
		// Sort bits by declared index.
		sort.Sort(&pinSorter{b.bits, b.idx})
		spec := verilog.PinSpec{Name: base, Dir: b.dir, Width: len(b.bits)}
		if b.bits[0].hasOff {
			spec.Offset = b.bits[0].off
			if len(b.bits) > 1 && b.bits[1].hasOff {
				spec.Pitch = b.bits[1].off.Y - b.bits[0].off.Y
			}
		}
		c.Pins = append(c.Pins, spec)
	}
	return c
}

type pinSorter struct {
	pins []*lefPin
	idx  []int
}

func (s *pinSorter) Len() int           { return len(s.pins) }
func (s *pinSorter) Less(i, j int) bool { return s.idx[i] < s.idx[j] }
func (s *pinSorter) Swap(i, j int) {
	s.pins[i], s.pins[j] = s.pins[j], s.pins[i]
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
}
