package leffmt

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/verilog"
)

func sampleLib() *verilog.Library {
	lib := &verilog.Library{Cells: map[string]*verilog.LibCell{}}
	lib.AddMacro("RAM512x64", 48_000, 30_000, 64)
	lib.AddMacro("ROM2K", 36_000, 24_000, 32)
	return lib
}

func TestWriteStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleLib()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"MACRO RAM512x64",
		"CLASS BLOCK ;",
		"SIZE 48 BY 30 ;",
		"PIN D[0]",
		"DIRECTION INPUT ;",
		"PIN Q[63]",
		"DIRECTION OUTPUT ;",
		"END RAM512x64",
		"MACRO ROM2K",
		"END LIBRARY",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// ROM2K precedes RAM512x64? Names sorted: RAM512x64 < ROM2K.
	if strings.Index(out, "MACRO RAM512x64") > strings.Index(out, "MACRO ROM2K") {
		t.Error("macros not sorted")
	}
}

func TestRoundTrip(t *testing.T) {
	src := sampleLib()
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"RAM512x64", "ROM2K"} {
		want := src.Cell(name)
		c := got.Cell(name)
		if c == nil {
			t.Fatalf("macro %s lost", name)
		}
		if c.Width != want.Width || c.Height != want.Height {
			t.Errorf("%s size = %dx%d, want %dx%d", name, c.Width, c.Height, want.Width, want.Height)
		}
		if c.Kind != netlist.KindMacro {
			t.Errorf("%s kind = %v", name, c.Kind)
		}
		// Bus pins re-clustered with widths and direction.
		for _, pin := range []string{"D", "Q"} {
			ps := c.Pin(pin)
			ws := want.Pin(pin)
			if ps == nil {
				t.Fatalf("%s pin %s lost", name, pin)
			}
			if ps.Width != ws.Width {
				t.Errorf("%s.%s width = %d, want %d", name, pin, ps.Width, ws.Width)
			}
			if ps.Dir != ws.Dir {
				t.Errorf("%s.%s dir = %v, want %v", name, pin, ps.Dir, ws.Dir)
			}
			if ps.Pitch != ws.Pitch {
				t.Errorf("%s.%s pitch = %d, want %d", name, pin, ps.Pitch, ws.Pitch)
			}
		}
		if c.Pin("CE") == nil || c.Pin("CE").Width != 1 {
			t.Errorf("%s CE pin lost", name)
		}
	}
}

func TestReadIntoBase(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleLib()); err != nil {
		t.Fatal(err)
	}
	base := verilog.DefaultLibrary()
	got, err := Read(&buf, base)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Error("Read should return the base library")
	}
	if got.Cell("DFF") == nil || got.Cell("RAM512x64") == nil {
		t.Error("base cells or macros missing after merge")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("MACRO m\n SIZE x BY 3 ;\nEND m\n"), nil); err == nil {
		t.Error("bad SIZE should fail")
	}
	if _, err := Read(strings.NewReader("MACRO m\n SIZE 1 BY 1 ;\n"), nil); err == nil {
		t.Error("unterminated macro should fail")
	}
	if _, err := Read(strings.NewReader("MACRO m\nPIN p\nPORT\nRECT a b c d ;\nEND\nEND p\nEND m\n"), nil); err == nil {
		t.Error("bad RECT should fail")
	}
}

func TestLEFIntoVerilogElaboration(t *testing.T) {
	// The LEF-read library must drive Verilog elaboration end to end.
	var buf bytes.Buffer
	if err := Write(&buf, sampleLib()); err != nil {
		t.Fatal(err)
	}
	lib, err := Read(&buf, verilog.DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	src := `
module top (d, q);
  input [31:0] d;
  output [31:0] q;
  ROM2K u_rom (.D(d), .Q(q));
endmodule`
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := verilog.Elaborate(f, "top", lib)
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats().MacroCells != 1 {
		t.Error("macro not instantiated from LEF library")
	}
}
