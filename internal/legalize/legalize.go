// Package legalize removes residual overlaps from macro placements. All
// three flows (HiDaP, IndEDA, handFP) run it as a final safety net so that
// metric comparisons never see overlapping macros.
package legalize

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/placement"
)

// Macros removes residual macro overlaps after the recursive
// floorplan. The slicing penalties keep HiDaP layouts essentially legal;
// this pass only mops up slivers introduced by corner-fixing macros whose
// block rectangles were slightly undersized. Strategy: process macros in
// decreasing area (big macros anchor); an overlapping macro is pushed off
// its anchor in the direction that minimizes displacement plus the overlap
// it would create against every other macro, clamped to the die.
func Macros(pl *placement.Placement, die geom.Rect) {
	d := pl.D
	var order []netlist.CellID
	for _, m := range d.Macros() {
		if pl.Placed[m] {
			order = append(order, m)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		ai := d.Cell(order[i]).Area()
		aj := d.Cell(order[j]).Area()
		if ai != aj {
			return ai > aj
		}
		return order[i] < order[j]
	})

	// First, pull every macro inside the die; overlap resolution assumes
	// in-die rectangles.
	for _, m := range order {
		r := pl.Rect(m).ClampInside(die)
		if geom.Pt(r.X, r.Y) != pl.Pos[m] {
			pl.PlaceOriented(m, geom.Pt(r.X, r.Y), pl.Orient[m])
		}
	}

	overlapAgainst := func(r geom.Rect, skip netlist.CellID) int64 {
		var sum int64
		for _, o := range order {
			if o == skip {
				continue
			}
			sum += r.Intersect(pl.Rect(o)).Area()
		}
		return sum
	}

	const maxPasses = 60
	for pass := 0; pass < maxPasses; pass++ {
		moved := false
		for i, m := range order {
			rm := pl.Rect(m)
			var anchor geom.Rect
			found := false
			for _, a := range order[:i] {
				if ra := pl.Rect(a); rm.Intersects(ra) {
					anchor = ra
					found = true
					break
				}
			}
			if !found {
				continue
			}
			// Candidate displacements: flush left/right/below/above anchor.
			cands := [4][2]int64{
				{anchor.X - rm.X2(), 0},
				{anchor.X2() - rm.X, 0},
				{0, anchor.Y - rm.Y2()},
				{0, anchor.Y2() - rm.Y},
			}
			best := rm
			bestScore := int64(-1)
			for _, c := range cands {
				cand := rm.Translate(c[0], c[1]).ClampInside(die)
				score := abs64(c[0]) + abs64(c[1]) + overlapAgainst(cand, m)*16
				if bestScore < 0 || score < bestScore {
					bestScore = score
					best = cand
				}
			}
			if best != rm {
				pl.PlaceOriented(m, geom.Pt(best.X, best.Y), pl.Orient[m])
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	if pl.MacroOverlapArea() > 0 {
		shelfCompact(pl, order, die)
	}
}

// shelfCompact is the guaranteed-legal fallback for dies so tight the
// local pushes deadlock: macros are re-packed into shelves in row-major
// order of their current positions, preserving neighborhoods while
// removing every overlap that physically can be removed.
func shelfCompact(pl *placement.Placement, order []netlist.CellID, die geom.Rect) {
	sorted := append([]netlist.CellID(nil), order...)
	sort.Slice(sorted, func(i, j int) bool {
		pi, pj := pl.Pos[sorted[i]], pl.Pos[sorted[j]]
		if pi.Y != pj.Y {
			return pi.Y < pj.Y
		}
		if pi.X != pj.X {
			return pi.X < pj.X
		}
		return sorted[i] < sorted[j]
	})
	x, y := die.X, die.Y
	var shelfH int64
	for _, m := range sorted {
		r := pl.Rect(m)
		if x+r.W > die.X2() && x > die.X {
			x = die.X
			y += shelfH
			shelfH = 0
		}
		nr := geom.RectXYWH(x, y, r.W, r.H).ClampInside(die)
		pl.PlaceOriented(m, geom.Pt(nr.X, nr.Y), pl.Orient[m])
		x += r.W
		if r.H > shelfH {
			shelfH = r.H
		}
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
