package legalize

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/placement"
)

func macroDesign(t testing.TB, n int, w, h int64) (*netlist.Design, []netlist.CellID) {
	t.Helper()
	b := netlist.NewBuilder("lg")
	b.SetDie(geom.RectXYWH(0, 0, 100_000, 100_000))
	var ids []netlist.CellID
	for i := 0; i < n; i++ {
		ids = append(ids, b.AddMacro(fmt.Sprintf("m%d", i), w, h, ""))
	}
	return b.MustBuild(), ids
}

func TestMacrosSeparatesStack(t *testing.T) {
	d, ids := macroDesign(t, 6, 20_000, 20_000)
	pl := placement.New(d)
	for _, id := range ids {
		pl.Place(id, geom.Pt(40_000, 40_000))
	}
	Macros(pl, d.Die)
	if ov := pl.MacroOverlapArea(); ov != 0 {
		t.Errorf("overlap = %d", ov)
	}
	if err := pl.MacrosInsideDie(); err != nil {
		t.Error(err)
	}
}

func TestMacrosClampsEscapees(t *testing.T) {
	d, ids := macroDesign(t, 2, 10_000, 10_000)
	pl := placement.New(d)
	pl.Place(ids[0], geom.Pt(95_000, 95_000)) // hangs off the die
	pl.Place(ids[1], geom.Pt(-5_000, 50_000))
	Macros(pl, d.Die)
	if err := pl.MacrosInsideDie(); err != nil {
		t.Error(err)
	}
	if ov := pl.MacroOverlapArea(); ov != 0 {
		t.Errorf("overlap = %d", ov)
	}
}

func TestMacrosPreservesLegalPlacement(t *testing.T) {
	d, ids := macroDesign(t, 3, 10_000, 10_000)
	pl := placement.New(d)
	want := []geom.Point{{X: 0, Y: 0}, {X: 20_000, Y: 0}, {X: 40_000, Y: 0}}
	for i, id := range ids {
		pl.Place(id, want[i])
	}
	Macros(pl, d.Die)
	for i, id := range ids {
		if pl.Pos[id] != want[i] {
			t.Errorf("macro %d moved from %v to %v despite legality", i, want[i], pl.Pos[id])
		}
	}
}

func TestMacrosRandomClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(10)
		d, ids := macroDesign(t, n, 8_000+rng.Int63n(8_000), 8_000+rng.Int63n(8_000))
		pl := placement.New(d)
		for _, id := range ids {
			pl.Place(id, geom.Pt(rng.Int63n(90_000), rng.Int63n(90_000)))
		}
		Macros(pl, d.Die)
		if ov := pl.MacroOverlapArea(); ov != 0 {
			t.Fatalf("trial %d: overlap %d after legalization", trial, ov)
		}
		if err := pl.MacrosInsideDie(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestMacrosKeepsOrientation(t *testing.T) {
	d, ids := macroDesign(t, 2, 20_000, 10_000)
	pl := placement.New(d)
	pl.PlaceOriented(ids[0], geom.Pt(0, 0), geom.R90)
	pl.PlaceOriented(ids[1], geom.Pt(0, 0), geom.MX)
	Macros(pl, d.Die)
	if pl.Orient[ids[0]] != geom.R90 || pl.Orient[ids[1]] != geom.MX {
		t.Error("legalization changed orientations")
	}
	if ov := pl.MacroOverlapArea(); ov != 0 {
		t.Errorf("overlap = %d", ov)
	}
}

func TestMacrosSkipsUnplaced(t *testing.T) {
	d, ids := macroDesign(t, 2, 10_000, 10_000)
	pl := placement.New(d)
	pl.Place(ids[0], geom.Pt(0, 0))
	// ids[1] unplaced: must not panic or get a position.
	Macros(pl, d.Die)
	if pl.Placed[ids[1]] {
		t.Error("legalization placed an unplaced macro")
	}
}
