package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Allocates is the cross-package allocation fact: exported for every function
// whose body contains an allocating construct (or a call to a function with
// this fact), it lets allocfree break the build when a regression lands in a
// hot path's callee's callee, packages away from any //hidapvet:hotpath
// annotation. Where names the first offending construct, nesting through call
// chains ("calls Wrap (calls Grow (make))") so diagnostics point at the root.
type Allocates struct {
	Where string
}

func (*Allocates) AFact() {}

func (f *Allocates) String() string { return "allocates: " + f.Where }

// AllocFree enforces the 0-allocs/proposal budget won by the slicing and
// layout hot-path work: a function whose doc comment carries
// //hidapvet:hotpath must not contain allocating constructs — map/slice
// literals, &T{} heap literals, make/new, function literals (closures),
// string concatenation, interface boxing at call arguments — nor call, at
// any depth through the Allocates fact graph, a function that does.
//
// Deliberately NOT flagged, because the hot paths rely on them:
//
//   - append: the evaluators append to pre-grown journal slices; amortized
//     growth is part of the design and pinned by AllocsPerRun tests.
//   - interface method calls: anneal.RunModel drives its Model through an
//     interface; dynamic dispatch does not allocate.
//   - plain struct composite values (geom.Rect{...}): stack-allocated.
//
// Standard-library units are not analyzed (no facts), so a small denylist
// covers the std functions that always allocate (fmt, errors.New, rand.New…).
// Justified sites carry //hidapvet:allow allocfree <reason>; a suppressed
// site is also excluded from fact derivation, so a reviewed warm-up make
// does not taint every caller.
var AllocFree = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "forbid allocating constructs in //hidapvet:hotpath functions, " +
		"propagating an Allocates fact through the cross-package call graph",
	Run:       runAllocFree,
	FactTypes: []analysis.Fact{new(Allocates)},
}

// stdAllocs lists standard-library functions known to allocate, keyed by
// package path. A nil set means every function in the package.
var stdAllocs = map[string]map[string]bool{
	"fmt":    nil,
	"errors": {"New": true},
	"strings": {
		"Join": true, "Repeat": true, "Split": true, "Fields": true,
		"Replace": true, "ReplaceAll": true, "ToUpper": true, "ToLower": true,
		"Map": true, "Clone": true,
	},
	"strconv": {
		"Itoa": true, "FormatInt": true, "FormatUint": true,
		"FormatFloat": true, "Quote": true,
	},
	"sort": {"Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
	"math/rand": {
		"New": true, "NewSource": true, "NewZipf": true, "Perm": true,
	},
	"math/rand/v2": {"New": true, "NewPCG": true, "NewChaCha8": true, "Perm": true},
}

func stdAllocReason(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	set, ok := stdAllocs[pkg.Path()]
	if !ok {
		return "", false
	}
	if set == nil || set[fn.Name()] {
		return "std allocator", true
	}
	return "", false
}

func runAllocFree(pass *analysis.Pass) (interface{}, error) {
	idx := parseDirectives(pass)
	idx.checkDirectiveReasons(pass)

	type site struct {
		pos  token.Pos
		what string
	}
	type callRec struct {
		callee *types.Func
		pos    token.Pos
	}
	type fnState struct {
		obj   *types.Func
		hot   bool
		sites []site    // direct allocating constructs + known-allocating cross-package calls
		calls []callRec // in-package call edges, resolved after the walk
		where string    // summary: "" = alloc-free
	}
	var fns []*fnState
	byObj := make(map[*types.Func]*fnState)

	for _, f := range nonTestFiles(pass) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			st := &fnState{obj: obj, hot: isHotpath(fd)}
			fns = append(fns, st)
			byObj[obj] = st

			addSite := func(pos token.Pos, what string) {
				if !idx.suppressed(pos, pass.Analyzer.Name) {
					st.sites = append(st.sites, site{pos, what})
				}
			}

			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.UnaryExpr:
					if x.Op == token.AND {
						if _, ok := x.X.(*ast.CompositeLit); ok {
							addSite(x.Pos(), "heap composite literal (&T{...})")
							return true
						}
					}
				case *ast.CompositeLit:
					switch pass.TypesInfo.Types[x].Type.Underlying().(type) {
					case *types.Map:
						addSite(x.Pos(), "map literal")
					case *types.Slice:
						addSite(x.Pos(), "slice literal")
					}
				case *ast.FuncLit:
					addSite(x.Pos(), "function literal (closure)")
				case *ast.BinaryExpr:
					if x.Op == token.ADD && isStringType(pass.TypesInfo.Types[x].Type) {
						addSite(x.Pos(), "string concatenation")
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
						if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
							switch b.Name() {
							case "make":
								addSite(x.Pos(), "make")
							case "new":
								addSite(x.Pos(), "new")
							}
							return true
						}
					}
					if what := boxedArg(pass.TypesInfo, x); what != "" {
						addSite(x.Pos(), what)
					}
					if callee := calleeFunc(pass.TypesInfo, x); callee != nil {
						if callee.Pkg() == pass.Pkg {
							st.calls = append(st.calls, callRec{callee, x.Pos()})
						} else if _, std := stdAllocReason(callee); std {
							addSite(x.Pos(), "call to "+callee.FullName()+" (std allocator)")
						} else {
							var fact Allocates
							if pass.ImportObjectFact(callee, &fact) {
								addSite(x.Pos(), "call to "+callee.FullName()+" ("+fact.Where+")")
							}
						}
					}
				}
				return true
			})

			if len(st.sites) > 0 {
				st.where = st.sites[0].what
			}
		}
	}

	// Propagate allocation through in-package call edges to a fixed point,
	// materializing the offending call as a site so hot functions report it.
	for changed := true; changed; {
		changed = false
		for _, st := range fns {
			for _, c := range st.calls {
				cs := byObj[c.callee]
				if cs == nil || cs.where == "" || idx.suppressed(c.pos, pass.Analyzer.Name) {
					continue
				}
				dup := false
				for _, s := range st.sites {
					if s.pos == c.pos {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				st.sites = append(st.sites, site{c.pos, "call to " + c.callee.Name() + " (" + cs.where + ")"})
				if st.where == "" {
					st.where = st.sites[len(st.sites)-1].what
				}
				changed = true
			}
		}
	}

	for _, st := range fns {
		if st.where != "" {
			pass.ExportObjectFact(st.obj, &Allocates{Where: st.where})
		}
		if !st.hot {
			continue
		}
		for _, s := range st.sites {
			pass.Reportf(s.pos, "allocation in //hidapvet:hotpath function %s: %s; hoist it out of "+
				"the hot path or annotate //hidapvet:allow allocfree <reason>", st.obj.Name(), s.what)
		}
	}
	return nil, nil
}

// isHotpath reports whether the function's doc comment carries the
// //hidapvet:hotpath directive (no reason required: the annotation is the
// contract, not a suppression).
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directivePrefix+"hotpath" {
			return true
		}
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// boxedArg reports the first call argument whose concrete, non-pointer-shaped
// value is passed to an interface parameter — the boxing allocates. Pointer-
// shaped kinds (pointers, maps, chans, funcs) box without allocating and are
// ignored; calls through the ellipsis spread are left to the denylist.
func boxedArg(info *types.Info, call *ast.CallExpr) string {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return ""
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return "" // conversion or builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, ok := pt.Underlying().(*types.Interface); !ok {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || at == types.Typ[types.UntypedNil] {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Basic:
			// Interfaces re-box for free; pointer-shaped kinds don't allocate.
			// Untyped constants and small basics are usually interned — only
			// composite values are confidently heap boxes.
			continue
		}
		return "interface boxing of argument " + types.ExprString(arg)
	}
	return ""
}
