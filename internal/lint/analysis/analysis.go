// Package analysis is a minimal, dependency-free stand-in for
// golang.org/x/tools/go/analysis, providing just the surface the hidap-vet
// analyzers need: an Analyzer with a Run function over a fully type-checked
// Pass, positional Diagnostics, and cross-package Facts.
//
// Why a stand-in and not the real module: this repository builds offline and
// vendors nothing, so golang.org/x/tools cannot be fetched. The API here is
// deliberately a strict subset with identical field names and semantics, so
// if/when the real dependency becomes available the analyzers in
// internal/lint port by changing one import line. Requires-based result
// passing and SuggestedFixes are intentionally omitted; the Fact API
// (ExportObjectFact/ImportObjectFact and the package-level pair, backed by
// the FactSet driver store in facts.go) is implemented because seedpure and
// allocfree need whole-program propagation.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static-analysis pass: a name, prose documentation
// of the invariant it enforces, and a Run function applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// directives (//hidapvet:allow <name> <reason>).
	Name string

	// Doc is the help text: first line is a summary, the rest explains
	// the invariant and the suppression convention.
	Doc string

	// Run applies the analyzer to a single type-checked package.
	// Diagnostics are delivered through pass.Report; the result value is
	// unused by the hidap-vet driver and may be nil.
	Run func(*Pass) (interface{}, error)

	// FactTypes lists the concrete types of facts this analyzer exports
	// and imports, as exemplar pointer values (e.g. new(SeedFact)). The
	// driver gob-registers them so facts survive the .vetx round trip
	// between compilation units. An analyzer that declares no fact types
	// must not call the fact hooks on its Pass.
	FactTypes []Fact
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one type-checked package to an Analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs it; analyzers
	// usually call the Reportf convenience wrapper instead.
	Report func(Diagnostic)

	// The fact hooks below are installed by the driver (FactSet.Install);
	// they are nil when the driver does not support facts. Semantics match
	// golang.org/x/tools/go/analysis:
	//
	// ImportObjectFact copies into fact (which must be a pointer of one of
	// the analyzer's FactTypes) the fact previously exported for obj —
	// by this unit, or by the analysis of a dependency package whose
	// .vetx file the driver decoded — and reports whether one existed.
	ImportObjectFact func(obj types.Object, fact Fact) bool

	// ExportObjectFact associates fact with obj, which must belong to the
	// package under analysis. Facts on package-level objects (and methods
	// of package-level named types) are serialized into the unit's .vetx
	// output so downstream packages can import them.
	ExportObjectFact func(obj types.Object, fact Fact)

	// ImportPackageFact copies into fact the package-level fact exported
	// for pkg, reporting whether one existed.
	ImportPackageFact func(pkg *types.Package, fact Fact) bool

	// ExportPackageFact associates fact with the package under analysis.
	ExportPackageFact func(fact Fact)

	// AllObjectFacts returns every object fact currently in the driver's
	// store (imported and freshly exported alike), in a deterministic
	// order: by package path, then object path, then fact type.
	AllObjectFacts func() []ObjectFact

	// AllPackageFacts returns every package fact in the store, in a
	// deterministic order.
	AllPackageFacts func() []PackageFact
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional: end of the offending range
	Category string    // optional sub-category within the analyzer
	Message  string
}

// NewTypesInfo returns a types.Info with every map the analyzers consult
// allocated, ready to be filled by types.Config.Check.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
