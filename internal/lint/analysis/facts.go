package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// A Fact is a datum produced by the analysis of one package and consumed by
// the analysis of packages that import it — the mechanism that turns
// whole-program invariants (seed purity, allocation freedom) into modular,
// per-unit checks, exactly like go vet's printf fact. Concrete fact types
// are declared by analyzers (Analyzer.FactTypes), must be pointers to
// gob-encodable structs with exported fields, and implement the marker
// method AFact.
type Fact interface {
	AFact() // dummy marker method
}

// ObjectFact is one (object, fact) association from a driver's fact store.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// PackageFact is one (package, fact) association.
type PackageFact struct {
	Package *types.Package
	Fact    Fact
}

type objFactKey struct {
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	path string
	t    reflect.Type
}

// FactSet is the driver-side fact store for the analysis of one compilation
// unit: it holds the facts decoded from dependency .vetx files plus the
// facts the unit's own analyzers export, keyed by object identity (all
// packages of a unit share one importer, so identity is well-defined). The
// zero value is not usable; call NewFactSet.
type FactSet struct {
	obj  map[objFactKey]Fact
	pkg  map[pkgFactKey]Fact
	pkgs map[string]*types.Package // package facts: path → package, for AllPackageFacts
}

// NewFactSet returns an empty fact store.
func NewFactSet() *FactSet {
	return &FactSet{
		obj:  make(map[objFactKey]Fact),
		pkg:  make(map[pkgFactKey]Fact),
		pkgs: make(map[string]*types.Package),
	}
}

// Install binds the pass's fact hooks to this store. The pass's Pkg governs
// export validation: analyzers may only export facts about objects of the
// package they are analyzing.
func (s *FactSet) Install(pass *Pass) {
	cur := pass.Pkg
	pass.ImportObjectFact = func(obj types.Object, fact Fact) bool {
		return s.importObjectFact(obj, fact)
	}
	pass.ExportObjectFact = func(obj types.Object, fact Fact) {
		s.exportObjectFact(cur, obj, fact)
	}
	pass.ImportPackageFact = func(pkg *types.Package, fact Fact) bool {
		return s.importPackageFact(pkg, fact)
	}
	pass.ExportPackageFact = func(fact Fact) {
		s.exportPackageFact(cur, fact)
	}
	pass.AllObjectFacts = s.AllObjectFacts
	pass.AllPackageFacts = s.AllPackageFacts
}

func factType(fact Fact) reflect.Type {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Ptr {
		panic(fmt.Sprintf("analysis: fact %T is not a pointer", fact))
	}
	return t
}

func (s *FactSet) importObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	got, ok := s.obj[objFactKey{obj, factType(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

func (s *FactSet) exportObjectFact(cur *types.Package, obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() != cur {
		panic(fmt.Sprintf("analysis: cannot export fact %T about an object outside the analyzed package %v", fact, cur))
	}
	s.obj[objFactKey{obj, factType(fact)}] = fact
}

func (s *FactSet) importPackageFact(pkg *types.Package, fact Fact) bool {
	if pkg == nil {
		return false
	}
	got, ok := s.pkg[pkgFactKey{pkg.Path(), factType(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

func (s *FactSet) exportPackageFact(cur *types.Package, fact Fact) {
	s.pkg[pkgFactKey{cur.Path(), factType(fact)}] = fact
	s.pkgs[cur.Path()] = cur
}

// AllObjectFacts returns every object fact, sorted by (package path, object
// path, fact type) so output and serialization are deterministic.
func (s *FactSet) AllObjectFacts() []ObjectFact {
	out := make([]ObjectFact, 0, len(s.obj))
	for k, f := range s.obj {
		out = append(out, ObjectFact{Object: k.obj, Fact: f})
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := objPkgPath(out[i].Object), objPkgPath(out[j].Object)
		if pi != pj {
			return pi < pj
		}
		oi, _ := PathOf(out[i].Object)
		oj, _ := PathOf(out[j].Object)
		if oi != oj {
			return oi < oj
		}
		return factName(out[i].Fact) < factName(out[j].Fact)
	})
	return out
}

// AllPackageFacts returns every package fact, sorted by (package path, fact
// type).
func (s *FactSet) AllPackageFacts() []PackageFact {
	out := make([]PackageFact, 0, len(s.pkg))
	for k, f := range s.pkg {
		out = append(out, PackageFact{Package: s.pkgs[k.path], Fact: f})
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Package.Path(), out[j].Package.Path()
		if pi != pj {
			return pi < pj
		}
		return factName(out[i].Fact) < factName(out[j].Fact)
	})
	return out
}

func objPkgPath(obj types.Object) string {
	if p := obj.Pkg(); p != nil {
		return p.Path()
	}
	return ""
}

func factName(f Fact) string { return reflect.TypeOf(f).String() }

// PathOf returns the serialization path of obj within its package — a
// one-segment path for package-level objects ("RunModel"), a two-segment
// path for methods of package-level named types ("Evaluator.Perturb") — and
// whether the object is addressable that way at all. It is the minimal
// subset of golang.org/x/tools/go/types/objectpath the fact engine needs:
// facts on local or field objects are driver-internal and never serialized.
func PathOf(obj types.Object) (string, bool) {
	pkg := obj.Pkg()
	if pkg == nil {
		return "", false
	}
	if obj.Parent() == pkg.Scope() {
		return obj.Name(), true
	}
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() == pkg {
				return named.Obj().Name() + "." + fn.Name(), true
			}
		}
	}
	return "", false
}

// ObjectAt resolves a PathOf path back to an object in pkg, returning nil
// when the path does not resolve (e.g. the object was compiled away from the
// export data).
func ObjectAt(pkg *types.Package, path string) types.Object {
	if tname, mname, ok := strings.Cut(path, "."); ok {
		tn, _ := pkg.Scope().Lookup(tname).(*types.TypeName)
		if tn == nil {
			return nil
		}
		named, _ := tn.Type().(*types.Named)
		if named == nil {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == mname {
				return m
			}
		}
		return nil
	}
	return pkg.Scope().Lookup(path)
}

// gobFact is the .vetx wire record. PkgPath names the package owning the
// fact's object (or the package itself when Object is empty), so facts about
// indirect dependencies ride along in a direct dependency's file and the
// whole-program property stays transitive even though cmd/go hands each unit
// only its direct dependencies' .vetx files.
type gobFact struct {
	PkgPath string
	Object  string // PathOf path; "" for a package fact
	Fact    Fact
}

// Encode serializes the full store — own and imported facts alike, see
// gobFact — in a deterministic order. Facts on objects with no PathOf path
// (local functions, say) are driver-internal and silently dropped.
func (s *FactSet) Encode() ([]byte, error) {
	var gobs []gobFact
	for _, of := range s.AllObjectFacts() {
		path, ok := PathOf(of.Object)
		if !ok {
			continue
		}
		gob.Register(of.Fact) // idempotent; the decoder registered via FactTypes
		gobs = append(gobs, gobFact{PkgPath: objPkgPath(of.Object), Object: path, Fact: of.Fact})
	}
	for _, pf := range s.AllPackageFacts() {
		gob.Register(pf.Fact)
		gobs = append(gobs, gobFact{PkgPath: pf.Package.Path(), Fact: pf.Fact})
	}
	if len(gobs) == 0 {
		return nil, nil // an empty facts file decodes as an empty store
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobs); err != nil {
		return nil, fmt.Errorf("encoding facts: %v", err)
	}
	return buf.Bytes(), nil
}

// Decode merges one dependency's serialized facts into the store. find maps
// a package path to the corresponding imported *types.Package (typically the
// transitive import graph of the unit under analysis); facts about packages
// or objects that do not resolve are skipped — they concern parts of the
// program this unit cannot see and therefore cannot act on.
func (s *FactSet) Decode(data []byte, find func(path string) *types.Package) error {
	if len(data) == 0 {
		return nil
	}
	var gobs []gobFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&gobs); err != nil {
		return fmt.Errorf("decoding facts: %v", err)
	}
	for _, g := range gobs {
		pkg := find(g.PkgPath)
		if pkg == nil || g.Fact == nil {
			continue
		}
		if g.Object == "" {
			s.pkg[pkgFactKey{pkg.Path(), factType(g.Fact)}] = g.Fact
			s.pkgs[pkg.Path()] = pkg
			continue
		}
		obj := ObjectAt(pkg, g.Object)
		if obj == nil {
			continue
		}
		s.obj[objFactKey{obj, factType(g.Fact)}] = g.Fact
	}
	return nil
}
