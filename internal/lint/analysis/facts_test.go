package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/lint/analysis"
)

type testFact struct {
	Tag string
}

func (*testFact) AFact() {}

// checkSrc typechecks one in-memory file as package path, resolving imports
// through deps.
func checkSrc(t *testing.T, fset *token.FileSet, path, src string, deps map[string]*types.Package) (*types.Package, *ast.File) {
	t.Helper()
	f, err := parser.ParseFile(fset, path+".go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	imp := importerFunc(func(p string) (*types.Package, error) {
		return deps[p], nil
	})
	tc := &types.Config{Importer: imp}
	pkg, err := tc.Check(path, fset, []*ast.File{f}, analysis.NewTypesInfo())
	if err != nil {
		t.Fatal(err)
	}
	return pkg, f
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// TestFactRoundTrip exercises the full life of a fact: exported during the
// analysis of a dependency, serialized, decoded against a fresh typecheck of
// a downstream unit, and imported there — on a package-level function, a
// method, and a package fact.
func TestFactRoundTrip(t *testing.T) {
	fset := token.NewFileSet()
	depSrc := `package dep
type T struct{}
func (T) M() {}
func F() {}
`
	dep, _ := checkSrc(t, fset, "dep", depSrc, nil)

	s1 := analysis.NewFactSet()
	pass1 := &analysis.Pass{Pkg: dep}
	s1.Install(pass1)

	fObj := dep.Scope().Lookup("F")
	mObj := analysis.ObjectAt(dep, "T.M")
	if fObj == nil || mObj == nil {
		t.Fatalf("lookup failed: F=%v T.M=%v", fObj, mObj)
	}
	pass1.ExportObjectFact(fObj, &testFact{Tag: "on-F"})
	pass1.ExportObjectFact(mObj, &testFact{Tag: "on-T.M"})
	pass1.ExportPackageFact(&testFact{Tag: "on-pkg"})

	data, err := s1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("expected non-empty encoding")
	}

	// A downstream unit: fresh fact set, same type objects (shared importer
	// is what a driver guarantees).
	useSrc := `package use
import "dep"
var _ = dep.F
`
	use, _ := checkSrc(t, fset, "use", useSrc, map[string]*types.Package{"dep": dep})
	s2 := analysis.NewFactSet()
	if err := s2.Decode(data, func(path string) *types.Package {
		if path == "dep" {
			return dep
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	pass2 := &analysis.Pass{Pkg: use}
	s2.Install(pass2)

	var got testFact
	if !pass2.ImportObjectFact(fObj, &got) || got.Tag != "on-F" {
		t.Errorf("fact on F: got %+v", got)
	}
	if !pass2.ImportObjectFact(mObj, &got) || got.Tag != "on-T.M" {
		t.Errorf("fact on T.M: got %+v", got)
	}
	if !pass2.ImportPackageFact(dep, &got) || got.Tag != "on-pkg" {
		t.Errorf("package fact: got %+v", got)
	}
	if pass2.ImportObjectFact(use.Scope().Lookup("_"), &got) {
		t.Error("unexpected fact on unrelated object")
	}

	if n := len(pass2.AllObjectFacts()); n != 2 {
		t.Errorf("AllObjectFacts: got %d, want 2", n)
	}
	if n := len(pass2.AllPackageFacts()); n != 1 {
		t.Errorf("AllPackageFacts: got %d, want 1", n)
	}
}

// TestEncodeDeterministic pins byte-identical encodings regardless of map
// iteration order — the .vetx file feeds cmd/go's content-addressed cache.
func TestEncodeDeterministic(t *testing.T) {
	fset := token.NewFileSet()
	src := `package dep
func A() {}
func B() {}
func C() {}
`
	dep, _ := checkSrc(t, fset, "dep", src, nil)
	encode := func() []byte {
		s := analysis.NewFactSet()
		pass := &analysis.Pass{Pkg: dep}
		s.Install(pass)
		for _, name := range []string{"C", "A", "B"} {
			pass.ExportObjectFact(dep.Scope().Lookup(name), &testFact{Tag: name})
		}
		pass.ExportPackageFact(&testFact{Tag: "p"})
		data, err := s.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := encode()
	for i := 0; i < 8; i++ {
		if string(encode()) != string(first) {
			t.Fatal("encoding is not deterministic")
		}
	}
}

// TestExportOutsidePackagePanics pins the export validation: facts may only
// be attached to objects of the package under analysis.
func TestExportOutsidePackagePanics(t *testing.T) {
	fset := token.NewFileSet()
	dep, _ := checkSrc(t, fset, "dep", "package dep\nfunc F() {}\n", nil)
	use, _ := checkSrc(t, fset, "use", "package use\nimport \"dep\"\nvar _ = dep.F\n",
		map[string]*types.Package{"dep": dep})
	s := analysis.NewFactSet()
	pass := &analysis.Pass{Pkg: use}
	s.Install(pass)
	defer func() {
		if recover() == nil {
			t.Error("expected panic exporting a fact about another package's object")
		}
	}()
	pass.ExportObjectFact(dep.Scope().Lookup("F"), &testFact{})
}
