// Package analysistest runs an analyzer over fixture packages under
// testdata/src and checks its diagnostics against `// want` annotations, in
// the style of golang.org/x/tools/go/analysis/analysistest (stdlib-only
// re-implementation; see internal/lint/analysis for why).
//
// Fixture convention: testdata/src/<pkgpath>/*.go form one package whose
// import path is <pkgpath>. A line expecting diagnostics carries a trailing
// comment with one quoted regexp per expected diagnostic:
//
//	for k := range m { // want `range over map`
//
// Every reported diagnostic must match an annotation on its line, and every
// annotation must be matched by a diagnostic — both directions are errors.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// wantRe matches one expectation: a Go string literal (quoted or backquoted)
// after a `// want` marker.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package and applies the analyzer, failing the test
// on any mismatch between diagnostics and annotations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, pkgpath := range pkgpaths {
		t.Run(strings.ReplaceAll(pkgpath, "/", "_"), func(t *testing.T) {
			t.Helper()
			runOne(t, testdata, a, pkgpath)
		})
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		names = append(names, name)
	}
	if len(files) == 0 {
		t.Fatalf("no .go files in %s", dir)
	}

	// Type-check against GOROOT sources (fixtures import stdlib only).
	tc := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := analysis.NewTypesInfo()
	pkg, err := tc.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", pkgpath, err)
	}

	wants := collectWants(t, fset, files)

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })

	for _, d := range diags {
		p := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		exps := wants[key]
		found := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, e := range wants[k] {
			if !e.matched {
				t.Errorf("%s: no diagnostic matching %s", k, e.raw)
			}
		}
	}
	_ = names
}

// collectWants scans comments for `// want` markers and parses their quoted
// regexps, keyed by file:line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Both `// want` and `/* want */` markers are accepted;
				// the block form annotates lines that already carry a
				// line comment (e.g. a directive under test).
				text := c.Text
				i := strings.Index(text, "want ")
				if i < 0 {
					continue
				}
				rest := text[i+len("want "):]
				matches := wantRe.FindAllString(rest, -1)
				if len(matches) == 0 {
					t.Fatalf("%s: malformed want comment: %s", fset.Position(c.Pos()), text)
				}
				p := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
				for _, m := range matches {
					var pat string
					if m[0] == '`' {
						pat = m[1 : len(m)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(m)
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", p, m, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", p, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re, raw: m})
				}
			}
		}
	}
	return wants
}
