// Package analysistest runs an analyzer over fixture packages under
// testdata/src and checks its diagnostics against `// want` annotations, in
// the style of golang.org/x/tools/go/analysis/analysistest (stdlib-only
// re-implementation; see internal/lint/analysis for why).
//
// Fixture convention: testdata/src/<pkgpath>/*.go form one package whose
// import path is <pkgpath>. A line expecting diagnostics carries a trailing
// comment with one quoted regexp per expected diagnostic:
//
//	for k := range m { // want `range over map`
//
// Every reported diagnostic must match an annotation on its line, and every
// annotation must be matched by a diagnostic — both directions are errors.
//
// Fixtures may import other fixture packages: an import path that resolves
// to a directory under testdata/src is loaded from source and analyzed
// first, dependency-first, with its diagnostics discarded but its facts kept
// in a store shared with the package under test — the in-process equivalent
// of the unitchecker's VetxOnly dependency passes. This is how cross-package
// fact propagation is tested.
//
// Facts are asserted with `// wantfact` markers on the line defining the
// object (or anywhere in a file for package facts): each quoted regexp must
// match the "name: %v" rendering of some fact exported on an object defined
// on that line. Unannotated facts are not errors — fixtures assert the facts
// that matter, not the analyzer's full output.
//
//	func New() *rand.Rand { // wantfact `New: impure`
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// wantRe matches one expectation: a Go string literal (quoted or backquoted)
// after a `// want` or `// wantfact` marker.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package and applies the analyzer, failing the test
// on any mismatch between diagnostics and annotations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, pkgpath := range pkgpaths {
		t.Run(strings.ReplaceAll(pkgpath, "/", "_"), func(t *testing.T) {
			t.Helper()
			runOne(t, testdata, a, pkgpath)
		})
	}
}

// fixturePkg is one loaded-and-analyzed fixture package.
type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	diags []analysis.Diagnostic
}

// loader loads fixture packages from testdata/src, analyzing each exactly
// once (dependency-first) against a shared fact store.
type loader struct {
	t        *testing.T
	testdata string
	a        *analysis.Analyzer
	fset     *token.FileSet
	facts    *analysis.FactSet
	std      types.Importer
	loaded   map[string]*fixturePkg
	loading  map[string]bool
}

func newLoader(t *testing.T, testdata string, a *analysis.Analyzer) *loader {
	return &loader{
		t:        t,
		testdata: testdata,
		a:        a,
		fset:     token.NewFileSet(),
		facts:    analysis.NewFactSet(),
		std:      importer.ForCompiler(token.NewFileSet(), "source", nil),
		loaded:   make(map[string]*fixturePkg),
		loading:  make(map[string]bool),
	}
}

// Import resolves fixture-internal imports to fixture packages and everything
// else to GOROOT source, making the loader usable as a types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.testdata, "src", filepath.FromSlash(path)); dirExists(dir) {
		fp := l.load(path)
		return fp.pkg, nil
	}
	return l.std.Import(path)
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// load parses, typechecks, and analyzes one fixture package, memoized.
// Dependency fixtures are loaded through the importer first, so by the time
// the analyzer runs here every imported fixture's facts are in the store.
func (l *loader) load(pkgpath string) *fixturePkg {
	l.t.Helper()
	if fp, ok := l.loaded[pkgpath]; ok {
		return fp
	}
	if l.loading[pkgpath] {
		l.t.Fatalf("import cycle through fixture package %s", pkgpath)
	}
	l.loading[pkgpath] = true
	defer delete(l.loading, pkgpath)

	dir := filepath.Join(l.testdata, "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		l.t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			l.t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.t.Fatalf("no .go files in %s", dir)
	}

	tc := &types.Config{Importer: l}
	info := analysis.NewTypesInfo()
	pkg, err := tc.Check(pkgpath, l.fset, files, info)
	if err != nil {
		l.t.Fatalf("typechecking fixture %s: %v", pkgpath, err)
	}

	fp := &fixturePkg{pkg: pkg, files: files}
	pass := &analysis.Pass{
		Analyzer:  l.a,
		Fset:      l.fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { fp.diags = append(fp.diags, d) },
	}
	l.facts.Install(pass)
	if _, err := l.a.Run(pass); err != nil {
		l.t.Fatalf("analyzer %s on %s: %v", l.a.Name, pkgpath, err)
	}
	l.loaded[pkgpath] = fp
	return fp
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	l := newLoader(t, testdata, a)
	fp := l.load(pkgpath)
	fset := l.fset

	wants := collectWants(t, fset, fp.files, "want")
	wantFacts := collectWants(t, fset, fp.files, "wantfact")

	diags := fp.diags
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })

	for _, d := range diags {
		p := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		exps := wants[key]
		found := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	reportUnmatched(t, wants, "no diagnostic matching")

	// Facts of the package under test, rendered "name: %v" and keyed by the
	// line of the object's definition (package facts key to line 0 of every
	// file, so any file's wantfact line for them would not match — package
	// facts are asserted through ImportPackageFact in unit tests instead).
	if len(wantFacts) > 0 {
		for _, of := range l.facts.AllObjectFacts() {
			if of.Object.Pkg() != fp.pkg {
				continue
			}
			p := fset.Position(of.Object.Pos())
			key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
			exps := wantFacts[key]
			text := fmt.Sprintf("%s: %v", of.Object.Name(), of.Fact)
			for _, e := range exps {
				if !e.matched && e.re.MatchString(text) {
					e.matched = true
					break
				}
			}
		}
		reportUnmatched(t, wantFacts, "no exported fact matching")
	}
}

func reportUnmatched(t *testing.T, wants map[string][]*expectation, what string) {
	t.Helper()
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, e := range wants[k] {
			if !e.matched {
				t.Errorf("%s: %s %s", k, what, e.raw)
			}
		}
	}
}

// collectWants scans comments for `// <marker>` annotations and parses their
// quoted regexps, keyed by file:line. The markers "want" and "wantfact" are
// naturally disjoint: both searches require the marker word followed by a
// space, and "want" inside "wantfact" is followed by 'f'.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File, marker string) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Both `// want` and `/* want */` markers are accepted;
				// the block form annotates lines that already carry a
				// line comment (e.g. a directive under test).
				text := c.Text
				i := strings.Index(text, marker+" ")
				if i < 0 {
					continue
				}
				rest := text[i+len(marker)+1:]
				matches := wantRe.FindAllString(rest, -1)
				if len(matches) == 0 {
					t.Fatalf("%s: malformed %s comment: %s", fset.Position(c.Pos()), marker, text)
				}
				p := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
				for _, m := range matches {
					var pat string
					if m[0] == '`' {
						pat = m[1 : len(m)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(m)
						if err != nil {
							t.Fatalf("%s: bad %s string %s: %v", p, marker, m, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad %s regexp %s: %v", p, marker, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re, raw: m})
				}
			}
		}
	}
	return wants
}
