package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// CtxFlow enforces context propagation in library packages: a function that
// receives a context.Context must hand it (or a context derived from it) to
// every callee that accepts one. Minting a fresh context.Background() /
// context.TODO() — or passing nil — severs the cancellation chain: the
// serve layer's job cancellation and graceful drain rely on ctx reaching
// every annealing loop (cancellation is checked every ctxCheckMoves moves).
//
// Concretely, in non-command, non-test packages:
//
//   - any call to context.Background() or context.TODO() is flagged
//     (entry points live in cmd/ and tests; deprecated compatibility
//     wrappers carry //hidapvet:allow ctxflow <reason>), and
//   - any call whose callee's first parameter is a context.Context but whose
//     argument is nil is flagged.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "library functions must propagate their context.Context; no " +
		"context.Background()/TODO() outside cmd/ and tests",
	Run: runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) (interface{}, error) {
	idx := parseDirectives(pass)
	idx.checkDirectiveReasons(pass)
	if isCommand(pass) {
		return nil, nil
	}
	for _, f := range nonTestFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if pkg, ok := importedPkgOf(pass, sel); ok && pkg == "context" {
					if (sel.Sel.Name == "Background" || sel.Sel.Name == "TODO") &&
						!idx.suppressed(call.Pos(), pass.Analyzer.Name) {
						pass.Reportf(call.Pos(), "context.%s in library package %s severs the "+
							"cancellation chain: accept and propagate a ctx parameter, or annotate "+
							"//hidapvet:allow ctxflow <reason>", sel.Sel.Name, pass.Pkg.Path())
					}
					return true
				}
			}
			// nil passed where the callee expects a context first.
			if len(call.Args) > 0 && isNilExpr(call.Args[0]) && calleeWantsCtxFirst(pass, call) &&
				!idx.suppressed(call.Pos(), pass.Analyzer.Name) {
				pass.Reportf(call.Pos(), "nil passed as context.Context: propagate the caller's "+
					"ctx (or annotate //hidapvet:allow ctxflow <reason>)")
			}
			return true
		})
	}
	return nil, nil
}

func isNilExpr(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// calleeWantsCtxFirst reports whether the call's static callee signature has
// context.Context as its first parameter.
func calleeWantsCtxFirst(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return isContextType(sig.Params().At(0).Type())
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
