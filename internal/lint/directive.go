package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint/analysis"
)

// The //hidapvet: directive family. Directives are ordinary line comments and
// therefore survive gofmt; each suppression must carry a human-readable
// reason, which the analyzers enforce (a bare directive is itself a finding).
//
//	//hidapvet:orderinvariant <reason>  — suppress maprange on this/next line
//	//hidapvet:allow <analyzer> <reason> — suppress the named analyzer here
//	//hidapvet:commit <reason>          — undopair: this Propose/PerturbMove
//	                                      deliberately commits (no Undo)
//	//hidapvet:deterministic            — file-level: opt the whole package
//	                                      into the determinism-critical set
const directivePrefix = "//hidapvet:"

// A directive is one parsed //hidapvet: comment.
type directive struct {
	kind   string // "orderinvariant", "allow", "commit", "deterministic"
	arg    string // for "allow": the analyzer name
	reason string
	pos    token.Pos
	line   int // line of the directive comment itself
}

// directiveIndex holds every hidapvet directive of one package, keyed by file
// name and line for O(1) suppression lookups.
type directiveIndex struct {
	fset    *token.FileSet
	byLine  map[string]map[int][]*directive // file → line → directives
	all     []*directive
	optedIn bool // any file carries //hidapvet:deterministic
}

// parseDirectives scans every comment of the pass for //hidapvet: directives.
func parseDirectives(pass *analysis.Pass) *directiveIndex {
	idx := &directiveIndex{fset: pass.Fset, byLine: make(map[string]map[int][]*directive)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				kind := rest
				arg, reason := "", ""
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					kind, reason = rest[:i], strings.TrimSpace(rest[i+1:])
				}
				if kind == "allow" {
					arg = reason
					reason = ""
					if i := strings.IndexAny(arg, " \t"); i >= 0 {
						arg, reason = arg[:i], strings.TrimSpace(arg[i+1:])
					}
				}
				p := idx.fset.Position(c.Pos())
				d := &directive{kind: kind, arg: arg, reason: reason, pos: c.Pos(), line: p.Line}
				if kind == "deterministic" {
					idx.optedIn = true
				}
				lines := idx.byLine[p.Filename]
				if lines == nil {
					lines = make(map[int][]*directive)
					idx.byLine[p.Filename] = lines
				}
				lines[d.line] = append(lines[d.line], d)
				idx.all = append(idx.all, d)
			}
		}
	}
	return idx
}

// at returns the directives that govern a node reported at pos: those on the
// same source line or on the line immediately above (the conventional
// placement, mirroring //nolint and //lint:ignore).
func (idx *directiveIndex) at(pos token.Pos) []*directive {
	p := idx.fset.Position(pos)
	lines := idx.byLine[p.Filename]
	if lines == nil {
		return nil
	}
	ds := append([]*directive(nil), lines[p.Line-1]...)
	return append(ds, lines[p.Line]...)
}

// suppressed reports whether a diagnostic of the named analyzer at pos is
// covered by a matching directive with a non-empty reason. kinds lists the
// directive kinds that suppress this analyzer besides the generic "allow"
// (e.g. maprange also accepts "orderinvariant").
func (idx *directiveIndex) suppressed(pos token.Pos, analyzer string, kinds ...string) bool {
	for _, d := range idx.at(pos) {
		if d.reason == "" {
			continue // reasonless directives never suppress; reported separately
		}
		if d.kind == "allow" && d.arg == analyzer {
			return true
		}
		for _, k := range kinds {
			if d.kind == k {
				return true
			}
		}
	}
	return false
}

// checkDirectiveReasons reports, once per offending directive, any directive
// belonging to this analyzer that lacks the mandatory reason string. kinds
// lists the specific directive kinds owned by the analyzer.
func (idx *directiveIndex) checkDirectiveReasons(pass *analysis.Pass, kinds ...string) {
	for _, d := range idx.all {
		owned := d.kind == "allow" && d.arg == pass.Analyzer.Name
		for _, k := range kinds {
			if d.kind == k {
				owned = true
			}
		}
		if owned && d.reason == "" {
			pass.Reportf(d.pos, "//hidapvet:%s directive needs a reason (why is this safe?)", d.kind)
		}
	}
}

// isTestFile reports whether the file enclosing pos is a _test.go file; the
// hidap-vet analyzers police production code only.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// nonTestFiles returns the pass's files excluding _test.go files.
func nonTestFiles(pass *analysis.Pass) []*ast.File {
	var out []*ast.File
	for _, f := range pass.Files {
		if !isTestFile(pass.Fset, f.Pos()) {
			out = append(out, f)
		}
	}
	return out
}
