package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// GoCap flags bare `go` statements outside internal/sched and the command
// binaries. All solver fan-out must go through the work-stealing pool
// (sched.Pool): ad-hoc goroutines bypass the Parallelism knob, multiply
// unboundedly with input size (the exact bug PR 3 fixed in runHiDaP), and
// make the determinism matrix meaningless because work ordering stops being
// governed by seed-derived task paths.
//
// Long-lived infrastructure goroutines (the Engine's worker pool, an HTTP
// listener) are legitimate but must say so:
//
//	//hidapvet:allow gocap <reason>
var GoCap = &analysis.Analyzer{
	Name: "gocap",
	Doc: "flag bare go statements outside internal/sched and cmd/: solver " +
		"fan-out goes through the work-stealing pool",
	Run: runGoCap,
}

func runGoCap(pass *analysis.Pass) (interface{}, error) {
	idx := parseDirectives(pass)
	idx.checkDirectiveReasons(pass)
	if isSchedPkg(pass) || isCommand(pass) {
		return nil, nil
	}
	for _, f := range nonTestFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if idx.suppressed(gs.Pos(), pass.Analyzer.Name) {
				return true
			}
			pass.Reportf(gs.Pos(), "bare go statement in library package %s: route solver "+
				"fan-out through sched.Pool (the Parallelism knob), or annotate long-lived "+
				"infrastructure with //hidapvet:allow gocap <reason>", pass.Pkg.Path())
			return true
		})
	}
	return nil, nil
}
