// Package lint holds the hidap-vet analyzer suite: seven static-analysis
// passes that turn the repository's determinism and performance invariants —
// byte-identical placements at any Parallelism/GOMAXPROCS, config-derived
// seeds, strict Propose/Undo pairing, pool-governed fan-out, unbroken
// context chains, zero allocations on the proposal hot path — into
// build-time errors instead of probabilistic test failures.
//
// Two of the analyzers (seedpure, allocfree) are facts-powered: they export
// per-function facts that the unitchecker serializes into .vetx files, so
// the properties propagate across package boundaries exactly like go vet's
// printf fact.
//
// The analyzers are written against internal/lint/analysis, a stdlib-only
// stand-in for golang.org/x/tools/go/analysis (see that package's doc for
// why), and run under `go vet -vettool=` via cmd/hidap-vet.
package lint

import "repro/internal/lint/analysis"

// Analyzers returns the full hidap-vet suite, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		MapRange,
		RngSeed,
		UndoPair,
		GoCap,
		CtxFlow,
		SeedPure,
		AllocFree,
	}
}
