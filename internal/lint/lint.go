// Package lint holds the hidap-vet analyzer suite: five static-analysis
// passes that turn the repository's determinism and concurrency invariants —
// byte-identical placements at any Parallelism/GOMAXPROCS, config-derived
// seeds, strict Propose/Undo pairing, pool-governed fan-out, unbroken
// context chains — into build-time errors instead of probabilistic test
// failures.
//
// The analyzers are written against internal/lint/analysis, a stdlib-only
// stand-in for golang.org/x/tools/go/analysis (see that package's doc for
// why), and run under `go vet -vettool=` via cmd/hidap-vet.
package lint

import "repro/internal/lint/analysis"

// Analyzers returns the full hidap-vet suite, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		MapRange,
		RngSeed,
		UndoPair,
		GoCap,
		CtxFlow,
	}
}
