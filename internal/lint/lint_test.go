package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestMapRange(t *testing.T) {
	analysistest.Run(t, "testdata", lint.MapRange, "maprange/critical", "maprange/clean")
}

func TestRngSeed(t *testing.T) {
	analysistest.Run(t, "testdata", lint.RngSeed, "rngseed/solver", "rngseed/nonsolver")
}

func TestUndoPair(t *testing.T) {
	analysistest.Run(t, "testdata", lint.UndoPair, "undopair/moves")
}

func TestGoCap(t *testing.T) {
	analysistest.Run(t, "testdata", lint.GoCap, "gocap/lib", "gocap/cmdmain")
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", lint.CtxFlow, "ctxflow/lib", "ctxflow/cmdmain")
}

func TestSeedPure(t *testing.T) {
	analysistest.Run(t, "testdata", lint.SeedPure, "seedpure/rngfactory", "seedpure/consumer")
}

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, "testdata", lint.AllocFree,
		"allocfree/hot", "allocfree/leaf", "allocfree/hotcaller")
}

func TestAnalyzersRegistered(t *testing.T) {
	as := lint.Analyzers()
	if len(as) != 7 {
		t.Fatalf("expected 7 analyzers, got %d", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incompletely defined", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{"maprange", "rngseed", "undopair", "gocap", "ctxflow", "seedpure", "allocfree"} {
		if !seen[want] {
			t.Errorf("missing analyzer %q", want)
		}
	}
}
