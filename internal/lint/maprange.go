package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// MapRange flags `range` over map-typed values in determinism-critical
// packages. Go randomizes map iteration order per run, so any map range whose
// body is order-sensitive (appends to output in iteration order, picks
// "first" match, accumulates floats, emits events, …) is a latent
// nondeterminism bug of exactly the class the determinism matrix exists to
// catch — but only probabilistically and after the fact.
//
// Allowed forms, in decreasing order of preference:
//
//  1. Collect-then-sort: a range whose body only appends keys/values to a
//     local slice that is subsequently passed to a sort.* / slices.Sort*
//     call in the same function.
//  2. Keyless repetition (`for range m { … }`): every iteration runs
//     identical code, so order cannot matter.
//  3. An explicit suppression on or above the range statement:
//     //hidapvet:orderinvariant <reason>
//     for provably order-insensitive loops (commutative integer sums, set
//     membership fills, per-key writes to an index keyed by the same key).
var MapRange = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flag range over maps in determinism-critical packages unless keys are " +
		"sorted first or the loop carries //hidapvet:orderinvariant <reason>",
	Run: runMapRange,
}

func runMapRange(pass *analysis.Pass) (interface{}, error) {
	idx := parseDirectives(pass)
	idx.checkDirectiveReasons(pass, "orderinvariant")
	if !isCritical(pass, idx) {
		return nil, nil
	}
	for _, f := range nonTestFiles(pass) {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					checkMapRangesIn(pass, idx, d.Body)
				}
			case *ast.GenDecl:
				// var initializers may contain func literals
				ast.Inspect(d, func(n ast.Node) bool {
					if fl, ok := n.(*ast.FuncLit); ok {
						checkMapRangesIn(pass, idx, fl.Body)
						return false
					}
					return true
				})
			}
		}
	}
	return nil, nil
}

// checkMapRangesIn walks one function body. Func literals nested inside are
// checked against the enclosing body too (a sort after the literal's range
// still counts), so the walk does not recurse into them separately.
func checkMapRangesIn(pass *analysis.Pass, idx *directiveIndex, body *ast.BlockStmt) {
	sorted := sortedVars(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if rs.Key == nil && rs.Value == nil {
			return true // keyless repetition: iterations are indistinguishable
		}
		if idx.suppressed(rs.For, pass.Analyzer.Name, "orderinvariant") {
			return true
		}
		if collectsIntoSorted(pass, rs, sorted) {
			return true
		}
		pass.Reportf(rs.For, "range over map %s in determinism-critical package %s: "+
			"iteration order is randomized; collect+sort the keys, or annotate "+
			"//hidapvet:orderinvariant <reason> if provably order-insensitive",
			types.ExprString(rs.X), pass.Pkg.Path())
		return true
	})
}

// sortedVars collects, per function body, the set of variables that are ever
// passed to a sorting call (sort.Strings/Ints/Slice/Sort…, slices.Sort*),
// with the position of each such call.
func sortedVars(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object][]token.Pos {
	out := make(map[types.Object][]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		if obj := rootObject(pass, call.Args[0]); obj != nil {
			out[obj] = append(out[obj], call.Pos())
		}
		return true
	})
	return out
}

// rootObject resolves an expression like `keys`, `s.keys[i]` or `&keys` to
// the object of its leftmost identifier.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// collectsIntoSorted reports whether the range body consists solely of
// append-to-local-slice statements (and trivial control like continue) whose
// targets are all later sorted within the same function.
func collectsIntoSorted(pass *analysis.Pass, rs *ast.RangeStmt, sorted map[types.Object][]token.Pos) bool {
	appended := false
	for _, stmt := range rs.Body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			// want: X = append(X, …)
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" {
				return false
			}
			obj := rootObject(pass, s.Lhs[0])
			if obj == nil {
				return false
			}
			ok = false
			for _, p := range sorted[obj] {
				if p > rs.End() {
					ok = true
				}
			}
			if !ok {
				return false
			}
			appended = true
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		case *ast.IfStmt:
			// allow a guard like `if skip(k) { continue }`
			if s.Else != nil || !onlyContinues(s.Body) {
				return false
			}
		default:
			return false
		}
	}
	return appended
}

func onlyContinues(b *ast.BlockStmt) bool {
	for _, stmt := range b.List {
		bs, ok := stmt.(*ast.BranchStmt)
		if !ok || bs.Tok != token.CONTINUE {
			return false
		}
	}
	return len(b.List) > 0
}
