package lint

import (
	"strings"

	"repro/internal/lint/analysis"
)

// criticalPkgs are the determinism-critical packages: the solve pipeline
// whose outputs must be byte-identical at any Parallelism/GOMAXPROCS
// (pinned by TestPlaceDeterminismMatrix). maprange polices map iteration
// order here; rngseed additionally polices the wider solver set below.
// A package outside this list opts in by carrying a //hidapvet:deterministic
// comment in any of its files (internal/verilog does: elaboration must emit
// identical netlists run-to-run or every downstream seed is meaningless).
var criticalPkgs = []string{
	"hidap",
	"internal/autocluster",
	"internal/core",
	"internal/dataflow",
	"internal/graph",
	"internal/layout",
	"internal/legalize",
	"internal/netlist",
	"internal/sched",
	"internal/slicing",
}

// solverExtraPkgs extends the critical set for rngseed: packages that hold a
// solver or feed one its random stream, where wall-clock time and ambient
// global RNG state are forbidden even though map order is already safe.
var solverExtraPkgs = []string{
	"internal/anneal",
	"internal/flows",
	"internal/handfp",
	"internal/indeda",
	"internal/place",
}

// pathInSet reports whether pkgPath names one of the listed repo packages,
// tolerating any module prefix ("repro/internal/core" and "internal/core"
// both match "internal/core").
func pathInSet(pkgPath string, set []string) bool {
	for _, s := range set {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// isCritical reports whether the pass's package is determinism-critical,
// either by being on the hard-coded list or by //hidapvet:deterministic
// opt-in.
func isCritical(pass *analysis.Pass, idx *directiveIndex) bool {
	return idx.optedIn || pathInSet(pass.Pkg.Path(), criticalPkgs)
}

// isSolver reports whether the pass's package is in rngseed's scope.
func isSolver(pass *analysis.Pass, idx *directiveIndex) bool {
	return isCritical(pass, idx) || pathInSet(pass.Pkg.Path(), solverExtraPkgs)
}

// isCommand reports whether the package is an entry point (package main, or
// anything under cmd/ or examples/): binaries own their processes, so the
// goroutine-capping and context-origin rules do not apply there.
func isCommand(pass *analysis.Pass) bool {
	if pass.Pkg.Name() == "main" {
		return true
	}
	p := pass.Pkg.Path()
	return strings.Contains(p, "/cmd/") || strings.HasPrefix(p, "cmd/") ||
		strings.Contains(p, "/examples/") || strings.HasPrefix(p, "examples/")
}

// isSchedPkg reports whether this is internal/sched itself, the one library
// package allowed to spawn goroutines (it is the work-stealing pool).
func isSchedPkg(pass *analysis.Pass) bool {
	return pathInSet(pass.Pkg.Path(), []string{"internal/sched"})
}
