package lint

import "testing"

func TestPathInSet(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/core", true},
		{"internal/core", true},
		{"repro/internal/slicing", true},
		{"repro/hidap", true},
		{"hidap", true},
		{"repro/internal/render", false},
		{"repro/internal/verilog", false}, // opts in via directive, not the list
		{"example.com/other/internal/core", true},
		{"notinternal/core", false},
		{"repro/internal/corelike", false},
		{"context", false},
		{"internal/coreutils", false},
	}
	for _, c := range cases {
		if got := pathInSet(c.path, criticalPkgs); got != c.want {
			t.Errorf("pathInSet(%q, critical) = %v, want %v", c.path, got, c.want)
		}
	}
	if !pathInSet("repro/internal/indeda", solverExtraPkgs) {
		t.Errorf("indeda should be in the solver extra set")
	}
	if pathInSet("repro/internal/indeda", criticalPkgs) {
		t.Errorf("indeda is not determinism-critical for map order")
	}
}
