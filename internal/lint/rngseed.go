package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// RngSeed forbids ambient sources of nondeterminism in solver packages
// (non-test files):
//
//   - time.Now — wall-clock must never reach a solver decision. One flow is
//     recognized as benign without annotation: a time.Now whose value is
//     only ever fed to time.Since, where the elapsed duration flows solely
//     into metric sinks — fields whose name says duration (MacroSeconds,
//     Elapsed, …) or fields of Stats/Metrics/Report structs. Reporting how
//     long a solve took cannot influence what it decided. Anything else
//     carries an explicit //hidapvet:allow rngseed <reason>.
//   - global math/rand (rand.Intn, rand.Float64, rand.Shuffle, rand.Seed, …)
//     and math/rand/v2 top-level functions — process-global RNG state is
//     shared across goroutines and seeds itself from entropy.
//   - raw rand.NewSource(x) where x is not visibly a configured seed: the
//     argument must mention a seed (an identifier or field whose name
//     contains "seed") or flow through sched.Derive. Everything else —
//     literals smuggled into solvers, time-derived seeds — is flagged.
//
// The invariant: every random stream in the solve pipeline is derived from
// hidap.Config.Seed via sched.Derive's splitmix64 path so placements are
// reproducible bit-for-bit from the config alone.
var RngSeed = &analysis.Analyzer{
	Name: "rngseed",
	Doc: "forbid time.Now, global math/rand, and unseeded rand.NewSource in " +
		"solver packages; seeds must flow from config or sched.Derive",
	Run: runRngSeed,
}

func runRngSeed(pass *analysis.Pass) (interface{}, error) {
	idx := parseDirectives(pass)
	idx.checkDirectiveReasons(pass)
	if !isSolver(pass, idx) {
		return nil, nil
	}
	for _, f := range nonTestFiles(pass) {
		pm := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := importedPkgOf(pass, sel)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch pkgPath {
			case "time":
				if (name == "Now" || name == "Since") &&
					!timeMetricOnly(pass, f, pm, call, name) &&
					!idx.suppressed(call.Pos(), pass.Analyzer.Name) {
					pass.Reportf(call.Pos(), "time.%s in solver package %s: wall-clock must not "+
						"influence the solve; thread timing through the caller or annotate "+
						"//hidapvet:allow rngseed <reason>", name, pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				switch name {
				case "New", "NewZipf": // constructors over an explicit source are fine
					return true
				case "NewSource", "NewPCG", "NewChaCha8":
					if seedFlowsFromConfig(pass, call.Args) ||
						idx.suppressed(call.Pos(), pass.Analyzer.Name) {
						return true
					}
					pass.Reportf(call.Pos(), "rand.%s with a seed that does not visibly flow from "+
						"config or sched.Derive in solver package %s: derive the seed via "+
						"sched.Derive(cfg.Seed, …) or annotate //hidapvet:allow rngseed <reason>",
						name, pass.Pkg.Path())
				default:
					if !idx.suppressed(call.Pos(), pass.Analyzer.Name) {
						pass.Reportf(call.Pos(), "global %s.%s in solver package %s: process-global "+
							"RNG state breaks reproducibility; use a *rand.Rand seeded from config "+
							"via sched.Derive", pathBase(pkgPath), name, pass.Pkg.Path())
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// importedPkgOf resolves sel's receiver to an imported package path, if the
// selector is a package-qualified reference (handles renamed imports).
func importedPkgOf(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path(), true
	}
	return "", false
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// seedFlowsFromConfig reports whether any argument expression visibly carries
// a configured seed: it mentions an identifier or selector whose name
// contains "seed" (case-insensitive), or calls a function named Derive
// (sched.Derive or a wrapper).
func seedFlowsFromConfig(pass *analysis.Pass, args []ast.Expr) bool {
	for _, a := range args {
		found := false
		ast.Inspect(a, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if strings.Contains(strings.ToLower(x.Name), "seed") {
					found = true
				}
			case *ast.SelectorExpr:
				if x.Sel.Name == "Derive" {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
