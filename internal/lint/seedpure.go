package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// SeedFact is the cross-package seed-purity fact exported for every function
// that touches randomness. Impure means the function's random stream does not
// derive from a caller-supplied seed/config value or sched.Derive — it
// constructs an unseeded source, uses the process-global math/rand, or calls
// a function already known to do so. Pure (Impure=false) is exported for
// functions that visibly construct config-seeded sources, so downstream
// packages can positively verify their RNG factories.
type SeedFact struct {
	Impure bool
	Reason string
}

func (*SeedFact) AFact() {}

func (f *SeedFact) String() string {
	if f.Impure {
		return "impure: " + f.Reason
	}
	return "seedpure"
}

// SeedPure extends rngseed across package boundaries. rngseed flags
// nondeterministic constructs where they lexically appear, but only inside
// solver packages — a helper package can launder an unseeded RNG behind an
// innocent-looking constructor and hand it to a solver unseen. seedpure
// closes that hole with facts: every package (solver or not) exports a
// SeedFact per randomness-touching function, and solver packages report any
// call to a function whose imported fact says Impure.
//
// Construction sites already justified with //hidapvet:allow rngseed <reason>
// are honored here too (one justification covers both analyzers); call sites
// are suppressed with //hidapvet:allow seedpure <reason>.
var SeedPure = &analysis.Analyzer{
	Name: "seedpure",
	Doc: "propagate seed-purity facts across packages; solver packages must " +
		"not call functions whose randomness is not caller-seeded",
	Run:       runSeedPure,
	FactTypes: []analysis.Fact{new(SeedFact)},
}

func runSeedPure(pass *analysis.Pass) (interface{}, error) {
	idx := parseDirectives(pass)
	idx.checkDirectiveReasons(pass)
	solver := isSolver(pass, idx)

	type fnState struct {
		obj     *types.Func
		impure  bool
		reason  string
		seeded  bool // directly constructs a config-seeded source
		callees []*types.Func
	}
	var fns []*fnState
	byObj := make(map[*types.Func]*fnState)

	for _, f := range nonTestFiles(pass) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			st := &fnState{obj: obj}
			fns = append(fns, st)
			byObj[obj] = st

			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if pkgPath, ok := importedPkgOf(pass, sel); ok &&
						(pkgPath == "math/rand" || pkgPath == "math/rand/v2") {
						name := sel.Sel.Name
						switch name {
						case "New", "NewZipf":
							// Wrappers over an explicit source; purity is
							// decided at the source construction.
							return true
						case "NewSource", "NewPCG", "NewChaCha8":
							if seedFlowsFromConfig(pass, call.Args) {
								st.seeded = true
							} else if !constructionAllowed(idx, call.Pos()) && !st.impure {
								st.impure = true
								st.reason = "constructs rand." + name + " without a config-derived seed"
							}
						default:
							if !constructionAllowed(idx, call.Pos()) && !st.impure {
								st.impure = true
								st.reason = "uses the process-global " + pathBase(pkgPath) + "." + name
							}
						}
						return true
					}
				}
				if callee := calleeFunc(pass.TypesInfo, call); callee != nil {
					if callee.Pkg() == pass.Pkg {
						st.callees = append(st.callees, callee)
					} else {
						var fact SeedFact
						if pass.ImportObjectFact(callee, &fact) && fact.Impure {
							if !st.impure {
								st.impure = true
								st.reason = "calls " + callee.Name() + " (" + fact.Reason + ")"
							}
							if solver && !idx.suppressed(call.Pos(), pass.Analyzer.Name) {
								pass.Reportf(call.Pos(), "call to %s, which is not seed-pure (%s): "+
									"solver randomness must derive from config via sched.Derive; "+
									"thread a seed through or annotate //hidapvet:allow seedpure <reason>",
									callee.FullName(), fact.Reason)
							}
						}
					}
				}
				return true
			})
		}
	}

	// Propagate impurity through in-package call edges to a fixed point (the
	// package call graph is small; quadratic worst case is fine here).
	for changed := true; changed; {
		changed = false
		for _, st := range fns {
			if st.impure {
				continue
			}
			for _, callee := range st.callees {
				if cs := byObj[callee]; cs != nil && cs.impure {
					st.impure = true
					st.reason = "calls " + callee.Name() + " (" + cs.reason + ")"
					changed = true
					break
				}
			}
		}
	}

	for _, st := range fns {
		switch {
		case st.impure:
			pass.ExportObjectFact(st.obj, &SeedFact{Impure: true, Reason: st.reason})
		case st.seeded:
			pass.ExportObjectFact(st.obj, &SeedFact{Impure: false})
		}
	}
	return nil, nil
}

// constructionAllowed reports whether a nondeterministic RNG construct at pos
// carries a justification — either analyzer's: a reasoned
// //hidapvet:allow rngseed covers the same hazard seedpure would re-flag.
func constructionAllowed(idx *directiveIndex, pos token.Pos) bool {
	return idx.suppressed(pos, "seedpure") || idx.suppressed(pos, "rngseed")
}

// calleeFunc resolves the static callee of a call, whether spelled as a bare
// identifier (in-package function), a package-qualified selector, or a method
// selector. Returns nil for indirect calls, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
