// Package hot exercises allocfree's direct-construct detection and the
// in-package fact fixed point.
package hot

import "strconv"

type node struct{ next *node }

// grow is an ordinary allocator: no diagnostic (not hot), but a fact.
func grow() *node { // wantfact `grow: allocates: heap composite literal`
	return &node{}
}

// mid allocates only transitively, through the in-package call.
func mid() *node { // wantfact `mid: allocates: call to grow \(heap composite literal`
	return grow()
}

//hidapvet:hotpath
func Direct(xs []int, s string) int {
	m := map[int]int{0: 1}              // want `map literal`
	sl := []int{1, 2}                   // want `slice literal`
	buf := make([]byte, 8)              // want `allocation in //hidapvet:hotpath function Direct: make`
	f := func() int { return len(buf) } // want `function literal \(closure\)`
	s2 := s + "!"                       // want `string concatenation`
	return m[0] + sl[1] + f() + len(s2) + xs[0]
}

// HotChain is two in-package hops from the actual allocation.
//
//hidapvet:hotpath
func HotChain() int {
	n := mid() // want `call to mid \(call to grow \(heap composite literal`
	if n.next == nil {
		return 0
	}
	return 1
}

// Journal shows the deliberate append carve-out: amortized growth into a
// pre-sized journal is the hot paths' working idiom and is never flagged.
//
//hidapvet:hotpath
func Journal(j []int, v int) []int {
	return append(j, v)
}

// Warm shows a reviewed site: the allow both silences the diagnostic and
// keeps Warm out of the Allocates fact graph, so hot callers stay green.
//
//hidapvet:hotpath
func Warm(n int) []int {
	w := make([]int, n) //hidapvet:allow allocfree one-time warm-up before the proposal loop; amortized to zero
	return w
}

//hidapvet:hotpath
func CallsWarm(n int) int {
	return len(Warm(n)) // no diagnostic: Warm's only site is justified
}

//hidapvet:hotpath
func HotFmt(x int) int {
	s := itoa(x) // want `call to itoa \(call to strconv\.Itoa \(std allocator`
	return len(s)
}

func itoa(x int) string { // wantfact `itoa: allocates: call to strconv\.Itoa`
	return strconv.Itoa(x)
}
