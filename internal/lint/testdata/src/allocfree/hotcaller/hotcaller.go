// Package hotcaller is the acceptance fixture for cross-package allocation
// tracking: the deliberate allocation (leaf.Grow's make) sits in the hot
// function's callee's callee, across a package boundary, and is still caught
// at the hot call site via the imported Allocates fact.
package hotcaller

import "allocfree/leaf"

// local launders the allocating import behind an in-package helper.
func local(n int) []int { // wantfact `local: allocates: call to .*leaf\.Wrap \(call to Grow \(make\)\)`
	return leaf.Wrap(n)
}

//hidapvet:hotpath
func Hot(n int) int {
	xs := local(n) // want `call to local \(call to .*leaf\.Wrap \(call to Grow \(make\)\)\)`
	return leaf.Sum(xs)
}

//hidapvet:hotpath
func HotDirect(n int) int {
	return leaf.Sum(leaf.Grow(n)) // want `call to .*leaf\.Grow \(make\)`
}

//hidapvet:hotpath
func HotClean(xs []int) int {
	return leaf.Sum(xs) // alloc-free callee: no diagnostic
}
