// Package leaf is the innocent-looking library two hops below a hot path:
// nothing here is hot, so allocfree emits no diagnostics — only facts.
package leaf

// Grow is the deliberate allocation of the negative fixture.
func Grow(n int) []int { // wantfact `Grow: allocates: make`
	return make([]int, n)
}

// Wrap hides Grow behind a call, so the fact must survive one in-package hop
// before it even leaves the package.
func Wrap(n int) []int { // wantfact `Wrap: allocates: call to Grow \(make\)`
	return Grow(n)
}

// Sum is alloc-free: no fact, safe to call from hot paths.
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
