// Entry points mint the root context: ctxflow stays silent in package main.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
