// Package lib exercises ctxflow in a library package.
package lib

import "context"

func work(ctx context.Context) error { return ctx.Err() }

// OK: the caller's context is propagated.
func good(ctx context.Context) error { return work(ctx) }

// OK: a derived context still descends from the caller's.
func derived(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return work(ctx)
}

// Flagged: a fresh root context severs the cancellation chain.
func fresh(ctx context.Context) error {
	return work(context.Background()) // want `context.Background in library package`
}

// Flagged: TODO is no better, with or without a ctx parameter in scope.
func todo() error {
	return work(context.TODO()) // want `context.TODO in library package`
}

// Flagged: nil where the callee expects a context.
func nilCtx() error {
	return work(nil) // want `nil passed as context.Context`
}

// OK: a documented compatibility wrapper.
func compat() error {
	//hidapvet:allow ctxflow deprecated pre-Placer wrapper, kept for API compatibility
	return work(context.Background())
}
