// Entry points own their process: gocap stays silent in package main.
package main

func main() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
