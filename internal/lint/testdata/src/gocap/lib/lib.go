// Package lib exercises gocap in an ordinary library package.
package lib

// Flagged: ad-hoc fan-out bypasses the work-stealing pool.
func spawn(f func()) {
	go f() // want `bare go statement`
}

// Flagged: loops multiply goroutines with input size — the runHiDaP bug.
func fanOut(fs []func()) {
	for _, f := range fs {
		go f() // want `bare go statement`
	}
}

// OK: long-lived infrastructure, annotated.
func serve(f func()) {
	//hidapvet:allow gocap long-lived engine worker, bounded by EngineOptions.Workers
	go f()
}
