// Package clean is NOT determinism-critical (no //hidapvet:deterministic,
// not on the hard-coded list), so maprange stays silent even on an
// order-dependent loop.
package clean

func Collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
