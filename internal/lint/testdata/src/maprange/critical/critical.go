// Package critical exercises the maprange analyzer inside a
// determinism-critical package (opted in by the directive below).
//
//hidapvet:deterministic
package critical

import "sort"

// Flagged: iteration order leaks into the output slice.
func badCollect(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map`
		out = append(out, k+"!")
	}
	return out
}

// Flagged: the value stream is order-dependent and never sorted.
func badValues(m map[int]int) []int {
	var order []int
	for _, v := range m { // want `range over map`
		order = append(order, v*2)
	}
	return order
}

// OK: collect-then-sort — the canonical deterministic form.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// OK: collect with a guard, sorted later via sort.Slice.
func sortedFiltered(m map[string]int) []string {
	var keys []string
	for k := range m {
		if len(k) == 0 {
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// OK: keyless repetition — iterations are indistinguishable.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// OK: suppressed with a reason.
func total(m map[string]int) int {
	t := 0
	//hidapvet:orderinvariant commutative integer sum
	for _, v := range m {
		t += v
	}
	return t
}

// A reasonless directive is itself a finding and does not suppress.
func reasonless(m map[string]int) int {
	t := 0
	/* want `needs a reason` */ //hidapvet:orderinvariant
	for _, v := range m {       // want `range over map`
		t += v
	}
	return t
}
