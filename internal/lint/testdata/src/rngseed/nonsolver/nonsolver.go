// Package nonsolver is outside the solver set: rngseed stays silent here
// (rendering, CLIs, and metrics layers may read the clock freely).
package nonsolver

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
