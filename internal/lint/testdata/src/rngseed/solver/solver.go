// Package solver exercises rngseed inside a solver package (directive
// opt-in stands in for the hard-coded internal/{core,anneal,…} list).
//
//hidapvet:deterministic
package solver

import (
	mrand "math/rand"
	"time"
)

type Options struct{ Seed int64 }

type scheduler struct{}

func (scheduler) Derive(seed int64, path ...int64) int64 { return seed + path[0] }

// OK: the seed visibly flows from config.
func fromConfig(opt Options) *mrand.Rand {
	return mrand.New(mrand.NewSource(opt.Seed))
}

// OK: the seed flows through a Derive call.
func derived(s scheduler, opt Options) *mrand.Rand {
	return mrand.New(mrand.NewSource(s.Derive(opt.Seed, 1)))
}

// Flagged: wall-clock reaching a solver.
func wallClock() int64 {
	return time.Now().UnixNano() // want `time.Now in solver package`
}

// Flagged: elapsed wall-clock is still wall-clock.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in solver package`
}

// Flagged: process-global RNG (via a renamed import, caught by type info).
func globalRand() int {
	return mrand.Intn(10) // want `global rand.Intn in solver package`
}

// Flagged: a raw source whose seed is not visibly configured.
func opaqueSeed(n int64) *mrand.Rand {
	return mrand.New(mrand.NewSource(n)) // want `rand.NewSource with a seed that does not visibly flow`
}

// OK: suppressed with a reason.
func reportedRuntime() int64 {
	//hidapvet:allow rngseed timing is only reported as a metric, never fed to the solver
	return time.Now().UnixNano()
}

type Stats struct {
	MacroSeconds float64
	Steps        int
}

// OK without annotation: the reading flows only into a metric field of a
// Stats literal — reporting, not solving.
func timedSolve(opt Options) Stats {
	start := time.Now()
	_ = fromConfig(opt)
	return Stats{MacroSeconds: time.Since(start).Seconds()}
}

// OK: same, through an intermediate local and a field assignment.
func timedSolveVar(opt Options) Stats {
	start := time.Now()
	_ = fromConfig(opt)
	var st Stats
	elapsed := time.Since(start).Seconds()
	st.MacroSeconds = elapsed
	return st
}

// Flagged: the same reading also feeds a control decision, so the
// metric-only carve-out must not apply.
func timedDecision(opt Options) int {
	start := time.Now()                  // want `time.Now in solver package`
	if time.Since(start) > time.Second { // want `time.Since in solver package`
		return 1
	}
	return 0
}
