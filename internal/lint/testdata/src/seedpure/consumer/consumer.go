// Package consumer stands in for a solver: it opts into the
// determinism-critical set, so calls to impure factories from the sibling
// fixture package must be diagnosed — across the package boundary, where
// rngseed alone is blind.
//
//hidapvet:deterministic
package consumer

import "seedpure/rngfactory"

// Place consumes a laundered RNG; the fact exported by rngfactory travels
// here and triggers the diagnostic.
func Place() int {
	r := rngfactory.NewEntropy() // want `call to .*rngfactory\.NewEntropy, which is not seed-pure`
	return r.Intn(10)
}

// PlaceTransitive proves impurity survives an in-package hop on the factory
// side: WrapEntropy never constructs a source itself.
func PlaceTransitive() int {
	return rngfactory.WrapEntropy().Intn(10) // want `call to .*rngfactory\.WrapEntropy, which is not seed-pure \(calls NewEntropy`
}

// PlaceMethod consumes the method-shaped factory.
func PlaceMethod(s rngfactory.Shape) int {
	return s.Fresh().Intn(10) // want `call to .*Shape.*Fresh, which is not seed-pure`
}

// PlaceSeeded threads its own seed through: the factory's pure fact means no
// diagnostic.
func PlaceSeeded(seed int64) int {
	return rngfactory.NewSeeded(seed).Intn(10)
}

// PlaceJustified shows the escape hatch for a reviewed call site.
func PlaceJustified(n int) int {
	return rngfactory.Roll(n) //hidapvet:allow seedpure demo fixture: jitter outside the reproducible solve path
}
