// Package rngfactory is NOT a solver package: rngseed never looks at it, so
// nothing here is diagnosed locally. seedpure still computes and exports a
// SeedFact per function — that is the whole point: the facts, not local
// diagnostics, are what stop a solver from consuming these factories.
package rngfactory

import "math/rand"

// NewEntropy launders a fixed-literal seed behind a constructor; callers
// cannot reproduce runs from their config alone.
func NewEntropy() *rand.Rand { // wantfact `NewEntropy: impure: constructs rand\.NewSource`
	return rand.New(rand.NewSource(42))
}

// WrapEntropy is impure only transitively, via the in-package call below.
func WrapEntropy() *rand.Rand { // wantfact `WrapEntropy: impure: calls NewEntropy`
	return NewEntropy()
}

// Roll uses the process-global generator.
func Roll(n int) int { // wantfact `Roll: impure: uses the process-global rand\.Intn`
	return rand.Intn(n)
}

// NewSeeded derives everything from the caller's seed: positively pure.
func NewSeeded(seed int64) *rand.Rand { // wantfact `NewSeeded: seedpure`
	return rand.New(rand.NewSource(seed))
}

// Shape carries a method-shaped factory so method facts round-trip too.
type Shape struct{}

// Fresh is impure through a method, exercising the "Type.Method" fact path.
func (Shape) Fresh() *rand.Rand { // wantfact `Fresh: impure: constructs rand\.NewSource`
	return rand.New(rand.NewSource(7))
}
