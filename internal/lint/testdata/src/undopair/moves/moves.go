// Package moves exercises undopair. The analyzer applies everywhere (the
// Propose/Undo discipline is package-independent), matching structurally on
// the PerturbMove/UndoMove and Propose/Undo method-name pairs.
package moves

type ev struct{}

func (ev) PerturbMove() float64 { return 0 }
func (ev) UndoMove()            {}

type model struct{}

func (model) Propose(r int) float64 { return 0 }
func (model) Undo()                 {}
func (model) Cost() float64         { return 0 }

// OK: the canonical accept/reject cycle.
func annealRound(m model) float64 {
	cur := m.Cost()
	for i := 0; i < 8; i++ {
		next := m.Propose(i)
		if next <= cur {
			cur = next // accept: keep the move
		} else {
			m.Undo()
		}
	}
	return cur
}

// OK: undo inside the same statement as the propose.
func inlinePair(e ev) {
	if c := e.PerturbMove(); c > 0 {
		e.UndoMove()
	}
}

// Flagged: no matching undo anywhere in the function.
func unpaired(e ev) float64 {
	return e.PerturbMove() // want `PerturbMove without a matching UndoMove`
}

// Flagged: an early return escapes with the move still applied.
func leaky(e ev, abort bool) {
	_ = e.PerturbMove()
	if abort { // want `return between PerturbMove and its UndoMove`
		return
	}
	e.UndoMove()
}

// OK: the rejecting branch undoes before returning.
func rejectPath(e ev, abort bool) {
	_ = e.PerturbMove()
	if abort {
		e.UndoMove()
		return
	}
	e.UndoMove()
}

// OK: a wrapper returning an undo closure — pairing handed to the caller.
func perturbWith(e ev) func() {
	_ = e.PerturbMove()
	return func() { e.UndoMove() }
}

// OK: a deliberate commit, documented.
func accept(e ev) {
	//hidapvet:commit greedy descent keeps every improving move; caller re-snapshots
	_ = e.PerturbMove()
}
