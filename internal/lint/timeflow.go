package lint

import (
	"go/ast"
	"go/types"
	"regexp"

	"repro/internal/lint/analysis"
)

// Metric-sink recognition for rngseed's time.Now/time.Since benignity check:
// a duration that only lands in fields like MacroSeconds, Elapsed, or any
// field of a Stats/Metrics/Report struct is reporting, not solving.
var (
	metricNameRe = regexp.MustCompile(`(?i)(seconds|millis|micros|nanos|minutes|hours|duration|elapsed|latency|walltime)`)
	metricTypeRe = regexp.MustCompile(`(Stats|Metrics|Report)$`)
)

// parentMap records the syntactic parent of every node in one file; the
// stdlib AST carries no parent links.
type parentMap map[ast.Node]ast.Node

func buildParents(f *ast.File) parentMap {
	pm := make(parentMap)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			pm[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return pm
}

// timeMetricOnly reports whether the time.Now or time.Since call flows only
// into metric sinks. For Since the duration value itself is traced; for Now
// the assigned variable must be used exclusively as the argument of benign
// time.Since calls — then the wall-clock reading can influence nothing but
// reported timings.
func timeMetricOnly(pass *analysis.Pass, f *ast.File, pm parentMap, call *ast.CallExpr, name string) bool {
	if name == "Since" {
		return valueIsMetricOnly(pass, f, pm, call, 0)
	}
	asn, ok := pm[call].(*ast.AssignStmt)
	if !ok || len(asn.Lhs) != 1 || len(asn.Rhs) != 1 || asn.Rhs[0] != call {
		return false
	}
	id, ok := asn.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id] // plain `=` to a prior declaration
	}
	if obj == nil {
		return false
	}
	uses := findUses(pass, f, obj)
	if len(uses) == 0 {
		return false // a dead reading is not a metric; keep it flagged
	}
	for _, u := range uses {
		since, ok := pm[u].(*ast.CallExpr)
		if !ok || len(since.Args) != 1 || since.Args[0] != u || !isTimeSince(pass, since) {
			return false
		}
		if !valueIsMetricOnly(pass, f, pm, since, 0) {
			return false
		}
	}
	return true
}

// valueIsMetricOnly traces the value produced at node n — through Duration
// method calls, conversions, and parens — to its sink and reports whether
// every sink is a metric field. depth bounds recursion through intermediate
// locals (elapsed := …; m.MacroSeconds = elapsed).
func valueIsMetricOnly(pass *analysis.Pass, f *ast.File, pm parentMap, n ast.Node, depth int) bool {
	if depth > 4 {
		return false
	}
	n = climbValue(pass, pm, n)
	switch p := pm[n].(type) {
	case *ast.KeyValueExpr:
		if p.Value != n {
			return false
		}
		cl, _ := pm[p].(*ast.CompositeLit)
		key, ok := p.Key.(*ast.Ident)
		return ok && cl != nil && (metricNameRe.MatchString(key.Name) || isMetricStruct(typeOf(pass, cl)))
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if rhs != n || i >= len(p.Lhs) {
				continue
			}
			switch lhs := p.Lhs[i].(type) {
			case *ast.SelectorExpr:
				return metricNameRe.MatchString(lhs.Sel.Name) || isMetricStruct(typeOf(pass, lhs.X))
			case *ast.Ident:
				obj := pass.TypesInfo.Defs[lhs]
				if obj == nil {
					obj = pass.TypesInfo.Uses[lhs]
				}
				if obj == nil {
					return false
				}
				uses := findUses(pass, f, obj)
				if len(uses) == 0 {
					return false
				}
				for _, u := range uses {
					if !valueIsMetricOnly(pass, f, pm, u, depth+1) {
						return false
					}
				}
				return true
			}
		}
	}
	return false
}

// climbValue follows n upward through value-preserving syntax: parens,
// method calls on the value (d.Seconds()), and type conversions.
func climbValue(pass *analysis.Pass, pm parentMap, n ast.Node) ast.Node {
	for {
		switch p := pm[n].(type) {
		case *ast.ParenExpr:
			n = p
		case *ast.SelectorExpr:
			if c, ok := pm[p].(*ast.CallExpr); ok && c.Fun == p && p.X == n {
				n = c
				continue
			}
			return n
		case *ast.CallExpr:
			if tv, ok := pass.TypesInfo.Types[p.Fun]; ok && tv.IsType() {
				n = p // conversion, e.g. float64(d)
				continue
			}
			return n
		default:
			return n
		}
	}
}

// findUses returns every use-identifier of obj in the file.
func findUses(pass *analysis.Pass, f *ast.File, obj types.Object) []*ast.Ident {
	var uses []*ast.Ident
	ast.Inspect(f, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			uses = append(uses, id)
		}
		return true
	})
	return uses
}

func isTimeSince(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Since" {
		return false
	}
	pkgPath, ok := importedPkgOf(pass, sel)
	return ok && pkgPath == "time"
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isMetricStruct reports whether t (possibly behind a pointer) is a named
// type whose name marks it as a metrics carrier.
func isMetricStruct(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && metricTypeRe.MatchString(named.Obj().Name())
}
