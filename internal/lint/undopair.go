package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// UndoPair enforces the delta-cost move discipline from the annealing core:
// a speculative mutation (Evaluator.PerturbMove / Model.Propose) must be
// matched by its inverse (UndoMove / Undo) — or deliberately committed — in
// the same function. The incremental evaluators keep double-buffered state
// whose validity depends on this strict pairing; a Propose that escapes on an
// early return leaves the buffers desynchronized and every later cost is
// silently wrong.
//
// The check is intraprocedural and conservative in two steps:
//
//  1. A function that calls PerturbMove/Propose but never calls the matching
//     UndoMove/Undo is flagged, unless the call carries //hidapvet:commit
//     <reason> (the accept path: the mutation is deliberately kept and the
//     caller's contract says so).
//  2. Within the statement list enclosing the speculative call, a `return`
//     that appears (at any nesting depth) before the first statement
//     containing the matching undo is flagged: that path can exit with the
//     move still applied. A return inside a statement that also contains the
//     undo is fine (the classic `if reject { undo() ; return }`).
//
// Loop bodies are their own statement lists, so the propose/undo cycle of an
// annealing round is naturally in scope.
var UndoPair = &analysis.Analyzer{
	Name: "undopair",
	Doc: "every Evaluator.PerturbMove/Model.Propose must reach a matching " +
		"UndoMove/Undo or carry //hidapvet:commit <reason> before return",
	Run: runUndoPair,
}

// movePairs lists each speculative-mutation method and its inverse.
var movePairs = []struct{ propose, undo string }{
	{"PerturbMove", "UndoMove"},
	{"Propose", "Undo"},
}

func runUndoPair(pass *analysis.Pass) (interface{}, error) {
	idx := parseDirectives(pass)
	idx.checkDirectiveReasons(pass, "commit")
	for _, f := range nonTestFiles(pass) {
		// Check each function (decl or literal) independently.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkUndoPairs(pass, idx, body)
			}
			return true
		})
	}
	return nil, nil
}

// methodCallNamed reports whether n is a method call expression with the
// given method name (on any receiver type — the discipline is structural,
// so test fixtures and future evaluators are covered without importing
// their types).
func methodCallNamed(pass *analysis.Pass, n ast.Node, name string) (*ast.CallExpr, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	// Exclude package-qualified functions (pkg.Propose): the discipline is
	// about methods on evaluator/model values.
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
			return nil, false
		}
	}
	return call, true
}

// containsCall reports whether the subtree rooted at n contains a method call
// with the given name. Nested function literals ARE searched: an undo
// captured in a returned or deferred closure is a legitimate pairing handoff
// (the Expr.Perturb wrapper pattern), and propose calls inside literals are
// excluded separately when gathering (each literal is its own function).
func containsCall(pass *analysis.Pass, n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := methodCallNamed(pass, m, name); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// containsReturn reports whether the subtree contains a return statement,
// excluding nested function literals.
func containsReturn(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		if _, ok := m.(*ast.ReturnStmt); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

func checkUndoPairs(pass *analysis.Pass, idx *directiveIndex, body *ast.BlockStmt) {
	for _, pair := range movePairs {
		propose, undo := pair.propose, pair.undo
		// Gather speculative calls in this function, excluding nested
		// literals (checked separately).
		var calls []*ast.CallExpr
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := methodCallNamed(pass, n, propose); ok {
				calls = append(calls, call)
			}
			return true
		})
		if len(calls) == 0 {
			continue
		}
		hasUndo := containsCall(pass, body, undo)
		for _, call := range calls {
			if idx.suppressed(call.Pos(), pass.Analyzer.Name, "commit") {
				continue
			}
			if !hasUndo {
				pass.Reportf(call.Pos(), "%s without a matching %s in this function: the move "+
					"escapes unpaired; undo it, or mark a deliberate accept with "+
					"//hidapvet:commit <reason>", propose, undo)
				continue
			}
			if leak, leaky := returnBeforeUndo(pass, body, call, undo); leaky {
				pass.Reportf(leak.Pos(), "return between %s and its %s: this path exits with the "+
					"speculative move still applied; undo on every path or mark the call "+
					"with //hidapvet:commit <reason>", propose, undo)
			}
		}
	}
}

// returnBeforeUndo finds the statement list directly enclosing the call and
// scans the statements after it: a statement containing a return (but not the
// undo) before any statement containing the undo is a leak.
func returnBeforeUndo(pass *analysis.Pass, body *ast.BlockStmt, call *ast.CallExpr, undo string) (ast.Node, bool) {
	stmts, i := enclosingStmtList(body, call)
	if stmts == nil {
		return nil, false
	}
	// The statement holding the call may itself contain the undo
	// (e.g. `if c := ev.PerturbMove(); bad(c) { ev.UndoMove() }`).
	if containsCall(pass, stmts[i], undo) {
		return nil, false
	}
	for _, s := range stmts[i+1:] {
		if containsCall(pass, s, undo) {
			return nil, false
		}
		if containsReturn(s) {
			return s, true
		}
	}
	// No undo after the call in this list: either the list ends (falls off
	// into the enclosing scope — the loop-body case, where the next
	// iteration's pairing is this function's concern already counted by
	// hasUndo) or the undo lives in an earlier statement (defer-like
	// registration). Both are accepted by this conservative step.
	return nil, false
}

// enclosingStmtList returns the innermost []ast.Stmt containing the node and
// the index of the statement holding it.
func enclosingStmtList(body *ast.BlockStmt, target ast.Node) ([]ast.Stmt, int) {
	var bestList []ast.Stmt
	bestIdx := -1
	var visit func(list []ast.Stmt)
	visit = func(list []ast.Stmt) {
		for i, s := range list {
			if s.Pos() <= target.Pos() && target.End() <= s.End() {
				bestList, bestIdx = list, i
				// descend into nested statement lists of s
				ast.Inspect(s, func(n ast.Node) bool {
					if _, ok := n.(*ast.FuncLit); ok && containsNode(n, target) {
						// target is inside a nested literal; its body's
						// lists were handled when checking that literal.
						return true
					}
					switch b := n.(type) {
					case *ast.BlockStmt:
						if b != body && containsNode(b, target) {
							visit(b.List)
						}
					case *ast.CaseClause:
						if containsNode(b, target) {
							visit(b.Body)
						}
					case *ast.CommClause:
						if containsNode(b, target) {
							visit(b.Body)
						}
					}
					return true
				})
				return
			}
		}
	}
	visit(body.List)
	return bestList, bestIdx
}

func containsNode(n, target ast.Node) bool {
	return n.Pos() <= target.Pos() && target.End() <= n.End()
}
