// Package unitchecker makes a multichecker binary out of a set of analyzers,
// speaking the `go vet -vettool=` protocol: cmd/go invokes the tool once per
// package ("unit") with a JSON config file describing the sources, the
// import map, and the export-data files of every dependency, and expects
// diagnostics on stderr plus a facts file at VetxOutput.
//
// It is a stdlib-only re-implementation of the subset of
// golang.org/x/tools/go/analysis/unitchecker this repository needs (that
// module cannot be fetched in the offline build). Facts are real: the
// checker decodes the .vetx files of the unit's dependencies (PackageVetx),
// runs every analyzer — in dependency-only VetxOnly passes too, where
// diagnostics are discarded but facts still accumulate — and gob-encodes the
// resulting fact set to VetxOutput, so properties like seed purity and
// allocation freedom propagate across package boundaries exactly like go
// vet's printf fact. Units outside the main module (the standard library)
// are not analyzed; they contribute an empty facts file.
//
// As a convenience beyond the x/tools original, invoking the binary with
// package patterns instead of a .cfg file re-executes `go vet
// -vettool=<self> <patterns>`, so `hidap-vet ./...` just works. The one
// tool flag, -json, is declared through the -flags probe, so
// `go vet -vettool=hidap-vet -json ./...` (or `hidap-vet -json ./...`)
// emits machine-readable diagnostics on stdout.
package unitchecker

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Config is the JSON schema cmd/go writes to <objdir>/vet.cfg (struct
// vetConfig in cmd/go/internal/work). Fields we do not consult are kept so
// the decoder documents the full wire format.
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vet-tool binary. It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// Gob-register every declared fact type up front: decoding a
	// dependency's .vetx happens before this unit encodes anything.
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}

	// cmd/go probes the tool's identity with -V=full and requires the
	// line `<name> version devel ... buildID=<hex>` (work/buildid.go); the
	// executable hash keys vet's result cache, so rebuilt tools re-vet.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		fmt.Printf("%s version devel buildID=%s\n", progname, selfHash())
		os.Exit(0)
	}

	// cmd/go probes `<tool> -flags` for a JSON description of the tool's
	// flags (cmd/go/internal/vet/vetflag.go); declared flags become valid
	// `go vet` flags and are passed before the .cfg on every unit run.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit diagnostics as JSON on stdout instead of text on stderr"}]`)
		os.Exit(0)
	}

	// Accept `-json` ahead of either a unit config or package patterns.
	asJSON := false
	for len(args) > 0 {
		switch args[0] {
		case "-json", "--json", "-json=true":
			asJSON = true
			args = args[1:]
			continue
		case "-json=false":
			asJSON = false
			args = args[1:]
			continue
		}
		break
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0], analyzers, asJSON)
		os.Exit(0)
	}

	// Never re-exec on unrecognized flags: an unknown protocol probe must
	// fail fast, not recurse through go vet.
	for _, a := range args {
		if strings.HasPrefix(a, "-") && a != "-h" && a != "--help" {
			fmt.Fprintf(os.Stderr, "%s: unrecognized flag %s\n", progname, a)
			os.Exit(2)
		}
	}

	if len(args) == 0 || args[0] == "help" || args[0] == "-h" || args[0] == "--help" {
		fmt.Fprintf(os.Stderr, "%s: static analysis of the hidap determinism & concurrency invariants\n\n", progname)
		fmt.Fprintf(os.Stderr, "usage: %s [-json] <packages>   (e.g. %s ./...)\n", progname, progname)
		fmt.Fprintf(os.Stderr, "   or: go vet -vettool=$(command -v %s) <packages>\n\nanalyzers:\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, strings.Split(a.Doc, "\n")[0])
		}
		os.Exit(2)
	}

	// Package patterns: delegate to go vet with ourselves as the tool.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: cannot locate own executable: %v\n", progname, err)
		os.Exit(1)
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	if asJSON {
		vetArgs = append(vetArgs, "-json")
	}
	cmd := exec.Command("go", append(vetArgs, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// selfHash returns a short content hash of the running executable.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// writeVetx writes the unit's facts file. cmd/go caches the file and feeds
// it to dependent units as PackageVetx, so it must exist even when empty.
func writeVetx(cfg *Config, data []byte) {
	if cfg.VetxOutput == "" {
		return
	}
	if data == nil {
		data = []byte{}
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		fatalf("writing vetx output: %v", err)
	}
}

// isStdUnit reports whether the unit belongs to the standard library (or is
// otherwise outside any module). Those units are not analyzed: the suite's
// invariants are about this repository, and typechecking arbitrary std
// internals from source is pure risk for the required CI job. Their facts
// files are empty, so std callees are treated as unknown — allocfree and
// seedpure carry their own knowledge of the handful of std functions that
// matter.
func isStdUnit(cfg *Config) bool {
	if cfg.Standard[cfg.ImportPath] {
		return true
	}
	return cfg.ModulePath == "" || cfg.ModulePath == "std" || cfg.ModulePath == "cmd"
}

// jsonDiagnostic mirrors x/tools' unitchecker JSON shape: one object per
// unit, keyed by package path then analyzer name.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// runUnit analyzes one package unit described by the config file.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer, asJSON bool) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("reading vet config: %v", err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing vet config %s: %v", cfgFile, err)
	}

	if isStdUnit(&cfg) {
		writeVetx(&cfg, nil)
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
				writeVetx(&cfg, nil)
				return
			}
			fatalf("%v", err)
		}
		files = append(files, f)
	}

	pkg, info, err := typeCheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
			// A dependency pass that cannot typecheck contributes no facts
			// rather than failing the whole build.
			writeVetx(&cfg, nil)
			return
		}
		fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	// Decode dependency facts. PackageVetx holds the .vetx of each direct
	// dependency, whose own file already re-exports its transitive facts,
	// so resolving against the full import graph sees everything.
	facts := analysis.NewFactSet()
	if len(cfg.PackageVetx) > 0 {
		find := packageFinder(pkg)
		deps := make([]string, 0, len(cfg.PackageVetx))
		for path := range cfg.PackageVetx {
			deps = append(deps, path)
		}
		sort.Strings(deps)
		for _, path := range deps {
			vdata, err := os.ReadFile(cfg.PackageVetx[path])
			if err != nil {
				continue // missing dependency facts degrade to "unknown", not failure
			}
			if err := facts.Decode(vdata, find); err != nil {
				fatalf("decoding facts of %s: %v", path, err)
			}
		}
	}

	type record struct {
		analyzer *analysis.Analyzer
		diag     analysis.Diagnostic
	}
	var found []record
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		facts.Install(pass)
		pass.Report = func(d analysis.Diagnostic) {
			found = append(found, record{a, d})
		}
		if _, err := a.Run(pass); err != nil {
			fatalf("analyzer %s: %v", a.Name, err)
		}
	}

	vetx, err := facts.Encode()
	if err != nil {
		fatalf("encoding facts of %s: %v", cfg.ImportPath, err)
	}
	writeVetx(&cfg, vetx)

	if cfg.VetxOnly || len(found) == 0 {
		return // dependency pass: facts only, no diagnostics wanted
	}
	sort.SliceStable(found, func(i, j int) bool { return found[i].diag.Pos < found[j].diag.Pos })
	if asJSON {
		// x/tools-compatible: {"pkg": {"analyzer": [{posn, message}]}} on
		// stdout, exit 0 — consumers gate on the parsed payload.
		byAnalyzer := make(map[string][]jsonDiagnostic)
		for _, r := range found {
			byAnalyzer[r.analyzer.Name] = append(byAnalyzer[r.analyzer.Name], jsonDiagnostic{
				Posn:    fset.Position(r.diag.Pos).String(),
				Message: r.diag.Message,
			})
		}
		out := map[string]map[string][]jsonDiagnostic{cfg.ImportPath: byAnalyzer}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fatalf("encoding JSON diagnostics: %v", err)
		}
		return
	}
	for _, r := range found {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(r.diag.Pos), r.diag.Message, r.analyzer.Name)
	}
	os.Exit(2)
}

// packageFinder indexes the transitive import graph of the unit's package by
// path, for fact resolution.
func packageFinder(root *types.Package) func(path string) *types.Package {
	idx := make(map[string]*types.Package)
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		if _, ok := idx[p.Path()]; ok {
			return
		}
		idx[p.Path()] = p
		for _, im := range p.Imports() {
			walk(im)
		}
	}
	walk(root)
	return func(path string) *types.Package { return idx[path] }
}

// typeCheck builds the types.Package for the unit, resolving imports through
// the export data cmd/go supplies in PackageFile (keyed by canonical package
// path; source import paths go through ImportMap first).
func typeCheck(fset *token.FileSet, files []*ast.File, cfg *Config) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if canonical, ok := cfg.ImportMap[importPath]; ok {
			importPath = canonical
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(importPath)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := analysis.NewTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "hidap-vet: "+format+"\n", args...)
	os.Exit(1)
}
