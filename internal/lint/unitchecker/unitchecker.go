// Package unitchecker makes a multichecker binary out of a set of analyzers,
// speaking the `go vet -vettool=` protocol: cmd/go invokes the tool once per
// package ("unit") with a JSON config file describing the sources, the
// import map, and the export-data files of every dependency, and expects
// diagnostics on stderr plus a (possibly empty) facts file at VetxOutput.
//
// It is a stdlib-only re-implementation of the subset of
// golang.org/x/tools/go/analysis/unitchecker this repository needs (that
// module cannot be fetched in the offline build); since the hidap-vet
// analyzers use no cross-package facts, the facts file is always empty.
//
// As a convenience beyond the x/tools original, invoking the binary with
// package patterns instead of a .cfg file re-executes `go vet
// -vettool=<self> <patterns>`, so `hidap-vet ./...` just works.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Config is the JSON schema cmd/go writes to <objdir>/vet.cfg (struct
// vetConfig in cmd/go/internal/work). Fields we do not consult are kept so
// the decoder documents the full wire format.
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vet-tool binary. It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// cmd/go probes the tool's identity with -V=full and requires the
	// line `<name> version devel ... buildID=<hex>` (work/buildid.go); the
	// executable hash keys vet's result cache, so rebuilt tools re-vet.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		fmt.Printf("%s version devel buildID=%s\n", progname, selfHash())
		os.Exit(0)
	}

	// cmd/go probes `<tool> -flags` for a JSON description of the tool's
	// flags (cmd/go/internal/vet/vetflag.go); the suite defines none.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		os.Exit(0)
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0], analyzers)
		os.Exit(0)
	}

	// Never re-exec on unrecognized flags: an unknown protocol probe must
	// fail fast, not recurse through go vet.
	for _, a := range args {
		if strings.HasPrefix(a, "-") && a != "-h" && a != "--help" {
			fmt.Fprintf(os.Stderr, "%s: unrecognized flag %s\n", progname, a)
			os.Exit(2)
		}
	}

	if len(args) == 0 || args[0] == "help" || args[0] == "-h" || args[0] == "--help" {
		fmt.Fprintf(os.Stderr, "%s: static analysis of the hidap determinism & concurrency invariants\n\n", progname)
		fmt.Fprintf(os.Stderr, "usage: %s <packages>   (e.g. %s ./...)\n", progname, progname)
		fmt.Fprintf(os.Stderr, "   or: go vet -vettool=$(command -v %s) <packages>\n\nanalyzers:\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, strings.Split(a.Doc, "\n")[0])
		}
		os.Exit(2)
	}

	// Package patterns: delegate to go vet with ourselves as the tool.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: cannot locate own executable: %v\n", progname, err)
		os.Exit(1)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// selfHash returns a short content hash of the running executable.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// runUnit analyzes one package unit described by the config file.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("reading vet config: %v", err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing vet config %s: %v", cfgFile, err)
	}

	// The facts file must exist even though the suite records no facts:
	// cmd/go caches it and feeds it to dependent units as PackageVetx.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatalf("writing vetx output: %v", err)
		}
	}
	if cfg.VetxOnly {
		return // dependency pass: facts only, no diagnostics wanted
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			fatalf("%v", err)
		}
		files = append(files, f)
	}

	pkg, info, err := typeCheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	type record struct {
		analyzer *analysis.Analyzer
		diag     analysis.Diagnostic
	}
	var found []record
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			found = append(found, record{a, d})
		}
		if _, err := a.Run(pass); err != nil {
			fatalf("analyzer %s: %v", a.Name, err)
		}
	}

	if len(found) == 0 {
		return
	}
	sort.SliceStable(found, func(i, j int) bool { return found[i].diag.Pos < found[j].diag.Pos })
	for _, r := range found {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(r.diag.Pos), r.diag.Message, r.analyzer.Name)
	}
	os.Exit(2)
}

// typeCheck builds the types.Package for the unit, resolving imports through
// the export data cmd/go supplies in PackageFile (keyed by canonical package
// path; source import paths go through ImportMap first).
func typeCheck(fset *token.FileSet, files []*ast.File, cfg *Config) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if canonical, ok := cfg.ImportMap[importPath]; ok {
			importPath = canonical
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(importPath)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := analysis.NewTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "hidap-vet: "+format+"\n", args...)
	os.Exit(1)
}
