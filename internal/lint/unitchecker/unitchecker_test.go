package unitchecker_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildVet compiles cmd/hidap-vet into a temp dir and returns its path along
// with the repo root.
func buildVet(t *testing.T) (tool, root string) {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not in a module")
	}
	root = filepath.Dir(gomod)
	tool = filepath.Join(t.TempDir(), "hidap-vet")
	cmd := exec.Command("go", "build", "-o", tool, "./cmd/hidap-vet")
	cmd.Dir = root
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building hidap-vet: %v\n%s", err, b)
	}
	return tool, root
}

// TestVersionFlag checks the -V=full handshake cmd/go uses to identify and
// cache-key the tool (work/buildid.go requires `name version devel …
// buildID=<hex>`).
func TestVersionFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	tool, _ := buildVet(t)
	out, err := exec.Command(tool, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	f := strings.Fields(strings.TrimSpace(string(out)))
	if len(f) < 3 || f[1] != "version" || !strings.HasPrefix(f[len(f)-1], "buildID=") {
		t.Fatalf("-V=full output not in cmd/go's expected shape: %q", out)
	}
}

// TestVetCleanPackage runs the full go vet -vettool protocol over packages
// that must be finding-free.
func TestVetCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	tool, root := buildVet(t)
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./internal/sched/...", "./internal/lint/...")
	cmd.Dir = root
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("expected clean vet run, got: %v\n%s", err, b)
	}
}

// TestVetFindsViolation builds a scratch module with a seeded violation of
// each analyzer and checks the findings come out of the real vet pipeline —
// the fixture-level tests prove the analyzers, this proves the protocol
// (config decoding, export-data import, diagnostics, exit status).
func TestVetFindsViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	tool, _ := buildVet(t)
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("lib.go", `// Package lib has one violation per analyzer.
//hidapvet:deterministic
package lib

import (
	"context"
	"math/rand"
)

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func Roll(n int64) int {
	return rand.New(rand.NewSource(n)).Intn(6)
}

func Spawn(f func()) { go f() }

func Fresh(ctx context.Context, f func(context.Context) error) error {
	return f(context.Background())
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	b, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected findings, vet exited clean:\n%s", b)
	}
	for _, wantFrag := range []string{
		"range over map",
		"rand.NewSource with a seed that does not visibly flow",
		"bare go statement",
		"context.Background in library package",
		"[maprange]", "[rngseed]", "[gocap]", "[ctxflow]",
	} {
		if !bytes.Contains(b, []byte(wantFrag)) {
			t.Errorf("vet output missing %q:\n%s", wantFrag, b)
		}
	}
}
