package unitchecker_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildVet compiles cmd/hidap-vet into a temp dir and returns its path along
// with the repo root.
func buildVet(t *testing.T) (tool, root string) {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not in a module")
	}
	root = filepath.Dir(gomod)
	tool = filepath.Join(t.TempDir(), "hidap-vet")
	cmd := exec.Command("go", "build", "-o", tool, "./cmd/hidap-vet")
	cmd.Dir = root
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building hidap-vet: %v\n%s", err, b)
	}
	return tool, root
}

// TestVersionFlag checks the -V=full handshake cmd/go uses to identify and
// cache-key the tool (work/buildid.go requires `name version devel …
// buildID=<hex>`).
func TestVersionFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	tool, _ := buildVet(t)
	out, err := exec.Command(tool, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	f := strings.Fields(strings.TrimSpace(string(out)))
	if len(f) < 3 || f[1] != "version" || !strings.HasPrefix(f[len(f)-1], "buildID=") {
		t.Fatalf("-V=full output not in cmd/go's expected shape: %q", out)
	}
}

// TestVetCleanPackage runs the full go vet -vettool protocol over packages
// that must be finding-free.
func TestVetCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	tool, root := buildVet(t)
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./internal/sched/...", "./internal/lint/...")
	cmd.Dir = root
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("expected clean vet run, got: %v\n%s", err, b)
	}
}

// TestVetFindsViolation builds a scratch module with a seeded violation of
// each analyzer and checks the findings come out of the real vet pipeline —
// the fixture-level tests prove the analyzers, this proves the protocol
// (config decoding, export-data import, diagnostics, exit status).
func TestVetFindsViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	tool, _ := buildVet(t)
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("lib.go", `// Package lib has one violation per analyzer.
//hidapvet:deterministic
package lib

import (
	"context"
	"math/rand"
)

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func Roll(n int64) int {
	return rand.New(rand.NewSource(n)).Intn(6)
}

func Spawn(f func()) { go f() }

func Fresh(ctx context.Context, f func(context.Context) error) error {
	return f(context.Background())
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	b, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected findings, vet exited clean:\n%s", b)
	}
	for _, wantFrag := range []string{
		"range over map",
		"rand.NewSource with a seed that does not visibly flow",
		"bare go statement",
		"context.Background in library package",
		"[maprange]", "[rngseed]", "[gocap]", "[ctxflow]",
	} {
		if !bytes.Contains(b, []byte(wantFrag)) {
			t.Errorf("vet output missing %q:\n%s", wantFrag, b)
		}
	}
}

// scratchFactModule writes a two-package module where the dependency hides
// nondeterminism (an unseeded source, an allocating helper) behind exported
// functions that a determinism-critical, hot-annotated consumer calls. The
// violations are only visible if facts computed during the dependency's
// VetxOnly pass travel through its .vetx file into the consumer's unit.
func scratchFactModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("dep/dep.go", `// Package dep is not determinism-critical: everything here is clean for
// rngseed, and nothing is hot. Only the exported facts carry the hazards.
package dep

import "math/rand"

func NewEntropy() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

func Grow(n int) []int {
	return Leaf(n)
}

func Leaf(n int) []int {
	return make([]int, n)
}
`)
	write("use/use.go", `// Package use consumes dep across the unit boundary.
//
//hidapvet:deterministic
package use

import "scratch/dep"

func Solve() int {
	r := dep.NewEntropy()
	return r.Intn(10)
}

//hidapvet:hotpath
func Hot(n int) int {
	xs := dep.Grow(n)
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
`)
	return dir
}

// TestVetCrossPackageFacts proves the tentpole end to end through the real
// cmd/go protocol: the dependency unit runs VetxOnly, its facts are encoded
// to .vetx, and the consumer's unit imports them and reports the
// cross-package seedpure and allocfree findings.
func TestVetCrossPackageFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	tool, _ := buildVet(t)
	dir := scratchFactModule(t)
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	b, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected cross-package findings, vet exited clean:\n%s", b)
	}
	for _, wantFrag := range []string{
		"call to scratch/dep.NewEntropy, which is not seed-pure",
		"constructs rand.NewSource without a config-derived seed",
		"allocation in //hidapvet:hotpath function Hot",
		"call to scratch/dep.Grow (call to Leaf (make))",
		"[seedpure]", "[allocfree]",
	} {
		if !bytes.Contains(b, []byte(wantFrag)) {
			t.Errorf("vet output missing %q:\n%s", wantFrag, b)
		}
	}
	if bytes.Contains(b, []byte("dep.go:")) {
		t.Errorf("dependency unit leaked diagnostics (VetxOnly must stay silent):\n%s", b)
	}
}

// TestVetJSONOutput checks -json mode: the tool emits one JSON object per
// unit, keyed by package path then analyzer, and exits 0 — cmd/go relays the
// output on its own stderr under `# <pkg>` headers (the same routing the
// x/tools unitchecker gets), so consumers strip the headers and gate on the
// parsed payload.
func TestVetJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	tool, _ := buildVet(t)
	dir := scratchFactModule(t)
	cmd := exec.Command("go", "vet", "-vettool="+tool, "-json", "./...")
	cmd.Dir = dir
	b, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go vet -json should exit 0, got %v\n%s", err, b)
	}
	var payload bytes.Buffer
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "#") {
			payload.WriteString(line)
			payload.WriteByte('\n')
		}
	}
	// Each unit emits one object; decode them all and merge.
	found := make(map[string][]string) // analyzer → messages
	dec := json.NewDecoder(&payload)
	for dec.More() {
		var unit map[string]map[string][]struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		if err := dec.Decode(&unit); err != nil {
			t.Fatalf("decoding -json output: %v", err)
		}
		for _, byAnalyzer := range unit {
			for analyzer, diags := range byAnalyzer {
				for _, d := range diags {
					if d.Posn == "" || d.Message == "" {
						t.Errorf("diagnostic missing posn/message: %+v", d)
					}
					found[analyzer] = append(found[analyzer], d.Message)
				}
			}
		}
	}
	if len(found["seedpure"]) == 0 || len(found["allocfree"]) == 0 {
		t.Fatalf("expected seedpure and allocfree findings in JSON, got %v", found)
	}
}
