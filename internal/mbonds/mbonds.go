// Package mbonds derives macro-level attraction bonds from the flat
// netlist: for every macro, a bounded breadth-first search over the
// sequential graph finds the macros and ports reachable within a few
// register hops, weighted by bus width. This is the connectivity model a
// netlist-only floorplanner works with — no hierarchy, no array names, no
// latency decay — and both comparison flows (IndEDA, handFP refinement)
// score candidate macro positions against it.
package mbonds

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/seqgraph"
)

// Bond is one attraction: between two macros, or a macro and a fixed point.
type Bond struct {
	A netlist.CellID
	// B is the peer macro, or None when the bond targets a fixed point.
	B netlist.CellID
	// Fixed is the attraction point when B is None (a port position).
	Fixed geom.Point
	// W is the bond weight (bits reaching within the hop budget).
	W float64
}

// Params bounds the extraction.
type Params struct {
	// MaxHops is the BFS depth over Gseq (default 4: macro wrappers put
	// one or two register stages between macros).
	MaxHops int32
}

// DefaultParams returns the standard hop budget.
func DefaultParams() Params { return Params{MaxHops: 4} }

// Extract computes the bond list of a design. Deterministic: bonds are
// sorted by (A, B).
func Extract(d *netlist.Design, p Params) []Bond {
	if p.MaxHops <= 0 {
		p.MaxHops = 4
	}
	// Gseq with no width filtering: a plain netlist tool sees everything.
	sg := seqgraph.Build(d, seqgraph.Params{MinBits: 0})

	// Undirected adjacency over Gseq so attraction is symmetric.
	type edge struct {
		to   int32
		bits int32
	}
	adj := make([][]edge, len(sg.Nodes))
	for u := range sg.Out {
		for _, e := range sg.Out[u] {
			adj[u] = append(adj[u], edge{e.To, e.Bits})
			adj[e.To] = append(adj[e.To], edge{int32(u), e.Bits})
		}
	}

	isMacro := func(n int32) bool { return sg.Nodes[n].Kind == seqgraph.KindMacro }
	isPort := func(n int32) bool { return sg.Nodes[n].Kind == seqgraph.KindPort }

	portPos := func(n int32) geom.Point {
		var sx, sy, cnt int64
		for _, cid := range sg.Nodes[n].Cells {
			pp := d.PortPos(cid)
			sx += pp.X
			sy += pp.Y
			cnt++
		}
		if cnt == 0 {
			return d.Die.Center()
		}
		return geom.Pt(sx/cnt, sy/cnt)
	}

	type key struct{ a, b netlist.CellID }
	macroBond := map[key]float64{}
	type pkey struct {
		a netlist.CellID
		p int32
	}
	portBond := map[pkey]float64{}

	dist := make([]int32, len(sg.Nodes))
	for si := range sg.Nodes {
		if !isMacro(int32(si)) {
			continue
		}
		src := sg.Nodes[si].Cells[0]
		for i := range dist {
			dist[i] = -1
		}
		queue := []int32{int32(si)}
		dist[si] = 0
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			if dist[u] >= p.MaxHops {
				continue
			}
			for _, e := range adj[u] {
				if dist[e.to] >= 0 {
					continue
				}
				dist[e.to] = dist[u] + 1
				switch {
				case isMacro(e.to):
					dst := sg.Nodes[e.to].Cells[0]
					if dst == src {
						continue
					}
					a, b := src, dst
					if a > b {
						a, b = b, a
					}
					macroBond[key{a, b}] += float64(e.bits)
					// Do not traverse through macros.
				case isPort(e.to):
					portBond[pkey{src, e.to}] += float64(e.bits)
					// Ports terminate paths too.
				default:
					queue = append(queue, e.to)
				}
			}
		}
	}

	bonds := make([]Bond, 0, len(macroBond)+len(portBond))
	for k, w := range macroBond {
		bonds = append(bonds, Bond{A: k.a, B: k.b, W: w})
	}
	for k, w := range portBond {
		bonds = append(bonds, Bond{A: k.a, B: netlist.None, Fixed: portPos(k.p), W: w})
	}
	sort.Slice(bonds, func(i, j int) bool {
		if bonds[i].A != bonds[j].A {
			return bonds[i].A < bonds[j].A
		}
		if bonds[i].B != bonds[j].B {
			return bonds[i].B < bonds[j].B
		}
		if bonds[i].Fixed.X != bonds[j].Fixed.X {
			return bonds[i].Fixed.X < bonds[j].Fixed.X
		}
		return bonds[i].Fixed.Y < bonds[j].Fixed.Y
	})
	return bonds
}

// WL evaluates the bond wirelength of a macro placement: Σ W · dist.
func WL(pl interface {
	Center(netlist.CellID) geom.Point
}, bonds []Bond) float64 {
	var sum float64
	for i := range bonds {
		b := &bonds[i]
		pa := pl.Center(b.A)
		var pb geom.Point
		if b.B == netlist.None {
			pb = b.Fixed
		} else {
			pb = pl.Center(b.B)
		}
		sum += b.W * float64(pa.ManhattanDist(pb))
	}
	return sum
}
