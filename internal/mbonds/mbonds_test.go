package mbonds

import (
	"fmt"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/placement"
)

// chainWithPort builds m0 -> reg -> m1 -> reg -> m2 and a port feeding m0.
func chainWithPort(t testing.TB, width int) (*netlist.Design, []netlist.CellID) {
	t.Helper()
	b := netlist.NewBuilder("mb")
	b.SetDie(geom.RectXYWH(0, 0, 100_000, 100_000))
	var macros []netlist.CellID
	for i := 0; i < 3; i++ {
		macros = append(macros, b.AddMacro(fmt.Sprintf("m%d", i), 10_000, 10_000, ""))
	}
	// Port -> comb -> reg -> m0.
	for bit := 0; bit < width; bit++ {
		p := b.AddPort(fmt.Sprintf("in[%d]", bit))
		b.SetPortPos(p, geom.Pt(0, int64(bit)*1000))
		r := b.AddFlop(fmt.Sprintf("pr[%d]", bit), "")
		b.Wire(fmt.Sprintf("pn%d", bit), p, r)
		b.Wire(fmt.Sprintf("pm%d", bit), r, macros[0])
	}
	// m0 -> reg -> m1 -> reg -> m2 (width bits each).
	for hop := 0; hop < 2; hop++ {
		for bit := 0; bit < width; bit++ {
			r := b.AddFlop(fmt.Sprintf("h%d[%d]", hop, bit), "")
			b.Wire(fmt.Sprintf("ha%d_%d", hop, bit), macros[hop], r)
			b.Wire(fmt.Sprintf("hb%d_%d", hop, bit), r, macros[hop+1])
		}
	}
	return b.MustBuild(), macros
}

func TestExtractFindsChain(t *testing.T) {
	d, macros := chainWithPort(t, 8)
	bonds := Extract(d, DefaultParams())
	byPair := map[[2]netlist.CellID]float64{}
	portBonds := 0
	for _, bo := range bonds {
		if bo.B == netlist.None {
			portBonds++
			continue
		}
		byPair[[2]netlist.CellID{bo.A, bo.B}] += bo.W
	}
	if w := byPair[[2]netlist.CellID{macros[0], macros[1]}]; w < 8 {
		t.Errorf("m0-m1 bond = %v, want >= 8 bits", w)
	}
	if w := byPair[[2]netlist.CellID{macros[1], macros[2]}]; w < 8 {
		t.Errorf("m1-m2 bond = %v, want >= 8 bits", w)
	}
	if portBonds == 0 {
		t.Error("no port bonds extracted")
	}
}

func TestExtractHopLimit(t *testing.T) {
	d, macros := chainWithPort(t, 4)
	// With 1 hop, macro-reg-macro (2 hops) is invisible.
	bonds := Extract(d, Params{MaxHops: 1})
	for _, bo := range bonds {
		if bo.A == macros[0] && bo.B == macros[1] {
			t.Error("1-hop extraction should not reach through a register")
		}
	}
}

func TestExtractDeterministic(t *testing.T) {
	d, _ := chainWithPort(t, 4)
	a := Extract(d, DefaultParams())
	b := Extract(d, DefaultParams())
	if len(a) != len(b) {
		t.Fatal("bond count differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bond %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestWLRespondsToDistance(t *testing.T) {
	d, macros := chainWithPort(t, 4)
	bonds := Extract(d, DefaultParams())
	near := placement.New(d)
	far := placement.New(d)
	for i, m := range macros {
		near.Place(m, geom.Pt(int64(i)*12_000, 0))
		far.Place(m, geom.Pt(int64(i)*45_000, int64(i%2)*80_000))
	}
	if WL(near, bonds) >= WL(far, bonds) {
		t.Errorf("near WL %v >= far WL %v", WL(near, bonds), WL(far, bonds))
	}
}
