// Package metrics computes the evaluation quantities the paper reports:
// wirelength in meters, geometric means for table aggregation, and the
// standard-cell density maps of Fig. 9.
package metrics

import (
	"math"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/placement"
)

// DBUPerMeter converts the synthetic library's 1 nm DBU to meters.
const DBUPerMeter = 1e9

// WirelengthMeters returns the total HPWL of a placement in meters.
func WirelengthMeters(pl *placement.Placement) float64 {
	return float64(pl.TotalHPWL()) / DBUPerMeter
}

// GeoMean returns the geometric mean of positive values; zero for empty
// input. The paper uses geometric means "to reduce sensitivity to extreme
// values".
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var logSum float64
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vals)))
}

// DensityMap is a standard-cell area density grid (Fig. 9): Cells holds
// per-bin standard-cell utilization (cell area / usable bin area), and
// Macro marks bins majorly covered by macros.
type DensityMap struct {
	Bins  int
	Cells []float64
	Macro []bool
}

// At returns the utilization at a bin coordinate.
func (m *DensityMap) At(bx, by int) float64 { return m.Cells[by*m.Bins+bx] }

// IsMacro reports whether a bin is macro-covered.
func (m *DensityMap) IsMacro(bx, by int) bool { return m.Macro[by*m.Bins+bx] }

// Peak returns the maximum standard-cell utilization over non-macro bins.
func (m *DensityMap) Peak() float64 {
	peak := 0.0
	for i, v := range m.Cells {
		if !m.Macro[i] && v > peak {
			peak = v
		}
	}
	return peak
}

// Density builds the standard-cell density map of a placed design.
func Density(pl *placement.Placement, bins int) *DensityMap {
	if bins <= 0 {
		bins = 32
	}
	d := pl.D
	m := &DensityMap{
		Bins:  bins,
		Cells: make([]float64, bins*bins),
		Macro: make([]bool, bins*bins),
	}
	die := d.Die
	binArea := make([]float64, bins*bins)
	macroArea := make([]float64, bins*bins)
	for by := 0; by < bins; by++ {
		for bx := 0; bx < bins; bx++ {
			binArea[by*bins+bx] = float64(binRect(die, bins, bx, by).Area())
		}
	}
	for _, mc := range d.Macros() {
		if !pl.Placed[mc] {
			continue
		}
		mr := pl.Rect(mc)
		x0, y0 := binIndex(die, bins, mr.X, mr.Y)
		x1, y1 := binIndex(die, bins, mr.X2(), mr.Y2())
		for by := y0; by <= y1; by++ {
			for bx := x0; bx <= x1; bx++ {
				macroArea[by*bins+bx] += float64(binRect(die, bins, bx, by).Intersect(mr).Area())
			}
		}
	}
	for i := range macroArea {
		if binArea[i] > 0 && macroArea[i]/binArea[i] > 0.5 {
			m.Macro[i] = true
		}
	}
	for i := range d.Cells {
		id := netlist.CellID(i)
		c := d.Cell(id)
		if c.Kind != netlist.KindComb && c.Kind != netlist.KindFlop {
			continue
		}
		if !pl.Placed[id] {
			continue
		}
		bx, by := binIndex(die, bins, pl.Center(id).X, pl.Center(id).Y)
		m.Cells[by*bins+bx] += float64(c.Area())
	}
	for i := range m.Cells {
		usable := binArea[i] - macroArea[i]
		if usable > 1 {
			m.Cells[i] /= usable
		} else {
			m.Cells[i] = 0
		}
	}
	return m
}

func binRect(die geom.Rect, n, bx, by int) geom.Rect {
	x0 := die.X + die.W*int64(bx)/int64(n)
	x1 := die.X + die.W*int64(bx+1)/int64(n)
	y0 := die.Y + die.H*int64(by)/int64(n)
	y1 := die.Y + die.H*int64(by+1)/int64(n)
	return geom.RectXYWH(x0, y0, x1-x0, y1-y0)
}

func binIndex(die geom.Rect, n int, x, y int64) (int, int) {
	bx := int((x - die.X) * int64(n) / maxi64(die.W, 1))
	by := int((y - die.Y) * int64(n) / maxi64(die.H, 1))
	if bx < 0 {
		bx = 0
	}
	if bx >= n {
		bx = n - 1
	}
	if by < 0 {
		by = 0
	}
	if by >= n {
		by = n - 1
	}
	return bx, by
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
