package metrics

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/placement"
)

func TestWirelengthMeters(t *testing.T) {
	b := netlist.NewBuilder("wl")
	b.SetDie(geom.RectXYWH(0, 0, 10_000_000, 10_000_000))
	m1 := b.AddMacro("m1", 100, 100, "")
	m2 := b.AddMacro("m2", 100, 100, "")
	b.Wire("n", m1, m2)
	d := b.MustBuild()
	pl := placement.New(d)
	pl.Place(m1, geom.Pt(0, 0))
	pl.Place(m2, geom.Pt(1_000_000, 0)) // 1 mm apart (center to center)
	got := WirelengthMeters(pl)
	if math.Abs(got-0.001) > 1e-9 {
		t.Errorf("WL = %v m, want 0.001", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{5}); got != 5 {
		t.Errorf("GeoMean(5) = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	if got := GeoMean([]float64{1, 0}); got != 0 {
		t.Errorf("GeoMean with zero = %v", got)
	}
	// Less sensitive to outliers than the arithmetic mean.
	gm := GeoMean([]float64{1, 1, 100})
	if gm >= 34 {
		t.Errorf("GeoMean(1,1,100) = %v, want << arithmetic mean 34", gm)
	}
}

func TestDensityMap(t *testing.T) {
	b := netlist.NewBuilder("dm")
	b.SetDie(geom.RectXYWH(0, 0, 64_000, 64_000))
	mac := b.AddMacro("mac", 16_000, 16_000, "")
	var cells []netlist.CellID
	for i := 0; i < 64; i++ {
		cells = append(cells, b.AddComb(fmt.Sprintf("c%d", i), 1_000_000, ""))
	}
	d := b.MustBuild()
	pl := placement.New(d)
	pl.Place(mac, geom.Pt(0, 0)) // lower-left quadrant corner
	// All cells in the upper-right corner bin region.
	for _, c := range cells {
		pl.Place(c, geom.Pt(60_000, 60_000))
	}
	m := Density(pl, 8)

	if !m.IsMacro(0, 0) {
		t.Error("macro bin not marked")
	}
	if m.IsMacro(7, 7) {
		t.Error("cell bin wrongly marked as macro")
	}
	// Upper-right bin is hot.
	if m.At(7, 7) <= m.At(4, 4) {
		t.Errorf("hot bin %v <= empty bin %v", m.At(7, 7), m.At(4, 4))
	}
	if m.Peak() != m.At(7, 7) {
		t.Errorf("Peak = %v, want %v", m.Peak(), m.At(7, 7))
	}
}

func TestDensityIgnoresMacroAreaInCells(t *testing.T) {
	b := netlist.NewBuilder("dm2")
	b.SetDie(geom.RectXYWH(0, 0, 10_000, 10_000))
	mac := b.AddMacro("mac", 9_000, 9_000, "")
	d := b.MustBuild()
	pl := placement.New(d)
	pl.Place(mac, geom.Pt(500, 500))
	m := Density(pl, 4)
	for by := 0; by < 4; by++ {
		for bx := 0; bx < 4; bx++ {
			if m.At(bx, by) != 0 {
				t.Errorf("bin %d,%d has cell density %v with no std cells", bx, by, m.At(bx, by))
			}
		}
	}
}
