package netlist

import "strings"

// ArrayBase recognizes array-structured component names, the RTL-stage
// information the paper exploits to cluster flops and ports into multi-bit
// registers (§IV-D step 2). Two spellings are recognized, matching common
// synthesis-tool output:
//
//	name[17]   — bracketed bit index
//	name_17    — synthesized underscore suffix
//
// The base name keeps the full hierarchical prefix, so two equally named
// registers in different hierarchy levels never merge. ArrayBase returns
// the base name, the bit index and true; or the input, 0 and false when the
// name carries no recognizable index.
func ArrayBase(name string) (base string, bit int, ok bool) {
	if n := len(name); n >= 3 && name[n-1] == ']' {
		open := strings.LastIndexByte(name, '[')
		if open > 0 {
			if idx, ok := parseUint(name[open+1 : n-1]); ok {
				return name[:open], idx, true
			}
		}
	}
	if us := strings.LastIndexByte(name, '_'); us > 0 && us < len(name)-1 {
		if idx, ok := parseUint(name[us+1:]); ok {
			return name[:us], idx, true
		}
	}
	return name, 0, false
}

// parseUint parses a small non-negative decimal integer without allocation.
// It rejects empty strings, signs, and anything non-numeric.
func parseUint(s string) (int, bool) {
	if len(s) == 0 || len(s) > 7 {
		return 0, false
	}
	v := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int(c-'0')
	}
	return v, true
}
