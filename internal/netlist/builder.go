package netlist

import (
	"fmt"
	"strings"

	"repro/internal/geom"
)

// Builder incrementally constructs a Design. It is not safe for concurrent
// use. All Add* methods return stable IDs that remain valid in the built
// Design.
type Builder struct {
	d          Design
	hierByPath map[string]HierID
	netByName  map[string]NetID
	err        error
}

// NewBuilder returns a Builder for a design with the given name. The
// hierarchy root is created immediately.
func NewBuilder(name string) *Builder {
	b := &Builder{
		hierByPath: make(map[string]HierID),
		netByName:  make(map[string]NetID),
	}
	b.d.Name = name
	b.d.RowHeight = 140 // synthetic library default, in DBU
	b.d.Hier = append(b.d.Hier, HierNode{ID: 0, Parent: None})
	b.hierByPath[""] = 0
	return b
}

// SetDie sets the placement area.
func (b *Builder) SetDie(r geom.Rect) *Builder { b.d.Die = r; return b }

// SetRowHeight overrides the standard cell row height.
func (b *Builder) SetRowHeight(h int64) *Builder { b.d.RowHeight = h; return b }

// Hier returns (creating as needed) the hierarchy node for a "/"-separated
// path. The empty path is the root.
func (b *Builder) Hier(path string) HierID {
	if id, ok := b.hierByPath[path]; ok {
		return id
	}
	var parent HierID
	local := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		parent = b.Hier(path[:i])
		local = path[i+1:]
	} else {
		parent = 0
	}
	id := HierID(len(b.d.Hier))
	b.d.Hier = append(b.d.Hier, HierNode{ID: id, Name: local, Path: path, Parent: parent})
	b.d.Hier[parent].Children = append(b.d.Hier[parent].Children, id)
	b.hierByPath[path] = id
	return id
}

// AddCell adds a cell with an explicit outline under the hierarchy node for
// hierPath. The cell name should be the full hierarchical name.
func (b *Builder) AddCell(name string, kind CellKind, w, h int64, hierPath string) CellID {
	hid := b.Hier(hierPath)
	id := CellID(len(b.d.Cells))
	b.d.Cells = append(b.d.Cells, Cell{Name: name, Kind: kind, Width: w, Height: h, Hier: hid})
	b.d.Hier[hid].Cells = append(b.d.Hier[hid].Cells, id)
	return id
}

// AddComb adds a combinational cell with a footprint of the given area,
// snapped to the library row height.
func (b *Builder) AddComb(name string, area int64, hierPath string) CellID {
	w := area / b.d.RowHeight
	if w <= 0 {
		w = 1
	}
	return b.AddCell(name, KindComb, w, b.d.RowHeight, hierPath)
}

// AddFlop adds a single-bit register with a standard footprint.
func (b *Builder) AddFlop(name string, hierPath string) CellID {
	return b.AddCell(name, KindFlop, 4*b.d.RowHeight, b.d.RowHeight, hierPath)
}

// AddMacro adds a hard macro with the given outline.
func (b *Builder) AddMacro(name string, w, h int64, hierPath string) CellID {
	return b.AddCell(name, KindMacro, w, h, hierPath)
}

// AddPort adds a top-level port cell (zero outline) at the root level.
func (b *Builder) AddPort(name string) CellID {
	return b.AddCell(name, KindPort, 0, 0, "")
}

// SetPortPos fixes the die-boundary location of a port cell.
func (b *Builder) SetPortPos(id CellID, p geom.Point) *Builder {
	if b.d.portPos == nil {
		b.d.portPos = make(map[CellID]geom.Point)
	}
	b.d.portPos[id] = p
	return b
}

// NumCells returns the number of cells added so far.
func (b *Builder) NumCells() int { return len(b.d.Cells) }

// DrivenNet returns the first net the cell already drives, or None. It
// lets generators attach further sinks to an existing output net instead
// of giving a cell several output pins (real flops and gates drive one
// net with fanout).
func (b *Builder) DrivenNet(cell CellID) NetID {
	if cell < 0 || int(cell) >= len(b.d.Cells) {
		return None
	}
	for _, pid := range b.d.Cells[cell].Pins {
		if b.d.Pins[pid].Dir == DirOut {
			return b.d.Pins[pid].Net
		}
	}
	return None
}

// WireFanout attaches sinks to the net driven by driver, creating the net
// (with the given name) only if the driver drives nothing yet.
func (b *Builder) WireFanout(netName string, driver CellID, sinks ...CellID) NetID {
	n := b.DrivenNet(driver)
	if n == None {
		n = b.Net(netName)
		b.Connect(driver, n, DirOut)
	}
	for _, s := range sinks {
		b.Connect(s, n, DirIn)
	}
	return n
}

// Net returns (creating as needed) the net with the given name.
func (b *Builder) Net(name string) NetID {
	if id, ok := b.netByName[name]; ok {
		return id
	}
	id := NetID(len(b.d.Nets))
	b.d.Nets = append(b.d.Nets, Net{Name: name})
	b.netByName[name] = id
	return id
}

// Connect attaches cell to net with the given pin direction and a zero pin
// offset.
func (b *Builder) Connect(cell CellID, net NetID, dir PinDir) PinID {
	return b.ConnectAt(cell, net, dir, geom.Point{})
}

// ConnectAt attaches cell to net with an explicit pin offset within the
// cell outline (meaningful for macros).
func (b *Builder) ConnectAt(cell CellID, net NetID, dir PinDir, off geom.Point) PinID {
	if cell < 0 || int(cell) >= len(b.d.Cells) {
		b.fail(fmt.Errorf("netlist: Connect: cell %d out of range", cell))
		return None
	}
	if net < 0 || int(net) >= len(b.d.Nets) {
		b.fail(fmt.Errorf("netlist: Connect: net %d out of range", net))
		return None
	}
	id := PinID(len(b.d.Pins))
	b.d.Pins = append(b.d.Pins, Pin{Cell: cell, Net: net, Dir: dir, Offset: off})
	b.d.Cells[cell].Pins = append(b.d.Cells[cell].Pins, id)
	b.d.Nets[net].Pins = append(b.d.Nets[net].Pins, id)
	return id
}

// Wire is a convenience that creates (or reuses) a named net, connects the
// driver cell with DirOut and every sink with DirIn.
func (b *Builder) Wire(netName string, driver CellID, sinks ...CellID) NetID {
	n := b.Net(netName)
	b.Connect(driver, n, DirOut)
	for _, s := range sinks {
		b.Connect(s, n, DirIn)
	}
	return n
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build freezes the design, validates it and returns it. The Builder must
// not be used afterwards.
func (b *Builder) Build() (*Design, error) {
	if b.err != nil {
		return nil, b.err
	}
	d := b.d
	if d.Die.Empty() {
		// Default die: square with ~60% utilization of the total cell area.
		st := d.Stats()
		side := isqrt(st.CellArea*100/60) + 1
		d.Die = geom.RectXYWH(0, 0, side, side)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// MustBuild is Build for tests and generators with trusted input.
func (b *Builder) MustBuild() *Design {
	d, err := b.Build()
	if err != nil {
		panic(err)
	}
	return d
}

func isqrt(v int64) int64 {
	if v <= 0 {
		return 0
	}
	x := int64(1)
	for x*x < v {
		x <<= 1
	}
	for {
		y := (x + v/x) / 2
		if y >= x {
			return x
		}
		x = y
	}
}
