package netlist

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/geom"
)

// The JSON interchange format: a compact, self-contained description of a
// hierarchical netlist that round-trips through MarshalJSON/ReadJSON. It is
// the scriptable alternative to the Verilog front end: cells carry their
// kind, outline, hierarchy path and pin list; nets are implied by the pin
// records.
type jsonDesign struct {
	Name      string     `json:"name"`
	Die       [4]int64   `json:"die"` // x, y, w, h
	RowHeight int64      `json:"row_height"`
	Cells     []jsonCell `json:"cells"`
	Nets      []string   `json:"nets"`
	Pins      []jsonPin  `json:"pins"`
	PortPos   [][3]int64 `json:"port_pos,omitempty"` // cell, x, y
}

type jsonCell struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	W    int64  `json:"w,omitempty"`
	H    int64  `json:"h,omitempty"`
	Hier string `json:"hier,omitempty"`
}

type jsonPin struct {
	Cell int32  `json:"cell"`
	Net  int32  `json:"net"`
	Dir  string `json:"dir"`
	OffX int64  `json:"ox,omitempty"`
	OffY int64  `json:"oy,omitempty"`
}

// WriteJSON serializes a design to its JSON interchange form.
func WriteJSON(w io.Writer, d *Design) error {
	jd := jsonDesign{
		Name:      d.Name,
		Die:       [4]int64{d.Die.X, d.Die.Y, d.Die.W, d.Die.H},
		RowHeight: d.RowHeight,
	}
	for i := range d.Cells {
		c := &d.Cells[i]
		jd.Cells = append(jd.Cells, jsonCell{
			Name: c.Name,
			Kind: c.Kind.String(),
			W:    c.Width,
			H:    c.Height,
			Hier: d.Node(c.Hier).Path,
		})
	}
	for i := range d.Nets {
		jd.Nets = append(jd.Nets, d.Nets[i].Name)
	}
	for i := range d.Pins {
		p := &d.Pins[i]
		jd.Pins = append(jd.Pins, jsonPin{
			Cell: int32(p.Cell), Net: int32(p.Net), Dir: p.Dir.String(),
			OffX: p.Offset.X, OffY: p.Offset.Y,
		})
	}
	for i := range d.Cells {
		id := CellID(i)
		if d.Cells[i].Kind == KindPort && d.HasPortPos(id) {
			pp := d.PortPos(id)
			jd.PortPos = append(jd.PortPos, [3]int64{int64(id), pp.X, pp.Y})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&jd)
}

// ReadJSON parses the JSON interchange form back into a validated Design.
func ReadJSON(r io.Reader) (*Design, error) {
	var jd jsonDesign
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jd); err != nil {
		return nil, fmt.Errorf("netlist: json: %w", err)
	}
	b := NewBuilder(jd.Name)
	b.SetDie(geom.RectXYWH(jd.Die[0], jd.Die[1], jd.Die[2], jd.Die[3]))
	if jd.RowHeight > 0 {
		b.SetRowHeight(jd.RowHeight)
	}
	for i, jc := range jd.Cells {
		kind, err := parseKind(jc.Kind)
		if err != nil {
			return nil, fmt.Errorf("netlist: json cell %d: %w", i, err)
		}
		b.AddCell(jc.Name, kind, jc.W, jc.H, jc.Hier)
	}
	netIDs := make([]NetID, len(jd.Nets))
	for i, name := range jd.Nets {
		netIDs[i] = b.Net(name)
	}
	for i, jp := range jd.Pins {
		if int(jp.Net) >= len(netIDs) || jp.Net < 0 {
			return nil, fmt.Errorf("netlist: json pin %d: net %d out of range", i, jp.Net)
		}
		dir := DirIn
		if jp.Dir == "out" {
			dir = DirOut
		}
		b.ConnectAt(CellID(jp.Cell), netIDs[jp.Net], dir, geom.Pt(jp.OffX, jp.OffY))
	}
	for _, pp := range jd.PortPos {
		b.SetPortPos(CellID(pp[0]), geom.Pt(pp[1], pp[2]))
	}
	return b.Build()
}

func parseKind(s string) (CellKind, error) {
	switch s {
	case "comb":
		return KindComb, nil
	case "flop":
		return KindFlop, nil
	case "macro":
		return KindMacro, nil
	case "port":
		return KindPort, nil
	}
	return 0, fmt.Errorf("unknown cell kind %q", s)
}
