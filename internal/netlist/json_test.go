package netlist

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestJSONRoundTrip(t *testing.T) {
	b := NewBuilder("jt")
	b.SetDie(geom.RectXYWH(0, 0, 50_000, 40_000))
	b.SetRowHeight(1400)
	in := b.AddPort("in[0]")
	b.SetPortPos(in, geom.Pt(0, 20_000))
	g := b.AddComb("g", 2000, "")
	r := b.AddFlop("u/r[0]", "u")
	m := b.AddMacro("u/mem", 9_000, 6_000, "u")
	b.Wire("n0", in, g)
	b.Wire("n1", g, r)
	n2 := b.Net("n2")
	b.Connect(r, n2, DirOut)
	b.ConnectAt(m, n2, DirIn, geom.Pt(0, 3_000))
	d := b.MustBuild()

	var buf bytes.Buffer
	if err := WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if d2.Name != d.Name || d2.Die != d.Die || d2.RowHeight != d.RowHeight {
		t.Errorf("header mismatch: %s %v %d", d2.Name, d2.Die, d2.RowHeight)
	}
	s1, s2 := d.Stats(), d2.Stats()
	if s1 != s2 {
		t.Errorf("stats mismatch: %+v vs %+v", s1, s2)
	}
	for i := range d.Cells {
		if d.Cells[i].Name != d2.Cells[i].Name || d.Cells[i].Kind != d2.Cells[i].Kind {
			t.Fatalf("cell %d mismatch", i)
		}
	}
	// Hierarchy preserved.
	if d2.NodeByPath("u") == None {
		t.Error("hierarchy node lost")
	}
	// Pin offsets preserved.
	m2 := d2.CellByName("u/mem")
	found := false
	for _, pid := range d2.Cell(m2).Pins {
		if d2.Pin(pid).Offset == geom.Pt(0, 3_000) {
			found = true
		}
	}
	if !found {
		t.Error("macro pin offset lost")
	}
	// Port position preserved.
	in2 := d2.CellByName("in[0]")
	if d2.PortPos(in2) != geom.Pt(0, 20_000) {
		t.Errorf("port pos = %v", d2.PortPos(in2))
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"garbage", "{not json", "json"},
		{"bad kind", `{"name":"x","die":[0,0,10,10],"cells":[{"name":"c","kind":"gizmo"}],"nets":[],"pins":[]}`, "kind"},
		{"bad net ref", `{"name":"x","die":[0,0,10,10],"cells":[{"name":"c","kind":"comb","w":1,"h":1}],"nets":[],"pins":[{"cell":0,"net":5,"dir":"in"}]}`, "range"},
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c.src)); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.frag)
		}
	}
}

func TestJSONDeterministicOutput(t *testing.T) {
	d := buildTiny(t)
	var a, b bytes.Buffer
	if err := WriteJSON(&a, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, d); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("JSON output nondeterministic")
	}
}
