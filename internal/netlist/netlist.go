// Package netlist defines the hierarchical netlist model consumed by the
// HiDaP flow: the bit-level connectivity graph Gnet of the paper, annotated
// with the RTL hierarchy tree and array-structured component names.
//
// The model is flat at the cell level — every cell carries the hierarchy
// node it belongs to — which keeps graph traversals cache-friendly while
// preserving the full hierarchy tree that drives multi-level declustering.
// All containers are index-based slices so traversal order is deterministic.
package netlist

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// CellKind classifies the vertices of Gnet (macros M, ports P, sequential
// cells F and combinational cells C in the paper's notation).
type CellKind uint8

const (
	// KindComb is a combinational standard cell.
	KindComb CellKind = iota
	// KindFlop is a single-bit sequential element (register bit).
	KindFlop
	// KindMacro is a hard macro, typically a memory.
	KindMacro
	// KindPort is a top-level design port, modeled as a fixed cell on the
	// die boundary.
	KindPort
)

var kindNames = [...]string{"comb", "flop", "macro", "port"}

func (k CellKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("CellKind(%d)", uint8(k))
}

// PinDir is the direction of a pin relative to its cell.
type PinDir uint8

const (
	// DirIn marks a pin through which the net drives the cell.
	DirIn PinDir = iota
	// DirOut marks a pin through which the cell drives the net.
	DirOut
)

func (d PinDir) String() string {
	if d == DirIn {
		return "in"
	}
	return "out"
}

// CellID indexes Design.Cells. NetID indexes Design.Nets. PinID indexes
// Design.Pins. HierID indexes Design.Hier. All are -1 when invalid.
type (
	CellID int32
	NetID  int32
	PinID  int32
	HierID int32
)

// None is the invalid value for all ID types.
const None = -1

// Cell is one vertex of Gnet.
type Cell struct {
	Name string   // full hierarchical name, e.g. "top/sub0/pipe_r[3]"
	Kind CellKind // vertex class
	// Width and Height are the library outline. Macros have their real
	// dimensions; standard cells have a footprint derived from their area
	// and the row height; ports are zero-sized.
	Width, Height int64
	Hier          HierID // hierarchy node owning this cell
	// Pins lists the cell's pins (indices into Design.Pins), fixed at Build.
	Pins []PinID
}

// Area returns the outline area of the cell.
func (c *Cell) Area() int64 { return c.Width * c.Height }

// Net is one bit-level net.
type Net struct {
	Name string
	// Pins lists the connections of the net (indices into Design.Pins).
	Pins []PinID
}

// Pin connects a cell to a net.
type Pin struct {
	Cell CellID
	Net  NetID
	Dir  PinDir
	// Offset is the pin location within the cell's library outline. It is
	// meaningful for macros (used by the flipping post-process) and zero
	// for standard cells and ports.
	Offset geom.Point
}

// HierNode is one level of the RTL hierarchy tree (a vertex of HT).
type HierNode struct {
	ID       HierID
	Name     string // local instance name ("" for the root)
	Path     string // full path from the root, "/"-separated
	Parent   HierID // None for the root
	Children []HierID
	Cells    []CellID // cells directly at this level (not in sub-levels)
}

// Design is a frozen netlist: Gnet plus the hierarchy tree HT.
type Design struct {
	Name string
	// Die is the placement area. Its origin is normally (0, 0).
	Die geom.Rect
	// RowHeight is the standard cell row height of the synthetic library.
	RowHeight int64

	Cells []Cell
	Nets  []Net
	Pins  []Pin
	Hier  []HierNode // Hier[0] is the root

	// portPos holds the fixed die-boundary locations of port cells.
	portPos map[CellID]geom.Point
}

// PortPos returns the fixed location of a port cell. Ports without an
// assigned location report the center of the die's left edge.
func (d *Design) PortPos(id CellID) geom.Point {
	if p, ok := d.portPos[id]; ok {
		return p
	}
	return geom.Pt(d.Die.X, d.Die.Y+d.Die.H/2)
}

// HasPortPos reports whether the port has an explicit location.
func (d *Design) HasPortPos(id CellID) bool {
	_, ok := d.portPos[id]
	return ok
}

// Root returns the hierarchy root node ID.
func (d *Design) Root() HierID { return 0 }

// Cell returns the cell with the given ID.
func (d *Design) Cell(id CellID) *Cell { return &d.Cells[id] }

// Net returns the net with the given ID.
func (d *Design) Net(id NetID) *Net { return &d.Nets[id] }

// Pin returns the pin with the given ID.
func (d *Design) Pin(id PinID) *Pin { return &d.Pins[id] }

// Node returns the hierarchy node with the given ID.
func (d *Design) Node(id HierID) *HierNode { return &d.Hier[id] }

// NumCells returns the number of cells (including ports).
func (d *Design) NumCells() int { return len(d.Cells) }

// Macros returns the IDs of all macro cells, in ID order.
func (d *Design) Macros() []CellID {
	var out []CellID
	for i := range d.Cells {
		if d.Cells[i].Kind == KindMacro {
			out = append(out, CellID(i))
		}
	}
	return out
}

// Ports returns the IDs of all port cells, in ID order.
func (d *Design) Ports() []CellID {
	var out []CellID
	for i := range d.Cells {
		if d.Cells[i].Kind == KindPort {
			out = append(out, CellID(i))
		}
	}
	return out
}

// CellByName returns the ID of the uniquely named cell, or None.
// It is O(n) and intended for tests and tools, not inner loops.
func (d *Design) CellByName(name string) CellID {
	for i := range d.Cells {
		if d.Cells[i].Name == name {
			return CellID(i)
		}
	}
	return None
}

// NodeByPath returns the hierarchy node with the given path, or None.
func (d *Design) NodeByPath(path string) HierID {
	for i := range d.Hier {
		if d.Hier[i].Path == path {
			return HierID(i)
		}
	}
	return None
}

// SubtreeCells appends to dst the IDs of all cells under node n (inclusive)
// and returns the extended slice. Order is deterministic (pre-order).
func (d *Design) SubtreeCells(n HierID, dst []CellID) []CellID {
	node := d.Node(n)
	dst = append(dst, node.Cells...)
	for _, c := range node.Children {
		dst = d.SubtreeCells(c, dst)
	}
	return dst
}

// Stats summarizes the design (the Gnet row of Table I).
type Stats struct {
	Cells      int // all Gnet vertices
	Comb       int
	Flops      int
	MacroCells int
	PortCells  int
	Nets       int
	Pins       int
	HierNodes  int
	CellArea   int64 // total area of macros + standard cells
	MacroArea  int64
}

// Stats computes summary statistics for the design.
func (d *Design) Stats() Stats {
	s := Stats{
		Cells:     len(d.Cells),
		Nets:      len(d.Nets),
		Pins:      len(d.Pins),
		HierNodes: len(d.Hier),
	}
	for i := range d.Cells {
		c := &d.Cells[i]
		switch c.Kind {
		case KindComb:
			s.Comb++
		case KindFlop:
			s.Flops++
		case KindMacro:
			s.MacroCells++
			s.MacroArea += c.Area()
		case KindPort:
			s.PortCells++
		}
		if c.Kind != KindPort {
			s.CellArea += c.Area()
		}
	}
	return s
}

// Validate checks structural invariants: pin back-references, hierarchy
// tree shape, and that every net has at most one driver. It returns the
// first problem found.
func (d *Design) Validate() error {
	if len(d.Hier) == 0 {
		return fmt.Errorf("netlist: design %q has no hierarchy root", d.Name)
	}
	if d.Hier[0].Parent != None {
		return fmt.Errorf("netlist: root has parent %d", d.Hier[0].Parent)
	}
	for i := range d.Pins {
		p := &d.Pins[i]
		if p.Cell < 0 || int(p.Cell) >= len(d.Cells) {
			return fmt.Errorf("netlist: pin %d references cell %d out of range", i, p.Cell)
		}
		if p.Net < 0 || int(p.Net) >= len(d.Nets) {
			return fmt.Errorf("netlist: pin %d references net %d out of range", i, p.Net)
		}
	}
	for i := range d.Cells {
		for _, pid := range d.Cells[i].Pins {
			if d.Pins[pid].Cell != CellID(i) {
				return fmt.Errorf("netlist: cell %d pin list references foreign pin %d", i, pid)
			}
		}
	}
	for i := range d.Nets {
		drivers := 0
		for _, pid := range d.Nets[i].Pins {
			if d.Pins[pid].Net != NetID(i) {
				return fmt.Errorf("netlist: net %d pin list references foreign pin %d", i, pid)
			}
			if d.Pins[pid].Dir == DirOut {
				drivers++
			}
		}
		if drivers > 1 {
			return fmt.Errorf("netlist: net %q has %d drivers", d.Nets[i].Name, drivers)
		}
	}
	for i := range d.Hier {
		n := &d.Hier[i]
		if i != 0 {
			if n.Parent < 0 || int(n.Parent) >= len(d.Hier) {
				return fmt.Errorf("netlist: node %d has invalid parent", i)
			}
			found := false
			for _, c := range d.Hier[n.Parent].Children {
				if c == HierID(i) {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("netlist: node %d missing from parent's children", i)
			}
		}
		for _, cid := range n.Cells {
			if d.Cells[cid].Hier != HierID(i) {
				return fmt.Errorf("netlist: node %d lists cell %d owned by node %d", i, cid, d.Cells[cid].Hier)
			}
		}
	}
	return nil
}

// SortedNetNames returns all net names sorted; useful for stable output.
func (d *Design) SortedNetNames() []string {
	names := make([]string, len(d.Nets))
	for i := range d.Nets {
		names[i] = d.Nets[i].Name
	}
	sort.Strings(names)
	return names
}
