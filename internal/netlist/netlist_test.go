package netlist

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// buildTiny constructs a small design used by several tests:
//
//	port in -> comb g1 -> flop r[0], r[1] -> macro m1 (in sub "u")
func buildTiny(t *testing.T) *Design {
	t.Helper()
	b := NewBuilder("tiny")
	b.SetDie(geom.RectXYWH(0, 0, 10000, 10000))
	in := b.AddPort("in")
	g1 := b.AddComb("g1", 500, "")
	r0 := b.AddFlop("u/r[0]", "u")
	r1 := b.AddFlop("u/r[1]", "u")
	m1 := b.AddMacro("u/m1", 2000, 1000, "u")
	b.Wire("n_in", in, g1)
	b.Wire("n_g1", g1, r0, r1)
	b.Wire("n_r0", r0, m1)
	b.Wire("n_r1", r1, m1)
	d, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d
}

func TestBuilderBasics(t *testing.T) {
	d := buildTiny(t)
	if d.NumCells() != 5 {
		t.Errorf("NumCells = %d, want 5", d.NumCells())
	}
	if len(d.Nets) != 4 {
		t.Errorf("Nets = %d, want 4", len(d.Nets))
	}
	st := d.Stats()
	if st.Comb != 1 || st.Flops != 2 || st.MacroCells != 1 || st.PortCells != 1 {
		t.Errorf("Stats = %+v", st)
	}
	if st.MacroArea != 2000*1000 {
		t.Errorf("MacroArea = %d", st.MacroArea)
	}
	if st.Pins != 9 { // 2 + 3 + 2 + 2 across the four nets
		t.Errorf("Pins = %d, want 9", st.Pins)
	}
}

func TestHierarchyConstruction(t *testing.T) {
	b := NewBuilder("h")
	b.AddComb("a/b/c/x", 100, "a/b/c")
	b.AddComb("a/b/y", 100, "a/b")
	b.AddComb("z", 100, "")
	d := b.MustBuild()

	if len(d.Hier) != 4 { // root, a, a/b, a/b/c
		t.Fatalf("HierNodes = %d, want 4", len(d.Hier))
	}
	abc := d.NodeByPath("a/b/c")
	if abc == None {
		t.Fatal("node a/b/c missing")
	}
	if d.Node(abc).Name != "c" {
		t.Errorf("local name = %q, want c", d.Node(abc).Name)
	}
	ab := d.NodeByPath("a/b")
	if d.Node(abc).Parent != ab {
		t.Errorf("parent of a/b/c is %d, want %d", d.Node(abc).Parent, ab)
	}
	// Subtree cells of "a" = x and y.
	cells := d.SubtreeCells(d.NodeByPath("a"), nil)
	if len(cells) != 2 {
		t.Errorf("SubtreeCells(a) = %v, want 2 cells", cells)
	}
}

func TestHierIdempotent(t *testing.T) {
	b := NewBuilder("h")
	id1 := b.Hier("x/y")
	id2 := b.Hier("x/y")
	if id1 != id2 {
		t.Errorf("Hier not idempotent: %d vs %d", id1, id2)
	}
	d := b.MustBuild()
	if len(d.Hier) != 3 {
		t.Errorf("HierNodes = %d, want 3", len(d.Hier))
	}
}

func TestValidateCatchesMultipleDrivers(t *testing.T) {
	b := NewBuilder("bad")
	c1 := b.AddComb("c1", 100, "")
	c2 := b.AddComb("c2", 100, "")
	n := b.Net("n")
	b.Connect(c1, n, DirOut)
	b.Connect(c2, n, DirOut)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build should reject double-driven net")
	} else if !strings.Contains(err.Error(), "drivers") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestConnectRangeChecks(t *testing.T) {
	b := NewBuilder("bad")
	n := b.Net("n")
	b.Connect(CellID(99), n, DirIn)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build should surface Connect range error")
	}
}

func TestDefaultDie(t *testing.T) {
	b := NewBuilder("d")
	b.AddMacro("m", 1000, 1000, "")
	d := b.MustBuild()
	if d.Die.Empty() {
		t.Fatal("default die not assigned")
	}
	if d.Die.Area() < 1000*1000 {
		t.Errorf("die area %d smaller than cell area", d.Die.Area())
	}
}

func TestLookups(t *testing.T) {
	d := buildTiny(t)
	id := d.CellByName("u/m1")
	if id == None {
		t.Fatal("CellByName failed")
	}
	if d.Cell(id).Kind != KindMacro {
		t.Errorf("kind = %v, want macro", d.Cell(id).Kind)
	}
	if d.CellByName("nope") != None {
		t.Error("CellByName should return None for unknown cells")
	}
	if got := d.Macros(); len(got) != 1 || got[0] != id {
		t.Errorf("Macros = %v", got)
	}
	if got := d.Ports(); len(got) != 1 {
		t.Errorf("Ports = %v", got)
	}
}

func TestPinBackReferences(t *testing.T) {
	d := buildTiny(t)
	for i := range d.Cells {
		for _, pid := range d.Cells[i].Pins {
			if d.Pin(pid).Cell != CellID(i) {
				t.Fatalf("pin %d back-reference broken", pid)
			}
		}
	}
	for i := range d.Nets {
		for _, pid := range d.Nets[i].Pins {
			if d.Pin(pid).Net != NetID(i) {
				t.Fatalf("net pin %d back-reference broken", pid)
			}
		}
	}
}

func TestWireDirections(t *testing.T) {
	d := buildTiny(t)
	n := d.Nets[0] // n_in: in -> g1
	outs, ins := 0, 0
	for _, pid := range n.Pins {
		if d.Pin(pid).Dir == DirOut {
			outs++
		} else {
			ins++
		}
	}
	if outs != 1 || ins != 1 {
		t.Errorf("n_in drivers=%d sinks=%d", outs, ins)
	}
}

func TestArrayBase(t *testing.T) {
	cases := []struct {
		name string
		base string
		bit  int
		ok   bool
	}{
		{"data[7]", "data", 7, true},
		{"top/u1/pipe_r[0]", "top/u1/pipe_r", 0, true},
		{"reg_12", "reg", 12, true},
		{"a/b/bus_3", "a/b/bus", 3, true},
		{"plain", "plain", 0, false},
		{"x[abc]", "x[abc]", 0, false},
		{"trailing_", "trailing_", 0, false},
		{"_7", "_7", 0, false},                   // no base before underscore
		{"[5]", "[5]", 0, false},                 // no base before bracket
		{"n[12345678]", "n[12345678]", 0, false}, // index too long
		{"mixed_9]", "mixed", 9, false},          // malformed bracket falls to underscore? no: ends with ']' but no '['
	}
	for _, c := range cases {
		base, bit, ok := ArrayBase(c.name)
		if c.ok {
			if !ok || base != c.base || bit != c.bit {
				t.Errorf("ArrayBase(%q) = (%q,%d,%v), want (%q,%d,true)", c.name, base, bit, ok, c.base, c.bit)
			}
		} else if ok && c.name != "mixed_9]" {
			t.Errorf("ArrayBase(%q) = (%q,%d,%v), want not-ok", c.name, base, bit, ok)
		}
	}
}

func TestArrayBaseGroupsBits(t *testing.T) {
	names := []string{"u/r[0]", "u/r[1]", "u/r[2]", "u/r[31]"}
	bases := map[string]int{}
	for _, n := range names {
		base, _, ok := ArrayBase(n)
		if !ok {
			t.Fatalf("ArrayBase(%q) failed", n)
		}
		bases[base]++
	}
	if len(bases) != 1 || bases["u/r"] != 4 {
		t.Errorf("grouping failed: %v", bases)
	}
}

func TestStatsCellArea(t *testing.T) {
	d := buildTiny(t)
	st := d.Stats()
	wantMacro := int64(2000 * 1000)
	if st.CellArea <= wantMacro {
		t.Errorf("CellArea = %d, want > macro area %d", st.CellArea, wantMacro)
	}
}

func TestSortedNetNames(t *testing.T) {
	d := buildTiny(t)
	names := d.SortedNetNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestKindAndDirStrings(t *testing.T) {
	if KindMacro.String() != "macro" || KindComb.String() != "comb" {
		t.Error("CellKind.String broken")
	}
	if DirIn.String() != "in" || DirOut.String() != "out" {
		t.Error("PinDir.String broken")
	}
}

// TestArrayBaseQuick: bracket-form round trip for arbitrary lowercase bases.
func TestArrayBaseQuick(t *testing.T) {
	f := func(raw []byte, bit uint8) bool {
		base := make([]byte, 0, len(raw)+1)
		base = append(base, 'a')
		for _, c := range raw {
			base = append(base, 'a'+c%26)
		}
		name := fmt.Sprintf("%s[%d]", base, bit)
		gotBase, gotBit, ok := ArrayBase(name)
		return ok && gotBase == string(base) && gotBit == int(bit)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBuilderQuickCellCounts: builder cell accounting matches stats for
// arbitrary mixes of cell kinds.
func TestBuilderQuickCellCounts(t *testing.T) {
	f := func(comb, flops, macros uint8) bool {
		b := NewBuilder("q")
		for i := 0; i < int(comb%16); i++ {
			b.AddComb(fmt.Sprintf("c%d", i), 100, "")
		}
		for i := 0; i < int(flops%16); i++ {
			b.AddFlop(fmt.Sprintf("f%d", i), "")
		}
		for i := 0; i < int(macros%8); i++ {
			b.AddMacro(fmt.Sprintf("m%d", i), 100, 100, "")
		}
		d := b.MustBuild()
		st := d.Stats()
		return st.Comb == int(comb%16) && st.Flops == int(flops%16) &&
			st.MacroCells == int(macros%8) && len(d.Macros()) == st.MacroCells
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
