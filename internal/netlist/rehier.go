package netlist

import (
	"fmt"
	"strings"
)

// NewHierNode describes one node of a replacement hierarchy for ReplaceHier.
// Index 0 must be the root (empty Name, Parent == None); every other node
// names its parent by index into the same slice. Parents may appear before
// or after their children: ReplaceHier does not require builder ordering.
type NewHierNode struct {
	Name   string
	Parent HierID
}

// HierTopo returns the hierarchy node IDs in topological order: the root
// first, every parent before its children, siblings in Children order.
// Unlike a plain index sweep it is correct for any valid tree, including
// rebuilt hierarchies (ReplaceHier) whose child IDs may be smaller than
// their parents'.
func (d *Design) HierTopo() []HierID {
	order := make([]HierID, 0, len(d.Hier))
	stack := make([]HierID, 0, 16)
	stack = append(stack, 0)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, n)
		ch := d.Hier[n].Children
		for i := len(ch) - 1; i >= 0; i-- {
			stack = append(stack, ch[i])
		}
	}
	return order
}

// ReplaceHier returns a design that shares d's cells, nets and pins but is
// owned by a freshly synthesized hierarchy tree. nodes[0] is the root;
// cellNode assigns every cell (by CellID) to its owning node. Cell, net and
// pin IDs are unchanged, so placements, graphs and caches keyed by those
// IDs remain meaningful for the returned design. The input design is not
// modified.
//
// Node numbering is taken verbatim from the nodes slice — it is NOT
// renumbered into builder (parent-before-child) order. Consumers of the
// hierarchy must therefore traverse via Parent/Children (see HierTopo)
// rather than assume ID ordering.
func ReplaceHier(d *Design, nodes []NewHierNode, cellNode []HierID) (*Design, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("netlist: ReplaceHier: empty node list")
	}
	if nodes[0].Parent != None || nodes[0].Name != "" {
		return nil, fmt.Errorf("netlist: ReplaceHier: nodes[0] must be the unnamed root")
	}
	if len(cellNode) != len(d.Cells) {
		return nil, fmt.Errorf("netlist: ReplaceHier: cellNode has %d entries for %d cells", len(cellNode), len(d.Cells))
	}

	nd := &Design{
		Name:      d.Name,
		Die:       d.Die,
		RowHeight: d.RowHeight,
		Nets:      d.Nets,
		Pins:      d.Pins,
		portPos:   d.portPos,
	}
	nd.Cells = make([]Cell, len(d.Cells))
	copy(nd.Cells, d.Cells)

	nd.Hier = make([]HierNode, len(nodes))
	for i, n := range nodes {
		if i != 0 {
			if n.Parent < 0 || int(n.Parent) >= len(nodes) || int(n.Parent) == i {
				return nil, fmt.Errorf("netlist: ReplaceHier: node %d has invalid parent %d", i, n.Parent)
			}
			if n.Name == "" || strings.ContainsRune(n.Name, '/') {
				return nil, fmt.Errorf("netlist: ReplaceHier: node %d has invalid name %q", i, n.Name)
			}
		}
		nd.Hier[i] = HierNode{ID: HierID(i), Name: n.Name, Parent: n.Parent}
	}

	// Resolve paths (and detect cycles) with a memoized walk to the root.
	const (
		unvisited = iota
		visiting
		done
	)
	state := make([]uint8, len(nodes))
	state[0] = done
	var resolve func(i HierID) error
	resolve = func(i HierID) error {
		switch state[i] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("netlist: ReplaceHier: node %d is part of a parent cycle", i)
		}
		state[i] = visiting
		p := nd.Hier[i].Parent
		if err := resolve(p); err != nil {
			return err
		}
		if p == 0 {
			nd.Hier[i].Path = nd.Hier[i].Name
		} else {
			nd.Hier[i].Path = nd.Hier[p].Path + "/" + nd.Hier[i].Name
		}
		state[i] = done
		return nil
	}
	seenPath := make(map[string]HierID, len(nodes))
	for i := range nodes {
		if err := resolve(HierID(i)); err != nil {
			return nil, err
		}
		if j, dup := seenPath[nd.Hier[i].Path]; dup && i != 0 {
			return nil, fmt.Errorf("netlist: ReplaceHier: nodes %d and %d share path %q", j, i, nd.Hier[i].Path)
		}
		seenPath[nd.Hier[i].Path] = HierID(i)
	}
	for i := 1; i < len(nodes); i++ {
		p := nd.Hier[i].Parent
		nd.Hier[p].Children = append(nd.Hier[p].Children, HierID(i))
	}

	for i := range nd.Cells {
		n := cellNode[i]
		if n < 0 || int(n) >= len(nodes) {
			return nil, fmt.Errorf("netlist: ReplaceHier: cell %d assigned to invalid node %d", i, n)
		}
		nd.Cells[i].Hier = n
		nd.Hier[n].Cells = append(nd.Hier[n].Cells, CellID(i))
	}

	if err := nd.Validate(); err != nil {
		return nil, fmt.Errorf("netlist: ReplaceHier: %w", err)
	}
	return nd, nil
}

// FlattenHier returns a copy of d whose hierarchy is a single root owning
// every cell. Cell, net and pin IDs are unchanged. It is the degenerate
// ReplaceHier used to turn hierarchical designs into autocluster
// regression workloads.
func FlattenHier(d *Design) (*Design, error) {
	return ReplaceHier(d, []NewHierNode{{Parent: None}}, make([]HierID, len(d.Cells)))
}
