package netlist

import (
	"bytes"
	"testing"
)

// buildSample returns a small hierarchical design: two subsystems with a
// macro and some logic each, wired through a shared net.
func buildSample(t *testing.T) *Design {
	t.Helper()
	b := NewBuilder("sample")
	m0 := b.AddMacro("a/ram0", 1000, 800, "a")
	m1 := b.AddMacro("b/ram1", 1000, 800, "b")
	f0 := b.AddFlop("a/r[0]", "a")
	f1 := b.AddFlop("a/r[1]", "a")
	c0 := b.AddComb("b/u0", 560, "b/inner")
	p := b.AddPort("clk")
	b.Wire("n0", m0, f0, f1)
	b.Wire("n1", f0, c0)
	b.Wire("n2", c0, m1)
	b.Wire("n3", p, m0, m1)
	return b.MustBuild()
}

func TestReplaceHierBasic(t *testing.T) {
	d := buildSample(t)

	// Regroup the cells under a synthesized tree whose numbering is
	// deliberately NOT builder-ordered: node 1 is a child of node 3.
	nodes := []NewHierNode{
		{Parent: None},             // 0: root
		{Name: "logic", Parent: 3}, // 1: child of node 3 (parent has larger ID)
		{Name: "mem", Parent: 0},   // 2
		{Name: "grp", Parent: 0},   // 3: parent of node 1
	}
	cellNode := make([]HierID, len(d.Cells))
	for i := range d.Cells {
		switch d.Cells[i].Kind {
		case KindMacro:
			cellNode[i] = 2
		case KindPort:
			cellNode[i] = 0
		default:
			cellNode[i] = 1
		}
	}
	nd, err := ReplaceHier(d, nodes, cellNode)
	if err != nil {
		t.Fatalf("ReplaceHier: %v", err)
	}
	if nd.NodeByPath("grp/logic") != 1 {
		t.Fatalf("grp/logic = %d, want 1", nd.NodeByPath("grp/logic"))
	}
	if got := len(nd.Node(2).Cells); got != 2 {
		t.Fatalf("mem owns %d cells, want 2", got)
	}
	// Connectivity and IDs are shared with the original.
	if len(nd.Nets) != len(d.Nets) || len(nd.Pins) != len(d.Pins) {
		t.Fatalf("nets/pins changed: %d/%d vs %d/%d", len(nd.Nets), len(nd.Pins), len(d.Nets), len(d.Pins))
	}
	for i := range d.Cells {
		if nd.Cells[i].Name != d.Cells[i].Name || nd.Cells[i].Kind != d.Cells[i].Kind {
			t.Fatalf("cell %d identity changed", i)
		}
	}
	// Original design untouched.
	if d.Cells[0].Hier == nd.Cells[0].Hier {
		t.Fatalf("expected different owner for cell 0")
	}
	if d.NodeByPath("a") == None {
		t.Fatalf("original hierarchy mutated")
	}
	// JSON round-trips through the rebuilt hierarchy paths.
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nd); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	rd, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if rd.NodeByPath("grp/logic") == None || rd.NodeByPath("mem") == None {
		t.Fatalf("round-trip lost rebuilt paths")
	}
}

func TestReplaceHierRejects(t *testing.T) {
	d := buildSample(t)
	all := make([]HierID, len(d.Cells))
	cases := []struct {
		name  string
		nodes []NewHierNode
		cells []HierID
	}{
		{"empty", nil, all},
		{"named root", []NewHierNode{{Name: "top", Parent: None}}, all},
		{"bad parent", []NewHierNode{{Parent: None}, {Name: "x", Parent: 9}}, all},
		{"self parent", []NewHierNode{{Parent: None}, {Name: "x", Parent: 1}}, all},
		{"cycle", []NewHierNode{{Parent: None}, {Name: "x", Parent: 2}, {Name: "y", Parent: 1}}, all},
		{"slash name", []NewHierNode{{Parent: None}, {Name: "a/b", Parent: 0}}, all},
		{"dup path", []NewHierNode{{Parent: None}, {Name: "x", Parent: 0}, {Name: "x", Parent: 0}}, all},
		{"short cellNode", []NewHierNode{{Parent: None}}, all[:1]},
		{"bad cell owner", []NewHierNode{{Parent: None}}, append(append([]HierID{}, all[:len(all)-1]...), 7)},
	}
	for _, tc := range cases {
		if _, err := ReplaceHier(d, tc.nodes, tc.cells); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestFlattenHier(t *testing.T) {
	d := buildSample(t)
	fd, err := FlattenHier(d)
	if err != nil {
		t.Fatalf("FlattenHier: %v", err)
	}
	if len(fd.Hier) != 1 {
		t.Fatalf("flattened design has %d hier nodes, want 1", len(fd.Hier))
	}
	if len(fd.Hier[0].Cells) != len(d.Cells) {
		t.Fatalf("root owns %d cells, want %d", len(fd.Hier[0].Cells), len(d.Cells))
	}
	if fd.Stats().CellArea != d.Stats().CellArea {
		t.Fatalf("cell area changed")
	}
}

func TestHierTopo(t *testing.T) {
	d := buildSample(t)
	order := d.HierTopo()
	if len(order) != len(d.Hier) {
		t.Fatalf("topo covers %d of %d nodes", len(order), len(d.Hier))
	}
	pos := make(map[HierID]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	for i := 1; i < len(d.Hier); i++ {
		if pos[d.Hier[i].Parent] >= pos[HierID(i)] {
			t.Fatalf("node %d precedes its parent %d", i, d.Hier[i].Parent)
		}
	}

	// Renumbered tree: parents may have larger IDs; topo must still put
	// them first.
	nd, err := ReplaceHier(d, []NewHierNode{
		{Parent: None},
		{Name: "leaf", Parent: 2},
		{Name: "mid", Parent: 0},
	}, make([]HierID, len(d.Cells)))
	if err != nil {
		t.Fatalf("ReplaceHier: %v", err)
	}
	order = nd.HierTopo()
	if len(order) != 3 || order[0] != 0 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("topo order = %v, want [0 2 1]", order)
	}
}
