// Package place implements the standard-cell global placer used to measure
// every macro-placement flow, standing in for the commercial place tool of
// the paper's evaluation (§V: "Metrics are taken after placement of
// standard cells using the same tool as IndEDA").
//
// The placer is a classic quadratic scheme: Gauss–Seidel sweeps pull every
// movable cell to the centroid of its nets (fixed macros and ports anchor
// the system), interleaved with grid-based spreading that respects macro
// blockage and a density target. It is fully deterministic.
package place

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/placement"
)

// Options tunes the placer.
type Options struct {
	// GridBins is the spreading grid resolution per axis (default 48).
	GridBins int
	// Iterations is the number of solve+spread rounds (default 6).
	Iterations int
	// SolveSweeps is the number of Gauss–Seidel sweeps per round (default 4).
	SolveSweeps int
	// TargetUtil is the bin utilization ceiling during spreading. When 0
	// it is derived from the design: 1.3 × (cell area / free area),
	// clamped to [0.35, 0.8] — the uniform-density target a production
	// global placer spreads toward.
	TargetUtil float64
	// Hints optionally seeds movable cells at estimated positions
	// (indexed by cell; used with HasHint).
	Hints   []geom.Point
	HasHint []bool
}

// DefaultOptions returns the standard settings (TargetUtil auto-derived).
func DefaultOptions() Options {
	return Options{GridBins: 48, Iterations: 6, SolveSweeps: 4}
}

// Run places all movable cells (flops and combinational cells) of pl's
// design. Macros and ports must already be placed; their positions are not
// modified. A cancelled ctx aborts between solve/spread rounds and returns
// ctx.Err().
func Run(ctx context.Context, pl *placement.Placement, opt Options) error {
	d := pl.D
	if opt.GridBins <= 0 {
		opt = DefaultOptions()
	}
	if !pl.AllMacrosPlaced() {
		return fmt.Errorf("place: macros must be placed first")
	}

	movable := make([]netlist.CellID, 0, len(d.Cells))
	for i := range d.Cells {
		id := netlist.CellID(i)
		switch d.Cells[i].Kind {
		case netlist.KindComb, netlist.KindFlop:
			movable = append(movable, id)
		}
	}
	if len(movable) == 0 {
		return nil
	}

	// Initial positions: hints if provided, else the die center.
	center := d.Die.Center()
	for _, id := range movable {
		p := center
		if opt.Hints != nil && opt.HasHint != nil && opt.HasHint[id] {
			p = opt.Hints[id]
		}
		pl.Place(id, p)
	}

	if opt.TargetUtil <= 0 {
		opt.TargetUtil = deriveTargetUtil(d, pl)
	}
	grid := newGrid(d, pl, opt)
	for iter := 0; iter < opt.Iterations; iter++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Damping grows over the rounds so late spreading is not undone by
		// the next quadratic solve (a light-weight stand-in for the anchor
		// pseudo-nets of production placers).
		keep := float64(iter) / float64(opt.Iterations+1)
		solve(pl, movable, opt.SolveSweeps, keep)
		grid.spread(pl, movable)
	}
	// Final cleanups: keep cells inside the die and off macros.
	grid.evictFromMacros(pl, movable)
	clampAll(pl, movable)
	return nil
}

// deriveTargetUtil computes the uniform spreading density: the design's
// standard-cell area over the macro-free area, with 30% headroom.
func deriveTargetUtil(d *netlist.Design, pl *placement.Placement) float64 {
	var cellArea, macroArea int64
	for i := range d.Cells {
		switch d.Cells[i].Kind {
		case netlist.KindComb, netlist.KindFlop:
			cellArea += d.Cells[i].Area()
		case netlist.KindMacro:
			macroArea += d.Cells[i].Area()
		}
	}
	free := d.Die.Area() - macroArea
	if free <= 0 {
		return 0.8
	}
	t := 1.3 * float64(cellArea) / float64(free)
	if t < 0.35 {
		t = 0.35
	}
	if t > 0.8 {
		t = 0.8
	}
	return t
}

// solve runs Gauss–Seidel sweeps of the star net model: each pass computes
// per-net centroids, then moves every movable cell toward the mean of its
// nets' centroids, retaining a `keep` fraction of its current position.
// Fixed cells (macros, ports) keep the system anchored.
func solve(pl *placement.Placement, movable []netlist.CellID, sweeps int, keep float64) {
	d := pl.D
	cx := make([]int64, len(d.Nets))
	cy := make([]int64, len(d.Nets))
	cn := make([]int64, len(d.Nets))
	for s := 0; s < sweeps; s++ {
		for i := range d.Nets {
			cx[i], cy[i], cn[i] = 0, 0, 0
		}
		for i := range d.Pins {
			pin := &d.Pins[i]
			if !pl.Placed[pin.Cell] {
				continue
			}
			c := pl.Center(pin.Cell)
			cx[pin.Net] += c.X
			cy[pin.Net] += c.Y
			cn[pin.Net]++
		}
		for _, id := range movable {
			cell := d.Cell(id)
			var sx, sy, n int64
			for _, pid := range cell.Pins {
				nid := d.Pin(pid).Net
				if cn[nid] < 2 {
					continue
				}
				sx += cx[nid] / cn[nid]
				sy += cy[nid] / cn[nid]
				n++
			}
			if n == 0 {
				continue
			}
			target := geom.Pt(sx/n, sy/n)
			cur := pl.Center(id)
			nx := int64(keep*float64(cur.X) + (1-keep)*float64(target.X))
			ny := int64(keep*float64(cur.Y) + (1-keep)*float64(target.Y))
			pl.Place(id, geom.Pt(nx-cell.Width/2, ny-cell.Height/2))
		}
	}
}

// grid is the spreading structure: bin loads and capacities with macro
// blockage subtracted.
type grid struct {
	die        geom.Rect
	nx, ny     int
	binW, binH int64
	cap        []float64 // usable area per bin × target utilization
	load       []float64
}

func newGrid(d *netlist.Design, pl *placement.Placement, opt Options) *grid {
	g := &grid{die: d.Die, nx: opt.GridBins, ny: opt.GridBins}
	g.binW = (d.Die.W + int64(g.nx) - 1) / int64(g.nx)
	g.binH = (d.Die.H + int64(g.ny) - 1) / int64(g.ny)
	g.cap = make([]float64, g.nx*g.ny)
	g.load = make([]float64, g.nx*g.ny)
	for by := 0; by < g.ny; by++ {
		for bx := 0; bx < g.nx; bx++ {
			r := g.binRect(bx, by)
			usable := r.Area()
			for _, m := range d.Macros() {
				usable -= r.Intersect(pl.Rect(m)).Area()
			}
			g.cap[by*g.nx+bx] = float64(usable) * opt.TargetUtil
		}
	}
	return g
}

func (g *grid) binRect(bx, by int) geom.Rect {
	r := geom.RectXYWH(g.die.X+int64(bx)*g.binW, g.die.Y+int64(by)*g.binH, g.binW, g.binH)
	return r.Intersect(g.die)
}

func (g *grid) binOf(p geom.Point) (int, int) {
	bx := int((p.X - g.die.X) / g.binW)
	by := int((p.Y - g.die.Y) / g.binH)
	if bx < 0 {
		bx = 0
	}
	if bx >= g.nx {
		bx = g.nx - 1
	}
	if by < 0 {
		by = 0
	}
	if by >= g.ny {
		by = g.ny - 1
	}
	return bx, by
}

// spread relieves overfull bins by relocating their outermost cells to the
// least-loaded neighboring bin, repeating a few rounds. Deterministic: bins
// scan in row order, cells ordered by distance from the bin center.
func (g *grid) spread(pl *placement.Placement, movable []netlist.CellID) {
	d := pl.D
	const rounds = 3
	binCells := make([][]netlist.CellID, len(g.cap))
	for r := 0; r < rounds; r++ {
		for i := range g.load {
			g.load[i] = 0
			binCells[i] = binCells[i][:0]
		}
		for _, id := range movable {
			bx, by := g.binOf(pl.Center(id))
			bi := by*g.nx + bx
			g.load[bi] += float64(d.Cell(id).Area())
			binCells[bi] = append(binCells[bi], id)
		}
		moved := false
		for by := 0; by < g.ny; by++ {
			for bx := 0; bx < g.nx; bx++ {
				bi := by*g.nx + bx
				if g.load[bi] <= g.cap[bi] {
					continue
				}
				cells := binCells[bi]
				c := g.binRect(bx, by).Center()
				sort.Slice(cells, func(a, b int) bool {
					da := pl.Center(cells[a]).ManhattanDist(c)
					db := pl.Center(cells[b]).ManhattanDist(c)
					if da != db {
						return da > db
					}
					return cells[a] < cells[b]
				})
				for _, id := range cells {
					if g.load[bi] <= g.cap[bi] {
						break
					}
					tx, ty, ok := g.bestNeighbor(bx, by)
					if !ok {
						break
					}
					ti := ty*g.nx + tx
					target := g.binRect(tx, ty).Center()
					area := float64(d.Cell(id).Area())
					pl.Place(id, geom.Pt(target.X-d.Cell(id).Width/2, target.Y-d.Cell(id).Height/2))
					g.load[bi] -= area
					g.load[ti] += area
					moved = true
				}
			}
		}
		if !moved {
			break
		}
	}
}

// bestNeighbor finds the nearest bin with spare capacity, scanning rings of
// growing Chebyshev radius (macro blockages can zero out whole
// neighborhoods, so adjacent-only relief deadlocks next to big macros).
func (g *grid) bestNeighbor(bx, by int) (int, int, bool) {
	maxR := g.nx
	if g.ny > maxR {
		maxR = g.ny
	}
	for r := 1; r <= maxR; r++ {
		bestSpare := 0.0
		bestX, bestY := -1, -1
		visit := func(nx, ny int) {
			if nx < 0 || nx >= g.nx || ny < 0 || ny >= g.ny {
				return
			}
			ni := ny*g.nx + nx
			if spare := g.cap[ni] - g.load[ni]; spare > bestSpare {
				bestSpare = spare
				bestX, bestY = nx, ny
			}
		}
		for dx := -r; dx <= r; dx++ {
			visit(bx+dx, by-r)
			visit(bx+dx, by+r)
		}
		for dy := -r + 1; dy <= r-1; dy++ {
			visit(bx-r, by+dy)
			visit(bx+r, by+dy)
		}
		if bestX >= 0 {
			return bestX, bestY, true
		}
	}
	return -1, -1, false
}

// evictFromMacros pushes any cell sitting on a macro to the nearest macro
// edge.
func (g *grid) evictFromMacros(pl *placement.Placement, movable []netlist.CellID) {
	d := pl.D
	macroRects := make([]geom.Rect, 0, 8)
	for _, m := range d.Macros() {
		macroRects = append(macroRects, pl.Rect(m))
	}
	for _, id := range movable {
		c := pl.Center(id)
		for _, mr := range macroRects {
			if !mr.Contains(c) {
				continue
			}
			// Push to the nearest macro edge that stays inside the die.
			cands := []geom.Point{
				{X: mr.X - 1, Y: c.Y},
				{X: mr.X2() + 1, Y: c.Y},
				{X: c.X, Y: mr.Y - 1},
				{X: c.X, Y: mr.Y2() + 1},
			}
			best := geom.Point{}
			bestDist := int64(-1)
			for _, cand := range cands {
				if !g.die.Contains(cand) {
					continue
				}
				if dist := c.ManhattanDist(cand); bestDist < 0 || dist < bestDist {
					bestDist = dist
					best = cand
				}
			}
			if bestDist < 0 {
				break // macro covers the die; leave the cell be
			}
			cell := d.Cell(id)
			pl.Place(id, geom.Pt(best.X-cell.Width/2, best.Y-cell.Height/2))
			break
		}
	}
}

func clampAll(pl *placement.Placement, movable []netlist.CellID) {
	for _, id := range movable {
		r := pl.Rect(id).ClampInside(pl.D.Die)
		pl.Place(id, geom.Pt(r.X, r.Y))
	}
}

func min4(a, b, c, d int64) int64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	if d < m {
		m = d
	}
	return m
}
