package place

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/placement"
)

// anchored builds a design with two fixed macros at opposite corners and two
// groups of cells, each group wired exclusively to one macro.
func anchored(t testing.TB) (*netlist.Design, *placement.Placement, []netlist.CellID, []netlist.CellID) {
	b := netlist.NewBuilder("anch")
	b.SetDie(geom.RectXYWH(0, 0, 100_000, 100_000))
	mA := b.AddMacro("mA", 10_000, 10_000, "")
	mB := b.AddMacro("mB", 10_000, 10_000, "")
	var ga, gb []netlist.CellID
	for i := 0; i < 40; i++ {
		a := b.AddComb(fmt.Sprintf("a%d", i), 20_000, "")
		ga = append(ga, a)
		b.Wire(fmt.Sprintf("na%d", i), mA, a)
		c := b.AddComb(fmt.Sprintf("b%d", i), 20_000, "")
		gb = append(gb, c)
		b.Wire(fmt.Sprintf("nb%d", i), mB, c)
	}
	d := b.MustBuild()
	pl := placement.New(d)
	pl.Place(mA, geom.Pt(0, 0))
	pl.Place(mB, geom.Pt(90_000, 90_000))
	return d, pl, ga, gb
}

func TestRunRequiresMacros(t *testing.T) {
	b := netlist.NewBuilder("x")
	b.AddMacro("m", 100, 100, "")
	b.AddComb("c", 100, "")
	d := b.MustBuild()
	pl := placement.New(d)
	if err := Run(context.Background(), pl, DefaultOptions()); err == nil {
		t.Error("expected error with unplaced macro")
	}
}

func TestRunPlacesEverything(t *testing.T) {
	_, pl, _, _ := anchored(t)
	if err := Run(context.Background(), pl, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	for i := range pl.D.Cells {
		if !pl.Placed[i] {
			t.Fatalf("cell %s unplaced", pl.D.Cells[i].Name)
		}
	}
}

func TestRunPullsCellsToAnchors(t *testing.T) {
	d, pl, ga, gb := anchored(t)
	if err := Run(context.Background(), pl, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	mA := d.CellByName("mA")
	mB := d.CellByName("mB")
	cA := pl.Center(mA)
	cB := pl.Center(mB)
	// Every a-cell must be closer to mA than to mB, and vice versa.
	misplacedA, misplacedB := 0, 0
	for _, id := range ga {
		c := pl.Center(id)
		if c.ManhattanDist(cA) > c.ManhattanDist(cB) {
			misplacedA++
		}
	}
	for _, id := range gb {
		c := pl.Center(id)
		if c.ManhattanDist(cB) > c.ManhattanDist(cA) {
			misplacedB++
		}
	}
	if misplacedA > 0 || misplacedB > 0 {
		t.Errorf("misplaced cells: %d near-A cells, %d near-B cells", misplacedA, misplacedB)
	}
}

func TestRunKeepsCellsInDie(t *testing.T) {
	d, pl, _, _ := anchored(t)
	if err := Run(context.Background(), pl, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	for i := range d.Cells {
		id := netlist.CellID(i)
		if d.Cells[i].Kind == netlist.KindPort {
			continue
		}
		if !d.Die.ContainsRect(pl.Rect(id)) {
			t.Fatalf("cell %s at %v outside die", d.Cells[i].Name, pl.Rect(id))
		}
	}
}

func TestRunEvictsFromMacros(t *testing.T) {
	d, pl, _, _ := anchored(t)
	if err := Run(context.Background(), pl, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	macros := []geom.Rect{}
	for _, m := range d.Macros() {
		macros = append(macros, pl.Rect(m))
	}
	inside := 0
	for i := range d.Cells {
		id := netlist.CellID(i)
		switch d.Cells[i].Kind {
		case netlist.KindComb, netlist.KindFlop:
			c := pl.Center(id)
			for _, mr := range macros {
				if mr.Contains(c) {
					inside++
				}
			}
		}
	}
	if inside > 0 {
		t.Errorf("%d cell centers sit on macros", inside)
	}
}

func TestRunDeterministic(t *testing.T) {
	_, pl1, _, _ := anchored(t)
	_, pl2, _, _ := anchored(t)
	if err := Run(context.Background(), pl1, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if err := Run(context.Background(), pl2, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	for i := range pl1.Pos {
		if pl1.Pos[i] != pl2.Pos[i] {
			t.Fatalf("cell %d nondeterministic: %v vs %v", i, pl1.Pos[i], pl2.Pos[i])
		}
	}
}

func TestHintsRespected(t *testing.T) {
	d, pl, ga, _ := anchored(t)
	opt := DefaultOptions()
	opt.Iterations = 0 // no refinement: initial positions survive
	opt.Hints = make([]geom.Point, len(d.Cells))
	opt.HasHint = make([]bool, len(d.Cells))
	opt.Hints[ga[0]] = geom.Pt(12_345, 54_321)
	opt.HasHint[ga[0]] = true
	if err := Run(context.Background(), pl, opt); err != nil {
		t.Fatal(err)
	}
	got := pl.Pos[ga[0]]
	if got != (geom.Pt(12_345, 54_321)) {
		t.Errorf("hint ignored: %v", got)
	}
}

func TestSpreadRelievesDensity(t *testing.T) {
	// All cells wired to one central macro: without spreading they would
	// collapse onto it; spreading must pull bin peaks below ~3x target.
	b := netlist.NewBuilder("dense")
	b.SetDie(geom.RectXYWH(0, 0, 50_000, 50_000))
	m := b.AddMacro("m", 5_000, 5_000, "")
	for i := 0; i < 200; i++ {
		c := b.AddComb(fmt.Sprintf("c%d", i), 100_000, "")
		b.Wire(fmt.Sprintf("n%d", i), m, c)
	}
	d := b.MustBuild()
	pl := placement.New(d)
	pl.Place(m, geom.Pt(22_500, 22_500))
	if err := Run(context.Background(), pl, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	// Count distinct cell center positions: heavy collapse would leave
	// only a handful.
	distinct := map[geom.Point]bool{}
	for i := range d.Cells {
		if d.Cells[i].Kind == netlist.KindComb {
			distinct[pl.Center(netlist.CellID(i))] = true
		}
	}
	if len(distinct) < 20 {
		t.Errorf("cells collapsed to %d positions; spreading ineffective", len(distinct))
	}
}
