// Package placement holds the physical state shared by every flow stage:
// per-cell positions and orientations, pin locations under orientation
// transforms, and wirelength accounting. The macro placers fill in macros
// and ports; the standard-cell placer fills in the rest; the metric stages
// read the result.
package placement

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// Placement is the mutable physical state of a design.
type Placement struct {
	D *netlist.Design
	// Pos is the lower-left corner of each cell's placed outline.
	Pos []geom.Point
	// Orient is each cell's placement orientation.
	Orient []geom.Orient
	// Placed marks cells with valid positions.
	Placed []bool
}

// New creates an empty placement and pins every port at its fixed location.
func New(d *netlist.Design) *Placement {
	p := &Placement{
		D:      d,
		Pos:    make([]geom.Point, len(d.Cells)),
		Orient: make([]geom.Orient, len(d.Cells)),
		Placed: make([]bool, len(d.Cells)),
	}
	for _, id := range d.Ports() {
		p.Pos[id] = d.PortPos(id)
		p.Placed[id] = true
	}
	return p
}

// Clone returns an independent copy.
func (p *Placement) Clone() *Placement {
	q := &Placement{
		D:      p.D,
		Pos:    append([]geom.Point(nil), p.Pos...),
		Orient: append([]geom.Orient(nil), p.Orient...),
		Placed: append([]bool(nil), p.Placed...),
	}
	return q
}

// Place positions a cell with the R0 orientation.
func (p *Placement) Place(id netlist.CellID, pos geom.Point) {
	p.Pos[id] = pos
	p.Orient[id] = geom.R0
	p.Placed[id] = true
}

// PlaceOriented positions a cell with an explicit orientation. Pos remains
// the lower-left corner of the placed outline.
func (p *Placement) PlaceOriented(id netlist.CellID, pos geom.Point, o geom.Orient) {
	p.Pos[id] = pos
	p.Orient[id] = o
	p.Placed[id] = true
}

// Rect returns the placed outline of a cell.
func (p *Placement) Rect(id netlist.CellID) geom.Rect {
	c := p.D.Cell(id)
	w, h := p.Orient[id].Dims(c.Width, c.Height)
	return geom.RectXYWH(p.Pos[id].X, p.Pos[id].Y, w, h)
}

// Center returns the center of a cell's placed outline.
func (p *Placement) Center(id netlist.CellID) geom.Point {
	return p.Rect(id).Center()
}

// PinPos returns the die location of a pin, applying the cell's orientation
// to the pin's library offset.
func (p *Placement) PinPos(pid netlist.PinID) geom.Point {
	pin := p.D.Pin(pid)
	c := p.D.Cell(pin.Cell)
	local := p.Orient[pin.Cell].Apply(pin.Offset, c.Width, c.Height)
	return p.Pos[pin.Cell].Add(local)
}

// NetHPWL returns the half-perimeter wirelength of one net, considering
// only placed cells. Nets with fewer than two placed pins contribute zero.
func (p *Placement) NetHPWL(nid netlist.NetID) int64 {
	net := p.D.Net(nid)
	first := true
	var minX, maxX, minY, maxY int64
	pins := 0
	for _, pid := range net.Pins {
		if !p.Placed[p.D.Pin(pid).Cell] {
			continue
		}
		pt := p.PinPos(pid)
		pins++
		if first {
			minX, maxX, minY, maxY = pt.X, pt.X, pt.Y, pt.Y
			first = false
			continue
		}
		if pt.X < minX {
			minX = pt.X
		}
		if pt.X > maxX {
			maxX = pt.X
		}
		if pt.Y < minY {
			minY = pt.Y
		}
		if pt.Y > maxY {
			maxY = pt.Y
		}
	}
	if pins < 2 {
		return 0
	}
	return (maxX - minX) + (maxY - minY)
}

// TotalHPWL sums NetHPWL over all nets.
func (p *Placement) TotalHPWL() int64 {
	var total int64
	for i := range p.D.Nets {
		total += p.NetHPWL(netlist.NetID(i))
	}
	return total
}

// MacroOverlapArea returns the total pairwise overlap area between placed
// macros — zero for a legal macro placement.
func (p *Placement) MacroOverlapArea() int64 {
	macros := p.D.Macros()
	var sum int64
	for i, a := range macros {
		if !p.Placed[a] {
			continue
		}
		ra := p.Rect(a)
		for _, b := range macros[i+1:] {
			if !p.Placed[b] {
				continue
			}
			sum += ra.Intersect(p.Rect(b)).Area()
		}
	}
	return sum
}

// MacrosInsideDie verifies every placed macro lies inside the die.
func (p *Placement) MacrosInsideDie() error {
	for _, id := range p.D.Macros() {
		if !p.Placed[id] {
			continue
		}
		if !p.D.Die.ContainsRect(p.Rect(id)) {
			return fmt.Errorf("placement: macro %s at %v escapes die %v",
				p.D.Cell(id).Name, p.Rect(id), p.D.Die)
		}
	}
	return nil
}

// AllMacrosPlaced reports whether every macro has a position.
func (p *Placement) AllMacrosPlaced() bool {
	for _, id := range p.D.Macros() {
		if !p.Placed[id] {
			return false
		}
	}
	return true
}
