package placement

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
)

func design(t *testing.T) (*netlist.Design, netlist.CellID, netlist.CellID, netlist.CellID) {
	t.Helper()
	b := netlist.NewBuilder("p")
	b.SetDie(geom.RectXYWH(0, 0, 10000, 10000))
	in := b.AddPort("in")
	b.SetPortPos(in, geom.Pt(0, 5000))
	m := b.AddMacro("m", 2000, 1000, "")
	c := b.AddComb("c", 500, "")
	n := b.Net("n")
	b.Connect(in, n, netlist.DirOut)
	b.ConnectAt(m, n, netlist.DirIn, geom.Pt(0, 500)) // pin on macro west edge
	b.Connect(c, n, netlist.DirIn)
	return b.MustBuild(), in, m, c
}

func TestNewPinsPorts(t *testing.T) {
	d, in, _, _ := design(t)
	p := New(d)
	if !p.Placed[in] {
		t.Fatal("port not auto-placed")
	}
	if p.Pos[in] != geom.Pt(0, 5000) {
		t.Errorf("port pos = %v", p.Pos[in])
	}
}

func TestRectAndCenter(t *testing.T) {
	d, _, m, _ := design(t)
	p := New(d)
	p.Place(m, geom.Pt(100, 200))
	r := p.Rect(m)
	if r != geom.RectXYWH(100, 200, 2000, 1000) {
		t.Errorf("Rect = %v", r)
	}
	if p.Center(m) != geom.Pt(1100, 700) {
		t.Errorf("Center = %v", p.Center(m))
	}
}

func TestOrientedRectSwapsDims(t *testing.T) {
	d, _, m, _ := design(t)
	p := New(d)
	p.PlaceOriented(m, geom.Pt(0, 0), geom.R90)
	r := p.Rect(m)
	if r.W != 1000 || r.H != 2000 {
		t.Errorf("R90 outline = %v, want 1000x2000", r)
	}
}

func TestPinPosOrientation(t *testing.T) {
	d, _, m, _ := design(t)
	p := New(d)
	// Pin offset (0, 500) in a 2000x1000 macro.
	p.Place(m, geom.Pt(100, 100))
	var pid netlist.PinID = -1
	for _, q := range d.Cell(m).Pins {
		pid = q
	}
	if got := p.PinPos(pid); got != geom.Pt(100, 600) {
		t.Errorf("R0 pin = %v, want (100,600)", got)
	}
	// MY mirrors left-right: x offset becomes 2000-0 = 2000.
	p.PlaceOriented(m, geom.Pt(100, 100), geom.MY)
	if got := p.PinPos(pid); got != geom.Pt(2100, 600) {
		t.Errorf("MY pin = %v, want (2100,600)", got)
	}
	// MX mirrors top-bottom: y offset becomes 1000-500 = 500 (same here).
	p.PlaceOriented(m, geom.Pt(100, 100), geom.MX)
	if got := p.PinPos(pid); got != geom.Pt(100, 600) {
		t.Errorf("MX pin = %v, want (100,600)", got)
	}
}

func TestNetHPWL(t *testing.T) {
	d, _, m, c := design(t)
	p := New(d)
	p.Place(m, geom.Pt(1000, 0)) // pin at (1000, 500)
	p.Place(c, geom.Pt(500, 500))
	// Pins: port (0,5000), macro pin (1000,500), comb (500,500).
	want := int64((1000 - 0) + (5000 - 500))
	if got := p.NetHPWL(0); got != want {
		t.Errorf("NetHPWL = %d, want %d", got, want)
	}
	if got := p.TotalHPWL(); got != want {
		t.Errorf("TotalHPWL = %d, want %d", got, want)
	}
}

func TestHPWLSkipsUnplaced(t *testing.T) {
	d, _, m, _ := design(t)
	p := New(d)
	p.Place(m, geom.Pt(1000, 0))
	// Port placed + macro placed = 2 pins; comb unplaced and skipped.
	if got := p.NetHPWL(0); got != 1000+4500 {
		t.Errorf("NetHPWL = %d", got)
	}
}

func TestMacroOverlap(t *testing.T) {
	b := netlist.NewBuilder("ov")
	b.SetDie(geom.RectXYWH(0, 0, 10000, 10000))
	m1 := b.AddMacro("m1", 1000, 1000, "")
	m2 := b.AddMacro("m2", 1000, 1000, "")
	d := b.MustBuild()
	p := New(d)
	p.Place(m1, geom.Pt(0, 0))
	p.Place(m2, geom.Pt(500, 500))
	if got := p.MacroOverlapArea(); got != 500*500 {
		t.Errorf("overlap = %d, want 250000", got)
	}
	p.Place(m2, geom.Pt(1000, 0))
	if got := p.MacroOverlapArea(); got != 0 {
		t.Errorf("overlap = %d, want 0", got)
	}
}

func TestMacrosInsideDie(t *testing.T) {
	d, _, m, _ := design(t)
	p := New(d)
	p.Place(m, geom.Pt(9000, 0)) // 2000 wide: escapes the 10000 die
	if err := p.MacrosInsideDie(); err == nil {
		t.Error("expected die violation")
	}
	p.Place(m, geom.Pt(8000, 0))
	if err := p.MacrosInsideDie(); err != nil {
		t.Errorf("unexpected: %v", err)
	}
}

func TestAllMacrosPlaced(t *testing.T) {
	d, _, m, _ := design(t)
	p := New(d)
	if p.AllMacrosPlaced() {
		t.Error("macro not yet placed")
	}
	p.Place(m, geom.Pt(0, 0))
	if !p.AllMacrosPlaced() {
		t.Error("macro placed but not reported")
	}
}

func TestClone(t *testing.T) {
	d, _, m, _ := design(t)
	p := New(d)
	p.Place(m, geom.Pt(1, 2))
	q := p.Clone()
	q.Place(m, geom.Pt(9, 9))
	if p.Pos[m] != geom.Pt(1, 2) {
		t.Error("clone aliases original")
	}
}
