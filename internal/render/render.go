// Package render draws floorplans, standard-cell density maps and dataflow
// diagrams as SVG — the static counterpart of the paper's "interactive
// graphic tool ... to model and visualize the dataflow of complex designs"
// (Fig. 9). Output is deterministic and uses no external assets.
package render

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/placement"
)

// canvas accumulates SVG primitives mapped from die to image coordinates
// (SVG y grows downward; die y grows upward, so y flips).
type canvas struct {
	w     io.Writer
	die   geom.Rect
	px    float64 // image width in pixels
	py    float64
	scale float64
}

func newCanvas(w io.Writer, die geom.Rect, widthPx int) *canvas {
	scale := float64(widthPx) / float64(die.W)
	c := &canvas{
		w: w, die: die,
		px: float64(widthPx), py: float64(die.H) * scale, scale: scale,
	}
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		c.px, c.py, c.px, c.py)
	fmt.Fprintf(w, `<rect x="0" y="0" width="%.0f" height="%.0f" fill="#ffffff" stroke="#000000"/>`+"\n", c.px, c.py)
	return c
}

func (c *canvas) xy(p geom.Point) (float64, float64) {
	return float64(p.X-c.die.X) * c.scale, c.py - float64(p.Y-c.die.Y)*c.scale
}

func (c *canvas) rect(r geom.Rect, fill, stroke string, opacity float64) {
	x, y := c.xy(geom.Pt(r.X, r.Y2()))
	fmt.Fprintf(c.w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="%s" fill-opacity="%.2f"/>`+"\n",
		x, y, float64(r.W)*c.scale, float64(r.H)*c.scale, fill, stroke, opacity)
}

func (c *canvas) line(a, b geom.Point, stroke string, width float64) {
	x1, y1 := c.xy(a)
	x2, y2 := c.xy(b)
	fmt.Fprintf(c.w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

func (c *canvas) text(p geom.Point, s string, size float64) {
	x, y := c.xy(p)
	fmt.Fprintf(c.w, `<text x="%.1f" y="%.1f" font-size="%.0f" font-family="monospace">%s</text>`+"\n",
		x, y, size, s)
}

func (c *canvas) close() { fmt.Fprintln(c.w, "</svg>") }

// Floorplan draws the die, macros (dark) and port positions of a placement.
func Floorplan(w io.Writer, pl *placement.Placement, widthPx int) {
	c := newCanvas(w, pl.D.Die, widthPx)
	for _, m := range pl.D.Macros() {
		if !pl.Placed[m] {
			continue
		}
		c.rect(pl.Rect(m), "#5a6b7a", "#223", 0.9)
	}
	for _, p := range pl.D.Ports() {
		pos := pl.D.PortPos(p)
		r := geom.RectXYWH(pos.X-pl.D.Die.W/200, pos.Y-pl.D.Die.H/200, pl.D.Die.W/100, pl.D.Die.H/100)
		c.rect(r, "#cc4444", "#400", 1)
	}
	c.close()
}

// BlockTrace draws one HiDaP recursion level: block rectangles with macro
// counts, the multi-level evolution of the paper's Fig. 1.
func BlockTrace(w io.Writer, die geom.Rect, level core.LevelTrace, widthPx int) {
	c := newCanvas(w, die, widthPx)
	for _, b := range level.Blocks {
		fill := "#dddddd"
		if b.MacroCount > 0 {
			fill = "#8a9bab"
		}
		c.rect(b.Rect, fill, "#333", 0.85)
		if b.MacroCount > 0 {
			c.text(b.Rect.Center(), fmt.Sprintf("%d", b.MacroCount), 14)
		}
	}
	c.close()
}

// DensityMap draws a standard-cell density heat map (Fig. 9 style): white
// through red by utilization, macros hatched gray.
func DensityMap(w io.Writer, pl *placement.Placement, dm *metrics.DensityMap, widthPx int) {
	die := pl.D.Die
	c := newCanvas(w, die, widthPx)
	peak := dm.Peak()
	if peak <= 0 {
		peak = 1
	}
	for by := 0; by < dm.Bins; by++ {
		for bx := 0; bx < dm.Bins; bx++ {
			r := binRect(die, dm.Bins, bx, by)
			if dm.IsMacro(bx, by) {
				c.rect(r, "#777777", "none", 0.9)
				continue
			}
			v := dm.At(bx, by) / peak
			c.rect(r, heat(v), "none", 0.9)
		}
	}
	for _, m := range pl.D.Macros() {
		if pl.Placed[m] {
			c.rect(pl.Rect(m), "none", "#000", 1)
		}
	}
	c.close()
}

// heat maps 0..1 to a white→yellow→red ramp.
func heat(v float64) string {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	r := 255
	g := int(255 * (1 - 0.7*v))
	b := int(255 * math.Pow(1-v, 2))
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// Dataflow draws a Gdf block floorplan with affinity edges (Fig. 9d):
// each node is a colored box at its position, arrows weighted and shaded by
// affinity.
func Dataflow(w io.Writer, die geom.Rect, gdf *dataflow.Graph, aff [][]float64,
	rects []geom.Rect, terminals []geom.Point, widthPx int) {

	c := newCanvas(w, die, widthPx)
	pos := func(i int) geom.Point {
		if i < len(rects) {
			return rects[i].Center()
		}
		t := i - len(rects)
		if t < len(terminals) {
			return terminals[t]
		}
		return die.Center()
	}
	// Max affinity for shading.
	maxAff := 0.0
	for i := range aff {
		for j := range aff[i] {
			if aff[i][j] > maxAff {
				maxAff = aff[i][j]
			}
		}
	}
	if maxAff == 0 {
		maxAff = 1
	}
	for i := range gdf.Nodes {
		for j := i + 1; j < len(gdf.Nodes); j++ {
			if i >= len(aff) || j >= len(aff[i]) || aff[i][j] == 0 {
				continue
			}
			v := aff[i][j] / maxAff
			width := 1 + 4*v
			shade := int(200 * (1 - v))
			c.line(pos(i), pos(j), fmt.Sprintf("#%02x%02xff", shade, shade), width)
		}
	}
	palette := []string{"#e5a33b", "#5ab45a", "#c05a5a", "#5a7ac0", "#b45ab4", "#5ab4b4"}
	for i := range gdf.Nodes {
		n := &gdf.Nodes[i]
		if n.Class == dataflow.ClassBlock && i < len(rects) {
			c.rect(rects[i], palette[i%len(palette)], "#333", 0.8)
			c.text(rects[i].Center(), n.Name, 12)
		} else {
			p := pos(i)
			r := geom.RectXYWH(p.X-die.W/100, p.Y-die.H/100, die.W/50, die.H/50)
			c.rect(r, "#444444", "#000", 1)
		}
	}
	c.close()
}

// DensityASCII renders a density map as text for terminals and logs.
func DensityASCII(dm *metrics.DensityMap) string {
	ramp := " .:-=+*#%@"
	peak := dm.Peak()
	if peak <= 0 {
		peak = 1
	}
	out := make([]byte, 0, (dm.Bins+1)*dm.Bins)
	for by := dm.Bins - 1; by >= 0; by-- {
		for bx := 0; bx < dm.Bins; bx++ {
			if dm.IsMacro(bx, by) {
				out = append(out, 'M')
				continue
			}
			v := dm.At(bx, by) / peak
			idx := int(v * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			out = append(out, ramp[idx])
		}
		out = append(out, '\n')
	}
	return string(out)
}

func binRect(die geom.Rect, n, bx, by int) geom.Rect {
	x0 := die.X + die.W*int64(bx)/int64(n)
	x1 := die.X + die.W*int64(bx+1)/int64(n)
	y0 := die.Y + die.H*int64(by)/int64(n)
	y1 := die.Y + die.H*int64(by+1)/int64(n)
	return geom.RectXYWH(x0, y0, x1-x0, y1-y0)
}
