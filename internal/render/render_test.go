package render

import (
	"strings"
	"testing"

	"repro/circuits"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/geom"
	"repro/internal/hier"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/seqgraph"
)

func placedABCDX(t *testing.T) (*circuits.Generated, *placement.Placement) {
	t.Helper()
	g := circuits.ABCDX()
	pl := placement.New(g.Design)
	for _, m := range g.Design.Macros() {
		r := g.Intent[g.Design.Cell(m).Name]
		pl.Place(m, geom.Pt(r.X, r.Y))
	}
	return g, pl
}

func TestFloorplanSVG(t *testing.T) {
	_, pl := placedABCDX(t)
	var sb strings.Builder
	Floorplan(&sb, pl, 400)
	svg := sb.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	// 8 macros plus die plus port markers: expect many rects.
	if strings.Count(svg, "<rect") < 9 {
		t.Errorf("rects = %d, want >= 9", strings.Count(svg, "<rect"))
	}
}

func TestBlockTraceSVG(t *testing.T) {
	die := geom.RectXYWH(0, 0, 1000, 1000)
	level := core.LevelTrace{
		Region: die,
		Blocks: []core.TraceBlock{
			{Name: "a", Rect: geom.RectXYWH(0, 0, 500, 1000), MacroCount: 4},
			{Name: "b", Rect: geom.RectXYWH(500, 0, 500, 1000), MacroCount: 0},
		},
	}
	var sb strings.Builder
	BlockTrace(&sb, die, level, 300)
	svg := sb.String()
	if !strings.Contains(svg, ">4</text>") {
		t.Error("macro count label missing")
	}
}

func TestDensityMapSVGAndASCII(t *testing.T) {
	_, pl := placedABCDX(t)
	// Give every movable cell a position so density has content.
	for i := range pl.D.Cells {
		if !pl.Placed[i] {
			pl.Place(netlist.CellID(i), pl.D.Die.Center())
		}
	}
	dm := metrics.Density(pl, 16)
	var sb strings.Builder
	DensityMap(&sb, pl, dm, 320)
	if !strings.Contains(sb.String(), "</svg>") {
		t.Error("density SVG incomplete")
	}
	txt := DensityASCII(dm)
	lines := strings.Split(strings.TrimRight(txt, "\n"), "\n")
	if len(lines) != 16 {
		t.Errorf("ascii rows = %d, want 16", len(lines))
	}
	for _, ln := range lines {
		if len(ln) != 16 {
			t.Fatalf("ascii row width %d, want 16", len(ln))
		}
	}
}

func TestDataflowSVG(t *testing.T) {
	g, pl := placedABCDX(t)
	tr := hier.New(g.Design)
	decl := tr.Decluster(g.Design.Root(), hier.DefaultParams())
	sg := seqgraph.Build(g.Design, seqgraph.DefaultParams())
	gdf := dataflow.Build(sg, decl)
	aff := gdf.Affinity(dataflow.DefaultParams())
	rects := make([]geom.Rect, len(decl.Blocks))
	for i := range rects {
		rects[i] = geom.RectXYWH(int64(i)*100_000, 0, 90_000, 90_000)
	}
	var sb strings.Builder
	Dataflow(&sb, g.Design.Die, gdf, aff, rects, nil, 400)
	svg := sb.String()
	if strings.Count(svg, "<line") == 0 {
		t.Error("no affinity edges drawn")
	}
	if !strings.Contains(svg, "</svg>") {
		t.Error("incomplete SVG")
	}
	_ = pl
}

func TestHeatRamp(t *testing.T) {
	if heat(0) != "#ffffff" {
		t.Errorf("heat(0) = %s, want white", heat(0))
	}
	if heat(1) == heat(0) {
		t.Error("heat ramp flat")
	}
	if heat(-1) != heat(0) || heat(2) != heat(1) {
		t.Error("heat not clamped")
	}
}
