// Package route estimates global routing congestion, standing in for the
// commercial global router behind the paper's GRC% metric (global routing
// overflow percentage, Table III).
//
// The model is RUDY-style probabilistic demand: every placed net spreads
// its expected wirelength uniformly over its bounding box; gcell capacity
// comes from the routing supply per unit area, derated over macros (memory
// blocks leave only upper metal for through-routing). GRC% is the fraction
// of gcells whose demand exceeds capacity.
package route

import (
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/placement"
)

// Options tunes the congestion model.
type Options struct {
	// GcellBins is the grid resolution per axis (default 32).
	GcellBins int
	// SupplyPerDBU2 is the routing capacity in wire-DBU per DBU² of die
	// area (default 0.06: six routing layers at a 100 DBU pitch in the
	// synthetic 1 DBU = 1 nm library).
	SupplyPerDBU2 float64
	// MacroDerate is the capacity fraction remaining above macros
	// (default 0.15).
	MacroDerate float64
}

// DefaultOptions returns the standard model parameters.
func DefaultOptions() Options {
	return Options{GcellBins: 32, SupplyPerDBU2: 0.06, MacroDerate: 0.15}
}

// Result is a congestion analysis.
type Result struct {
	Bins     int
	Demand   []float64 // row-major demand per gcell
	Capacity []float64
	// OverflowPct is GRC%: the percentage of gcells with demand > capacity.
	OverflowPct float64
	// WorstRatio is max(demand/capacity) over gcells.
	WorstRatio float64
	// TotalDemand aggregates demand (proportional to estimated WL).
	TotalDemand float64
}

// At returns demand/capacity at a bin coordinate.
func (r *Result) At(bx, by int) (demand, capacity float64) {
	return r.Demand[by*r.Bins+bx], r.Capacity[by*r.Bins+bx]
}

// Estimate runs the congestion model over a fully placed design.
func Estimate(pl *placement.Placement, opt Options) *Result {
	if opt.GcellBins <= 0 {
		opt = DefaultOptions()
	}
	d := pl.D
	n := opt.GcellBins
	res := &Result{
		Bins:     n,
		Demand:   make([]float64, n*n),
		Capacity: make([]float64, n*n),
	}
	die := d.Die
	binW := float64(die.W) / float64(n)
	binH := float64(die.H) / float64(n)

	// Capacity: supply × gcell extent, derated over macro coverage.
	macroRects := make([]geom.Rect, 0, 8)
	for _, m := range d.Macros() {
		if pl.Placed[m] {
			macroRects = append(macroRects, pl.Rect(m))
		}
	}
	for by := 0; by < n; by++ {
		for bx := 0; bx < n; bx++ {
			r := binRect(die, n, bx, by)
			full := opt.SupplyPerDBU2 * float64(r.Area())
			var blocked int64
			for _, mr := range macroRects {
				blocked += r.Intersect(mr).Area()
			}
			frac := 0.0
			if a := r.Area(); a > 0 {
				frac = float64(blocked) / float64(a)
			}
			res.Capacity[by*n+bx] = full * (1 - frac + frac*opt.MacroDerate)
		}
	}

	// Demand: RUDY. Each net adds (w+h)/(w·h) per unit area over its bbox.
	for i := range d.Nets {
		bbox, pins := netBBox(pl, netlist.NetID(i))
		if pins < 2 {
			continue
		}
		w := float64(bbox.W) + binW // half-gcell smearing avoids zero-area
		h := float64(bbox.H) + binH
		density := (w + h) / (w * h)
		x0, y0 := binIndex(die, n, bbox.X, bbox.Y)
		x1, y1 := binIndex(die, n, bbox.X2(), bbox.Y2())
		for by := y0; by <= y1; by++ {
			for bx := x0; bx <= x1; bx++ {
				r := binRect(die, n, bx, by)
				ov := overlap1D(float64(r.X), float64(r.X2()), float64(bbox.X)-binW/2, float64(bbox.X2())+binW/2) *
					overlap1D(float64(r.Y), float64(r.Y2()), float64(bbox.Y)-binH/2, float64(bbox.Y2())+binH/2)
				if ov > 0 {
					res.Demand[by*n+bx] += density * ov
				}
			}
		}
	}

	over := 0
	for i := range res.Demand {
		res.TotalDemand += res.Demand[i]
		if res.Capacity[i] > 0 {
			ratio := res.Demand[i] / res.Capacity[i]
			if ratio > res.WorstRatio {
				res.WorstRatio = ratio
			}
			if ratio > 1 {
				over++
			}
		}
	}
	res.OverflowPct = 100 * float64(over) / float64(len(res.Demand))
	return res
}

func binRect(die geom.Rect, n, bx, by int) geom.Rect {
	x0 := die.X + die.W*int64(bx)/int64(n)
	x1 := die.X + die.W*int64(bx+1)/int64(n)
	y0 := die.Y + die.H*int64(by)/int64(n)
	y1 := die.Y + die.H*int64(by+1)/int64(n)
	return geom.RectXYWH(x0, y0, x1-x0, y1-y0)
}

func binIndex(die geom.Rect, n int, x, y int64) (int, int) {
	bx := int((x - die.X) * int64(n) / maxi64(die.W, 1))
	by := int((y - die.Y) * int64(n) / maxi64(die.H, 1))
	if bx < 0 {
		bx = 0
	}
	if bx >= n {
		bx = n - 1
	}
	if by < 0 {
		by = 0
	}
	if by >= n {
		by = n - 1
	}
	return bx, by
}

func overlap1D(a0, a1, b0, b1 float64) float64 {
	lo := a0
	if b0 > lo {
		lo = b0
	}
	hi := a1
	if b1 < hi {
		hi = b1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func netBBox(pl *placement.Placement, nid netlist.NetID) (geom.Rect, int) {
	net := pl.D.Net(nid)
	pins := 0
	var minX, maxX, minY, maxY int64
	for _, pid := range net.Pins {
		if !pl.Placed[pl.D.Pin(pid).Cell] {
			continue
		}
		p := pl.PinPos(pid)
		if pins == 0 {
			minX, maxX, minY, maxY = p.X, p.X, p.Y, p.Y
		} else {
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
		pins++
	}
	return geom.RectCorners(geom.Pt(minX, minY), geom.Pt(maxX, maxY)), pins
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
