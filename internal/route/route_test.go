package route

import (
	"fmt"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/placement"
)

// hotspot builds a design whose nets all cross the die center.
func hotspot(t testing.TB, nets int) *placement.Placement {
	b := netlist.NewBuilder("hs")
	b.SetDie(geom.RectXYWH(0, 0, 100_000, 100_000))
	b.AddMacro("anchor", 1000, 1000, "")
	var cells []netlist.CellID
	for i := 0; i < nets*2; i++ {
		cells = append(cells, b.AddComb(fmt.Sprintf("c%d", i), 1000, ""))
	}
	for i := 0; i < nets; i++ {
		b.Wire(fmt.Sprintf("n%d", i), cells[2*i], cells[2*i+1])
	}
	d := b.MustBuild()
	pl := placement.New(d)
	pl.Place(d.CellByName("anchor"), geom.Pt(0, 0))
	for i := 0; i < nets; i++ {
		// Diagonal nets through the center.
		pl.Place(cells[2*i], geom.Pt(10_000, 10_000))
		pl.Place(cells[2*i+1], geom.Pt(90_000, 90_000))
	}
	return pl
}

func TestEstimateBasics(t *testing.T) {
	pl := hotspot(t, 10)
	res := Estimate(pl, DefaultOptions())
	if res.Bins != DefaultOptions().GcellBins {
		t.Errorf("Bins = %d", res.Bins)
	}
	if res.TotalDemand <= 0 {
		t.Error("no demand accumulated")
	}
	if res.OverflowPct < 0 || res.OverflowPct > 100 {
		t.Errorf("OverflowPct = %v", res.OverflowPct)
	}
}

func TestMoreNetsMoreCongestion(t *testing.T) {
	sparse := Estimate(hotspot(t, 5), DefaultOptions())
	dense := Estimate(hotspot(t, 8000), DefaultOptions())
	if dense.WorstRatio <= sparse.WorstRatio {
		t.Errorf("dense WorstRatio %v <= sparse %v", dense.WorstRatio, sparse.WorstRatio)
	}
	if dense.OverflowPct <= sparse.OverflowPct {
		t.Errorf("dense overflow %v <= sparse %v", dense.OverflowPct, sparse.OverflowPct)
	}
}

func TestDemandCoversNetBBox(t *testing.T) {
	pl := hotspot(t, 1)
	res := Estimate(pl, DefaultOptions())
	// Demand must appear in the central bins the diagonal bbox covers and
	// stay ~zero in an untouched corner... the corner bins get only the
	// smeared margin, so compare against the bbox center bin.
	cx, cy := res.Bins/2, res.Bins/2
	dC, _ := res.At(cx, cy)
	dCorner, _ := res.At(0, res.Bins-1)
	if dC <= dCorner {
		t.Errorf("center demand %v <= corner %v", dC, dCorner)
	}
}

func TestMacroDerate(t *testing.T) {
	// A huge macro in the middle cuts capacity there.
	b := netlist.NewBuilder("blk")
	b.SetDie(geom.RectXYWH(0, 0, 100_000, 100_000))
	m := b.AddMacro("big", 40_000, 40_000, "")
	d := b.MustBuild()
	pl := placement.New(d)
	pl.Place(m, geom.Pt(30_000, 30_000))
	res := Estimate(pl, DefaultOptions())
	_, capCenter := res.At(res.Bins/2, res.Bins/2)
	_, capCorner := res.At(0, 0)
	if capCenter >= capCorner {
		t.Errorf("capacity over macro %v >= open corner %v", capCenter, capCorner)
	}
	if capCenter <= 0 {
		t.Error("macro derate should leave some capacity")
	}
}

func TestDeterministic(t *testing.T) {
	a := Estimate(hotspot(t, 50), DefaultOptions())
	b := Estimate(hotspot(t, 50), DefaultOptions())
	if a.OverflowPct != b.OverflowPct || a.TotalDemand != b.TotalDemand {
		t.Error("estimate nondeterministic")
	}
}

func TestSinglePinNetsIgnored(t *testing.T) {
	b := netlist.NewBuilder("sp")
	b.SetDie(geom.RectXYWH(0, 0, 10_000, 10_000))
	m := b.AddMacro("m", 100, 100, "")
	n := b.Net("n")
	b.Connect(m, n, netlist.DirOut)
	d := b.MustBuild()
	pl := placement.New(d)
	pl.Place(m, geom.Pt(0, 0))
	res := Estimate(pl, DefaultOptions())
	if res.TotalDemand != 0 {
		t.Errorf("single-pin net contributed demand %v", res.TotalDemand)
	}
}
