// Seed derivation: every task's RNG seed is a pure function of the base
// seed and the task's stable path (hierarchy node id, chain index,
// candidate index — never a worker id or a completion order), so
// annealing sequences survive any refactor of task ordering. The golden
// tests in derive_test.go pin the exact values; changing this function
// changes every seeded placement and must be a deliberate decision.
package sched

// Derive mixes a base seed with a stable task path into an independent
// RNG seed. Components are folded left to right through a
// splitmix64-style finalizer, so Derive(s, a, b) == Derive(Derive(s, a), b)
// and nearby paths (sibling subtrees, adjacent chains) get statistically
// unrelated streams.
func Derive(seed int64, path ...int64) int64 {
	h := uint64(seed)
	for _, c := range path {
		h = mix64(h + 0x9e3779b97f4a7c15 + mix64(uint64(c)))
	}
	return int64(h)
}

// mix64 is the splitmix64 output finalizer (Steele et al., "Fast
// splittable pseudorandom number generators").
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
