package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// FuzzPoolDAG drives the scheduler with arbitrary DAG shapes decoded
// from the fuzz input: each input byte is the fan-out of one node in a
// breadth-first expansion (0 = leaf), which covers skewed trees,
// single-child chains, and single-node DAGs. For every shape it asserts
// the scheduler's invariants: no task is dropped, no task runs twice,
// the per-source counters balance, and — on the odd iterations — a ctx
// cancelled mid-run still drains the whole DAG without deadlock.
func FuzzPoolDAG(f *testing.F) {
	f.Add([]byte{3, 2, 2, 0}, uint8(4), false)       // shallow bushy tree
	f.Add([]byte{1, 1, 1, 1, 1, 1}, uint8(1), false) // single-child chain, serial pool
	f.Add([]byte{0}, uint8(2), false)                // one leaf
	f.Add([]byte{8, 0, 0, 0, 0, 0, 0, 0, 7}, uint8(3), true)
	f.Add([]byte{2, 2, 2, 2, 2, 2, 2}, uint8(8), true) // wide tree, cancelled
	f.Add([]byte{5, 1, 0, 4, 1, 0, 3}, uint8(2), true)

	f.Fuzz(func(t *testing.T, shape []byte, width uint8, cancelMidway bool) {
		if len(shape) == 0 || len(shape) > 64 {
			return
		}
		n := int(width%8) + 1
		p := NewPool(n)
		defer p.Close()

		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()

		// nodeRuns[id] counts executions of DAG node id; ids are assigned
		// deterministically as each task forks (parent allocates its
		// children's ids before spawning).
		var nextID int64
		var mu sync.Mutex
		nodeRuns := map[int64]int{}

		// fanout of node i comes from shape[i % len(shape)], capped so the
		// total DAG stays small. total counts allocated nodes.
		var total int64 = 1
		const maxNodes = 512

		var run func(ctx context.Context, id int64, depth int)
		run = func(ctx context.Context, id int64, depth int) {
			mu.Lock()
			nodeRuns[id]++
			mu.Unlock()
			if depth > 12 {
				return
			}
			fan := int(shape[int(id)%len(shape)] % 6)
			if fan == 0 {
				return
			}
			if atomic.AddInt64(&total, int64(fan)) > maxNodes {
				atomic.AddInt64(&total, -int64(fan))
				return
			}
			g := p.Group(ctx)
			for k := 0; k < fan; k++ {
				cid := atomic.AddInt64(&nextID, 1)
				g.Go(func(ctx context.Context) { run(ctx, cid, depth+1) })
			}
			if cancelMidway && id%7 == 3 {
				cancel()
			}
			if err := g.Wait(); err != nil && err != context.Canceled {
				t.Errorf("Wait: %v", err)
			}
		}
		run(ctx, 0, 0)

		// Every allocated node ran exactly once — cancellation drains, it
		// does not drop.
		mu.Lock()
		defer mu.Unlock()
		if int64(len(nodeRuns)) != atomic.LoadInt64(&total) {
			t.Fatalf("%d nodes ran, %d allocated", len(nodeRuns), total)
		}
		for id, c := range nodeRuns {
			if c != 1 {
				t.Fatalf("node %d ran %d times", id, c)
			}
		}
		st := p.Stats()
		if st.Submitted != st.Completed {
			t.Fatalf("submitted %d != completed %d", st.Submitted, st.Completed)
		}
		if st.LocalPops+st.Steals+st.InjectRuns != st.Completed {
			t.Fatalf("steal counters don't balance: %+v", st)
		}
		if st.Completed != uint64(total-1) { // root ran inline, not via Go
			t.Fatalf("completed %d tasks, want %d", st.Completed, total-1)
		}
	})
}
