// Package sched is the work-stealing fork-join scheduler behind every
// parallel stage of a solve: restart chains inside one level
// (internal/layout), independent sibling subtrees of the hierarchy
// recursion (internal/core), and λ-candidates of a sweep
// (internal/flows) all become tasks on one shared Pool.
//
// The design goal is determinism, not raw queue throughput: tasks are
// coarse (an annealing chain or a whole level solve, microseconds to
// seconds each), so every queue operation runs under one pool mutex and
// the classic lock-free deque is not needed. What the scheduler does
// guarantee:
//
//   - Tasks communicate only through caller-indexed result slots, and
//     callers reduce by index, so which worker ran which task can never
//     change an outcome.
//   - A Group's Wait helps: it executes queued tasks (its own or stolen)
//     instead of blocking, so nested fork-join recursion cannot deadlock
//     and a Pool with zero background workers degenerates to plain
//     depth-first serial execution on the caller's goroutine.
//   - Cancellation drains: a cancelled ctx does not drop queued tasks —
//     every task still runs (bodies are expected to observe ctx and exit
//     quickly), counters still balance, and Wait returns after the group
//     is fully accounted.
//
// Each worker owns a deque: the owner pushes and pops at the tail (LIFO,
// depth-first, cache-warm), thieves and helpers take from the head
// (FIFO, breadth-first — they steal the oldest, largest-granularity
// work). External submissions (from goroutines that are not pool
// workers) go to a shared inject queue.
package sched

import (
	"context"
	"runtime"
	"sync"
)

// Task is one unit of work. The ctx passed in derives from the Group's
// ctx; bodies should observe cancellation and return early, because
// queued tasks still run after the ctx is cancelled (the pool drains
// rather than drops).
type Task func(ctx context.Context)

// Stats counts scheduler traffic since the pool was created. After all
// groups have been waited, Submitted == Completed and Completed ==
// LocalPops + Steals + InjectRuns.
type Stats struct {
	// Submitted counts Group.Go calls.
	Submitted uint64
	// Completed counts finished tasks.
	Completed uint64
	// LocalPops counts tasks run by the worker that owned their deque.
	LocalPops uint64
	// Steals counts tasks taken from another worker's deque.
	Steals uint64
	// InjectRuns counts tasks run from the shared inject queue.
	InjectRuns uint64
}

// Pool is a fixed-size work-stealing scheduler. The zero value is not
// usable; create one with NewPool and release it with Close.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ws     []*worker // background workers; len = parallelism-1
	inject []*task   // external submissions, FIFO
	closed bool
	wg     sync.WaitGroup

	par   int
	stats Stats
}

type worker struct {
	p     *Pool
	id    int
	deque []*task // guarded by p.mu; owner uses the tail, thieves the head
}

type task struct {
	g  *Group
	fn Task
}

type workerKey struct{}

// withWorker tags ctx with the executing worker (nil for helpers running
// on non-worker goroutines), shadowing any tag from an outer task.
func withWorker(ctx context.Context, w *worker) context.Context {
	return context.WithValue(ctx, workerKey{}, w)
}

func workerOf(ctx context.Context, p *Pool) *worker {
	w, _ := ctx.Value(workerKey{}).(*worker)
	if w == nil || w.p != p {
		return nil
	}
	return w
}

// NewPool creates a pool with the given parallelism degree; n <= 0 means
// runtime.GOMAXPROCS(0). The pool starts n-1 background workers — the
// caller's goroutine is the n-th lane, because Group.Wait executes tasks
// itself. NewPool(1) therefore starts no goroutines at all and every
// task runs serially inside Wait.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{par: n}
	p.cond = sync.NewCond(&p.mu)
	// Build the whole worker set before starting any goroutine: a
	// running worker scans p.ws inside takeLocked, so the slice must be
	// complete (and published) before the first loop begins.
	for i := 0; i < n-1; i++ {
		p.ws = append(p.ws, &worker{p: p, id: i})
	}
	for _, w := range p.ws {
		p.wg.Add(1)
		go w.loop()
	}
	return p
}

// Parallelism returns the pool's degree (workers + the caller's lane).
func (p *Pool) Parallelism() int { return p.par }

// Stats snapshots the traffic counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close stops the background workers after the queues drain. Callers
// must have waited all groups first; Close does not cancel anything.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Group tracks a set of forked tasks for one join point. Create with
// Pool.Group, fork with Go, join with Wait. A Group is owned by the
// goroutine that created it: Go and Wait are not safe for concurrent use
// from multiple goroutines (tasks create their own child Groups
// instead).
type Group struct {
	p    *Pool
	ctx  context.Context
	open int // outstanding tasks, guarded by p.mu
}

// Group starts an empty task group joined on ctx. Pass the ctx the
// current task body received (not a detached one) so the scheduler can
// keep spawned subtasks on the current worker's deque.
func (p *Pool) Group(ctx context.Context) *Group {
	return &Group{p: p, ctx: ctx}
}

// Go forks one task. If the calling goroutine is a pool worker, the task
// is pushed on that worker's deque (tail); otherwise it goes to the
// shared inject queue.
func (g *Group) Go(fn Task) {
	t := &task{g: g, fn: fn}
	p := g.p
	p.mu.Lock()
	g.open++
	p.stats.Submitted++
	if w := workerOf(g.ctx, p); w != nil {
		w.deque = append(w.deque, t)
	} else {
		p.inject = append(p.inject, t)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Wait joins the group: it executes queued tasks (its own first, then
// injected, then stolen) until every task forked on the group has
// completed, and returns the group ctx's error, if any. Helping is what
// makes nested fork-join safe: a Wait inside a task keeps the worker
// productive instead of parking it, so the DAG always makes progress.
func (g *Group) Wait() error {
	p := g.p
	p.mu.Lock()
	self := workerOf(g.ctx, p)
	for g.open > 0 {
		if t, src := p.takeLocked(self); t != nil {
			p.mu.Unlock()
			p.run(self, t, src)
			p.mu.Lock()
			continue
		}
		p.cond.Wait()
	}
	p.mu.Unlock()
	return g.ctx.Err()
}

const (
	srcLocal = iota
	srcInject
	srcSteal
)

// takeLocked picks the next runnable task under p.mu: the caller's own
// deque tail first, then the inject queue head, then a steal from the
// head of the first non-empty deque scanning away from the caller.
func (p *Pool) takeLocked(self *worker) (*task, int) {
	if self != nil && len(self.deque) > 0 {
		t := self.deque[len(self.deque)-1]
		self.deque[len(self.deque)-1] = nil
		self.deque = self.deque[:len(self.deque)-1]
		return t, srcLocal
	}
	if len(p.inject) > 0 {
		t := p.inject[0]
		p.inject[0] = nil
		p.inject = p.inject[1:]
		return t, srcInject
	}
	start := 0
	if self != nil {
		start = self.id + 1
	}
	for k := 0; k < len(p.ws); k++ {
		w := p.ws[(start+k)%len(p.ws)]
		if len(w.deque) > 0 {
			t := w.deque[0]
			w.deque[0] = nil
			w.deque = w.deque[1:]
			return t, srcSteal
		}
	}
	return nil, 0
}

// run executes one task on the given worker (nil for helpers) and
// retires it. The retirement is deferred so a panicking task body still
// unblocks its group's Wait instead of deadlocking the pool.
func (p *Pool) run(w *worker, t *task, src int) {
	defer p.finish(t, src)
	t.fn(withWorker(t.g.ctx, w))
}

func (p *Pool) finish(t *task, src int) {
	p.mu.Lock()
	switch src {
	case srcLocal:
		p.stats.LocalPops++
	case srcInject:
		p.stats.InjectRuns++
	default:
		p.stats.Steals++
	}
	p.stats.Completed++
	t.g.open--
	if t.g.open == 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// loop is a background worker: run anything runnable, park when idle.
func (w *worker) loop() {
	p := w.p
	defer p.wg.Done()
	p.mu.Lock()
	for {
		if t, src := p.takeLocked(w); t != nil {
			p.mu.Unlock()
			p.run(w, t, src)
			p.mu.Lock()
			continue
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		p.cond.Wait()
	}
}
