package sched

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestForkJoinRunsEveryTask: a flat fan-out completes exactly once per
// task at several pool widths, including the zero-background-worker
// serial pool.
func TestForkJoinRunsEveryTask(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		p := NewPool(n)
		var ran [100]int32
		g := p.Group(context.Background())
		for i := range ran {
			i := i
			g.Go(func(context.Context) { atomic.AddInt32(&ran[i], 1) })
		}
		if err := g.Wait(); err != nil {
			t.Fatalf("n=%d: Wait: %v", n, err)
		}
		for i := range ran {
			if ran[i] != 1 {
				t.Fatalf("n=%d: task %d ran %d times", n, i, ran[i])
			}
		}
		st := p.Stats()
		if st.Submitted != 100 || st.Completed != 100 {
			t.Fatalf("n=%d: stats %+v", n, st)
		}
		if st.LocalPops+st.Steals+st.InjectRuns != st.Completed {
			t.Fatalf("n=%d: sources don't balance: %+v", n, st)
		}
		p.Close()
	}
}

// TestNestedForkJoin: a recursive tree of groups (each task forks its
// children and waits on them) joins correctly — the helping Wait is what
// keeps this from deadlocking when tasks outnumber workers.
func TestNestedForkJoin(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		p := NewPool(n)
		var leaves int64
		var spawn func(ctx context.Context, depth int)
		spawn = func(ctx context.Context, depth int) {
			if depth == 0 {
				atomic.AddInt64(&leaves, 1)
				return
			}
			g := p.Group(ctx)
			for i := 0; i < 3; i++ {
				g.Go(func(ctx context.Context) { spawn(ctx, depth-1) })
			}
			if err := g.Wait(); err != nil {
				t.Errorf("nested Wait: %v", err)
			}
		}
		spawn(context.Background(), 5) // 3^5 = 243 leaves
		if leaves != 243 {
			t.Fatalf("n=%d: %d leaves, want 243", n, leaves)
		}
		st := p.Stats()
		if st.Submitted != st.Completed {
			t.Fatalf("n=%d: submitted %d != completed %d", n, st.Submitted, st.Completed)
		}
		p.Close()
	}
}

// TestResultsIndexedByTask: results land in caller-indexed slots
// regardless of execution order, so a best-by-index reduction is
// schedule-independent.
func TestResultsIndexedByTask(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	results := make([]int, 64)
	g := p.Group(context.Background())
	for i := range results {
		i := i
		g.Go(func(context.Context) { results[i] = i * i })
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != i*i {
			t.Fatalf("slot %d = %d", i, r)
		}
	}
}

// TestCancellationDrains: cancelling the ctx does not drop tasks — every
// queued task still runs (and observes the cancelled ctx), counters
// balance, and Wait returns the ctx error without deadlock.
func TestCancellationDrains(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var ran, sawCancel int64
	g := p.Group(ctx)
	for i := 0; i < 50; i++ {
		g.Go(func(ctx context.Context) {
			atomic.AddInt64(&ran, 1)
			if ctx.Err() != nil {
				atomic.AddInt64(&sawCancel, 1)
			}
		})
	}
	cancel()
	err := g.Wait()
	if err != context.Canceled {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if ran != 50 {
		t.Fatalf("ran %d of 50 tasks after cancel", ran)
	}
	st := p.Stats()
	if st.Submitted != st.Completed {
		t.Fatalf("drain imbalance: %+v", st)
	}
	t.Logf("%d/%d tasks observed the cancelled ctx", sawCancel, ran)
}

// TestWaitHelpsWhileBlocked: with a single-lane pool, Wait itself must
// execute the tasks — if it merely parked, this would deadlock (guarded
// by the test timeout).
func TestWaitHelpsWhileBlocked(t *testing.T) {
	p := NewPool(1) // zero background workers
	defer p.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		g := p.Group(context.Background())
		sum := 0
		for i := 1; i <= 10; i++ {
			i := i
			g.Go(func(context.Context) { sum += i }) // serial pool: no race
		}
		if err := g.Wait(); err != nil {
			t.Errorf("Wait: %v", err)
		}
		if sum != 55 {
			t.Errorf("sum = %d, want 55", sum)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("single-lane Wait deadlocked")
	}
	if st := p.Stats(); st.InjectRuns != st.Completed || st.Completed != 10 {
		t.Fatalf("serial pool should run everything from the inject queue: %+v", st)
	}
}

// TestStealsHappen: a deliberately skewed load — one task forks
// everything from a worker's deque while the external Wait helper is
// kept busy on a decoy — must show stolen tasks on a wide pool, proving
// the deques really are shared. The skew is probabilistic (scheduling
// decides who runs the forker), so the scenario retries a few times.
func TestStealsHappen(t *testing.T) {
	for attempt := 0; attempt < 5; attempt++ {
		p := NewPool(8)
		g := p.Group(context.Background())
		// Decoy first: the inject queue is FIFO, so the external Wait
		// helper picks this up and sleeps while a background worker gets
		// the forker.
		g.Go(func(context.Context) { time.Sleep(20 * time.Millisecond) })
		g.Go(func(ctx context.Context) {
			if workerOf(ctx, p) == nil {
				return // ran on the helper after all; retry the scenario
			}
			// On a background worker: these forks land on its deque, and
			// the seven idle workers can only steal them.
			sub := p.Group(ctx)
			for i := 0; i < 200; i++ {
				sub.Go(func(context.Context) { time.Sleep(200 * time.Microsecond) })
			}
			sub.Wait()
		})
		if err := g.Wait(); err != nil {
			t.Fatal(err)
		}
		st := p.Stats()
		p.Close()
		if st.Steals > 0 {
			t.Logf("attempt %d stats: %+v", attempt, st)
			return
		}
	}
	t.Fatal("no steals in 5 skewed-load attempts")
}

// TestDeriveGolden pins the exact seed-derivation values. These goldens
// are load-bearing: every (seed, task path) pair keys an annealing
// sequence, so if this test starts failing, a refactor has silently
// reseeded every placement in the system. Update the goldens only as a
// deliberate, changelog-worthy decision.
func TestDeriveGolden(t *testing.T) {
	cases := []struct {
		seed int64
		path []int64
		want int64
	}{
		{1, []int64{0}, -7995527694508729151},
		{1, []int64{1}, -7709003533997568518},
		{1, []int64{2}, 8077464624635323797},
		{1, []int64{0, 0}, 6791897765849424158},
		{1, []int64{0, 1}, -2828607146001787265},
		{1, []int64{1, 0}, 4610298544566417740},
		{7, []int64{42}, -8146229110753736015},
		{7, []int64{42, 3}, 828376530489886008},
		{-3, []int64{5, 0, 2}, 7068971415039015460},
		{0, nil, 0},
	}
	for _, c := range cases {
		if got := Derive(c.seed, c.path...); got != c.want {
			t.Errorf("Derive(%d, %v) = %d, want %d", c.seed, c.path, got, c.want)
		}
	}
}

// TestDeriveComposes: folding a path one component at a time equals
// deriving it in one call, which is what lets a parent hand a derived
// seed to a subtree without knowing the subtree's internal structure.
func TestDeriveComposes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		s := rng.Int63() - rng.Int63()
		a, b, c := rng.Int63()%100, rng.Int63()%100, rng.Int63()%100
		if Derive(s, a, b, c) != Derive(Derive(Derive(s, a), b), c) {
			t.Fatalf("Derive does not compose at seed %d path (%d,%d,%d)", s, a, b, c)
		}
	}
}

// TestDeriveGoldenStreams pins the first values drawn from math/rand
// sources seeded with derived seeds — the actual annealing-facing
// contract: same (seed, path), same RNG stream, forever.
func TestDeriveGoldenStreams(t *testing.T) {
	stream := func(seed int64, path ...int64) [4]int64 {
		rng := rand.New(rand.NewSource(Derive(seed, path...)))
		var out [4]int64
		for i := range out {
			out[i] = rng.Int63()
		}
		return out
	}
	if stream(1, 2) != stream(1, 2) {
		t.Fatal("stream not reproducible")
	}
	if stream(1, 2) == stream(1, 3) {
		t.Fatal("adjacent paths share a stream")
	}
	want := [4]int64{8731806076406858656, 3995661890903546397, 9039338220210273036, 246199271476187615}
	if got := stream(1, 2); got != want {
		t.Fatalf("stream(1,2) = %v, want %v", got, want)
	}
}
