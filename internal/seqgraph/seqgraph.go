// Package seqgraph builds the sequential graph Gseq of the paper (§II-C,
// §IV-D): a directed graph whose vertices are macros, multi-bit registers
// and multi-bit ports, and whose edges capture one-sequential-hop
// connectivity with the bus width that crosses the hop.
//
// Construction from Gnet follows the paper's four steps:
//
//  1. combinational cells are elided by tracing through them,
//  2. flops and ports are clustered into arrays using component names
//     (name[n] / name_n),
//  3. edges between sequential components are inferred by traversing the
//     combinational fanout cones of every driven net,
//  4. array nodes narrower than a threshold are discarded to reduce graph
//     size while keeping the relatively big components.
//
// Edge width is exact per bit: the width of edge (u, v) is the number of
// distinct output nets of u whose combinational cone reaches v. A path of k
// edges has latency k (k sequential captures).
package seqgraph

import (
	"sort"

	"repro/internal/netlist"
)

// NodeKind classifies Gseq vertices.
type NodeKind uint8

const (
	// KindRegister is a multi-bit register (clustered flops).
	KindRegister NodeKind = iota
	// KindMacro is a hard macro.
	KindMacro
	// KindPort is a multi-bit port (clustered top-level port bits).
	KindPort
)

func (k NodeKind) String() string {
	switch k {
	case KindRegister:
		return "register"
	case KindMacro:
		return "macro"
	case KindPort:
		return "port"
	}
	return "?"
}

// Node is one Gseq vertex.
type Node struct {
	Kind NodeKind
	Name string // array base name (full hierarchical prefix kept)
	Bits int32  // node weight: number of clustered bits (1 for macros' cell count)
	// Cells are the Gnet cells clustered into this node: the flop bits of a
	// register, the bit cells of a port, or the single macro cell.
	Cells []netlist.CellID
	// Hier is the hierarchy node of the first member cell; registers never
	// cluster across hierarchy levels because base names keep full paths.
	Hier netlist.HierID
}

// Edge is a directed Gseq edge u -> v carrying Bits bus width.
type Edge struct {
	To   int32
	Bits int32
}

// Graph is the sequential graph.
type Graph struct {
	D     *netlist.Design
	Nodes []Node
	// Out[u] lists the outgoing edges of node u, sorted by target.
	Out [][]Edge
	// CellNode maps every design cell to its Gseq node, or -1 (combinational
	// cells and discarded narrow arrays).
	CellNode []int32
}

// Params controls Gseq construction.
type Params struct {
	// MinBits discards register and port arrays narrower than this
	// (macros are always kept). The paper uses an unspecified threshold;
	// 2 removes single-bit control flops by default.
	MinBits int32
}

// DefaultParams returns the default construction parameters.
func DefaultParams() Params { return Params{MinBits: 2} }

// Build constructs Gseq from a design.
func Build(d *netlist.Design, p Params) *Graph {
	g := &Graph{D: d, CellNode: make([]int32, len(d.Cells))}
	for i := range g.CellNode {
		g.CellNode[i] = -1
	}

	// Steps 2 and 4: cluster flops and ports into arrays, filter narrow ones.
	type cluster struct {
		kind  NodeKind
		cells []netlist.CellID
	}
	byBase := map[string]*cluster{}
	var order []string // deterministic node order
	addMember := func(base string, kind NodeKind, cid netlist.CellID) {
		cl, ok := byBase[base]
		if !ok {
			cl = &cluster{kind: kind}
			byBase[base] = cl
			order = append(order, base)
		}
		cl.cells = append(cl.cells, cid)
	}
	for i := range d.Cells {
		cid := netlist.CellID(i)
		c := d.Cell(cid)
		switch c.Kind {
		case netlist.KindFlop:
			base, _, _ := netlist.ArrayBase(c.Name)
			addMember("r:"+base, KindRegister, cid)
		case netlist.KindPort:
			base, _, _ := netlist.ArrayBase(c.Name)
			addMember("p:"+base, KindPort, cid)
		case netlist.KindMacro:
			// Every macro is its own node.
			g.Nodes = append(g.Nodes, Node{
				Kind:  KindMacro,
				Name:  c.Name,
				Bits:  1,
				Cells: []netlist.CellID{cid},
				Hier:  c.Hier,
			})
			g.CellNode[cid] = int32(len(g.Nodes) - 1)
		}
	}
	for _, base := range order {
		cl := byBase[base]
		if int32(len(cl.cells)) < p.MinBits {
			continue // step 4: discard narrow arrays
		}
		n := Node{
			Kind:  cl.kind,
			Name:  base[2:],
			Bits:  int32(len(cl.cells)),
			Cells: cl.cells,
			Hier:  d.Cell(cl.cells[0]).Hier,
		}
		g.Nodes = append(g.Nodes, n)
		id := int32(len(g.Nodes) - 1)
		for _, cid := range cl.cells {
			g.CellNode[cid] = id
		}
	}

	g.buildEdges()
	return g
}

// buildEdges performs steps 1 and 3: for every output net of every Gseq
// node, trace the combinational cone and record which Gseq nodes it reaches.
func (g *Graph) buildEdges() {
	d := g.D
	g.Out = make([][]Edge, len(g.Nodes))

	// Per-net sink lists and per-cell output nets, built once.
	netEpoch := make([]int32, len(d.Nets))
	targetEpoch := make([]int32, len(g.Nodes))
	for i := range netEpoch {
		netEpoch[i] = -1
	}
	for i := range targetEpoch {
		targetEpoch[i] = -1
	}
	epoch := int32(0)

	bitCount := make(map[[2]int32]int32) // (u, v) -> bits
	var netStack []netlist.NetID

	for u := range g.Nodes {
		for _, cid := range g.Nodes[u].Cells {
			cell := d.Cell(cid)
			for _, pid := range cell.Pins {
				pin := d.Pin(pid)
				if pin.Dir != netlist.DirOut {
					continue
				}
				// One driven net = one bit. BFS its combinational cone.
				epoch++
				netStack = netStack[:0]
				netStack = append(netStack, pin.Net)
				netEpoch[pin.Net] = epoch
				for len(netStack) > 0 {
					nid := netStack[len(netStack)-1]
					netStack = netStack[:len(netStack)-1]
					for _, spid := range d.Net(nid).Pins {
						sp := d.Pin(spid)
						if sp.Dir != netlist.DirIn {
							continue
						}
						sink := d.Cell(sp.Cell)
						if sink.Kind == netlist.KindComb {
							// Step 1: trace through combinational cells.
							for _, opid := range sink.Pins {
								op := d.Pin(opid)
								if op.Dir == netlist.DirOut && netEpoch[op.Net] != epoch {
									netEpoch[op.Net] = epoch
									netStack = append(netStack, op.Net)
								}
							}
							continue
						}
						v := g.CellNode[sp.Cell]
						if v < 0 || int(v) == u {
							continue // discarded array or self-loop
						}
						if targetEpoch[v] != epoch {
							targetEpoch[v] = epoch
							bitCount[[2]int32{int32(u), v}]++
						}
					}
				}
			}
		}
	}

	for k, bits := range bitCount {
		g.Out[k[0]] = append(g.Out[k[0]], Edge{To: k[1], Bits: bits})
	}
	for u := range g.Out {
		sort.Slice(g.Out[u], func(i, j int) bool { return g.Out[u][i].To < g.Out[u][j].To })
	}
}

// NumEdges returns the total directed edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.Out {
		n += len(es)
	}
	return n
}

// NodeByName returns the index of the named node, or -1. O(n); for tests.
func (g *Graph) NodeByName(name string) int32 {
	for i := range g.Nodes {
		if g.Nodes[i].Name == name {
			return int32(i)
		}
	}
	return -1
}

// EdgeBits returns the width of edge (u, v) and whether it exists.
func (g *Graph) EdgeBits(u, v int32) (int32, bool) {
	es := g.Out[u]
	i := sort.Search(len(es), func(i int) bool { return es[i].To >= v })
	if i < len(es) && es[i].To == v {
		return es[i].Bits, true
	}
	return 0, false
}

// Stats is the Gseq row of Table I.
type Stats struct {
	Nodes     int
	Registers int
	Macros    int
	Ports     int
	Edges     int
	TotalBits int64
}

// Stats summarizes the graph.
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: len(g.Nodes), Edges: g.NumEdges()}
	for i := range g.Nodes {
		switch g.Nodes[i].Kind {
		case KindRegister:
			s.Registers++
		case KindMacro:
			s.Macros++
		case KindPort:
			s.Ports++
		}
		s.TotalBits += int64(g.Nodes[i].Bits)
	}
	return s
}
