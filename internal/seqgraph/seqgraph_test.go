package seqgraph

import (
	"fmt"
	"testing"

	"repro/internal/netlist"
)

// pipeline builds: in[0..7] -> comb -> a[0..7] -> comb -> b[0..7] -> mem,
// plus a single-bit control flop that the MinBits filter must drop.
func pipeline(t *testing.T) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("pipe")
	mem := b.AddMacro("u/mem", 3000, 2000, "u")
	ctl := b.AddFlop("ctl", "")
	b.Wire("n_ctl", ctl) // dangling single-bit register
	for i := 0; i < 8; i++ {
		in := b.AddPort(fmt.Sprintf("in[%d]", i))
		g1 := b.AddComb(fmt.Sprintf("g1_%dx", i), 200, "")
		a := b.AddFlop(fmt.Sprintf("u/a[%d]", i), "u")
		g2 := b.AddComb(fmt.Sprintf("g2_%dx", i), 200, "")
		bb := b.AddFlop(fmt.Sprintf("u/b[%d]", i), "u")
		b.Wire(fmt.Sprintf("ni%d", i), in, g1)
		b.Wire(fmt.Sprintf("na%d", i), g1, a)
		b.Wire(fmt.Sprintf("nb%d", i), a, g2)
		b.Wire(fmt.Sprintf("nc%d", i), g2, bb)
		b.Wire(fmt.Sprintf("nd%d", i), bb, mem)
	}
	return b.MustBuild()
}

func TestBuildClusters(t *testing.T) {
	d := pipeline(t)
	g := Build(d, DefaultParams())

	st := g.Stats()
	if st.Macros != 1 {
		t.Errorf("macros = %d, want 1", st.Macros)
	}
	if st.Registers != 2 { // u/a and u/b; ctl dropped by MinBits
		t.Errorf("registers = %d, want 2", st.Registers)
	}
	if st.Ports != 1 {
		t.Errorf("ports = %d, want 1", st.Ports)
	}
	a := g.NodeByName("u/a")
	if a < 0 || g.Nodes[a].Bits != 8 {
		t.Fatalf("register u/a missing or wrong width: %+v", g.Nodes[a])
	}
	if g.NodeByName("ctl") >= 0 {
		t.Error("single-bit ctl should be discarded")
	}
	in := g.NodeByName("in")
	if in < 0 || g.Nodes[in].Kind != KindPort || g.Nodes[in].Bits != 8 {
		t.Fatalf("port cluster wrong: %+v", g.Nodes[in])
	}
}

func TestBuildEdges(t *testing.T) {
	d := pipeline(t)
	g := Build(d, DefaultParams())
	in := g.NodeByName("in")
	a := g.NodeByName("u/a")
	bn := g.NodeByName("u/b")
	mem := g.NodeByName("u/mem")

	if bits, ok := g.EdgeBits(in, a); !ok || bits != 8 {
		t.Errorf("in->a = (%d,%v), want 8 bits", bits, ok)
	}
	if bits, ok := g.EdgeBits(a, bn); !ok || bits != 8 {
		t.Errorf("a->b = (%d,%v), want 8 bits", bits, ok)
	}
	if bits, ok := g.EdgeBits(bn, mem); !ok || bits != 8 {
		t.Errorf("b->mem = (%d,%v), want 8 bits", bits, ok)
	}
	// No skip edges: combinational tracing must stop at registers.
	if _, ok := g.EdgeBits(in, bn); ok {
		t.Error("in->b edge should not exist (blocked by register a)")
	}
	if _, ok := g.EdgeBits(a, mem); ok {
		t.Error("a->mem edge should not exist (blocked by register b)")
	}
}

func TestMacroFanout(t *testing.T) {
	// Macro drives a 4-bit bus into a register: edge width 4 from the
	// macro's four driven nets.
	b := netlist.NewBuilder("m")
	mem := b.AddMacro("mem", 1000, 1000, "")
	for i := 0; i < 4; i++ {
		r := b.AddFlop(fmt.Sprintf("q[%d]", i), "")
		b.Wire(fmt.Sprintf("n%d", i), mem, r)
	}
	d := b.MustBuild()
	g := Build(d, DefaultParams())
	m := g.NodeByName("mem")
	q := g.NodeByName("q")
	if bits, ok := g.EdgeBits(m, q); !ok || bits != 4 {
		t.Errorf("mem->q = (%d,%v), want 4", bits, ok)
	}
}

func TestReconvergenceCountsOnce(t *testing.T) {
	// One register bit fans out through two comb cells that reconverge on
	// the same target register: the edge is still 1 bit wide.
	b := netlist.NewBuilder("rc")
	src := b.AddFlop("s[0]", "")
	s2 := b.AddFlop("s[1]", "")
	g1 := b.AddComb("g1", 100, "")
	g2 := b.AddComb("g2", 100, "")
	dst0 := b.AddFlop("t[0]", "")
	dst1 := b.AddFlop("t[1]", "")
	b.Wire("ns", src, g1, g2)
	b.Wire("n1", g1, dst0)
	b.Wire("n2", g2, dst0)
	b.Wire("ns2", s2, dst1) // keep t 2 bits wide via a second path
	d := b.MustBuild()
	g := Build(d, DefaultParams())
	s := g.NodeByName("s")
	tt := g.NodeByName("t")
	bits, ok := g.EdgeBits(s, tt)
	if !ok {
		t.Fatal("s->t edge missing")
	}
	// s[0] reaches t (once, despite two paths); s[1] reaches t. Want 2.
	if bits != 2 {
		t.Errorf("s->t bits = %d, want 2", bits)
	}
}

func TestSelfLoopSkipped(t *testing.T) {
	b := netlist.NewBuilder("loop")
	r0 := b.AddFlop("r[0]", "")
	r1 := b.AddFlop("r[1]", "")
	g1 := b.AddComb("inv", 100, "")
	b.Wire("n0", r0, g1)
	b.Wire("n1", g1, r1) // r[0] -> r[1] inside the same array: self loop
	d := b.MustBuild()
	g := Build(d, DefaultParams())
	r := g.NodeByName("r")
	if r < 0 {
		t.Fatal("register r missing")
	}
	if len(g.Out[r]) != 0 {
		t.Errorf("self loop recorded: %+v", g.Out[r])
	}
}

func TestCombLoopTerminates(t *testing.T) {
	// A combinational cycle (illegal RTL, but the builder permits it) must
	// not hang the cone traversal.
	b := netlist.NewBuilder("cyc")
	r := b.AddFlop("r[0]", "")
	r2 := b.AddFlop("r[1]", "")
	c1 := b.AddComb("c1", 100, "")
	c2 := b.AddComb("c2", 100, "")
	t1 := b.AddFlop("t[0]", "")
	t2 := b.AddFlop("t[1]", "")
	b.Wire("n0", r, c1)
	b.Wire("n1", c1, c2, t1)
	b.Wire("n2", c2, c1, t2) // c1 <-> c2 cycle
	b.Wire("nr2", r2, t1, t2)
	d := b.MustBuild()
	g := Build(d, DefaultParams())
	rn := g.NodeByName("r")
	tn := g.NodeByName("t")
	// r[0] reaches t through the cycle (counted once); r[1] directly.
	if bits, ok := g.EdgeBits(rn, tn); !ok || bits != 2 {
		t.Errorf("r->t = (%d,%v), want 2 bits", bits, ok)
	}
}

func TestMinBitsZeroKeepsAll(t *testing.T) {
	d := pipeline(t)
	g := Build(d, Params{MinBits: 0})
	if g.NodeByName("ctl") < 0 {
		t.Error("MinBits=0 should keep single-bit registers")
	}
}

func TestCellNodeMapping(t *testing.T) {
	d := pipeline(t)
	g := Build(d, DefaultParams())
	for i := range d.Cells {
		c := d.Cell(netlist.CellID(i))
		node := g.CellNode[i]
		switch c.Kind {
		case netlist.KindComb:
			if node != -1 {
				t.Errorf("comb cell %s mapped to node %d", c.Name, node)
			}
		case netlist.KindMacro:
			if node < 0 || g.Nodes[node].Kind != KindMacro {
				t.Errorf("macro %s not mapped", c.Name)
			}
		}
	}
}

func TestStatsTotals(t *testing.T) {
	d := pipeline(t)
	g := Build(d, DefaultParams())
	st := g.Stats()
	if st.Nodes != len(g.Nodes) {
		t.Error("stats node count mismatch")
	}
	if st.Edges != 3 {
		t.Errorf("edges = %d, want 3", st.Edges)
	}
	if st.TotalBits != 8+8+8+1 { // in, a, b, mem(1)
		t.Errorf("TotalBits = %d", st.TotalBits)
	}
}

func TestDeterministicBuild(t *testing.T) {
	d := pipeline(t)
	g1 := Build(d, DefaultParams())
	g2 := Build(d, DefaultParams())
	if len(g1.Nodes) != len(g2.Nodes) {
		t.Fatal("node count nondeterministic")
	}
	for i := range g1.Nodes {
		if g1.Nodes[i].Name != g2.Nodes[i].Name {
			t.Fatalf("node order nondeterministic at %d", i)
		}
		if len(g1.Out[i]) != len(g2.Out[i]) {
			t.Fatalf("edges nondeterministic at %d", i)
		}
		for j := range g1.Out[i] {
			if g1.Out[i][j] != g2.Out[i][j] {
				t.Fatalf("edge %d/%d differs", i, j)
			}
		}
	}
}
