package shape

import "testing"

// TestScratchCombineAllocs pins Scratch.CombineH/CombineV at zero
// steady-state allocations: after one warm-up call grows the destination
// buffer to its high-water mark, composing curves into it must not allocate
// — the invariant allocfree enforces statically on the //hidapvet:hotpath
// annotations.
func TestScratchCombineAllocs(t *testing.T) {
	a := FromBoxRotatable(120, 80)
	b := FromBoxRotatable(95, 60)
	var s Scratch
	var dstH, dstV []Point
	var ch, cv Curve
	ch, dstH = s.CombineH(dstH, a, b, 8)
	cv, dstV = s.CombineV(dstV, a, b, 8)

	avg := testing.AllocsPerRun(400, func() {
		ch, dstH = s.CombineH(dstH, a, b, 8)
		cv, dstV = s.CombineV(dstV, a, b, 8)
	})
	if avg != 0 {
		t.Fatalf("Scratch combine allocates %.2f objects/run, want 0", avg)
	}
	if ch.Len() == 0 || cv.Len() == 0 {
		t.Fatal("combined curves unexpectedly empty")
	}
}
