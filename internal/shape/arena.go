package shape

// Span addresses one curve inside an Arena: N Pareto corners starting at
// slab offset Off. The zero Span is the empty curve. Spans are plain values;
// copying one never copies corner data.
type Span struct {
	Off, N int32
}

// Empty reports whether the span holds no corners.
func (s Span) Empty() bool { return s.N == 0 }

// Arena stores the corner points of many curves in two shared int64 slabs —
// widths and heights, structure-of-arrays — so a tree evaluator keeps every
// curve of a slicing tree in two contiguous allocations instead of one
// heap slice per node. Nodes address their corners through Spans; the
// composition and query kernels below read and write the slabs directly and
// are corner-for-corner identical to the Curve operations they mirror
// (mergeH/mergeV, thinInPlace, MinHeightForWidth and friends), which the
// differential tests in arena_test.go pin.
//
// The arena does no region bookkeeping: callers lay out leaf regions and
// per-node slots themselves and guarantee that a combine's destination
// region never overlaps its operand spans. An Arena must not be resized
// while another goroutine reads it; writes to disjoint regions from
// multiple goroutines are safe.
type Arena struct {
	W, H []int64
}

// Resize grows or shrinks the slabs to n corners, preserving existing
// contents up to n. Growth allocates at most once per slab.
func (a *Arena) Resize(n int) {
	if cap(a.W) < n {
		w := make([]int64, n)
		h := make([]int64, n)
		copy(w, a.W)
		copy(h, a.H)
		a.W, a.H = w, h
		return
	}
	a.W, a.H = a.W[:n], a.H[:n]
}

// Len returns the slab length in corners.
func (a *Arena) Len() int { return len(a.W) }

// SetCurve copies c into the slabs at off and returns its span. The caller
// guarantees capacity for c.Len() corners at off.
func (a *Arena) SetCurve(off int32, c Curve) Span {
	for i, p := range c.pts {
		a.W[off+int32(i)] = p.W
		a.H[off+int32(i)] = p.H
	}
	return Span{Off: off, N: int32(len(c.pts))}
}

// SetCurveThinned is SetCurve followed by thinning to at most k corners —
// the slab form of c.Thin(k) — and returns the thinned span.
func (a *Arena) SetCurveThinned(off int32, c Curve, k int) Span {
	s := a.SetCurve(off, c)
	s.N = a.thinAt(s.Off, s.N, k)
	return s
}

// AppendCurve materializes a span's corners onto dst and returns the
// extended slice; FromCanonical turns the result back into a Curve.
func (a *Arena) AppendCurve(dst []Point, s Span) []Point {
	for i := int32(0); i < s.N; i++ {
		dst = append(dst, Point{a.W[s.Off+i], a.H[s.Off+i]})
	}
	return dst
}

// Corner returns the i-th Pareto corner of the span.
//
//hidapvet:hotpath
func (a *Arena) Corner(s Span, i int) Point {
	return Point{a.W[s.Off+int32(i)], a.H[s.Off+int32(i)]}
}

// MinWidth returns the smallest feasible width (0 for the empty span).
//
//hidapvet:hotpath
func (a *Arena) MinWidth(s Span) int64 {
	if s.N == 0 {
		return 0
	}
	return a.W[s.Off]
}

// MinHeight returns the smallest feasible height (0 for the empty span).
//
//hidapvet:hotpath
func (a *Arena) MinHeight(s Span) int64 {
	if s.N == 0 {
		return 0
	}
	return a.H[s.Off+s.N-1]
}

// MinHeightForWidth mirrors Curve.MinHeightForWidth on the slabs: the
// smallest height holding the contents at width at most w, (0, true) for
// the empty span, (0, false) when even the narrowest corner is wider.
//
//hidapvet:hotpath
func (a *Arena) MinHeightForWidth(s Span, w int64) (int64, bool) {
	ws := a.W
	o, n := int(s.Off), int(s.N)
	i := o
	for i < o+n && ws[i] <= w {
		i++
	}
	if i == o {
		if n == 0 {
			return 0, true
		}
		return 0, false
	}
	return a.H[i-1], true
}

// MinWidthForHeight is the transpose of MinHeightForWidth.
//
//hidapvet:hotpath
func (a *Arena) MinWidthForHeight(s Span, h int64) (int64, bool) {
	if s.N == 0 {
		return 0, true
	}
	hs := a.H
	o, e := int(s.Off), int(s.Off+s.N)
	for i := o; i < e; i++ {
		if hs[i] <= h {
			return a.W[i], true
		}
	}
	return 0, false
}

// Fits reports whether a w×h box can hold the span's contents.
//
//hidapvet:hotpath
func (a *Arena) Fits(s Span, w, h int64) bool {
	mh, ok := a.MinHeightForWidth(s, w)
	return ok && mh <= h
}

// CombineH composes l beside r (widths add, heights max) into the region at
// dst and thins to at most k corners — the slab form of Scratch.CombineH,
// corner for corner. The caller guarantees l.N+r.N corners of capacity at
// dst and that the destination region overlaps neither operand span.
//
//hidapvet:hotpath
func (a *Arena) CombineH(dst int32, l, r Span, k int) Span {
	return a.combineAt(dst, l, r, k, true)
}

// CombineV is the vertical-stack counterpart of CombineH (heights add,
// widths max), the slab form of Scratch.CombineV.
//
//hidapvet:hotpath
func (a *Arena) CombineV(dst int32, l, r Span, k int) Span {
	return a.combineAt(dst, l, r, k, false)
}

//hidapvet:hotpath
func (a *Arena) combineAt(dst int32, l, r Span, k int, beside bool) Span {
	// Empty operands mirror Scratch.combine: the other span passes through
	// (copied, so the result never aliases an input) under the caller's
	// thin budget.
	if l.N == 0 {
		n := a.copyAt(dst, r)
		return Span{Off: dst, N: a.thinAt(dst, n, k)}
	}
	if r.N == 0 {
		n := a.copyAt(dst, l)
		return Span{Off: dst, N: a.thinAt(dst, n, k)}
	}
	var s Span
	if beside {
		s = Span{Off: dst, N: a.mergeHAt(dst, l, r)}
	} else {
		s = a.mergeVAt(dst, l, r)
	}
	s.N = a.thinAt(s.Off, s.N, MaxPoints)
	s.N = a.thinAt(s.Off, s.N, k)
	return s
}

// CopyAt copies a span's corners into the region at dst (caller-guaranteed
// capacity s.N) and returns the landed span. It lets a caller that already
// composed a frontier elsewhere in the arena move it into a slot it owns
// without re-running the merge.
//
//hidapvet:hotpath
func (a *Arena) CopyAt(dst int32, s Span) Span {
	return Span{Off: dst, N: a.copyAt(dst, s)}
}

// copyAt copies a span's corners to dst and returns the count.
//
//hidapvet:hotpath
func (a *Arena) copyAt(dst int32, s Span) int32 {
	copy(a.W[dst:dst+s.N], a.W[s.Off:s.Off+s.N])
	copy(a.H[dst:dst+s.N], a.H[s.Off:s.Off+s.N])
	return s.N
}

// mergeHAt is mergeH on the slabs: the Stockmeyer merge of the horizontal
// juxtaposition, walking the binding height downward. Emits the canonical
// frontier at dst and returns the corner count.
//
//hidapvet:hotpath
func (a *Arena) mergeHAt(dst int32, l, r Span) int32 {
	ws, hs := a.W, a.H
	i, j := int(l.Off), int(r.Off)
	le, re := i+int(l.N), j+int(r.N)
	w := int(dst)
	for {
		aw, ah := ws[i], hs[i]
		bw, bh := ws[j], hs[j]
		h := ah
		if bh > h {
			h = bh
		}
		ws[w], hs[w] = aw+bw, h
		w++
		switch {
		case ah > bh:
			if i++; i == le {
				return int32(w) - dst
			}
		case bh > ah:
			if j++; j == re {
				return int32(w) - dst
			}
		default:
			i++
			j++
			if i == le || j == re {
				return int32(w) - dst
			}
		}
	}
}

// mergeVAt is mergeV on the slabs: heights add, widths max, walking the
// binding width downward from the wide end. The walk emits widest-first, so
// it writes downward from the top of the destination region (capacity
// l.N+r.N, caller-guaranteed) and the result lands in canonical ascending
// order with no reverse pass; the returned span starts wherever the last
// corner landed.
//
//hidapvet:hotpath
func (a *Arena) mergeVAt(dst int32, l, r Span) Span {
	ws, hs := a.W, a.H
	lo, ro := int(l.Off), int(r.Off)
	i, j := lo+int(l.N)-1, ro+int(r.N)-1
	top := int(dst) + int(l.N) + int(r.N)
	w := top
	for {
		aw, ah := ws[i], hs[i]
		bw, bh := ws[j], hs[j]
		wd := aw
		if bw > wd {
			wd = bw
		}
		w--
		ws[w], hs[w] = wd, ah+bh
		switch {
		case aw > bw:
			if i--; i < lo {
				break
			}
			continue
		case bw > aw:
			if j--; j < ro {
				break
			}
			continue
		default:
			i--
			j--
			if i < lo || j < ro {
				break
			}
			continue
		}
		break
	}
	return Span{Off: int32(w), N: int32(top - w)}
}

// thinAt is thinInPlace on the slabs: reduce the run at off to at most
// limit corners, keeping both extremes with a uniform spread. The sampling
// index never falls behind the write index, so reads stay ahead of writes
// and the result equals thinInPlace exactly.
//
//hidapvet:hotpath
func (a *Arena) thinAt(off, n int32, limit int) int32 {
	if int(n) <= limit || limit < 2 {
		return n
	}
	ws, hs := a.W, a.H
	o := int(off)
	w := 0
	for i := 0; i < limit; i++ {
		idx := o + i*(int(n)-1)/(limit-1)
		pw, ph := ws[idx], hs[idx]
		if w > 0 && pw == ws[o+w-1] && ph == hs[o+w-1] {
			continue
		}
		ws[o+w], hs[o+w] = pw, ph
		w++
	}
	return int32(w)
}
