package shape

import (
	"math/rand"
	"testing"
)

// randCurve builds a random canonical curve with up to maxPts corners.
func randCurve(rng *rand.Rand, maxPts int) Curve {
	n := 1 + rng.Intn(maxPts)
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, Point{1 + rng.Int63n(500), 1 + rng.Int63n(500)})
	}
	return FromPoints(pts)
}

// TestArenaCombineDifferential pins the slab kernels corner for corner
// against the Scratch/Curve composition and query paths across randomized
// operand pairs, including empty operands and every thin budget the
// evaluators use.
func TestArenaCombineDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s Scratch
	var dst []Point
	var a Arena
	a.Resize(4 * MaxPoints)
	for iter := 0; iter < 2000; iter++ {
		l, r := randCurve(rng, 20), randCurve(rng, 20)
		if rng.Intn(10) == 0 {
			l = Curve{}
		}
		if rng.Intn(10) == 0 {
			r = Curve{}
		}
		k := []int{2, 3, 12, 16, MaxPoints}[rng.Intn(5)]
		ls := a.SetCurve(0, l)
		rs := a.SetCurve(MaxPoints, r)
		for _, beside := range []bool{true, false} {
			var want Curve
			want, dst = s.CombineH(dst, l, r, k)
			got := a.CombineH(2*MaxPoints, ls, rs, k)
			if !beside {
				want, dst = s.CombineV(dst, l, r, k)
				got = a.CombineV(2*MaxPoints, ls, rs, k)
			}
			if int(got.N) != want.Len() {
				t.Fatalf("iter %d beside=%v k=%d: span len %d, curve len %d", iter, beside, k, got.N, want.Len())
			}
			for i := 0; i < want.Len(); i++ {
				if a.Corner(got, i) != want.Corner(i) {
					t.Fatalf("iter %d beside=%v k=%d corner %d: %v != %v", iter, beside, k, i, a.Corner(got, i), want.Corner(i))
				}
			}
			// Query kernels must agree on the composed result.
			for q := 0; q < 8; q++ {
				w := rng.Int63n(1200)
				h := rng.Int63n(1200)
				gh, gok := a.MinHeightForWidth(got, w)
				wh, wok := want.MinHeightForWidth(w)
				if gh != wh || gok != wok {
					t.Fatalf("MinHeightForWidth(%d): (%d,%v) != (%d,%v)", w, gh, gok, wh, wok)
				}
				gw, gok := a.MinWidthForHeight(got, h)
				ww, wok := want.MinWidthForHeight(h)
				if gw != ww || gok != wok {
					t.Fatalf("MinWidthForHeight(%d): (%d,%v) != (%d,%v)", h, gw, gok, ww, wok)
				}
				if a.Fits(got, w, h) != want.Fits(w, h) {
					t.Fatalf("Fits(%d,%d) disagrees", w, h)
				}
			}
			if a.MinWidth(got) != want.MinWidth() || a.MinHeight(got) != want.MinHeight() {
				t.Fatalf("MinWidth/MinHeight disagree")
			}
		}
	}
}

// TestArenaSetCurveThinned pins the slab thin against Curve.Thin.
func TestArenaSetCurveThinned(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a Arena
	a.Resize(MaxPoints)
	for iter := 0; iter < 500; iter++ {
		c := randCurve(rng, 40)
		k := 2 + rng.Intn(20)
		got := a.SetCurveThinned(0, c, k)
		want := c.Thin(k)
		if int(got.N) != want.Len() {
			t.Fatalf("iter %d k=%d: span len %d, want %d", iter, k, got.N, want.Len())
		}
		for i := 0; i < want.Len(); i++ {
			if a.Corner(got, i) != want.Corner(i) {
				t.Fatalf("iter %d corner %d: %v != %v", iter, i, a.Corner(got, i), want.Corner(i))
			}
		}
	}
}

// TestScratchThinUnionDifferential pins the new scratch variants against
// their allocating counterparts.
func TestScratchThinUnionDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var s Scratch
	var dst []Point
	for iter := 0; iter < 500; iter++ {
		a, b := randCurve(rng, 30), randCurve(rng, 30)
		var got Curve
		got, dst = s.Union(dst, a, b)
		want := Union(a, b)
		if got.String() != want.String() {
			t.Fatalf("iter %d: scratch union %v != %v", iter, got, want)
		}
		k := 2 + rng.Intn(12)
		got, dst = s.Thin(dst, a, k)
		if want := a.Thin(k); got.String() != want.String() {
			t.Fatalf("iter %d: scratch thin %v != %v", iter, got, want)
		}
	}
}

// TestArenaCombineAllocs pins the slab combine at zero allocations.
func TestArenaCombineAllocs(t *testing.T) {
	var a Arena
	a.Resize(4 * MaxPoints)
	l := a.SetCurve(0, FromBoxRotatable(120, 80))
	r := a.SetCurve(MaxPoints, FromBoxRotatable(95, 60))
	avg := testing.AllocsPerRun(400, func() {
		a.CombineH(2*MaxPoints, l, r, 8)
		a.CombineV(3*MaxPoints, l, r, 8)
	})
	if avg != 0 {
		t.Fatalf("arena combine allocates %.2f objects/run, want 0", avg)
	}
}
