// Package shape implements shape curves (Γ in the paper): staircase
// functions describing the Pareto-minimal bounding boxes that can hold a
// placement of a set of hard macros.
//
// A Curve stores the Pareto corner points sorted by increasing width and
// strictly decreasing height. A box (w, h) "fits" the curve if some corner
// (w', h') has w' <= w and h' <= h; equivalently the staircase evaluated at
// w is at most h. Curves compose under slicing cuts in the Stockmeyer
// fashion: a horizontal juxtaposition adds widths and maxes heights, a
// vertical stack adds heights and maxes widths.
package shape

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"strings"
)

// Point is one Pareto corner of a shape curve: a minimal bounding box.
type Point struct {
	W, H int64
}

// Area returns the box area of the corner.
func (p Point) Area() int64 { return p.W * p.H }

// Curve is a shape curve: Pareto-minimal (W, H) corners, sorted by
// increasing W (and therefore strictly decreasing H). The zero value is the
// empty curve, which represents "nothing to place": everything fits it and
// its MinHeightForWidth is 0.
type Curve struct {
	pts []Point
}

// MaxPoints bounds the number of corners kept per curve. Compositions can
// grow quadratically; curves are thinned back to this budget while always
// keeping the two extreme corners. 64 corners track the true staircase
// closely for the block counts used at one floorplanning level.
const MaxPoints = 64

// FromBox returns the curve of a single fixed w×h box.
func FromBox(w, h int64) Curve {
	if w <= 0 || h <= 0 {
		return Curve{}
	}
	return Curve{pts: []Point{{w, h}}}
}

// FromBoxRotatable returns the curve of a w×h box that may also be placed
// rotated by 90 degrees.
func FromBoxRotatable(w, h int64) Curve {
	if w <= 0 || h <= 0 {
		return Curve{}
	}
	if w == h {
		return Curve{pts: []Point{{w, h}}}
	}
	return FromPoints([]Point{{w, h}, {h, w}})
}

// FromCanonical wraps an already-canonical corner list — sorted by strictly
// increasing W, strictly decreasing H, Pareto-minimal — without copying or
// validating. The curve aliases pts; callers own both. It exists so slab
// evaluators (Arena) can materialize a curve into a reusable buffer without
// re-pruning what is canonical by construction.
func FromCanonical(pts []Point) Curve { return Curve{pts: pts} }

// FromPoints builds a curve from arbitrary candidate boxes, pruning
// dominated ones. The input slice is not modified.
func FromPoints(pts []Point) Curve {
	cp := make([]Point, 0, len(pts))
	for _, p := range pts {
		if p.W > 0 && p.H > 0 {
			cp = append(cp, p)
		}
	}
	return Curve{pts: prune(cp)}
}

// prune sorts candidates and removes Pareto-dominated points, returning the
// canonical corner list thinned to MaxPoints. It works in place on pts.
func prune(pts []Point) []Point {
	return thinInPlace(pruneInPlace(pts), MaxPoints)
}

// pruneInPlace sorts candidates and removes Pareto-dominated points without
// allocating: the returned canonical list reuses the input's backing array.
// Unlike prune it does not thin to MaxPoints.
func pruneInPlace(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	slices.SortFunc(pts, func(a, b Point) int {
		if a.W != b.W {
			return cmp.Compare(a.W, b.W)
		}
		return cmp.Compare(a.H, b.H)
	})
	out := pts[:0]
	for _, p := range pts {
		// Drop p if the last kept point dominates it; drop kept points that
		// p dominates (they have smaller-or-equal W, so only equal-W cases
		// plus decreasing-H violations).
		for len(out) > 0 {
			last := out[len(out)-1]
			if last.H <= p.H {
				// last dominates p (last.W <= p.W by sort order).
				goto next
			}
			if last.W == p.W {
				// p has smaller H at same W: replace.
				out = out[:len(out)-1]
				continue
			}
			break
		}
		out = append(out, p)
	next:
	}
	return out
}

// thinInPlace reduces the corner count to at most limit in place, always
// keeping both extremes and preferring a uniform spread across the list.
// Thinning only removes interior corners, which keeps the curve
// conservative: every kept corner is still achievable; some achievable
// boxes may be reported as slightly larger. The sampling index
// i*(n-1)/(limit-1) never falls behind the write index, so reads stay
// ahead of writes.
func thinInPlace(pts []Point, limit int) []Point {
	n := len(pts)
	if n <= limit || limit < 2 {
		return pts
	}
	w := 0
	for i := 0; i < limit; i++ {
		p := pts[i*(n-1)/(limit-1)]
		if w > 0 && p == pts[w-1] {
			continue
		}
		pts[w] = p
		w++
	}
	return pts[:w]
}

// Empty reports whether the curve has no corners (nothing to place).
func (c Curve) Empty() bool { return len(c.pts) == 0 }

// Len returns the number of Pareto corners.
func (c Curve) Len() int { return len(c.pts) }

// Points returns a copy of the Pareto corners in canonical order.
func (c Curve) Points() []Point {
	out := make([]Point, len(c.pts))
	copy(out, c.pts)
	return out
}

// Corner returns the i-th Pareto corner without copying; hot loops pair it
// with Len instead of allocating through Points.
func (c Curve) Corner(i int) Point { return c.pts[i] }

// MinWidth returns the smallest feasible width (0 for the empty curve).
func (c Curve) MinWidth() int64 {
	if c.Empty() {
		return 0
	}
	return c.pts[0].W
}

// MinHeight returns the smallest feasible height (0 for the empty curve).
func (c Curve) MinHeight() int64 {
	if c.Empty() {
		return 0
	}
	return c.pts[len(c.pts)-1].H
}

// MinHeightForWidth returns the smallest height that can hold the contents
// when the width is at most w. It returns (0, true) for the empty curve and
// (0, false) when even the narrowest corner is wider than w. Curves are a
// dozen corners in the annealing hot paths, so a linear scan beats a
// binary search with its per-probe closure call.
func (c Curve) MinHeightForWidth(w int64) (int64, bool) {
	// Largest corner with W <= w; corners sorted by W ascending.
	i := 0
	for i < len(c.pts) && c.pts[i].W <= w {
		i++
	}
	if i == 0 {
		if c.Empty() {
			return 0, true
		}
		return 0, false
	}
	return c.pts[i-1].H, true
}

// MinWidthForHeight is the transpose of MinHeightForWidth.
func (c Curve) MinWidthForHeight(h int64) (int64, bool) {
	if c.Empty() {
		return 0, true
	}
	// Heights are strictly decreasing; find the first corner with H <= h.
	for i := 0; i < len(c.pts); i++ {
		if c.pts[i].H <= h {
			return c.pts[i].W, true
		}
	}
	return 0, false
}

// Fits reports whether a w×h box can hold the contents.
func (c Curve) Fits(w, h int64) bool {
	mh, ok := c.MinHeightForWidth(w)
	return ok && mh <= h
}

// MinAreaPoint returns the corner with the smallest box area. For the empty
// curve it returns the zero Point.
func (c Curve) MinAreaPoint() Point {
	var best Point
	bestArea := int64(math.MaxInt64)
	for _, p := range c.pts {
		if a := p.Area(); a < bestArea {
			bestArea = a
			best = p
		}
	}
	if c.Empty() {
		return Point{}
	}
	return best
}

// MinArea returns the smallest feasible box area (0 for the empty curve).
func (c Curve) MinArea() int64 { return c.MinAreaPoint().Area() }

// Thin returns a copy of the curve with at most k corners, always keeping
// the two extremes. Thinned curves stay conservative (see thinInPlace).
// Hot paths that already own a buffer use Scratch.Thin or an Arena instead.
func (c Curve) Thin(k int) Curve {
	if len(c.pts) <= k {
		return c
	}
	cp := make([]Point, len(c.pts))
	copy(cp, c.pts)
	return Curve{pts: thinInPlace(cp, k)}
}

// Rotate returns the curve of the same contents rotated by 90 degrees
// (every corner transposed).
func (c Curve) Rotate() Curve {
	pts := make([]Point, len(c.pts))
	for i, p := range c.pts {
		pts[i] = Point{p.H, p.W}
	}
	return FromPoints(pts)
}

// WithRotations returns the union of the curve and its rotation: the shape
// curve when the contents may be placed in either orientation.
func (c Curve) WithRotations() Curve { return Union(c, c.Rotate()) }

// Union returns the curve that fits a box iff any input curve fits it
// (alternative realizations of the same contents).
func Union(curves ...Curve) Curve {
	var all []Point
	for _, c := range curves {
		all = append(all, c.pts...)
	}
	return Curve{pts: prune(all)}
}

// CombineH places a beside b (horizontal juxtaposition, vertical cut):
// widths add, heights max. Combining with an empty curve yields the other
// curve unchanged.
func CombineH(a, b Curve) Curve {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	return Curve{pts: thinInPlace(mergeH(make([]Point, 0, len(a.pts)+len(b.pts)), a.pts, b.pts), MaxPoints)}
}

// CombineV stacks a on top of b (horizontal cut): heights add, widths max.
func CombineV(a, b Curve) Curve {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	return Curve{pts: thinInPlace(mergeV(make([]Point, 0, len(a.pts)+len(b.pts)), a.pts, b.pts), MaxPoints)}
}

// mergeH appends the Pareto frontier of the horizontal juxtaposition of two
// canonical staircases to dst — the Stockmeyer merge. Walking the binding
// height downward and advancing the taller operand visits, for every
// achievable max-height level, exactly the width-minimal pair; the output
// is canonical (W strictly ascending, H strictly descending) and equals the
// pruned cross product point for point in O(p+q) instead of O(pq·log pq).
func mergeH(dst []Point, a, b []Point) []Point {
	i, j := 0, 0
	for {
		pa, pb := a[i], b[j]
		h := pa.H
		if pb.H > h {
			h = pb.H
		}
		dst = append(dst, Point{pa.W + pb.W, h})
		switch {
		case pa.H > pb.H:
			if i++; i == len(a) {
				return dst
			}
		case pb.H > pa.H:
			if j++; j == len(b) {
				return dst
			}
		default:
			i++
			j++
			if i == len(a) || j == len(b) {
				return dst
			}
		}
	}
}

// mergeV is the vertical-stack counterpart of mergeH: heights add, widths
// max. It walks the binding width downward from the wide end (the roles of
// W and H transpose), then reverses into canonical order.
func mergeV(dst []Point, a, b []Point) []Point {
	i, j := len(a)-1, len(b)-1
	for {
		pa, pb := a[i], b[j]
		w := pa.W
		if pb.W > w {
			w = pb.W
		}
		dst = append(dst, Point{w, pa.H + pb.H})
		switch {
		case pa.W > pb.W:
			if i--; i < 0 {
				break
			}
			continue
		case pb.W > pa.W:
			if j--; j < 0 {
				break
			}
			continue
		default:
			i--
			j--
			if i < 0 || j < 0 {
				break
			}
			continue
		}
		break
	}
	for l, r := 0, len(dst)-1; l < r; l, r = l+1, r-1 {
		dst[l], dst[r] = dst[r], dst[l]
	}
	return dst
}

// Scratch holds reusable buffers for allocation-free curve composition in
// annealing hot loops. The zero value is ready to use; a Scratch must not be
// shared between goroutines. (The Stockmeyer merge writes straight into the
// caller's destination buffer, so the type currently carries no state; it is
// kept so the composition API has a place for future scratch again.)
type Scratch struct{}

// CombineH is CombineH(a, b).Thin(k) computed without allocating in steady
// state: cross-product candidates go through the scratch buffer and the
// final corners are written into dst (reusing its capacity, growing it only
// when needed). The returned curve aliases the returned slice; both remain
// valid until dst is reused in another call. Results are identical to the
// allocating path corner for corner.
//
//hidapvet:hotpath
func (s *Scratch) CombineH(dst []Point, a, b Curve, k int) (Curve, []Point) {
	return s.combine(dst, a, b, k, true)
}

// CombineV is the CombineV(a, b).Thin(k) counterpart of Scratch.CombineH.
//
//hidapvet:hotpath
func (s *Scratch) CombineV(dst []Point, a, b Curve, k int) (Curve, []Point) {
	return s.combine(dst, a, b, k, false)
}

//hidapvet:hotpath
func (s *Scratch) combine(dst []Point, a, b Curve, k int, beside bool) (Curve, []Point) {
	// Empty operands mirror CombineH/CombineV: the other curve passes
	// through untouched (then gets the caller's Thin budget), but is copied
	// so the result never aliases an input.
	if a.Empty() {
		dst = thinInPlace(append(dst[:0], b.pts...), k)
		return Curve{pts: dst}, dst
	}
	if b.Empty() {
		dst = thinInPlace(append(dst[:0], a.pts...), k)
		return Curve{pts: dst}, dst
	}
	// The merge emits the canonical frontier directly into dst; the
	// two-stage reduction of the allocating path (thin to MaxPoints, then
	// the caller's budget) applies on top, so results stay identical to
	// CombineH/CombineV(a, b).Thin(k) corner for corner.
	if beside {
		dst = mergeH(dst[:0], a.pts, b.pts)
	} else {
		dst = mergeV(dst[:0], a.pts, b.pts)
	}
	dst = thinInPlace(dst, MaxPoints)
	dst = thinInPlace(dst, k)
	return Curve{pts: dst}, dst
}

// Thin is c.Thin(k) into dst without allocating in steady state: the corners
// are copied into dst (reusing its capacity) and thinned in place. The
// returned curve aliases the returned slice; both remain valid until dst is
// reused in another call.
//
//hidapvet:hotpath
func (s *Scratch) Thin(dst []Point, c Curve, k int) (Curve, []Point) {
	dst = thinInPlace(append(dst[:0], c.pts...), k)
	return Curve{pts: dst}, dst
}

// Union is Union(a, b) into dst without allocating in steady state — the
// binary form covers the accumulation loops of shape-curve generation, which
// previously paid a fresh candidate slice per step. Results are identical to
// Union corner for corner.
//
//hidapvet:hotpath
func (s *Scratch) Union(dst []Point, a, b Curve) (Curve, []Point) {
	dst = append(append(dst[:0], a.pts...), b.pts...)
	dst = prune(dst) //hidapvet:allow allocfree prune sorts with a non-capturing comparator (a static func value) and compacts in place
	return Curve{pts: dst}, dst
}

func (c Curve) String() string {
	if c.Empty() {
		return "Γ{}"
	}
	var sb strings.Builder
	sb.WriteString("Γ{")
	for i, p := range c.pts {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%dx%d", p.W, p.H)
	}
	sb.WriteString("}")
	return sb.String()
}
