package shape

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromBox(t *testing.T) {
	c := FromBox(30, 10)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if !c.Fits(30, 10) || !c.Fits(31, 10) || !c.Fits(30, 11) {
		t.Error("box should fit itself and anything larger")
	}
	if c.Fits(29, 10) || c.Fits(30, 9) {
		t.Error("box must not fit anything smaller")
	}
	if c.MinArea() != 300 {
		t.Errorf("MinArea = %d, want 300", c.MinArea())
	}
	if FromBox(0, 5).Len() != 0 || FromBox(5, -1).Len() != 0 {
		t.Error("degenerate boxes should produce empty curves")
	}
}

func TestFromBoxRotatable(t *testing.T) {
	c := FromBoxRotatable(30, 10)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if !c.Fits(30, 10) || !c.Fits(10, 30) {
		t.Error("rotatable box should fit in either orientation")
	}
	if c.Fits(29, 29) {
		t.Error("29x29 cannot hold a 30x10 box in any orientation")
	}
	sq := FromBoxRotatable(7, 7)
	if sq.Len() != 1 {
		t.Errorf("square rotatable curve Len = %d, want 1", sq.Len())
	}
}

func TestPruneRemovesDominated(t *testing.T) {
	c := FromPoints([]Point{{10, 10}, {12, 10}, {10, 12}, {5, 20}, {20, 5}, {10, 10}})
	want := []Point{{5, 20}, {10, 10}, {20, 5}}
	got := c.Points()
	if len(got) != len(want) {
		t.Fatalf("Points = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Points = %v, want %v", got, want)
		}
	}
}

func TestCanonicalOrderInvariant(t *testing.T) {
	// Property: corners are sorted by increasing W and strictly decreasing H.
	f := func(raw []uint16) bool {
		pts := make([]Point, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, Point{int64(raw[i])%100 + 1, int64(raw[i+1])%100 + 1})
		}
		c := FromPoints(pts)
		got := c.Points()
		for i := 1; i < len(got); i++ {
			if got[i].W <= got[i-1].W || got[i].H >= got[i-1].H {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMinHeightForWidth(t *testing.T) {
	c := FromPoints([]Point{{5, 20}, {10, 10}, {20, 5}})
	cases := []struct {
		w    int64
		want int64
		ok   bool
	}{
		{4, 0, false},
		{5, 20, true},
		{9, 20, true},
		{10, 10, true},
		{15, 10, true},
		{20, 5, true},
		{1000, 5, true},
	}
	for _, cse := range cases {
		got, ok := c.MinHeightForWidth(cse.w)
		if ok != cse.ok || got != cse.want {
			t.Errorf("MinHeightForWidth(%d) = (%d,%v), want (%d,%v)", cse.w, got, ok, cse.want, cse.ok)
		}
	}
}

func TestMinWidthForHeight(t *testing.T) {
	c := FromPoints([]Point{{5, 20}, {10, 10}, {20, 5}})
	cases := []struct {
		h    int64
		want int64
		ok   bool
	}{
		{4, 0, false},
		{5, 20, true},
		{9, 20, true},
		{10, 10, true},
		{19, 10, true},
		{20, 5, true},
		{1000, 5, true},
	}
	for _, cse := range cases {
		got, ok := c.MinWidthForHeight(cse.h)
		if ok != cse.ok || got != cse.want {
			t.Errorf("MinWidthForHeight(%d) = (%d,%v), want (%d,%v)", cse.h, got, ok, cse.want, cse.ok)
		}
	}
}

// TestTransposeDuality: MinWidthForHeight on the curve equals
// MinHeightForWidth on the rotated curve.
func TestTransposeDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		pts := make([]Point, 1+rng.Intn(8))
		for i := range pts {
			pts[i] = Point{int64(rng.Intn(50) + 1), int64(rng.Intn(50) + 1)}
		}
		c := FromPoints(pts)
		r := c.Rotate()
		for q := int64(1); q <= 55; q++ {
			w1, ok1 := c.MinWidthForHeight(q)
			w2, ok2 := r.MinHeightForWidth(q)
			if ok1 != ok2 || w1 != w2 {
				t.Fatalf("duality violated at h=%d: (%d,%v) vs (%d,%v) for %v", q, w1, ok1, w2, ok2, c)
			}
		}
	}
}

func TestEmptyCurveSemantics(t *testing.T) {
	var c Curve
	if !c.Empty() {
		t.Fatal("zero Curve should be empty")
	}
	if !c.Fits(1, 1) || !c.Fits(0, 0) {
		t.Error("everything fits the empty curve")
	}
	if h, ok := c.MinHeightForWidth(5); !ok || h != 0 {
		t.Error("empty curve MinHeightForWidth should be (0,true)")
	}
	if c.MinArea() != 0 {
		t.Error("empty curve MinArea should be 0")
	}
}

func TestCombineH(t *testing.T) {
	a := FromBox(10, 20)
	b := FromBox(5, 8)
	c := CombineH(a, b)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if got := c.Points()[0]; got != (Point{15, 20}) {
		t.Errorf("CombineH = %v, want {15 20}", got)
	}
}

func TestCombineV(t *testing.T) {
	a := FromBox(10, 20)
	b := FromBox(5, 8)
	c := CombineV(a, b)
	if got := c.Points()[0]; got != (Point{10, 28}) {
		t.Errorf("CombineV = %v, want {10 28}", got)
	}
}

func TestCombineWithEmpty(t *testing.T) {
	a := FromBox(10, 20)
	if got := CombineH(a, Curve{}); got.String() != a.String() {
		t.Errorf("CombineH with empty = %v", got)
	}
	if got := CombineV(Curve{}, a); got.String() != a.String() {
		t.Errorf("CombineV with empty = %v", got)
	}
}

func TestCombineRotatable(t *testing.T) {
	// Two rotatable 30x10 macros side by side: realizations include
	// 60x10 (both flat), 40x30 (both upright), 40x30 via mixed? mixed is
	// 30+10 x max(10,30) = 40x30 as well; so corners {60,10},{40,30},{20,30}?
	// mixed upright+upright is 10+10 x 30 = 20x30.
	a := FromBoxRotatable(30, 10)
	c := CombineH(a, a)
	want := map[Point]bool{{60, 10}: true, {40, 30}: true, {20, 30}: true}
	got := c.Points()
	for _, p := range got {
		if !want[p] {
			t.Errorf("unexpected corner %v", p)
		}
	}
	// {40,30} is dominated by {20,30}: same H, larger W. So expect 2 corners.
	if !c.Fits(20, 30) || !c.Fits(60, 10) {
		t.Error("expected realizations missing")
	}
	if c.Fits(19, 30) || c.Fits(59, 10) {
		t.Error("curve too optimistic")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d (%v), want 2 after domination pruning", c.Len(), got)
	}
}

// TestCombineConservative: the combined curve never claims to fit a box in
// which no pair of realizations fits.
func TestCombineConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		a := randomCurve(rng)
		b := randomCurve(rng)
		ch := CombineH(a, b)
		for _, p := range ch.Points() {
			// There must exist corners pa, pb with pa.W+pb.W <= p.W and
			// max(H) <= p.H.
			ok := false
			for _, pa := range a.Points() {
				for _, pb := range b.Points() {
					h := pa.H
					if pb.H > h {
						h = pb.H
					}
					if pa.W+pb.W <= p.W && h <= p.H {
						ok = true
					}
				}
			}
			if !ok {
				t.Fatalf("CombineH produced unachievable corner %v from %v, %v", p, a, b)
			}
		}
	}
}

func randomCurve(rng *rand.Rand) Curve {
	n := 1 + rng.Intn(6)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{int64(rng.Intn(40) + 1), int64(rng.Intn(40) + 1)}
	}
	return FromPoints(pts)
}

func TestUnion(t *testing.T) {
	a := FromBox(10, 20)
	b := FromBox(20, 10)
	u := Union(a, b)
	if !u.Fits(10, 20) || !u.Fits(20, 10) {
		t.Error("union should fit both alternatives")
	}
	if u.Fits(10, 10) {
		t.Error("union too optimistic")
	}
}

func TestWithRotations(t *testing.T) {
	c := FromBox(30, 10).WithRotations()
	if !c.Fits(10, 30) {
		t.Error("WithRotations should allow the transposed box")
	}
}

func TestThinKeepsExtremes(t *testing.T) {
	pts := make([]Point, 0, 500)
	for i := int64(1); i <= 500; i++ {
		pts = append(pts, Point{i, 501 - i})
	}
	c := FromPoints(pts)
	if c.Len() > MaxPoints {
		t.Fatalf("Len = %d, want <= %d", c.Len(), MaxPoints)
	}
	got := c.Points()
	if got[0] != (Point{1, 500}) {
		t.Errorf("first corner = %v, want {1 500}", got[0])
	}
	if got[len(got)-1] != (Point{500, 1}) {
		t.Errorf("last corner = %v, want {500 1}", got[len(got)-1])
	}
}

func TestMinAreaPoint(t *testing.T) {
	c := FromPoints([]Point{{5, 20}, {10, 9}, {20, 5}})
	if got := c.MinAreaPoint(); got != (Point{10, 9}) {
		t.Errorf("MinAreaPoint = %v, want {10 9}", got)
	}
}

// TestFitsMonotone: if (w,h) fits then any (w+dw, h+dh) fits.
func TestFitsMonotone(t *testing.T) {
	f := func(w, h, dw, dh uint8) bool {
		c := FromPoints([]Point{{7, 31}, {13, 17}, {29, 5}})
		W, H := int64(w), int64(h)
		if !c.Fits(W, H) {
			return true
		}
		return c.Fits(W+int64(dw), H+int64(dh))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStringer(t *testing.T) {
	if s := (Curve{}).String(); s != "Γ{}" {
		t.Errorf("empty String = %q", s)
	}
	if s := FromBox(3, 4).String(); s != "Γ{3x4}" {
		t.Errorf("String = %q", s)
	}
}

// TestCombineMergeMatchesCrossProduct pins the Stockmeyer merge inside
// CombineH/CombineV to the brute-force reference: prune the full cross
// product of the operand corners. The two must agree corner for corner
// across random canonical staircases, including single-point and
// shared-height/width operands.
func TestCombineMergeMatchesCrossProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	randCurve := func(maxPts int) Curve {
		n := 1 + rng.Intn(maxPts)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{int64(1 + rng.Intn(500)), int64(1 + rng.Intn(500))}
		}
		return FromPoints(pts)
	}
	crossH := func(a, b Curve) []Point {
		var pts []Point
		for _, pa := range a.pts {
			for _, pb := range b.pts {
				h := pa.H
				if pb.H > h {
					h = pb.H
				}
				pts = append(pts, Point{pa.W + pb.W, h})
			}
		}
		return prune(pts)
	}
	crossV := func(a, b Curve) []Point {
		var pts []Point
		for _, pa := range a.pts {
			for _, pb := range b.pts {
				w := pa.W
				if pb.W > w {
					w = pb.W
				}
				pts = append(pts, Point{w, pa.H + pb.H})
			}
		}
		return prune(pts)
	}
	equal := func(got, want []Point) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	for iter := 0; iter < 2000; iter++ {
		a, b := randCurve(20), randCurve(20)
		if gh := CombineH(a, b); !equal(gh.pts, crossH(a, b)) {
			t.Fatalf("iter %d: CombineH merge %v != cross %v\na=%v\nb=%v", iter, gh.pts, crossH(a, b), a, b)
		}
		if gv := CombineV(a, b); !equal(gv.pts, crossV(a, b)) {
			t.Fatalf("iter %d: CombineV merge %v != cross %v\na=%v\nb=%v", iter, gv.pts, crossV(a, b), a, b)
		}
	}
}
