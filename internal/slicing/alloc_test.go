package slicing

import (
	"math/rand"
	"testing"
)

// TestPerturbCycleAllocs pins the steady-state allocation budget of the
// annealing proposal cycle — Perturb, Eval, undo — at exactly zero, the
// invariant allocfree enforces statically on these //hidapvet:hotpath
// functions. The warm-up rounds grow journals, indexes, and arenas to their
// high-water marks; after that any allocation is a regression.
func TestPerturbCycleAllocs(t *testing.T) {
	blocks, expr, budget, p := benchAnnealState(24)
	inc := NewEvaluator(&expr, blocks, p)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 128; i++ {
		undo, _ := inc.Perturb(rng)
		inc.Eval(budget)
		if i%2 == 0 {
			undo()
		}
	}
	i := 0
	avg := testing.AllocsPerRun(400, func() {
		undo, _ := inc.Perturb(rng)
		inc.Eval(budget)
		if i%2 == 0 {
			undo()
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("Perturb/Eval/undo cycle allocates %.2f objects/run, want 0", avg)
	}
}

// TestExprMoveAllocs pins the expression-level moves alone: PerturbMove and
// UndoMove on a warmed index must not allocate.
func TestExprMoveAllocs(t *testing.T) {
	expr := NewBalanced(32)
	rng := rand.New(rand.NewSource(11))
	var mv Move
	for i := 0; i < 64; i++ {
		expr.PerturbMove(rng, &mv)
		expr.UndoMove(&mv)
	}
	avg := testing.AllocsPerRun(400, func() {
		expr.PerturbMove(rng, &mv)
		expr.UndoMove(&mv)
	})
	if avg != 0 {
		t.Fatalf("PerturbMove/UndoMove allocates %.2f objects/run, want 0", avg)
	}
}
