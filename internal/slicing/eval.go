package slicing

import (
	"repro/internal/geom"
	"repro/internal/shape"
)

// Block is one leaf of the slicing tree: the ⟨Γ, am, at⟩ characterization
// of paper §II-D. Soft blocks (pure standard cells) have an empty Curve.
type Block struct {
	// Curve is the shape curve of the block's macros (Γ).
	Curve shape.Curve
	// MinArea is am: macros plus standard cells of the block.
	MinArea int64
	// TargetArea is at: am plus the glue area assigned to the block.
	TargetArea int64
}

// EvalParams weights the graded penalties. The defaults order severity as
// the paper prescribes: yielding target area is cheap, eating into minimum
// area is expensive, violating macro feasibility is prohibitive.
type EvalParams struct {
	PenaltyAt    float64
	PenaltyAm    float64
	PenaltyMacro float64
	// CompactPoints thins composed shape curves to this corner budget
	// during bottom-up composition (speed/accuracy knob).
	CompactPoints int
}

// DefaultEvalParams returns the standard weights.
func DefaultEvalParams() EvalParams {
	return EvalParams{PenaltyAt: 0.5, PenaltyAm: 4, PenaltyMacro: 32, CompactPoints: 12}
}

// Eval is the outcome of evaluating one expression against a budget.
type Eval struct {
	// Rects holds the rectangle assigned to every leaf block, indexed by
	// operand id.
	Rects []geom.Rect
	// ViolationAt, ViolationAm and ViolationMacro accumulate the relative
	// magnitudes of each violation class.
	ViolationAt    float64
	ViolationAm    float64
	ViolationMacro float64
	// Penalty is the cost multiplier: 1 when the layout is fully legal.
	Penalty float64
}

// Legal reports whether no am or macro violations occurred. (at
// underruns are tolerable by design: at includes elastic glue area.)
func (ev *Eval) Legal() bool { return ev.ViolationAm == 0 && ev.ViolationMacro == 0 }

// node is one slicing-tree node materialized from the postfix expression.
type node struct {
	op          int32 // OpV, OpH, or >= 0 for a leaf (operand id)
	left, right int   // children indices, -1 for leaves
	at, am      int64
	curve       shape.Curve
}

// Evaluate runs the paper's top-down area-budgeting layout generation:
// the budget rectangle is recursively partitioned according to the target
// areas of each subtree; cuts that would make a subtree's macros unplaceable
// shift area from the sibling, charging graded penalties for the kind of
// area yielded. The layout always tiles the budget exactly.
func Evaluate(e *Expr, blocks []Block, budget geom.Rect, p EvalParams) *Eval {
	ev := &Eval{Rects: make([]geom.Rect, len(blocks)), Penalty: 1}
	if e.n == 0 || budget.Empty() {
		return ev
	}
	if p.CompactPoints <= 0 {
		p.CompactPoints = 12
	}

	// Bottom-up: build the tree, composing ⟨Γ, am, at⟩ per node.
	nodes := make([]node, 0, len(e.elems))
	stack := make([]int, 0, len(blocks))
	for _, v := range e.elems {
		if v >= 0 {
			b := blocks[v]
			nodes = append(nodes, node{
				op: v, left: -1, right: -1,
				at:    b.TargetArea,
				am:    b.MinArea,
				curve: b.Curve.Thin(p.CompactPoints),
			})
			stack = append(stack, len(nodes)-1)
			continue
		}
		r := stack[len(stack)-1]
		l := stack[len(stack)-2]
		stack = stack[:len(stack)-2]
		var c shape.Curve
		if v == OpV {
			c = shape.CombineH(nodes[l].curve, nodes[r].curve)
		} else {
			c = shape.CombineV(nodes[l].curve, nodes[r].curve)
		}
		nodes = append(nodes, node{
			op: v, left: l, right: r,
			at:    nodes[l].at + nodes[r].at,
			am:    nodes[l].am + nodes[r].am,
			curve: c.Thin(p.CompactPoints),
		})
		stack = append(stack, len(nodes)-1)
	}
	root := stack[0]

	// Top-down: assign rectangles. Violations are summed hierarchically —
	// each subtree's totals combine as own + left + right — rather than in
	// leaf-visit order. The fixed association is what lets the incremental
	// Evaluator cache per-subtree sums and skip clean subtrees while staying
	// bit-identical to this from-scratch pass (floating-point addition is
	// not associative, so the two must agree on the summation tree).
	var assign func(ni int, r geom.Rect) (vAt, vAm, vMacro float64)
	assign = func(ni int, r geom.Rect) (vAt, vAm, vMacro float64) {
		nd := &nodes[ni]
		if nd.left < 0 {
			ev.Rects[nd.op] = r
			return leafViolations(&blocks[nd.op], r)
		}
		l, rr := &nodes[nd.left], &nodes[nd.right]
		var own float64
		var lAt, lAm, lMac, rAt, rAm, rMac float64
		if nd.op == OpV {
			wl := splitShare(r.W, l.at, rr.at)
			wl, own = repairSplit(wl, r.W, r.H, &l.curve, &rr.curve, true)
			lAt, lAm, lMac = assign(nd.left, geom.RectXYWH(r.X, r.Y, wl, r.H))
			rAt, rAm, rMac = assign(nd.right, geom.RectXYWH(r.X+wl, r.Y, r.W-wl, r.H))
		} else {
			hb := splitShare(r.H, l.at, rr.at)
			hb, own = repairSplit(hb, r.H, r.W, &l.curve, &rr.curve, false)
			lAt, lAm, lMac = assign(nd.left, geom.RectXYWH(r.X, r.Y, r.W, hb))
			rAt, rAm, rMac = assign(nd.right, geom.RectXYWH(r.X, r.Y+hb, r.W, r.H-hb))
		}
		return lAt + rAt, lAm + rAm, own + lMac + rMac
	}
	ev.ViolationAt, ev.ViolationAm, ev.ViolationMacro = assign(root, budget)

	ev.Penalty = 1 + p.PenaltyAt*ev.ViolationAt + p.PenaltyAm*ev.ViolationAm + p.PenaltyMacro*ev.ViolationMacro
	return ev
}

// splitShare splits extent proportionally to the target areas, keeping both
// sides non-degenerate when possible.
func splitShare(extent, atL, atR int64) int64 {
	return splitShareFrac(extent, atFrac(atL, atR))
}

// atFrac is the left share of a split: atL/(atL+atR), or -1 for the
// degenerate non-positive total (split halves the extent). The division
// happens here — once per node in the incremental evaluator, which caches
// the fraction — so the per-visit split cost is a single multiply. Both the
// reference and incremental assign passes must derive the cut through this
// exact expression: extent*(atL/total) rounds differently than
// extent*atL/total, and bit-identity across the two evaluators is pinned
// differentially.
func atFrac(atL, atR int64) float64 {
	total := atL + atR
	if total <= 0 {
		return -1
	}
	return float64(atL) / float64(total)
}

// splitShareFrac turns a cached left-share fraction into a cut position,
// keeping both sides non-degenerate when possible.
//
//hidapvet:hotpath
func splitShareFrac(extent int64, frac float64) int64 {
	var s int64
	if frac < 0 {
		s = extent / 2
	} else {
		s = int64(float64(extent) * frac)
	}
	if s < 1 {
		s = 1
	}
	if s > extent-1 {
		s = extent - 1
	}
	if s < 0 {
		s = 0
	}
	return s
}

// repairSplit nudges a cut position so that both children can hold their
// macros given the fixed cross extent. For a vertical cut (vertical=true)
// the cross extent is the height and the split divides the width; for a
// horizontal cut the roles swap (shape curves are queried transposed).
// When both minima cannot be satisfied the cut is placed proportionally to
// the minima and the overflow is returned as a macro violation to charge.
func repairSplit(s, extent, cross int64, curveL, curveR *shape.Curve, vertical bool) (int64, float64) {
	minL := minExtent(curveL, cross, vertical)
	minR := minExtent(curveR, cross, vertical)
	var over float64
	switch {
	case minL+minR > extent:
		// Infeasible cut: macros overflow no matter where it lands.
		over = float64(minL+minR-extent) / float64(extent)
		s = splitShare(extent, minL, minR)
	case s < minL:
		s = minL
	case extent-s < minR:
		s = extent - minR
	}
	return s, over
}

// minExtent returns the minimal width (vertical cut) or height (horizontal
// cut) a subtree needs when the cross dimension is fixed. An unsatisfiable
// cross dimension falls back to the curve's own minimum, leaving the
// overflow to be charged at the leaves.
func minExtent(c *shape.Curve, cross int64, vertical bool) int64 {
	if c.Empty() {
		return 0
	}
	if vertical {
		if w, ok := c.MinWidthForHeight(cross); ok {
			return w
		}
		return c.MinWidth()
	}
	if h, ok := c.MinHeightForWidth(cross); ok {
		return h
	}
	return c.MinHeight()
}

// repairSplitSpan is repairSplit over arena spans — the incremental
// evaluator's slab form, float-identical to the Curve path (the min-extent
// queries run the same comparisons over the same corners).
//
//hidapvet:hotpath
func repairSplitSpan(a *shape.Arena, s, extent, cross int64, spanL, spanR shape.Span, vertical bool) (int64, float64) {
	minL := minExtentSpan(a, spanL, cross, vertical)
	minR := minExtentSpan(a, spanR, cross, vertical)
	var over float64
	switch {
	case minL+minR > extent:
		// Infeasible cut: macros overflow no matter where it lands.
		over = float64(minL+minR-extent) / float64(extent)
		s = splitShare(extent, minL, minR)
	case s < minL:
		s = minL
	case extent-s < minR:
		s = extent - minR
	}
	return s, over
}

// minExtentSpan is minExtent over an arena span.
//
//hidapvet:hotpath
func minExtentSpan(a *shape.Arena, sp shape.Span, cross int64, vertical bool) int64 {
	if sp.Empty() {
		return 0
	}
	if vertical {
		if w, ok := a.MinWidthForHeight(sp, cross); ok {
			return w
		}
		return a.MinWidth(sp)
	}
	if h, ok := a.MinHeightForWidth(sp, cross); ok {
		return h
	}
	return a.MinHeight(sp)
}

// leafViolations computes the graded violations of one placed leaf.
func leafViolations(b *Block, r geom.Rect) (vAt, vAm, vMacro float64) {
	area := r.Area()
	if b.TargetArea > 0 && area < b.TargetArea {
		vAt = float64(b.TargetArea-area) / float64(b.TargetArea)
	}
	if b.MinArea > 0 && area < b.MinArea {
		vAm = float64(b.MinArea-area) / float64(b.MinArea)
	}
	if !b.Curve.Empty() && !b.Curve.Fits(r.W, r.H) {
		vMacro = macroShortfall(&b.Curve, r)
	}
	return vAt, vAm, vMacro
}

// macroShortfall measures how badly a rectangle misses the shape curve:
// the smallest relative dimension overflow over all Pareto corners.
func macroShortfall(c *shape.Curve, r geom.Rect) float64 {
	best := -1.0
	for i := 0; i < c.Len(); i++ {
		p := c.Corner(i)
		var over float64
		if p.W > r.W && r.W > 0 {
			over += float64(p.W-r.W) / float64(r.W)
		}
		if p.H > r.H && r.H > 0 {
			over += float64(p.H-r.H) / float64(r.H)
		}
		if r.W <= 0 || r.H <= 0 {
			over = 1e9
		}
		if best < 0 || over < best {
			best = over
		}
	}
	if best < 0 {
		return 0
	}
	return best
}
