package slicing

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/shape"
)

// Evaluator is the incremental counterpart of Evaluate for annealing hot
// loops. Construction thins every leaf curve once and composes the full
// tree; each Perturb then re-parses the expression with cheap integer work,
// diffs it against the cached tree and recomposes only the dirty nodes —
// the moved positions and their ancestors, O(depth) curve compositions per
// move instead of O(n). The top-down assign pass of Eval is incremental
// too: every node caches the rectangle it was last assigned and its
// subtree's violation sums, so a subtree whose inputs did not change since
// the previous Eval is skipped wholesale instead of being re-descended.
// All buffers (node arena, curve slabs, Rects, the parse stack and the
// undo journal) are owned by the evaluator and reused, so the steady-state
// Perturb/Eval cycle does not allocate. Curve corners live in one shared
// structure-of-arrays shape.Arena — two int64 slabs holding every curve of
// the tree — so recomposition sweeps contiguous memory instead of chasing a
// heap slice per node.
//
// Results are bit-identical to Evaluate on the same expression, blocks,
// budget and params: the evaluator reuses the same composition, split,
// repair and penalty code paths, and a differential test enforces equality
// across randomized move sequences.
//
// The undo closure returned by Perturb restores both the expression and the
// cached tree. It is valid only until the next Perturb call and may be
// called at most once — exactly the discipline of the anneal engine (and of
// its calibration walk), which either undoes a move immediately or commits
// to it. An Evaluator must not be shared between goroutines.
type Evaluator struct {
	expr   *Expr
	blocks []Block
	p      EvalParams

	// arena holds every curve corner of the tree in two shared int64 slabs:
	// first the leaf region (per-block curves, thinned once to CompactPoints
	// at Reset), then two fixed-capacity slots per node for the
	// double-buffered composed curves, then (when EnsureSpecRegions reserved
	// them) one disjoint region per in-flight speculative candidate. leafSpan
	// indexes the leaf region by operand id; node spans live in ev.spans.
	arena    shape.Arena
	leafSpan []shape.Span
	slotCap  int32
	rootPts  []shape.Point // RootCurve materialization buffer
	// specBase/specRegions describe the speculative slot regions appended
	// after the node slots (see EnsureSpecRegions). Reset drops them.
	specBase    int32
	specRegions int

	nodes []enode      // one node per expression position
	spans []shape.Span // active composed curve per node (leaf region or buf[side]);
	// parallel to nodes and tiny — the whole tree's spans stay cache-hot for
	// the assign pass's split repairs, which read only children spans
	aslots []assignSlot // two buffered assignments per node (see enode)
	parent []int32      // parent position per node, -1 for the root
	root   int32

	stack   []int32
	dirty   []bool // all false between moves
	journal []undoRecord
	// pjIdx/pjPar journal parent-link edits of the current move (only
	// operand–operator swaps make any), so applyUndo restores the parent
	// index exactly instead of rebuilding it O(n). reparsed marks the
	// defensive full-reparse fallback, whose parent edits are unjournaled.
	pjIdx    []int32
	pjPar    []int32
	reparsed bool
	ev       Eval

	// Changed-rect tracking for delta cost models: blocks whose rectangle
	// was rewritten by the last Eval (see Changed). rjBlock/rjRect journal
	// every rectangle overwrite since the last Perturb and ajIdx the nodes
	// whose assign slot flipped, so an undo restores Rects and the caches
	// describing it to the pre-move layout exactly.
	changed []int32
	rjBlock []int32
	rjRect  []geom.Rect
	ajIdx   []int32
	// lastBudget is the budget of the most recent Eval; moveBudget pins it
	// at Perturb time and budgetMoved records whether any Eval since the
	// move used a different budget (see applyUndo).
	lastBudget  geom.Rect
	moveBudget  geom.Rect
	budgetMoved bool
	// aCur is the assign-cache generation: a slot is live only if its aGen
	// equals aCur. Bumping aCur invalidates every slot at once (Reset,
	// empty-budget Evals, differing-budget undos).
	aCur uint32

	move   Move
	undoFn func()
}

// enode is one cached slicing-tree node, pinned to its expression position.
// Composed curves are double-buffered across the node's two arena slots
// (buf[0], buf[1]): a recompute writes the spare slot and flips side, so the
// journaled previous span stays intact for undo. Leaves alias the leaf
// region instead — their span points straight at the block's thinned curve,
// no copy.
// The assign cache is double-buffered the same way: the node's pair of
// slots lives in the evaluator's aslots array (indices 2·pos and 2·pos+1,
// off the enode so the node itself stays one cache line), aslots[2·pos +
// aside] holds the current top-down assignment (the budget rectangle the
// node received and the hierarchical violation sums of its subtree), a
// rewrite fills the spare slot and flips aside, and an undo flips back —
// the pre-move assignment survives a rejected move without copying. sver
// is the node's structure version, bumped by every recompute, so slots
// written before a composition change die with it.
type enode struct {
	val         int32 // elems value: operand id, OpV or OpH
	left, right int32 // children positions, -1 for leaves
	at, am      int64
	frac        float64  // cached left split share: atFrac(left.at, right.at)
	buf         [2]int32 // the node's two slot offsets in the arena
	side        uint8
	aside       uint8
	sver        uint32
}

// assignSlot is one buffered assignment of a node: valid while its aGen
// matches the evaluator generation and its sver the node's structure
// version. A hit additionally requires the budget rectangle to match, and
// (by the flip discipline) guarantees that Rects currently holds exactly
// this assignment's leaf rectangles.
type assignSlot struct {
	arect            geom.Rect
	vAt, vAm, vMacro float64
	aGen             uint32
	sver             uint32
}

// undoRecord captures one node's cached state before a recompute. It
// carries the structure version too, so an undo revives the node's
// pre-move assign slot along with its curve span.
type undoRecord struct {
	idx         int32
	val         int32
	left, right int32
	at, am      int64
	frac        float64
	span        shape.Span
	side        uint8
	sver        uint32
}

// NewEvaluator builds the evaluator for an expression over blocks. The
// expression stays owned by the caller but must only be perturbed through
// Evaluator.Perturb from then on, so the cache tracks it.
func NewEvaluator(e *Expr, blocks []Block, p EvalParams) *Evaluator {
	ev := &Evaluator{}
	ev.undoFn = func() { ev.applyUndo() }
	ev.Reset(e, blocks, p)
	return ev
}

// Reset retargets the evaluator at a new expression/blocks pair, reusing
// every arena the previous instance grew (node cache, curve buffers, parse
// stack, undo journal, Rects). After Reset the evaluator behaves exactly as
// a freshly constructed one; back-to-back solves through a pooled evaluator
// therefore run allocation-warm. The previous expression is released.
func (ev *Evaluator) Reset(e *Expr, blocks []Block, p EvalParams) {
	if p.CompactPoints <= 0 {
		p.CompactPoints = 12
	}
	ev.expr, ev.blocks, ev.p = e, blocks, p
	n := len(e.elems)
	ev.leafSpan = resizeSlice(ev.leafSpan, len(blocks))
	ev.nodes = resizeSlice(ev.nodes, n)
	ev.spans = resizeSlice(ev.spans, n)
	ev.aslots = resizeSlice(ev.aslots, 2*n)
	ev.parent = resizeSlice(ev.parent, n)
	ev.dirty = resizeSlice(ev.dirty, n)
	ev.stack = ev.stack[:0]
	ev.journal = ev.journal[:0]
	ev.pjIdx, ev.pjPar = ev.pjIdx[:0], ev.pjPar[:0]
	ev.reparsed = false
	ev.move = Move{}
	ev.ev.Rects = resizeSlice(ev.ev.Rects, len(blocks))
	ev.ev.ViolationAt, ev.ev.ViolationAm, ev.ev.ViolationMacro = 0, 0, 0
	ev.ev.Penalty = 1
	ev.changed = ev.changed[:0]
	ev.rjBlock, ev.rjRect = ev.rjBlock[:0], ev.rjRect[:0]
	ev.ajIdx = ev.ajIdx[:0]
	ev.lastBudget, ev.moveBudget, ev.budgetMoved = geom.Rect{}, geom.Rect{}, false
	// aCur is monotonic across Resets, so slots surviving in a reused arena
	// are dead on arrival.
	ev.aCur++
	// Slab layout: the leaf region first (each block reserves its unthinned
	// corner count; thinning only shrinks a span), then two slots per node.
	// Children are thinned to CompactPoints, so a slot of twice the largest
	// child bounds every Stockmeyer merge before its thin pass.
	leafTotal := 0
	maxChild := int32(p.CompactPoints)
	if p.CompactPoints < 2 {
		maxChild = shape.MaxPoints // thin disabled: merges still cap there
	}
	for i := range blocks {
		l := blocks[i].Curve.Len()
		leafTotal += l
		if p.CompactPoints < 2 && int32(l) > maxChild {
			maxChild = int32(l) // oversized leaves pass through whole
		}
	}
	ev.slotCap = 2 * maxChild
	ev.specBase = int32(leafTotal + n*2*int(ev.slotCap))
	ev.specRegions = 0 // spec regions must be re-reserved after a Reset
	ev.arena.Resize(leafTotal + n*2*int(ev.slotCap))
	off := int32(0)
	for i := range blocks {
		ev.leafSpan[i] = ev.arena.SetCurveThinned(off, blocks[i].Curve, p.CompactPoints)
		off += int32(blocks[i].Curve.Len())
	}
	for i := range ev.nodes {
		// Poison val so the first resync sees every position as changed.
		// (Slot offsets are re-derived: a Reset may have changed the layout.)
		base := int32(leafTotal) + int32(i)*2*ev.slotCap
		ev.nodes[i].val = -3
		ev.nodes[i].buf = [2]int32{base, base + ev.slotCap}
		ev.spans[i] = shape.Span{}
	}
	ev.resyncFrom(0)
	ev.journal = ev.journal[:0] // construction needs no undo
}

// resizeSlice returns s with length n, reusing its backing array when the
// capacity suffices. A shrink keeps the tail's buffers alive inside the
// capacity for later re-growth within cap.
func resizeSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		grown := make([]T, n)
		copy(grown, s) // keep warm buffers (curve corner storage) of the prefix
		return grown
	}
	return s[:n]
}

// Perturb applies one random move through Expr.PerturbMove and incrementally
// updates the cached tree. Moves that keep the tree topology (operand swaps
// and chain inversions, two thirds of the mix) invalidate exactly the
// touched positions and their ancestor paths; operand–operator swaps
// relink exactly three nodes (resyncSwap) before the same path-local
// recomposition. The returned undo restores expression and cache; see
// the type comment for its validity rules.
//
//hidapvet:hotpath
func (ev *Evaluator) Perturb(rng *rand.Rand) (undo func(), kind MoveKind) {
	ev.movePrologue()
	//hidapvet:commit pairing handed to the caller through the returned ev.undoFn closure; the annealer invokes it on reject
	ev.expr.PerturbMove(rng, &ev.move)
	ev.resyncMove()
	return ev.undoFn, ev.move.Kind
}

// ApplyMove is Perturb with a known move instead of a random draw: the
// caller drew mv through Expr.PerturbMove earlier, rolled it back on the
// expression (speculative scoring), and now commits it. The expression is
// re-perturbed and the cached tree resynchronized exactly as Perturb would
// have; the returned undo follows the same discipline.
//
//hidapvet:hotpath
func (ev *Evaluator) ApplyMove(mv *Move) (undo func()) {
	ev.movePrologue()
	ev.move = *mv
	ev.expr.ApplyMove(mv)
	ev.resyncMove()
	return ev.undoFn
}

// movePrologue clears the per-move journals before a new move is applied.
func (ev *Evaluator) movePrologue() {
	ev.rjBlock, ev.rjRect = ev.rjBlock[:0], ev.rjRect[:0]
	ev.ajIdx = ev.ajIdx[:0]
	ev.pjIdx, ev.pjPar = ev.pjIdx[:0], ev.pjPar[:0]
	ev.reparsed = false
	ev.moveBudget, ev.budgetMoved = ev.lastBudget, false
}

// resyncMove repairs the cached tree after ev.move was applied to the
// expression, dispatching on the move kind.
//
//hidapvet:hotpath
func (ev *Evaluator) resyncMove() {
	switch {
	case ev.move.I == ev.move.J:
		ev.journal = ev.journal[:0] // no-op move on a trivial expression
	case ev.move.TopologyChanged():
		ev.resyncSwap(ev.move.I)
	case ev.move.Kind == MoveChainInvert:
		ev.resyncRange(ev.move.I, ev.move.J)
	default: // operand swap: two scattered positions, I < J
		ev.journal = ev.journal[:0]
		ev.markPath(ev.move.I)
		ev.markPath(ev.move.J)
		ev.sweep(ev.move.I)
	}
}

// resyncFrom re-parses the expression, diffs every position from lo onward
// against the cached node and recomputes the dirty ones bottom-up (children
// precede parents in postfix order, so one ascending pass suffices).
// Positions before lo hold unchanged values over unchanged subtrees — an
// adjacent swap at lo leaves the prefix untouched — so the prefix replay
// only rebuilds the parse stack, skipping the diff and journal work.
// Previous state of every recomputed node is journaled for undo.
func (ev *Evaluator) resyncFrom(lo int) {
	ev.journal = ev.journal[:0]
	ev.stack = ev.stack[:0]
	for i := 0; i < lo; i++ {
		if ev.expr.elems[i] < 0 {
			// Operator: pop two children, push this node. Parent links of
			// the prefix are already correct and stay untouched.
			ev.stack[len(ev.stack)-2] = int32(i)
			ev.stack = ev.stack[:len(ev.stack)-1]
		} else {
			ev.stack = append(ev.stack, int32(i))
		}
	}
	for i := lo; i < len(ev.expr.elems); i++ {
		v := ev.expr.elems[i]
		var l, r int32 = -1, -1
		if v < 0 {
			r = ev.stack[len(ev.stack)-1]
			l = ev.stack[len(ev.stack)-2]
			ev.stack = ev.stack[:len(ev.stack)-2]
			ev.parent[l], ev.parent[r] = int32(i), int32(i)
		}
		nd := &ev.nodes[i]
		d := nd.val != v || nd.left != l || nd.right != r ||
			(l >= 0 && (ev.dirty[l] || ev.dirty[r]))
		ev.dirty[i] = d
		if d {
			ev.journal = append(ev.journal, undoRecord{
				idx: int32(i), val: nd.val, left: nd.left, right: nd.right,
				at: nd.at, am: nd.am, frac: nd.frac, span: ev.spans[i], side: nd.side, sver: nd.sver,
			})
			nd.val, nd.left, nd.right = v, l, r
			ev.recompute(int32(i), nd)
		}
		ev.stack = append(ev.stack, int32(i))
	}
	if n := len(ev.nodes); n > 0 {
		ev.root = int32(n - 1) // the root of a postfix expression is its last element
		ev.parent[ev.root] = -1
	}
	// Restore the all-false invariant so the fast paths' upward walks
	// terminate on genuinely-marked nodes only.
	for i := range ev.dirty {
		ev.dirty[i] = false
	}
}

// resyncRange handles a topology-preserving move: values changed only in
// [lo, hi), so the dirty set is exactly those positions plus their ancestor
// paths. Marks, then recomputes in ascending position order (children before
// parents). Journals every recompute for undo.
func (ev *Evaluator) resyncRange(lo, hi int) {
	ev.journal = ev.journal[:0]
	for i := lo; i < hi; i++ {
		ev.markPath(i)
	}
	ev.sweep(lo)
}

// resyncSwap repairs the cached tree after an operand–operator swap at
// positions (i, i+1), already applied to the expression. No re-parse is
// needed: an adjacent swap changes exactly one slot of the suffix's
// parse stack, so precisely three nodes change children or value — i,
// i+1, and the "merge" operator q that pops the changed slot. Everything
// else keeps its links, and the same markPath/sweep pass as the cheap
// moves recomposes the dirtied paths, making the whole move O(depth)
// instead of the O(n) re-parse it replaced. Parent-link edits go to the
// parent journal so undo restores them exactly.
//
// With the swapped pair written (c₀, c₁), the two cases are mirror
// images. Case A, operator moved left (c₀ < 0): the old tree had node
// i+1 = op(left=y, right=leaf·i); the new tree has node i = op(left=x,
// right=y) and leaf·(i+1), where x is the stack slot beneath y — found
// by climbing old parent links from i+1 while on the left spine; the
// first ancestor reached from the right is q, and x = q.left. Case B,
// operator moved right (c₀ ≥ 0): the old tree had node i = op(left=x,
// right=y) with parent q = parent[i] (always its left child); the new
// tree has leaf·i and node i+1 = op(left=y, right=leaf·i), and q
// adopts x. Balloting guarantees q exists in both cases; if the climb
// ever fails anyway, the defensive fallback re-parses and flags the
// parent index for an O(n) rebuild on undo.
func (ev *Evaluator) resyncSwap(i int) {
	ev.journal = ev.journal[:0]
	ii, jj := int32(i), int32(i+1)
	var q, x, y int32
	if ev.expr.elems[i] < 0 {
		// Case A: find q by climbing the left spine above the old op node.
		p := jj
		for ev.parent[p] >= 0 && ev.nodes[ev.parent[p]].right != p {
			p = ev.parent[p]
		}
		q = ev.parent[p]
		if q < 0 {
			ev.reparsed = true
			ev.resyncFrom(i)
			return
		}
		x, y = ev.nodes[q].left, ev.nodes[jj].left
		ev.journalNode(ii)
		ev.journalNode(jj)
		ev.journalNode(q)
		ev.nodes[ii].left, ev.nodes[ii].right = x, y
		ev.nodes[jj].left, ev.nodes[jj].right = -1, -1
		ev.nodes[q].left = ii
		ev.setParent(ii, q) // parent[i+1] is unchanged: same stack slot
		ev.setParent(x, ii)
		ev.setParent(y, ii)
	} else {
		// Case B: q popped the old op node i as its left child.
		q = ev.parent[ii]
		if q < 0 || ev.nodes[q].left != ii {
			ev.reparsed = true
			ev.resyncFrom(i)
			return
		}
		x, y = ev.nodes[ii].left, ev.nodes[ii].right
		ev.journalNode(ii)
		ev.journalNode(jj)
		ev.journalNode(q)
		ev.nodes[ii].left, ev.nodes[ii].right = -1, -1
		ev.nodes[jj].left, ev.nodes[jj].right = y, ii
		ev.nodes[q].left = x
		ev.setParent(ii, jj)
		ev.setParent(y, jj)
		ev.setParent(x, q)
	}
	// Values refresh during the sweep (sweep reloads elems); the relink
	// above only moved links. Mark under the NEW parent index: both paths
	// meet at q or above and continue to the root.
	ev.markPath(i)
	ev.markPath(i + 1)
	ev.sweep(i)
}

// journalNode captures one node's pre-move state for undo.
func (ev *Evaluator) journalNode(i int32) {
	nd := &ev.nodes[i]
	ev.journal = append(ev.journal, undoRecord{
		idx: i, val: nd.val, left: nd.left, right: nd.right,
		at: nd.at, am: nd.am, frac: nd.frac, span: ev.spans[i], side: nd.side, sver: nd.sver,
	})
}

// setParent points c's parent link at p, journaling the previous link.
func (ev *Evaluator) setParent(c, p int32) {
	ev.pjIdx = append(ev.pjIdx, c)
	ev.pjPar = append(ev.pjPar, ev.parent[c])
	ev.parent[c] = p
}

// markPath marks a position and its ancestors dirty, stopping at the first
// already-marked node (paths above it are marked too, by induction).
func (ev *Evaluator) markPath(i int) {
	for p := int32(i); p >= 0 && !ev.dirty[p]; p = ev.parent[p] {
		ev.dirty[p] = true
	}
}

// sweep recomputes every marked node from position lo upward, clearing
// marks as it goes so each node composes exactly once per move (the
// double-buffered curve storage relies on that: a second recompute would
// overwrite the journaled pre-move corners). Ascending order recomputes
// children before parents.
func (ev *Evaluator) sweep(lo int) {
	for i := int32(lo); i <= ev.root; i++ {
		if !ev.dirty[i] {
			continue
		}
		ev.dirty[i] = false
		nd := &ev.nodes[i]
		ev.journal = append(ev.journal, undoRecord{
			idx: i, val: nd.val, left: nd.left, right: nd.right,
			at: nd.at, am: nd.am, frac: nd.frac, span: ev.spans[i], side: nd.side, sver: nd.sver,
		})
		nd.val = ev.expr.elems[i]
		ev.recompute(i, nd)
	}
}

// recompute refreshes one node's cached ⟨curve, at, am⟩ from its children
// (or its block, for leaves), writing the composed curve into the node's
// spare buffer so the previous curve survives for undo. The structure
// version bump kills the node's buffered assignments: its subtree inputs
// changed, so the next Eval must re-descend it (every ancestor of a
// recomputed node is itself journaled and recomputed, so invalidation here
// covers the whole affected path). The journaled pre-move sver revives the
// pre-move slot on undo.
func (ev *Evaluator) recompute(i int32, nd *enode) {
	nd.sver++
	if nd.val >= 0 {
		b := &ev.blocks[nd.val]
		nd.at, nd.am = b.TargetArea, b.MinArea
		ev.spans[i] = ev.leafSpan[nd.val]
		return
	}
	l, r := &ev.nodes[nd.left], &ev.nodes[nd.right]
	ls, rs := ev.spans[nd.left], ev.spans[nd.right]
	nd.at = l.at + r.at
	nd.am = l.am + r.am
	nd.frac = atFrac(l.at, r.at)
	// An empty operand reduces the combine to a copy of the other span (every
	// span in the tree is already within the thin budget, so the trailing thin
	// is a no-op), and a copy can be an alias: a child's active span survives
	// exactly one recompute of that child — the double buffer guarantees it —
	// and any move that recomputes a child also recomputes every ancestor
	// (children first), so an aliasing parent re-aliases before the borrowed
	// corners can be overwritten. Soft blocks make empty leaves common, so
	// this skips a third of the combines in mixed designs.
	if ls.N == 0 {
		ev.spans[i] = rs
		return
	}
	if rs.N == 0 {
		ev.spans[i] = ls
		return
	}
	side := 1 - nd.side
	if nd.val == OpV {
		ev.spans[i] = ev.arena.CombineH(nd.buf[side], ls, rs, ev.p.CompactPoints)
	} else {
		ev.spans[i] = ev.arena.CombineV(nd.buf[side], ls, rs, ev.p.CompactPoints)
	}
	nd.side = side
}

// applyUndo reverts the last Perturb: the expression first, then every
// journaled node, restoring cached sums and curve buffers without any
// recomposition; parent-link edits replay from their own journal.
//
//hidapvet:hotpath
func (ev *Evaluator) applyUndo() {
	ev.expr.UndoMove(&ev.move)
	// Flip every rewritten assign slot back and replay the rectangle
	// journal: Rects and the buffered assignments describing it return to
	// the pre-move layout together, so no later Eval can hit a slot whose
	// leaf rectangles were rolled out from under it. Flips are involutions,
	// so replay order is irrelevant.
	for _, ni := range ev.ajIdx {
		ev.nodes[ni].aside ^= 1
	}
	ev.ajIdx = ev.ajIdx[:0]
	for k := len(ev.rjBlock) - 1; k >= 0; k-- {
		ev.ev.Rects[ev.rjBlock[k]] = ev.rjRect[k]
	}
	ev.rjBlock, ev.rjRect = ev.rjBlock[:0], ev.rjRect[:0]
	for k := len(ev.journal) - 1; k >= 0; k-- {
		rec := &ev.journal[k]
		nd := &ev.nodes[rec.idx]
		nd.val, nd.left, nd.right = rec.val, rec.left, rec.right
		nd.at, nd.am, nd.frac = rec.at, rec.am, rec.frac
		ev.spans[rec.idx], nd.side = rec.span, rec.side
		// Restoring the pre-move structure version revives the flipped-back
		// pre-move slot and kills any slot the rejected Evals wrote.
		nd.sver = rec.sver
	}
	ev.journal = ev.journal[:0]
	for k := len(ev.pjIdx) - 1; k >= 0; k-- {
		ev.parent[ev.pjIdx[k]] = ev.pjPar[k]
	}
	ev.pjIdx, ev.pjPar = ev.pjIdx[:0], ev.pjPar[:0]
	if ev.reparsed {
		// The fallback re-parse rewired parents without journaling; rebuild
		// from the restored children links.
		ev.rebuildParents()
		ev.reparsed = false
	}
	if ev.budgetMoved {
		// An Eval since the move used a different budget than the pre-move
		// state: a node could have been rewritten twice, overflowing its
		// two slots, so the flipped-back slot is not trustworthy. Rare and
		// cold (annealing holds the budget fixed) — invalidate every slot
		// rather than track deeper histories.
		ev.aCur++
		ev.budgetMoved = false
	}
}

// rebuildParents rederives the parent index from the restored children
// links after a topology move is undone.
func (ev *Evaluator) rebuildParents() {
	for i := range ev.nodes {
		nd := &ev.nodes[i]
		if nd.left >= 0 {
			ev.parent[nd.left] = int32(i)
			ev.parent[nd.right] = int32(i)
		}
	}
	if len(ev.nodes) > 0 {
		ev.parent[ev.root] = -1
	}
}

// RootCurve returns the cached composed shape curve of the whole expression,
// materialized out of the slabs into an evaluator-owned buffer. The curve
// aliases that buffer: it is valid until the next RootCurve call and must be
// copied (e.g. via Points or Union) to outlive it.
func (ev *Evaluator) RootCurve() shape.Curve {
	if len(ev.nodes) == 0 {
		return shape.Curve{}
	}
	ev.rootPts = ev.arena.AppendCurve(ev.rootPts[:0], ev.spans[ev.root])
	return shape.FromCanonical(ev.rootPts)
}

// Eval runs the top-down area-budgeting pass against the cached tree and
// returns the evaluator-owned Eval record. The record (including Rects) is
// overwritten by the next Eval call. The pass is incremental: a subtree
// whose composed state did not change since the previous Eval, and whose
// budget rectangle is identical, is skipped — its leaves' rectangles are
// already correct in Rects and its cached violation sums are reused. The
// result is bit-identical to Evaluate on the same expression and budget
// (both sum violations over the same tree association; differentially
// tested).
//
//hidapvet:hotpath
func (ev *Evaluator) Eval(budget geom.Rect) *Eval {
	out := &ev.ev
	if budget != ev.moveBudget {
		ev.budgetMoved = true
	}
	ev.lastBudget = budget
	ev.changed = ev.changed[:0]
	if len(ev.nodes) == 0 || budget.Empty() {
		out.ViolationAt, out.ViolationAm, out.ViolationMacro = 0, 0, 0
		out.Penalty = 1
		for i := range out.Rects {
			if out.Rects[i] != (geom.Rect{}) {
				ev.setLeafRect(int32(i), geom.Rect{}, out)
			}
		}
		// Rects no longer match any cached assignment; invalidate them all.
		ev.aCur++
		return out
	}
	vAt, vAm, vMacro := ev.assign(ev.root, budget, out)
	out.ViolationAt, out.ViolationAm, out.ViolationMacro = vAt, vAm, vMacro
	out.Penalty = 1 + ev.p.PenaltyAt*vAt + ev.p.PenaltyAm*vAm + ev.p.PenaltyMacro*vMacro
	return out
}

// Changed returns the operand ids of the blocks whose rectangles the last
// Eval rewrote to a different value. Because an undo restores Rects to the
// pre-move layout exactly, the list after each Perturb+Eval is the precise
// rectangle diff against the state the caller last acted on; blocks
// re-assigned an identical rectangle are not reported. The slice aliases
// evaluator-owned storage and is valid until the next Eval or Reset; the
// first Eval after a Reset has no meaningful baseline, so callers must do
// one full pass before consuming deltas.
func (ev *Evaluator) Changed() []int32 { return ev.changed }

// setLeafRect overwrites one block's rectangle, recording the block in the
// changed set (each leaf is assigned at most once per Eval, so the set
// needs no deduplication) and the overwrite in the move's rectangle journal
// for undo.
func (ev *Evaluator) setLeafRect(b int32, r geom.Rect, out *Eval) {
	ev.changed = append(ev.changed, b)
	ev.rjBlock = append(ev.rjBlock, b)
	ev.rjRect = append(ev.rjRect, out.Rects[b])
	out.Rects[b] = r
}

// assign mirrors Evaluate's recursive rectangle assignment over the cached
// arena, returning the subtree's hierarchical violation sums. Method
// recursion keeps the hot path free of closure allocations. Each visited
// node caches ⟨budget rect, subtree sums⟩; a revisit with an identical rect
// on an untouched subtree returns the cached sums without descending —
// recomputes bump the touched nodes' structure version (undos restore it),
// and every ancestor of a touched node is itself touched, so a live slot
// proves the whole subtree is unchanged.
func (ev *Evaluator) assign(ni int32, r geom.Rect, out *Eval) (vAt, vAm, vMacro float64) {
	nd := &ev.nodes[ni]
	if nd.left < 0 {
		// Leaves bypass the slot cache: a parent hit already covers every
		// unchanged subtree, so a leaf is only visited when something above
		// it changed, where a revisit with an identical rectangle is rare —
		// and leafViolations is pure and cheap, so recomputing it beats the
		// slot-write traffic of caching it.
		if out.Rects[nd.val] != r {
			ev.setLeafRect(nd.val, r, out)
		}
		return leafViolations(&ev.blocks[nd.val], r)
	}
	cur := &ev.aslots[2*ni+int32(nd.aside)]
	if cur.aGen == ev.aCur && cur.sver == nd.sver && cur.arect == r {
		return cur.vAt, cur.vAm, cur.vMacro
	}
	{
		ls, rs := ev.spans[nd.left], ev.spans[nd.right]
		var own float64
		var lAt, lAm, lMac, rAt, rAm, rMac float64
		if nd.val == OpV {
			wl := splitShareFrac(r.W, nd.frac)
			wl, own = repairSplitSpan(&ev.arena, wl, r.W, r.H, ls, rs, true)
			lAt, lAm, lMac = ev.assign(nd.left, geom.RectXYWH(r.X, r.Y, wl, r.H), out)
			rAt, rAm, rMac = ev.assign(nd.right, geom.RectXYWH(r.X+wl, r.Y, r.W-wl, r.H), out)
		} else {
			hb := splitShareFrac(r.H, nd.frac)
			hb, own = repairSplitSpan(&ev.arena, hb, r.H, r.W, ls, rs, false)
			lAt, lAm, lMac = ev.assign(nd.left, geom.RectXYWH(r.X, r.Y, r.W, hb), out)
			rAt, rAm, rMac = ev.assign(nd.right, geom.RectXYWH(r.X, r.Y+hb, r.W, r.H-hb), out)
		}
		vAt, vAm, vMacro = lAt+rAt, lAm+rAm, own+lMac+rMac
	}
	nd.aside ^= 1
	ev.aslots[2*ni+int32(nd.aside)] = assignSlot{arect: r, vAt: vAt, vAm: vAm, vMacro: vMacro, aGen: ev.aCur, sver: nd.sver}
	ev.ajIdx = append(ev.ajIdx, ni)
	return vAt, vAm, vMacro
}
