package slicing

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/shape"
)

// randomBlocks mixes soft blocks and macro carriers the way one HiDaP level
// does, with enough macros to exercise the repair and violation paths.
func randomBlocks(rng *rand.Rand, n int) []Block {
	blocks := make([]Block, n)
	for i := range blocks {
		at := int64(5_000 + rng.Intn(60_000))
		blocks[i] = Block{TargetArea: at, MinArea: at / 2}
		if i%3 == 0 {
			w := int64(50 + rng.Intn(250))
			h := int64(40 + rng.Intn(200))
			blocks[i].Curve = shape.FromBoxRotatable(w, h)
			blocks[i].MinArea = w * h
			blocks[i].TargetArea = w * h * 3 / 2
		}
	}
	return blocks
}

func evalsEqual(t *testing.T, tag string, inc, full *Eval) {
	t.Helper()
	if len(inc.Rects) != len(full.Rects) {
		t.Fatalf("%s: rect count %d vs %d", tag, len(inc.Rects), len(full.Rects))
	}
	for i := range inc.Rects {
		if inc.Rects[i] != full.Rects[i] {
			t.Fatalf("%s: rect %d = %v, want %v", tag, i, inc.Rects[i], full.Rects[i])
		}
	}
	if inc.ViolationAt != full.ViolationAt || inc.ViolationAm != full.ViolationAm ||
		inc.ViolationMacro != full.ViolationMacro || inc.Penalty != full.Penalty {
		t.Fatalf("%s: violations/penalty (%v %v %v %v) vs (%v %v %v %v)",
			tag,
			inc.ViolationAt, inc.ViolationAm, inc.ViolationMacro, inc.Penalty,
			full.ViolationAt, full.ViolationAm, full.ViolationMacro, full.Penalty)
	}
}

// TestEvaluatorMatchesEvaluate is the differential contract of the
// incremental evaluator: across seeded random move sequences — including
// rejected moves restored through undo and varying budgets — every Eval must
// equal the from-scratch Evaluate of the same expression bit for bit.
func TestEvaluatorMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for _, n := range []int{1, 2, 3, 5, 9, 16, 24} {
		blocks := randomBlocks(rng, n)
		expr := NewBalanced(n)
		p := DefaultEvalParams()
		inc := NewEvaluator(&expr, blocks, p)

		budgets := []geom.Rect{
			geom.RectXYWH(0, 0, 1500, 1200),
			geom.RectXYWH(10, 20, 700, 900),
			geom.RectXYWH(0, 0, 350, 300), // tight: violations accrue
			{},                            // empty: Rects must clear, not go stale
		}
		// Initial state, before any move.
		evalsEqual(t, "initial", inc.Eval(budgets[0]), Evaluate(&expr, blocks, budgets[0], p))

		steps := 400
		if n == 1 {
			steps = 10
		}
		for step := 0; step < steps; step++ {
			undo, _ := inc.Perturb(rng)
			budget := budgets[step%len(budgets)]
			evalsEqual(t, "after move", inc.Eval(budget), Evaluate(&expr, blocks, budget, p))
			if rng.Intn(2) == 0 {
				undo()
				evalsEqual(t, "after undo", inc.Eval(budget), Evaluate(&expr, blocks, budget, p))
			}
		}
	}
}

// TestEvaluatorUndoRestoresCache checks that a rejected move leaves no trace:
// perturb+undo returns the exact pre-move evaluation without recomposition
// (the follow-up move must also still be exact, exercising the journal).
func TestEvaluatorUndoRestoresCache(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	blocks := randomBlocks(rng, 12)
	expr := NewBalanced(12)
	p := DefaultEvalParams()
	inc := NewEvaluator(&expr, blocks, p)
	budget := geom.RectXYWH(0, 0, 1000, 800)

	before := expr.String()
	ref := Evaluate(&expr, blocks, budget, p)
	for i := 0; i < 200; i++ {
		undo, _ := inc.Perturb(rng)
		undo()
		if expr.String() != before {
			t.Fatalf("step %d: undo did not restore expression", i)
		}
		evalsEqual(t, "undo", inc.Eval(budget), ref)
	}
}

// TestEvaluatorRootCurveMatchesComposition checks RootCurve against the
// from-scratch bottom-up composition Evaluate performs, for curve-only
// blocks (the shape-curve generation use of the evaluator).
func TestEvaluatorRootCurveMatchesComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	parts := make([]Block, 6)
	for i := range parts {
		w := int64(50 + rng.Intn(200))
		h := int64(50 + rng.Intn(200))
		parts[i] = Block{Curve: shape.FromBoxRotatable(w, h)}
	}
	expr := NewBalanced(len(parts))
	p := EvalParams{CompactPoints: 16}
	inc := NewEvaluator(&expr, parts, p)

	// Reference: replicate the exact bottom-up composition over the same
	// expression with the allocating shape API.
	compose := func(e *Expr) shape.Curve {
		var stack []shape.Curve
		for _, v := range e.Elems() {
			if v >= 0 {
				stack = append(stack, parts[v].Curve.Thin(p.CompactPoints))
				continue
			}
			b := stack[len(stack)-1]
			a := stack[len(stack)-2]
			stack = stack[:len(stack)-2]
			var c shape.Curve
			if v == OpV {
				c = shape.CombineH(a, b)
			} else {
				c = shape.CombineV(a, b)
			}
			stack = append(stack, c.Thin(p.CompactPoints))
		}
		return stack[0]
	}
	for step := 0; step < 120; step++ {
		undo, _ := inc.Perturb(rng)
		want := compose(&expr)
		got := inc.RootCurve()
		if got.Len() != want.Len() {
			t.Fatalf("step %d: %d corners, want %d", step, got.Len(), want.Len())
		}
		gp, wp := got.Points(), want.Points()
		for i := range gp {
			if gp[i] != wp[i] {
				t.Fatalf("step %d corner %d: %v vs %v", step, i, gp[i], wp[i])
			}
		}
		if step%3 == 0 {
			undo()
		}
	}
}

func benchAnnealState(n int) ([]Block, Expr, geom.Rect, EvalParams) {
	rng := rand.New(rand.NewSource(4242))
	return randomBlocks(rng, n), NewBalanced(n), geom.RectXYWH(0, 0, 1500, 1200), DefaultEvalParams()
}

// BenchmarkSlicingEvaluate measures the old hot path: one full from-scratch
// Evaluate per proposed move.
func BenchmarkSlicingEvaluate(b *testing.B) {
	blocks, expr, budget, p := benchAnnealState(24)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		undo, _ := expr.Perturb(rng)
		ev := Evaluate(&expr, blocks, budget, p)
		if i%2 == 0 {
			undo()
		}
		_ = ev
	}
}

// BenchmarkSlicingEvaluator measures the incremental path: Perturb + Eval
// per proposed move, with half the moves rejected, as in annealing.
func BenchmarkSlicingEvaluator(b *testing.B) {
	blocks, expr, budget, p := benchAnnealState(24)
	inc := NewEvaluator(&expr, blocks, p)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		undo, _ := inc.Perturb(rng)
		ev := inc.Eval(budget)
		if i%2 == 0 {
			undo()
		}
		_ = ev
	}
}

// TestEvaluatorResetMatchesEvaluate is the differential contract of arena
// reuse: one Evaluator (and one EvaluatorPool) retargeted across problems of
// shrinking and growing size — with a perturbation run between resets to
// dirty every arena — must evaluate bit-identically to a from-scratch
// Evaluate after every Reset.
func TestEvaluatorResetMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var pool EvaluatorPool
	var reused *Evaluator
	// Shrink then regrow within (and beyond) prior capacity: 24 → 3 → 16 →
	// 2 → 24 → 40 exercises stale-arena reuse in both directions.
	for _, n := range []int{24, 3, 16, 2, 24, 40} {
		blocks := randomBlocks(rng, n)
		expr := NewBalanced(n)
		p := DefaultEvalParams()
		if reused == nil {
			reused = NewEvaluator(&expr, blocks, p)
		} else {
			reused.Reset(&expr, blocks, p)
		}
		pooled := pool.Get(&expr, blocks, p)

		budget := geom.RectXYWH(0, 0, 1400, 1100)
		evalsEqual(t, "reset initial", reused.Eval(budget), Evaluate(&expr, blocks, budget, p))

		// Perturb through the reused evaluator only (one evaluator owns an
		// expression at a time), checking the pooled copy was identical at
		// the start, then leave the arena mid-flight dirty for the next
		// Reset.
		evalsEqual(t, "pooled initial", pooled.Eval(budget), Evaluate(&expr, blocks, budget, p))
		pool.Put(pooled)
		for step := 0; step < 60 && n > 1; step++ {
			undo, _ := reused.Perturb(rng)
			evalsEqual(t, "reset after move", reused.Eval(budget), Evaluate(&expr, blocks, budget, p))
			if step%3 == 0 {
				undo()
				evalsEqual(t, "reset after undo", reused.Eval(budget), Evaluate(&expr, blocks, budget, p))
			}
		}
	}
}

// TestEvaluatorLongRunDifferential drives the incremental evaluator through
// 10k random moves with a ~50% rejection rate under one fixed budget — the
// exact shape of an annealing run — and checks three contracts at every
// step: the evaluation equals the from-scratch Evaluate bit for bit
// (incremental assign included), Changed lists exactly the blocks whose
// rectangles differ from the state the caller last acted on, and a rejected
// move's undo restores every rectangle exactly.
func TestEvaluatorLongRunDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	n := 24
	blocks := randomBlocks(rng, n)
	expr := NewBalanced(n)
	p := DefaultEvalParams()
	inc := NewEvaluator(&expr, blocks, p)
	budget := geom.RectXYWH(0, 0, 1500, 1200)

	shadow := make([]geom.Rect, n) // the last state the caller accepted or rolled back to
	copy(shadow, inc.Eval(budget).Rects)

	for step := 0; step < 10_000; step++ {
		undo, _ := inc.Perturb(rng)
		ev := inc.Eval(budget)
		evalsEqual(t, "long-run", ev, Evaluate(&expr, blocks, budget, p))

		inChanged := make(map[int32]bool, len(inc.Changed()))
		for _, b := range inc.Changed() {
			if inChanged[b] {
				t.Fatalf("step %d: block %d reported changed twice", step, b)
			}
			inChanged[b] = true
		}
		for i := range shadow {
			if (ev.Rects[i] != shadow[i]) != inChanged[int32(i)] {
				t.Fatalf("step %d: block %d changed=%v but Changed reports %v (rect %v -> %v)",
					step, i, ev.Rects[i] != shadow[i], inChanged[int32(i)], shadow[i], ev.Rects[i])
			}
		}

		if rng.Intn(2) == 0 {
			undo()
			ev2 := inc.Eval(budget)
			for i := range shadow {
				if ev2.Rects[i] != shadow[i] {
					t.Fatalf("step %d: undo left rect %d = %v, want %v", step, i, ev2.Rects[i], shadow[i])
				}
			}
		} else {
			for _, b := range inc.Changed() {
				shadow[b] = ev.Rects[b]
			}
		}
	}
}

// TestResyncSwapDifferential pins the incremental operand–operator
// resync (resyncSwap: three relinked nodes + path recomposition) bit-
// identical to a full re-parse over 10k random swaps. For every M3 move
// the incremental evaluator's Eval must equal a from-scratch Evaluate of
// the same expression exactly, the repaired parent index must equal the
// one a full rebuild derives, and a rejected move must leave no trace.
// Accepted and rejected moves interleave randomly, across expression
// sizes from the trivial to a large level.
func TestResyncSwapDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	budget := geom.RectXYWH(0, 0, 1600, 1300)
	p := DefaultEvalParams()

	checkParents := func(inc *Evaluator, tag string) {
		t.Helper()
		got := append([]int32(nil), inc.parent...)
		inc.rebuildParents()
		for i := range got {
			if got[i] != inc.parent[i] {
				t.Fatalf("%s: parent[%d] = %d, want %d", tag, i, got[i], inc.parent[i])
			}
		}
	}

	swaps := 0
	for _, n := range []int{2, 3, 4, 7, 13, 24, 40} {
		blocks := randomBlocks(rng, n)
		expr := NewBalanced(n)
		inc := NewEvaluator(&expr, blocks, p)
		inc.Eval(budget)

		for step := 0; swaps < 10_000 && step < 6_000; step++ {
			undo, kind := inc.Perturb(rng)
			isSwap := kind == MoveOperandOperatorSwap && inc.move.I != inc.move.J
			if isSwap {
				swaps++
				if inc.reparsed {
					t.Fatalf("n=%d swap %d: incremental repair fell back to a re-parse", n, swaps)
				}
			}
			ev := inc.Eval(budget)
			if isSwap || swaps%37 == 0 {
				evalsEqual(t, "after swap", ev, Evaluate(&expr, blocks, budget, p))
				if isSwap {
					checkParents(inc, "after swap")
				}
			}
			if rng.Intn(2) == 0 {
				undo()
				if isSwap {
					evalsEqual(t, "after swap undo", inc.Eval(budget), Evaluate(&expr, blocks, budget, p))
					checkParents(inc, "after swap undo")
				}
			}
		}
	}
	if swaps < 10_000 {
		t.Fatalf("only %d operand–operator swaps exercised, want 10000", swaps)
	}
}
