// Package slicing implements the slicing-structure layout representation of
// paper §IV-E: normalized Polish expressions over the level's blocks, the
// three classic perturbations (operand swap, operator-chain inversion,
// operand–operator swap, after Wong & Liu), and the paper's novel top-down
// area-budgeting evaluation that always tiles exactly the assigned budget
// (Fig. 8), repairing macro-infeasible cuts by moving area between siblings
// and charging graded penalties (at / am / macro, least to most severe).
package slicing

import (
	"fmt"
	"math/rand"
	"strings"
)

// Operator encoding inside an expression: non-negative values are operand
// (leaf) indices; OpV and OpH are the two cut operators.
const (
	// OpV is a vertical cut: the two children sit side by side
	// (widths add, heights max).
	OpV int32 = -1
	// OpH is a horizontal cut: the two children stack
	// (heights add, widths max).
	OpH int32 = -2
)

// Expr is a normalized Polish (postfix) expression over n operands.
// Invariants: every prefix has more operands than operators (balloting),
// the full expression has exactly n-1 operators, and no two consecutive
// operators are equal (normalization).
type Expr struct {
	elems []int32
	n     int
}

// NewBalanced builds an initial expression shaped as a balanced tree with
// alternating cut directions, a good unbiased starting point for annealing.
func NewBalanced(n int) Expr {
	if n <= 0 {
		return Expr{}
	}
	var build func(lo, hi int, op int32) []int32
	build = func(lo, hi int, op int32) []int32 {
		if hi-lo == 1 {
			return []int32{int32(lo)}
		}
		mid := (lo + hi) / 2
		next := OpV
		if op == OpV {
			next = OpH
		}
		out := build(lo, mid, next)
		out = append(out, build(mid, hi, next)...)
		return append(out, op)
	}
	return Expr{elems: build(0, n, OpV), n: n}
}

// NewChain builds the degenerate chain 0 1 op 2 op' 3 op ... with
// alternating operators (also normalized).
func NewChain(n int) Expr {
	if n <= 0 {
		return Expr{}
	}
	elems := []int32{0}
	op := OpV
	for i := 1; i < n; i++ {
		elems = append(elems, int32(i), op)
		if op == OpV {
			op = OpH
		} else {
			op = OpV
		}
	}
	return Expr{elems: elems, n: n}
}

// NumOperands returns the number of leaves.
func (e *Expr) NumOperands() int { return e.n }

// Len returns the element count (2n-1 for n operands).
func (e *Expr) Len() int { return len(e.elems) }

// Elems returns a copy of the raw element slice.
func (e *Expr) Elems() []int32 {
	out := make([]int32, len(e.elems))
	copy(out, e.elems)
	return out
}

// Clone returns an independent copy.
func (e *Expr) Clone() Expr {
	return Expr{elems: e.Elems(), n: e.n}
}

// CopyFrom overwrites e with the contents of src (no aliasing).
func (e *Expr) CopyFrom(src *Expr) {
	e.elems = append(e.elems[:0], src.elems...)
	e.n = src.n
}

func (e *Expr) String() string {
	var sb strings.Builder
	for _, v := range e.elems {
		switch v {
		case OpV:
			sb.WriteByte('V')
		case OpH:
			sb.WriteByte('H')
		default:
			if v > 9 {
				fmt.Fprintf(&sb, "(%d)", v)
			} else {
				sb.WriteByte(byte('0' + v))
			}
		}
	}
	return sb.String()
}

// Valid checks the three structural invariants; used by tests.
func (e *Expr) Valid() bool {
	if e.n == 0 {
		return len(e.elems) == 0
	}
	operands, operators := 0, 0
	seen := make([]bool, e.n)
	for i, v := range e.elems {
		if v >= 0 {
			if int(v) >= e.n || seen[v] {
				return false
			}
			seen[v] = true
			operands++
			continue
		}
		if v != OpV && v != OpH {
			return false
		}
		operators++
		if operators >= operands {
			return false // balloting violated
		}
		if i > 0 && e.elems[i-1] == v {
			return false // not normalized
		}
	}
	return operands == e.n && operators == e.n-1
}

// MoveKind names the three perturbations for reporting.
type MoveKind uint8

const (
	// MoveOperandSwap exchanges two adjacent operands (M1).
	MoveOperandSwap MoveKind = iota
	// MoveChainInvert complements one maximal operator chain (M2).
	MoveChainInvert
	// MoveOperandOperatorSwap swaps an adjacent operand/operator pair (M3).
	MoveOperandOperatorSwap
)

// Move records one applied perturbation by the element positions it
// touched, so incremental evaluators can invalidate precisely and undo
// without allocating. For MoveOperandSwap and MoveOperandOperatorSwap, I
// and J are the two swapped positions (J = I+1 for the latter); for
// MoveChainInvert, every operator in [I, J) was complemented. A no-op move
// (possible only when the expression has fewer than two operands) has I == J.
type Move struct {
	Kind MoveKind
	I, J int
}

// TopologyChanged reports whether the move can alter the slicing-tree
// structure rather than just the values at the touched positions. Only
// operand–operator swaps reshape the tree; the other moves permute leaf
// blocks or flip cut directions in place.
func (mv *Move) TopologyChanged() bool { return mv.Kind == MoveOperandOperatorSwap }

// Perturb applies one random valid move chosen uniformly among the three
// kinds (retrying internally if the sampled M3 site is invalid) and returns
// an undo closure together with the kind applied. Hot loops that cannot
// afford the closure use PerturbMove directly.
func (e *Expr) Perturb(rng *rand.Rand) (undo func(), kind MoveKind) {
	mv := new(Move)
	e.PerturbMove(rng, mv)
	return func() { e.UndoMove(mv) }, mv.Kind
}

// PerturbMove is the allocation-free form of Perturb: it applies one random
// valid move and records it in mv for UndoMove. It draws from rng exactly
// as Perturb does.
func (e *Expr) PerturbMove(rng *rand.Rand, mv *Move) {
	if e.n < 2 {
		*mv = Move{Kind: MoveOperandSwap}
		return
	}
	for {
		switch MoveKind(rng.Intn(3)) {
		case MoveOperandSwap:
			if e.operandSwap(rng, mv) {
				return
			}
		case MoveChainInvert:
			if e.chainInvert(rng, mv) {
				return
			}
		case MoveOperandOperatorSwap:
			if e.operandOperatorSwap(rng, mv) {
				return
			}
		}
	}
}

// UndoMove reverts a move applied by PerturbMove. Every move kind is an
// involution on the positions it recorded, so undo replays it.
func (e *Expr) UndoMove(mv *Move) {
	switch {
	case mv.I == mv.J:
		// No-op move on a trivial expression.
	case mv.Kind == MoveChainInvert:
		e.flipChain(mv.I, mv.J)
	default:
		e.elems[mv.I], e.elems[mv.J] = e.elems[mv.J], e.elems[mv.I]
	}
}

// operandSwap (M1): swap the k-th and (k+1)-th operands.
func (e *Expr) operandSwap(rng *rand.Rand, mv *Move) bool {
	k := rng.Intn(e.n - 1)
	i := e.operandPos(k)
	j := e.operandPos(k + 1)
	e.elems[i], e.elems[j] = e.elems[j], e.elems[i]
	*mv = Move{Kind: MoveOperandSwap, I: i, J: j}
	return true
}

// operandPos returns the index in elems of the k-th operand (0-based).
func (e *Expr) operandPos(k int) int {
	cnt := 0
	for i, v := range e.elems {
		if v >= 0 {
			if cnt == k {
				return i
			}
			cnt++
		}
	}
	return -1
}

// chainInvert (M2): pick one maximal operator chain and complement every
// operator in it. Complementing preserves balloting and normalization.
func (e *Expr) chainInvert(rng *rand.Rand, mv *Move) bool {
	count := 0
	for i := 0; i < len(e.elems); {
		if e.elems[i] >= 0 {
			i++
			continue
		}
		for i < len(e.elems) && e.elems[i] < 0 {
			i++
		}
		count++
	}
	if count == 0 {
		return false
	}
	pick := rng.Intn(count)
	for i := 0; i < len(e.elems); {
		if e.elems[i] >= 0 {
			i++
			continue
		}
		j := i
		for j < len(e.elems) && e.elems[j] < 0 {
			j++
		}
		if pick == 0 {
			e.flipChain(i, j)
			*mv = Move{Kind: MoveChainInvert, I: i, J: j}
			return true
		}
		pick--
		i = j
	}
	return false // unreachable: pick < count
}

// flipChain complements every operator in [lo, hi).
func (e *Expr) flipChain(lo, hi int) {
	for k := lo; k < hi; k++ {
		if e.elems[k] == OpV {
			e.elems[k] = OpH
		} else {
			e.elems[k] = OpV
		}
	}
}

// operandOperatorSwap (M3): swap an adjacent operand/operator pair when the
// result stays a normalized Polish expression.
func (e *Expr) operandOperatorSwap(rng *rand.Rand, mv *Move) bool {
	// Candidate positions i where elems[i], elems[i+1] are operand/operator
	// in either order and the swap keeps validity.
	start := rng.Intn(len(e.elems) - 1)
	for off := 0; off < len(e.elems)-1; off++ {
		i := (start + off) % (len(e.elems) - 1)
		a, b := e.elems[i], e.elems[i+1]
		if (a >= 0) == (b >= 0) {
			continue
		}
		e.elems[i], e.elems[i+1] = b, a
		if e.validLocal() {
			*mv = Move{Kind: MoveOperandOperatorSwap, I: i, J: i + 1}
			return true
		}
		e.elems[i], e.elems[i+1] = a, b
	}
	return false
}

// validLocal re-checks balloting and normalization after a swap; O(len).
func (e *Expr) validLocal() bool {
	operands, operators := 0, 0
	for i, v := range e.elems {
		if v >= 0 {
			operands++
			continue
		}
		operators++
		if operators >= operands {
			return false
		}
		if i > 0 && e.elems[i-1] == v {
			return false
		}
	}
	return true
}
