// Package slicing implements the slicing-structure layout representation of
// paper §IV-E: normalized Polish expressions over the level's blocks, the
// three classic perturbations (operand swap, operator-chain inversion,
// operand–operator swap, after Wong & Liu), and the paper's novel top-down
// area-budgeting evaluation that always tiles exactly the assigned budget
// (Fig. 8), repairing macro-infeasible cuts by moving area between siblings
// and charging graded penalties (at / am / macro, least to most severe).
package slicing

import (
	"fmt"
	"math/rand"
	"strings"
)

// Operator encoding inside an expression: non-negative values are operand
// (leaf) indices; OpV and OpH are the two cut operators.
const (
	// OpV is a vertical cut: the two children sit side by side
	// (widths add, heights max).
	OpV int32 = -1
	// OpH is a horizontal cut: the two children stack
	// (heights add, widths max).
	OpH int32 = -2
)

// Expr is a normalized Polish (postfix) expression over n operands.
// Invariants: every prefix has more operands than operators (balloting),
// the full expression has exactly n-1 operators, and no two consecutive
// operators are equal (normalization).
type Expr struct {
	elems []int32
	n     int
	// chains caches the number of maximal operator chains (0 = unknown,
	// recomputed lazily). Operand swaps and chain inversions preserve it;
	// operand–operator swaps adjust it locally.
	chains int
	// bal is scratch for operandOperatorSwap's balloting precomputation;
	// never copied between expressions.
	bal []int32
}

// NewBalanced builds an initial expression shaped as a balanced tree with
// alternating cut directions, a good unbiased starting point for annealing.
func NewBalanced(n int) Expr {
	var e Expr
	e.SetBalanced(n)
	return e
}

// SetBalanced rebuilds e in place as the balanced expression NewBalanced
// constructs, reusing e's element storage. Solvers that run many levels (or
// restart chains) through one scratch expression avoid re-allocating it.
func (e *Expr) SetBalanced(n int) {
	e.elems = e.elems[:0]
	e.n = n
	e.chains = 0
	if n <= 0 {
		return
	}
	e.appendBalanced(0, n, OpV)
}

func (e *Expr) appendBalanced(lo, hi int, op int32) {
	if hi-lo == 1 {
		e.elems = append(e.elems, int32(lo))
		return
	}
	mid := (lo + hi) / 2
	next := OpV
	if op == OpV {
		next = OpH
	}
	e.appendBalanced(lo, mid, next)
	e.appendBalanced(mid, hi, next)
	e.elems = append(e.elems, op)
}

// NewChain builds the degenerate chain 0 1 op 2 op' 3 op ... with
// alternating operators (also normalized).
func NewChain(n int) Expr {
	if n <= 0 {
		return Expr{}
	}
	elems := []int32{0}
	op := OpV
	for i := 1; i < n; i++ {
		elems = append(elems, int32(i), op)
		if op == OpV {
			op = OpH
		} else {
			op = OpV
		}
	}
	return Expr{elems: elems, n: n}
}

// NumOperands returns the number of leaves.
func (e *Expr) NumOperands() int { return e.n }

// Len returns the element count (2n-1 for n operands).
func (e *Expr) Len() int { return len(e.elems) }

// Elems returns a copy of the raw element slice.
func (e *Expr) Elems() []int32 {
	out := make([]int32, len(e.elems))
	copy(out, e.elems)
	return out
}

// Clone returns an independent copy.
func (e *Expr) Clone() Expr {
	return Expr{elems: e.Elems(), n: e.n, chains: e.chains}
}

// CopyFrom overwrites e with the contents of src (no aliasing).
func (e *Expr) CopyFrom(src *Expr) {
	e.elems = append(e.elems[:0], src.elems...)
	e.n = src.n
	e.chains = src.chains
}

func (e *Expr) String() string {
	var sb strings.Builder
	for _, v := range e.elems {
		switch v {
		case OpV:
			sb.WriteByte('V')
		case OpH:
			sb.WriteByte('H')
		default:
			if v > 9 {
				fmt.Fprintf(&sb, "(%d)", v)
			} else {
				sb.WriteByte(byte('0' + v))
			}
		}
	}
	return sb.String()
}

// Valid checks the three structural invariants; used by tests.
func (e *Expr) Valid() bool {
	if e.n == 0 {
		return len(e.elems) == 0
	}
	operands, operators := 0, 0
	seen := make([]bool, e.n)
	for i, v := range e.elems {
		if v >= 0 {
			if int(v) >= e.n || seen[v] {
				return false
			}
			seen[v] = true
			operands++
			continue
		}
		if v != OpV && v != OpH {
			return false
		}
		operators++
		if operators >= operands {
			return false // balloting violated
		}
		if i > 0 && e.elems[i-1] == v {
			return false // not normalized
		}
	}
	return operands == e.n && operators == e.n-1
}

// MoveKind names the three perturbations for reporting.
type MoveKind uint8

const (
	// MoveOperandSwap exchanges two adjacent operands (M1).
	MoveOperandSwap MoveKind = iota
	// MoveChainInvert complements one maximal operator chain (M2).
	MoveChainInvert
	// MoveOperandOperatorSwap swaps an adjacent operand/operator pair (M3).
	MoveOperandOperatorSwap
)

// Move records one applied perturbation by the element positions it
// touched, so incremental evaluators can invalidate precisely and undo
// without allocating. For MoveOperandSwap and MoveOperandOperatorSwap, I
// and J are the two swapped positions (J = I+1 for the latter); for
// MoveChainInvert, every operator in [I, J) was complemented. A no-op move
// (possible only when the expression has fewer than two operands) has I == J.
type Move struct {
	Kind MoveKind
	I, J int
}

// TopologyChanged reports whether the move can alter the slicing-tree
// structure rather than just the values at the touched positions. Only
// operand–operator swaps reshape the tree; the other moves permute leaf
// blocks or flip cut directions in place.
func (mv *Move) TopologyChanged() bool { return mv.Kind == MoveOperandOperatorSwap }

// Perturb applies one random valid move chosen uniformly among the three
// kinds (retrying internally if the sampled M3 site is invalid) and returns
// an undo closure together with the kind applied. Hot loops that cannot
// afford the closure use PerturbMove directly.
func (e *Expr) Perturb(rng *rand.Rand) (undo func(), kind MoveKind) {
	mv := new(Move)
	e.PerturbMove(rng, mv)
	return func() { e.UndoMove(mv) }, mv.Kind
}

// PerturbMove is the allocation-free form of Perturb: it applies one random
// valid move and records it in mv for UndoMove. It draws from rng exactly
// as Perturb does.
func (e *Expr) PerturbMove(rng *rand.Rand, mv *Move) {
	if e.n < 2 {
		*mv = Move{Kind: MoveOperandSwap}
		return
	}
	for {
		switch MoveKind(rng.Intn(3)) {
		case MoveOperandSwap:
			if e.operandSwap(rng, mv) {
				return
			}
		case MoveChainInvert:
			if e.chainInvert(rng, mv) {
				return
			}
		case MoveOperandOperatorSwap:
			if e.operandOperatorSwap(rng, mv) {
				return
			}
		}
	}
}

// UndoMove reverts a move applied by PerturbMove. Every move kind is an
// involution on the positions it recorded, so undo replays it.
func (e *Expr) UndoMove(mv *Move) {
	switch {
	case mv.I == mv.J:
		// No-op move on a trivial expression.
	case mv.Kind == MoveChainInvert:
		e.flipChain(mv.I, mv.J)
	case mv.Kind == MoveOperandOperatorSwap:
		before := e.chainStartsAround(mv.I)
		e.elems[mv.I], e.elems[mv.J] = e.elems[mv.J], e.elems[mv.I]
		if e.chains > 0 {
			e.chains += e.chainStartsAround(mv.I) - before
		}
	default:
		e.elems[mv.I], e.elems[mv.J] = e.elems[mv.J], e.elems[mv.I]
	}
}

// operandSwap (M1): swap the k-th and (k+1)-th operands. One early-exit
// scan locates both positions.
func (e *Expr) operandSwap(rng *rand.Rand, mv *Move) bool {
	k := rng.Intn(e.n - 1)
	i, j := -1, -1
	cnt := 0
	for p, v := range e.elems {
		if v < 0 {
			continue
		}
		if cnt == k {
			i = p
		} else if cnt == k+1 {
			j = p
			break
		}
		cnt++
	}
	e.elems[i], e.elems[j] = e.elems[j], e.elems[i]
	*mv = Move{Kind: MoveOperandSwap, I: i, J: j}
	return true
}

// chainInvert (M2): pick one maximal operator chain and complement every
// operator in it. Complementing preserves balloting and normalization. The
// chain count comes from the maintained cache, so one early-exit scan
// finds the picked chain.
func (e *Expr) chainInvert(rng *rand.Rand, mv *Move) bool {
	count := e.chainCount()
	if count == 0 {
		return false
	}
	pick := rng.Intn(count)
	for i := 0; i < len(e.elems); {
		if e.elems[i] >= 0 {
			i++
			continue
		}
		j := i
		for j < len(e.elems) && e.elems[j] < 0 {
			j++
		}
		if pick == 0 {
			e.flipChain(i, j)
			*mv = Move{Kind: MoveChainInvert, I: i, J: j}
			return true
		}
		pick--
		i = j
	}
	return false // unreachable: pick < count
}

// flipChain complements every operator in [lo, hi).
func (e *Expr) flipChain(lo, hi int) {
	for k := lo; k < hi; k++ {
		if e.elems[k] == OpV {
			e.elems[k] = OpH
		} else {
			e.elems[k] = OpV
		}
	}
}

// operandOperatorSwap (M3): swap an adjacent operand/operator pair when the
// result stays a normalized Polish expression. Validity per candidate is
// O(1): a swap only changes the operand/operator balance of the single
// prefix ending between the pair (precomputed in one balance pass), and can
// only break normalization at the pair's outer neighbors — the rest of the
// expression was valid before and is untouched.
func (e *Expr) operandOperatorSwap(rng *rand.Rand, mv *Move) bool {
	// bal[p] = operands − operators in elems[0..p]; balloting holds iff
	// every bal[p] >= 1.
	e.bal = e.bal[:0]
	b := int32(0)
	for _, v := range e.elems {
		if v >= 0 {
			b++
		} else {
			b--
		}
		e.bal = append(e.bal, b)
	}
	start := rng.Intn(len(e.elems) - 1)
	for off := 0; off < len(e.elems)-1; off++ {
		i := (start + off) % (len(e.elems) - 1)
		a, op := e.elems[i], e.elems[i+1]
		switch {
		case a >= 0 && op < 0:
			// (operand, operator) → (operator, operand): the prefix ending
			// at i loses an operand and gains an operator.
			if e.bal[i]-2 < 1 {
				continue
			}
			if i > 0 && e.elems[i-1] == op {
				continue // equal adjacent operators
			}
		case a < 0 && op >= 0:
			// (operator, operand) → (operand, operator): bal[i] rises; only
			// normalization against the right neighbor can break.
			if i+2 < len(e.elems) && e.elems[i+2] == a {
				continue
			}
		default:
			continue
		}
		before := e.chainStartsAround(i)
		e.elems[i], e.elems[i+1] = op, a
		if e.chains > 0 {
			e.chains += e.chainStartsAround(i) - before
		}
		*mv = Move{Kind: MoveOperandOperatorSwap, I: i, J: i + 1}
		return true
	}
	return false
}

// chainCount returns the cached number of maximal operator chains,
// recomputing it lazily. A chain starts at every operator whose predecessor
// is an operand (position 0 is always an operand in a valid expression).
func (e *Expr) chainCount() int {
	if e.chains == 0 {
		for p := 1; p < len(e.elems); p++ {
			if e.elems[p] < 0 && e.elems[p-1] >= 0 {
				e.chains++
			}
		}
	}
	return e.chains
}

// chainStartsAround counts the chain starts at positions i..i+2, the only
// ones an adjacent swap at (i, i+1) can create or destroy.
func (e *Expr) chainStartsAround(i int) int {
	c := 0
	for p := i; p <= i+2; p++ {
		if p >= 1 && p < len(e.elems) && e.elems[p] < 0 && e.elems[p-1] >= 0 {
			c++
		}
	}
	return c
}
