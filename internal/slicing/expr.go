// Package slicing implements the slicing-structure layout representation of
// paper §IV-E: normalized Polish expressions over the level's blocks, the
// three classic perturbations (operand swap, operator-chain inversion,
// operand–operator swap, after Wong & Liu), and the paper's novel top-down
// area-budgeting evaluation that always tiles exactly the assigned budget
// (Fig. 8), repairing macro-infeasible cuts by moving area between siblings
// and charging graded penalties (at / am / macro, least to most severe).
package slicing

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Operator encoding inside an expression: non-negative values are operand
// (leaf) indices; OpV and OpH are the two cut operators.
const (
	// OpV is a vertical cut: the two children sit side by side
	// (widths add, heights max).
	OpV int32 = -1
	// OpH is a horizontal cut: the two children stack
	// (heights add, widths max).
	OpH int32 = -2
)

// Expr is a normalized Polish (postfix) expression over n operands.
// Invariants: every prefix has more operands than operators (balloting),
// the full expression has exactly n-1 operators, and no two consecutive
// operators are equal (normalization).
type Expr struct {
	elems []int32
	n     int
	// Move-sampling indexes, built lazily by ensureIndex and maintained
	// incrementally by every move, so sampling the k-th operand, the
	// p-th operator chain or a balloting-valid swap site never rescans
	// the expression. Never copied between expressions (CopyFrom/Clone
	// invalidate instead).
	opPos   []int32 // operand rank → element position, ascending
	posRank []int32 // element position → operand rank, -1 for operators
	starts  []int32 // positions of maximal operator-chain starts, ascending
	idxOK   bool
}

// NewBalanced builds an initial expression shaped as a balanced tree with
// alternating cut directions, a good unbiased starting point for annealing.
func NewBalanced(n int) Expr {
	var e Expr
	e.SetBalanced(n)
	return e
}

// SetBalanced rebuilds e in place as the balanced expression NewBalanced
// constructs, reusing e's element storage. Solvers that run many levels (or
// restart chains) through one scratch expression avoid re-allocating it.
func (e *Expr) SetBalanced(n int) {
	e.elems = e.elems[:0]
	e.n = n
	e.idxOK = false
	if n <= 0 {
		return
	}
	e.appendBalanced(0, n, OpV)
}

func (e *Expr) appendBalanced(lo, hi int, op int32) {
	if hi-lo == 1 {
		e.elems = append(e.elems, int32(lo))
		return
	}
	mid := (lo + hi) / 2
	next := OpV
	if op == OpV {
		next = OpH
	}
	e.appendBalanced(lo, mid, next)
	e.appendBalanced(mid, hi, next)
	e.elems = append(e.elems, op)
}

// NewChain builds the degenerate chain 0 1 op 2 op' 3 op ... with
// alternating operators (also normalized).
func NewChain(n int) Expr {
	if n <= 0 {
		return Expr{}
	}
	elems := []int32{0}
	op := OpV
	for i := 1; i < n; i++ {
		elems = append(elems, int32(i), op)
		if op == OpV {
			op = OpH
		} else {
			op = OpV
		}
	}
	return Expr{elems: elems, n: n}
}

// NumOperands returns the number of leaves.
func (e *Expr) NumOperands() int { return e.n }

// Len returns the element count (2n-1 for n operands).
func (e *Expr) Len() int { return len(e.elems) }

// Elems returns a copy of the raw element slice.
func (e *Expr) Elems() []int32 {
	out := make([]int32, len(e.elems))
	copy(out, e.elems)
	return out
}

// Clone returns an independent copy.
func (e *Expr) Clone() Expr {
	return Expr{elems: e.Elems(), n: e.n}
}

// CopyFrom overwrites e with the contents of src (no aliasing).
func (e *Expr) CopyFrom(src *Expr) {
	e.elems = append(e.elems[:0], src.elems...)
	e.n = src.n
	e.idxOK = false
}

func (e *Expr) String() string {
	var sb strings.Builder
	for _, v := range e.elems {
		switch v {
		case OpV:
			sb.WriteByte('V')
		case OpH:
			sb.WriteByte('H')
		default:
			if v > 9 {
				fmt.Fprintf(&sb, "(%d)", v)
			} else {
				sb.WriteByte(byte('0' + v))
			}
		}
	}
	return sb.String()
}

// Valid checks the three structural invariants; used by tests.
func (e *Expr) Valid() bool {
	if e.n == 0 {
		return len(e.elems) == 0
	}
	operands, operators := 0, 0
	seen := make([]bool, e.n)
	for i, v := range e.elems {
		if v >= 0 {
			if int(v) >= e.n || seen[v] {
				return false
			}
			seen[v] = true
			operands++
			continue
		}
		if v != OpV && v != OpH {
			return false
		}
		operators++
		if operators >= operands {
			return false // balloting violated
		}
		if i > 0 && e.elems[i-1] == v {
			return false // not normalized
		}
	}
	return operands == e.n && operators == e.n-1
}

// MoveKind names the three perturbations for reporting.
type MoveKind uint8

const (
	// MoveOperandSwap exchanges two adjacent operands (M1).
	MoveOperandSwap MoveKind = iota
	// MoveChainInvert complements one maximal operator chain (M2).
	MoveChainInvert
	// MoveOperandOperatorSwap swaps an adjacent operand/operator pair (M3).
	MoveOperandOperatorSwap
)

// Move records one applied perturbation by the element positions it
// touched, so incremental evaluators can invalidate precisely and undo
// without allocating. For MoveOperandSwap and MoveOperandOperatorSwap, I
// and J are the two swapped positions (J = I+1 for the latter); for
// MoveChainInvert, every operator in [I, J) was complemented. A no-op move
// (possible only when the expression has fewer than two operands) has I == J.
type Move struct {
	Kind MoveKind
	I, J int
}

// TopologyChanged reports whether the move can alter the slicing-tree
// structure rather than just the values at the touched positions. Only
// operand–operator swaps reshape the tree; the other moves permute leaf
// blocks or flip cut directions in place.
func (mv *Move) TopologyChanged() bool { return mv.Kind == MoveOperandOperatorSwap }

// Perturb applies one random valid move chosen uniformly among the three
// kinds (retrying internally if the sampled M3 site is invalid) and returns
// an undo closure together with the kind applied. Hot loops that cannot
// afford the closure use PerturbMove directly.
func (e *Expr) Perturb(rng *rand.Rand) (undo func(), kind MoveKind) {
	mv := new(Move)
	e.PerturbMove(rng, mv)
	return func() { e.UndoMove(mv) }, mv.Kind
}

// PerturbMove is the allocation-free form of Perturb: it applies one random
// valid move and records it in mv for UndoMove. It draws from rng exactly
// as Perturb does.
//
//hidapvet:hotpath
func (e *Expr) PerturbMove(rng *rand.Rand, mv *Move) {
	if e.n < 2 {
		*mv = Move{Kind: MoveOperandSwap}
		return
	}
	for {
		switch MoveKind(rng.Intn(3)) {
		case MoveOperandSwap:
			if e.operandSwap(rng, mv) {
				return
			}
		case MoveChainInvert:
			if e.chainInvert(rng, mv) {
				return
			}
		case MoveOperandOperatorSwap:
			if e.operandOperatorSwap(rng, mv) {
				return
			}
		}
	}
}

// ApplyMove re-applies a move previously drawn by PerturbMove and undone on
// the expression — the speculative-batching pattern, where a candidate move
// is drawn, rolled back, scored against the frozen state and only then
// committed. Every move kind is an involution on the positions it recorded,
// so applying and undoing are the same replay.
//
//hidapvet:hotpath
func (e *Expr) ApplyMove(mv *Move) { e.UndoMove(mv) }

// UndoMove reverts a move applied by PerturbMove. Every move kind is an
// involution on the positions it recorded, so undo replays it.
//
//hidapvet:hotpath
func (e *Expr) UndoMove(mv *Move) {
	switch {
	case mv.I == mv.J:
		// No-op move on a trivial expression.
	case mv.Kind == MoveChainInvert:
		e.flipChain(mv.I, mv.J)
	case mv.Kind == MoveOperandOperatorSwap:
		e.swapAdjacent(mv.I)
	default:
		e.elems[mv.I], e.elems[mv.J] = e.elems[mv.J], e.elems[mv.I]
	}
}

// operandSwap (M1): swap the k-th and (k+1)-th operands. The operand
// index turns the rank draw into two positions directly; swapping values
// at fixed positions leaves every index untouched.
func (e *Expr) operandSwap(rng *rand.Rand, mv *Move) bool {
	k := rng.Intn(e.n - 1)
	e.ensureIndex()
	i, j := int(e.opPos[k]), int(e.opPos[k+1])
	e.elems[i], e.elems[j] = e.elems[j], e.elems[i]
	*mv = Move{Kind: MoveOperandSwap, I: i, J: j}
	return true
}

// chainInvert (M2): pick one maximal operator chain and complement every
// operator in it. Complementing preserves balloting and normalization,
// and touches no index (operator positions and chain boundaries are
// unchanged). The chain-start index makes the pick O(1): starts are kept
// in position order, matching the scan order this draw historically used.
func (e *Expr) chainInvert(rng *rand.Rand, mv *Move) bool {
	e.ensureIndex()
	if len(e.starts) == 0 {
		return false
	}
	pick := rng.Intn(len(e.starts))
	i := int(e.starts[pick])
	j := i
	for j < len(e.elems) && e.elems[j] < 0 {
		j++
	}
	e.flipChain(i, j)
	*mv = Move{Kind: MoveChainInvert, I: i, J: j}
	return true
}

// flipChain complements every operator in [lo, hi).
func (e *Expr) flipChain(lo, hi int) {
	for k := lo; k < hi; k++ {
		if e.elems[k] == OpV {
			e.elems[k] = OpH
		} else {
			e.elems[k] = OpV
		}
	}
}

// operandOperatorSwap (M3): swap an adjacent operand/operator pair when the
// result stays a normalized Polish expression. Validity per candidate
// needs only the operand/operator balance of the single prefix ending
// between the pair — derived in O(log n) from the operand index (the
// number of operands at positions ≤ i is a binary search over opPos) —
// and the pair's outer neighbors for normalization; the rest of the
// expression was valid before and is untouched.
func (e *Expr) operandOperatorSwap(rng *rand.Rand, mv *Move) bool {
	e.ensureIndex()
	start := rng.Intn(len(e.elems) - 1)
	for off := 0; off < len(e.elems)-1; off++ {
		i := (start + off) % (len(e.elems) - 1)
		a, op := e.elems[i], e.elems[i+1]
		switch {
		case a >= 0 && op < 0:
			// (operand, operator) → (operator, operand): the prefix ending
			// at i loses an operand and gains an operator.
			if e.balAt(i)-2 < 1 {
				continue
			}
			if i > 0 && e.elems[i-1] == op {
				continue // equal adjacent operators
			}
		case a < 0 && op >= 0:
			// (operator, operand) → (operand, operator): the balance rises;
			// only normalization against the right neighbor can break.
			if i+2 < len(e.elems) && e.elems[i+2] == a {
				continue
			}
		default:
			continue
		}
		e.swapAdjacent(i)
		*mv = Move{Kind: MoveOperandOperatorSwap, I: i, J: i + 1}
		return true
	}
	return false
}

// balAt returns operands − operators over elems[0..i]: with r operands
// in the prefix, the balance is r − (i+1−r). Balloting holds iff every
// balAt(p) >= 1.
func (e *Expr) balAt(i int) int {
	r := sort.Search(len(e.opPos), func(k int) bool { return e.opPos[k] > int32(i) }) //hidapvet:allow allocfree closure does not escape sort.Search and stays on the stack; proven by the 0-alloc benchmarks
	return 2*r - (i + 1)
}

// swapAdjacent swaps elems[i] and elems[i+1] — one operand, one operator
// (an M3 move or its undo) — and repairs the indexes incrementally: the
// operand shifts one position, and only positions i..i+2 can gain or
// lose a chain start.
func (e *Expr) swapAdjacent(i int) {
	e.elems[i], e.elems[i+1] = e.elems[i+1], e.elems[i]
	if !e.idxOK {
		return
	}
	if e.elems[i+1] >= 0 {
		r := e.posRank[i] // operand moved right: i → i+1
		e.opPos[r] = int32(i + 1)
		e.posRank[i], e.posRank[i+1] = -1, r
	} else {
		r := e.posRank[i+1] // operand moved left: i+1 → i
		e.opPos[r] = int32(i)
		e.posRank[i], e.posRank[i+1] = r, -1
	}
	for p := i; p <= i+2 && p < len(e.elems); p++ {
		e.setChainStart(int32(p), p >= 1 && e.elems[p] < 0 && e.elems[p-1] >= 0)
	}
}

// setChainStart inserts or removes position p in the sorted chain-start
// index to match want.
func (e *Expr) setChainStart(p int32, want bool) {
	k := sort.Search(len(e.starts), func(j int) bool { return e.starts[j] >= p }) //hidapvet:allow allocfree closure does not escape sort.Search and stays on the stack; proven by the 0-alloc benchmarks
	have := k < len(e.starts) && e.starts[k] == p
	switch {
	case want && !have:
		e.starts = append(e.starts, 0)
		copy(e.starts[k+1:], e.starts[k:])
		e.starts[k] = p
	case !want && have:
		e.starts = append(e.starts[:k], e.starts[k+1:]...)
	}
}

// ensureIndex (re)builds the move-sampling indexes with one scan. Moves
// keep them current from then on; whole-expression rewrites (SetBalanced,
// CopyFrom) invalidate instead.
func (e *Expr) ensureIndex() {
	if e.idxOK {
		return
	}
	e.opPos = e.opPos[:0]
	e.starts = e.starts[:0]
	if cap(e.posRank) < len(e.elems) {
		e.posRank = make([]int32, len(e.elems)) //hidapvet:allow allocfree one-time warm-up: idxOK short-circuits every later call; steady state pinned by TestPerturbCycleAllocs
	}
	e.posRank = e.posRank[:len(e.elems)]
	for p, v := range e.elems {
		if v >= 0 {
			e.posRank[p] = int32(len(e.opPos))
			e.opPos = append(e.opPos, int32(p))
		} else {
			e.posRank[p] = -1
			if p >= 1 && e.elems[p-1] >= 0 {
				e.starts = append(e.starts, int32(p))
			}
		}
	}
	e.idxOK = true
}
