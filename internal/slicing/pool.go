package slicing

import "sync"

// EvaluatorPool recycles incremental Evaluators (node arenas, composed-curve
// buffers, shape.Scratch workspaces, undo journals) across annealing runs.
// One level floorplan checks an Evaluator out, anneals, and returns it; the
// next solve — possibly for a different expression size — Resets the same
// arena instead of allocating a fresh one, so back-to-back placements on a
// long-lived engine run allocation-warm.
//
// The zero value is ready to use. The pool is safe for concurrent use; each
// checked-out Evaluator remains single-goroutine, exactly as before.
type EvaluatorPool struct {
	p sync.Pool
}

// Get returns an evaluator targeted at (e, blocks, p), either by resetting a
// pooled arena or by constructing a fresh one.
func (ep *EvaluatorPool) Get(e *Expr, blocks []Block, p EvalParams) *Evaluator {
	if v := ep.p.Get(); v != nil {
		ev := v.(*Evaluator)
		ev.Reset(e, blocks, p)
		return ev
	}
	return NewEvaluator(e, blocks, p)
}

// Put returns an evaluator to the pool. The caller must not use ev (or any
// Eval record or curve obtained from it) afterwards. References to the last
// expression and blocks are dropped so the pool retains only the arenas.
func (ep *EvaluatorPool) Put(ev *Evaluator) {
	if ev == nil {
		return
	}
	ev.expr = nil
	ev.blocks = nil
	ep.p.Put(ev)
}
