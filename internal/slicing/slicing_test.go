package slicing

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/shape"
)

func TestNewBalancedValid(t *testing.T) {
	for n := 1; n <= 33; n++ {
		e := NewBalanced(n)
		if !e.Valid() {
			t.Errorf("NewBalanced(%d) invalid: %s", n, e.String())
		}
		if e.NumOperands() != n {
			t.Errorf("NewBalanced(%d) operands = %d", n, e.NumOperands())
		}
		if n >= 1 && e.Len() != 2*n-1 {
			t.Errorf("NewBalanced(%d) len = %d, want %d", n, e.Len(), 2*n-1)
		}
	}
}

func TestNewChainValid(t *testing.T) {
	for n := 1; n <= 17; n++ {
		e := NewChain(n)
		if !e.Valid() {
			t.Errorf("NewChain(%d) invalid: %s", n, e.String())
		}
	}
}

// TestPerturbPreservesValidity is the core structural property test: any
// number of random moves keeps the expression a normalized Polish
// expression, and undo restores it exactly.
func TestPerturbPreservesValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{2, 3, 5, 9, 16} {
		e := NewBalanced(n)
		for step := 0; step < 2000; step++ {
			before := e.String()
			undo, _ := e.Perturb(rng)
			if !e.Valid() {
				t.Fatalf("n=%d step=%d: invalid after move: %s (from %s)", n, step, e.String(), before)
			}
			if rng.Intn(2) == 0 {
				undo()
				if e.String() != before {
					t.Fatalf("n=%d step=%d: undo mismatch: %s vs %s", n, step, e.String(), before)
				}
			}
		}
	}
}

func TestAllMoveKindsOccur(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewBalanced(8)
	seen := map[MoveKind]int{}
	for i := 0; i < 500; i++ {
		_, kind := e.Perturb(rng)
		seen[kind]++
	}
	for _, k := range []MoveKind{MoveOperandSwap, MoveChainInvert, MoveOperandOperatorSwap} {
		if seen[k] == 0 {
			t.Errorf("move kind %d never sampled: %v", k, seen)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	e := NewBalanced(5)
	c := e.Clone()
	rng := rand.New(rand.NewSource(1))
	e.Perturb(rng)
	if !c.Valid() {
		t.Error("clone corrupted by original's move")
	}
	var f Expr
	f.CopyFrom(&c)
	if f.String() != c.String() {
		t.Error("CopyFrom mismatch")
	}
}

// fig8Style reproduces the paper's Fig. 8 mechanics: a 3-leaf tree with
// target areas (3, 3, 3) on a 3x3 budget (scaled by 100 for integer DBUs).
func TestEvaluateFig8Tiling(t *testing.T) {
	blocks := []Block{
		{TargetArea: 3, MinArea: 3},
		{TargetArea: 3, MinArea: 3},
		{TargetArea: 3, MinArea: 3},
	}
	e := Expr{elems: []int32{0, 1, OpV, 2, OpH}, n: 3}
	if !e.Valid() {
		t.Fatal("test expression invalid")
	}
	budget := geom.RectXYWH(0, 0, 300, 300)
	ev := Evaluate(&e, blocks, budget, DefaultEvalParams())

	want := []geom.Rect{
		geom.RectXYWH(0, 0, 150, 200),
		geom.RectXYWH(150, 0, 150, 200),
		geom.RectXYWH(0, 200, 300, 100),
	}
	for i, w := range want {
		if ev.Rects[i] != w {
			t.Errorf("leaf %d rect = %v, want %v", i, ev.Rects[i], w)
		}
	}
	if ev.Penalty != 1 {
		t.Errorf("Penalty = %v, want 1 (all soft, generous budget)", ev.Penalty)
	}
}

// TestEvaluateExactTiling: leaves tile the budget exactly — no overlap, no
// uncovered area — for random expressions and target areas.
func TestEvaluateExactTiling(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(8)
		blocks := make([]Block, n)
		for i := range blocks {
			at := int64(rng.Intn(1000) + 100)
			blocks[i] = Block{TargetArea: at, MinArea: at / 2}
		}
		e := NewBalanced(n)
		for i := 0; i < 30; i++ {
			e.Perturb(rng)
		}
		budget := geom.RectXYWH(0, 0, int64(500+rng.Intn(500)), int64(500+rng.Intn(500)))
		ev := Evaluate(&e, blocks, budget, DefaultEvalParams())

		var sum int64
		for i, r := range ev.Rects {
			if r.Empty() {
				t.Fatalf("trial %d: leaf %d empty rect", trial, i)
			}
			if !budget.ContainsRect(r) {
				t.Fatalf("trial %d: leaf %d rect %v outside budget %v", trial, i, r, budget)
			}
			sum += r.Area()
			for j := 0; j < i; j++ {
				if r.Intersects(ev.Rects[j]) {
					t.Fatalf("trial %d: leaves %d and %d overlap: %v, %v", trial, i, j, r, ev.Rects[j])
				}
			}
		}
		if sum != budget.Area() {
			t.Fatalf("trial %d: tiled %d of %d", trial, sum, budget.Area())
		}
	}
}

func TestEvaluateProportionalAreas(t *testing.T) {
	// With no macros, assigned areas track target areas closely.
	blocks := []Block{
		{TargetArea: 100},
		{TargetArea: 300},
	}
	e := Expr{elems: []int32{0, 1, OpV}, n: 2}
	ev := Evaluate(&e, blocks, geom.RectXYWH(0, 0, 400, 100), DefaultEvalParams())
	if ev.Rects[0].W != 100 || ev.Rects[1].W != 300 {
		t.Errorf("widths = %d, %d, want 100, 300", ev.Rects[0].W, ev.Rects[1].W)
	}
}

func TestEvaluateRepairShiftsCut(t *testing.T) {
	// Block 0 holds a wide macro (200x50); proportional split would give it
	// width 100. The repair must widen it to 200 at its sibling's expense.
	blocks := []Block{
		{Curve: shape.FromBox(200, 50), TargetArea: 10000, MinArea: 10000},
		{TargetArea: 10000},
	}
	e := Expr{elems: []int32{0, 1, OpV}, n: 2}
	ev := Evaluate(&e, blocks, geom.RectXYWH(0, 0, 400, 60), DefaultEvalParams())
	if ev.Rects[0].W < 200 {
		t.Errorf("macro leaf width = %d, want >= 200 after repair", ev.Rects[0].W)
	}
	if ev.ViolationMacro != 0 {
		t.Errorf("macro violation = %v, want 0 (repairable)", ev.ViolationMacro)
	}
}

func TestEvaluateInfeasibleChargesMacro(t *testing.T) {
	// Two 300-wide macros cannot sit side by side in a 400-wide budget.
	blocks := []Block{
		{Curve: shape.FromBox(300, 50), TargetArea: 15000, MinArea: 15000},
		{Curve: shape.FromBox(300, 50), TargetArea: 15000, MinArea: 15000},
	}
	e := Expr{elems: []int32{0, 1, OpV}, n: 2}
	ev := Evaluate(&e, blocks, geom.RectXYWH(0, 0, 400, 60), DefaultEvalParams())
	if ev.ViolationMacro == 0 {
		t.Error("expected macro violation for infeasible cut")
	}
	if ev.Penalty <= 1 {
		t.Errorf("Penalty = %v, want > 1", ev.Penalty)
	}
	if ev.Legal() {
		t.Error("Legal() should be false")
	}
	// The horizontal stack of the same blocks is feasible in a tall budget.
	e2 := Expr{elems: []int32{0, 1, OpH}, n: 2}
	ev2 := Evaluate(&e2, blocks, geom.RectXYWH(0, 0, 400, 120), DefaultEvalParams())
	if ev2.ViolationMacro != 0 {
		t.Errorf("stacked layout should be feasible, violation = %v", ev2.ViolationMacro)
	}
}

func TestEvaluateAtUnderrunCharged(t *testing.T) {
	// Budget far below target areas: at violations accrue, am spared while
	// assigned area still covers MinArea.
	blocks := []Block{
		{TargetArea: 100000, MinArea: 100},
		{TargetArea: 100000, MinArea: 100},
	}
	e := Expr{elems: []int32{0, 1, OpV}, n: 2}
	ev := Evaluate(&e, blocks, geom.RectXYWH(0, 0, 100, 100), DefaultEvalParams())
	if ev.ViolationAt == 0 {
		t.Error("expected at violations for tiny budget")
	}
	if ev.ViolationAm != 0 {
		t.Errorf("am violation = %v, want 0", ev.ViolationAm)
	}
	if !ev.Legal() {
		t.Error("at underrun alone should still be Legal")
	}
}

func TestEvaluateSingleBlock(t *testing.T) {
	blocks := []Block{{TargetArea: 100}}
	e := NewBalanced(1)
	budget := geom.RectXYWH(10, 20, 30, 40)
	ev := Evaluate(&e, blocks, budget, DefaultEvalParams())
	if ev.Rects[0] != budget {
		t.Errorf("single block rect = %v, want the whole budget", ev.Rects[0])
	}
}

func TestPenaltySeverityOrdering(t *testing.T) {
	p := DefaultEvalParams()
	if !(p.PenaltyAt < p.PenaltyAm && p.PenaltyAm < p.PenaltyMacro) {
		t.Errorf("penalty severities must increase: %v %v %v", p.PenaltyAt, p.PenaltyAm, p.PenaltyMacro)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	blocks := make([]Block, 6)
	for i := range blocks {
		blocks[i] = Block{TargetArea: int64(100 + i*37), MinArea: int64(50 + i*11)}
	}
	e := NewBalanced(6)
	for i := 0; i < 10; i++ {
		e.Perturb(rng)
	}
	budget := geom.RectXYWH(0, 0, 333, 444)
	a := Evaluate(&e, blocks, budget, DefaultEvalParams())
	b := Evaluate(&e, blocks, budget, DefaultEvalParams())
	for i := range a.Rects {
		if a.Rects[i] != b.Rects[i] {
			t.Fatal("evaluation nondeterministic")
		}
	}
	if a.Penalty != b.Penalty {
		t.Fatal("penalty nondeterministic")
	}
}
